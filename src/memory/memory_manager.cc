#include "src/memory/memory_manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace demi {

// A large registered region. Outlives the manager if buffers are still referenced
// (e.g. a device completion event still holds one).
class MemoryManager::Arena final : public BufferStorage {
 public:
  explicit Arena(std::size_t capacity) : BufferStorage(new std::byte[capacity], capacity) {}
  ~Arena() override { delete[] data_; }
};

// One allocation carved out of an arena. Destruction returns the slot to the pool —
// this destructor IS the free-protection mechanism: it only runs once the application
// and every device reference are gone.
class MemoryManager::PooledStorage final : public BufferStorage {
 public:
  PooledStorage(MemoryManager* mgr, std::shared_ptr<bool> mgr_alive,
                std::shared_ptr<Arena> arena, std::size_t offset, std::size_t slot_size,
                bool header_slot = false)
      : BufferStorage(arena->data() + offset, slot_size),
        mgr_(mgr),
        mgr_alive_(std::move(mgr_alive)),
        arena_(std::move(arena)),
        offset_(offset),
        header_slot_(header_slot) {}

  ~PooledStorage() override {
    if (*mgr_alive_) {
      if (header_slot_) {
        mgr_->RecycleHeaderSlot(std::move(arena_), offset_);
      } else {
        mgr_->RecycleSlot(std::move(arena_), offset_, capacity_);
      }
    }
  }

  const BufferStorage* registration_root() const override { return arena_.get(); }

 private:
  MemoryManager* mgr_;
  std::shared_ptr<bool> mgr_alive_;
  std::shared_ptr<Arena> arena_;
  std::size_t offset_;
  bool header_slot_;
};

MemoryManager::MemoryManager(HostCpu* host, MemoryConfig config)
    : host_(host), config_(config) {
  for (std::size_t i = 0; i < kSlotSizes.size(); ++i) {
    classes_[i].slot_size = kSlotSizes[i];
  }
  alive_ = std::make_shared<bool>(true);
}

MemoryManager::~MemoryManager() { *alive_ = false; }

void MemoryManager::AttachDevice(RegisterRegionFn register_region) {
  for (const auto& arena : arenas_) {
    register_region(arena);
  }
  devices_.push_back(std::move(register_region));
}

void MemoryManager::BindTenant(TenantRegistry* registry, TenantId tenant) {
  AttachDevice([registry, tenant](std::shared_ptr<BufferStorage> arena) {
    registry->GrantRegion(tenant, arena->registration_root());
  });
}

MemoryManager::SizeClass& MemoryManager::ClassFor(std::size_t size) {
  for (auto& cls : classes_) {
    if (size <= cls.slot_size) {
      return cls;
    }
  }
  // Oversized allocations get a dedicated class-of-one arena below; callers of
  // ClassFor guarantee size fits the largest class.
  PanicImpl(__FILE__, __LINE__, "ClassFor: size exceeds largest size class");
}

void MemoryManager::GrowClass(SizeClass& cls) {
  const std::size_t arena_bytes = std::max(config_.arena_bytes, cls.slot_size);
  auto arena = std::make_shared<Arena>(arena_bytes);
  bytes_reserved_ += arena_bytes;
  // Transparent registration: the new arena is registered with every attached device
  // before any buffer from it is handed out.
  for (const auto& dev : devices_) {
    dev(arena);
  }
  const std::size_t slots = arena_bytes / cls.slot_size;
  cls.free_slots.reserve(cls.free_slots.size() + slots);
  for (std::size_t i = 0; i < slots; ++i) {
    cls.free_slots.emplace_back(arena, i * cls.slot_size);
  }
  arenas_.push_back(std::move(arena));
}

void MemoryManager::GrowHeaderPool() {
  const std::size_t arena_bytes = std::max(config_.header_arena_bytes, kHeaderSlotSize);
  auto arena = std::make_shared<Arena>(arena_bytes);
  bytes_reserved_ += arena_bytes;
  // Like every arena, the header arena is registered with all attached devices up
  // front, so header buffers are always DMA-able with zero per-send registration.
  for (const auto& dev : devices_) {
    dev(arena);
  }
  const std::size_t slots = arena_bytes / kHeaderSlotSize;
  header_free_slots_.reserve(header_free_slots_.size() + slots);
  for (std::size_t i = 0; i < slots; ++i) {
    header_free_slots_.emplace_back(arena, i * kHeaderSlotSize);
  }
  arenas_.push_back(std::move(arena));
}

void MemoryManager::RecycleHeaderSlot(std::shared_ptr<Arena> arena, std::size_t offset) {
  --live_slots_;
  header_free_slots_.emplace_back(std::move(arena), offset);
}

void MemoryManager::RecycleSlot(std::shared_ptr<Arena> arena, std::size_t offset,
                                std::size_t slot_size) {
  --live_slots_;
  for (auto& cls : classes_) {
    if (cls.slot_size == slot_size) {
      cls.free_slots.emplace_back(std::move(arena), offset);
      return;
    }
  }
  // Oversized one-off slot: the dedicated arena is simply dropped with its storage.
}

Buffer MemoryManager::AllocateHeader(std::size_t size) {
  DEMI_CHECK(size > 0);
  if (size > kHeaderSlotSize) {
    ++header_pool_misses_;
    host_->Count(Counter::kHeaderPoolMisses);
    return Allocate(size);
  }
  host_->Work(config_.header_alloc_ns);
  host_->Count(Counter::kBufferAllocs);
  ++allocs_;
  ++live_slots_;
  if (header_free_slots_.empty()) {
    ++header_pool_misses_;
    host_->Count(Counter::kHeaderPoolMisses);
    GrowHeaderPool();
  } else {
    ++header_pool_hits_;
    ++pool_hits_;
    host_->Count(Counter::kHeaderPoolHits);
  }
  auto [arena, offset] = std::move(header_free_slots_.back());
  header_free_slots_.pop_back();
  auto storage = std::make_shared<PooledStorage>(this, alive_, std::move(arena), offset,
                                                 kHeaderSlotSize, /*header_slot=*/true);
  return Buffer::FromStorage(std::move(storage), 0, size);
}

Buffer MemoryManager::Allocate(std::size_t size) {
  DEMI_CHECK(size > 0);
  host_->Work(config_.alloc_ns);
  host_->Count(Counter::kBufferAllocs);
  ++allocs_;
  ++live_slots_;

  if (size > kSlotSizes.back()) {
    // Oversized: dedicated registered arena owned solely by this allocation — it is
    // NOT retained in arenas_, so it dies (and unreserves) with its last reference.
    // Devices attached later will not see it; devices attach at startup, before any
    // oversized traffic exists.
    auto arena = std::make_shared<Arena>(size);
    bytes_reserved_ += size;
    for (const auto& dev : devices_) {
      dev(arena);
    }
    auto storage = std::make_shared<PooledStorage>(this, alive_, std::move(arena), 0, size);
    return Buffer::FromStorage(std::move(storage), 0, size);
  }

  SizeClass& cls = ClassFor(size);
  if (cls.free_slots.empty()) {
    GrowClass(cls);
  } else {
    ++pool_hits_;
  }
  auto [arena, offset] = std::move(cls.free_slots.back());
  cls.free_slots.pop_back();
  auto storage = std::make_shared<PooledStorage>(this, alive_, std::move(arena), offset,
                                                 cls.slot_size);
  return Buffer::FromStorage(std::move(storage), 0, size);
}

SgArray MemoryManager::AllocateSga(std::size_t size) { return SgArray(Allocate(size)); }

}  // namespace demi
