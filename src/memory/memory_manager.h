// MemoryManager: the libOS-integrated allocator of §4.5.
//
// Three properties from the paper:
//
//  1. *Transparent registration.* The manager carves buffers out of large arenas and
//     registers each arena once with every attached device, so applications never call
//     a registration API and the per-I/O registration cost drops to zero (experiment C4
//     quantifies the difference against per-op and explicit schemes).
//
//  2. *Free-protection.* Buffers are refcounted; a device doing DMA holds a reference.
//     An application may "free" (drop) a buffer while the device still uses it — the
//     arena slot is recycled only when the last reference dies. There is deliberately
//     NO write-protection (§4.5): the paper judges it too expensive, and so do we.
//
//  3. *Size-class pooling*, jemalloc-style, so hot allocations are O(1) pointer pops.
//
// The trade-off the paper concedes — applications cannot bring their own allocator —
// is visible here: everything on the I/O path must come from this manager to stay
// zero-copy.

#ifndef SRC_MEMORY_MEMORY_MANAGER_H_
#define SRC_MEMORY_MEMORY_MANAGER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/buffer.h"
#include "src/hw/tenant.h"
#include "src/memory/sgarray.h"
#include "src/sim/simulation.h"

namespace demi {

struct MemoryConfig {
  std::size_t arena_bytes = 2 * 1024 * 1024;  // 2 MiB arenas (hugepage-sized)
  TimeNs alloc_ns = 25;                        // pooled alloc/free CPU cost
  // The header pool is a single-size free list with no size-class dispatch; its pop is
  // cheap enough that the cost is subsumed by the per-segment stack processing cost the
  // caller already charges, so it defaults to free.
  TimeNs header_alloc_ns = 0;
  std::size_t header_arena_bytes = 64 * 1024;  // dedicated pre-registered header arena
};

class MemoryManager {
 public:
  // A device registration hook: called once per arena (existing and future).
  using RegisterRegionFn = std::function<void(std::shared_ptr<BufferStorage> arena)>;

  explicit MemoryManager(HostCpu* host, MemoryConfig config = MemoryConfig{});
  ~MemoryManager();
  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  // Attaches a kernel-bypass device: every arena (current and future) is registered
  // with it, making *all* manager memory transparently usable for I/O (§3.1).
  void AttachDevice(RegisterRegionFn register_region);

  // Multi-tenant form of transparent registration: every arena (current and future)
  // lands in `tenant`'s device capability set, so buffers this manager hands out are
  // legal in that tenant's descriptors with no per-allocation work — the §4.5
  // allocator contract extended to an untrusted shared device.
  void BindTenant(TenantRegistry* registry, TenantId tenant);

  // Allocates a buffer of exactly `size` bytes from the pools.
  Buffer Allocate(std::size_t size);

  // Allocates a protocol-header buffer from the dedicated pre-registered header pool.
  // Headers (eth+ip, tcp, udp, framing) are all <= kHeaderSlotSize, so this is a plain
  // free-list pop with no size-class dispatch; oversized requests fall back to
  // Allocate() and count as pool misses.
  Buffer AllocateHeader(std::size_t size);

  // Largest request the header pool serves from its own slots.
  static constexpr std::size_t kHeaderSlotSize = 64;

  // Allocates a single-segment scatter-gather array (the public sgaalloc).
  SgArray AllocateSga(std::size_t size);

  // --- statistics ---
  std::uint64_t bytes_reserved() const { return bytes_reserved_; }  // arena footprint
  std::uint64_t allocs() const { return allocs_; }
  std::uint64_t pool_hits() const { return pool_hits_; }  // reused a recycled slot
  std::size_t arena_count() const { return arenas_.size(); }
  std::uint64_t live_slots() const { return live_slots_; }
  std::uint64_t header_pool_hits() const { return header_pool_hits_; }
  std::uint64_t header_pool_misses() const { return header_pool_misses_; }

 private:
  class Arena;
  class PooledStorage;
  // Free slots carry the owning arena's shared_ptr so an allocation is a pure pop —
  // no lookup to recover the arena reference on the hot path.
  struct SizeClass {
    std::size_t slot_size;
    std::vector<std::pair<std::shared_ptr<Arena>, std::size_t>> free_slots;
  };

  static constexpr std::array<std::size_t, 8> kSlotSizes = {64,    256,    1024,   4096,
                                                            16384, 65536,  262144, 1048576};

  SizeClass& ClassFor(std::size_t size);
  void GrowClass(SizeClass& cls);
  void GrowHeaderPool();
  void RecycleSlot(std::shared_ptr<Arena> arena, std::size_t offset,
                   std::size_t slot_size);
  void RecycleHeaderSlot(std::shared_ptr<Arena> arena, std::size_t offset);

  HostCpu* host_;
  MemoryConfig config_;
  std::vector<std::shared_ptr<Arena>> arenas_;
  std::array<SizeClass, kSlotSizes.size()> classes_;
  std::vector<RegisterRegionFn> devices_;
  std::uint64_t bytes_reserved_ = 0;
  std::uint64_t allocs_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t live_slots_ = 0;
  std::vector<std::pair<std::shared_ptr<Arena>, std::size_t>> header_free_slots_;
  std::uint64_t header_pool_hits_ = 0;
  std::uint64_t header_pool_misses_ = 0;
  // Set false on destruction; PooledStorage destructors skip recycling afterwards
  // (their arena shared_ptr keeps the memory itself valid).
  std::shared_ptr<bool> alive_;
};

}  // namespace demi

#endif  // SRC_MEMORY_MEMORY_MANAGER_H_
