// SgArray: the Demikernel scatter-gather array (Figure 3's `sgarray`).
//
// An SgArray is the atomic data unit of every Demikernel queue (§4.2): a sequence of
// byte segments pushed as one unit and guaranteed to pop as one unit. Segments are
// refcounted Buffers, so an SgArray is cheap to copy and naturally zero-copy.

#ifndef SRC_MEMORY_SGARRAY_H_
#define SRC_MEMORY_SGARRAY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/buffer.h"

namespace demi {

class SgArray {
 public:
  SgArray() = default;
  explicit SgArray(Buffer single) { Append(std::move(single)); }

  // Builds a one-segment SgArray that copies `text` (convenience for tests/examples;
  // real applications allocate via MemoryManager and fill in place).
  static SgArray FromString(std::string_view text) {
    return SgArray(Buffer::CopyOf(text));
  }

  void Append(Buffer segment) {
    total_bytes_ += segment.size();
    segments_.push_back(std::move(segment));
  }

  std::size_t segment_count() const { return segments_.size(); }
  std::size_t total_bytes() const { return total_bytes_; }
  bool empty() const { return total_bytes_ == 0; }

  const Buffer& segment(std::size_t i) const { return segments_[i]; }
  Buffer& segment(std::size_t i) { return segments_[i]; }
  const std::vector<Buffer>& segments() const { return segments_; }

  auto begin() const { return segments_.begin(); }
  auto end() const { return segments_.end(); }

  // Copies all segments into one contiguous string (off the fast path; tests/baselines).
  std::string ToString() const {
    std::string out;
    out.reserve(total_bytes_);
    for (const Buffer& seg : segments_) {
      out.append(seg.AsStringView());
    }
    return out;
  }

  // One contiguous Buffer spanning all segments. The common single-segment case
  // returns the segment itself — shared storage, zero copy — so callers must treat
  // the result as read-only. Multi-segment arrays copy once.
  Buffer Flatten() const {
    if (segments_.size() == 1) {
      return segments_[0];
    }
    return ConcatCopy(segments_);
  }

  void Clear() {
    segments_.clear();
    total_bytes_ = 0;
  }

 private:
  std::vector<Buffer> segments_;
  std::size_t total_bytes_ = 0;
};

}  // namespace demi

#endif  // SRC_MEMORY_SGARRAY_H_
