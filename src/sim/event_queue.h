// Scheduler event-queue abstraction.
//
// The Simulation keeps its event callbacks in a pooled side table (simulation.h);
// what the scheduler itself orders is only the trivially-copyable SchedEntry
// {due, seq, id}. Two implementations exist:
//   - HeapEventQueue: the original binary heap, O(log n) push/pop. Retained as the
//     differential-testing oracle (build with -DSIM_HEAP_SCHEDULER=ON to make it the
//     default again) and as the baseline the bench compares against.
//   - TimerWheel (timer_wheel.h): a hierarchical timer wheel, O(1) schedule and
//     amortized O(1) expire, which is what makes a million pending retransmit /
//     delayed-ack / arrival timers affordable.
//
// Contract both must honour, bit for bit: entries come out ordered by (due, seq) —
// seq is the global schedule order, so same-time events run in the order they were
// scheduled — and Peek() returns the exact earliest entry so idle jumps land the
// clock on precisely the same timestamps under either implementation.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace demi {

// Opaque handle for cancelling a scheduled event: (slot generation << 32) | slot.
using TimerId = std::uint64_t;
constexpr TimerId kInvalidTimer = 0;

struct SchedEntry {
  TimeNs due;
  std::uint64_t seq;  // tie-break: same-time events run in schedule order
  TimerId id;
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void Push(const SchedEntry& e) = 0;
  // Earliest entry by (due, seq), or nullptr when empty. The pointer is invalidated
  // by the next Push/Pop.
  virtual const SchedEntry* Peek() = 0;
  // Removes and returns the earliest entry. Precondition: not empty.
  virtual SchedEntry Pop() = 0;
  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
};

// The legacy binary-heap scheduler (differential-testing oracle).
class HeapEventQueue final : public EventQueue {
 public:
  void Push(const SchedEntry& e) override { heap_.push(e); }
  const SchedEntry* Peek() override { return heap_.empty() ? nullptr : &heap_.top(); }
  SchedEntry Pop() override {
    const SchedEntry e = heap_.top();
    heap_.pop();
    return e;
  }
  bool empty() const override { return heap_.empty(); }
  std::size_t size() const override { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const SchedEntry& a, const SchedEntry& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };
  std::priority_queue<SchedEntry, std::vector<SchedEntry>, Later> heap_;
};

}  // namespace demi

#endif  // SRC_SIM_EVENT_QUEUE_H_
