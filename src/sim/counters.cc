#include "src/sim/counters.h"

#include <cstdio>

namespace demi {

std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kSyscalls:
      return "syscalls";
    case Counter::kLibosCalls:
      return "libos_calls";
    case Counter::kCopies:
      return "copies";
    case Counter::kBytesCopied:
      return "bytes_copied";
    case Counter::kInterrupts:
      return "interrupts";
    case Counter::kContextSwitches:
      return "context_switches";
    case Counter::kWakeups:
      return "wakeups";
    case Counter::kSpuriousWakeups:
      return "spurious_wakeups";
    case Counter::kPacketsTx:
      return "packets_tx";
    case Counter::kPacketsRx:
      return "packets_rx";
    case Counter::kPacketsDropped:
      return "packets_dropped";
    case Counter::kRetransmissions:
      return "retransmissions";
    case Counter::kDoorbells:
      return "doorbells";
    case Counter::kTxBursts:
      return "tx_bursts";
    case Counter::kFramesPerDoorbell:
      return "frames_per_doorbell";
    case Counter::kDelayedAcks:
      return "delayed_acks";
    case Counter::kAcksCoalesced:
      return "acks_coalesced";
    case Counter::kDmaOps:
      return "dma_ops";
    case Counter::kMemRegistrations:
      return "mem_registrations";
    case Counter::kBytesPinned:
      return "bytes_pinned";
    case Counter::kNvmeOps:
      return "nvme_ops";
    case Counter::kDeviceComputeNs:
      return "device_compute_ns";
    case Counter::kHostCpuNs:
      return "host_cpu_ns";
    case Counter::kKvRequests:
      return "kv_requests";
    case Counter::kStreamScans:
      return "stream_scans";
    case Counter::kFaultsInjected:
      return "faults_injected";
    case Counter::kOpsFailed:
      return "ops_failed";
    case Counter::kLinkFlaps:
      return "link_flaps";
    case Counter::kFailovers:
      return "failovers";
    case Counter::kFastPathRepromotions:
      return "fast_path_repromotions";
    case Counter::kRetriesAttempted:
      return "retries_attempted";
    case Counter::kRetryGiveups:
      return "retry_giveups";
    case Counter::kBreakerTrips:
      return "breaker_trips";
    case Counter::kBufferAllocs:
      return "buffer_allocs";
    case Counter::kHeaderPoolHits:
      return "header_pool_hits";
    case Counter::kHeaderPoolMisses:
      return "header_pool_misses";
    case Counter::kCapabilityViolations:
      return "capability_violations";
    case Counter::kDoorbellsThrottled:
      return "doorbells_throttled";
    case Counter::kDescriptorsThrottled:
      return "descriptors_throttled";
    case Counter::kStealAttempts:
      return "steal_attempts";
    case Counter::kCompletionsStolen:
      return "completions_stolen";
    case Counter::kStealAborts:
      return "steal_aborts";
    case Counter::kPushdownChains:
      return "pushdown_chains";
    case Counter::kPushdownSteps:
      return "pushdown_steps";
    case Counter::kBlockHostCompletions:
      return "block_host_completions";
    case Counter::kPromotions:
      return "promotions";
    case Counter::kDemotions:
      return "demotions";
    case Counter::kFastcallCrossings:
      return "fastcall_crossings";
    case Counter::kAcceptsBatched:
      return "accepts_batched";
    case Counter::kNumCounters:
      break;
  }
  return "?";
}

std::string Counters::Describe(std::string_view indent) const {
  std::string out;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (v_[i] == 0) {
      continue;
    }
    char line[128];
    std::snprintf(line, sizeof(line), "%.*s%s=%llu\n", static_cast<int>(indent.size()),
                  indent.data(), CounterName(static_cast<Counter>(i)).data(),
                  static_cast<unsigned long long>(v_[i]));
    out += line;
  }
  return out;
}

}  // namespace demi
