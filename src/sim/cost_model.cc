#include "src/sim/cost_model.h"

#include <cstdio>

namespace demi {

std::string CostModel::Describe() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "cost model (ns unless noted):\n"
      "  cpu %.1f GHz | copy %.4f ns/B (4KB=%lld)\n"
      "  kernel: syscall=%lld socket=%lld stack_tx=%lld stack_rx=%lld irq=%lld "
      "ctxsw=%lld epoll=%lld fs_op=%lld fastcall=%lld\n"
      "  libos: call=%lld ustack_tx=%lld ustack_rx=%lld mtcp_batch=%lld\n"
      "  pcie: doorbell=%lld dma=%lld dma_batch_desc=%lld nic=%lld\n"
      "  smp: cacheline=%lld ipi=%lld steal_probe=%lld\n"
      "  fabric: wire=%lld link=%.0f Gbps\n"
      "  rdma: transport=%lld reg_base=%lld reg_page=%lld\n"
      "  nvme: read=%lld write=%lld %.2f ns/B pushdown_resubmit=%lld\n"
      "  offload: compute_factor=%.2fx setup=%lld\n"
      "  app: kv_request=%lld\n",
      cpu_ghz, copy_ns_per_byte, static_cast<long long>(CopyNs(4096)),
      static_cast<long long>(syscall_ns), static_cast<long long>(kernel_socket_ns),
      static_cast<long long>(kernel_stack_tx_ns), static_cast<long long>(kernel_stack_rx_ns),
      static_cast<long long>(interrupt_ns), static_cast<long long>(context_switch_ns),
      static_cast<long long>(epoll_dispatch_ns), static_cast<long long>(kernel_fs_op_ns),
      static_cast<long long>(fastcall_crossing_ns),
      static_cast<long long>(libos_call_ns), static_cast<long long>(user_stack_tx_ns),
      static_cast<long long>(user_stack_rx_ns), static_cast<long long>(mtcp_batch_delay_ns),
      static_cast<long long>(pcie_doorbell_ns), static_cast<long long>(pcie_dma_ns),
      static_cast<long long>(pcie_dma_batch_descriptor_ns),
      static_cast<long long>(nic_process_ns),
      static_cast<long long>(cacheline_transfer_ns),
      static_cast<long long>(ipi_wakeup_ns), static_cast<long long>(steal_probe_ns),
      static_cast<long long>(wire_latency_ns),
      link_gbps, static_cast<long long>(rdma_transport_ns),
      static_cast<long long>(mem_reg_base_ns), static_cast<long long>(mem_reg_per_page_ns),
      static_cast<long long>(nvme_read_ns), static_cast<long long>(nvme_write_ns),
      nvme_ns_per_byte, static_cast<long long>(nvme_pushdown_resubmit_ns),
      device_compute_factor, static_cast<long long>(offload_setup_ns),
      static_cast<long long>(kv_request_cpu_ns));
  return buf;
}

}  // namespace demi
