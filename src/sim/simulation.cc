#include "src/sim/simulation.h"

#include <algorithm>

#include "src/sim/timer_wheel.h"

namespace demi {

namespace {
std::unique_ptr<EventQueue> MakeEventQueue(SchedulerKind kind) {
  if (kind == SchedulerKind::kBinaryHeap) {
    return std::make_unique<HeapEventQueue>();
  }
  return std::make_unique<TimerWheel>();
}
}  // namespace

Simulation::Simulation(CostModel cost, SchedulerKind scheduler)
    : cost_(cost), scheduler_kind_(scheduler), events_(MakeEventQueue(scheduler)) {}

TimerId Simulation::Schedule(TimeNs delay, std::function<void()> fn) {
  return ScheduleAt(now_ + std::max<TimeNs>(delay, 0), std::move(fn));
}

TimerId Simulation::ScheduleAt(TimeNs when, std::function<void()> fn) {
  ++schedule_calls_;
  const TimerId id = AllocSlot(std::move(fn));
  events_->Push(SchedEntry{std::max(when, now_), next_seq_++, id});
  return id;
}

TimerId Simulation::AllocSlot(std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_fn_slots_.empty()) {
    slot = free_fn_slots_.back();
    free_fn_slots_.pop_back();
    event_fns_[slot].fn = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(event_fns_.size());
    event_fns_.push_back(FnSlot{std::move(fn), 1});
  }
  return static_cast<TimerId>(event_fns_[slot].gen) << 32 | slot;
}

std::function<void()> Simulation::TakeSlot(std::uint32_t slot) {
  FnSlot& s = event_fns_[slot];
  std::function<void()> fn = std::move(s.fn);
  s.fn = nullptr;  // drop captures now, not at slot reuse
  if (++s.gen == 0) {
    s.gen = 1;  // gen 0 + slot 0 would collide with kInvalidTimer
  }
  free_fn_slots_.push_back(slot);
  return fn;
}

void Simulation::Cancel(TimerId id) {
  if (id == kInvalidTimer) {
    return;
  }
  const auto slot = static_cast<std::uint32_t>(id);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= event_fns_.size()) {
    return;
  }
  FnSlot& s = event_fns_[slot];
  if (s.gen != gen || !s.fn) {
    return;  // already fired, slot reused, or already cancelled
  }
  s.fn = nullptr;  // tombstone: the heap entry pops as a no-op at its due time
  ++cancelled_count_;
}

void Simulation::AddPoller(Poller* poller) {
  DEMI_CHECK(poller != nullptr);
  pollers_.push_back(poller);
}

void Simulation::RemovePoller(Poller* poller) {
  pollers_.erase(std::remove(pollers_.begin(), pollers_.end(), poller), pollers_.end());
}

bool Simulation::RunDue() {
  std::uint64_t ran = 0;
  while (true) {
    const SchedEntry* top = events_->Peek();
    if (top == nullptr || top->due > now_) {
      break;
    }
    const SchedEntry ev = events_->Pop();
    // Take the callback out of the pool before running it: it may reschedule
    // (growing the pool), and a cancelled slot (null fn) must be released too.
    std::function<void()> fn = TakeSlot(static_cast<std::uint32_t>(ev.id));
    if (!fn) {
      --cancelled_count_;
      continue;
    }
    ++ran;
    fn();
  }
  if (ran > 0) {
    metrics_.RecordStat(SimStat::kDispatchBatch, ran);
  }
  return ran > 0;
}

bool Simulation::StepOnce() {
  DEMI_CHECK(!in_step_ && "blocking waits may not nest inside Poller::Poll");
  in_step_ = true;
  metrics_.RecordStat(SimStat::kSchedHeapDepth, pending_events());
  const TimeNs poll_start = now_;
  bool progress = false;
  // Iterate by index: pollers may be added during polling (e.g. accept spawns actors).
  for (std::size_t i = 0; i < pollers_.size(); ++i) {
    progress |= pollers_[i]->Poll();
  }
  const TimeNs dispatch_start = now_;
  metrics_.RecordStat(SimStat::kStepPollNs,
                      static_cast<std::uint64_t>(dispatch_start - poll_start));
  progress |= RunDue();
  metrics_.RecordStat(SimStat::kStepDispatchNs,
                      static_cast<std::uint64_t>(now_ - dispatch_start));
  in_step_ = false;
  if (progress) {
    return true;
  }
  // Nothing runnable now: jump to the next scheduled event, skipping cancelled ones.
  while (const SchedEntry* top = events_->Peek()) {
    const std::uint32_t slot = static_cast<std::uint32_t>(top->id);
    if (!event_fns_[slot].fn) {  // cancelled tombstone
      TakeSlot(slot);
      --cancelled_count_;
      events_->Pop();
      continue;
    }
    if (top->due > now_) {
      metrics_.RecordStat(SimStat::kIdleJumpNs,
                          static_cast<std::uint64_t>(top->due - now_));
    }
    now_ = std::max(now_, top->due);
    return RunDue();
  }
  return false;  // completely idle
}

bool Simulation::RunUntil(const std::function<bool()>& pred, TimeNs deadline) {
  while (!pred()) {
    if (now_ > deadline) {
      return false;
    }
    if (!StepOnce()) {
      return pred();
    }
  }
  return true;
}

void Simulation::RunFor(TimeNs duration) {
  const TimeNs end = now_ + duration;
  while (now_ < end) {
    if (!StepOnce()) {
      now_ = end;  // idle: nothing will ever happen; just advance time.
      return;
    }
  }
}

}  // namespace demi
