#include "src/sim/simulation.h"

#include <algorithm>

#include "src/sim/timer_wheel.h"

namespace demi {

namespace {
std::unique_ptr<EventQueue> MakeEventQueue(SchedulerKind kind) {
  if (kind == SchedulerKind::kBinaryHeap) {
    return std::make_unique<HeapEventQueue>();
  }
  return std::make_unique<TimerWheel>();
}
}  // namespace

Simulation::Simulation(CostModel cost, SchedulerKind scheduler)
    : cost_(cost), scheduler_kind_(scheduler), events_(MakeEventQueue(scheduler)) {}

void Simulation::ConfigureCores(int n) {
  DEMI_CHECK(n >= 1);
  while (num_cores() < n) {
    CoreCtx ctx;
    ctx.events = MakeEventQueue(scheduler_kind_);
    ctx.metrics = std::make_unique<MetricsRegistry>();
    ctx.metrics->set_enabled(metrics_.enabled());
    cores_.push_back(std::move(ctx));
  }
}

MetricsRegistry& Simulation::metrics(int core) {
  if (core == 0) {
    return metrics_;
  }
  DEMI_CHECK(core > 0 && core < num_cores());
  return *cores_[static_cast<std::size_t>(core - 1)].metrics;
}

void Simulation::SetMetricsEnabled(bool enabled) {
  metrics_.set_enabled(enabled);
  for (CoreCtx& ctx : cores_) {
    ctx.metrics->set_enabled(enabled);
  }
}

MetricsSnapshot Simulation::MergedSnapshot() {
  MetricsSnapshot snap = metrics_.Snapshot(counters_, now_);
  // Counters are simulation-global and appear exactly once (from the snapshot
  // above); only the per-core histograms and traces need folding in.
  for (CoreCtx& ctx : cores_) {
    ctx.metrics->MergeHistogramsInto(snap);
  }
  std::stable_sort(snap.trace.begin(), snap.trace.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
  return snap;
}

TimeNs Simulation::core_busy_until(int core) const {
  if (core == 0) {
    return now_;
  }
  DEMI_CHECK(core > 0 && core < num_cores());
  return cores_[static_cast<std::size_t>(core - 1)].busy_until;
}

int Simulation::SetHomeCore(int core) {
  DEMI_CHECK(core >= 0 && core < num_cores());
  const int prev = home_core_;
  home_core_ = core;
  return prev;
}

TimerId Simulation::Schedule(TimeNs delay, std::function<void()> fn) {
  return ScheduleAt(now_ + std::max<TimeNs>(delay, 0), std::move(fn));
}

TimerId Simulation::ScheduleAt(TimeNs when, std::function<void()> fn) {
  const int core = current_core_ != 0 ? current_core_ : home_core_;
  return ScheduleAtOn(core, when, std::move(fn));
}

TimerId Simulation::ScheduleOn(int core, TimeNs delay, std::function<void()> fn) {
  return ScheduleAtOn(core, now_ + std::max<TimeNs>(delay, 0), std::move(fn));
}

TimerId Simulation::ScheduleAtOn(int core, TimeNs when, std::function<void()> fn) {
  DEMI_CHECK(core >= 0 && core < num_cores());
  ++schedule_calls_;
  const TimerId id = AllocSlot(std::move(fn));
  QueueOf(core).Push(SchedEntry{std::max(when, now_), next_seq_++, id});
  return id;
}

TimerId Simulation::AllocSlot(std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_fn_slots_.empty()) {
    slot = free_fn_slots_.back();
    free_fn_slots_.pop_back();
    event_fns_[slot].fn = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(event_fns_.size());
    event_fns_.push_back(FnSlot{std::move(fn), 1});
  }
  return static_cast<TimerId>(event_fns_[slot].gen) << 32 | slot;
}

std::function<void()> Simulation::TakeSlot(std::uint32_t slot) {
  FnSlot& s = event_fns_[slot];
  std::function<void()> fn = std::move(s.fn);
  s.fn = nullptr;  // drop captures now, not at slot reuse
  if (++s.gen == 0) {
    s.gen = 1;  // gen 0 + slot 0 would collide with kInvalidTimer
  }
  free_fn_slots_.push_back(slot);
  return fn;
}

void Simulation::Cancel(TimerId id) {
  if (id == kInvalidTimer) {
    return;
  }
  const auto slot = static_cast<std::uint32_t>(id);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= event_fns_.size()) {
    return;
  }
  FnSlot& s = event_fns_[slot];
  if (s.gen != gen || !s.fn) {
    return;  // already fired, slot reused, or already cancelled
  }
  s.fn = nullptr;  // tombstone: the heap entry pops as a no-op at its due time
  ++cancelled_count_;
}

void Simulation::AddPoller(Poller* poller) {
  AddPollerOn(current_core_ != 0 ? current_core_ : home_core_, poller);
}

void Simulation::AddPollerOn(int core, Poller* poller) {
  DEMI_CHECK(poller != nullptr);
  DEMI_CHECK(core >= 0 && core < num_cores());
  if (core == 0) {
    pollers_.push_back(poller);
  } else {
    cores_[static_cast<std::size_t>(core - 1)].pollers.push_back(poller);
  }
}

void Simulation::RemovePoller(Poller* poller) {
  pollers_.erase(std::remove(pollers_.begin(), pollers_.end(), poller), pollers_.end());
  for (CoreCtx& ctx : cores_) {
    ctx.pollers.erase(std::remove(ctx.pollers.begin(), ctx.pollers.end(), poller),
                      ctx.pollers.end());
  }
}

bool Simulation::idle() const {
  if (!events_->empty()) {
    return false;
  }
  for (const CoreCtx& ctx : cores_) {
    if (!ctx.events->empty()) {
      return false;
    }
  }
  return true;
}

std::size_t Simulation::pending_events() const {
  std::size_t total = events_->size();
  for (const CoreCtx& ctx : cores_) {
    total += ctx.events->size();
  }
  return total - cancelled_count_;
}

int Simulation::EarliestCore() {
  int best = -1;
  const SchedEntry* best_top = nullptr;
  for (int core = 0; core < num_cores(); ++core) {
    EventQueue& queue = QueueOf(core);
    // Release cancelled tombstones at the head so they neither win the comparison
    // nor linger as phantom next-event times for the idle jump.
    const SchedEntry* top;
    while ((top = queue.Peek()) != nullptr &&
           !event_fns_[static_cast<std::uint32_t>(top->id)].fn) {
      TakeSlot(static_cast<std::uint32_t>(top->id));
      --cancelled_count_;
      queue.Pop();
    }
    if (top == nullptr) {
      continue;
    }
    if (best_top == nullptr || top->due < best_top->due ||
        (top->due == best_top->due && top->seq < best_top->seq)) {
      best = core;
      best_top = top;
    }
  }
  return best;
}

void Simulation::RunInBubble(int core, const std::function<void()>& fn) {
  CoreCtx& ctx = cores_[static_cast<std::size_t>(core - 1)];
  const TimeNs saved = now_;
  const int prev_core = current_core_;
  current_core_ = core;
  fn();
  current_core_ = prev_core;
  ctx.busy_until = std::max(ctx.busy_until, now_);
  now_ = saved;
}

bool Simulation::RunDue() {
  std::uint64_t ran = 0;
  while (true) {
    const int core = cores_.empty() ? (events_->Peek() != nullptr ? 0 : -1)
                                    : EarliestCore();
    if (core < 0) {
      break;
    }
    EventQueue& queue = QueueOf(core);
    const SchedEntry* top = queue.Peek();
    if (top == nullptr || top->due > now_) {
      break;
    }
    const SchedEntry ev = queue.Pop();
    // Take the callback out of the pool before running it: it may reschedule
    // (growing the pool), and a cancelled slot (null fn) must be released too.
    std::function<void()> fn = TakeSlot(static_cast<std::uint32_t>(ev.id));
    if (!fn) {
      --cancelled_count_;
      continue;
    }
    ++ran;
    if (core == 0) {
      fn();
    } else {
      // The event runs in its core's context at the global due time: device-side
      // completions (which charge no CPU) keep their exact timing, while CPU an
      // event callback does charge extends the core's busy horizon from here —
      // interrupt-style preemption rather than queueing behind the poll loop.
      RunInBubble(core, fn);
    }
  }
  if (ran > 0) {
    metrics_.RecordStat(SimStat::kDispatchBatch, ran);
  }
  return ran > 0;
}

bool Simulation::StepOnce() {
  DEMI_CHECK(!in_step_ && "blocking waits may not nest inside Poller::Poll");
  in_step_ = true;
  metrics_.RecordStat(SimStat::kSchedHeapDepth, pending_events());
  const TimeNs poll_start = now_;
  bool progress = false;
  // Iterate by index: pollers may be added during polling (e.g. accept spawns actors).
  for (std::size_t i = 0; i < pollers_.size(); ++i) {
    progress |= pollers_[i]->Poll();
  }
  // Bubble cores, in fixed index order (the deterministic interleaving rule): a
  // core polls only once the global clock has caught up with its busy horizon, and
  // the clock advance its poll causes becomes the new horizon.
  for (int core = 1; core < num_cores(); ++core) {
    CoreCtx& ctx = cores_[static_cast<std::size_t>(core - 1)];
    if (ctx.pollers.empty() || now_ < ctx.busy_until) {
      continue;
    }
    bool core_progress = false;
    RunInBubble(core, [&] {
      for (std::size_t i = 0; i < ctx.pollers.size(); ++i) {
        core_progress |= ctx.pollers[i]->Poll();
      }
    });
    progress |= core_progress;
  }
  const TimeNs dispatch_start = now_;
  metrics_.RecordStat(SimStat::kStepPollNs,
                      static_cast<std::uint64_t>(dispatch_start - poll_start));
  progress |= RunDue();
  metrics_.RecordStat(SimStat::kStepDispatchNs,
                      static_cast<std::uint64_t>(now_ - dispatch_start));
  in_step_ = false;
  if (progress) {
    return true;
  }
  // Nothing runnable now: jump to the next wakeup. Candidates are the earliest
  // scheduled event across all cores and the nearest busy horizon of a core that
  // still has pollers waiting to run (its next poll is the wakeup).
  const int core = EarliestCore();
  TimeNs target = -1;
  if (core >= 0) {
    target = QueueOf(core).Peek()->due;
  }
  for (int c = 1; c < num_cores(); ++c) {
    const CoreCtx& ctx = cores_[static_cast<std::size_t>(c - 1)];
    if (!ctx.pollers.empty() && ctx.busy_until > now_ &&
        (target < 0 || ctx.busy_until < target)) {
      target = ctx.busy_until;
    }
  }
  if (target < 0) {
    return false;  // completely idle
  }
  if (target > now_) {
    metrics_.RecordStat(SimStat::kIdleJumpNs, static_cast<std::uint64_t>(target - now_));
  }
  now_ = std::max(now_, target);
  RunDue();
  return true;  // time advanced (and/or events ran): the next step can make progress
}

bool Simulation::RunUntil(const std::function<bool()>& pred, TimeNs deadline) {
  while (!pred()) {
    if (now_ > deadline) {
      return false;
    }
    if (!StepOnce()) {
      return pred();
    }
  }
  return true;
}

void Simulation::RunFor(TimeNs duration) {
  const TimeNs end = now_ + duration;
  while (now_ < end) {
    if (!StepOnce()) {
      now_ = end;  // idle: nothing will ever happen; just advance time.
      return;
    }
  }
}

}  // namespace demi
