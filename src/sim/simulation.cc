#include "src/sim/simulation.h"

#include <algorithm>

namespace demi {

Simulation::Simulation(CostModel cost) : cost_(cost) {}

TimerId Simulation::Schedule(TimeNs delay, std::function<void()> fn) {
  return ScheduleAt(now_ + std::max<TimeNs>(delay, 0), std::move(fn));
}

TimerId Simulation::ScheduleAt(TimeNs when, std::function<void()> fn) {
  const TimerId id = next_id_++;
  events_.push(Event{std::max(when, now_), id, std::move(fn)});
  return id;
}

void Simulation::Cancel(TimerId id) {
  if (id != kInvalidTimer) {
    cancelled_.insert(id);
  }
}

void Simulation::AddPoller(Poller* poller) {
  DEMI_CHECK(poller != nullptr);
  pollers_.push_back(poller);
}

void Simulation::RemovePoller(Poller* poller) {
  pollers_.erase(std::remove(pollers_.begin(), pollers_.end(), poller), pollers_.end());
}

bool Simulation::RunDue() {
  bool ran = false;
  while (!events_.empty() && events_.top().due <= now_) {
    Event ev = events_.top();
    events_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    ran = true;
    ev.fn();
  }
  return ran;
}

bool Simulation::StepOnce() {
  DEMI_CHECK(!in_step_ && "blocking waits may not nest inside Poller::Poll");
  in_step_ = true;
  bool progress = false;
  // Iterate by index: pollers may be added during polling (e.g. accept spawns actors).
  for (std::size_t i = 0; i < pollers_.size(); ++i) {
    progress |= pollers_[i]->Poll();
  }
  progress |= RunDue();
  in_step_ = false;
  if (progress) {
    return true;
  }
  // Nothing runnable now: jump to the next scheduled event, skipping cancelled ones.
  while (!events_.empty()) {
    if (auto it = cancelled_.find(events_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      events_.pop();
      continue;
    }
    now_ = std::max(now_, events_.top().due);
    return RunDue();
  }
  return false;  // completely idle
}

bool Simulation::RunUntil(const std::function<bool()>& pred, TimeNs deadline) {
  while (!pred()) {
    if (now_ > deadline) {
      return false;
    }
    if (!StepOnce()) {
      return pred();
    }
  }
  return true;
}

void Simulation::RunFor(TimeNs duration) {
  const TimeNs end = now_ + duration;
  while (now_ < end) {
    if (!StepOnce()) {
      now_ = end;  // idle: nothing will ever happen; just advance time.
      return;
    }
  }
}

}  // namespace demi
