// Named event counters, kept per simulated host and aggregated globally.
// These drive the "where did the nanoseconds go" breakdowns in the F1/F2 benches and
// the wakeup/copy/registration counts in C1/C3/C4.

#ifndef SRC_SIM_COUNTERS_H_
#define SRC_SIM_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace demi {

enum class Counter : std::size_t {
  kSyscalls = 0,        // legacy-kernel syscall crossings
  kLibosCalls,          // Demikernel interface calls
  kCopies,              // discrete copy operations
  kBytesCopied,         // bytes moved by copies
  kInterrupts,          // device interrupts delivered (blocking kernel path)
  kContextSwitches,     // thread context switches
  kWakeups,             // waiter wakeups (epoll or wait_*)
  kSpuriousWakeups,     // wakeups that found no work (thundering herd)
  kPacketsTx,
  kPacketsRx,
  kPacketsDropped,      // fabric loss + ring overflows
  kRetransmissions,     // TCP segments retransmitted
  kDoorbells,           // PCIe doorbell rings
  kTxBursts,            // TransmitBurst calls that posted at least one frame
  kFramesPerDoorbell,   // frames posted across all bursts (divide by kTxBursts)
  kDelayedAcks,         // pure ACKs emitted by the delayed-ack timer
  kAcksCoalesced,       // ACKs avoided: absorbed by a cumulative ACK or piggybacked
  kDmaOps,              // device DMA transactions
  kMemRegistrations,    // memory regions registered with a device
  kBytesPinned,         // bytes pinned by registrations (running total)
  kNvmeOps,
  kDeviceComputeNs,     // ns of app-function compute executed on-device (offload)
  kHostCpuNs,           // ns of CPU charged on the host
  kKvRequests,          // application-level requests served
  kStreamScans,         // partial-message re-scans (C2 stream wasted work)
  kFaultsInjected,      // fault events fired by the FaultInjector
  kOpsFailed,           // device operations failed because of an injected fault
  kLinkFlaps,           // NIC link down transitions
  kFailovers,           // sessions migrated bypass -> legacy-kernel path
  kFastPathRepromotions,  // sessions migrated back legacy -> bypass path
  kRetriesAttempted,    // recovery (re)connect / I/O retry attempts started
  kRetryGiveups,        // recovery gave up (deadline or attempts exhausted)
  kBreakerTrips,        // per-queue circuit breakers tripped to failover
  kBufferAllocs,        // Buffer allocations on the data path (pool or heap)
  kHeaderPoolHits,      // protocol headers served from the pre-registered header pool
  kHeaderPoolMisses,    // header requests that fell back to a general/heap allocation
  kCapabilityViolations,   // tenant descriptors rejected at the device capability check
  kDoorbellsThrottled,     // tenant doorbells dropped by the per-tenant token bucket
  kDescriptorsThrottled,   // tenant descriptors deferred by the per-tenant token bucket
  kStealAttempts,          // steal probes: an idle worker inspected a victim's ring
  kCompletionsStolen,      // ready completions moved cross-core by stealing
  kStealAborts,            // probes that found nothing stealable (below threshold)
  kPushdownChains,         // device-side push-down chains started
  kPushdownSteps,          // dependent reads resubmitted device-side (no host completion)
  kBlockHostCompletions,   // block-device CQ entries drained by the host
  kPromotions,             // policy-driven migrations legacy -> bypass path
  kDemotions,              // policy-driven migrations bypass -> legacy path
  kFastcallCrossings,      // control ops served via the cheap fastcall entry
  kAcceptsBatched,         // connections accepted through one-crossing batch drains
  kNumCounters,
};

constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kNumCounters);

std::string_view CounterName(Counter c);

class Counters {
 public:
  void Add(Counter c, std::uint64_t n = 1) { v_[static_cast<std::size_t>(c)] += n; }
  void Sub(Counter c, std::uint64_t n = 1) { v_[static_cast<std::size_t>(c)] -= n; }
  std::uint64_t Get(Counter c) const { return v_[static_cast<std::size_t>(c)]; }
  void Reset() { v_.fill(0); }

  // All non-zero counters, one per line, with the given indent prefix.
  std::string Describe(std::string_view indent = "  ") const;

 private:
  std::array<std::uint64_t, kNumCounters> v_{};
};

}  // namespace demi

#endif  // SRC_SIM_COUNTERS_H_
