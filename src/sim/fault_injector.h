// Seeded, schedulable device-fault injection (§4.4 wait correctness, §4.5 protection).
//
// The simulated devices in src/hw are wired to an optional FaultInjector and consult it
// on every operation. Faults come from two sources that share one virtual-time ordering:
//
//   * Scripts: "at time T, fail device D" / "at T, partition ports A<->B for W ns".
//     Scripted events ride the Simulation event queue, so they interleave with device
//     and stack events exactly as a real failure would.
//   * Rates: per-device, per-kind probabilities consulted on each operation, drawn from
//     a dedicated Rng so a given seed always produces the same fault sequence.
//
// Devices pull state (link_up / device_failed / NextOpFault / Partitioned); the injector
// additionally pushes a FaultEvent to the device's registered handler when a scripted or
// latched fault fires, so devices can flush queues and complete pending work with typed
// errors at the moment of failure rather than on the next poll.
//
// Determinism contract: with the same seed, the same script calls, and the same workload,
// the full fault sequence — times, kinds, victims — is bit-for-bit reproducible.

#ifndef SRC_SIM_FAULT_INJECTOR_H_
#define SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace demi {

enum class FaultKind : std::uint8_t {
  kLinkDown,      // NIC link goes down; frames are dropped at the wire.
  kLinkUp,        // NIC link restored.
  kDeviceFailed,  // permanent device death; all pending and future ops fail.
  kQpError,       // RDMA NIC forces all queue pairs into the error state.
  kMediaError,    // block device: next matching op fails with kMediaError.
  kOpTimeout,     // block device: next matching op completes late with kTimedOut.
  kRegExhausted,  // memory-registration table is full; RegisterMemory fails.
  kQpRestored,    // RDMA NIC recovered: queue pairs may be re-created.
  kRegRestored,   // memory-registration table has room again.
  kPartition,     // fabric stops forwarding between a port pair.
  kHeal,          // fabric partition removed.
  kHostileBurst,  // a hostile tenant driver opens fire (load generators subscribe).
  kHostileQuiet,  // the hostile tenant goes quiet again.
};

std::string_view FaultKindName(FaultKind kind);

// Identifies one registered device inside the injector. Stable for the injector's life.
using FaultDeviceId = std::uint32_t;
constexpr FaultDeviceId kInvalidFaultDevice = ~0u;

struct FaultEvent {
  FaultKind kind;
  FaultDeviceId device = kInvalidFaultDevice;
  TimeNs at = 0;
};

class FaultInjector {
 public:
  // Called synchronously when a scripted fault fires against the device.
  using FaultHandler = std::function<void(const FaultEvent&)>;

  explicit FaultInjector(Simulation* sim, std::uint64_t seed = 1);

  // Registers a device (NIC, RDMA NIC, block device) and its fault handler.
  FaultDeviceId Register(std::string name, FaultHandler handler = nullptr);

  // Re-arms the rate Rng; clears nothing else. Call before a run for replayability.
  void Reseed(std::uint64_t seed);

  // ---- Pull-side state queries (cheap; devices call these on every operation) ----
  bool link_up(FaultDeviceId dev) const;
  bool device_failed(FaultDeviceId dev) const;
  bool reg_exhausted(FaultDeviceId dev) const;

  // Consumes and returns the next one-shot per-op fault queued for the device, if any;
  // otherwise rolls the per-kind rates. Counts kOpsFailed when a fault is returned.
  // Only kMediaError / kOpTimeout are delivered through this path.
  std::optional<FaultKind> NextOpFault(FaultDeviceId dev);

  // True while any active partition separates the two fabric ports (order-insensitive).
  bool Partitioned(std::uint32_t port_a, std::uint32_t port_b) const;

  // ---- Scripted faults (virtual-time scheduled) ----
  void ScheduleLinkFlap(FaultDeviceId dev, TimeNs at, TimeNs down_for);
  void ScheduleLinkDown(FaultDeviceId dev, TimeNs at);
  void ScheduleLinkUp(FaultDeviceId dev, TimeNs at);
  void ScheduleDeviceFailure(FaultDeviceId dev, TimeNs at);
  void ScheduleQpError(FaultDeviceId dev, TimeNs at);
  void ScheduleRegExhaustion(FaultDeviceId dev, TimeNs at);
  // Auto-recovering variants: the fault fires at `at` and the matching restore event
  // (kQpRestored / kRegRestored) fires at `at + recover_after`, so retry success and
  // retry exhaustion are both reachable from a seeded script.
  void ScheduleTransientQpError(FaultDeviceId dev, TimeNs at, TimeNs recover_after);
  void ScheduleTransientRegExhaustion(FaultDeviceId dev, TimeNs at, TimeNs recover_after);
  // Queues a one-shot per-operation fault (kMediaError or kOpTimeout) armed at `at`.
  void ScheduleOpFault(FaultDeviceId dev, FaultKind kind, TimeNs at);
  // Hostile-tenant chaos phases: kHostileBurst fires at `at` and kHostileQuiet at
  // `at + for_ns`. The injector keeps no state for these; a registered hostile load
  // generator (src/load/hostile_tenant) starts and stops flooding in its handler, so
  // attack windows share the same seeded virtual-time script as device faults.
  void ScheduleHostileBurst(FaultDeviceId dev, TimeNs at, TimeNs for_ns);
  void SchedulePartition(std::uint32_t port_a, std::uint32_t port_b, TimeNs at,
                         TimeNs heal_after);

  // ---- Rate-based faults ----
  // Every NextOpFault() consult returns `kind` with probability `rate` (first match wins,
  // in the order the rates were set). Rate 0 removes the entry.
  void SetOpFaultRate(FaultDeviceId dev, FaultKind kind, double rate);

  const std::string& device_name(FaultDeviceId dev) const;
  std::size_t num_devices() const { return devices_.size(); }
  std::uint64_t faults_fired() const { return faults_fired_; }

 private:
  struct Device {
    std::string name;
    FaultHandler handler;
    bool link_up = true;
    bool failed = false;
    bool reg_exhausted = false;
    std::deque<FaultKind> one_shot_ops;           // armed per-op faults, FIFO
    std::vector<std::pair<FaultKind, double>> op_rates;
  };

  Device& Dev(FaultDeviceId dev);
  const Device& Dev(FaultDeviceId dev) const;

  // Applies a fault now: mutates device state, bumps counters, notifies the handler.
  void Fire(FaultEvent event);

  static std::uint64_t PairKey(std::uint32_t a, std::uint32_t b);

  Simulation* sim_;
  Rng rng_;
  std::vector<Device> devices_;
  // Normalized port pair -> number of active partitions covering it (overlaps stack).
  std::map<std::uint64_t, int> partitions_;
  std::uint64_t faults_fired_ = 0;
};

}  // namespace demi

#endif  // SRC_SIM_FAULT_INJECTOR_H_
