#include "src/sim/fault_injector.h"

#include "src/common/logging.h"

namespace demi {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kLinkUp:
      return "link_up";
    case FaultKind::kDeviceFailed:
      return "device_failed";
    case FaultKind::kQpError:
      return "qp_error";
    case FaultKind::kMediaError:
      return "media_error";
    case FaultKind::kOpTimeout:
      return "op_timeout";
    case FaultKind::kRegExhausted:
      return "reg_exhausted";
    case FaultKind::kQpRestored:
      return "qp_restored";
    case FaultKind::kRegRestored:
      return "reg_restored";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kHostileBurst:
      return "hostile_burst";
    case FaultKind::kHostileQuiet:
      return "hostile_quiet";
  }
  return "?";
}

FaultInjector::FaultInjector(Simulation* sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

FaultDeviceId FaultInjector::Register(std::string name, FaultHandler handler) {
  Device dev;
  dev.name = std::move(name);
  dev.handler = std::move(handler);
  devices_.push_back(std::move(dev));
  return static_cast<FaultDeviceId>(devices_.size() - 1);
}

void FaultInjector::Reseed(std::uint64_t seed) { rng_ = Rng(seed); }

FaultInjector::Device& FaultInjector::Dev(FaultDeviceId dev) {
  DEMI_CHECK(dev < devices_.size());
  return devices_[dev];
}

const FaultInjector::Device& FaultInjector::Dev(FaultDeviceId dev) const {
  DEMI_CHECK(dev < devices_.size());
  return devices_[dev];
}

bool FaultInjector::link_up(FaultDeviceId dev) const {
  const Device& d = Dev(dev);
  return d.link_up && !d.failed;
}

bool FaultInjector::device_failed(FaultDeviceId dev) const { return Dev(dev).failed; }

bool FaultInjector::reg_exhausted(FaultDeviceId dev) const { return Dev(dev).reg_exhausted; }

std::optional<FaultKind> FaultInjector::NextOpFault(FaultDeviceId dev) {
  Device& d = Dev(dev);
  std::optional<FaultKind> hit;
  if (!d.one_shot_ops.empty()) {
    hit = d.one_shot_ops.front();
    d.one_shot_ops.pop_front();
  } else {
    for (const auto& [kind, rate] : d.op_rates) {
      if (rng_.NextBool(rate)) {
        hit = kind;
        break;
      }
    }
  }
  if (hit) {
    sim_->counters().Add(Counter::kOpsFailed);
    LOG_DEBUG << "fault: op fault " << FaultKindName(*hit) << " on " << d.name << " @ "
              << sim_->now();
  }
  return hit;
}

std::uint64_t FaultInjector::PairKey(std::uint32_t a, std::uint32_t b) {
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

bool FaultInjector::Partitioned(std::uint32_t port_a, std::uint32_t port_b) const {
  auto it = partitions_.find(PairKey(port_a, port_b));
  return it != partitions_.end() && it->second > 0;
}

void FaultInjector::Fire(FaultEvent event) {
  event.at = sim_->now();
  ++faults_fired_;
  sim_->counters().Add(Counter::kFaultsInjected);
  sim_->metrics().Trace(TraceKind::kFaultInjected, event.at, event.device,
                        static_cast<std::uint64_t>(event.kind));
  if (event.device != kInvalidFaultDevice) {
    Device& d = Dev(event.device);
    switch (event.kind) {
      case FaultKind::kLinkDown:
        if (d.link_up) {
          sim_->counters().Add(Counter::kLinkFlaps);
          sim_->metrics().Trace(TraceKind::kLinkFlap, event.at, event.device);
        }
        d.link_up = false;
        break;
      case FaultKind::kLinkUp:
        d.link_up = true;
        break;
      case FaultKind::kDeviceFailed:
        d.failed = true;
        break;
      case FaultKind::kRegExhausted:
        d.reg_exhausted = true;
        break;
      case FaultKind::kRegRestored:
        d.reg_exhausted = false;
        break;
      case FaultKind::kMediaError:
      case FaultKind::kOpTimeout:
        d.one_shot_ops.push_back(event.kind);
        break;
      case FaultKind::kQpError:
      case FaultKind::kQpRestored:
      case FaultKind::kPartition:
      case FaultKind::kHeal:
      case FaultKind::kHostileBurst:
      case FaultKind::kHostileQuiet:
        break;  // no latched per-device state; the handler/partition map carries it
    }
    LOG_DEBUG << "fault: " << FaultKindName(event.kind) << " on " << d.name << " @ "
              << event.at;
    if (d.handler) {
      d.handler(event);
    }
  }
}

void FaultInjector::ScheduleLinkDown(FaultDeviceId dev, TimeNs at) {
  sim_->ScheduleAt(at, [this, dev] { Fire({FaultKind::kLinkDown, dev}); });
}

void FaultInjector::ScheduleLinkUp(FaultDeviceId dev, TimeNs at) {
  sim_->ScheduleAt(at, [this, dev] { Fire({FaultKind::kLinkUp, dev}); });
}

void FaultInjector::ScheduleLinkFlap(FaultDeviceId dev, TimeNs at, TimeNs down_for) {
  ScheduleLinkDown(dev, at);
  ScheduleLinkUp(dev, at + down_for);
}

void FaultInjector::ScheduleDeviceFailure(FaultDeviceId dev, TimeNs at) {
  sim_->ScheduleAt(at, [this, dev] { Fire({FaultKind::kDeviceFailed, dev}); });
}

void FaultInjector::ScheduleQpError(FaultDeviceId dev, TimeNs at) {
  sim_->ScheduleAt(at, [this, dev] { Fire({FaultKind::kQpError, dev}); });
}

void FaultInjector::ScheduleRegExhaustion(FaultDeviceId dev, TimeNs at) {
  sim_->ScheduleAt(at, [this, dev] { Fire({FaultKind::kRegExhausted, dev}); });
}

void FaultInjector::ScheduleTransientQpError(FaultDeviceId dev, TimeNs at,
                                             TimeNs recover_after) {
  ScheduleQpError(dev, at);
  sim_->ScheduleAt(at + recover_after, [this, dev] { Fire({FaultKind::kQpRestored, dev}); });
}

void FaultInjector::ScheduleTransientRegExhaustion(FaultDeviceId dev, TimeNs at,
                                                   TimeNs recover_after) {
  ScheduleRegExhaustion(dev, at);
  sim_->ScheduleAt(at + recover_after, [this, dev] { Fire({FaultKind::kRegRestored, dev}); });
}

void FaultInjector::ScheduleOpFault(FaultDeviceId dev, FaultKind kind, TimeNs at) {
  DEMI_CHECK(kind == FaultKind::kMediaError || kind == FaultKind::kOpTimeout);
  sim_->ScheduleAt(at, [this, dev, kind] { Fire({kind, dev}); });
}

void FaultInjector::ScheduleHostileBurst(FaultDeviceId dev, TimeNs at, TimeNs for_ns) {
  sim_->ScheduleAt(at, [this, dev] { Fire({FaultKind::kHostileBurst, dev}); });
  sim_->ScheduleAt(at + for_ns, [this, dev] { Fire({FaultKind::kHostileQuiet, dev}); });
}

void FaultInjector::SchedulePartition(std::uint32_t port_a, std::uint32_t port_b, TimeNs at,
                                      TimeNs heal_after) {
  const std::uint64_t key = PairKey(port_a, port_b);
  sim_->ScheduleAt(at, [this, key] {
    ++partitions_[key];
    Fire({FaultKind::kPartition, kInvalidFaultDevice});
  });
  sim_->ScheduleAt(at + heal_after, [this, key] {
    auto it = partitions_.find(key);
    if (it != partitions_.end() && --it->second <= 0) {
      partitions_.erase(it);
    }
    Fire({FaultKind::kHeal, kInvalidFaultDevice});
  });
}

void FaultInjector::SetOpFaultRate(FaultDeviceId dev, FaultKind kind, double rate) {
  DEMI_CHECK(kind == FaultKind::kMediaError || kind == FaultKind::kOpTimeout);
  Device& d = Dev(dev);
  auto& rates = d.op_rates;
  for (auto it = rates.begin(); it != rates.end(); ++it) {
    if (it->first == kind) {
      if (rate <= 0) {
        rates.erase(it);
      } else {
        it->second = rate;
      }
      return;
    }
  }
  if (rate > 0) {
    rates.emplace_back(kind, rate);
  }
}

const std::string& FaultInjector::device_name(FaultDeviceId dev) const { return Dev(dev).name; }

}  // namespace demi
