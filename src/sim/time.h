// Simulated time. The whole reproduction runs on a virtual clock measured in
// nanoseconds; nothing reads wall-clock time, so experiments are deterministic.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace demi {

// Nanoseconds of simulated time (absolute or relative by context).
using TimeNs = std::int64_t;

constexpr TimeNs kNanosecond = 1;
constexpr TimeNs kMicrosecond = 1000;
constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
constexpr TimeNs kSecond = 1000 * kMillisecond;

constexpr double ToMicros(TimeNs t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double ToMillis(TimeNs t) { return static_cast<double>(t) / kMillisecond; }
constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / kSecond; }

}  // namespace demi

#endif  // SRC_SIM_TIME_H_
