#include "src/sim/metrics.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace demi {

namespace {
constexpr std::size_t kDefaultTraceCapacity = 256;
}  // namespace

std::string_view OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kPush:
      return "push";
    case OpKind::kPop:
      return "pop";
    case OpKind::kAccept:
      return "accept";
    case OpKind::kConnect:
      return "connect";
  }
  return "?";
}

std::string_view SimStatName(SimStat s) {
  switch (s) {
    case SimStat::kStepPollNs:
      return "step_poll_ns";
    case SimStat::kStepDispatchNs:
      return "step_dispatch_ns";
    case SimStat::kIdleJumpNs:
      return "idle_jump_ns";
    case SimStat::kDispatchBatch:
      return "dispatch_batch";
    case SimStat::kSchedHeapDepth:
      return "sched_heap_depth";
    case SimStat::kReadyRingDepth:
      return "ready_ring_depth";
    case SimStat::kEventLoopBatch:
      return "event_loop_batch";
    case SimStat::kTxBurstFrames:
      return "tx_burst_frames";
    case SimStat::kRxBurstFrames:
      return "rx_burst_frames";
    case SimStat::kNumSimStats:
      break;
  }
  return "?";
}

std::string_view TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kFaultInjected:
      return "fault_injected";
    case TraceKind::kLinkFlap:
      return "link_flap";
    case TraceKind::kRetryAttempt:
      return "retry_attempt";
    case TraceKind::kBreakerTrip:
      return "breaker_trip";
    case TraceKind::kFailover:
      return "failover";
    case TraceKind::kRepromotion:
      return "repromotion";
    case TraceKind::kRetryGiveup:
      return "retry_giveup";
    case TraceKind::kPathPromotion:
      return "path_promotion";
    case TraceKind::kPathDemotion:
      return "path_demotion";
  }
  return "?";
}

// --- TraceRing ------------------------------------------------------------------

void TraceRing::Append(TraceEvent ev) {
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() < capacity_) {
    events_.push_back(ev);
    return;
  }
  events_[head_] = ev;  // overwrite the oldest retained event
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRing::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void TraceRing::Clear() {
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

// --- snapshot -------------------------------------------------------------------

HistogramStats SummarizeHistogram(const Histogram& h) {
  HistogramStats s;
  s.count = h.count();
  s.min = h.min();
  s.max = h.max();
  s.mean = h.mean();
  s.p50 = h.P50();
  s.p99 = h.P99();
  s.p999 = h.P999();
  return s;
}

namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void AppendHistJson(std::string& out, const Histogram& h) {
  const HistogramStats s = SummarizeHistogram(h);
  AppendF(out,
          "{\"n\":%llu,\"min\":%llu,\"max\":%llu,\"mean\":%.1f,"
          "\"p50\":%llu,\"p99\":%llu,\"p999\":%llu}",
          static_cast<unsigned long long>(s.count),
          static_cast<unsigned long long>(s.min),
          static_cast<unsigned long long>(s.max), s.mean,
          static_cast<unsigned long long>(s.p50),
          static_cast<unsigned long long>(s.p99),
          static_cast<unsigned long long>(s.p999));
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.reserve(2048);
  AppendF(out, "{\"taken_at_ns\":%lld", static_cast<long long>(taken_at));

  out += ",\"counters\":{";
  const char* sep = "";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (counters[i] == 0) {
      continue;
    }
    AppendF(out, "%s\"%.*s\":%llu", sep,
            static_cast<int>(CounterName(static_cast<Counter>(i)).size()),
            CounterName(static_cast<Counter>(i)).data(),
            static_cast<unsigned long long>(counters[i]));
    sep = ",";
  }
  out += "}";

  out += ",\"op_latency_ns\":{";
  sep = "";
  for (const auto& [libos, by_op] : op_latency) {
    bool any = false;
    for (const Histogram& h : by_op) {
      any |= h.count() > 0;
    }
    if (!any) {
      continue;
    }
    AppendF(out, "%s\"%s\":{", sep, libos.c_str());
    const char* op_sep = "";
    for (std::size_t op = 0; op < kNumOpKinds; ++op) {
      if (by_op[op].count() == 0) {
        continue;
      }
      AppendF(out, "%s\"%.*s\":", op_sep,
              static_cast<int>(OpKindName(static_cast<OpKind>(op)).size()),
              OpKindName(static_cast<OpKind>(op)).data());
      AppendHistJson(out, by_op[op]);
      op_sep = ",";
    }
    out += "}";
    sep = ",";
  }
  out += "}";

  out += ",\"sim_stats\":{";
  sep = "";
  for (std::size_t i = 0; i < kNumSimStats; ++i) {
    if (sim_stats[i].count() == 0) {
      continue;
    }
    AppendF(out, "%s\"%.*s\":", sep,
            static_cast<int>(SimStatName(static_cast<SimStat>(i)).size()),
            SimStatName(static_cast<SimStat>(i)).data());
    AppendHistJson(out, sim_stats[i]);
    sep = ",";
  }
  out += "}";

  out += ",\"named\":{";
  sep = "";
  for (const auto& [name, h] : named) {
    if (h.count() == 0) {
      continue;
    }
    AppendF(out, "%s\"%s\":", sep, name.c_str());
    AppendHistJson(out, h);
    sep = ",";
  }
  out += "}";

  AppendF(out, ",\"trace\":{\"dropped\":%llu,\"events\":[",
          static_cast<unsigned long long>(trace_dropped));
  sep = "";
  for (const TraceEvent& ev : trace) {
    AppendF(out, "%s{\"at_ns\":%lld,\"event\":\"%.*s\",\"a\":%llu,\"b\":%llu}", sep,
            static_cast<long long>(ev.at),
            static_cast<int>(TraceKindName(ev.kind).size()),
            TraceKindName(ev.kind).data(), static_cast<unsigned long long>(ev.a),
            static_cast<unsigned long long>(ev.b));
    sep = ",";
  }
  out += "]}}";
  return out;
}

// --- registry -------------------------------------------------------------------

MetricsRegistry::MetricsRegistry() : trace_(kDefaultTraceCapacity) {}

std::array<Histogram, kNumOpKinds>* MetricsRegistry::OpLatencyHandle(
    std::string_view libos) {
  auto it = op_latency_.find(libos);
  if (it == op_latency_.end()) {
    it = op_latency_.emplace(std::string(libos),
                             std::array<Histogram, kNumOpKinds>{}).first;
  }
  return &it->second;
}

const Histogram* MetricsRegistry::op_latency(std::string_view libos, OpKind op) const {
  auto it = op_latency_.find(libos);
  if (it == op_latency_.end()) {
    return nullptr;
  }
  return &it->second[static_cast<std::size_t>(op)];
}

Histogram* MetricsRegistry::NamedHistogram(std::string_view name) {
  auto it = named_.find(name);
  if (it == named_.end()) {
    it = named_.emplace(std::string(name), Histogram{}).first;
  }
  return &it->second;
}

const Histogram* MetricsRegistry::named(std::string_view name) const {
  auto it = named_.find(name);
  return it == named_.end() ? nullptr : &it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot(const Counters& counters, TimeNs now) const {
  MetricsSnapshot snap;
  snap.taken_at = now;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    snap.counters[i] = counters.Get(static_cast<Counter>(i));
  }
  for (const auto& [libos, by_op] : op_latency_) {
    snap.op_latency.emplace(libos, by_op);
  }
  for (const auto& [name, h] : named_) {
    snap.named.emplace(name, h);
  }
  snap.sim_stats = sim_stats_;
  snap.trace = trace_.Events();
  snap.trace_dropped = trace_.dropped();
  return snap;
}

void MetricsRegistry::MergeHistogramsInto(MetricsSnapshot& snap) const {
  for (const auto& [libos, by_op] : op_latency_) {
    auto [it, inserted] = snap.op_latency.try_emplace(libos, by_op);
    if (!inserted) {
      for (std::size_t op = 0; op < kNumOpKinds; ++op) {
        it->second[op].Merge(by_op[op]);
      }
    }
  }
  for (std::size_t i = 0; i < kNumSimStats; ++i) {
    snap.sim_stats[i].Merge(sim_stats_[i]);
  }
  for (const auto& [name, h] : named_) {
    auto [it, inserted] = snap.named.try_emplace(name, h);
    if (!inserted) {
      it->second.Merge(h);
    }
  }
  for (const TraceEvent& ev : trace_.Events()) {
    snap.trace.push_back(ev);
  }
  snap.trace_dropped += trace_.dropped();
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& later,
                                       const MetricsSnapshot& earlier) {
  MetricsSnapshot out;
  out.taken_at = later.taken_at;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out.counters[i] = later.counters[i] - earlier.counters[i];
  }
  for (const auto& [libos, by_op] : later.op_latency) {
    auto prev = earlier.op_latency.find(libos);
    std::array<Histogram, kNumOpKinds> diff;
    for (std::size_t op = 0; op < kNumOpKinds; ++op) {
      diff[op] = prev == earlier.op_latency.end()
                     ? by_op[op]
                     : by_op[op].DiffSince(prev->second[op]);
    }
    out.op_latency.emplace(libos, std::move(diff));
  }
  for (std::size_t i = 0; i < kNumSimStats; ++i) {
    out.sim_stats[i] = later.sim_stats[i].DiffSince(earlier.sim_stats[i]);
  }
  for (const auto& [name, h] : later.named) {
    auto prev = earlier.named.find(name);
    out.named.emplace(name, prev == earlier.named.end() ? h : h.DiffSince(prev->second));
  }
  for (const TraceEvent& ev : later.trace) {
    if (ev.at > earlier.taken_at) {
      out.trace.push_back(ev);
    }
  }
  out.trace_dropped = later.trace_dropped - earlier.trace_dropped;
  return out;
}

void MetricsRegistry::Reset() {
  op_latency_.clear();
  for (Histogram& h : sim_stats_) {
    h.Reset();
  }
  named_.clear();
  trace_.Clear();
}

}  // namespace demi
