// The discrete-event simulation context.
//
// Execution model: everything is single-threaded and polled, like a DPDK poll-mode
// application. Components that need to make progress (NIC drivers, network stacks,
// application actors) register as Pollers; device and timer futures are Events on a
// virtual clock. CPU work on the measured path advances the clock (HostCpu::Work);
// device-side work never blocks the CPU — it schedules completion events instead,
// exactly the overlap a real kernel-bypass device gives you.
//
// Multi-core model (DESIGN.md §13): ConfigureCores(N) adds execution contexts
// 1..N-1 next to the legacy context (core 0). Core 0 is bit-exact with the
// single-core simulator: its pollers advance the global clock directly. A core
// c > 0 executes in *bubbles*: its pollers run only once the global clock has
// caught up to the core's busy horizon (busy_until), the clock advance its work
// causes is recorded as the new horizon, and the global clock is then restored —
// so N cores doing independent work overlap in virtual time instead of
// serializing. Each core owns an event queue (timers armed inside a bubble stay
// on that core) and a MetricsRegistry. Determinism: cores are polled in fixed
// index order and events dispatch in global (due, seq) order, so a run is a pure
// function of the seed — at any core count.
//
// Blocking convenience calls (LibOS::Wait in examples) drive Simulation::StepOnce in a
// loop; they may only be used from top-level driver code, never from inside a Poller.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/cost_model.h"
#include "src/sim/counters.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace demi {

// Anything that makes forward progress when polled (a NIC driver loop, a stack, an
// application actor). Poll() returns true if any work was done.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual bool Poll() = 0;
};

// Which event-queue implementation orders the scheduler (see event_queue.h). The
// timer wheel is the production scheduler; the binary heap is kept as a
// differential-testing oracle and can be restored as the default with
// -DSIM_HEAP_SCHEDULER=ON.
enum class SchedulerKind { kTimerWheel, kBinaryHeap };
#ifdef DEMI_SIM_HEAP_SCHEDULER
inline constexpr SchedulerKind kDefaultSchedulerKind = SchedulerKind::kBinaryHeap;
#else
inline constexpr SchedulerKind kDefaultSchedulerKind = SchedulerKind::kTimerWheel;
#endif

class Simulation {
 public:
  explicit Simulation(CostModel cost = CostModel{},
                      SchedulerKind scheduler = kDefaultSchedulerKind);

  TimeNs now() const { return now_; }
  const CostModel& cost() const { return cost_; }
  CostModel& mutable_cost() { return cost_; }
  Counters& counters() { return counters_; }
  // The current execution context's registry: core 0's outside any bubble, the
  // bubble core's inside one — so per-core recordings (op latency, ring depth)
  // land in per-core histograms and merge without double-counting.
  MetricsRegistry& metrics() { return metrics(current_core_); }
  const MetricsRegistry& metrics() const {
    return const_cast<Simulation*>(this)->metrics(current_core_);
  }
  MetricsRegistry& metrics(int core);
  // One export view: core 0's snapshot (with the global counters) plus every other
  // core's histograms/trace merged in bucket-wise.
  MetricsSnapshot MergedSnapshot();
  void SetMetricsEnabled(bool enabled);

  // --- multi-core execution contexts ---

  // Declares `n` cores (including core 0). Call once, before any ScheduleOn /
  // AddPollerOn targeting cores > 0. Idempotent growth: a larger n adds cores.
  void ConfigureCores(int n);
  int num_cores() const { return 1 + static_cast<int>(cores_.size()); }
  // The core whose bubble is executing; 0 in the legacy context.
  int current_core() const { return current_core_; }
  // How far ahead of the global clock core `c`'s serial work has run.
  TimeNs core_busy_until(int core) const;
  // Construction-time default core for AddPoller/Schedule issued outside any
  // bubble (e.g. a worker libOS constructor registering its pollers). Returns the
  // previous value so scoped setters can restore it.
  int SetHomeCore(int core);

  // Schedules `fn` to run at now()+delay (clamped to >= now). Returns a cancellable id.
  // The event lands on the calling context's core: inside a bubble, the bubble's
  // core (a TCP retransmit timer armed by a worker fires on that worker); outside,
  // the home core (default 0).
  TimerId Schedule(TimeNs delay, std::function<void()> fn);
  TimerId ScheduleAt(TimeNs when, std::function<void()> fn);
  // Explicit-core forms, for cross-core messages (e.g. a steal notification).
  TimerId ScheduleOn(int core, TimeNs delay, std::function<void()> fn);
  TimerId ScheduleAtOn(int core, TimeNs when, std::function<void()> fn);
  void Cancel(TimerId id);

  // Registers/unregisters a poller. Pollers are polled once per StepOnce round, on
  // the registering context's core (see Schedule). RemovePoller searches all cores.
  void AddPoller(Poller* poller);
  void AddPollerOn(int core, Poller* poller);
  void RemovePoller(Poller* poller);

  // Advances the clock by `ns` of CPU work on the measured path.
  void AdvanceClock(TimeNs ns) { now_ += ns; }

  // Runs every event due at or before now().
  // Returns true if at least one event ran.
  bool RunDue();

  // One scheduling round: poll all pollers, run due events; if nothing happened, jump
  // the clock to the next pending event and run it. Returns false only when the
  // simulation is completely idle (no progress possible).
  bool StepOnce();

  // Steps until pred() is true or the clock passes `deadline`.
  // Returns true if pred() held before the deadline.
  bool RunUntil(const std::function<bool()>& pred, TimeNs deadline);

  // Steps until the clock has advanced by `duration` (or the simulation idles out).
  void RunFor(TimeNs duration);

  bool idle() const;
  std::size_t pending_events() const;
  // Lifetime total of Schedule/ScheduleAt calls; lets tests assert that hot paths
  // (e.g. the TCP retransmit timer) are not rescheduling per event.
  std::uint64_t schedule_calls() const { return schedule_calls_; }
  SchedulerKind scheduler_kind() const { return scheduler_kind_; }

 private:
  // Queue entries are trivially copyable; the callback lives in a pooled side table.
  // Keeping std::function out of the scheduler means entry moves are plain 24-byte
  // copies (no move-manager indirect calls) and dispatching an event never copies a
  // callback's captured state — with refcounted buffers in flight, a per-dispatch
  // std::function copy would clone every captured Buffer reference.
  //
  // Pooled callback slot. `gen` identifies the live incarnation: it is baked into
  // the TimerId at alloc and bumped at release, so Cancel on a dead or reused id
  // misses without any lookup structure. A cancelled slot keeps its (nulled) fn
  // entry until its heap event pops — null fn is the tombstone.
  struct FnSlot {
    std::function<void()> fn;
    std::uint32_t gen = 1;
  };

  // One execution context beyond core 0: its own event queue and poller list (the
  // shard of the simulation that core runs), a busy horizon, and a metrics registry.
  // Core 0 keeps using the legacy members below so the single-core simulator is
  // bit-exact with the pre-SMP code.
  struct CoreCtx {
    std::unique_ptr<EventQueue> events;
    std::vector<Poller*> pollers;
    TimeNs busy_until = 0;
    std::unique_ptr<MetricsRegistry> metrics;
  };

  TimerId AllocSlot(std::function<void()> fn);
  // Removes and returns the callback, releasing the slot (and its captures).
  std::function<void()> TakeSlot(std::uint32_t slot);
  EventQueue& QueueOf(int core) {
    return core == 0 ? *events_ : *cores_[static_cast<std::size_t>(core - 1)].events;
  }
  // The core whose queue holds the globally earliest (due, seq) event, or -1.
  // Skips cancelled tombstones at each queue head (releasing them) on the way.
  int EarliestCore();
  // Runs `fn` in core `c`'s bubble starting at the current global clock, then
  // records the bubble end as the core's new busy horizon and restores the clock.
  void RunInBubble(int core, const std::function<void()>& fn);

  CostModel cost_;
  Counters counters_;
  MetricsRegistry metrics_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t schedule_calls_ = 0;
  SchedulerKind scheduler_kind_;
  std::unique_ptr<EventQueue> events_;
  std::vector<FnSlot> event_fns_;
  std::vector<std::uint32_t> free_fn_slots_;
  std::size_t cancelled_count_ = 0;
  std::vector<Poller*> pollers_;
  bool in_step_ = false;
  std::vector<CoreCtx> cores_;  // cores 1..N-1; empty in single-core runs
  int current_core_ = 0;        // bubble being executed (0 = legacy context)
  int home_core_ = 0;           // default core for out-of-bubble registration
};

// The CPU of one simulated host. Work on a host that `charges_clock` advances the global
// clock (it is on the measured critical path); a non-charging host (e.g. a load-generator
// fleet) only accounts its work. Every host keeps its own counters; the simulation-wide
// aggregate is updated too.
class HostCpu {
 public:
  HostCpu(Simulation* sim, std::string name, bool charges_clock = true, int core = 0)
      : sim_(sim), name_(std::move(name)), charges_clock_(charges_clock), core_(core) {}

  Simulation& sim() { return *sim_; }
  const CostModel& cost() const { return sim_->cost(); }
  const std::string& name() const { return name_; }
  TimeNs now() const { return sim_->now(); }

  // Charges `ns` of CPU work to this host.
  void Work(TimeNs ns) {
    if (ns <= 0) {
      return;
    }
    busy_ns_ += ns;
    counters_.Add(Counter::kHostCpuNs, static_cast<std::uint64_t>(ns));
    sim_->counters().Add(Counter::kHostCpuNs, static_cast<std::uint64_t>(ns));
    if (charges_clock_) {
      sim_->AdvanceClock(ns);
    }
  }

  // Charges a memory copy of `bytes` and counts it. Returns the cost charged.
  TimeNs CopyBytes(std::size_t bytes) {
    const TimeNs ns = cost().CopyNs(bytes);
    Count(Counter::kCopies);
    Count(Counter::kBytesCopied, bytes);
    Work(ns);
    return ns;
  }

  void Count(Counter c, std::uint64_t n = 1) {
    counters_.Add(c, n);
    sim_->counters().Add(c, n);
  }

  Counters& counters() { return counters_; }
  std::uint64_t busy_ns() const { return busy_ns_; }
  bool charges_clock() const { return charges_clock_; }
  void set_charges_clock(bool v) { charges_clock_ = v; }
  // The simulation core this host's work executes on (0 unless pinned by an SMP
  // worker pool). Informational: the clock a Work() call advances is decided by
  // the executing bubble, not this field.
  int core() const { return core_; }
  void set_core(int core) { core_ = core; }

 private:
  Simulation* sim_;
  std::string name_;
  bool charges_clock_;
  int core_ = 0;
  Counters counters_;
  std::uint64_t busy_ns_ = 0;
};

// Scoped home-core override: pollers/timers registered while alive land on `core`.
// Used when constructing per-core components (a worker's libOS and NetStack register
// themselves from their constructors, which know nothing about cores).
class HomeCoreScope {
 public:
  HomeCoreScope(Simulation& sim, int core) : sim_(sim), prev_(sim.SetHomeCore(core)) {}
  ~HomeCoreScope() { sim_.SetHomeCore(prev_); }
  HomeCoreScope(const HomeCoreScope&) = delete;
  HomeCoreScope& operator=(const HomeCoreScope&) = delete;

 private:
  Simulation& sim_;
  int prev_;
};

}  // namespace demi

#endif  // SRC_SIM_SIMULATION_H_
