// The discrete-event simulation context.
//
// Execution model: everything is single-threaded and polled, like a DPDK poll-mode
// application. Components that need to make progress (NIC drivers, network stacks,
// application actors) register as Pollers; device and timer futures are Events on a
// virtual clock. CPU work on the measured path advances the clock (HostCpu::Work);
// device-side work never blocks the CPU — it schedules completion events instead,
// exactly the overlap a real kernel-bypass device gives you.
//
// Blocking convenience calls (LibOS::Wait in examples) drive Simulation::StepOnce in a
// loop; they may only be used from top-level driver code, never from inside a Poller.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/cost_model.h"
#include "src/sim/counters.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace demi {

// Anything that makes forward progress when polled (a NIC driver loop, a stack, an
// application actor). Poll() returns true if any work was done.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual bool Poll() = 0;
};

// Which event-queue implementation orders the scheduler (see event_queue.h). The
// timer wheel is the production scheduler; the binary heap is kept as a
// differential-testing oracle and can be restored as the default with
// -DSIM_HEAP_SCHEDULER=ON.
enum class SchedulerKind { kTimerWheel, kBinaryHeap };
#ifdef DEMI_SIM_HEAP_SCHEDULER
inline constexpr SchedulerKind kDefaultSchedulerKind = SchedulerKind::kBinaryHeap;
#else
inline constexpr SchedulerKind kDefaultSchedulerKind = SchedulerKind::kTimerWheel;
#endif

class Simulation {
 public:
  explicit Simulation(CostModel cost = CostModel{},
                      SchedulerKind scheduler = kDefaultSchedulerKind);

  TimeNs now() const { return now_; }
  const CostModel& cost() const { return cost_; }
  CostModel& mutable_cost() { return cost_; }
  Counters& counters() { return counters_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Schedules `fn` to run at now()+delay (clamped to >= now). Returns a cancellable id.
  TimerId Schedule(TimeNs delay, std::function<void()> fn);
  TimerId ScheduleAt(TimeNs when, std::function<void()> fn);
  void Cancel(TimerId id);

  // Registers/unregisters a poller. Pollers are polled once per StepOnce round.
  void AddPoller(Poller* poller);
  void RemovePoller(Poller* poller);

  // Advances the clock by `ns` of CPU work on the measured path.
  void AdvanceClock(TimeNs ns) { now_ += ns; }

  // Runs every event due at or before now().
  // Returns true if at least one event ran.
  bool RunDue();

  // One scheduling round: poll all pollers, run due events; if nothing happened, jump
  // the clock to the next pending event and run it. Returns false only when the
  // simulation is completely idle (no progress possible).
  bool StepOnce();

  // Steps until pred() is true or the clock passes `deadline`.
  // Returns true if pred() held before the deadline.
  bool RunUntil(const std::function<bool()>& pred, TimeNs deadline);

  // Steps until the clock has advanced by `duration` (or the simulation idles out).
  void RunFor(TimeNs duration);

  bool idle() const { return events_->empty(); }
  std::size_t pending_events() const { return events_->size() - cancelled_count_; }
  // Lifetime total of Schedule/ScheduleAt calls; lets tests assert that hot paths
  // (e.g. the TCP retransmit timer) are not rescheduling per event.
  std::uint64_t schedule_calls() const { return schedule_calls_; }
  SchedulerKind scheduler_kind() const { return scheduler_kind_; }

 private:
  // Queue entries are trivially copyable; the callback lives in a pooled side table.
  // Keeping std::function out of the scheduler means entry moves are plain 24-byte
  // copies (no move-manager indirect calls) and dispatching an event never copies a
  // callback's captured state — with refcounted buffers in flight, a per-dispatch
  // std::function copy would clone every captured Buffer reference.
  //
  // Pooled callback slot. `gen` identifies the live incarnation: it is baked into
  // the TimerId at alloc and bumped at release, so Cancel on a dead or reused id
  // misses without any lookup structure. A cancelled slot keeps its (nulled) fn
  // entry until its heap event pops — null fn is the tombstone.
  struct FnSlot {
    std::function<void()> fn;
    std::uint32_t gen = 1;
  };

  TimerId AllocSlot(std::function<void()> fn);
  // Removes and returns the callback, releasing the slot (and its captures).
  std::function<void()> TakeSlot(std::uint32_t slot);

  CostModel cost_;
  Counters counters_;
  MetricsRegistry metrics_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t schedule_calls_ = 0;
  SchedulerKind scheduler_kind_;
  std::unique_ptr<EventQueue> events_;
  std::vector<FnSlot> event_fns_;
  std::vector<std::uint32_t> free_fn_slots_;
  std::size_t cancelled_count_ = 0;
  std::vector<Poller*> pollers_;
  bool in_step_ = false;
};

// The CPU of one simulated host. Work on a host that `charges_clock` advances the global
// clock (it is on the measured critical path); a non-charging host (e.g. a load-generator
// fleet) only accounts its work. Every host keeps its own counters; the simulation-wide
// aggregate is updated too.
class HostCpu {
 public:
  HostCpu(Simulation* sim, std::string name, bool charges_clock = true)
      : sim_(sim), name_(std::move(name)), charges_clock_(charges_clock) {}

  Simulation& sim() { return *sim_; }
  const CostModel& cost() const { return sim_->cost(); }
  const std::string& name() const { return name_; }
  TimeNs now() const { return sim_->now(); }

  // Charges `ns` of CPU work to this host.
  void Work(TimeNs ns) {
    if (ns <= 0) {
      return;
    }
    busy_ns_ += ns;
    counters_.Add(Counter::kHostCpuNs, static_cast<std::uint64_t>(ns));
    sim_->counters().Add(Counter::kHostCpuNs, static_cast<std::uint64_t>(ns));
    if (charges_clock_) {
      sim_->AdvanceClock(ns);
    }
  }

  // Charges a memory copy of `bytes` and counts it. Returns the cost charged.
  TimeNs CopyBytes(std::size_t bytes) {
    const TimeNs ns = cost().CopyNs(bytes);
    Count(Counter::kCopies);
    Count(Counter::kBytesCopied, bytes);
    Work(ns);
    return ns;
  }

  void Count(Counter c, std::uint64_t n = 1) {
    counters_.Add(c, n);
    sim_->counters().Add(c, n);
  }

  Counters& counters() { return counters_; }
  std::uint64_t busy_ns() const { return busy_ns_; }
  bool charges_clock() const { return charges_clock_; }
  void set_charges_clock(bool v) { charges_clock_ = v; }

 private:
  Simulation* sim_;
  std::string name_;
  bool charges_clock_;
  Counters counters_;
  std::uint64_t busy_ns_ = 0;
};

}  // namespace demi

#endif  // SRC_SIM_SIMULATION_H_
