#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <bit>

#include "src/common/logging.h"

namespace demi {

TimerWheel::TimerWheel() {
  for (auto& level : heads_) {
    level.fill(kNil);
  }
}

std::uint32_t TimerWheel::AllocNode(const SchedEntry& e) {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = pool_[idx].next;
    pool_[idx].entry = e;
    return idx;
  }
  pool_.push_back(Node{e, kNil});
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void TimerWheel::FreeNode(std::uint32_t idx) {
  pool_[idx].next = free_head_;
  free_head_ = idx;
}

int TimerWheel::LevelFor(TimeNs due) const {
  const Tick tick = TickOf(due);
  if (tick <= wheel_tick_) {
    return -1;
  }
  for (int level = 0; level < kLevels; ++level) {
    if ((tick >> (kSlotBits * level)) - CursorAt(level) < kSlots) {
      return level;
    }
  }
  return kLevels - 1;  // beyond the horizon: clamped into the top level
}

void TimerWheel::PlaceInWheel(const SchedEntry& e) {
  const Tick tick = TickOf(e.due);
  int level = 0;
  while (level < kLevels - 1 && (tick >> (kSlotBits * level)) - CursorAt(level) >= kSlots) {
    ++level;
  }
  Tick slot_tick = tick >> (kSlotBits * level);
  if (slot_tick - CursorAt(level) >= kSlots) {
    // Beyond the wheel's horizon (> ~2^62 ns out): park in the farthest top-level
    // slot; the entry re-cascades (and re-clamps if still too far) when reached.
    slot_tick = CursorAt(level) + kSlots - 1;
  }
  const std::size_t slot = static_cast<std::size_t>(slot_tick & kSlotMask);
  const std::uint32_t node = AllocNode(e);
  pool_[node].next = heads_[level][slot];
  heads_[level][slot] = node;
  occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

void TimerWheel::InsertReady(const SchedEntry& e) {
  auto it = std::upper_bound(ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_),
                             ready_.end(), e, [](const SchedEntry& a, const SchedEntry& b) {
                               return a.due != b.due ? a.due < b.due : a.seq < b.seq;
                             });
  ready_.insert(it, e);
}

void TimerWheel::Push(const SchedEntry& e) {
  ++size_;
  if (TickOf(e.due) <= wheel_tick_) {
    InsertReady(e);
    return;
  }
  PlaceInWheel(e);
  ++wheel_count_;
}

std::uint32_t TimerWheel::DetachSlot(int level, std::size_t slot) {
  const std::uint32_t head = heads_[level][slot];
  heads_[level][slot] = kNil;
  occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  return head;
}

int TimerWheel::NearestOccupied(int level, int min_dist) const {
  // Word scan over the occupancy bitmap: at most kSlots/64 + 1 word loads instead
  // of up to kSlots bit probes. At low occupancy this is what makes a drain cheap —
  // the refill loop calls this per level per cascade, and with a handful of timers
  // pending almost every slot is empty.
  const std::size_t cursor = static_cast<std::size_t>(CursorAt(level) & kSlotMask);
  const std::size_t start = (cursor + static_cast<std::size_t>(min_dist)) & kSlotMask;
  const auto& bits = occupied_[level];
  constexpr std::size_t kWords = kSlots / 64;
  for (std::size_t i = 0; i <= kWords; ++i) {
    const std::size_t w = ((start >> 6) + i) % kWords;
    std::uint64_t word = bits[w];
    if (i == 0) {
      word &= ~std::uint64_t{0} << (start & 63);  // skip slots before start
    } else if (i == kWords) {
      word &= (std::uint64_t{1} << (start & 63)) - 1;  // wrapped: only pre-start bits
    }
    if (word == 0) {
      continue;
    }
    const std::size_t slot = (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    // The first set bit in circular order is the nearest slot; a distance landing at
    // or past a full lap (only possible for the cursor slot when min_dist > 0) means
    // nothing is occupied in the allowed range.
    const int d = min_dist + static_cast<int>((slot - start) & kSlotMask);
    return d < static_cast<int>(kSlots) ? d : -1;
  }
  return -1;
}

bool TimerWheel::RefillReady() {
  ready_.clear();
  ready_pos_ = 0;
  while (wheel_count_ > 0) {
    // Settle every cursor slot first. A cursor slot (any level whose slot index the
    // advancing wheel_tick_ has come to share) can hold entries due at or just after
    // wheel_tick_ itself — including entries at exactly wheel_tick_ on several
    // levels at once — so all of them must drain down (or into ready_) before any
    // staging decision is trustworthy.
    for (int level = 0; level < kLevels;) {
      if (NearestOccupied(level, 0) != 0) {
        ++level;
        continue;
      }
      ++cascades_;
      std::uint32_t node =
          DetachSlot(level, static_cast<std::size_t>(CursorAt(level) & kSlotMask));
      while (node != kNil) {
        const std::uint32_t next = pool_[node].next;
        const SchedEntry e = pool_[node].entry;
        FreeNode(node);
        if (TickOf(e.due) <= wheel_tick_) {
          InsertReady(e);  // due exactly at wheel_tick_ (level 0 cursor entries)
          --wheel_count_;
        } else {
          PlaceInWheel(e);  // strictly lower level: same prefix at `level`
        }
        node = next;
      }
      level = 0;  // the cascade may have populated lower cursor slots; restart
    }
    if (ready_pos_ < ready_.size()) {
      return true;  // settled entries at wheel_tick_; nothing in the wheel is earlier
    }
    if (wheel_count_ == 0) {
      break;
    }

    // All occupied slots now sit strictly ahead of every cursor. The level-0
    // candidate is an exact tick; higher-level candidates are slot base ticks
    // (lower bounds on their contents). On a tie the higher-level slot wins: it may
    // hold an entry at exactly that tick which must merge (via the settle pass
    // above, after advancing) with the level-0 slot's entries before staging.
    const int d0 = NearestOccupied(0, 1);
    const Tick tick0 = d0 > 0 ? wheel_tick_ + static_cast<Tick>(d0) : 0;
    int best_level = d0 > 0 ? 0 : -1;
    Tick best_tick = tick0;
    for (int level = 1; level < kLevels; ++level) {
      const int d = NearestOccupied(level, 1);
      if (d < 0) {
        continue;
      }
      const Tick base = (CursorAt(level) + static_cast<Tick>(d)) << (kSlotBits * level);
      if (best_level < 0 || base <= best_tick) {
        best_level = level;
        best_tick = base;
      }
    }
    DEMI_CHECK(best_level >= 0 && "wheel_count_ > 0 but no occupied slot");
    wheel_tick_ = best_tick;
    if (best_level == 0) {
      // A level-0 slot holds exactly one tick's entries (a second lap would have
      // required inserting from a past wheel_tick_), and on this path no other slot
      // can contain that tick (ties went to higher levels). Stage and order them.
      std::uint32_t node = DetachSlot(0, static_cast<std::size_t>(best_tick & kSlotMask));
      while (node != kNil) {
        const std::uint32_t next = pool_[node].next;
        ready_.push_back(pool_[node].entry);
        FreeNode(node);
        --wheel_count_;
        node = next;
      }
      std::sort(ready_.begin(), ready_.end(), [](const SchedEntry& a, const SchedEntry& b) {
        return a.due != b.due ? a.due < b.due : a.seq < b.seq;
      });
      return true;
    }
    // Advancing to a higher-level slot base turns it into one or more cursor slots;
    // the settle pass at the top of the loop drains them.
  }
  return ready_pos_ < ready_.size();
}

const SchedEntry* TimerWheel::Peek() {
  if (ready_pos_ >= ready_.size()) {
    if (!RefillReady()) {
      return nullptr;
    }
  }
  return &ready_[ready_pos_];
}

SchedEntry TimerWheel::Pop() {
  const SchedEntry* top = Peek();
  DEMI_CHECK(top != nullptr && "Pop from empty TimerWheel");
  const SchedEntry e = *top;
  ++ready_pos_;
  --size_;
  return e;
}

}  // namespace demi
