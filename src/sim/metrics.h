// Data-path observability: where the nanoseconds go.
//
// The paper's claims are latency-shaped (single-digit-microsecond I/O, exactly-one
// wakeup with data in hand), so counting events is not enough — this registry times
// them. It holds
//   - per-libOS, per-operation completion-latency histograms (push/pop/accept/connect,
//     stamped at qtoken creation in LibOS::NewToken and recorded when CompleteOp
//     transitions the slot to completed),
//   - simulator-internals histograms (poll/dispatch/idle time per step, ready-ring and
//     scheduler-heap depth, dispatch batch sizes),
//   - a bounded trace ring of recovery events (failover, retry, breaker trip, injected
//     fault) so a chaos run can explain *when* a latency spike happened,
// and serializes all of it — plus the simulation counters — as a JSON snapshot with
// p50/p99/p99.9/max quantiles for the bench harness.
//
// Cost model: recording charges ZERO simulated time. Nothing here calls
// HostCpu::Work or advances the clock, so a run with tracing enabled is
// bit-identical (same virtual timeline, same counters) to one with it disabled;
// tests/metrics_test.cc asserts this. Disabling only saves host wall clock.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/histogram.h"
#include "src/sim/counters.h"
#include "src/sim/time.h"

namespace demi {

// Operation kinds tracked per libOS. Mirrors OpType (core/types.h) by value so the
// sim layer does not depend on core; LibOS casts its OpType straight across.
enum class OpKind : std::uint8_t { kPush = 0, kPop, kAccept, kConnect };
constexpr std::size_t kNumOpKinds = 4;
std::string_view OpKindName(OpKind op);

// Simulator-internals statistics (values are ns for *Ns entries, plain counts
// otherwise).
enum class SimStat : std::size_t {
  kStepPollNs = 0,    // clock advance during the poller phase of one step
  kStepDispatchNs,    // clock advance during the RunDue phase of one step
  kIdleJumpNs,        // clock jump to the next event when a step found no work
  kDispatchBatch,     // events run per non-empty RunDue
  kSchedHeapDepth,    // scheduler heap size sampled at each step
  kReadyRingDepth,    // libOS completion ready-ring depth after each push
  kEventLoopBatch,    // completions dispatched per non-empty DemiEventLoop round
  kTxBurstFrames,     // frames posted per NIC TransmitBurst doorbell
  kRxBurstFrames,     // frames drained per non-empty NIC PollRxBurst
  kNumSimStats,
};
constexpr std::size_t kNumSimStats = static_cast<std::size_t>(SimStat::kNumSimStats);
std::string_view SimStatName(SimStat s);

// One recovery-visible moment on the virtual timeline.
enum class TraceKind : std::uint8_t {
  kFaultInjected = 0,  // a=fault device id, b=FaultKind
  kLinkFlap,           // a=fault device id
  kRetryAttempt,       // a=session id, b=attempt number
  kBreakerTrip,        // a=session id
  kFailover,           // a=session id (bypass -> legacy kernel path)
  kRepromotion,        // a=session id (legacy -> bypass path)
  kRetryGiveup,        // a=session id
  kPathPromotion,      // a=session id (policy moved a hot flow legacy -> bypass)
  kPathDemotion,       // a=session id (policy moved a cold flow bypass -> legacy)
};
std::string_view TraceKindName(TraceKind k);

struct TraceEvent {
  TimeNs at = 0;
  TraceKind kind = TraceKind::kFaultInjected;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

// Bounded ring of TraceEvents: appending past capacity drops the oldest entry and
// counts it, so a long chaos run keeps the most recent window plus an honest tally
// of what fell off.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void Append(TraceEvent ev);
  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }
  // Oldest-first copy of the retained window.
  std::vector<TraceEvent> Events() const;
  void Clear();

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest retained event once full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

// Read-only rollup of one histogram, as exported in snapshots.
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};
HistogramStats SummarizeHistogram(const Histogram& h);

// Point-in-time copy of everything the registry (plus the simulation counters)
// knows. Holds full histograms, not just quantiles, so two snapshots can be
// subtracted bucket-exactly into a window delta.
struct MetricsSnapshot {
  TimeNs taken_at = 0;
  std::array<std::uint64_t, kNumCounters> counters{};
  // op_latency["catnip"][OpKind::kPush] etc. Only libOSes that completed at least
  // one operation appear.
  std::map<std::string, std::array<Histogram, kNumOpKinds>> op_latency;
  std::array<Histogram, kNumSimStats> sim_stats;
  // Free-form histograms registered via MetricsRegistry::NamedHistogram.
  std::map<std::string, Histogram> named;
  std::vector<TraceEvent> trace;
  std::uint64_t trace_dropped = 0;

  // JSON object: {"taken_at_ns", "counters", "op_latency_ns", "sim_stats",
  // "named", "trace"}. Histograms serialize as {n, min, max, mean, p50, p99,
  // p999}; zero-count histograms and zero counters are omitted.
  std::string ToJson() const;
};

// The registry. One per Simulation; reached via sim().metrics().
class MetricsRegistry {
 public:
  MetricsRegistry();

  // Master switch. Recording with the registry disabled is a branch and nothing
  // else. Flipping it never changes simulated behavior (see header comment).
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Stable per-libOS handle for the hot completion path: one map lookup per libOS
  // lifetime, then recording is an array index. The pointer stays valid for the
  // registry's lifetime (map nodes do not move).
  std::array<Histogram, kNumOpKinds>* OpLatencyHandle(std::string_view libos);

  void RecordOpLatency(std::array<Histogram, kNumOpKinds>* handle, OpKind op,
                       TimeNs latency_ns) {
    if (!enabled_ || handle == nullptr || latency_ns < 0) {
      return;
    }
    (*handle)[static_cast<std::size_t>(op)].Record(
        static_cast<std::uint64_t>(latency_ns));
  }

  void RecordStat(SimStat stat, std::uint64_t value) {
    if (!enabled_) {
      return;
    }
    sim_stats_[static_cast<std::size_t>(stat)].Record(value);
  }

  // Free-form named histogram for subsystems whose series are not known at compile
  // time (the open-loop load harness registers one per sweep point, e.g.
  // "openloop/50000rps/latency_ns"). Same handle discipline as OpLatencyHandle: one
  // map lookup up front, stable pointer for the registry's lifetime, then recording
  // is an inlined branch + bucket increment via RecordNamed.
  Histogram* NamedHistogram(std::string_view name);

  void RecordNamed(Histogram* h, std::uint64_t value) {
    if (!enabled_ || h == nullptr) {
      return;
    }
    h->Record(value);
  }

  void Trace(TraceKind kind, TimeNs at, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) {
      return;
    }
    trace_.Append(TraceEvent{at, kind, a, b});
  }

  // Read access for tests and reporting.
  const Histogram& sim_stat(SimStat stat) const {
    return sim_stats_[static_cast<std::size_t>(stat)];
  }
  const Histogram* op_latency(std::string_view libos, OpKind op) const;
  const Histogram* named(std::string_view name) const;
  const TraceRing& trace() const { return trace_; }

  // Captures everything, pairing the registry's histograms/trace with the
  // caller-supplied counters (per-host or simulation-wide) and timestamp.
  MetricsSnapshot Snapshot(const Counters& counters, TimeNs now) const;
  // Folds this registry's histograms and trace into `snap` bucket-wise, leaving
  // snap.counters untouched — the merge path for per-core registries
  // (Simulation::MergedSnapshot), where counters are simulation-global and must
  // not be added once per core.
  void MergeHistogramsInto(MetricsSnapshot& snap) const;
  // Window view: this snapshot minus `earlier` (counters and histogram buckets
  // subtract; trace keeps only events after earlier.taken_at).
  static MetricsSnapshot Delta(const MetricsSnapshot& later,
                               const MetricsSnapshot& earlier);

  void Reset();

 private:
  bool enabled_ = true;
  std::map<std::string, std::array<Histogram, kNumOpKinds>, std::less<>> op_latency_;
  std::array<Histogram, kNumSimStats> sim_stats_;
  std::map<std::string, Histogram, std::less<>> named_;
  TraceRing trace_;
};

}  // namespace demi

#endif  // SRC_SIM_METRICS_H_
