// The calibrated cost model behind every experiment.
//
// Each entry is a first-order cost (in simulated nanoseconds) for one architectural
// event: a syscall crossing, copying a byte, a PCIe doorbell, a wire traversal, and so
// on. The defaults are calibrated to the figures the paper itself cites:
//   - §3.2: copying a 4 KB page costs 1 µs on a 4 GHz CPU  -> copy_ns_per_byte = 1000/4096
//   - §3.2: Redis spends ~2 µs of CPU per GET              -> kv_request_cpu_ns = 2000
//   - §1 [5,31,51]: kernel adds significant per-I/O cost   -> syscall + kernel stack costs
// and to public measurements of the era's hardware (PCIe round trip ~1 µs, intra-rack
// wire+switch ~1 µs, ibv_reg_mr tens of µs for large regions).
//
// Every bench prints the cost model it ran with, so paper-vs-measured comparisons in
// EXPERIMENTS.md are reproducible and auditable.

#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace demi {

struct CostModel {
  // --- CPU ---
  double cpu_ghz = 4.0;  // documentation only; all costs below are already in ns.

  // Memory copy between buffers (kernel<->user or staging copies).
  // 1 µs per 4 KB page at 4 GHz (§3.2).
  double copy_ns_per_byte = 1000.0 / 4096.0;

  // --- Legacy kernel path (the "Traditional Architecture" of Figure 1) ---
  TimeNs syscall_ns = 500;          // user->kernel->user crossing (incl. KPTI-era cost).
  TimeNs kernel_socket_ns = 400;    // socket layer: fd lookup, locks, sk_buff bookkeeping.
  TimeNs kernel_stack_tx_ns = 900;  // kernel TCP/IP transmit-side protocol processing.
  TimeNs kernel_stack_rx_ns = 1100; // kernel receive: softirq, demux, TCP processing.
  TimeNs interrupt_ns = 2000;       // interrupt + schedule wakeup when a blocked task runs.
  TimeNs context_switch_ns = 1500;  // full context switch (used by blocking waits).
  TimeNs epoll_dispatch_ns = 250;   // per-event epoll bookkeeping inside the kernel.
  TimeNs fastcall_crossing_ns = 120;  // fastcall-style dedicated control-path entry:
                                      // no full register save, no KPTI switch — used by
                                      // accept/connect/lease/grant when the kernel's
                                      // fastcall table is enabled (off by default).

  // --- User-level (libOS) path ---
  TimeNs libos_call_ns = 30;        // Demikernel "syscall": function call + qtable lookup.
  TimeNs user_stack_tx_ns = 250;    // user-level TCP/IP transmit processing per segment.
  TimeNs user_stack_rx_ns = 300;    // user-level TCP/IP receive processing per segment.
  TimeNs mtcp_batch_delay_ns = 8000;  // mTCP-style stack: deferred batched processing
                                      // between app and stack contexts (§6: its latency
                                      // exceeded the kernel's).

  // --- PCIe / device interaction ---
  TimeNs pcie_doorbell_ns = 150;    // posted MMIO write to ring a doorbell.
  TimeNs pcie_dma_ns = 450;         // device DMA fetch/deposit of one descriptor+payload
                                    // (one PCIe round trip).
  TimeNs pcie_dma_batch_descriptor_ns = 100;  // each additional descriptor in a burst:
                                              // the fetches pipeline behind the first
                                              // full round trip, so descriptor N
                                              // completes at dma + N*this.
  TimeNs nic_process_ns = 120;      // on-NIC per-packet work: parse, RSS hash, queue.

  // --- Cross-core (SMP) ---
  // Charged by the completion-stealing protocol (DESIGN.md §13): moving state
  // between cores is not free even without locks.
  TimeNs cacheline_transfer_ns = 60;  // one cache line migrating between L2s
                                      // (remote-read latency on a same-socket mesh).
  TimeNs ipi_wakeup_ns = 400;         // IPI-equivalent cross-core notification
                                      // (kick a remote core's pipeline).
  TimeNs steal_probe_ns = 40;         // inspecting a remote worker's ready-ring
                                      // head/tail (one read of a contended line).

  // --- Network fabric ---
  TimeNs wire_latency_ns = 1000;    // propagation + one switch hop, intra-rack.
  double link_gbps = 40.0;          // serialization rate.

  // --- RDMA NIC (Table 1 "+OS features" column) ---
  TimeNs rdma_transport_ns = 250;   // NIC-implemented reliable transport per message.
  TimeNs mem_reg_base_ns = 1500;    // ibv_reg_mr fixed cost (syscall + NIC update)...
  TimeNs mem_reg_per_page_ns = 300; // ...plus per-4KB-page pinning cost.

  // --- Storage device (SPDK-style NVMe) ---
  TimeNs nvme_read_ns = 10000;      // flash read latency (fast NVMe, paper era).
  TimeNs nvme_write_ns = 8000;      // write into SLC buffer.
  double nvme_ns_per_byte = 0.3;    // ~3.2 GB/s transfer rate.
  TimeNs kernel_fs_op_ns = 2500;    // kernel VFS+ext4-style per-op overhead (journaling,
                                    // page-cache management), excluding copies/syscalls.
  TimeNs nvme_pushdown_resubmit_ns = 300;  // device-internal dependent-read resubmission:
                                           // re-arming the on-device SQ after a push-down
                                           // program step — no doorbell, no PCIe crossing.

  // --- Offload engine (Table 1 "+other features" column) ---
  double device_compute_factor = 2.5;  // on-device cores run app functions this much
                                       // slower than the host CPU (§3.3 trade-off).
  TimeNs offload_setup_ns = 50000;     // installing a filter/map program on the device.

  // --- Application ---
  TimeNs kv_request_cpu_ns = 2000;  // Redis-style per-request processing (§3.2).
  TimeNs partial_scan_ns = 500;     // inspecting a buffer that holds no complete
                                    // request — the wasted work of §3.2's pipe model.

  // Serialization delay for `bytes` on the wire.
  TimeNs WireSerializationNs(std::size_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) * 8.0 / link_gbps);
  }

  // CPU cost of copying `bytes`.
  TimeNs CopyNs(std::size_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) * copy_ns_per_byte);
  }

  // Cost of registering a memory region of `bytes` with a device.
  TimeNs MemRegNs(std::size_t bytes) const {
    const std::size_t pages = (bytes + 4095) / 4096;
    return mem_reg_base_ns + static_cast<TimeNs>(pages) * mem_reg_per_page_ns;
  }

  // NVMe device service time for an op moving `bytes`.
  TimeNs NvmeNs(bool is_write, std::size_t bytes) const {
    return (is_write ? nvme_write_ns : nvme_read_ns) +
           static_cast<TimeNs>(static_cast<double>(bytes) * nvme_ns_per_byte);
  }

  // Multi-line human-readable dump (printed by every bench).
  std::string Describe() const;
};

}  // namespace demi

#endif  // SRC_SIM_COST_MODEL_H_
