// Hierarchical timer wheel: the O(1) scheduler behind Simulation.
//
// Motivation (ISSUE 6): an open-loop run with 10^6 connections keeps on the order of
// a million timers pending at once (per-connection retransmit, delayed-ack and
// arrival timers). A binary heap pays O(log n) per schedule/cancel with cache-hostile
// sift paths; a timer wheel pays a few stores. Cancel was already O(1) (tombstoned
// callback slots, see simulation.h), so the wheel makes the whole timer lifecycle
// flat.
//
// Layout: 7 levels of 256 slots at 64 ns resolution (kResBits); level l spans
// 256^(l+1) ticks, so the wheel covers ~2^62 ns — beyond-horizon timers are clamped
// into the farthest top-level slot and re-cascade on arrival. Each slot is an
// intrusive singly-linked list of pooled 32-byte nodes with a per-level occupancy
// bitmap, so finding the next non-empty slot is a word scan, not a list walk.
//
// Determinism: the wheel must be bit-identical to the heap oracle (event_queue.h) —
// same pop order, same idle-jump timestamps. Entries keep their exact due time (the
// 64 ns tick only buckets them); all entries of the next due tick are moved into a
// `ready_` staging buffer and sorted by (due, seq), which restores the global order
// because distinct ticks never interleave and seq breaks ties within one.
//
// Advancing jumps straight to the next occupied slot rather than ticking through
// empty ones. A jump must not trust level 0 alone: a higher-level slot can cover
// lower absolute ticks than the nearest level-0 entry once the cursor has moved (its
// range starts below the level-0 candidate), so the refill loop compares the exact
// level-0 tick against every higher level's nearest slot base and cascades the
// smaller — including slots the advancing cursor has come to share a prefix with.

#ifndef SRC_SIM_TIMER_WHEEL_H_
#define SRC_SIM_TIMER_WHEEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/sim/event_queue.h"

namespace demi {

class TimerWheel final : public EventQueue {
 public:
  static constexpr int kResBits = 6;   // 64 ns per tick
  static constexpr int kSlotBits = 8;  // 256 slots per level
  static constexpr int kLevels = 7;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;

  TimerWheel();

  void Push(const SchedEntry& e) override;
  const SchedEntry* Peek() override;
  SchedEntry Pop() override;
  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }

  // Test introspection: the level an entry with this due time would land on if
  // pushed right now (-1 = the already-due ready buffer).
  int LevelFor(TimeNs due) const;
  std::uint64_t cascades() const { return cascades_; }

 private:
  using Tick = std::uint64_t;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;

  struct Node {
    SchedEntry entry;
    std::uint32_t next;
  };

  static Tick TickOf(TimeNs due) { return static_cast<Tick>(due) >> kResBits; }
  Tick CursorAt(int level) const { return wheel_tick_ >> (kSlotBits * level); }

  std::uint32_t AllocNode(const SchedEntry& e);
  void FreeNode(std::uint32_t idx);

  // Chooses (level, slot) for a tick strictly ahead of wheel_tick_ and links a node
  // there. Does not touch size_/wheel_count_.
  void PlaceInWheel(const SchedEntry& e);
  // Sorted insert into the ready staging buffer (position is always >= ready_pos_,
  // because due >= now >= every already-popped due and seq grows monotonically).
  void InsertReady(const SchedEntry& e);
  // Detaches a slot's list and clears its occupancy bit; returns the head node.
  std::uint32_t DetachSlot(int level, std::size_t slot);
  // Modular distance in [min_dist, 255] from this level's cursor to the nearest
  // occupied slot, or -1 if none in that range.
  int NearestOccupied(int level, int min_dist) const;
  // Moves the entries of the next due tick into ready_. False if the wheel is empty.
  bool RefillReady();

  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
  Tick wheel_tick_ = 0;          // tick whose entries were last staged into ready_
  std::size_t size_ = 0;         // total pending (wheel + unconsumed ready)
  std::size_t wheel_count_ = 0;  // entries still linked into wheel slots
  std::uint64_t cascades_ = 0;
  std::array<std::array<std::uint32_t, kSlots>, kLevels> heads_;
  std::array<std::array<std::uint64_t, kSlots / 64>, kLevels> occupied_{};
  std::vector<SchedEntry> ready_;
  std::size_t ready_pos_ = 0;
};

}  // namespace demi

#endif  // SRC_SIM_TIMER_WHEEL_H_
