// An in-memory VFS with a page cache backed by the simulated NVMe device.
//
// This is the storage half of the traditional architecture in Figure 1: applications
// reach it through syscalls, data moves through copies, and persistence goes through
// the kernel's block layer. Experiment E3 contrasts this write path with the Catfish
// libOS writing the device's SQ/CQ directly.
//
// Model: each file is an extent of 4 KiB pages; pages live in the cache (always
// readable once written) and are assigned device LBAs lazily. Fsync flushes dirty
// pages to the device. DropCaches() evicts clean pages so subsequent reads must go to
// the device (for cold-read experiments).

#ifndef SRC_KERNEL_VFS_H_
#define SRC_KERNEL_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"

namespace demi {

struct FsNode {
  std::string path;
  std::size_t size = 0;
  // Page index -> cached contents (4 KiB each; last page may be partial via `size`).
  std::map<std::uint32_t, std::vector<std::byte>> cached_pages;
  // Page index -> device LBA (allocated on first flush of that page).
  std::map<std::uint32_t, std::uint64_t> page_lba;
  std::unordered_set<std::uint32_t> dirty_pages;
};

class Vfs {
 public:
  static constexpr std::size_t kPageSize = 4096;

  // Creates a file; fails if it exists.
  Result<FsNode*> Create(const std::string& path);
  // Opens an existing file.
  Result<FsNode*> Lookup(const std::string& path);
  // Creates if missing, otherwise returns the existing node.
  FsNode* OpenOrCreate(const std::string& path);
  Status Remove(const std::string& path);
  bool Exists(const std::string& path) const { return nodes_.contains(path); }
  std::size_t file_count() const { return nodes_.size(); }

  // Writes `data` at `offset`, extending the file as needed. Touched pages become
  // dirty cache pages. Returns the number of pages touched.
  std::size_t WriteAt(FsNode* node, std::size_t offset, std::span<const std::byte> data);

  // Reads [offset, offset+out.size()) from cache. Every byte must be cache-resident;
  // use MissingPages + page fill for cold reads. Returns bytes read (clamped at size).
  std::size_t ReadAt(FsNode* node, std::size_t offset, std::span<std::byte> out);

  // Pages in [offset, offset+len) that are not cache-resident (need device reads).
  std::vector<std::uint32_t> MissingPages(const FsNode* node, std::size_t offset,
                                          std::size_t len) const;
  // Installs a page read back from the device into the cache (clean).
  void FillPage(FsNode* node, std::uint32_t page, std::span<const std::byte> data);

  // Allocates an LBA for every dirty page (stable across rewrites) and returns the
  // (page, lba, data) list the caller must write to the device; marks them clean.
  struct FlushItem {
    std::uint32_t page;
    std::uint64_t lba;
    Buffer data;
  };
  std::vector<FlushItem> CollectDirty(FsNode* node);

  // Evicts clean cached pages (dirty pages stay). Cold-read experiments use this.
  void DropCaches();

 private:
  std::uint64_t AllocateLba() { return next_lba_++; }

  std::unordered_map<std::string, std::unique_ptr<FsNode>> nodes_;
  std::uint64_t next_lba_ = 1;  // LBA 0 reserved (superblock-style)
};

}  // namespace demi

#endif  // SRC_KERNEL_VFS_H_
