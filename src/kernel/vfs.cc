#include "src/kernel/vfs.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace demi {

Result<FsNode*> Vfs::Create(const std::string& path) {
  if (nodes_.contains(path)) {
    return AlreadyExists(path);
  }
  auto node = std::make_unique<FsNode>();
  node->path = path;
  FsNode* out = node.get();
  nodes_[path] = std::move(node);
  return out;
}

Result<FsNode*> Vfs::Lookup(const std::string& path) {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return NotFound(path);
  }
  return it->second.get();
}

FsNode* Vfs::OpenOrCreate(const std::string& path) {
  if (auto r = Lookup(path); r.ok()) {
    return *r;
  }
  return *Create(path);
}

Status Vfs::Remove(const std::string& path) {
  if (nodes_.erase(path) == 0) {
    return NotFound(path);
  }
  return OkStatus();
}

std::size_t Vfs::WriteAt(FsNode* node, std::size_t offset, std::span<const std::byte> data) {
  std::size_t pages_touched = 0;
  std::size_t at = 0;
  while (at < data.size()) {
    const std::size_t pos = offset + at;
    const auto page = static_cast<std::uint32_t>(pos / kPageSize);
    const std::size_t in_page = pos % kPageSize;
    const std::size_t take = std::min(kPageSize - in_page, data.size() - at);

    auto [it, inserted] = node->cached_pages.try_emplace(page);
    if (inserted) {
      it->second.assign(kPageSize, std::byte{0});
      // Note: partial overwrite of an uncached, previously flushed page would need a
      // read-modify-write in a real FS; our callers always keep written pages cached
      // or overwrite whole pages, so zero-fill is safe here.
    }
    std::memcpy(it->second.data() + in_page, data.data() + at, take);
    node->dirty_pages.insert(page);
    ++pages_touched;
    at += take;
  }
  node->size = std::max(node->size, offset + data.size());
  return pages_touched;
}

std::size_t Vfs::ReadAt(FsNode* node, std::size_t offset, std::span<std::byte> out) {
  if (offset >= node->size) {
    return 0;
  }
  const std::size_t len = std::min(out.size(), node->size - offset);
  std::size_t at = 0;
  while (at < len) {
    const std::size_t pos = offset + at;
    const auto page = static_cast<std::uint32_t>(pos / kPageSize);
    const std::size_t in_page = pos % kPageSize;
    const std::size_t take = std::min(kPageSize - in_page, len - at);
    auto it = node->cached_pages.find(page);
    DEMI_CHECK(it != node->cached_pages.end() && "cold page: caller must FillPage first");
    std::memcpy(out.data() + at, it->second.data() + in_page, take);
    at += take;
  }
  return len;
}

std::vector<std::uint32_t> Vfs::MissingPages(const FsNode* node, std::size_t offset,
                                             std::size_t len) const {
  std::vector<std::uint32_t> missing;
  if (node->size == 0 || offset >= node->size) {
    return missing;
  }
  len = std::min(len, node->size - offset);
  const auto first = static_cast<std::uint32_t>(offset / kPageSize);
  const auto last = static_cast<std::uint32_t>((offset + len - 1) / kPageSize);
  for (std::uint32_t p = first; p <= last; ++p) {
    if (!node->cached_pages.contains(p)) {
      missing.push_back(p);
    }
  }
  return missing;
}

void Vfs::FillPage(FsNode* node, std::uint32_t page, std::span<const std::byte> data) {
  DEMI_CHECK(data.size() == kPageSize);
  auto& slot = node->cached_pages[page];
  slot.assign(data.begin(), data.end());
}

std::vector<Vfs::FlushItem> Vfs::CollectDirty(FsNode* node) {
  std::vector<FlushItem> items;
  items.reserve(node->dirty_pages.size());
  for (const std::uint32_t page : node->dirty_pages) {
    auto [lba_it, inserted] = node->page_lba.try_emplace(page, 0);
    if (inserted) {
      lba_it->second = AllocateLba();
    }
    auto cache_it = node->cached_pages.find(page);
    DEMI_CHECK(cache_it != node->cached_pages.end());
    items.push_back(FlushItem{page, lba_it->second,
                              Buffer::CopyOf(std::span<const std::byte>(cache_it->second))});
  }
  node->dirty_pages.clear();
  std::sort(items.begin(), items.end(),
            [](const FlushItem& a, const FlushItem& b) { return a.lba < b.lba; });
  return items;
}

void Vfs::DropCaches() {
  for (auto& [path, node] : nodes_) {
    for (auto it = node->cached_pages.begin(); it != node->cached_pages.end();) {
      const bool dirty = node->dirty_pages.contains(it->first);
      const bool flushed = node->page_lba.contains(it->first);
      if (!dirty && flushed) {
        it = node->cached_pages.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace demi
