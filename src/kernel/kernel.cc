#include "src/kernel/kernel.h"

#include <algorithm>

#include "src/common/logging.h"

namespace demi {

SimKernel::SimKernel(HostCpu* host, SimNic* nic, BlockDevice* bdev, SimKernelConfig config)
    : host_(host), nic_(nic), bdev_(bdev), config_(config) {
  if (nic_ != nullptr) {
    NetStackConfig net_cfg;
    net_cfg.ip = config_.ip;
    net_cfg.nic_queue = 0;  // the kernel owns queue 0
    net_cfg.stack_tx_ns = host_->cost().kernel_stack_tx_ns;
    net_cfg.stack_rx_ns = host_->cost().kernel_stack_rx_ns;
    net_cfg.tcp = config_.tcp;
    net_cfg.seed = config_.seed;
    net_ = std::make_unique<NetStack>(host_, nic_, net_cfg);
    // The kernel is interrupt-driven on receive (NAPI-style: one interrupt per
    // empty->non-empty ring edge; the softirq then polls the ring dry). Only queue 0
    // belongs to the kernel — leased kernel-bypass queues run with interrupts masked
    // (their libOS polls).
    nic_->SetRxNotify([this](int queue) {
      if (queue != 0) {
        return;
      }
      host_->Work(host_->cost().interrupt_ns);
      host_->Count(Counter::kInterrupts);
    });
  }
  host_->sim().AddPoller(this);
}

SimKernel::~SimKernel() {
  host_->sim().RemovePoller(this);
  if (nic_ != nullptr) {
    nic_->SetRxNotify(nullptr);
  }
}

void SimKernel::ChargeSyscall() {
  host_->Work(host_->cost().syscall_ns);
  host_->Count(Counter::kSyscalls);
}

void SimKernel::ChargeControlCrossing() {
  if (config_.fastcall_enabled) {
    host_->Work(host_->cost().fastcall_crossing_ns);
    host_->Count(Counter::kFastcallCrossings);
  } else {
    ChargeSyscall();
  }
}

int SimKernel::AllocFd() {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (fds_[i].kind == FdEntry::Kind::kFree) {
      return static_cast<int>(i);
    }
  }
  fds_.emplace_back();
  return static_cast<int>(fds_.size() - 1);
}

SimKernel::FdEntry* SimKernel::Entry(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
      fds_[fd].kind == FdEntry::Kind::kFree) {
    return nullptr;
  }
  return &fds_[fd];
}

const SimKernel::FdEntry* SimKernel::Entry(int fd) const {
  return const_cast<SimKernel*>(this)->Entry(fd);
}

// --- sockets ---

Result<int> SimKernel::Socket() {
  if (net_ == nullptr) {
    return Unsupported("host has no NIC");
  }
  ChargeSyscall();
  const int fd = AllocFd();
  fds_[fd] = FdEntry{};
  fds_[fd].kind = FdEntry::Kind::kSocket;
  return fd;
}

Status SimKernel::Bind(int fd, std::uint16_t port) {
  ChargeSyscall();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kSocket) {
    return BadDescriptor("bind");
  }
  e->bound_port = port;
  return OkStatus();
}

Status SimKernel::Listen(int fd) {
  ChargeSyscall();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kSocket || e->bound_port == 0) {
    return BadDescriptor("listen requires a bound socket");
  }
  auto listener = net_->TcpListen(e->bound_port);
  RETURN_IF_ERROR(listener.status());
  e->kind = FdEntry::Kind::kListener;
  e->listener = *listener;
  return OkStatus();
}

Result<int> SimKernel::Accept(int fd) {
  ChargeControlCrossing();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kListener) {
    return BadDescriptor("accept");
  }
  TcpConnection* conn = e->listener->Accept();
  if (conn == nullptr) {
    return WouldBlock();
  }
  host_->Work(host_->cost().kernel_socket_ns);  // new sock allocation/bookkeeping
  const int new_fd = AllocFd();
  fds_[new_fd] = FdEntry{};
  fds_[new_fd].kind = FdEntry::Kind::kSocket;
  fds_[new_fd].conn = conn;
  return new_fd;
}

Result<std::vector<int>> SimKernel::AcceptBatch(int fd, std::size_t max_conns) {
  ChargeControlCrossing();  // ONE crossing for the whole drain
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kListener) {
    return BadDescriptor("accept");
  }
  // AllocFd below may grow fds_ and invalidate `e`; the listener itself is
  // stack-owned and stable, so hold that across the loop instead.
  TcpListener* listener = e->listener;
  std::vector<int> out;
  while (out.size() < max_conns) {
    TcpConnection* conn = listener->Accept();
    if (conn == nullptr) {
      break;
    }
    host_->Work(host_->cost().kernel_socket_ns);  // per-sock bookkeeping is not batched
    const int new_fd = AllocFd();
    fds_[new_fd] = FdEntry{};
    fds_[new_fd].kind = FdEntry::Kind::kSocket;
    fds_[new_fd].conn = conn;
    out.push_back(new_fd);
  }
  if (out.empty()) {
    return WouldBlock();
  }
  host_->Count(Counter::kAcceptsBatched, out.size());
  MetricsRegistry& reg = host_->sim().metrics();
  reg.RecordNamed(reg.NamedHistogram("kernel/accept_batch_size"), out.size());
  return out;
}

bool SimKernel::AcceptReady(int fd) const {
  const FdEntry* e = Entry(fd);
  return e != nullptr && e->kind == FdEntry::Kind::kListener &&
         e->listener->pending() > 0;
}

Status SimKernel::Connect(int fd, Endpoint remote) {
  ChargeControlCrossing();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kSocket || e->conn != nullptr) {
    return BadDescriptor("connect");
  }
  auto conn = net_->TcpConnect(remote);
  RETURN_IF_ERROR(conn.status());
  e->conn = *conn;
  e->connect_started = true;
  return OkStatus();
}

bool SimKernel::ConnectInProgress(int fd) const {
  const FdEntry* e = Entry(fd);
  return e != nullptr && e->connect_started && e->conn != nullptr &&
         !e->conn->established() && !e->conn->dead();
}

bool SimKernel::ConnectSucceeded(int fd) const {
  const FdEntry* e = Entry(fd);
  return e != nullptr && e->conn != nullptr && e->conn->established();
}

Result<Buffer> SimKernel::ReadSock(int fd, std::size_t max) {
  ChargeSyscall();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kSocket || e->conn == nullptr) {
    return BadDescriptor("read");
  }
  host_->Work(host_->cost().kernel_socket_ns);
  if (e->conn->reset()) {
    return ConnectionReset("peer reset");
  }
  Buffer in_kernel = e->conn->Recv(max);
  if (in_kernel.empty()) {
    if (e->conn->recv_eof()) {
      return EndOfFile();
    }
    return WouldBlock();
  }
  // THE copy of §3.2: kernel buffer -> user buffer.
  host_->CopyBytes(in_kernel.size());
  return Buffer::CopyOf(in_kernel.span());
}

Result<std::size_t> SimKernel::WriteSock(int fd, Buffer data) {
  ChargeSyscall();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kSocket || e->conn == nullptr) {
    return BadDescriptor("write");
  }
  host_->Work(host_->cost().kernel_socket_ns);
  if (e->conn->reset()) {
    return ConnectionReset("peer reset");
  }
  // user buffer -> kernel sk_buff copy, then the kernel stack transmits.
  host_->CopyBytes(data.size());
  Buffer in_kernel = Buffer::CopyOf(data.span());
  const std::size_t n = in_kernel.size();
  RETURN_IF_ERROR(e->conn->Send(std::move(in_kernel)));
  return n;
}

Status SimKernel::CloseFd(int fd) {
  ChargeSyscall();
  FdEntry* e = Entry(fd);
  if (e == nullptr) {
    return BadDescriptor("close");
  }
  if (e->kind == FdEntry::Kind::kSocket && e->conn != nullptr) {
    e->conn->Close();
  }
  if (e->kind == FdEntry::Kind::kEpoll) {
    epolls_.erase(fd);
  }
  *e = FdEntry{};
  return OkStatus();
}

TcpConnection* SimKernel::SockConnection(int fd) {
  FdEntry* e = Entry(fd);
  return e != nullptr ? e->conn : nullptr;
}

// --- epoll ---

Result<int> SimKernel::EpollCreate() {
  ChargeSyscall();
  const int fd = AllocFd();
  fds_[fd] = FdEntry{};
  fds_[fd].kind = FdEntry::Kind::kEpoll;
  epolls_[fd] = EpollInstance{};
  return fd;
}

Status SimKernel::EpollAdd(int epfd, int fd, std::uint32_t events) {
  ChargeSyscall();
  auto it = epolls_.find(epfd);
  if (it == epolls_.end() || Entry(fd) == nullptr) {
    return BadDescriptor("epoll_ctl");
  }
  it->second.interest[fd] = events;
  return OkStatus();
}

Status SimKernel::EpollDel(int epfd, int fd) {
  ChargeSyscall();
  auto it = epolls_.find(epfd);
  if (it == epolls_.end()) {
    return BadDescriptor("epoll_ctl");
  }
  it->second.interest.erase(fd);
  return OkStatus();
}

std::uint32_t SimKernel::Readiness(const FdEntry& e) const {
  std::uint32_t r = 0;
  switch (e.kind) {
    case FdEntry::Kind::kSocket:
      if (e.conn != nullptr) {
        if (e.conn->readable()) {
          r |= kEpollIn;
        }
        if (e.conn->established() && e.conn->send_buffer_space() > 0) {
          r |= kEpollOut;
        }
        if (e.conn->reset()) {
          r |= kEpollIn | kEpollOut;  // errors surface as readiness, POSIX-style
        }
      }
      break;
    case FdEntry::Kind::kListener:
      if (e.listener->pending() > 0) {
        r |= kEpollIn;
      }
      break;
    default:
      break;
  }
  return r;
}

Result<std::vector<EpollEvent>> SimKernel::EpollWait(int epfd, std::size_t max_events) {
  ChargeSyscall();
  auto it = epolls_.find(epfd);
  if (it == epolls_.end()) {
    return BadDescriptor("epoll_wait");
  }
  std::vector<EpollEvent> out;
  for (const auto& [fd, interest] : it->second.interest) {
    const FdEntry* e = Entry(fd);
    if (e == nullptr) {
      continue;
    }
    const std::uint32_t ready = Readiness(*e) & interest;
    if (ready != 0) {
      host_->Work(host_->cost().epoll_dispatch_ns);
      out.push_back(EpollEvent{fd, ready});
      if (out.size() >= max_events) {
        break;
      }
    }
  }
  return out;
}

Status SimKernel::EpollBlock(int epfd) {
  auto it = epolls_.find(epfd);
  if (it == epolls_.end()) {
    return BadDescriptor("epoll_wait(block)");
  }
  // Blocking descent: syscall + context switch off the CPU.
  ChargeSyscall();
  host_->Work(host_->cost().context_switch_ns);
  host_->Count(Counter::kContextSwitches);
  ++it->second.blocked_waiters;
  return OkStatus();
}

bool SimKernel::EpollAnyReady(int epfd) const {
  auto it = epolls_.find(epfd);
  if (it == epolls_.end()) {
    return false;
  }
  for (const auto& [fd, interest] : it->second.interest) {
    const FdEntry* e = Entry(fd);
    if (e != nullptr && (Readiness(*e) & interest) != 0) {
      return true;
    }
  }
  return false;
}

int SimKernel::EpollBlockedCount(int epfd) const {
  auto it = epolls_.find(epfd);
  return it == epolls_.end() ? 0 : it->second.blocked_waiters;
}

// --- files ---

Result<int> SimKernel::OpenFile(const std::string& path, bool create) {
  ChargeSyscall();
  host_->Work(host_->cost().kernel_fs_op_ns);  // path walk, inode lookup
  FsNode* node = nullptr;
  if (create) {
    node = vfs_.OpenOrCreate(path);
  } else {
    auto r = vfs_.Lookup(path);
    RETURN_IF_ERROR(r.status());
    node = *r;
  }
  const int fd = AllocFd();
  fds_[fd] = FdEntry{};
  fds_[fd].kind = FdEntry::Kind::kFile;
  fds_[fd].node = node;
  return fd;
}

Result<std::size_t> SimKernel::WriteFile(int fd, Buffer data) {
  ChargeSyscall();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kFile) {
    return BadDescriptor("write(file)");
  }
  host_->Work(host_->cost().kernel_fs_op_ns);
  host_->CopyBytes(data.size());  // user -> page cache copy
  vfs_.WriteAt(e->node, e->pos, data.span());
  e->pos += data.size();
  return data.size();
}

bool SimKernel::ReadReady(int fd, std::size_t len) {
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kFile) {
    return false;
  }
  return vfs_.MissingPages(e->node, e->pos, len).empty();
}

Result<Buffer> SimKernel::ReadFile(int fd, std::size_t len) {
  ChargeSyscall();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kFile) {
    return BadDescriptor("read(file)");
  }
  host_->Work(host_->cost().kernel_fs_op_ns);
  if (e->pos >= e->node->size) {
    return EndOfFile();
  }
  const auto missing = vfs_.MissingPages(e->node, e->pos, len);
  if (!missing.empty()) {
    StartPageFills(e->node, missing);  // major fault: device reads in flight
    return WouldBlock();
  }
  const std::size_t n = std::min(len, e->node->size - e->pos);
  Buffer out = Buffer::Allocate(n);
  vfs_.ReadAt(e->node, e->pos, out.mutable_span());
  host_->CopyBytes(n);  // page cache -> user copy
  e->pos += n;
  return out;
}

void SimKernel::StartPageFills(FsNode* node, const std::vector<std::uint32_t>& pages) {
  DEMI_CHECK(bdev_ != nullptr);
  for (const std::uint32_t page : pages) {
    auto lba_it = node->page_lba.find(page);
    if (lba_it == node->page_lba.end()) {
      // Never flushed: a hole; fill with zeros immediately.
      std::vector<std::byte> zeros(Vfs::kPageSize, std::byte{0});
      vfs_.FillPage(node, page, zeros);
      continue;
    }
    // Skip if a fill for this page is already in flight.
    bool in_flight = false;
    for (const auto& [id, fill] : page_fills_) {
      if (fill.node == node && fill.page == page) {
        in_flight = true;
        break;
      }
    }
    if (in_flight) {
      continue;
    }
    Buffer dest = Buffer::Allocate(Vfs::kPageSize);
    const std::uint64_t cmd = next_cmd_id_++;
    if (bdev_->SubmitRead(cmd, lba_it->second, 1, dest).ok()) {
      page_fills_[cmd] = PageFill{node, page, dest};
    }
  }
}

Result<std::uint64_t> SimKernel::FsyncStart(int fd) {
  ChargeSyscall();
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kFile) {
    return BadDescriptor("fsync");
  }
  if (bdev_ == nullptr) {
    return Unsupported("host has no block device");
  }
  host_->Work(host_->cost().kernel_fs_op_ns);
  const std::uint64_t token = next_token_++;
  FsyncOp op;
  op.remaining = vfs_.CollectDirty(e->node);
  fsyncs_[token] = std::move(op);
  PumpFsync(token, fsyncs_[token]);
  return token;
}

void SimKernel::PumpFsync(std::uint64_t token, FsyncOp& op) {
  while (!op.remaining.empty()) {
    const Vfs::FlushItem& item = op.remaining.back();
    const std::uint64_t cmd = next_cmd_id_++;
    if (!bdev_->SubmitWrite(cmd, item.lba, item.data).ok()) {
      --next_cmd_id_;
      return;  // SQ full; resume from Poll()
    }
    cmd_to_fsync_[cmd] = token;
    ++op.inflight;
    op.remaining.pop_back();
  }
  if (op.remaining.empty() && op.inflight == 0 && !op.flush_submitted) {
    const std::uint64_t cmd = next_cmd_id_++;
    if (bdev_->SubmitFlush(cmd).ok()) {
      cmd_to_fsync_[cmd] = token;
      op.flush_submitted = true;
    } else {
      --next_cmd_id_;
    }
  }
}

bool SimKernel::FsyncDone(std::uint64_t token) {
  auto it = fsyncs_.find(token);
  if (it == fsyncs_.end()) {
    return true;  // unknown == long finished
  }
  return it->second.flush_done;
}

// --- control path for libOSes ---

Result<int> SimKernel::AllocateNicQueue() {
  SimNic* leased = bypass_nic_ != nullptr ? bypass_nic_ : nic_;
  if (leased == nullptr) {
    return Unsupported("host has no NIC");
  }
  // Control path: validate, program the NIC's queue ownership, set up the IOMMU. A
  // handful of crossings' worth of work — paid once, not per I/O (Figure 2).
  for (int i = 0; i < 4; ++i) {
    ChargeControlCrossing();
  }
  if (next_leased_queue_ >= leased->config().num_queues) {
    return ResourceExhausted("no NIC queues left to lease");
  }
  return next_leased_queue_++;
}

TenantRegistry* SimKernel::tenant_registry() {
  if (tenants_ == nullptr) {
    tenants_ = std::make_unique<TenantRegistry>(&host_->sim());
    if (SimNic* leased = bypass_nic_ != nullptr ? bypass_nic_ : nic_; leased != nullptr) {
      leased->AttachTenantRegistry(tenants_.get());
    }
  }
  return tenants_.get();
}

Result<TenantId> SimKernel::CreateTenant(TenantQosConfig config) {
  SimNic* leased = bypass_nic_ != nullptr ? bypass_nic_ : nic_;
  if (leased == nullptr) {
    return Unsupported("host has no NIC");
  }
  // Control path: validate the policy and program it into the device's tenant table.
  ChargeControlCrossing();
  ChargeControlCrossing();
  return tenant_registry()->Create(std::move(config));
}

Result<int> SimKernel::AllocateNicQueue(TenantId tenant) {
  if (tenants_ == nullptr || !tenants_->Has(tenant)) {
    return InvalidArgument("unknown tenant id");
  }
  auto queue = AllocateNicQueue();
  if (!queue.ok()) {
    return queue;
  }
  SimNic* leased = bypass_nic_ != nullptr ? bypass_nic_ : nic_;
  leased->BindQueueTenant(*queue, tenant);
  return queue;
}

Status SimKernel::GrantTenantMemory(TenantId tenant,
                                    const std::shared_ptr<BufferStorage>& storage) {
  if (tenants_ == nullptr || !tenants_->Has(tenant)) {
    return InvalidArgument("unknown tenant id");
  }
  if (storage == nullptr) {
    return InvalidArgument("null region");
  }
  // IOMMU mapping plus capability-table install: same control-path cost shape as
  // MapForDevice, but scoped to the tenant instead of globally trusted.
  ChargeControlCrossing();
  host_->Work(host_->cost().MemRegNs(storage->capacity()));
  host_->Count(Counter::kMemRegistrations);
  host_->Count(Counter::kBytesPinned, storage->capacity());
  tenants_->GrantRegion(tenant, storage->registration_root());
  return OkStatus();
}

void SimKernel::SetBypassNic(SimNic* nic) {
  bypass_nic_ = nic;
  if (tenants_ != nullptr && nic != nullptr) {
    nic->AttachTenantRegistry(tenants_.get());  // registry follows the leased device
  }
  // Queue 0 of the leased device belongs to the kernel only when the kernel's own
  // stack runs on it; on a dedicated-kernel-NIC host every bypass queue is leasable.
  if (nic != nullptr && nic != nic_) {
    next_leased_queue_ = 0;
  }
}

Status SimKernel::MapForDevice(std::size_t bytes) {
  ChargeControlCrossing();
  host_->Work(host_->cost().MemRegNs(bytes));
  host_->Count(Counter::kMemRegistrations);
  host_->Count(Counter::kBytesPinned, bytes);
  return OkStatus();
}

// --- poller ---

bool SimKernel::Poll() {
  bool progress = false;

  // Reap block-device completions: fsync writes/flushes and page fills.
  if (bdev_ != nullptr) {
    for (const BlockCompletion& c : bdev_->PollCompletions(64)) {
      progress = true;
      if (auto fit = cmd_to_fsync_.find(c.id); fit != cmd_to_fsync_.end()) {
        auto& op = fsyncs_[fit->second];
        const std::uint64_t token = fit->second;
        cmd_to_fsync_.erase(fit);
        if (op.flush_submitted) {
          op.flush_done = true;
        } else {
          --op.inflight;
          PumpFsync(token, op);
        }
        host_->Work(host_->cost().interrupt_ns / 2);  // completion IRQ (coalesced)
      } else if (auto pit = page_fills_.find(c.id); pit != page_fills_.end()) {
        vfs_.FillPage(pit->second.node, pit->second.page, pit->second.dest.span());
        page_fills_.erase(pit);
        host_->Work(host_->cost().interrupt_ns / 2);
      }
    }
  }

  // Thundering herd: when any watched fd of an epoll instance is ready and threads are
  // parked, the kernel wakes them ALL (level-triggered wake-all, as with multiple
  // threads blocked on the same epoll fd / socket).
  for (auto& [epfd, ep] : epolls_) {
    if (ep.blocked_waiters == 0) {
      continue;
    }
    bool any_ready = false;
    for (const auto& [fd, interest] : ep.interest) {
      const FdEntry* e = Entry(fd);
      if (e != nullptr && (Readiness(*e) & interest) != 0) {
        any_ready = true;
        break;
      }
    }
    if (!any_ready) {
      continue;
    }
    progress = true;
    host_->Work(host_->cost().interrupt_ns);
    host_->Count(Counter::kInterrupts);
    const int waiters = ep.blocked_waiters;
    for (int i = 0; i < waiters; ++i) {
      host_->Work(host_->cost().context_switch_ns);
      host_->Count(Counter::kContextSwitches);
      host_->Count(Counter::kWakeups);
      if (i > 0) {
        // Only one waiter will find the event; the rest burned a wakeup for nothing.
        host_->Count(Counter::kSpuriousWakeups);
      }
    }
    ep.blocked_waiters = 0;
  }

  return progress;
}

}  // namespace demi
