// SimKernel: the legacy OS kernel of Figure 1 (left) and the control-path kernel of
// Figure 2 (right).
//
// Two roles:
//
//  1. *Traditional data path* (the baseline in every experiment): POSIX-style fd
//     sockets and files where every operation pays a syscall crossing, kernel-layer
//     bookkeeping, and a kernel<->user copy; receive interrupts and epoll with
//     level-triggered wake-all semantics (the thundering herd §4.4 fixes).
//
//  2. *Demikernel control path*: infrequent operations the paper leaves in the kernel —
//     allocating kernel-bypass device queues to a libOS, name service, setup.
//
// The kernel runs its own NetStack instance over its NIC at kernel protocol costs
// (cost.kernel_stack_*). It never shares a NIC queue with a libOS in our experiments;
// hosts under test get their own devices, as real deployments do with SR-IOV.

#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/hw/block_device.h"
#include "src/hw/nic.h"
#include "src/kernel/vfs.h"
#include "src/net/stack.h"
#include "src/sim/simulation.h"

namespace demi {

constexpr std::uint32_t kEpollIn = 0x1;
constexpr std::uint32_t kEpollOut = 0x4;

struct EpollEvent {
  int fd = -1;
  std::uint32_t events = 0;
};

struct SimKernelConfig {
  Ipv4Address ip;
  TcpConfig tcp;
  std::uint64_t seed = 3;
  // Fastcall-style control path ("New Mechanism for Fast System Calls"): when set,
  // control-plane operations (accept/connect/lease/grant) enter the kernel through a
  // dedicated, registered entry point that skips the full crossing — priced at
  // cost.fastcall_crossing_ns instead of cost.syscall_ns. Data-path ops (read/write/
  // epoll) always pay the full crossing. Off by default: the baseline is untouched.
  bool fastcall_enabled = false;
};

class SimKernel final : public Poller {
 public:
  // `nic` and/or `bdev` may be null if the host has no such device.
  SimKernel(HostCpu* host, SimNic* nic, BlockDevice* bdev, SimKernelConfig config);
  ~SimKernel() override;
  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  HostCpu& host() { return *host_; }
  NetStack* net() { return net_.get(); }
  Vfs& vfs() { return vfs_; }

  // Charges one user->kernel->user crossing. Public so the Catnap libOS (which funnels
  // its I/O through kernel sockets) charges honestly.
  void ChargeSyscall();

  // Flips the fastcall control-path entry at runtime (same knob as
  // SimKernelConfig::fastcall_enabled).
  void SetFastcallEnabled(bool on) { config_.fastcall_enabled = on; }
  bool fastcall_enabled() const { return config_.fastcall_enabled; }

  // --- sockets (POSIX semantics: fds, copies, non-blocking returns) ---

  Result<int> Socket();
  Status Bind(int fd, std::uint16_t port);
  Status Listen(int fd);
  Result<int> Accept(int fd);  // kWouldBlock when the accept queue is empty
  // Batched accept: ONE control crossing drains up to `max_conns` pending connections
  // (per-connection socket bookkeeping is still paid). kWouldBlock when the backlog is
  // empty. This is what keeps accept storms from serializing on crossings.
  Result<std::vector<int>> AcceptBatch(int fd, std::size_t max_conns);
  // Free peek: pending connections on a listener (a thread blocked in accept()/epoll
  // costs nothing until the wakeup).
  bool AcceptReady(int fd) const;
  Status Connect(int fd, Endpoint remote);  // starts a non-blocking connect
  bool ConnectInProgress(int fd) const;
  bool ConnectSucceeded(int fd) const;
  // Copies up to `max` received bytes into a fresh user buffer (this copy is the 50%
  // Redis overhead of §3.2). kWouldBlock / kEndOfFile / kConnectionReset as applicable.
  Result<Buffer> ReadSock(int fd, std::size_t max);
  // Copies `data` into kernel memory and queues it on the connection.
  Result<std::size_t> WriteSock(int fd, Buffer data);
  Status CloseFd(int fd);
  TcpConnection* SockConnection(int fd);  // test/stat access

  // --- epoll ---

  Result<int> EpollCreate();
  Status EpollAdd(int epfd, int fd, std::uint32_t events);
  Status EpollDel(int epfd, int fd);
  // Non-blocking wait: returns the ready set (level-triggered), charging the syscall
  // plus per-event dispatch cost.
  Result<std::vector<EpollEvent>> EpollWait(int epfd, std::size_t max_events);
  // Parks one logical thread on the epoll fd (charges the block-side context switch).
  // When any watched fd becomes ready, ALL parked threads are woken — each pays an
  // interrupt/context-switch, and all but one find nothing to do (kSpuriousWakeups).
  Status EpollBlock(int epfd);
  int EpollBlockedCount(int epfd) const;
  // Free peek: true if any watched fd is ready. Models a thread asleep inside
  // epoll_wait — being blocked costs nothing until the wakeup; servers use this to
  // avoid charging a syscall per idle poll round.
  bool EpollAnyReady(int epfd) const;

  // --- files ---

  Result<int> OpenFile(const std::string& path, bool create);
  // Buffered write at the fd's position (syscall + VFS work + user->kernel copy).
  Result<std::size_t> WriteFile(int fd, Buffer data);
  // Cached read at the fd's position (syscall + copy). If any page is cold, device
  // reads are started and kWouldBlock is returned; retry after the fill completes
  // (poll ReadReady).
  Result<Buffer> ReadFile(int fd, std::size_t len);
  bool ReadReady(int fd, std::size_t len);  // all pages for the next read are resident
  // Flushes dirty pages + a device flush; completes asynchronously.
  Result<std::uint64_t> FsyncStart(int fd);
  bool FsyncDone(std::uint64_t token);
  void DropCaches() { vfs_.DropCaches(); }

  // --- Demikernel control path (Figure 2) ---

  // Leases a kernel-bypass NIC queue to a libOS. Control-path cost: a few syscalls of
  // setup; afterwards the kernel is out of the picture entirely.
  Result<int> AllocateNicQueue();
  // Tenant-scoped lease: the queue is bound to `tenant` on the device, so its
  // descriptors pass capability checks, token buckets, and DWRR arbitration
  // (src/hw/tenant.h). The kernel's own queue 0 stays unbound/trusted.
  Result<int> AllocateNicQueue(TenantId tenant);
  // Mints a tenant on the bypass device's registry (created and attached lazily on
  // first use). Control path only: the device enforces the policy thereafter.
  Result<TenantId> CreateTenant(TenantQosConfig config);
  // Installs `storage` in the tenant's device capability set (IOMMU + capability
  // table update), charging registration cost like MapForDevice.
  Status GrantTenantMemory(TenantId tenant, const std::shared_ptr<BufferStorage>& storage);
  // The registry governing the bypass device; created on first CreateTenant call.
  TenantRegistry* tenant_registry();
  // Names the device libOS leases come from. Defaults to the kernel's own NIC (the
  // shared-device topology); the harness points it at the bypass NIC when the kernel
  // runs on a dedicated NIC, where the kernel owns no queue of the bypass device.
  void SetBypassNic(SimNic* nic);
  // Registers a libOS memory arena for device DMA (IOMMU mapping update).
  Status MapForDevice(std::size_t bytes);

  // Poller: epoll readiness edges + block-device completion reaping + fsync pumping.
  bool Poll() override;

 private:
  struct FdEntry {
    enum class Kind { kFree, kSocket, kListener, kFile, kEpoll };
    Kind kind = Kind::kFree;
    // sockets
    TcpConnection* conn = nullptr;
    TcpListener* listener = nullptr;
    std::uint16_t bound_port = 0;
    bool connect_started = false;
    // files
    FsNode* node = nullptr;
    std::size_t pos = 0;
  };

  struct EpollInstance {
    std::unordered_map<int, std::uint32_t> interest;
    int blocked_waiters = 0;
  };

  struct FsyncOp {
    std::vector<Vfs::FlushItem> remaining;
    std::size_t inflight = 0;
    bool flush_submitted = false;
    bool flush_done = false;
  };

  int AllocFd();
  // Control-plane kernel entry: the cheap fastcall crossing when enabled, the full
  // syscall crossing otherwise. Data-path ops never route through here.
  void ChargeControlCrossing();
  FdEntry* Entry(int fd);
  const FdEntry* Entry(int fd) const;
  std::uint32_t Readiness(const FdEntry& e) const;
  void PumpFsync(std::uint64_t token, FsyncOp& op);
  void StartPageFills(FsNode* node, const std::vector<std::uint32_t>& pages);

  HostCpu* host_;
  SimNic* nic_;
  SimNic* bypass_nic_ = nullptr;  // lease target; nic_ unless SetBypassNic was called
  BlockDevice* bdev_;
  SimKernelConfig config_;
  Vfs vfs_;
  std::unique_ptr<NetStack> net_;
  std::vector<FdEntry> fds_;
  std::unordered_map<int, EpollInstance> epolls_;
  int next_epoll_id_ = 1;

  std::uint64_t next_token_ = 1;
  std::uint64_t next_cmd_id_ = 1;
  std::unordered_map<std::uint64_t, std::uint64_t> cmd_to_fsync_;  // cmd id -> token
  std::unordered_map<std::uint64_t, FsyncOp> fsyncs_;
  struct PageFill {
    FsNode* node;
    std::uint32_t page;
    Buffer dest;
  };
  std::unordered_map<std::uint64_t, PageFill> page_fills_;  // cmd id -> fill
  int next_leased_queue_ = 1;  // queue 0 belongs to the kernel
  std::unique_ptr<TenantRegistry> tenants_;  // lazily created; attached to bypass NIC
};

}  // namespace demi

#endif  // SRC_KERNEL_KERNEL_H_
