// Message framing: how Demikernel queue elements travel over a byte stream (§5.2).
//
// A DPDK-class libOS must delimit scatter-gather units itself on top of TCP; we use the
// simplest robust framing — a 4-byte length prefix — exactly the kind of self-inserted
// framing the paper discusses. The decoder re-emits each unit as zero-copy slices of
// the received segment buffers: the element boundary is preserved (an sga pushed as one
// unit pops as one unit), while internal segmentation may differ, which §4.2 permits.

#ifndef SRC_NET_FRAMING_H_
#define SRC_NET_FRAMING_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/memory/sgarray.h"

namespace demi {

class MemoryManager;

// Upper bound on one framed message; protects the decoder from hostile lengths.
constexpr std::size_t kMaxFrameBody = 64 * 1024 * 1024;

// Encodes `sga` as wire parts: a fresh 4-byte length header followed by references to
// the sga's segments (no payload copy). When `mem` is set, the length header comes from
// the pre-registered header pool instead of the heap.
std::vector<Buffer> EncodeFrame(const SgArray& sga, MemoryManager* mem = nullptr);

// Incremental decoder over an arbitrary-chunked byte stream.
class FrameDecoder {
 public:
  // Appends received bytes (zero-copy; the decoder slices these buffers).
  void Feed(Buffer chunk);

  // Returns the next complete message, nullopt if more bytes are needed, or
  // kProtocolError if the stream is corrupt (oversized length). A corrupt stream
  // poisons the decoder: every later Next() repeats the error instead of
  // misparsing body bytes as a length prefix (the bad length was already pulled
  // off the stream, so there is no frame boundary to resynchronize on).
  Result<std::optional<SgArray>> Next();

  std::size_t buffered_bytes() const { return avail_; }
  bool poisoned() const { return poisoned_; }

 private:
  bool ConsumeInto(std::span<std::byte> out);

  std::deque<Buffer> pending_;
  std::size_t avail_ = 0;
  bool have_len_ = false;
  bool poisoned_ = false;
  std::uint32_t body_len_ = 0;
};

}  // namespace demi

#endif  // SRC_NET_FRAMING_H_
