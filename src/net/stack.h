// NetStack: a user-level network stack bound to one NIC queue.
//
// This is the poll-mode I/O stack a kernel-bypass NIC leaves missing (§2): Ethernet
// framing, ARP resolution, IPv4, UDP, and the TCP of src/net/tcp.h. The same class
// serves two masters at different costs:
//   - the Catnip libOS runs it at user-level cost (cost.user_stack_*) with zero copies;
//   - the simulated kernel (src/kernel) runs another instance at kernel cost
//     (cost.kernel_stack_*) and adds syscalls + copies at its socket layer.
//
// Routing model: one L2 segment (the simulated rack); every host is a neighbour, so
// there is ARP but no IP routing. That matches the paper's intra-datacenter focus.

#ifndef SRC_NET_STACK_H_
#define SRC_NET_STACK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/hw/nic.h"
#include "src/net/flow_table.h"
#include "src/net/packet.h"
#include "src/net/tcp.h"
#include "src/sim/simulation.h"

namespace demi {

class MemoryManager;

struct NetStackConfig {
  Ipv4Address ip;
  int nic_queue = 0;
  // Per-segment protocol processing cost; negative means "use the cost model's
  // user_stack_{tx,rx}_ns defaults".
  TimeNs stack_tx_ns = -1;
  TimeNs stack_rx_ns = -1;
  std::size_t rx_batch = 32;
  TcpConfig tcp;
  std::uint64_t seed = 7;  // ISS / ephemeral port randomization
  // When set, protocol headers come from the manager's pre-registered header pool
  // (zero-copy libOS TX path); when null, headers fall back to heap buffers (the
  // legacy kernel stack, which copies at the socket layer anyway).
  MemoryManager* memory = nullptr;
  // RSS-sharded worker mode (DESIGN.md §13): don't install an ntuple steering rule
  // for listened/connected ports — flows reach this stack's queue by RSS hash alone.
  // Required when N sharded stacks listen on the SAME port of one NIC: a steering
  // rule is a single map entry, so the last registrant would capture every flow.
  bool rss_steering = false;
};

class NetStack final : public Poller, public TcpIo {
 public:
  NetStack(HostCpu* host, SimNic* nic, NetStackConfig config);
  ~NetStack() override;
  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;

  Ipv4Address ip() const { return config_.ip; }

  // Drains an RX burst from the NIC and feeds the protocol machinery, then flushes
  // all frames staged during the step as one TX burst (a single doorbell). Registered
  // with the Simulation automatically; returns true if any frame was processed.
  bool Poll() override;

  // Posts every staged outbound frame to the NIC as one TransmitBurst (chunked only
  // by ring space). Called automatically at the end of Poll(); latency-sensitive
  // paths (TCP control segments, blocking pushes) call it directly via TcpIo::FlushTx
  // so batching never delays them.
  void Flush();

  // --- UDP ---
  using UdpRecvFn = std::function<void(Endpoint from, Buffer payload)>;
  Status UdpBind(std::uint16_t port, UdpRecvFn on_recv);
  void UdpUnbind(std::uint16_t port);
  Status UdpSend(std::uint16_t src_port, Endpoint dst, Buffer payload);
  // Scatter-gather form: each payload part rides to the NIC as a referenced slice; no
  // flattening of multi-segment sgarrays.
  Status UdpSend(std::uint16_t src_port, Endpoint dst, std::span<const Buffer> payload_parts);

  // --- TCP ---
  Result<TcpListener*> TcpListen(std::uint16_t port);
  Result<TcpConnection*> TcpConnect(Endpoint remote);
  // Sweeps fully closed connections out of the live set; call occasionally in long
  // runs (e.g. when closed_unreaped() crosses a threshold — each call is O(live
  // connections), so amortize it). Swept connections move to a one-batch graveyard
  // and are destroyed on the *next* call, so pointers an application still holds
  // from the previous batch stay valid across the sweep that collects them.
  void ReapClosed();
  // Connections that reached CLOSED since the last ReapClosed() sweep.
  std::size_t closed_unreaped() const { return closed_unreaped_; }
  std::size_t live_connections() const { return conns_.size(); }
  const FlowTable& flow_table() const { return flow_table_; }

  // --- TcpIo ---
  void SendSegment(Ipv4Address dst, FrameChain segment) override;
  Buffer AllocateHeader(std::size_t size) override;
  void FlushTx() override { Flush(); }
  Simulation& sim() override { return host_->sim(); }
  HostCpu& host() override { return *host_; }
  const TcpConfig& tcp_config() const override { return config_.tcp; }
  void OnTcpClosed(TcpConnection* conn) override;

  std::uint64_t frames_rx() const { return frames_rx_; }
  std::uint64_t frames_tx() const { return frames_tx_; }

  // True once the backing NIC has died. Latched by Poll(): on first observation every
  // live connection is aborted, which releases the buffers the stack held for
  // retransmission (§4.5 free-protection) and lets pending pops fail fast instead of
  // spinning through RTO cycles that can never succeed.
  bool device_failed() const { return device_failed_; }

 private:
  struct ArpPending {
    std::vector<FrameChain> frames;  // complete frames awaiting a destination MAC patch
    int retries_left = 3;
    TimerId timer = kInvalidTimer;
  };

  TimeNs tx_cost() const;
  TimeNs rx_cost() const;
  // Appends a wire-ready frame to the staging ring; Flush() posts the ring as one
  // burst. All TX paths (ARP, UDP, TCP, RST) funnel through here so frames produced
  // while processing one RX burst share a doorbell.
  void StageFrame(FrameChain frame);
  void HandleFrame(Buffer frame);
  void HandleArp(Buffer frame);
  void HandleIpv4(Buffer frame);
  void HandleTcp(const Ipv4Header& ip, Buffer l4);
  void HandleUdp(const Ipv4Header& ip, Buffer l4);
  // Fills the destination MAC and transmits, or parks the frame on ARP resolution.
  // The chain's first part is always the mutable eth+ip header buffer.
  void ResolveAndTransmit(Ipv4Address next_hop, FrameChain frame);
  void SendArpRequest(Ipv4Address target);
  // Builds an ARP frame from the header allocator so it stays inside the
  // stack's tenant capability set (see the comment at the definition).
  Buffer BuildArp(MacAddress dst, const ArpPacket& arp);
  void ArpRetryTick(Ipv4Address next_hop);
  void FlushArpPending(Ipv4Address ip, MacAddress mac);
  // Picks a free local port for a connection to `remote`. Ports are free per
  // 4-tuple (BSD-style reuse): the same local port can serve flows to distinct
  // remotes, so the ~2048-port per-queue partition does not cap concurrent
  // connections — only concurrent connections to one remote endpoint. O(1) per
  // candidate via the flow table, against the old O(live flows) scan.
  std::uint16_t AllocateEphemeralPort(const Endpoint& remote);
  void SendRst(const Ipv4Header& ip, const TcpHeader& h, std::size_t payload_len);

  HostCpu* host_;
  SimNic* nic_;
  NetStackConfig config_;
  Rng rng_;

  std::unordered_map<Ipv4Address, MacAddress, Ipv4Hash> arp_cache_;
  std::unordered_map<Ipv4Address, ArpPending, Ipv4Hash> arp_pending_;
  std::unordered_map<std::uint16_t, UdpRecvFn> udp_ports_;
  std::unordered_map<std::uint16_t, std::unique_ptr<TcpListener>> listeners_;
  FlowTable flow_table_;  // demultiplexes RX segments; flat and O(1) at 10^6 flows
  std::unordered_map<TcpConnection*, TcpListener*> embryos_;
  std::vector<std::unique_ptr<TcpConnection>> conns_;      // owns live connections
  std::vector<std::unique_ptr<TcpConnection>> graveyard_;  // closed, freed next sweep
  std::size_t closed_unreaped_ = 0;
  std::uint16_t next_ephemeral_ = 49152;
  std::vector<FrameChain> tx_staged_;  // outbound frames awaiting the next burst flush
  std::vector<Buffer> rx_scratch_;     // reused RX burst landing area (no per-poll alloc)
  std::uint64_t frames_rx_ = 0;
  std::uint64_t frames_tx_ = 0;
  bool device_failed_ = false;
};

}  // namespace demi

#endif  // SRC_NET_STACK_H_
