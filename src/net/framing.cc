#include "src/net/framing.h"

#include "src/common/byte_order.h"
#include "src/common/logging.h"
#include "src/memory/memory_manager.h"

namespace demi {

std::vector<Buffer> EncodeFrame(const SgArray& sga, MemoryManager* mem) {
  DEMI_CHECK(sga.total_bytes() <= kMaxFrameBody);
  Buffer header = mem != nullptr ? mem->AllocateHeader(4) : Buffer::Allocate(4);
  ByteWriter w(header.mutable_span());
  w.U32(static_cast<std::uint32_t>(sga.total_bytes()));
  std::vector<Buffer> parts;
  parts.reserve(1 + sga.segment_count());
  parts.push_back(std::move(header));
  for (const Buffer& seg : sga) {
    if (!seg.empty()) {
      parts.push_back(seg);
    }
  }
  return parts;
}

void FrameDecoder::Feed(Buffer chunk) {
  if (chunk.empty()) {
    return;
  }
  avail_ += chunk.size();
  pending_.push_back(std::move(chunk));
}

bool FrameDecoder::ConsumeInto(std::span<std::byte> out) {
  if (avail_ < out.size()) {
    return false;
  }
  std::size_t at = 0;
  while (at < out.size()) {
    Buffer& front = pending_.front();
    const std::size_t take = std::min(front.size(), out.size() - at);
    std::memcpy(out.data() + at, front.data(), take);
    at += take;
    if (take == front.size()) {
      pending_.pop_front();
    } else {
      front = front.Slice(take);
    }
  }
  avail_ -= out.size();
  return true;
}

Result<std::optional<SgArray>> FrameDecoder::Next() {
  if (poisoned_) {
    return ProtocolError("frame length exceeds limit");
  }
  if (!have_len_) {
    std::byte len_bytes[4];
    if (!ConsumeInto(len_bytes)) {
      return std::optional<SgArray>(std::nullopt);
    }
    ByteReader r(len_bytes);
    body_len_ = r.U32();
    if (body_len_ > kMaxFrameBody) {
      poisoned_ = true;
      return ProtocolError("frame length exceeds limit");
    }
    have_len_ = true;
  }
  if (avail_ < body_len_) {
    return std::optional<SgArray>(std::nullopt);
  }
  SgArray out;
  std::size_t need = body_len_;
  while (need > 0) {
    Buffer& front = pending_.front();
    const std::size_t take = std::min(front.size(), need);
    out.Append(front.Slice(0, take));  // zero-copy
    need -= take;
    if (take == front.size()) {
      pending_.pop_front();
    } else {
      front = front.Slice(take);
    }
  }
  avail_ -= body_len_;
  have_len_ = false;
  return std::optional<SgArray>(std::move(out));
}

}  // namespace demi
