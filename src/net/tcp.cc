#include "src/net/tcp.h"

#include <algorithm>

#include "src/common/logging.h"

namespace demi {

TcpConnection::TcpConnection(TcpIo* io, Endpoint local, Endpoint remote, bool active_open,
                             std::uint32_t iss)
    : io_(io),
      local_(local),
      remote_(remote),
      state_(active_open ? State::kSynSent : State::kListen),
      iss_(iss),
      snd_una_(iss),
      snd_nxt_(iss),
      rto_(io->tcp_config().init_rto_ns) {
  const auto& cfg = io_->tcp_config();
  cwnd_ = static_cast<std::uint32_t>(cfg.init_cwnd_segments * cfg.mss);
  ssthresh_ = 0x7FFFFFFF;
}

TcpConnection::~TcpConnection() {
  CancelRetransmitTimer();
  CancelDelayedAck();
  if (persist_timer_ != kInvalidTimer) {
    io_->sim().Cancel(persist_timer_);
  }
  if (time_wait_timer_ != kInvalidTimer) {
    io_->sim().Cancel(time_wait_timer_);
  }
}

void TcpConnection::EnterState(State s) { state_ = s; }

std::uint16_t TcpConnection::AdvertisedWindow() const {
  const std::size_t buffered = recv_ready_bytes_ + ooo_bytes_;
  const std::size_t cap = io_->tcp_config().recv_buf_bytes;
  const std::size_t free_space = cap > buffered ? cap - buffered : 0;
  return static_cast<std::uint16_t>(std::min<std::size_t>(free_space, 65535));
}

void TcpConnection::EmitSegment(std::uint32_t seq, FrameChain payload, std::uint8_t flags,
                                bool track) {
  // Any ACK-bearing segment carries the current rcv_nxt_, so a deferred pure ACK
  // riding out on data (or a control segment) costs nothing extra: the piggyback of
  // RFC 1122. AckNow() clears this state before emitting, so the explicit ACK it
  // sends is never miscounted as a coalesced one.
  if ((flags & kTcpAck) && ack_pending_) {
    io_->host().Count(Counter::kAcksCoalesced,
                      static_cast<std::uint64_t>(std::max(unacked_segments_, 1)));
    CancelDelayedAck();
    unacked_segments_ = 0;
  }
  TcpHeader h;
  h.src_port = local_.port;
  h.dst_port = remote_.port;
  h.seq = seq;
  h.ack = (flags & kTcpAck) ? rcv_nxt_ : 0;
  h.flags = flags;
  h.window = AdvertisedWindow();
  if (h.window == 0) {
    advertised_zero_window_ = true;
  }

  // Zero-copy TX: the header comes from the stack's pooled header arena and the
  // payload slices are chained behind it untouched — no flattening, no memcpy. The
  // checksum streams over the parts.
  Buffer header = io_->AllocateHeader(kTcpHeaderSize);
  WriteTcpHeaderSg(header.mutable_span(), h, local_.ip, remote_.ip, payload.parts_span());

  FrameChain segment(std::move(header));
  for (const Buffer& part : payload.parts()) {
    segment.Append(part);
  }

  if (track) {
    // Keeping the chain for retransmit costs refcount bumps on the payload slices
    // (shared with `segment` above), never byte copies.
    const bool was_empty = inflight_.empty();
    inflight_.push_back(
        InflightSegment{seq, std::move(payload), flags, io_->sim().now(), false});
    if (was_empty) {
      RestartRetransmitTimer();
    } else {
      EnsureRetransmitTimer();
    }
  }
  io_->SendSegment(remote_.ip, std::move(segment));
}

void TcpConnection::SendFlags(std::uint8_t flags) {
  EmitSegment(snd_nxt_, FrameChain(), flags, false);
}

void TcpConnection::SendAck() { SendFlags(kTcpAck); }

void TcpConnection::AckNow() {
  CancelDelayedAck();
  unacked_segments_ = 0;
  SendAck();
}

void TcpConnection::DeferAck() {
  const auto& cfg = io_->tcp_config();
  ++unacked_segments_;
  if (unacked_segments_ >= cfg.ack_every_segments) {
    // One cumulative ACK covers the whole run of deferred segments.
    io_->host().Count(Counter::kAcksCoalesced,
                      static_cast<std::uint64_t>(unacked_segments_ - 1));
    AckNow();
    return;
  }
  ack_pending_ = true;
  if (delack_timer_ == kInvalidTimer) {
    delack_timer_ = io_->sim().Schedule(cfg.delayed_ack_timeout_ns, [this] {
      delack_timer_ = kInvalidTimer;
      OnDelayedAckTimer();
    });
  }
}

void TcpConnection::CancelDelayedAck() {
  ack_pending_ = false;
  if (delack_timer_ != kInvalidTimer) {
    io_->sim().Cancel(delack_timer_);
    delack_timer_ = kInvalidTimer;
  }
}

void TcpConnection::OnDelayedAckTimer() {
  if (!ack_pending_ || state_ == State::kClosed) {
    return;
  }
  ack_pending_ = false;
  unacked_segments_ = 0;
  io_->host().Count(Counter::kDelayedAcks);
  SendAck();
  // Timer context: no poll step is processing this connection, so push the ACK to
  // the device now instead of waiting for the stack's next burst flush.
  io_->FlushTx();
}

void TcpConnection::StartActiveOpen() {
  DEMI_CHECK(state_ == State::kSynSent);
  EmitSegment(snd_nxt_, FrameChain(), kTcpSyn, /*track=*/true);
  snd_nxt_ += 1;
  // Connect latency matters more than batching: push the SYN (or its ARP request)
  // out now rather than at the stack's next poll.
  io_->FlushTx();
}

// --- application send path ---

std::size_t TcpConnection::send_buffer_space() const {
  const std::size_t used = send_queue_bytes_ + (snd_nxt_ - snd_una_);
  const std::size_t cap = io_->tcp_config().send_buf_bytes;
  return cap > used ? cap - used : 0;
}

std::size_t TcpConnection::unacked_bytes() const {
  return send_queue_bytes_ + (snd_nxt_ - snd_una_);
}

Status TcpConnection::Send(Buffer data) {
  if (reset_) {
    return ConnectionReset("connection reset");
  }
  if (state_ != State::kEstablished && state_ != State::kCloseWait &&
      state_ != State::kSynSent && state_ != State::kSynReceived) {
    return NotConnected("send after close");
  }
  if (fin_queued_ || fin_sent_) {
    return NotConnected("send after shutdown");
  }
  if (data.empty()) {
    return OkStatus();
  }
  if (data.size() > send_buffer_space()) {
    return ResourceExhausted("send buffer full");
  }
  send_queue_bytes_ += data.size();
  send_queue_.push_back(std::move(data));
  TrySend();
  return OkStatus();
}

Status TcpConnection::Send(const SgArray& sga) {
  if (sga.total_bytes() > send_buffer_space()) {
    return ResourceExhausted("send buffer full");
  }
  for (const Buffer& seg : sga) {
    RETURN_IF_ERROR(Send(seg));
  }
  return OkStatus();
}

void TcpConnection::TrySend() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait) {
    return;
  }
  const auto& cfg = io_->tcp_config();
  while (!send_queue_.empty()) {
    const std::uint32_t in_flight = snd_nxt_ - snd_una_;
    const std::uint32_t window = std::min<std::uint32_t>(cwnd_, snd_wnd_);
    if (window <= in_flight) {
      break;
    }
    const std::size_t usable = window - in_flight;
    const std::size_t take = std::min({send_queue_bytes_, cfg.mss, usable});
    if (take == 0) {
      break;
    }
    // Gather up to one MSS across queued buffers into a single segment (NICs do this
    // with scatter-gather descriptors, so it costs the host nothing): avoids sending
    // small application writes — e.g. framing headers — as tinygram segments. Each
    // queued buffer contributes a zero-copy slice to the chain.
    FrameChain payload;
    std::size_t gathered = 0;
    while (gathered < take) {
      Buffer& front = send_queue_.front();
      const std::size_t part = std::min(front.size(), take - gathered);
      payload.Append(front.Slice(0, part));
      gathered += part;
      if (part == front.size()) {
        send_queue_.pop_front();
      } else {
        front = front.Slice(part);
      }
    }
    send_queue_bytes_ -= take;
    EmitSegment(snd_nxt_, std::move(payload), kTcpAck | kTcpPsh, /*track=*/true);
    snd_nxt_ += static_cast<std::uint32_t>(take);
  }

  // Zero-window deadlock avoidance: probe the peer periodically.
  if (!send_queue_.empty() && snd_wnd_ == 0 && inflight_.empty() &&
      persist_timer_ == kInvalidTimer) {
    persist_timer_ = io_->sim().Schedule(cfg.persist_interval_ns, [this] {
      persist_timer_ = kInvalidTimer;
      if (send_queue_.empty() || state_ == State::kClosed) {
        return;
      }
      // 1-byte window probe, taken from the queue and tracked like normal data.
      Buffer& front2 = send_queue_.front();
      Buffer probe = front2.Slice(0, 1);
      if (front2.size() == 1) {
        send_queue_.pop_front();
      } else {
        front2 = front2.Slice(1);
      }
      send_queue_bytes_ -= 1;
      EmitSegment(snd_nxt_, FrameChain(std::move(probe)), kTcpAck | kTcpPsh, /*track=*/true);
      snd_nxt_ += 1;
      io_->FlushTx();  // timer context: probe leaves now, not at the next poll
    });
  }

  MaybeSendFin();
}

void TcpConnection::MaybeSendFin() {
  if (!fin_queued_ || fin_sent_ || !send_queue_.empty()) {
    return;
  }
  fin_sent_ = true;
  fin_seq_ = snd_nxt_;
  EmitSegment(snd_nxt_, FrameChain(), kTcpFin | kTcpAck, /*track=*/true);
  snd_nxt_ += 1;
  if (state_ == State::kEstablished) {
    EnterState(State::kFinWait1);
  } else if (state_ == State::kCloseWait) {
    EnterState(State::kLastAck);
  }
}

void TcpConnection::Close() {
  switch (state_) {
    case State::kSynSent:
    case State::kListen:
      BecomeClosed();
      return;
    case State::kSynReceived:
    case State::kEstablished:
    case State::kCloseWait:
      fin_queued_ = true;
      TrySend();
      if (state_ == State::kSynReceived) {
        // FIN will flow once established; nothing else to do now.
        MaybeSendFin();
      }
      // Application context: teardown progress should not wait for the next poll.
      io_->FlushTx();
      return;
    default:
      return;  // already closing or closed
  }
}

void TcpConnection::Abort() {
  if (state_ != State::kClosed) {
    SendFlags(kTcpRst | kTcpAck);
    io_->FlushTx();
  }
  reset_ = true;
  send_queue_.clear();
  send_queue_bytes_ = 0;
  inflight_.clear();
  BecomeClosed();
}

// --- timers ---

void TcpConnection::EnsureRetransmitTimer() {
  if (rtx_timer_ == kInvalidTimer) {
    rtx_timer_ = io_->sim().Schedule(rto_, [this] {
      rtx_timer_ = kInvalidTimer;
      OnRetransmitTimeout();
    });
  }
}

void TcpConnection::RestartRetransmitTimer() {
  rtx_restart_base_ = io_->sim().now();
  EnsureRetransmitTimer();
}

void TcpConnection::CancelRetransmitTimer() {
  if (rtx_timer_ != kInvalidTimer) {
    io_->sim().Cancel(rtx_timer_);
    rtx_timer_ = kInvalidTimer;
  }
}

void TcpConnection::OnRetransmitTimeout() {
  if (inflight_.empty() || state_ == State::kClosed) {
    return;
  }
  // Lazy re-arm: ACK progress since the timer was scheduled only advanced
  // rtx_restart_base_ (a plain store, no Cancel/Schedule churn). If the live
  // deadline moved past us, this firing is not a timeout — sleep the remainder.
  const TimeNs deadline = rtx_restart_base_ + rto_;
  const TimeNs now = io_->sim().now();
  if (now < deadline) {
    rtx_timer_ = io_->sim().Schedule(deadline - now, [this] {
      rtx_timer_ = kInvalidTimer;
      OnRetransmitTimeout();
    });
    return;
  }
  const auto& cfg = io_->tcp_config();
  if (++retries_ > cfg.max_retries) {
    reset_ = true;
    BecomeClosed();
    return;
  }
  // Classic Reno timeout response: collapse to one segment, back off the timer.
  const std::uint32_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max<std::uint32_t>(flight / 2, 2 * static_cast<std::uint32_t>(cfg.mss));
  cwnd_ = static_cast<std::uint32_t>(cfg.mss);
  dup_acks_ = 0;
  in_fast_recovery_ = false;

  InflightSegment& seg = inflight_.front();
  seg.retransmitted = true;
  seg.sent_at = io_->sim().now();
  ++retransmits_;
  io_->host().Count(Counter::kRetransmissions);
  EmitSegment(seg.seq, seg.payload, seg.flags, /*track=*/false);

  rto_ = std::min<TimeNs>(rto_ * 2, cfg.max_rto_ns);
  RestartRetransmitTimer();
  // Timer context: the retransmitted segment must not sit staged until the next poll.
  io_->FlushTx();
}

void TcpConnection::FastRetransmit() {
  if (inflight_.empty()) {
    return;
  }
  InflightSegment& seg = inflight_.front();
  seg.retransmitted = true;
  seg.sent_at = io_->sim().now();
  ++retransmits_;
  io_->host().Count(Counter::kRetransmissions);
  EmitSegment(seg.seq, seg.payload, seg.flags, /*track=*/false);
}

void TcpConnection::UpdateRtt(TimeNs measured) {
  const auto& cfg = io_->tcp_config();
  const auto m = static_cast<double>(measured);
  if (!rtt_valid_) {
    srtt_ns_ = m;
    rttvar_ns_ = m / 2;
    rtt_valid_ = true;
  } else {
    rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(srtt_ns_ - m);
    srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * m;
  }
  rto_ = std::clamp<TimeNs>(static_cast<TimeNs>(srtt_ns_ + 4 * rttvar_ns_), cfg.min_rto_ns,
                            cfg.max_rto_ns);
}

void TcpConnection::StartTimeWait() {
  EnterState(State::kTimeWait);
  CancelRetransmitTimer();
  if (time_wait_timer_ == kInvalidTimer) {
    time_wait_timer_ = io_->sim().Schedule(io_->tcp_config().time_wait_ns, [this] {
      time_wait_timer_ = kInvalidTimer;
      BecomeClosed();
    });
  }
}

void TcpConnection::BecomeClosed() {
  CancelRetransmitTimer();
  CancelDelayedAck();
  if (persist_timer_ != kInvalidTimer) {
    io_->sim().Cancel(persist_timer_);
    persist_timer_ = kInvalidTimer;
  }
  if (time_wait_timer_ != kInvalidTimer) {
    io_->sim().Cancel(time_wait_timer_);
    time_wait_timer_ = kInvalidTimer;
  }
  if (state_ != State::kClosed) {
    EnterState(State::kClosed);
    io_->OnTcpClosed(this);
    // Death can arrive outside segment processing (RTO exhaustion, TIME_WAIT
    // expiry, Abort): notify here so event-driven owners always learn of it.
    if (on_ready_) {
      on_ready_(this);
    }
  }
}

// --- segment input ---

void TcpConnection::OnSegment(const TcpHeader& h, Buffer payload) {
  const bool was_established = established();
  const std::uint32_t una_before = snd_una_;
  OnSegmentImpl(h, std::move(payload));
  // Edge notification after the whole segment is absorbed, so the callback sees the
  // settled state (data delivered, ACKs processed, state transitions done). The
  // snd_una edge covers "send-buffer space opened": a backlogged sender may get
  // nothing but pure ACKs from its peer, and without it could stall forever. Death
  // paths may additionally notify from BecomeClosed(); receivers dedup.
  if (on_ready_ && (readable() || dead() || (established() && !was_established) ||
                    snd_una_ != una_before)) {
    on_ready_(this);
  }
}

void TcpConnection::OnSegmentImpl(const TcpHeader& h, Buffer payload) {
  if (state_ == State::kClosed) {
    return;
  }

  // Passive-open embryo: first segment must be the SYN.
  if (state_ == State::kListen) {
    if (!(h.flags & kTcpSyn) || (h.flags & kTcpAck)) {
      SendFlags(kTcpRst | kTcpAck);
      return;
    }
    rcv_nxt_ = h.seq + 1;
    snd_wnd_ = h.window;
    EnterState(State::kSynReceived);
    EmitSegment(snd_nxt_, FrameChain(), kTcpSyn | kTcpAck, /*track=*/true);
    snd_nxt_ += 1;
    return;
  }

  if (state_ == State::kSynSent) {
    if (h.flags & kTcpRst) {
      reset_ = true;  // connection refused
      BecomeClosed();
      return;
    }
    if ((h.flags & (kTcpSyn | kTcpAck)) != (kTcpSyn | kTcpAck) || h.ack != iss_ + 1) {
      return;  // not our SYN-ACK; wait for retransmit
    }
    rcv_nxt_ = h.seq + 1;
    snd_una_ = h.ack;
    snd_wnd_ = h.window;
    inflight_.clear();  // the SYN is acknowledged
    CancelRetransmitTimer();
    retries_ = 0;
    EnterState(State::kEstablished);
    SendAck();
    TrySend();
    return;
  }

  if (h.flags & kTcpRst) {
    // In-window RST kills the connection (we accept any RST at/above rcv_nxt_).
    if (SeqGe(h.seq, rcv_nxt_)) {
      reset_ = true;
      BecomeClosed();
    }
    return;
  }

  if (h.flags & kTcpSyn) {
    // Retransmitted SYN while in kSynReceived: our tracked SYN-ACK timer covers it,
    // but answering immediately avoids a full RTO stall.
    if (state_ == State::kSynReceived && !inflight_.empty()) {
      EmitSegment(inflight_.front().seq, FrameChain(), kTcpSyn | kTcpAck, /*track=*/false);
    }
    return;
  }

  ProcessAck(h, payload.size());
  if (state_ == State::kClosed) {
    return;
  }
  ProcessPayload(h, std::move(payload));
}

void TcpConnection::ProcessAck(const TcpHeader& h, std::size_t payload_len) {
  if (!(h.flags & kTcpAck)) {
    return;
  }
  const std::uint32_t ack = h.ack;
  if (SeqGt(ack, snd_nxt_)) {
    SendAck();  // acking data we never sent
    return;
  }

  const bool window_changed = h.window != snd_wnd_;
  snd_wnd_ = h.window;
  if (snd_wnd_ > 0 && persist_timer_ != kInvalidTimer) {
    io_->sim().Cancel(persist_timer_);
    persist_timer_ = kInvalidTimer;
  }

  const auto& cfg = io_->tcp_config();
  const auto mss32 = static_cast<std::uint32_t>(cfg.mss);

  if (SeqGt(ack, snd_una_)) {
    // New data acknowledged.
    retries_ = 0;
    std::optional<TimeNs> rtt_sample;
    while (!inflight_.empty() &&
           SeqLe(inflight_.front().seq + SeqLen(inflight_.front()), ack)) {
      if (!inflight_.front().retransmitted) {
        rtt_sample = io_->sim().now() - inflight_.front().sent_at;
      }
      inflight_.pop_front();
    }
    snd_una_ = ack;
    if (rtt_sample) {
      UpdateRtt(*rtt_sample);
    }

    if (in_fast_recovery_) {
      if (SeqGe(ack, recover_)) {
        in_fast_recovery_ = false;
        cwnd_ = ssthresh_;
        dup_acks_ = 0;
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += mss32;  // slow start
    } else {
      cwnd_ += std::max<std::uint32_t>(1, mss32 * mss32 / cwnd_);  // congestion avoidance
    }
    dup_acks_ = 0;

    if (inflight_.empty()) {
      CancelRetransmitTimer();
    } else {
      // RFC 6298 5.3: restart on new-data ACK. Lazily — just move the base.
      rtx_restart_base_ = io_->sim().now();
    }

    // State machinery tied to our FIN being acknowledged.
    if (fin_sent_ && SeqGt(ack, fin_seq_)) {
      if (state_ == State::kFinWait1) {
        EnterState(State::kFinWait2);
      } else if (state_ == State::kClosing) {
        StartTimeWait();
      } else if (state_ == State::kLastAck) {
        BecomeClosed();
        return;
      }
    }
    if (state_ == State::kSynReceived) {
      EnterState(State::kEstablished);
    }
  } else if (ack == snd_una_ && !inflight_.empty() && payload_len == 0 &&
             !window_changed && !(h.flags & (kTcpSyn | kTcpFin))) {
    // Duplicate ACK in the RFC 5681 sense: no data, no window update, nothing else.
    if (++dup_acks_ == 3 && !in_fast_recovery_) {
      const std::uint32_t flight = snd_nxt_ - snd_una_;
      ssthresh_ = std::max<std::uint32_t>(flight / 2, 2 * mss32);
      FastRetransmit();
      cwnd_ = ssthresh_ + 3 * mss32;
      in_fast_recovery_ = true;
      recover_ = snd_nxt_;
    } else if (in_fast_recovery_) {
      cwnd_ += mss32;  // inflate during recovery
    }
  }

  TrySend();
}

void TcpConnection::ProcessPayload(const TcpHeader& h, Buffer payload) {
  const bool has_fin = (h.flags & kTcpFin) != 0;
  if (payload.empty() && !has_fin) {
    return;  // pure ACK
  }

  // The FIN occupies the sequence slot right after this segment's (untrimmed) payload.
  if (has_fin && !fin_received_) {
    pending_fin_ = true;
    pending_fin_seq_ = h.seq + static_cast<std::uint32_t>(payload.size());
  }

  const std::size_t original_size = payload.size();
  std::uint32_t seq = h.seq;
  // Trim anything already received.
  if (SeqLt(seq, rcv_nxt_)) {
    const std::uint32_t overlap = rcv_nxt_ - seq;
    if (overlap >= payload.size()) {
      payload = Buffer();
      seq = rcv_nxt_;
    } else {
      payload = payload.Slice(overlap);
      seq = rcv_nxt_;
    }
  }

  // RFC 1122/5681 ACK policy: only clean in-order data may defer its ACK. Duplicates
  // and out-of-order arrivals must ACK immediately (the dup ACKs are what fuels the
  // peer's fast retransmit), and a segment that fills a reassembly gap must ACK
  // immediately so the retransmitting peer learns of the repair at once.
  bool force_immediate = !io_->tcp_config().delayed_ack || state_ != State::kEstablished;
  if (payload.empty() && original_size > 0) {
    force_immediate = true;  // entirely duplicate data
  }

  bool in_order_data = false;
  if (!payload.empty()) {
    const std::size_t cap = io_->tcp_config().recv_buf_bytes;
    if (seq == rcv_nxt_) {
      if (recv_ready_bytes_ + ooo_bytes_ + payload.size() > cap + 65535) {
        // Receiver truly out of space (sender ignored the window); drop.
        AckNow();
        return;
      }
      if (!ooo_.empty()) {
        force_immediate = true;  // this arrival may repair (part of) a gap
      }
      in_order_data = true;
      rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
      recv_ready_bytes_ += payload.size();
      recv_ready_.push_back(std::move(payload));
      DeliverInOrder();
    } else if (SeqGt(seq, rcv_nxt_)) {
      force_immediate = true;  // out of order
      // Stash for later, bounded by the receive buffer.
      auto it = ooo_.find(seq);
      if (it == ooo_.end()) {
        if (ooo_bytes_ + payload.size() <= cap) {
          ooo_bytes_ += payload.size();
          ooo_.emplace(seq, std::move(payload));
        }
      } else if (payload.size() > it->second.size() &&
                 ooo_bytes_ - it->second.size() + payload.size() <= cap) {
        // A retransmission can carry MORE data at the same seq (the sender
        // coalesced segments). Keeping the shorter cached copy would leave the
        // extra bytes permanently missing, since later duplicates all get
        // trimmed against rcv_nxt_ first and dropped here. Keep the longer one.
        ooo_bytes_ += payload.size() - it->second.size();
        it->second = std::move(payload);
      }
    }
  }

  MaybeConsumeFin();
  // FINs (seen or still pending behind a gap) always ACK immediately: teardown and
  // the peer's FIN retransmit timer should never wait on a delack timer.
  if (has_fin || fin_received_ || pending_fin_) {
    force_immediate = true;
  }
  if (force_immediate || !in_order_data) {
    AckNow();
  } else {
    DeferAck();
  }
}

void TcpConnection::MaybeConsumeFin() {
  if (!pending_fin_ || fin_received_) {
    return;
  }
  if (SeqGt(rcv_nxt_, pending_fin_seq_)) {
    pending_fin_ = false;  // stale duplicate
    return;
  }
  if (rcv_nxt_ != pending_fin_seq_) {
    return;  // data before the FIN still missing
  }
  fin_received_ = true;
  pending_fin_ = false;
  rcv_nxt_ += 1;
  switch (state_) {
    case State::kEstablished:
      EnterState(State::kCloseWait);
      break;
    case State::kFinWait1:
      // Our FIN is unacknowledged: simultaneous close.
      EnterState(State::kClosing);
      break;
    case State::kFinWait2:
      StartTimeWait();
      break;
    default:
      break;
  }
}

void TcpConnection::DeliverInOrder() {
  // Drain contiguous out-of-order segments.
  auto it = ooo_.begin();
  while (it != ooo_.end()) {
    if (SeqGt(it->first, rcv_nxt_)) {
      break;
    }
    Buffer seg = std::move(it->second);
    const std::uint32_t seg_seq = it->first;
    it = ooo_.erase(it);
    ooo_bytes_ -= seg.size();
    if (SeqLt(seg_seq + static_cast<std::uint32_t>(seg.size()), rcv_nxt_)) {
      continue;  // entirely duplicate
    }
    if (SeqLt(seg_seq, rcv_nxt_)) {
      seg = seg.Slice(rcv_nxt_ - seg_seq);
    }
    rcv_nxt_ += static_cast<std::uint32_t>(seg.size());
    recv_ready_bytes_ += seg.size();
    recv_ready_.push_back(std::move(seg));
    it = ooo_.begin();
  }
}

Buffer TcpConnection::Recv(std::size_t max_bytes) {
  if (recv_ready_.empty() || max_bytes == 0) {
    return Buffer();
  }
  const bool was_zero = AdvertisedWindow() == 0;
  Buffer& front = recv_ready_.front();
  Buffer out;
  if (front.size() <= max_bytes) {
    out = std::move(front);
    recv_ready_.pop_front();
  } else {
    out = front.Slice(0, max_bytes);
    front = front.Slice(max_bytes);
  }
  recv_ready_bytes_ -= out.size();
  if ((was_zero || advertised_zero_window_) && AdvertisedWindow() > 0) {
    advertised_zero_window_ = false;
    AckNow();  // window update so the sender's persist probe isn't needed
    io_->FlushTx();  // application context: unblock the stalled sender now
  }
  return out;
}

}  // namespace demi
