// Open-addressing flow table: (local_port, remote ip:port) -> TcpConnection*.
//
// A kernel-bypass stack steering a million concurrent flows cannot afford a
// node-based hash map on the RX fast path: every segment demultiplex would chase a
// bucket pointer into cold memory. This table keeps flat storage — one 16-byte slot
// per flow (packed 64-bit key + connection pointer) — with linear probing, so a
// lookup touches one cache line in the common case and the probe sequence is
// hardware-prefetchable when it does run long.
//
// The 4-tuple packs into 64 bits because the local IP is implied (one stack, one
// IP): remote IPv4 (32) | remote port (16) | local port (16). Key 0 (remote
// 0.0.0.0:0, local port 0) can never describe a live flow and doubles as the empty
// sentinel, so slots need no separate occupancy bit. Deletion uses backward-shift
// compaction instead of tombstones: erase cost is bounded by the local cluster
// length and lookups never slow down as flows churn — important under open-loop
// connection churn where millions of flows come and go over a run.
//
// Probe-length statistics are kept on every lookup so benchmarks and tests can
// assert O(1) behaviour (mean probes stay flat as the table grows into the
// millions) rather than trusting it.

#ifndef SRC_NET_FLOW_TABLE_H_
#define SRC_NET_FLOW_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/net/packet.h"

namespace demi {

class TcpConnection;

class FlowTable {
 public:
  struct Stats {
    std::uint64_t lookups = 0;        // Find/Contains calls
    std::uint64_t lookup_probes = 0;  // slots inspected across those calls
    std::uint64_t max_probe = 0;      // longest single probe sequence observed
    std::uint64_t grows = 0;          // capacity doublings
  };

  explicit FlowTable(std::size_t min_slots = 1024);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  const Stats& stats() const { return stats_; }

  static std::uint64_t PackKey(std::uint16_t local_port, const Endpoint& remote) {
    return (static_cast<std::uint64_t>(remote.ip.addr) << 32) |
           (static_cast<std::uint64_t>(remote.port) << 16) |
           static_cast<std::uint64_t>(local_port);
  }

  // Inserts or overwrites the mapping for this 4-tuple.
  void Insert(std::uint16_t local_port, const Endpoint& remote, TcpConnection* conn);
  // nullptr when the flow is absent.
  TcpConnection* Find(std::uint16_t local_port, const Endpoint& remote) const;
  bool Contains(std::uint16_t local_port, const Endpoint& remote) const {
    return Find(local_port, remote) != nullptr;
  }
  // Returns whether the flow was present.
  bool Erase(std::uint16_t local_port, const Endpoint& remote);

 private:
  struct Slot {
    std::uint64_t key = 0;  // 0 = empty
    TcpConnection* conn = nullptr;
  };

  // splitmix64 finisher: full-avalanche over the packed key, so sequential ports
  // and adversarially clustered 4-tuples still spread across the table.
  static std::uint64_t HashKey(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void Grow();

  std::vector<Slot> slots_;  // capacity is always a power of two
  std::size_t mask_;
  std::size_t size_ = 0;
  mutable Stats stats_;
};

}  // namespace demi

#endif  // SRC_NET_FLOW_TABLE_H_
