// Wire formats: IPv4 addresses, IPv4/UDP/TCP/ARP headers (real layouts, real
// checksums). Shared by the user-level stack (src/net) and the legacy kernel stack
// (src/kernel), which differ in *where* and *at what cost* they run this code, not in
// the protocol itself.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/buffer.h"
#include "src/common/byte_order.h"
#include "src/common/checksum.h"
#include "src/hw/mac.h"

namespace demi {

struct Ipv4Address {
  std::uint32_t addr = 0;  // host byte order

  static Ipv4Address FromOctets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                std::uint8_t d) {
    return Ipv4Address{static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
                       static_cast<std::uint32_t>(c) << 8 | d};
  }
  // "10.0.0.1"-style parsing; returns 0.0.0.0 on malformed input.
  static Ipv4Address Parse(const std::string& dotted);

  std::string ToString() const;
  friend bool operator==(const Ipv4Address& x, const Ipv4Address& y) = default;
};

struct Ipv4Hash {
  std::size_t operator()(const Ipv4Address& a) const {
    return std::hash<std::uint32_t>()(a.addr);
  }
};

// A (ip, port) endpoint.
struct Endpoint {
  Ipv4Address ip;
  std::uint16_t port = 0;
  std::string ToString() const { return ip.ToString() + ":" + std::to_string(port); }
  friend bool operator==(const Endpoint& x, const Endpoint& y) = default;
};

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return std::hash<std::uint64_t>()(static_cast<std::uint64_t>(e.ip.addr) << 16 | e.port);
  }
};

constexpr std::uint8_t kIpProtoTcp = 6;
constexpr std::uint8_t kIpProtoUdp = 17;

constexpr std::size_t kIpv4HeaderSize = 20;  // no options
constexpr std::size_t kUdpHeaderSize = 8;
constexpr std::size_t kTcpHeaderSize = 20;   // no options (MSS is configured, not negotiated)
constexpr std::size_t kArpPacketSize = 28;

struct Ipv4Header {
  std::uint8_t protocol = 0;
  std::uint8_t ttl = 64;
  std::uint16_t total_length = 0;  // header + payload
  Ipv4Address src;
  Ipv4Address dst;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
};

// TCP flag bits.
constexpr std::uint8_t kTcpFin = 0x01;
constexpr std::uint8_t kTcpSyn = 0x02;
constexpr std::uint8_t kTcpRst = 0x04;
constexpr std::uint8_t kTcpPsh = 0x08;
constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
};

struct ArpPacket {
  bool is_request = true;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;
};

// --- serialization (all return/accept exact-size spans) ---

void WriteIpv4Header(std::span<std::byte> out, const Ipv4Header& h);
std::optional<Ipv4Header> ParseIpv4Header(std::span<const std::byte> in);

void WriteUdpHeader(std::span<std::byte> out, const UdpHeader& h);
std::optional<UdpHeader> ParseUdpHeader(std::span<const std::byte> in);

// TCP checksum needs the pseudo-header; Write computes it over header+payload.
void WriteTcpHeader(std::span<std::byte> out, const TcpHeader& h, Ipv4Address src,
                    Ipv4Address dst, std::span<const std::byte> payload);
// Scatter-gather form: the payload stays a Buffer chain; the checksum streams across
// part boundaries (odd-length middle parts included) without flattening.
void WriteTcpHeaderSg(std::span<std::byte> out, const TcpHeader& h, Ipv4Address src,
                      Ipv4Address dst, std::span<const Buffer> payload_parts);
std::optional<TcpHeader> ParseTcpHeader(std::span<const std::byte> in);
// Verifies the TCP checksum of `segment` (header+payload) for the given address pair.
bool VerifyTcpChecksum(std::span<const std::byte> segment, Ipv4Address src, Ipv4Address dst);

void WriteArpPacket(std::span<std::byte> out, const ArpPacket& p);
std::optional<ArpPacket> ParseArpPacket(std::span<const std::byte> in);

// Builds a complete Ethernet+IPv4 frame around `l4` (the L4 header+payload bytes).
// Frame assembly models NIC scatter-gather DMA, so no host copy cost is charged here;
// callers charge their own per-segment protocol-processing cost.
Buffer BuildIpv4Frame(MacAddress src_mac, MacAddress dst_mac, const Ipv4Header& ip,
                      std::span<const Buffer> l4_parts);

// Writes the Ethernet and IPv4 headers for a frame carrying `l4_size` bytes of L4
// content into `hdr` (which must hold kEthHeaderSize + kIpv4HeaderSize bytes). The
// zero-copy TX path writes headers into a pooled buffer and chains the payload
// behind them instead of flattening the frame (BuildIpv4Frame's copying shape).
void WriteEthIpv4Headers(std::span<std::byte> hdr, MacAddress src_mac, MacAddress dst_mac,
                         const Ipv4Header& ip, std::size_t l4_size);

// Builds an Ethernet ARP frame.
Buffer BuildArpFrame(MacAddress src_mac, MacAddress dst_mac, const ArpPacket& arp);

}  // namespace demi

#endif  // SRC_NET_PACKET_H_
