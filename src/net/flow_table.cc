#include "src/net/flow_table.h"

#include <algorithm>

#include "src/common/logging.h"

namespace demi {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

FlowTable::FlowTable(std::size_t min_slots) {
  slots_.resize(RoundUpPow2(min_slots));
  mask_ = slots_.size() - 1;
}

void FlowTable::Insert(std::uint16_t local_port, const Endpoint& remote,
                       TcpConnection* conn) {
  const std::uint64_t key = PackKey(local_port, remote);
  DEMI_CHECK(key != 0 && "flow key 0 is the empty sentinel");
  DEMI_CHECK(conn != nullptr);
  // Grow at 3/4 full: linear probing degrades sharply past that, and the doubling
  // keeps mean probe length O(1) regardless of flow count.
  if ((size_ + 1) * 4 > slots_.size() * 3) {
    Grow();
  }
  std::size_t i = HashKey(key) & mask_;
  while (slots_[i].key != 0) {
    if (slots_[i].key == key) {
      slots_[i].conn = conn;
      return;
    }
    i = (i + 1) & mask_;
  }
  slots_[i] = Slot{key, conn};
  ++size_;
}

TcpConnection* FlowTable::Find(std::uint16_t local_port, const Endpoint& remote) const {
  const std::uint64_t key = PackKey(local_port, remote);
  ++stats_.lookups;
  std::uint64_t probes = 0;
  std::size_t i = HashKey(key) & mask_;
  while (true) {
    ++probes;
    if (slots_[i].key == key) {
      stats_.lookup_probes += probes;
      stats_.max_probe = std::max(stats_.max_probe, probes);
      return slots_[i].conn;
    }
    if (slots_[i].key == 0) {
      stats_.lookup_probes += probes;
      stats_.max_probe = std::max(stats_.max_probe, probes);
      return nullptr;
    }
    i = (i + 1) & mask_;
  }
}

bool FlowTable::Erase(std::uint16_t local_port, const Endpoint& remote) {
  const std::uint64_t key = PackKey(local_port, remote);
  std::size_t i = HashKey(key) & mask_;
  while (slots_[i].key != key) {
    if (slots_[i].key == 0) {
      return false;
    }
    i = (i + 1) & mask_;
  }
  // Backward-shift compaction: walk the cluster after the hole and move back any
  // entry whose home position does not lie strictly inside (hole, entry].
  std::size_t hole = i;
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask_;
    if (slots_[j].key == 0) {
      break;
    }
    const std::size_t home = HashKey(slots_[j].key) & mask_;
    if (((j - home) & mask_) >= ((j - hole) & mask_)) {
      slots_[hole] = slots_[j];
      hole = j;
    }
  }
  slots_[hole] = Slot{};
  --size_;
  return true;
}

void FlowTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  ++stats_.grows;
  for (const Slot& s : old) {
    if (s.key == 0) {
      continue;
    }
    std::size_t i = HashKey(s.key) & mask_;
    while (slots_[i].key != 0) {
      i = (i + 1) & mask_;
    }
    slots_[i] = s;
  }
}

}  // namespace demi
