#include "src/net/stack.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/memory/memory_manager.h"

namespace demi {

NetStack::NetStack(HostCpu* host, SimNic* nic, NetStackConfig config)
    : host_(host), nic_(nic), config_(config), rng_(config.seed) {
  // Stacks sharing one host IP (kernel on queue 0, libOSes on leased queues) partition
  // the ephemeral port space so their flow-steering rules can never collide — the
  // control-path coordination a real kernel provides when leasing queues.
  next_ephemeral_ = static_cast<std::uint16_t>(49152 + config_.nic_queue * 2048);
  host_->sim().AddPoller(this);
}

NetStack::~NetStack() {
  // Connections hold timers referencing themselves; kill them before destruction.
  // Ready callbacks are dropped first: the applications they point into may be
  // tearing down alongside the stack, and teardown aborts are not events.
  for (auto& c : conns_) {
    c->set_on_ready(nullptr);
    if (!c->closed()) {
      c->Abort();
    }
  }
  host_->sim().RemovePoller(this);
}

TimeNs NetStack::tx_cost() const {
  return config_.stack_tx_ns >= 0 ? config_.stack_tx_ns : host_->cost().user_stack_tx_ns;
}

TimeNs NetStack::rx_cost() const {
  return config_.stack_rx_ns >= 0 ? config_.stack_rx_ns : host_->cost().user_stack_rx_ns;
}

Buffer NetStack::AllocateHeader(std::size_t size) {
  if (config_.memory != nullptr) {
    return config_.memory->AllocateHeader(size);
  }
  // No memory manager (legacy kernel stack): plain heap header. Still counted so the
  // alloc-rate difference between the paths is visible.
  host_->Count(Counter::kBufferAllocs);
  host_->Count(Counter::kHeaderPoolMisses);
  return Buffer::Allocate(size);
}

bool NetStack::Poll() {
  if (nic_->failed() && !device_failed_) {
    device_failed_ = true;
    // The NIC is gone for good: no retransmission can ever be acknowledged. Abort every
    // connection now so pending operations complete with errors and the stack's
    // send-queue/in-flight buffer references are dropped. Staged frames can never be
    // posted either; dropping them releases their payload references (§4.5).
    for (auto& c : conns_) {
      if (!c->closed()) {
        c->Abort();
      }
    }
    if (!tx_staged_.empty()) {
      host_->Count(Counter::kPacketsDropped, tx_staged_.size());
      tx_staged_.clear();
    }
    return true;
  }
  bool progress = false;
  rx_scratch_.clear();
  nic_->PollRxBurst(config_.nic_queue, rx_scratch_, config_.rx_batch);
  for (Buffer& frame : rx_scratch_) {
    progress = true;
    ++frames_rx_;
    HandleFrame(std::move(frame));
  }
  rx_scratch_.clear();
  // End-of-step burst flush: everything the burst above produced (ACKs, echoes,
  // retransmit-free data) leaves under a single doorbell.
  if (!tx_staged_.empty()) {
    Flush();
    progress = true;
  }
  return progress;
}

void NetStack::StageFrame(FrameChain frame) {
  ++frames_tx_;
  tx_staged_.push_back(std::move(frame));
}

void NetStack::Flush() {
  if (tx_staged_.empty()) {
    return;
  }
  std::span<FrameChain> rest(tx_staged_);
  while (!rest.empty()) {
    const std::size_t sent = nic_->TransmitBurst(config_.nic_queue, rest);
    if (sent == 0) {
      // Dead NIC or full TX ring: the remainder is lost, exactly as per-frame
      // Transmit calls would have dropped them. Transport retransmission recovers.
      host_->Count(Counter::kPacketsDropped, rest.size());
      break;
    }
    rest = rest.subspan(sent);
  }
  tx_staged_.clear();
}

void NetStack::HandleFrame(Buffer frame) {
  if (frame.size() < kEthHeaderSize) {
    return;
  }
  const EthHeader eth = ParseEthHeader(frame.span());
  switch (eth.ethertype) {
    case kEtherTypeArp:
      HandleArp(std::move(frame));
      break;
    case kEtherTypeIpv4:
      HandleIpv4(std::move(frame));
      break;
    default:
      break;
  }
}

// --- ARP ---

void NetStack::SendArpRequest(Ipv4Address target) {
  ArpPacket req;
  req.is_request = true;
  req.sender_mac = nic_->mac();
  req.sender_ip = config_.ip;
  req.target_mac = MacAddress{};
  req.target_ip = target;
  StageFrame(FrameChain(BuildArp(MacAddress::Broadcast(), req)));
}

// ARP frames must come from the stack's header allocator, not the plain heap:
// on a tenant-bound queue the device validates every TX descriptor against the
// tenant's capability set, and a heap-allocated ARP reply would be refused —
// leaving the stack unable to resolve anything.
Buffer NetStack::BuildArp(MacAddress dst, const ArpPacket& arp) {
  Buffer frame = AllocateHeader(kEthHeaderSize + kArpPacketSize);
  WriteEthHeader(frame.mutable_span(), EthHeader{dst, nic_->mac(), kEtherTypeArp});
  WriteArpPacket(frame.mutable_span().subspan(kEthHeaderSize), arp);
  return frame;
}

void NetStack::HandleArp(Buffer frame) {
  auto arp = ParseArpPacket(frame.span().subspan(kEthHeaderSize));
  if (!arp) {
    return;
  }
  // Learn the sender mapping opportunistically (both requests and replies).
  arp_cache_[arp->sender_ip] = arp->sender_mac;
  FlushArpPending(arp->sender_ip, arp->sender_mac);

  if (arp->is_request && arp->target_ip == config_.ip) {
    ArpPacket reply;
    reply.is_request = false;
    reply.sender_mac = nic_->mac();
    reply.sender_ip = config_.ip;
    reply.target_mac = arp->sender_mac;
    reply.target_ip = arp->sender_ip;
    StageFrame(FrameChain(BuildArp(arp->sender_mac, reply)));
  }
}

void NetStack::FlushArpPending(Ipv4Address ip, MacAddress mac) {
  auto it = arp_pending_.find(ip);
  if (it == arp_pending_.end()) {
    return;
  }
  if (it->second.timer != kInvalidTimer) {
    host_->sim().Cancel(it->second.timer);
  }
  std::vector<FrameChain> frames = std::move(it->second.frames);
  arp_pending_.erase(it);
  for (FrameChain& f : frames) {
    WriteEthHeader(f.front().mutable_span(), EthHeader{mac, nic_->mac(), kEtherTypeIpv4});
    StageFrame(std::move(f));
  }
}

void NetStack::ResolveAndTransmit(Ipv4Address next_hop, FrameChain frame) {
  if (auto it = arp_cache_.find(next_hop); it != arp_cache_.end()) {
    WriteEthHeader(frame.front().mutable_span(),
                   EthHeader{it->second, nic_->mac(), kEtherTypeIpv4});
    StageFrame(std::move(frame));
    return;
  }
  ArpPending& pending = arp_pending_[next_hop];
  pending.frames.push_back(std::move(frame));
  if (pending.frames.size() > 1) {
    return;  // request already outstanding
  }
  pending.retries_left = 3;
  SendArpRequest(next_hop);
  // After retries are exhausted the parked frames are dropped; transport-level
  // retransmission will try again and re-trigger resolution.
  pending.timer = host_->sim().Schedule(kMillisecond, [this, next_hop] { ArpRetryTick(next_hop); });
}

void NetStack::ArpRetryTick(Ipv4Address next_hop) {
  auto it = arp_pending_.find(next_hop);
  if (it == arp_pending_.end()) {
    return;
  }
  if (it->second.retries_left-- <= 0) {
    host_->Count(Counter::kPacketsDropped, it->second.frames.size());
    arp_pending_.erase(it);
    return;
  }
  SendArpRequest(next_hop);
  it->second.timer =
      host_->sim().Schedule(kMillisecond, [this, next_hop] { ArpRetryTick(next_hop); });
}

// --- IPv4 / UDP ---

void NetStack::HandleIpv4(Buffer frame) {
  host_->Work(rx_cost());
  auto ip = ParseIpv4Header(frame.span().subspan(kEthHeaderSize));
  if (!ip || !(ip->dst == config_.ip)) {
    return;
  }
  Buffer l4 = frame.Slice(kEthHeaderSize + kIpv4HeaderSize,
                          ip->total_length - kIpv4HeaderSize);
  switch (ip->protocol) {
    case kIpProtoTcp:
      HandleTcp(*ip, std::move(l4));
      break;
    case kIpProtoUdp:
      HandleUdp(*ip, std::move(l4));
      break;
    default:
      break;
  }
}

Status NetStack::UdpBind(std::uint16_t port, UdpRecvFn on_recv) {
  if (udp_ports_.contains(port)) {
    return Status(ErrorCode::kAddressInUse, "udp port in use");
  }
  udp_ports_[port] = std::move(on_recv);
  nic_->AddSteeringRule(kIpProtoUdp, port, config_.nic_queue);
  return OkStatus();
}

void NetStack::UdpUnbind(std::uint16_t port) {
  if (udp_ports_.erase(port) > 0) {
    nic_->RemoveSteeringRule(kIpProtoUdp, port);
  }
}

Status NetStack::UdpSend(std::uint16_t src_port, Endpoint dst, Buffer payload) {
  const Buffer parts[] = {payload};
  return UdpSend(src_port, dst, parts);
}

Status NetStack::UdpSend(std::uint16_t src_port, Endpoint dst,
                         std::span<const Buffer> payload_parts) {
  std::size_t payload_size = 0;
  for (const Buffer& p : payload_parts) {
    payload_size += p.size();
  }
  if (payload_size + kUdpHeaderSize + kIpv4HeaderSize > 1500) {
    return InvalidArgument("UDP datagram exceeds MTU (no fragmentation support)");
  }
  host_->Work(tx_cost());
  // One pooled header buffer carries eth+ip+udp; the payload parts chain behind it by
  // reference (zero-copy all the way to the wire).
  constexpr std::size_t kHdr = kEthHeaderSize + kIpv4HeaderSize + kUdpHeaderSize;
  Buffer hdr = AllocateHeader(kHdr);
  Ipv4Header ip;
  ip.protocol = kIpProtoUdp;
  ip.src = config_.ip;
  ip.dst = dst.ip;
  WriteEthIpv4Headers(hdr.mutable_span(), nic_->mac(), MacAddress{}, ip,
                      kUdpHeaderSize + payload_size);
  WriteUdpHeader(hdr.mutable_span().subspan(kEthHeaderSize + kIpv4HeaderSize),
                 UdpHeader{src_port, dst.port,
                           static_cast<std::uint16_t>(kUdpHeaderSize + payload_size)});
  FrameChain frame(std::move(hdr));
  for (const Buffer& p : payload_parts) {
    if (!p.empty()) {
      frame.Append(p);
    }
  }
  ResolveAndTransmit(dst.ip, std::move(frame));
  return OkStatus();
}

void NetStack::HandleUdp(const Ipv4Header& ip, Buffer l4) {
  auto h = ParseUdpHeader(l4.span());
  if (!h) {
    return;
  }
  auto it = udp_ports_.find(h->dst_port);
  if (it == udp_ports_.end()) {
    return;  // no ICMP port-unreachable in this stack
  }
  it->second(Endpoint{ip.src, h->src_port}, l4.Slice(kUdpHeaderSize, h->length - kUdpHeaderSize));
}

// --- TCP ---

Result<TcpListener*> NetStack::TcpListen(std::uint16_t port) {
  if (listeners_.contains(port)) {
    return Status(ErrorCode::kAddressInUse, "tcp port in use");
  }
  auto listener = std::make_unique<TcpListener>(port, config_.tcp.listen_backlog);
  TcpListener* out = listener.get();
  listeners_[port] = std::move(listener);
  if (!config_.rss_steering) {
    nic_->AddSteeringRule(kIpProtoTcp, port, config_.nic_queue);
  }
  return out;
}

std::uint16_t NetStack::AllocateEphemeralPort(const Endpoint& remote) {
  const auto base = static_cast<std::uint16_t>(49152 + config_.nic_queue * 2048);
  const auto limit = static_cast<std::uint16_t>(base + 2047);
  // A port is reusable when this exact 4-tuple is free: one pass over the partition
  // suffices, and each candidate costs one O(1) flow-table lookup.
  for (int tries = 0; tries < 2048; ++tries) {
    const std::uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= limit ? base : next_ephemeral_ + 1;
    if (!flow_table_.Contains(port, remote) && !listeners_.contains(port)) {
      return port;
    }
  }
  return 0;
}

Result<TcpConnection*> NetStack::TcpConnect(Endpoint remote) {
  const std::uint16_t port = AllocateEphemeralPort(remote);
  if (port == 0) {
    return ResourceExhausted("no ephemeral ports");
  }
  const auto iss = static_cast<std::uint32_t>(rng_.NextU64());
  auto conn = std::make_unique<TcpConnection>(this, Endpoint{config_.ip, port}, remote,
                                              /*active_open=*/true, iss);
  TcpConnection* out = conn.get();
  nic_->AddSteeringRule(kIpProtoTcp, port, config_.nic_queue);
  flow_table_.Insert(port, remote, out);
  conns_.push_back(std::move(conn));
  out->StartActiveOpen();
  return out;
}

void NetStack::SendRst(const Ipv4Header& ip, const TcpHeader& h, std::size_t payload_len) {
  TcpHeader rst;
  rst.src_port = h.dst_port;
  rst.dst_port = h.src_port;
  rst.flags = kTcpRst | kTcpAck;
  rst.seq = (h.flags & kTcpAck) ? h.ack : 0;
  rst.ack = h.seq + static_cast<std::uint32_t>(payload_len) +
            ((h.flags & (kTcpSyn | kTcpFin)) ? 1 : 0);
  Buffer seg = AllocateHeader(kTcpHeaderSize);
  WriteTcpHeader(seg.mutable_span(), rst, config_.ip, ip.src, {});
  SendSegment(ip.src, FrameChain(std::move(seg)));
}

void NetStack::HandleTcp(const Ipv4Header& ip, Buffer l4) {
  if (!VerifyTcpChecksum(l4.span(), ip.src, ip.dst)) {
    return;  // corrupted segment
  }
  auto h = ParseTcpHeader(l4.span());
  if (!h) {
    return;
  }
  Buffer payload = l4.Slice(kTcpHeaderSize);

  const Endpoint peer{ip.src, h->src_port};
  if (TcpConnection* conn = flow_table_.Find(h->dst_port, peer); conn != nullptr) {
    conn->OnSegment(*h, std::move(payload));
    // Embryo promotion: passive connections reach the accept queue once established.
    if (auto eit = embryos_.find(conn); eit != embryos_.end()) {
      if (conn->established()) {
        TcpListener* listener = eit->second;
        --listener->embryos_;
        listener->accept_queue_.push_back(conn);
        embryos_.erase(eit);
      } else if (conn->closed()) {
        --eit->second->embryos_;
        embryos_.erase(eit);
      }
    }
    return;
  }

  // No connection: maybe a listener?
  if (auto lit = listeners_.find(h->dst_port); lit != listeners_.end()) {
    TcpListener* listener = lit->second.get();
    if ((h->flags & kTcpSyn) && !(h->flags & kTcpAck)) {
      if (listener->embryos_ + listener->accept_queue_.size() >= listener->backlog_) {
        return;  // SYN queue overflow: drop, client retransmits
      }
      const auto iss = static_cast<std::uint32_t>(rng_.NextU64());
      auto conn = std::make_unique<TcpConnection>(this, Endpoint{config_.ip, h->dst_port},
                                                  peer, /*active_open=*/false, iss);
      TcpConnection* raw = conn.get();
      flow_table_.Insert(h->dst_port, peer, raw);
      conns_.push_back(std::move(conn));
      embryos_[raw] = listener;
      ++listener->embryos_;
      raw->OnSegment(*h, std::move(payload));
      return;
    }
    // Non-SYN to a listening port without a connection: reset.
  }
  if (!(h->flags & kTcpRst)) {
    SendRst(ip, *h, payload.size());
  }
}

void NetStack::SendSegment(Ipv4Address dst, FrameChain segment) {
  host_->Work(tx_cost());
  Ipv4Header ip;
  ip.protocol = kIpProtoTcp;
  ip.src = config_.ip;
  ip.dst = dst;
  Buffer hdr = AllocateHeader(kEthHeaderSize + kIpv4HeaderSize);
  WriteEthIpv4Headers(hdr.mutable_span(), nic_->mac(), MacAddress{}, ip, segment.size());
  FrameChain frame(std::move(hdr));
  for (const Buffer& part : segment.parts()) {
    frame.Append(part);
  }
  ResolveAndTransmit(dst, std::move(frame));
}

void NetStack::OnTcpClosed(TcpConnection* conn) {
  flow_table_.Erase(conn->local().port, conn->remote());
  ++closed_unreaped_;
  if (auto eit = embryos_.find(conn); eit != embryos_.end()) {
    --eit->second->embryos_;
    embryos_.erase(eit);
  }
}

void NetStack::ReapClosed() {
  // The previous batch has survived one full sweep interval; any pointers the
  // application held at close time are stale by now. Destroy it before collecting
  // the next batch so graveyard memory stays bounded under sustained churn.
  graveyard_.clear();
  // Swap-and-pop keeps the sweep O(live) instead of O(live * closed); the live
  // vector's order is not part of the stack's contract.
  for (std::size_t i = 0; i < conns_.size();) {
    if (conns_[i]->closed()) {
      graveyard_.push_back(std::move(conns_[i]));
      conns_[i] = std::move(conns_.back());
      conns_.pop_back();
    } else {
      ++i;
    }
  }
  closed_unreaped_ = 0;
}

}  // namespace demi
