// A user-level TCP: full handshake, sliding-window flow control, Reno congestion
// control, RTO with exponential backoff + Karn's algorithm, fast retransmit on three
// duplicate ACKs, out-of-order reassembly, FIN/RST teardown with TIME_WAIT.
//
// This is the "entire networking stack" a DPDK-class device forces someone to supply
// (§2, Table 1). In the Demikernel architecture it lives inside the Catnip libOS; in
// the traditional architecture the same protocol code runs inside the simulated kernel
// at kernel cost. Both run over lossy simulated fabric, so correctness here is tested
// with packet loss/reorder/duplication property tests (tests/net_tcp_test.cc).
//
// ACK generation follows RFC 1122 delayed ACKs: in-order data is acknowledged every
// `ack_every_segments` segments or after a short delayed-ack timer (well under the
// minimum RTO, so coalescing can never stall a sender into a timeout), and any
// outgoing data segment piggybacks the pending ACK. Out-of-order or duplicate
// segments, gap fills, FINs, and window reopenings still ACK immediately — those
// ACKs drive fast retransmit and teardown and must not wait.
//
// Simplifications relative to a production stack (documented non-goals): no TCP
// options (MSS comes from config), no SACK, no Nagle, no window scaling (64 KB
// default windows are plenty at simulated RTTs), no urgent data.

#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/memory/sgarray.h"
#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace demi {

// Wrap-safe sequence arithmetic (RFC 793 comparison semantics).
inline bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool SeqLe(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool SeqGt(std::uint32_t a, std::uint32_t b) { return SeqLt(b, a); }
inline bool SeqGe(std::uint32_t a, std::uint32_t b) { return SeqLe(b, a); }

struct TcpConfig {
  std::size_t mss = 1460;
  std::size_t send_buf_bytes = 256 * 1024;
  std::size_t recv_buf_bytes = 64 * 1024;  // also the advertised window cap (no scaling)
  std::uint32_t init_cwnd_segments = 10;   // RFC 6928
  TimeNs init_rto_ns = 3 * kMillisecond;
  TimeNs min_rto_ns = 500 * kMicrosecond;  // datacenter-tuned
  TimeNs max_rto_ns = 200 * kMillisecond;
  int max_retries = 10;
  TimeNs time_wait_ns = 5 * kMillisecond;  // shortened 2MSL for simulation
  TimeNs persist_interval_ns = 1 * kMillisecond;
  std::size_t listen_backlog = 64;
  // RFC 1122 delayed ACKs: defer pure ACKs for in-order data until
  // `ack_every_segments` segments accumulate or the delack timer fires. The timeout
  // must stay well below min_rto_ns or coalescing would push senders into RTO.
  bool delayed_ack = true;
  TimeNs delayed_ack_timeout_ns = 100 * kMicrosecond;
  int ack_every_segments = 2;
};

// Back-channel from a connection to its owning stack.
class TcpIo {
 public:
  virtual ~TcpIo() = default;
  // Transmits a finished TCP segment (header buffer + payload slices, as a chain) to
  // `dst`; the stack prepends IP/Ethernet headers, resolves ARP, and charges
  // per-segment stack cost. The payload parts ride to the device by reference.
  virtual void SendSegment(Ipv4Address dst, FrameChain segment) = 0;
  // Allocates a protocol-header buffer; stacks with a memory manager serve this from
  // the pre-registered header pool, others fall back to the heap.
  virtual Buffer AllocateHeader(std::size_t size) = 0;
  // Pushes any segments staged by SendSegment to the device immediately instead of
  // waiting for the stack's end-of-poll burst flush. Connections call this on
  // latency-critical transitions (SYN/FIN, retransmits, delayed-ack fire, window
  // updates) so batching never adds a timer's worth of latency to them. Default:
  // no-op, for stacks that transmit synchronously.
  virtual void FlushTx() {}
  virtual Simulation& sim() = 0;
  virtual HostCpu& host() = 0;
  virtual const TcpConfig& tcp_config() const = 0;
  // Notifies that `conn` reached CLOSED and may be reaped.
  virtual void OnTcpClosed(class TcpConnection* conn) = 0;
};

class TcpConnection {
 public:
  enum class State {
    kListen,  // only used by listener-embryo bookkeeping
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kClosing,
    kLastAck,
    kTimeWait,
    kClosed,
  };

  TcpConnection(TcpIo* io, Endpoint local, Endpoint remote, bool active_open,
                std::uint32_t iss);
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  bool closed() const { return state_ == State::kClosed; }
  // True once the connection can never again produce data for the application.
  bool dead() const {
    return state_ == State::kClosed || state_ == State::kTimeWait || reset_;
  }
  bool reset() const { return reset_; }
  const Endpoint& local() const { return local_; }
  const Endpoint& remote() const { return remote_; }

  // --- application send side (zero-copy: data buffers are referenced, not copied) ---

  // Queues `data` for transmission. Returns kResourceExhausted when the send buffer is
  // full (the caller retries after draining) and kConnectionReset/kNotConnected on dead
  // connections.
  Status Send(Buffer data);
  Status Send(const SgArray& sga);
  std::size_t send_buffer_space() const;
  // Bytes queued or in flight, not yet acknowledged.
  std::size_t unacked_bytes() const;

  // --- application receive side ---

  std::size_t recv_available() const { return recv_ready_bytes_; }
  // True when Recv would return data, or EOF/RST is pending.
  bool readable() const { return recv_ready_bytes_ > 0 || recv_eof_ready() || reset_; }
  // Pops up to `max_bytes` of in-order data as zero-copy slices. Empty result means
  // "nothing available"; use recv_eof()/reset() to distinguish stream end.
  Buffer Recv(std::size_t max_bytes);
  // True when the peer's FIN has been delivered and all data consumed.
  bool recv_eof() const { return fin_received_ && recv_ready_bytes_ == 0 && ooo_.empty(); }

  // --- teardown ---

  // Graceful close (FIN after queued data drains). Receiving still works (half-close).
  void Close();
  // Hard reset.
  void Abort();

  // --- driven by the stack ---

  void OnSegment(const TcpHeader& h, Buffer payload);
  void StartActiveOpen();

  // Optional edge notification for event-driven applications: fires after an event
  // leaves the connection readable, newly established, or dead — the three
  // transitions an open-loop harness with 10^6 connections cannot afford to poll
  // for. The callback may fire more than once per logical transition (receivers
  // dedup, e.g. with a per-connection "already queued" flag) and runs inside
  // segment/timer processing, so it must not reenter the stack (mark state or
  // enqueue; do the work at the next poll).
  using ReadyFn = std::function<void(TcpConnection*)>;
  void set_on_ready(ReadyFn fn) { on_ready_ = std::move(fn); }

  // Exposed for tests & stats.
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  TimeNs rto() const { return rto_; }
  std::uint64_t retransmits() const { return retransmits_; }

 private:
  bool recv_eof_ready() const { return fin_received_ && recv_ready_bytes_ == 0; }

  struct InflightSegment {
    std::uint32_t seq;
    FrameChain payload;  // empty for bare SYN/FIN; parts are refcounted slices
    std::uint8_t flags;  // SYN/FIN consume sequence space
    TimeNs sent_at;
    bool retransmitted;
  };

  // Segment length in sequence space (payload + SYN/FIN).
  static std::uint32_t SeqLen(const InflightSegment& s) {
    return static_cast<std::uint32_t>(s.payload.size()) +
           ((s.flags & (kTcpSyn | kTcpFin)) ? 1 : 0);
  }

  void OnSegmentImpl(const TcpHeader& h, Buffer payload);
  void EnterState(State s);
  void SendFlags(std::uint8_t flags);                       // pure control segment
  void EmitSegment(std::uint32_t seq, FrameChain payload, std::uint8_t flags, bool track);
  void SendAck();
  void AckNow();            // immediate ACK, clearing any deferred-ack obligation
  void DeferAck();          // delayed-ack bookkeeping for in-order data
  void CancelDelayedAck();
  void OnDelayedAckTimer();
  void TrySend();       // move bytes from the send queue into flight (cwnd/rwnd gated)
  void MaybeSendFin();  // emit FIN once the queue drains after Close()
  void ProcessAck(const TcpHeader& h, std::size_t payload_len);
  void ProcessPayload(const TcpHeader& h, Buffer payload);
  void MaybeConsumeFin();
  void DeliverInOrder();
  // RFC 6298 timer management, re-armed lazily: ACK progress only moves
  // rtx_restart_base_; the scheduled event checks the live deadline when it fires and
  // sleeps the remainder, so steady ACK streams cost zero Schedule/Cancel churn.
  void EnsureRetransmitTimer();   // arm if not armed (new data sent, timer idle)
  void RestartRetransmitTimer();  // move the deadline base to now, arming if needed
  void CancelRetransmitTimer();
  void OnRetransmitTimeout();
  void FastRetransmit();
  void UpdateRtt(TimeNs measured);
  void StartTimeWait();
  void BecomeClosed();
  std::uint16_t AdvertisedWindow() const;

  TcpIo* io_;
  Endpoint local_;
  Endpoint remote_;
  State state_;
  bool reset_ = false;

  // Send state.
  std::uint32_t iss_;
  std::uint32_t snd_una_;   // oldest unacknowledged
  std::uint32_t snd_nxt_;   // next sequence to send
  std::uint32_t snd_wnd_ = 0;  // peer's advertised window
  std::deque<Buffer> send_queue_;
  std::size_t send_queue_bytes_ = 0;
  std::deque<InflightSegment> inflight_;
  bool fin_queued_ = false;  // Close() called; FIN not yet sent
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Congestion control (Reno).
  std::uint32_t cwnd_;
  std::uint32_t ssthresh_;
  int dup_acks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint32_t recover_ = 0;

  // RTT estimation (RFC 6298).
  bool rtt_valid_ = false;
  double srtt_ns_ = 0;
  double rttvar_ns_ = 0;
  TimeNs rto_;
  int retries_ = 0;
  TimerId rtx_timer_ = kInvalidTimer;
  TimeNs rtx_restart_base_ = 0;  // deadline is base + rto_; ACKs move only the base
  TimerId persist_timer_ = kInvalidTimer;
  TimerId time_wait_timer_ = kInvalidTimer;

  // Receive state.
  std::uint32_t rcv_nxt_ = 0;
  bool fin_received_ = false;
  bool pending_fin_ = false;          // FIN seen but data before it still missing
  std::uint32_t pending_fin_seq_ = 0;
  std::map<std::uint32_t, Buffer> ooo_;  // seq -> payload, out-of-order stash
  std::deque<Buffer> recv_ready_;
  std::size_t recv_ready_bytes_ = 0;
  std::size_t ooo_bytes_ = 0;
  bool advertised_zero_window_ = false;

  // Delayed-ACK state (RFC 1122).
  bool ack_pending_ = false;     // an ACK is owed but deferred
  int unacked_segments_ = 0;     // in-order segments since the last ACK we sent
  TimerId delack_timer_ = kInvalidTimer;

  std::uint64_t retransmits_ = 0;

  ReadyFn on_ready_;
};

// A passive listener. Owned by the stack.
class TcpListener {
 public:
  TcpListener(std::uint16_t port, std::size_t backlog) : port_(port), backlog_(backlog) {}

  std::uint16_t port() const { return port_; }
  std::size_t pending() const { return accept_queue_.size(); }

  // Pops one fully established connection, or nullptr.
  TcpConnection* Accept() {
    if (accept_queue_.empty()) {
      return nullptr;
    }
    TcpConnection* c = accept_queue_.front();
    accept_queue_.pop_front();
    return c;
  }

 private:
  friend class NetStack;
  std::uint16_t port_;
  std::size_t backlog_;
  std::deque<TcpConnection*> accept_queue_;
  std::size_t embryos_ = 0;  // half-open connections counted against the backlog
};

}  // namespace demi

#endif  // SRC_NET_TCP_H_
