#include "src/net/packet.h"

#include <cstdio>

#include "src/common/logging.h"

namespace demi {

Ipv4Address Ipv4Address::Parse(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4 || a > 255 ||
      b > 255 || c > 255 || d > 255) {
    return Ipv4Address{};
  }
  return FromOctets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                    static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", addr >> 24 & 0xFF, addr >> 16 & 0xFF,
                addr >> 8 & 0xFF, addr & 0xFF);
  return buf;
}

void WriteIpv4Header(std::span<std::byte> out, const Ipv4Header& h) {
  DEMI_CHECK(out.size() >= kIpv4HeaderSize);
  ByteWriter w(out);
  w.U8(0x45);  // version 4, IHL 5
  w.U8(0);     // DSCP/ECN
  w.U16(h.total_length);
  w.U16(0);  // identification
  w.U16(0x4000);  // DF, no fragmentation (we never fragment)
  w.U8(h.ttl);
  w.U8(h.protocol);
  w.U16(0);  // checksum placeholder
  w.U32(h.src.addr);
  w.U32(h.dst.addr);
  const std::uint16_t csum = InternetChecksum(out.first(kIpv4HeaderSize));
  out[10] = std::byte{static_cast<std::uint8_t>(csum >> 8)};
  out[11] = std::byte{static_cast<std::uint8_t>(csum & 0xFF)};
}

std::optional<Ipv4Header> ParseIpv4Header(std::span<const std::byte> in) {
  if (in.size() < kIpv4HeaderSize) {
    return std::nullopt;
  }
  if (InternetChecksum(in.first(kIpv4HeaderSize)) != 0) {
    return std::nullopt;  // corrupted header
  }
  ByteReader r(in);
  const std::uint8_t ver_ihl = r.U8();
  if (ver_ihl != 0x45) {
    return std::nullopt;  // we only produce/consume option-less IPv4
  }
  r.Skip(1);
  Ipv4Header h;
  h.total_length = r.U16();
  r.Skip(4);  // id, frag
  h.ttl = r.U8();
  h.protocol = r.U8();
  r.Skip(2);  // checksum (verified above)
  h.src.addr = r.U32();
  h.dst.addr = r.U32();
  if (h.total_length < kIpv4HeaderSize || h.total_length > in.size()) {
    return std::nullopt;
  }
  return h;
}

void WriteUdpHeader(std::span<std::byte> out, const UdpHeader& h) {
  DEMI_CHECK(out.size() >= kUdpHeaderSize);
  ByteWriter w(out);
  w.U16(h.src_port);
  w.U16(h.dst_port);
  w.U16(h.length);
  w.U16(0);  // checksum optional in IPv4; we rely on the NIC's checksum offload
}

std::optional<UdpHeader> ParseUdpHeader(std::span<const std::byte> in) {
  if (in.size() < kUdpHeaderSize) {
    return std::nullopt;
  }
  ByteReader r(in);
  UdpHeader h;
  h.src_port = r.U16();
  h.dst_port = r.U16();
  h.length = r.U16();
  if (h.length < kUdpHeaderSize || h.length > in.size()) {
    return std::nullopt;
  }
  return h;
}

namespace {

std::uint32_t TcpPseudoHeaderSum(Ipv4Address src, Ipv4Address dst, std::size_t tcp_len) {
  std::uint32_t acc = 0;
  acc += src.addr >> 16;
  acc += src.addr & 0xFFFF;
  acc += dst.addr >> 16;
  acc += dst.addr & 0xFFFF;
  acc += kIpProtoTcp;
  acc += static_cast<std::uint32_t>(tcp_len);
  return acc;
}

}  // namespace

void WriteTcpHeader(std::span<std::byte> out, const TcpHeader& h, Ipv4Address src,
                    Ipv4Address dst, std::span<const std::byte> payload) {
  DEMI_CHECK(out.size() >= kTcpHeaderSize);
  ByteWriter w(out);
  w.U16(h.src_port);
  w.U16(h.dst_port);
  w.U32(h.seq);
  w.U32(h.ack);
  w.U8(5 << 4);  // data offset 5 words, no options
  w.U8(h.flags);
  w.U16(h.window);
  w.U16(0);  // checksum placeholder
  w.U16(0);  // urgent pointer
  std::uint32_t acc = TcpPseudoHeaderSum(src, dst, kTcpHeaderSize + payload.size());
  acc = ChecksumPartial(out.first(kTcpHeaderSize), acc);
  acc = ChecksumPartial(payload, acc);
  const std::uint16_t csum = FoldChecksum(acc);
  out[16] = std::byte{static_cast<std::uint8_t>(csum >> 8)};
  out[17] = std::byte{static_cast<std::uint8_t>(csum & 0xFF)};
}

void WriteTcpHeaderSg(std::span<std::byte> out, const TcpHeader& h, Ipv4Address src,
                      Ipv4Address dst, std::span<const Buffer> payload_parts) {
  DEMI_CHECK(out.size() >= kTcpHeaderSize);
  ByteWriter w(out);
  w.U16(h.src_port);
  w.U16(h.dst_port);
  w.U32(h.seq);
  w.U32(h.ack);
  w.U8(5 << 4);  // data offset 5 words, no options
  w.U8(h.flags);
  w.U16(h.window);
  w.U16(0);  // checksum placeholder
  w.U16(0);  // urgent pointer
  std::size_t payload_size = 0;
  for (const Buffer& p : payload_parts) {
    payload_size += p.size();
  }
  ChecksumAccumulator acc(TcpPseudoHeaderSum(src, dst, kTcpHeaderSize + payload_size));
  acc.Add(out.first(kTcpHeaderSize));
  for (const Buffer& p : payload_parts) {
    acc.Add(p.span());
  }
  const std::uint16_t csum = acc.Fold();
  out[16] = std::byte{static_cast<std::uint8_t>(csum >> 8)};
  out[17] = std::byte{static_cast<std::uint8_t>(csum & 0xFF)};
}

std::optional<TcpHeader> ParseTcpHeader(std::span<const std::byte> in) {
  if (in.size() < kTcpHeaderSize) {
    return std::nullopt;
  }
  ByteReader r(in);
  TcpHeader h;
  h.src_port = r.U16();
  h.dst_port = r.U16();
  h.seq = r.U32();
  h.ack = r.U32();
  const std::uint8_t offset = r.U8() >> 4;
  if (offset != 5) {
    return std::nullopt;  // options unsupported by this stack
  }
  h.flags = r.U8();
  h.window = r.U16();
  return h;
}

bool VerifyTcpChecksum(std::span<const std::byte> segment, Ipv4Address src,
                       Ipv4Address dst) {
  std::uint32_t acc = TcpPseudoHeaderSum(src, dst, segment.size());
  acc = ChecksumPartial(segment, acc);
  return FoldChecksum(acc) == 0;
}

void WriteArpPacket(std::span<std::byte> out, const ArpPacket& p) {
  DEMI_CHECK(out.size() >= kArpPacketSize);
  ByteWriter w(out);
  w.U16(1);       // HTYPE ethernet
  w.U16(kEtherTypeIpv4);
  w.U8(6);        // HLEN
  w.U8(4);        // PLEN
  w.U16(p.is_request ? 1 : 2);
  for (std::uint8_t b : p.sender_mac.bytes) {
    w.U8(b);
  }
  w.U32(p.sender_ip.addr);
  for (std::uint8_t b : p.target_mac.bytes) {
    w.U8(b);
  }
  w.U32(p.target_ip.addr);
}

std::optional<ArpPacket> ParseArpPacket(std::span<const std::byte> in) {
  if (in.size() < kArpPacketSize) {
    return std::nullopt;
  }
  ByteReader r(in);
  if (r.U16() != 1 || r.U16() != kEtherTypeIpv4 || r.U8() != 6 || r.U8() != 4) {
    return std::nullopt;
  }
  const std::uint16_t oper = r.U16();
  if (oper != 1 && oper != 2) {
    return std::nullopt;
  }
  ArpPacket p;
  p.is_request = oper == 1;
  for (auto& b : p.sender_mac.bytes) {
    b = r.U8();
  }
  p.sender_ip.addr = r.U32();
  for (auto& b : p.target_mac.bytes) {
    b = r.U8();
  }
  p.target_ip.addr = r.U32();
  return p;
}

Buffer BuildIpv4Frame(MacAddress src_mac, MacAddress dst_mac, const Ipv4Header& ip,
                      std::span<const Buffer> l4_parts) {
  std::size_t l4_size = 0;
  for (const Buffer& b : l4_parts) {
    l4_size += b.size();
  }
  Buffer frame = Buffer::Allocate(kEthHeaderSize + kIpv4HeaderSize + l4_size);
  WriteEthHeader(frame.mutable_span(), EthHeader{dst_mac, src_mac, kEtherTypeIpv4});
  Ipv4Header ip_full = ip;
  ip_full.total_length = static_cast<std::uint16_t>(kIpv4HeaderSize + l4_size);
  WriteIpv4Header(frame.mutable_span().subspan(kEthHeaderSize), ip_full);
  std::size_t at = kEthHeaderSize + kIpv4HeaderSize;
  for (const Buffer& b : l4_parts) {
    if (!b.empty()) {
      std::memcpy(frame.mutable_data() + at, b.data(), b.size());
      at += b.size();
    }
  }
  return frame;
}

void WriteEthIpv4Headers(std::span<std::byte> hdr, MacAddress src_mac, MacAddress dst_mac,
                         const Ipv4Header& ip, std::size_t l4_size) {
  DEMI_CHECK(hdr.size() >= kEthHeaderSize + kIpv4HeaderSize);
  WriteEthHeader(hdr, EthHeader{dst_mac, src_mac, kEtherTypeIpv4});
  Ipv4Header ip_full = ip;
  ip_full.total_length = static_cast<std::uint16_t>(kIpv4HeaderSize + l4_size);
  WriteIpv4Header(hdr.subspan(kEthHeaderSize), ip_full);
}

Buffer BuildArpFrame(MacAddress src_mac, MacAddress dst_mac, const ArpPacket& arp) {
  Buffer frame = Buffer::Allocate(kEthHeaderSize + kArpPacketSize);
  WriteEthHeader(frame.mutable_span(), EthHeader{dst_mac, src_mac, kEtherTypeArp});
  WriteArpPacket(frame.mutable_span().subspan(kEthHeaderSize), arp);
  return frame;
}

}  // namespace demi
