// HostileTenant: an adversarial co-tenant load generator for the multi-tenant
// chaos suite (DESIGN.md "Tenant isolation model").
//
// The driver models a tenant that got a legitimate queue lease on a shared
// kernel-bypass NIC and then misbehaves: it rings doorbells at an unthrottled
// configured rate, posts maximal descriptor bursts per doorbell, and (optionally)
// references memory it never registered — the bogus fraction — trying to DMA out
// of other tenants' buffers. Traffic is raw Ethernet frames aimed at a sink MAC,
// so it saturates the shared TX DMA engine without ever touching a victim stack.
//
// With isolation on, the device should contain all of it: bogus frames complete
// with kCapabilityViolation, the token buckets clip the doorbell/descriptor rate,
// and DWRR confines the flood to the hostile tenant's weight. With isolation off,
// the same driver drags every co-tenant's tail latency down with it — the
// contrast the chaos suite asserts.
//
// Doorbell ticks self-reschedule at ABSOLUTE times (same open-loop discipline as
// the arrival timers in open_loop_runner.h): a throttled device never slows the
// attack down. Attack windows can be scripted through the fault injector
// (kHostileBurst / kHostileQuiet), so they share the seeded virtual-time ordering
// of every other fault.
//
// CPU accounting caveat: doorbell MMIO cost is charged to the NIC's host — the
// shared machine — in both arms of an on/off comparison, so it cancels out.

#ifndef SRC_LOAD_HOSTILE_TENANT_H_
#define SRC_LOAD_HOSTILE_TENANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/random.h"
#include "src/hw/mac.h"
#include "src/hw/nic.h"
#include "src/hw/tenant.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulation.h"

namespace demi {

struct HostileTenantConfig {
  double doorbell_rate_per_sec = 500'000.0;  // attack doorbell rate (attempted)
  std::size_t burst_frames = 32;             // descriptors posted per doorbell
  std::size_t frame_bytes = 1500;            // >= kEthHeaderSize
  // Fraction of posted frames that reference memory the tenant never registered.
  // Under isolation these must complete as capability violations, not DMA.
  double bogus_fraction = 0.0;
  std::uint64_t seed = 0xbad7e4a47;  // draws the bogus/legit coin flips
};

class HostileTenant {
 public:
  struct Stats {
    std::uint64_t doorbells_attempted = 0;
    std::uint64_t frames_offered = 0;   // frames handed to TransmitBurst
    std::uint64_t frames_accepted = 0;  // consumed by the device ring
    std::uint64_t bogus_offered = 0;    // of frames_offered, how many were bogus
    std::uint64_t empty_doorbells = 0;  // bursts accepted 0 (ring full / throttled)
  };

  // `registry` may be null (no tenancy; pure flood). When set, the constructor
  // registers the driver's legitimate blob into `tenant`'s capability set — a
  // hostile tenant still registers its own memory through the front door; only
  // the bogus blob stays unregistered.
  HostileTenant(Simulation* sim, SimNic* nic, int queue, TenantId tenant,
                TenantRegistry* registry, MacAddress dst, HostileTenantConfig cfg);

  void Start();
  void Stop();
  bool running() const { return running_; }

  // Subscribes to scripted attack windows: kHostileBurst -> Start(),
  // kHostileQuiet -> Stop(). Returns the injector device id for scheduling.
  FaultDeviceId AttachFaultInjector(FaultInjector* faults, std::string name);

  const Stats& stats() const { return stats_; }
  const HostileTenantConfig& config() const { return cfg_; }

 private:
  void Arm(TimeNs due);
  void Tick();

  Simulation* sim_;
  SimNic* nic_;
  int queue_;
  TenantId tenant_;
  HostileTenantConfig cfg_;
  TimeNs period_ns_;
  Buffer granted_blob_;  // registered with the tenant (legal descriptors)
  Buffer bogus_blob_;    // never registered (capability violations)
  Rng rng_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  // invalidates in-flight tick timers on Stop/Start
  std::vector<FrameChain> burst_;
  Stats stats_;
};

}  // namespace demi

#endif  // SRC_LOAD_HOSTILE_TENANT_H_
