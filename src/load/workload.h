// Request/response workload models for the open-loop harness.
//
// Both workloads share one wire protocol so the server stays a lean byte-stream
// machine with no per-workload parsing: every request is exactly `request_bytes`
// long and its first 4 bytes carry the expected response length (little-endian).
// The server consumes fixed-size requests off the TCP stream and answers each with
// that many bytes sliced from one shared pre-built blob — zero per-request
// allocation on either side.
//
//   - Echo: response length == request length. The SLO baseline.
//   - KV: the client samples a key from a Zipfian popularity distribution (hot keys
//     dominate, as in production caches) and the response length is the key's value
//     size — a deterministic hash of the key into a small set of size classes. Skew
//     therefore shows up on the wire as a skewed response-size mix.
//
// Request payloads are pre-built per distinct response length (one for echo, one
// per size class for KV) and shared by reference: issuing a request is a refcount
// bump, never an allocation or copy.

#ifndef SRC_LOAD_WORKLOAD_H_
#define SRC_LOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/random.h"

namespace demi {

enum class WorkloadKind { kEcho, kKv };

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kEcho;
  std::size_t request_bytes = 64;  // fixed request size; must be >= kHeaderBytes
  // KV knobs.
  std::uint64_t kv_keys = 1 << 16;
  double zipf_theta = 0.99;  // YCSB default skew
};

class WorkloadModel {
 public:
  static constexpr std::size_t kHeaderBytes = 4;
  // Largest value size class; also the size of the server's shared response blob.
  static constexpr std::uint32_t kMaxResponseBytes = 4096;

  explicit WorkloadModel(WorkloadConfig cfg);

  std::size_t request_bytes() const { return cfg_.request_bytes; }
  const WorkloadConfig& config() const { return cfg_; }

  // One request: a shared pre-built payload and the response size it asks for.
  struct Request {
    Buffer payload;
    std::uint32_t response_bytes = 0;
  };
  Request Sample(Rng& rng);

  // KV internals, exposed for distribution tests.
  std::uint64_t SampleKey(Rng& rng) { return zipf_.Next(rng); }
  static std::uint32_t ValueBytes(std::uint64_t key);

  // Server side: response length from a request's first 4 bytes, clamped to the
  // blob size so a corrupted header cannot ask for unbounded data.
  static std::uint32_t DecodeResponseBytes(const std::uint8_t header[kHeaderBytes]);

 private:
  Buffer BuildRequest(std::uint32_t response_bytes) const;

  WorkloadConfig cfg_;
  ZipfGenerator zipf_;
  Buffer echo_request_;
  std::vector<Buffer> kv_requests_;  // one per value size class
};

}  // namespace demi

#endif  // SRC_LOAD_WORKLOAD_H_
