#include "src/load/arrival.h"

#include <algorithm>

#include "src/common/logging.h"

namespace demi {

ArrivalProcess::ArrivalProcess(ArrivalConfig cfg, std::size_t connections)
    : cfg_(cfg), connections_(std::max<std::size_t>(connections, 1)) {
  DEMI_CHECK(cfg_.mmpp_burst_factor >= 1.0);
  DEMI_CHECK(cfg_.mmpp_on_mean_ns > 0 && cfg_.mmpp_off_mean_ns > 0);
}

void ArrivalProcess::SetRate(double offered_rps) {
  DEMI_CHECK(offered_rps >= 0);
  offered_rps_ = offered_rps;
  on_phase_ = false;
}

double ArrivalProcess::current_rps() const {
  if (!bursty()) {
    return offered_rps_;
  }
  // Normalize the two phase rates so the dwell-weighted average equals the offered
  // load:  (off_mean * quiet + on_mean * burst_factor * quiet) / (off_mean + on_mean)
  // == offered  =>  quiet = offered * (off_mean + on_mean) / (off_mean + bf * on_mean).
  const double on = static_cast<double>(cfg_.mmpp_on_mean_ns);
  const double off = static_cast<double>(cfg_.mmpp_off_mean_ns);
  const double quiet = offered_rps_ * (off + on) / (off + cfg_.mmpp_burst_factor * on);
  return on_phase_ ? quiet * cfg_.mmpp_burst_factor : quiet;
}

TimeNs ArrivalProcess::NextGapNs(Rng& rng) const {
  const double rps = current_rps();
  if (rps <= 0) {
    return kNever;
  }
  const double mean_gap_ns = 1e9 * static_cast<double>(connections_) / rps;
  const double gap = rng.NextExponential(mean_gap_ns);
  // Clamp into the representable range; a sub-ns draw still schedules "now-ish".
  return static_cast<TimeNs>(std::min(gap, 9.0e18));
}

TimeNs ArrivalProcess::NextDwellNs(Rng& rng) const {
  const TimeNs mean = on_phase_ ? cfg_.mmpp_on_mean_ns : cfg_.mmpp_off_mean_ns;
  const double dwell = rng.NextExponential(static_cast<double>(mean));
  return std::max<TimeNs>(static_cast<TimeNs>(std::min(dwell, 9.0e18)), 1);
}

}  // namespace demi
