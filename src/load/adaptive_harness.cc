#include "src/load/adaptive_harness.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace demi {

namespace {

constexpr std::uint16_t kFlowPort = 7;   // recovery Catnip echo (fast + fallback)
constexpr std::uint16_t kChurnPort = 9;  // Catnap echo (kernel path only)

SgArray Message(LibOS& libos, std::size_t bytes) {
  SgArray sga = libos.SgaAlloc(bytes);
  std::memset(sga.segment(0).mutable_data(), 'a', bytes);
  return sga;
}

}  // namespace

AdaptiveEchoHarness::AdaptiveEchoHarness(AdaptiveHarnessConfig cfg) : cfg_(cfg) {
  FabricConfig fabric;
  fabric.seed = cfg_.seed;
  h_ = std::make_unique<TestHarness>(CostModel{}, fabric);

  HostOptions sopts;
  sopts.with_kernel_nic = true;
  server_host_ = &h_->AddHost("server", "10.0.0.1", sopts);
  HostOptions copts = sopts;
  copts.charges_clock = false;
  client_host_ = &h_->AddHost("client", "10.0.0.2", copts);

  if (cfg_.fastcall) {
    server_host_->kernel->SetFastcallEnabled(true);
    client_host_->kernel->SetFastcallEnabled(true);
  }

  // Server: recovery-enabled so demoted clients can land on the kernel listener.
  server_libos_ = &h_->Catnip(*server_host_, RecoveryConfig{});

  CatnipConfig ccfg;
  ccfg.tcp = client_host_->options.tcp;
  ccfg.seed = cfg_.seed + 17;
  ccfg.recovery.enabled = true;
  ccfg.recovery.fallback_remote = Endpoint{server_host_->kernel_ip, kFlowPort};
  ccfg.recovery.has_fallback_remote = true;
  if (cfg_.adaptive) {
    ccfg.adaptive = cfg_.policy;
    ccfg.adaptive.enabled = true;
  }
  if (cfg_.max_flow_slots > 0) {
    TenantQosConfig tenant;
    tenant.name = "adaptive";
    tenant.max_flow_slots = cfg_.max_flow_slots;
    ccfg.tenant = tenant;
  }
  client_libos_ = &h_->Catnip(*client_host_, std::move(ccfg));

  churn_server_libos_ = &h_->Catnap(*server_host_);
  churn_client_libos_ = &h_->Catnap(*client_host_);

  echo_server_ = std::make_unique<DemiEchoServer>(server_libos_, kFlowPort);
  churn_echo_server_ = std::make_unique<DemiEchoServer>(churn_server_libos_, kChurnPort);

  // Flows arrive staggered by a seed-derived jitter, like real clients. This is also
  // what couples the seed to the timeline: a different seed shifts every connect, so
  // the run digest genuinely distinguishes seeds (SameSeedIsBitDeterministic).
  Rng stagger(cfg_.seed * 0x9E3779B97F4A7C15ULL + 0x5eed);
  flows_.resize(cfg_.hot_flows + cfg_.cold_flows);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& flow = flows_[i];
    flow.hot = i < cfg_.hot_flows;
    flow.period = flow.hot ? cfg_.hot_period_ns : cfg_.cold_period_ns;
    flow.qd = *client_libos_->Socket();
    const TimeNs offset = static_cast<TimeNs>(stagger.NextBelow(5 * kMicrosecond));
    h_->sim().Schedule(offset, [this, i] {
      Flow& f = flows_[i];
      f.connect =
          *client_libos_->ConnectAsync(f.qd, Endpoint{server_host_->ip, kFlowPort});
    });
  }

  h_->sim().AddPoller(this);

  if (cfg_.cold_hot_flip_ns > 0) {
    h_->sim().ScheduleAt(cfg_.cold_hot_flip_ns, [this] {
      for (Flow& flow : flows_) {
        if (!flow.hot) {
          flow.period = cfg_.hot_period_ns;
        }
      }
    });
  }
  if (cfg_.churn_waves > 0) {
    h_->sim().Schedule(cfg_.churn_period_ns, [this] { SpawnChurnWave(); });
  }
}

AdaptiveEchoHarness::~AdaptiveEchoHarness() { h_->sim().RemovePoller(this); }

void AdaptiveEchoHarness::ArmFlowTimer(std::size_t i) {
  h_->sim().Schedule(flows_[i].period, [this, i] {
    if (stopping_) {
      return;
    }
    flows_[i].due = true;
    SendIfReady(i);
    ArmFlowTimer(i);
  });
}

void AdaptiveEchoHarness::SendIfReady(std::size_t i) {
  Flow& flow = flows_[i];
  if (!flow.connected || !flow.due || flow.push != kInvalidQToken ||
      flow.pop != kInvalidQToken) {
    return;
  }
  flow.due = false;
  flow.sent_at = h_->sim().now();
  auto push = client_libos_->Push(flow.qd, Message(*client_libos_, cfg_.msg_bytes));
  if (!push.ok()) {
    return;  // transient (e.g. replay log full mid-switch): the next tick retries
  }
  flow.push = *push;
  if (auto pop = client_libos_->Pop(flow.qd); pop.ok()) {
    flow.pop = *pop;
  }
}

void AdaptiveEchoHarness::SpawnChurnWave() {
  if (stopping_ || churn_waves_spawned_ >= cfg_.churn_waves) {
    return;
  }
  ++churn_waves_spawned_;
  for (std::size_t i = 0; i < cfg_.churn_wave_size; ++i) {
    ChurnConn conn;
    auto qd = churn_client_libos_->Socket();
    if (!qd.ok()) {
      continue;
    }
    conn.qd = *qd;
    auto token = churn_client_libos_->ConnectAsync(
        conn.qd, Endpoint{server_host_->kernel_ip, kChurnPort});
    if (!token.ok()) {
      (void)churn_client_libos_->Close(conn.qd);
      continue;
    }
    conn.token = *token;
    churn_.push_back(conn);
  }
  if (churn_waves_spawned_ < cfg_.churn_waves) {
    h_->sim().Schedule(cfg_.churn_period_ns, [this] { SpawnChurnWave(); });
  }
}

bool AdaptiveEchoHarness::Poll() {
  bool progress = false;

  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& flow = flows_[i];
    if (flow.connect != kInvalidQToken && client_libos_->OpDone(flow.connect)) {
      auto r = client_libos_->TakeResult(flow.connect);
      flow.connect = kInvalidQToken;
      DEMI_CHECK(r.ok() && r->status.ok());
      flow.connected = true;
      flow.due = true;  // first request goes out immediately; the timer paces the rest
      SendIfReady(i);
      ArmFlowTimer(i);
      progress = true;
    }
    if (flow.push != kInvalidQToken && client_libos_->OpDone(flow.push)) {
      (void)client_libos_->TakeResult(flow.push);
      flow.push = kInvalidQToken;
      progress = true;
    }
    if (flow.push == kInvalidQToken && flow.pop != kInvalidQToken &&
        client_libos_->OpDone(flow.pop)) {
      auto r = client_libos_->TakeResult(flow.pop);
      flow.pop = kInvalidQToken;
      progress = true;
      if (r.ok() && r->status.ok()) {
        const std::uint64_t latency =
            static_cast<std::uint64_t>(h_->sim().now() - flow.sent_at);
        (flow.hot ? hot_latency_ : cold_latency_).Record(latency);
        ++flow.completed;
        Mix(i);
        Mix(latency);
        Mix(static_cast<std::uint64_t>(h_->sim().now()));
      }
      SendIfReady(i);  // a tick may have come due while the round was in flight
    }
  }

  for (ChurnConn& conn : churn_) {
    if (conn.token == kInvalidQToken || !churn_client_libos_->OpDone(conn.token)) {
      continue;
    }
    auto r = churn_client_libos_->TakeResult(conn.token);
    conn.token = kInvalidQToken;
    progress = true;
    if (!r.ok() || !r->status.ok()) {
      (void)churn_client_libos_->Close(conn.qd);
      conn.qd = kInvalidQDesc;
      continue;
    }
    if (conn.stage == 0) {  // connected: send the one request
      if (auto push = churn_client_libos_->Push(conn.qd, Message(*churn_client_libos_,
                                                                 cfg_.msg_bytes));
          push.ok()) {
        conn.token = *push;
        conn.stage = 1;
      }
    } else if (conn.stage == 1) {  // pushed: await the echo
      if (auto pop = churn_client_libos_->Pop(conn.qd); pop.ok()) {
        conn.token = *pop;
        conn.stage = 2;
      }
    } else {  // echoed: one round trip done, hang up
      (void)churn_client_libos_->Close(conn.qd);
      conn.qd = kInvalidQDesc;
      ++churn_completed_;
      Mix(0x4348u);  // 'CH'
      Mix(static_cast<std::uint64_t>(h_->sim().now()));
    }
  }
  while (!churn_.empty() && churn_.front().qd == kInvalidQDesc) {
    churn_.erase(churn_.begin());
  }
  return progress;
}

AdaptiveScenarioResult AdaptiveEchoHarness::Run() {
  Simulation& sim = h_->sim();
  sim.RunFor(cfg_.run_ns);
  stopping_ = true;  // timers stop re-arming; drain what is still in flight
  const bool drained = sim.RunUntil(
      [this] {
        for (const Flow& flow : flows_) {
          if (flow.push != kInvalidQToken || flow.pop != kInvalidQToken) {
            return false;
          }
        }
        return churn_.empty();
      },
      sim.now() + 10 * kSecond);
  DEMI_CHECK(drained);

  // Snapshot the tenant pool BEFORE closing the flows: the point of the scenario is
  // what capacity the policy freed while flows were still open.
  AdaptiveScenarioResult out;
  if (client_libos_->tenant() != kNoTenant) {
    const TenantStats& stats =
        client_host_->kernel->tenant_registry()->stats(client_libos_->tenant());
    out.live_flow_slots = stats.live_flow_slots;
    out.flow_slots_released = stats.flow_slots_released;
    out.flow_slots_denied = stats.flow_slots_denied;
  }
  for (Flow& flow : flows_) {
    (void)client_libos_->Close(flow.qd);
  }
  sim.RunFor(1 * kMillisecond);  // let closes and server-side teardown settle

  out.hot_p50_ns = hot_latency_.P50();
  out.hot_p99_ns = hot_latency_.P99();
  out.cold_p50_ns = cold_latency_.P50();
  out.cold_p99_ns = cold_latency_.P99();
  for (const Flow& flow : flows_) {
    (flow.hot ? out.hot_completed : out.cold_completed) += flow.completed;
  }
  out.churn_completed = churn_completed_;
  out.churn_conns_per_sec =
      static_cast<double>(churn_completed_) * 1e9 / static_cast<double>(cfg_.run_ns);
  auto& counters = sim.counters();
  out.promotions = counters.Get(Counter::kPromotions);
  out.demotions = counters.Get(Counter::kDemotions);
  out.fastcall_crossings = counters.Get(Counter::kFastcallCrossings);
  out.syscalls = counters.Get(Counter::kSyscalls);
  out.accepts_batched = counters.Get(Counter::kAcceptsBatched);
  Mix(out.promotions);
  Mix(out.demotions);
  Mix(out.fastcall_crossings);
  Mix(out.syscalls);
  Mix(out.hot_completed);
  Mix(out.cold_completed);
  Mix(out.churn_completed);
  out.digest = digest_;
  return out;
}

}  // namespace demi
