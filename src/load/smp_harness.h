// Open-loop load harness for the RSS-sharded multi-core worker pool (DESIGN.md §13).
//
// Topology (one Simulation, one fabric):
//   - one server host: a multi-queue bypass NIC shared by a WorkerPool of N
//     kernel-less Catnip workers, worker w on sim core w+1 driving NIC queue w;
//   - `client_stacks` load-generator hosts on core 0, marked charges_clock=false so
//     generator CPU can never throttle offered load or perturb worker timing.
//
// The wire protocol is the open-loop harness protocol (src/load/workload.h) carried
// over Demikernel framing: each request is one framed element whose first 4 payload
// bytes name the response length; each response is one framed element of that
// length. Latency is measured from the *intended* send time (the arrival-timer
// schedule), never from socket entry — the coordinated-omission-free discipline of
// OpenLoopRunner.
//
// Shard-skew model: every connection's RSS queue — hence its worker shard — is
// computed up front with SimNic::RssForTuple from its 4-tuple. With shard_skew s >
// 0, per-connection arrival rates are weighted 1/(shard+1)^s, concentrating load on
// shard 0's connections while the aggregate offered rate stays fixed. That is the
// imbalance completion stealing exists to absorb: steal off, the hot shard's tail
// collapses; steal on, idle shards execute its ready completions.

#ifndef SRC_LOAD_SMP_HARNESS_H_
#define SRC_LOAD_SMP_HARNESS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/smp.h"
#include "src/hw/fabric.h"
#include "src/hw/nic.h"
#include "src/load/open_loop_runner.h"  // SweepPoint
#include "src/load/workload.h"
#include "src/net/framing.h"
#include "src/net/stack.h"
#include "src/sim/simulation.h"

namespace demi {

struct SmpHarnessConfig {
  int workers = 4;
  std::size_t connections = 256;
  std::size_t client_stacks = 8;
  WorkloadConfig workload;  // echo or KV; defines request/response sizes
  TcpConfig tcp;            // both sides; listen_backlog raised to >= 4096
  // Per-request service time charged on the executing worker core.
  TimeNs server_request_cpu_ns = 500;
  // Completion stealing knobs, passed through to SmpConfig.
  bool steal = true;
  std::size_t steal_threshold = 4;
  std::size_t steal_batch = 8;
  std::size_t consume_batch = 16;
  // Zipf-ish exponent over shard index: connection weight 1/(shard+1)^skew.
  // 0 = uniform offered load across shards.
  double shard_skew = 0.0;
  std::size_t ramp_batch = 1024;  // connections opened per ramp wave
  std::uint64_t seed = 1;
  SchedulerKind scheduler = kDefaultSchedulerKind;
};

class SmpHarness final {
 public:
  explicit SmpHarness(SmpHarnessConfig cfg);
  ~SmpHarness();
  SmpHarness(const SmpHarness&) = delete;
  SmpHarness& operator=(const SmpHarness&) = delete;

  Simulation& sim() { return sim_; }
  WorkerPool& pool() { return *pool_; }
  SimNic& server_nic() { return *server_nic_; }
  const SmpHarnessConfig& config() const { return cfg_; }

  // Opens all connections in paced waves; true once every one is established on
  // the client side AND accepted by its worker shard.
  bool Ramp(TimeNs deadline = 120 * kSecond);

  // One measured point: retarget the aggregate rate (shard-skew weighted), warm
  // up, measure. Latencies land in histogram "smp/<label>/<rate>rps/latency_ns".
  SweepPoint RunPoint(double offered_rps, TimeNs warmup, TimeNs measure,
                      const std::string& label = "run");

  void StopLoad();

  std::size_t established_connections() const { return established_; }
  std::uint64_t issued_total() const { return issued_total_; }
  std::uint64_t completed_total() const { return completed_total_; }
  // Connections whose flows hash to `shard` (set during Ramp).
  std::size_t shard_connections(int shard) const;

 private:
  struct Pending {
    TimeNs intended;
    std::uint32_t resp_bytes;
  };
  struct LoadConn {
    TcpConnection* tcp = nullptr;
    std::uint16_t stack = 0;
    int shard = 0;
    bool established = false;
    bool dead = false;
    double rate_rps = 0;  // this connection's share of the offered load
    TimerId arrival = kInvalidTimer;
    std::deque<Pending> pending;  // outstanding requests, oldest first
    std::deque<Buffer> backlog;   // wire parts the send buffer rejected
    FrameDecoder decoder;         // reassembles framed responses
  };

  void OpenConnection(std::size_t i);
  void OnClientReady(std::size_t i);
  void DrainClient(std::size_t i);
  void FlushClientBacklog(std::size_t i);
  void IssueRequest(std::size_t i, TimeNs intended);
  void ArmArrival(std::size_t i, TimeNs due);
  void AssignRates(double offered_rps);
  void CancelTimer(TimerId& id);

  SmpHarnessConfig cfg_;
  Simulation sim_;
  Fabric fabric_;
  WorkloadModel workload_;
  Rng rng_;
  Ipv4Address server_ip_;

  std::vector<LoadConn> conns_;
  std::vector<std::size_t> shard_conns_;  // connection count per shard
  bool point_active_ = false;
  bool measuring_ = false;
  Histogram* hist_ = nullptr;
  std::size_t established_ = 0;
  std::uint64_t dead_conns_ = 0;
  std::uint64_t issued_total_ = 0;
  std::uint64_t issued_window_ = 0;
  std::uint64_t completed_total_ = 0;
  std::uint64_t completed_window_ = 0;

  // Hardware/stacks last: destroyed first, while the state above is alive.
  std::unique_ptr<HostCpu> server_host_;  // charges the clock: NIC driver work
  std::unique_ptr<SimNic> server_nic_;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<std::unique_ptr<HostCpu>> client_hosts_;
  std::vector<std::unique_ptr<SimNic>> client_nics_;
  std::vector<std::unique_ptr<NetStack>> client_stacks_;
};

}  // namespace demi

#endif  // SRC_LOAD_SMP_HARNESS_H_
