#include "src/load/open_loop_runner.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"

namespace demi {

namespace {

constexpr std::uint16_t kServerBasePort = 5000;
// Reap dead connections once this many have piled up on a stack. ReapClosed is
// O(live), so at 10^6 connections reaping every handful of deaths would be
// quadratic; this threshold amortizes the sweep.
constexpr std::size_t kReapThreshold = 65'536;

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t x = seed ^ (salt * 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Status OpenLoopRunner::ValidateConfig(const OpenLoopConfig& cfg) {
  if (cfg.connections == 0) {
    return InvalidArgument("open-loop config: connections must be > 0");
  }
  if (cfg.client_stacks == 0 || cfg.server_ports == 0) {
    return InvalidArgument(
        "open-loop config: client_stacks and server_ports must be > 0");
  }
  // Each (client stack, server port) pair supports one ephemeral partition of
  // connections thanks to per-4-tuple port reuse.
  const std::size_t capacity =
      cfg.client_stacks * cfg.server_ports * kEphemeralPartition;
  if (cfg.connections > capacity) {
    char msg[192];
    std::snprintf(msg, sizeof(msg),
                  "open-loop config: %zu connections exceed 4-tuple capacity %zu "
                  "(%zu client stacks x %zu server ports x %zu ephemeral ports)",
                  cfg.connections, capacity, cfg.client_stacks, cfg.server_ports,
                  kEphemeralPartition);
    return InvalidArgument(msg);
  }
  if (cfg.tenant.enabled && cfg.tenant.victim.weight == 0) {
    return InvalidArgument("open-loop config: victim tenant weight must be > 0");
  }
  return OkStatus();
}

OpenLoopRunner::OpenLoopRunner(OpenLoopConfig cfg)
    : cfg_(cfg),
      sim_(CostModel{}, cfg.scheduler),
      fabric_(&sim_, cfg.fabric),
      workload_(cfg.workload),
      arrival_(cfg.arrival, cfg.connections),
      rng_(MixSeed(cfg.seed, 0x10adul)) {
  if (const Status valid = ValidateConfig(cfg_); !valid.ok()) {
    PanicImpl(__FILE__, __LINE__, valid.message());
  }

  server_ip_ = Ipv4Address::FromOctets(10, 0, 0, 1);
  response_blob_ = Buffer::Allocate(WorkloadModel::kMaxResponseBytes);
  std::memset(response_blob_.mutable_data(), 0, response_blob_.size());

  TcpConfig tcp = cfg_.tcp;
  tcp.listen_backlog = std::max<std::size_t>(tcp.listen_backlog, 4096);

  NicConfig nic_cfg;
  nic_cfg.ring_size = 4096;  // ramp waves and incast bursts exceed the 256 default

  NicConfig server_nic_cfg = nic_cfg;
  if (cfg_.tenant.enabled) {
    server_nic_cfg.num_queues = 2;  // queue 0: victim stack; queue 1: hostile tenant
  }
  server_host_ = std::make_unique<HostCpu>(&sim_, "loadsrv", /*charges_clock=*/true);
  server_nic_ = std::make_unique<SimNic>(server_host_.get(), &fabric_,
                                         MacAddress::ForHost(1), server_nic_cfg);
  NetStackConfig scfg;
  scfg.ip = server_ip_;
  scfg.rx_batch = 256;
  scfg.tcp = tcp;
  scfg.seed = MixSeed(cfg_.seed, 0x5e71);
  if (cfg_.tenant.enabled) {
    tenant_registry_ = std::make_unique<TenantRegistry>(&sim_);
    tenant_registry_->set_isolation_enabled(cfg_.tenant.isolation_on);
    server_nic_->AttachTenantRegistry(tenant_registry_.get());
    victim_tenant_ = tenant_registry_->Create(cfg_.tenant.victim);
    hostile_tenant_ = tenant_registry_->Create(cfg_.tenant.hostile);
    server_nic_->BindQueueTenant(0, victim_tenant_);
    server_nic_->BindQueueTenant(1, hostile_tenant_);
    // Victim capability coverage: the stack draws every protocol header from
    // this manager (BindTenant grants each arena, current and future), response
    // payloads are zero-copy slices of the blob granted below, and echoed
    // request bytes are covered by device RX grants. Nothing the victim posts
    // should ever trip a capability check.
    server_memory_ = std::make_unique<MemoryManager>(server_host_.get());
    server_memory_->BindTenant(tenant_registry_.get(), victim_tenant_);
    tenant_registry_->GrantRegion(victim_tenant_,
                                  response_blob_.storage()->registration_root());
    scfg.memory = server_memory_.get();
  }
  server_stack_ = std::make_unique<NetStack>(server_host_.get(), server_nic_.get(), scfg);
  for (std::size_t p = 0; p < cfg_.server_ports; ++p) {
    auto l = server_stack_->TcpListen(static_cast<std::uint16_t>(kServerBasePort + p));
    DEMI_CHECK(l.ok());
    listeners_.push_back(l.value());
  }

  client_hosts_.reserve(cfg_.client_stacks);
  client_nics_.reserve(cfg_.client_stacks);
  client_stacks_.reserve(cfg_.client_stacks);
  for (std::size_t s = 0; s < cfg_.client_stacks; ++s) {
    client_hosts_.push_back(std::make_unique<HostCpu>(
        &sim_, "loadgen" + std::to_string(s), /*charges_clock=*/false));
    client_nics_.push_back(std::make_unique<SimNic>(
        client_hosts_.back().get(), &fabric_,
        MacAddress::ForHost(static_cast<std::uint32_t>(10 + s)), nic_cfg));
    NetStackConfig ccfg;
    ccfg.ip = Ipv4Address::FromOctets(10, 0, 1, static_cast<std::uint8_t>(s + 1));
    ccfg.rx_batch = 256;
    ccfg.tcp = tcp;
    ccfg.seed = MixSeed(cfg_.seed, 0xc11e + s);
    client_stacks_.push_back(std::make_unique<NetStack>(
        client_hosts_.back().get(), client_nics_.back().get(), ccfg));
  }

  if (cfg_.tenant.enabled) {
    // The hostile tenant floods raw frames at a sink NIC that never drains its
    // rings, so attack traffic exercises the shared device without involving
    // any stack. The sink host charges no clock: it is scenery.
    sink_host_ = std::make_unique<HostCpu>(&sim_, "sink", /*charges_clock=*/false);
    sink_nic_ = std::make_unique<SimNic>(sink_host_.get(), &fabric_,
                                         MacAddress::ForHost(99), nic_cfg);
    hostile_ = std::make_unique<HostileTenant>(
        &sim_, server_nic_.get(), /*queue=*/1, hostile_tenant_,
        tenant_registry_.get(), sink_nic_->mac(), cfg_.tenant.hostile_load);
  }

  conns_.resize(cfg_.connections);
  sim_.AddPoller(this);
}

OpenLoopRunner::~OpenLoopRunner() {
  StopLoad();
  sim_.RemovePoller(this);
}

// ---------------------------------------------------------------------------
// Connection lifecycle
// ---------------------------------------------------------------------------

void OpenLoopRunner::OpenConnection(std::size_t i) {
  LoadConn& c = conns_[i];
  c = LoadConn{};
  const std::size_t s = i % cfg_.client_stacks;
  c.stack = static_cast<std::uint16_t>(s);
  c.server = Endpoint{server_ip_,
                      static_cast<std::uint16_t>(
                          kServerBasePort + (i / cfg_.client_stacks) % cfg_.server_ports)};
  // Deterministic slow-client assignment: the same connection indices are slow in
  // every run with the same config.
  c.slow = cfg_.slow_client_fraction > 0 &&
           static_cast<double>(i % 1024) < cfg_.slow_client_fraction * 1024.0;
  auto r = client_stacks_[s]->TcpConnect(c.server);
  DEMI_CHECK(r.ok());
  c.tcp = r.value();
  c.tcp->set_on_ready([this, i](TcpConnection*) { OnClientReady(i); });
}

void OpenLoopRunner::ReopenConnection(std::size_t i) { OpenConnection(i); }

void OpenLoopRunner::OnClientReady(std::size_t i) {
  LoadConn& c = conns_[i];
  if (c.tcp == nullptr) {
    return;
  }
  if (c.tcp->dead()) {
    OnClientDead(i);
    return;
  }
  if (!c.established && c.tcp->established()) {
    c.established = true;
    ++established_;
    if (point_active_) {
      ScheduleArrival(i);
    }
  }
  if (c.tcp->readable()) {
    if (c.slow) {
      // Slow client: sit on delivered data for a while, keeping the receive
      // window pinched and backpressuring the server's send side.
      if (!c.drain_scheduled) {
        c.drain_scheduled = true;
        sim_.Schedule(cfg_.slow_drain_delay_ns, [this, i] {
          conns_[i].drain_scheduled = false;
          DrainClient(i);
        });
      }
    } else {
      DrainClient(i);
    }
  }
  FlushClientBacklog(i);
}

void OpenLoopRunner::OnClientDead(std::size_t i) {
  LoadConn& c = conns_[i];
  if (c.dead || c.tcp == nullptr) {
    return;
  }
  c.dead = true;
  c.tcp = nullptr;
  CancelTimer(c.arrival);
  lost_in_flight_ += c.pending.size();
  c.pending.clear();
  c.backlog.clear();
  if (c.established) {
    c.established = false;
    --established_;
  }
  if (c.closing) {
    ++churn_cycles_;
    // Reconnect from a clean top-level context: the death callback runs inside
    // segment/timer processing where TcpConnect must not reenter the stack.
    sim_.Schedule(0, [this, i] { ReopenConnection(i); });
  } else {
    ++dead_unexpected_;
  }
}

void OpenLoopRunner::DrainClient(std::size_t i) {
  LoadConn& c = conns_[i];
  if (c.tcp == nullptr || c.tcp->dead()) {
    return;
  }
  while (true) {
    Buffer got = c.tcp->Recv(1 << 20);
    if (got.empty()) {
      break;
    }
    std::size_t n = got.size();
    while (n > 0 && !c.pending.empty()) {
      Pending& p = c.pending.front();
      const std::uint32_t take =
          static_cast<std::uint32_t>(std::min<std::size_t>(n, p.resp_remaining));
      p.resp_remaining -= take;
      n -= take;
      if (p.resp_remaining == 0) {
        const TimeNs intended = p.intended;
        c.pending.pop_front();
        CompleteRequest(i, intended);
      }
    }
    // Bytes with no matching pending request (e.g. a response racing a churn
    // close's pending-clear) are counted, not silently dropped.
    stray_bytes_ += n;
  }
}

void OpenLoopRunner::FlushClientBacklog(std::size_t i) {
  LoadConn& c = conns_[i];
  if (c.tcp == nullptr || c.tcp->dead()) {
    return;
  }
  while (!c.backlog.empty()) {
    if (!c.tcp->Send(c.backlog.front()).ok()) {
      break;
    }
    c.backlog.pop_front();
  }
}

void OpenLoopRunner::CompleteRequest(std::size_t i, TimeNs intended) {
  (void)i;
  const TimeNs now = sim_.now();
  ++completed_total_;
  if (measuring_) {
    ++completed_window_;
    sim_.metrics().RecordNamed(hist_, static_cast<std::uint64_t>(now - intended));
  }
  if (probe_) {
    probe_(intended, now);
  }
}

// ---------------------------------------------------------------------------
// Request generation
// ---------------------------------------------------------------------------

void OpenLoopRunner::IssueRequest(std::size_t i, TimeNs intended) {
  LoadConn& c = conns_[i];
  if (c.tcp == nullptr || !c.established || c.closing || c.tcp->dead()) {
    return;
  }
  ++issued_total_;
  if (measuring_) {
    ++issued_window_;
  }
  WorkloadModel::Request req = workload_.Sample(rng_);
  // The intended send time is the *scheduled* arrival instant — not now() (the
  // timer may have fired late when server work dragged the shared clock forward)
  // and not the instant bytes reached the socket (the request may sit in the
  // backlog below). Measuring from anything later than the schedule is
  // coordinated omission. That is the whole point of open loop.
  c.pending.push_back(Pending{intended, req.response_bytes});
  if (!c.backlog.empty() || !c.tcp->Send(req.payload).ok()) {
    c.backlog.push_back(std::move(req.payload));
  }
}

void OpenLoopRunner::ScheduleArrival(std::size_t i) {
  LoadConn& c = conns_[i];
  CancelTimer(c.arrival);
  const TimeNs gap = arrival_.NextGapNs(rng_);
  if (gap == ArrivalProcess::kNever) {
    return;
  }
  ArmArrival(i, sim_.now() + gap);
}

void OpenLoopRunner::ArmArrival(std::size_t i, TimeNs due) {
  // Self-rescheduling at absolute times: the next arrival is drawn from the
  // PREVIOUS SCHEDULED arrival, never from the (possibly late) fire time.
  // Rescheduling from fire times would silently clamp the offered rate to
  // whatever the system under test can absorb — closing the loop.
  conns_[i].arrival = sim_.ScheduleAt(due, [this, i, due] {
    conns_[i].arrival = kInvalidTimer;
    IssueRequest(i, due);
    const TimeNs gap = arrival_.NextGapNs(rng_);
    if (gap != ArrivalProcess::kNever) {
      ArmArrival(i, due + gap);
    }
  });
}

void OpenLoopRunner::RedrawAllArrivals() {
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    LoadConn& c = conns_[i];
    if (c.tcp != nullptr && c.established && !c.closing) {
      ScheduleArrival(i);
    }
  }
}

// ---------------------------------------------------------------------------
// Stressor clocks
// ---------------------------------------------------------------------------

void OpenLoopRunner::ScheduleChurn() {
  if (cfg_.churn_per_sec <= 0) {
    return;
  }
  const TimeNs gap = std::max<TimeNs>(
      1, static_cast<TimeNs>(rng_.NextExponential(1e9 / cfg_.churn_per_sec)));
  churn_timer_ = sim_.Schedule(gap, [this] {
    churn_timer_ = kInvalidTimer;
    ChurnTick();
    ScheduleChurn();
  });
}

void OpenLoopRunner::ChurnTick() {
  // Pick a random established victim; a bounded number of probes keeps the tick
  // O(1) even when most of the fleet is mid-reconnect.
  for (int tries = 0; tries < 16; ++tries) {
    const std::size_t i = static_cast<std::size_t>(rng_.NextBelow(conns_.size()));
    LoadConn& c = conns_[i];
    if (c.tcp != nullptr && c.established && !c.closing && !c.dead) {
      c.closing = true;
      ++churn_initiated_;
      CancelTimer(c.arrival);
      c.tcp->Close();
      return;
    }
  }
}

void OpenLoopRunner::ScheduleIncast() {
  if (cfg_.incast_fanin == 0) {
    return;
  }
  ArmIncast(sim_.now() + cfg_.incast_period_ns);
}

void OpenLoopRunner::ArmIncast(TimeNs due) {
  // Absolute-time self-rescheduling, same open-loop discipline as ArmArrival.
  incast_timer_ = sim_.ScheduleAt(due, [this, due] {
    incast_timer_ = kInvalidTimer;
    // A rotating window of connections all fire at the same instant.
    for (std::size_t k = 0; k < cfg_.incast_fanin; ++k) {
      IssueRequest(incast_cursor_, due);
      incast_cursor_ = (incast_cursor_ + 1) % conns_.size();
    }
    ArmIncast(due + cfg_.incast_period_ns);
  });
}

void OpenLoopRunner::SchedulePhaseFlip() {
  if (!arrival_.bursty()) {
    return;
  }
  phase_timer_ = sim_.Schedule(arrival_.NextDwellNs(rng_), [this] {
    phase_timer_ = kInvalidTimer;
    arrival_.FlipPhase();
    ++phase_flips_;
    // Every connection's next gap must come from the new phase rate: cancel and
    // redraw the whole fleet's arrival timers (a deliberate timer-wheel storm).
    RedrawAllArrivals();
    SchedulePhaseFlip();
  });
}

void OpenLoopRunner::CancelTimer(TimerId& id) {
  if (id != kInvalidTimer) {
    sim_.Cancel(id);
    id = kInvalidTimer;
  }
}

// ---------------------------------------------------------------------------
// Drive
// ---------------------------------------------------------------------------

bool OpenLoopRunner::Ramp(TimeNs deadline) {
  const TimeNs t_end = sim_.now() + deadline;
  std::size_t created = 0;
  while (created < cfg_.connections) {
    const std::size_t batch = std::min(cfg_.ramp_batch, cfg_.connections - created);
    for (std::size_t k = 0; k < batch; ++k) {
      OpenConnection(created + k);
    }
    created += batch;
    // Wait for the wave to establish before launching the next one so SYN floods
    // stay inside the listen backlog and the NIC rings.
    if (!sim_.RunUntil(
            [&] { return established_ + dead_unexpected_ >= created; }, t_end)) {
      return false;
    }
  }
  // All client-side established; make sure the server accepted every one too.
  return sim_.RunUntil([&] { return accepted_ >= established_; }, t_end);
}

SweepPoint OpenLoopRunner::RunPoint(double offered_rps, TimeNs warmup, TimeNs measure) {
  StopLoad();
  arrival_.SetRate(offered_rps);
  point_active_ = true;
  RedrawAllArrivals();
  ScheduleChurn();
  ScheduleIncast();
  SchedulePhaseFlip();
  sim_.RunFor(warmup);

  char name[64];
  std::snprintf(name, sizeof(name), "openloop/%.0frps/latency_ns", offered_rps);
  hist_ = sim_.metrics().NamedHistogram(name);
  const Histogram baseline = *hist_;  // repeated points at one rate share the name
  measuring_ = true;
  issued_window_ = 0;
  completed_window_ = 0;
  const TimeNs t0 = sim_.now();
  sim_.RunFor(measure);
  measuring_ = false;
  const TimeNs elapsed = sim_.now() - t0;

  const Histogram window = hist_->DiffSince(baseline);
  SweepPoint pt;
  pt.offered_rps = offered_rps;
  pt.issued = issued_window_;
  pt.completed = completed_window_;
  pt.achieved_rps =
      elapsed > 0 ? 1e9 * static_cast<double>(completed_window_) / elapsed : 0.0;
  pt.latency = SummarizeHistogram(window);
  pt.histogram_name = name;
  return pt;
}

void OpenLoopRunner::StopLoad() {
  point_active_ = false;
  measuring_ = false;
  CancelTimer(churn_timer_);
  CancelTimer(incast_timer_);
  CancelTimer(phase_timer_);
  for (LoadConn& c : conns_) {
    CancelTimer(c.arrival);
  }
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

bool OpenLoopRunner::Poll() {
  bool did = false;
  for (TcpListener* l : listeners_) {
    while (TcpConnection* tc = l->Accept()) {
      ++accepted_;
      srv_conns_.emplace(tc, SrvConn{});
      tc->set_on_ready([this](TcpConnection* c) { OnServerReady(c); });
      // Data (or a reset) may have landed between establishment and this accept.
      if (tc->readable() || tc->dead()) {
        OnServerReady(tc);
      }
      did = true;
    }
  }
  // Amortized reaping from a top-level context (never from inside a callback):
  // each sweep is O(live), so trigger it once per kReapThreshold deaths.
  if (server_stack_->closed_unreaped() > kReapThreshold) {
    server_stack_->ReapClosed();
    did = true;
  }
  for (auto& s : client_stacks_) {
    if (s->closed_unreaped() > kReapThreshold) {
      s->ReapClosed();
      did = true;
    }
  }
  return did;
}

void OpenLoopRunner::OnServerReady(TcpConnection* tc) {
  auto it = srv_conns_.find(tc);
  if (it == srv_conns_.end()) {
    return;
  }
  SrvConn& sc = it->second;
  if (tc->dead()) {
    srv_conns_.erase(it);
    return;
  }
  while (tc->readable()) {
    Buffer b = tc->Recv(1 << 20);
    if (b.empty()) {
      break;
    }
    ConsumeRequestBytes(tc, sc, b);
  }
  if (tc->recv_eof()) {
    tc->Close();  // half-close from the client: finish our side
  }
  FlushServerBacklog(tc, sc);
}

void OpenLoopRunner::ConsumeRequestBytes(TcpConnection* tc, SrvConn& sc,
                                         const Buffer& b) {
  const std::size_t req_bytes = workload_.request_bytes();
  const std::byte* data = b.data();
  std::size_t off = 0;
  const std::size_t n = b.size();
  while (off < n) {
    if (sc.got < WorkloadModel::kHeaderBytes) {
      const std::size_t hdr_take = std::min<std::size_t>(
          WorkloadModel::kHeaderBytes - sc.got, n - off);
      std::memcpy(sc.hdr + sc.got, data + off, hdr_take);
    }
    const std::size_t take = std::min(req_bytes - sc.got, n - off);
    sc.got += take;
    off += take;
    if (sc.got == req_bytes) {
      sc.got = 0;
      ServeRequest(tc, sc, WorkloadModel::DecodeResponseBytes(sc.hdr));
    }
  }
}

void OpenLoopRunner::ServeRequest(TcpConnection* tc, SrvConn& sc,
                                  std::uint32_t resp_bytes) {
  server_host_->Work(cfg_.server_work_per_request_ns);
  ++served_;
  Buffer resp = response_blob_.Slice(0, resp_bytes);
  // Responses must stay in order behind any backlogged predecessors.
  if (!sc.backlog.empty() || !tc->Send(resp).ok()) {
    sc.backlog.push_back(std::move(resp));
  }
}

void OpenLoopRunner::FlushServerBacklog(TcpConnection* tc, SrvConn& sc) {
  while (!sc.backlog.empty()) {
    if (!tc->Send(sc.backlog.front()).ok()) {
      break;
    }
    sc.backlog.pop_front();
  }
}

}  // namespace demi
