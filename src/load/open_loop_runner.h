// Open-loop load harness: 10^5..10^6 concurrent TCP connections against a lean
// echo/KV server, driven entirely by arrival timers and TCP ready callbacks.
//
// Topology (one Simulation, one fabric):
//   - one server host (charges the clock: it IS the system under test) with a
//     multi-queue-capable NIC and one NetStack listening on `server_ports` ports;
//   - `client_stacks` load-generator hosts, each with its own NIC + NetStack,
//     marked charges_clock=false so generator CPU can never throttle offered load.
//
// Connection capacity: each client stack owns a 2048-port ephemeral partition and
// ports are free per 4-tuple, so capacity = client_stacks * server_ports * 2048
// (8 * 64 * 2048 = 1,048,576 at the defaults). Connection i maps to stack i %
// client_stacks and server port (i / client_stacks) % server_ports.
//
// Event-driven, not polled: at a million connections any per-connection poll loop
// is O(N) per step and dominates the run. The harness polls nothing per
// connection — clients react to TcpConnection ready callbacks, arrivals are timer
// wheel entries, and the only Poller is the accept-queue drain on the server side.
//
// Intended-send-time accounting (coordinated-omission-free): a request's latency is
// measured from the instant its arrival timer fired — NOT from when the bytes made
// it into the socket, which under overload can be much later (the request waits in
// an application backlog while the send buffer is full). Queueing delay anywhere in
// the pipeline therefore lands in the reported tail, exactly as a real open-loop
// client fleet would experience it.
//
// A sweep point (RunPoint) retargets the aggregate rate: every connection's pending
// arrival timer is cancelled and redrawn at the new rate (valid because exponential
// gaps are memoryless — and a deliberate million-entry cancel/schedule storm on the
// timer wheel), runs a warmup, then records completions into a named histogram
// "openloop/<rate>rps/latency_ns" in the simulation's MetricsRegistry for the
// measurement window.
//
// Optional stressors, all seeded and deterministic:
//   - churn: an exponential clock closes a random established connection; the
//     replacement reconnects (exercising 4-tuple port reuse and TIME_WAIT);
//   - incast: every `incast_period_ns`, `incast_fanin` connections fire a request
//     at the same instant (fan-in microburst);
//   - slow clients: a fraction of connections delay draining responses, filling
//     their receive windows and backpressuring the server;
//   - MMPP arrivals: on/off bursty load with a global phase flip that redraws every
//     arrival timer (see arrival.h).

#ifndef SRC_LOAD_OPEN_LOOP_RUNNER_H_
#define SRC_LOAD_OPEN_LOOP_RUNNER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/hw/fabric.h"
#include "src/hw/nic.h"
#include "src/hw/tenant.h"
#include "src/load/arrival.h"
#include "src/load/hostile_tenant.h"
#include "src/load/workload.h"
#include "src/memory/memory_manager.h"
#include "src/net/stack.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"

namespace demi {

// Multi-tenant chaos mode for the load harness. When enabled, the server NIC
// becomes a two-queue shared device governed by a TenantRegistry: the echo
// server is the *victim* tenant on queue 0 (its stack's listen ports are flow-
// steered there) and a HostileTenant co-tenant floods queue 1 with raw frames
// aimed at a dedicated sink NIC that never drains. The victim's capability set
// is covered three ways: a MemoryManager bound to the tenant supplies every
// protocol header (transparent registration), the shared response blob is
// granted explicitly, and echoed request payloads are legal via device RX
// grants. `isolation_on` is the experiment knob: on, the device contains the
// hostile tenant (buckets + DWRR + capability checks); off reproduces the
// unprotected first-come-first-served device.
struct OpenLoopTenantConfig {
  bool enabled = false;
  bool isolation_on = true;
  TenantQosConfig victim{.name = "victim", .weight = 8};
  TenantQosConfig hostile{.name = "hostile",
                          .weight = 1,
                          .doorbells_per_sec = 50'000.0,
                          .doorbell_burst = 32.0,
                          .descriptors_per_sec = 2'000'000.0,
                          .descriptor_burst = 256.0};
  HostileTenantConfig hostile_load;
};

struct OpenLoopConfig {
  std::size_t connections = 100'000;
  std::size_t client_stacks = 8;
  std::size_t server_ports = 64;
  WorkloadConfig workload;
  ArrivalConfig arrival;
  TcpConfig tcp;  // applied to both sides; listen_backlog is raised to >= 4096
  FabricConfig fabric;  // loss/reorder knobs for lossy-sweep experiments
  // Stressors (0 / unset disables each).
  double churn_per_sec = 0.0;
  double slow_client_fraction = 0.0;
  TimeNs slow_drain_delay_ns = 1 * kMillisecond;
  std::size_t incast_fanin = 0;
  TimeNs incast_period_ns = 10 * kMillisecond;
  // Application-level service time charged to the server host per request.
  TimeNs server_work_per_request_ns = 500;
  // Connections opened per ramp wave. Each wave's SYNs land on the server NIC
  // within ~a wire latency of each other, so the wave must fit well inside the
  // 4096-slot RX ring or synchronized SYN retransmits collapse in lockstep.
  std::size_t ramp_batch = 2048;
  std::uint64_t seed = 1;
  SchedulerKind scheduler = kDefaultSchedulerKind;
  OpenLoopTenantConfig tenant;  // disabled by default; see struct comment
};

// One measured point of an offered-load sweep.
struct SweepPoint {
  double offered_rps = 0;
  double achieved_rps = 0;
  std::uint64_t issued = 0;     // arrival-timer firings inside the window
  std::uint64_t completed = 0;  // responses fully delivered inside the window
  HistogramStats latency;       // completion time minus intended send time
  std::string histogram_name;   // where the full histogram lives in the registry
};

class OpenLoopRunner final : public Poller {
 public:
  // Ephemeral ports each client stack may use per server port (per-4-tuple reuse).
  static constexpr std::size_t kEphemeralPartition = 2048;

  // Validates capacity and stressor parameters without building anything.
  // Returns kInvalidArgument — with the offending numbers in the message — when
  // `connections` exceeds the 4-tuple capacity client_stacks * server_ports *
  // kEphemeralPartition, or when a required count is zero. The constructor
  // panics on an invalid config; callers that take untrusted configs should
  // call this first and surface the typed error instead.
  static Status ValidateConfig(const OpenLoopConfig& cfg);

  explicit OpenLoopRunner(OpenLoopConfig cfg);
  ~OpenLoopRunner() override;
  OpenLoopRunner(const OpenLoopRunner&) = delete;
  OpenLoopRunner& operator=(const OpenLoopRunner&) = delete;

  Simulation& sim() { return sim_; }

  // Opens all connections in paced waves and runs the simulation until every one
  // is established and accepted. Returns false if that does not happen within
  // `deadline` of simulated time.
  bool Ramp(TimeNs deadline = 120 * kSecond);

  // One sweep point: retarget the rate, warm up, measure. Callable repeatedly with
  // increasing rates to trace a throughput-vs-tail-latency curve.
  SweepPoint RunPoint(double offered_rps, TimeNs warmup, TimeNs measure);

  // Stops all load (arrival/churn/incast/phase timers). RunPoint calls this first.
  void StopLoad();

  // Server-side accept drain + amortized connection reaping.
  bool Poll() override;

  // --- introspection (tests, benches) ---
  std::size_t established_connections() const { return established_; }
  std::uint64_t accepted_connections() const { return accepted_; }
  std::uint64_t issued_total() const { return issued_total_; }
  std::uint64_t completed_total() const { return completed_total_; }
  std::uint64_t served_total() const { return served_; }
  std::uint64_t churn_initiated() const { return churn_initiated_; }
  std::uint64_t churn_completed() const { return churn_cycles_; }
  std::uint64_t unexpected_deaths() const { return dead_unexpected_; }
  std::uint64_t lost_in_flight() const { return lost_in_flight_; }
  std::uint64_t phase_flips() const { return phase_flips_; }
  std::uint64_t stray_response_bytes() const { return stray_bytes_; }
  NetStack& server_stack() { return *server_stack_; }
  NetStack& client_stack(std::size_t i) { return *client_stacks_[i]; }
  std::size_t client_stack_count() const { return client_stacks_.size(); }
  SimNic& client_nic(std::size_t i) { return *client_nics_[i]; }
  SimNic& server_nic() { return *server_nic_; }
  const OpenLoopConfig& config() const { return cfg_; }

  // --- tenant mode (null / kNoTenant unless cfg.tenant.enabled) ---
  TenantRegistry* tenant_registry() { return tenant_registry_.get(); }
  TenantId victim_tenant() const { return victim_tenant_; }
  TenantId hostile_tenant() const { return hostile_tenant_; }
  HostileTenant* hostile() { return hostile_.get(); }
  SimNic* sink_nic() { return sink_nic_.get(); }

  // Test hook: observe every completion as (intended send time, completion time).
  using CompletionProbe = std::function<void(TimeNs intended, TimeNs completed)>;
  void set_completion_probe(CompletionProbe probe) { probe_ = std::move(probe); }

 private:
  struct Pending {
    TimeNs intended;
    std::uint32_t resp_remaining;
  };
  struct LoadConn {
    TcpConnection* tcp = nullptr;
    std::uint16_t stack = 0;
    bool established = false;
    bool dead = false;
    bool closing = false;  // churn close in flight; guards against double-close
    bool slow = false;
    bool drain_scheduled = false;
    Endpoint server;
    TimerId arrival = kInvalidTimer;
    std::deque<Pending> pending;  // outstanding requests, oldest first
    std::deque<Buffer> backlog;   // requests not yet accepted by the send buffer
  };
  struct SrvConn {
    std::size_t got = 0;  // bytes of the current request consumed so far
    std::uint8_t hdr[WorkloadModel::kHeaderBytes] = {};
    std::deque<Buffer> backlog;  // responses awaiting send-buffer space
  };

  void OpenConnection(std::size_t i);
  void ReopenConnection(std::size_t i);
  void OnClientReady(std::size_t i);
  void OnClientDead(std::size_t i);
  void DrainClient(std::size_t i);
  void FlushClientBacklog(std::size_t i);
  void CompleteRequest(std::size_t i, TimeNs intended);
  void IssueRequest(std::size_t i, TimeNs intended);
  void ScheduleArrival(std::size_t i);
  void ArmArrival(std::size_t i, TimeNs due);
  void RedrawAllArrivals();
  void ScheduleChurn();
  void ChurnTick();
  void ScheduleIncast();
  void ArmIncast(TimeNs due);
  void SchedulePhaseFlip();
  void CancelTimer(TimerId& id);

  void OnServerReady(TcpConnection* tc);
  void ConsumeRequestBytes(TcpConnection* tc, SrvConn& sc, const Buffer& b);
  void ServeRequest(TcpConnection* tc, SrvConn& sc, std::uint32_t resp_bytes);
  void FlushServerBacklog(TcpConnection* tc, SrvConn& sc);

  OpenLoopConfig cfg_;
  Simulation sim_;
  Fabric fabric_;
  WorkloadModel workload_;
  ArrivalProcess arrival_;
  Rng rng_;

  Ipv4Address server_ip_;
  Buffer response_blob_;  // shared storage for all response payloads

  // Load state (declared before the stacks so callbacks into it stay valid while
  // the stacks destruct; NetStack clears connection callbacks in its dtor anyway).
  std::vector<LoadConn> conns_;
  std::unordered_map<TcpConnection*, SrvConn> srv_conns_;
  std::vector<TcpListener*> listeners_;
  bool point_active_ = false;
  bool measuring_ = false;
  Histogram* hist_ = nullptr;
  CompletionProbe probe_;
  TimerId churn_timer_ = kInvalidTimer;
  TimerId incast_timer_ = kInvalidTimer;
  TimerId phase_timer_ = kInvalidTimer;
  std::size_t incast_cursor_ = 0;

  std::size_t established_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t issued_total_ = 0;
  std::uint64_t issued_window_ = 0;
  std::uint64_t completed_total_ = 0;
  std::uint64_t completed_window_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t churn_initiated_ = 0;
  std::uint64_t churn_cycles_ = 0;
  std::uint64_t dead_unexpected_ = 0;
  std::uint64_t lost_in_flight_ = 0;
  std::uint64_t phase_flips_ = 0;
  std::uint64_t stray_bytes_ = 0;

  // Tenant mode. Declared before the hardware so the registry and allocator are
  // destroyed after the device and stack that reference them.
  std::unique_ptr<TenantRegistry> tenant_registry_;
  std::unique_ptr<MemoryManager> server_memory_;
  TenantId victim_tenant_ = kNoTenant;
  TenantId hostile_tenant_ = kNoTenant;

  // Hardware and stacks last: destroyed first, while the state above is alive.
  std::unique_ptr<HostCpu> server_host_;
  std::unique_ptr<SimNic> server_nic_;
  std::vector<std::unique_ptr<HostCpu>> client_hosts_;
  std::vector<std::unique_ptr<SimNic>> client_nics_;
  std::unique_ptr<NetStack> server_stack_;
  std::vector<std::unique_ptr<NetStack>> client_stacks_;
  // Hostile co-tenant and its traffic sink (tenant mode only); destroyed before
  // the shared NIC they reference.
  std::unique_ptr<HostCpu> sink_host_;
  std::unique_ptr<SimNic> sink_nic_;
  std::unique_ptr<HostileTenant> hostile_;
};

}  // namespace demi

#endif  // SRC_LOAD_OPEN_LOOP_RUNNER_H_
