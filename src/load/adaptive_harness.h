// Churn-heavy adaptive echo scenario (DESIGN.md §15): a few Zipf-hot flows, a tail
// of cold flows, and waves of short-lived churn connections, all against one server
// host — the workload the load-adaptive path policy exists for.
//
// Topology (one TestHarness, RecoveryEchoRig shape):
//   - server 10.0.0.1: bypass NIC + dedicated kernel NIC; a recovery-enabled Catnip
//     echo server on port 7 (fast path + kernel fallback listener) and a Catnap echo
//     server on port 9 (pure kernel path, the churn/accept-storm target);
//   - client 10.0.0.2 (charges_clock=false): a recovery-enabled Catnip libOS runs
//     the paced hot/cold flows — optionally as a metered tenant so promotions take
//     and demotions release bypass flow slots — and a Catnap libOS dials the churn
//     waves through the legacy kernel.
//
// Hot flows request every `hot_period_ns` (well above the promote threshold), cold
// flows every `cold_period_ns` (below the demote threshold): with the policy on,
// cold flows voluntarily migrate to the kernel path and return their flow slot +
// registration to the tenant pool while hot flows keep bypass latency. Churn waves
// land `churn_wave_size` connects in one backlog, so one fastcall-priced AcceptBatch
// crossing drains the whole wave.
//
// Everything is seeded and virtual-clocked: same config + seed → bit-identical
// result (the `digest` field folds every completion, so tests can assert it).

#ifndef SRC_LOAD_ADAPTIVE_HARNESS_H_
#define SRC_LOAD_ADAPTIVE_HARNESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/apps/actors.h"
#include "src/common/histogram.h"
#include "src/core/harness.h"
#include "src/core/path_policy.h"

namespace demi {

struct AdaptiveHarnessConfig {
  std::size_t hot_flows = 4;
  std::size_t cold_flows = 8;
  TimeNs hot_period_ns = 20 * kMicrosecond;  // ~50k req/s per hot flow
  TimeNs cold_period_ns = 2 * kMillisecond;  // ~500 req/s per cold flow
  // Churn: every `churn_period_ns`, `churn_wave_size` fresh connections dial the
  // kernel-path echo server, do one round trip, and close — an accept storm.
  std::size_t churn_waves = 16;
  std::size_t churn_wave_size = 8;
  TimeNs churn_period_ns = 2 * kMillisecond;
  std::size_t msg_bytes = 64;
  bool adaptive = false;  // turn the path policy on (client side)
  bool fastcall = false;  // enable the fastcall table on both hosts' kernels
  PathPolicyConfig policy;  // thresholds used when adaptive (enabled is forced on)
  // > 0: the client Catnip runs as a metered tenant with this bypass flow-slot
  // quota, so demotions visibly return capacity (TenantStats::flow_slots_released).
  std::size_t max_flow_slots = 0;
  // > 0: at this instant every cold flow switches to the hot period — the load
  // spike that drives promotions back through the budgeted fast path.
  TimeNs cold_hot_flip_ns = 0;
  TimeNs run_ns = 50 * kMillisecond;
  std::uint64_t seed = 1;
};

struct AdaptiveScenarioResult {
  std::uint64_t hot_p50_ns = 0;
  std::uint64_t hot_p99_ns = 0;
  std::uint64_t cold_p50_ns = 0;
  std::uint64_t cold_p99_ns = 0;
  std::uint64_t hot_completed = 0;
  std::uint64_t cold_completed = 0;
  std::uint64_t churn_completed = 0;
  double churn_conns_per_sec = 0;  // accepted+served+closed churn connections
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t fastcall_crossings = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t accepts_batched = 0;
  // Tenant pool view at the end of the run (zero unless max_flow_slots > 0).
  std::uint64_t live_flow_slots = 0;
  std::uint64_t flow_slots_released = 0;
  std::uint64_t flow_slots_denied = 0;
  std::uint64_t digest = 0;  // FNV fold of every completion: bit-determinism probe
};

class AdaptiveEchoHarness final : public Poller {
 public:
  explicit AdaptiveEchoHarness(AdaptiveHarnessConfig cfg);
  ~AdaptiveEchoHarness() override;
  AdaptiveEchoHarness(const AdaptiveEchoHarness&) = delete;
  AdaptiveEchoHarness& operator=(const AdaptiveEchoHarness&) = delete;

  // Drives the scenario to completion and reports. Call once.
  AdaptiveScenarioResult Run();

  bool Poll() override;

  TestHarness& harness() { return *h_; }
  TestHarness::Host& server_host() { return *server_host_; }
  TestHarness::Host& client_host() { return *client_host_; }
  CatnipLibOS& client_libos() { return *client_libos_; }

 private:
  struct Flow {
    QDesc qd = kInvalidQDesc;
    QToken connect = kInvalidQToken;
    QToken push = kInvalidQToken;
    QToken pop = kInvalidQToken;
    bool hot = false;
    bool connected = false;
    bool due = false;  // the pacing timer fired while a round was still in flight
    TimeNs period = 0;
    TimeNs sent_at = 0;
    std::uint64_t completed = 0;
  };
  struct ChurnConn {
    QDesc qd = kInvalidQDesc;
    QToken token = kInvalidQToken;  // connect, then push, then pop
    int stage = 0;                  // 0 connect, 1 push, 2 pop
  };

  void ArmFlowTimer(std::size_t i);
  void SendIfReady(std::size_t i);
  void SpawnChurnWave();
  void Mix(std::uint64_t v) { digest_ = (digest_ ^ v) * 1099511628211ULL; }

  AdaptiveHarnessConfig cfg_;
  // Harness declared first so it is destroyed last — every actor below deregisters
  // its poller from the harness's simulation in its destructor.
  std::unique_ptr<TestHarness> h_;
  TestHarness::Host* server_host_ = nullptr;
  TestHarness::Host* client_host_ = nullptr;
  CatnipLibOS* server_libos_ = nullptr;   // recovery echo server, port 7
  CatnipLibOS* client_libos_ = nullptr;   // paced hot/cold flows
  CatnapLibOS* churn_server_libos_ = nullptr;  // kernel-path echo server, port 9
  CatnapLibOS* churn_client_libos_ = nullptr;  // churn dialer
  std::unique_ptr<DemiEchoServer> echo_server_;
  std::unique_ptr<DemiEchoServer> churn_echo_server_;

  std::vector<Flow> flows_;
  std::vector<ChurnConn> churn_;
  std::size_t churn_waves_spawned_ = 0;
  std::uint64_t churn_completed_ = 0;
  bool stopping_ = false;
  Histogram hot_latency_;
  Histogram cold_latency_;
  std::uint64_t digest_ = 1469598103934665603ULL;  // FNV-1a offset basis
};

}  // namespace demi

#endif  // SRC_LOAD_ADAPTIVE_HARNESS_H_
