#include "src/load/workload.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace demi {

namespace {

// Value size classes for the KV workload: mostly small values with a tail of large
// ones, the shape production caches report.
constexpr std::uint32_t kValueClasses[] = {64, 96, 128, 192, 256, 512, 1024, 4096};
constexpr std::size_t kNumValueClasses = sizeof(kValueClasses) / sizeof(kValueClasses[0]);

std::uint64_t Splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

WorkloadModel::WorkloadModel(WorkloadConfig cfg)
    : cfg_(cfg), zipf_(std::max<std::uint64_t>(cfg.kv_keys, 1), cfg.zipf_theta) {
  DEMI_CHECK(cfg_.request_bytes >= kHeaderBytes);
  DEMI_CHECK(cfg_.request_bytes <= kMaxResponseBytes);  // echo responses slice the blob
  echo_request_ = BuildRequest(static_cast<std::uint32_t>(cfg_.request_bytes));
  kv_requests_.reserve(kNumValueClasses);
  for (std::uint32_t bytes : kValueClasses) {
    kv_requests_.push_back(BuildRequest(bytes));
  }
}

Buffer WorkloadModel::BuildRequest(std::uint32_t response_bytes) const {
  Buffer req = Buffer::Allocate(cfg_.request_bytes);
  std::memset(req.mutable_data(), 0, cfg_.request_bytes);
  std::uint8_t hdr[kHeaderBytes] = {
      static_cast<std::uint8_t>(response_bytes),
      static_cast<std::uint8_t>(response_bytes >> 8),
      static_cast<std::uint8_t>(response_bytes >> 16),
      static_cast<std::uint8_t>(response_bytes >> 24),
  };
  std::memcpy(req.mutable_data(), hdr, kHeaderBytes);
  return req;
}

std::uint32_t WorkloadModel::ValueBytes(std::uint64_t key) {
  return kValueClasses[Splitmix64(key) % kNumValueClasses];
}

std::uint32_t WorkloadModel::DecodeResponseBytes(const std::uint8_t header[kHeaderBytes]) {
  const std::uint32_t raw = static_cast<std::uint32_t>(header[0]) |
                            static_cast<std::uint32_t>(header[1]) << 8 |
                            static_cast<std::uint32_t>(header[2]) << 16 |
                            static_cast<std::uint32_t>(header[3]) << 24;
  return std::clamp<std::uint32_t>(raw, 1, kMaxResponseBytes);
}

WorkloadModel::Request WorkloadModel::Sample(Rng& rng) {
  if (cfg_.kind == WorkloadKind::kEcho) {
    return Request{echo_request_, static_cast<std::uint32_t>(cfg_.request_bytes)};
  }
  const std::uint64_t key = SampleKey(rng);
  const std::uint32_t bytes = ValueBytes(key);
  for (std::size_t i = 0; i < kNumValueClasses; ++i) {
    if (kValueClasses[i] == bytes) {
      return Request{kv_requests_[i], bytes};
    }
  }
  return Request{echo_request_, static_cast<std::uint32_t>(cfg_.request_bytes)};
}

}  // namespace demi
