// Open-loop arrival processes for the load harness.
//
// Open-loop means arrivals are drawn from a clock, not from completions: a request
// is "sent" (its intended send time stamped) the instant the process fires, whether
// or not the connection, the stack, or the server has caught up. This is the
// methodology that exposes coordinated omission — a closed-loop generator silently
// stops offering load exactly when the system under test stalls, which is when the
// tail matters most.
//
// Two processes:
//   - Poisson: independent exponential inter-arrival gaps at a fixed aggregate rate,
//     split evenly across connections. Memoryless, so redrawing every pending gap at
//     a rate change (the per-sweep-point reschedule) is statistically identical to
//     letting old draws run out — and deliberately storms the timer wheel.
//   - MMPP (Markov-modulated Poisson): a two-phase on/off modulator. The process
//     dwells exponentially in a quiet phase and a bursty phase whose rate is
//     `burst_factor` times higher; phase rates are normalized so the long-run
//     average equals the configured offered load. Models the on/off burstiness of
//     real datacenter traffic that a fixed-rate Poisson curve hides.

#ifndef SRC_LOAD_ARRIVAL_H_
#define SRC_LOAD_ARRIVAL_H_

#include <cstddef>

#include "src/common/random.h"
#include "src/sim/time.h"

namespace demi {

struct ArrivalConfig {
  enum class Process { kPoisson, kMmpp };
  Process process = Process::kPoisson;
  // MMPP modulator: rate multiplier of the bursty phase relative to the quiet one,
  // and mean exponential dwell time in each phase.
  double mmpp_burst_factor = 8.0;
  TimeNs mmpp_on_mean_ns = 2 * kMillisecond;
  TimeNs mmpp_off_mean_ns = 8 * kMillisecond;
};

class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalConfig cfg, std::size_t connections);

  // Sets the aggregate offered load and resets the modulator to the quiet phase.
  void SetRate(double offered_rps);
  double offered_rps() const { return offered_rps_; }
  bool bursty() const { return cfg_.process == ArrivalConfig::Process::kMmpp; }
  bool on_phase() const { return on_phase_; }

  // Exponential gap to one connection's next arrival at the current phase rate.
  // Returns kNever when the offered load is zero (no arrivals).
  static constexpr TimeNs kNever = -1;
  TimeNs NextGapNs(Rng& rng) const;

  // Exponential dwell remaining in the current phase (MMPP only).
  TimeNs NextDwellNs(Rng& rng) const;
  void FlipPhase() { on_phase_ = !on_phase_; }

  // Current aggregate rate (phase-adjusted), requests/sec. Exposed for tests.
  double current_rps() const;

 private:
  ArrivalConfig cfg_;
  std::size_t connections_;
  double offered_rps_ = 0;
  bool on_phase_ = false;
};

}  // namespace demi

#endif  // SRC_LOAD_ARRIVAL_H_
