#include "src/load/hostile_tenant.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/logging.h"

namespace demi {

namespace {

// Raw frames the stack never parses: a private ethertype keeps the sink (and any
// steering/RSS logic) from mistaking attack traffic for IPv4 or ARP.
constexpr std::uint16_t kEtherTypeHostile = 0x88B5;

Buffer MakeFloodBlob(std::size_t bytes, MacAddress dst, MacAddress src) {
  Buffer blob = Buffer::Allocate(bytes);
  std::memset(blob.mutable_data(), 0, blob.size());
  WriteEthHeader({blob.mutable_data(), kEthHeaderSize},
                 EthHeader{dst, src, kEtherTypeHostile});
  return blob;
}

}  // namespace

HostileTenant::HostileTenant(Simulation* sim, SimNic* nic, int queue, TenantId tenant,
                             TenantRegistry* registry, MacAddress dst,
                             HostileTenantConfig cfg)
    : sim_(sim),
      nic_(nic),
      queue_(queue),
      tenant_(tenant),
      cfg_(cfg),
      rng_(cfg.seed) {
  DEMI_CHECK(cfg_.doorbell_rate_per_sec > 0);
  DEMI_CHECK(cfg_.burst_frames > 0);
  DEMI_CHECK(cfg_.frame_bytes >= kEthHeaderSize);
  period_ns_ = std::max<TimeNs>(
      1, static_cast<TimeNs>(1e9 / cfg_.doorbell_rate_per_sec));
  granted_blob_ = MakeFloodBlob(cfg_.frame_bytes, dst, nic_->mac());
  bogus_blob_ = MakeFloodBlob(cfg_.frame_bytes, dst, nic_->mac());
  if (registry != nullptr && tenant_ != kNoTenant) {
    registry->GrantRegion(tenant_, granted_blob_.storage()->registration_root());
    // bogus_blob_ deliberately stays outside the capability set.
  }
  burst_.reserve(cfg_.burst_frames);
}

void HostileTenant::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++epoch_;
  Arm(sim_->now());  // open fire immediately
}

void HostileTenant::Stop() {
  running_ = false;
  ++epoch_;  // orphans any armed tick
}

FaultDeviceId HostileTenant::AttachFaultInjector(FaultInjector* faults,
                                                 std::string name) {
  return faults->Register(std::move(name), [this](const FaultEvent& event) {
    if (event.kind == FaultKind::kHostileBurst) {
      Start();
    } else if (event.kind == FaultKind::kHostileQuiet) {
      Stop();
    }
  });
}

void HostileTenant::Arm(TimeNs due) {
  // Absolute-time self-rescheduling from the SCHEDULED instant: device pushback
  // (full rings, throttled doorbells) must never slow the offered attack rate.
  const std::uint64_t epoch = epoch_;
  sim_->ScheduleAt(due, [this, due, epoch] {
    if (!running_ || epoch != epoch_) {
      return;
    }
    Tick();
    Arm(due + period_ns_);
  });
}

void HostileTenant::Tick() {
  ++stats_.doorbells_attempted;
  burst_.clear();
  for (std::size_t i = 0; i < cfg_.burst_frames; ++i) {
    const bool bogus =
        cfg_.bogus_fraction > 0 && rng_.NextDouble() < cfg_.bogus_fraction;
    const Buffer& blob = bogus ? bogus_blob_ : granted_blob_;
    burst_.emplace_back(blob.Slice(0, cfg_.frame_bytes));
    if (bogus) {
      ++stats_.bogus_offered;
    }
  }
  stats_.frames_offered += burst_.size();
  const std::size_t accepted = nic_->TransmitBurst(queue_, burst_);
  stats_.frames_accepted += accepted;
  if (accepted == 0) {
    ++stats_.empty_doorbells;
  }
}

}  // namespace demi
