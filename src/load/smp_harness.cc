#include "src/load/smp_harness.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace demi {

namespace {

constexpr std::uint16_t kSmpServerPort = 7777;
// Ephemeral ports per client stack toward ONE server endpoint (all connections
// share the same remote 4-tuple half, so per-4-tuple port reuse cannot help).
constexpr std::size_t kEphemeralPartition = 2048;

std::uint64_t Mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t x = seed ^ (salt * 0x9e3779b97f4a7c15ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

}  // namespace

SmpHarness::SmpHarness(SmpHarnessConfig cfg)
    : cfg_(cfg),
      sim_(CostModel{}, cfg.scheduler),
      fabric_(&sim_, FabricConfig{}),
      workload_(cfg.workload),
      rng_(Mix(cfg.seed, 0x50ad)) {
  DEMI_CHECK(cfg_.workers >= 1 && cfg_.connections > 0 && cfg_.client_stacks > 0);
  DEMI_CHECK(cfg_.connections <= cfg_.client_stacks * kEphemeralPartition &&
             "connections exceed client ephemeral-port capacity");

  server_ip_ = Ipv4Address::FromOctets(10, 0, 0, 1);
  TcpConfig tcp = cfg_.tcp;
  tcp.listen_backlog = std::max<std::size_t>(tcp.listen_backlog, 4096);

  NicConfig nic_cfg;
  nic_cfg.ring_size = 4096;  // ramp waves must fit inside the RX ring
  nic_cfg.num_queues = cfg_.workers;
  server_host_ = std::make_unique<HostCpu>(&sim_, "server-nic", /*charges_clock=*/true);
  server_nic_ = std::make_unique<SimNic>(server_host_.get(), &fabric_,
                                         MacAddress::ForHost(1), nic_cfg);

  SmpConfig smp;
  smp.workers = cfg_.workers;
  smp.port = kSmpServerPort;
  smp.ip = server_ip_;
  smp.tcp = tcp;
  smp.seed = Mix(cfg_.seed, 0x5e71);
  smp.request_cpu_ns = cfg_.server_request_cpu_ns;
  smp.steal = cfg_.steal;
  smp.steal_threshold = cfg_.steal_threshold;
  smp.steal_batch = cfg_.steal_batch;
  smp.consume_batch = cfg_.consume_batch;
  pool_ = std::make_unique<WorkerPool>(&sim_, server_nic_.get(), smp);

  NicConfig client_nic_cfg;
  client_nic_cfg.ring_size = 4096;
  client_hosts_.reserve(cfg_.client_stacks);
  client_nics_.reserve(cfg_.client_stacks);
  client_stacks_.reserve(cfg_.client_stacks);
  for (std::size_t s = 0; s < cfg_.client_stacks; ++s) {
    client_hosts_.push_back(std::make_unique<HostCpu>(
        &sim_, "loadgen" + std::to_string(s), /*charges_clock=*/false));
    client_nics_.push_back(std::make_unique<SimNic>(
        client_hosts_.back().get(), &fabric_,
        MacAddress::ForHost(static_cast<std::uint32_t>(10 + s)), client_nic_cfg));
    NetStackConfig ccfg;
    ccfg.ip = Ipv4Address::FromOctets(10, 0, 1, static_cast<std::uint8_t>(s + 1));
    ccfg.rx_batch = 256;
    ccfg.tcp = tcp;
    ccfg.seed = Mix(cfg_.seed, 0xc11e + s);
    client_stacks_.push_back(std::make_unique<NetStack>(
        client_hosts_.back().get(), client_nics_.back().get(), ccfg));
  }

  conns_.resize(cfg_.connections);
  shard_conns_.assign(static_cast<std::size_t>(cfg_.workers), 0);
}

SmpHarness::~SmpHarness() { StopLoad(); }

std::size_t SmpHarness::shard_connections(int shard) const {
  return shard_conns_.at(static_cast<std::size_t>(shard));
}

// ---------------------------------------------------------------------------
// Connection lifecycle
// ---------------------------------------------------------------------------

void SmpHarness::OpenConnection(std::size_t i) {
  LoadConn& c = conns_[i];
  const std::size_t s = i % cfg_.client_stacks;
  c.stack = static_cast<std::uint16_t>(s);
  auto r = client_stacks_[s]->TcpConnect(Endpoint{server_ip_, kSmpServerPort});
  DEMI_CHECK(r.ok());
  c.tcp = r.value();
  // The flow's worker shard is fixed by its 4-tuple the moment the local port is
  // allocated — compute it the same way the NIC will hash the SYN.
  const std::uint32_t src = client_stacks_[s]->ip().addr;
  const std::uint32_t dst = server_ip_.addr;
  const std::uint16_t sport = c.tcp->local().port;
  const std::array<std::uint8_t, 12> tuple = {
      static_cast<std::uint8_t>(src >> 24), static_cast<std::uint8_t>(src >> 16),
      static_cast<std::uint8_t>(src >> 8),  static_cast<std::uint8_t>(src),
      static_cast<std::uint8_t>(dst >> 24), static_cast<std::uint8_t>(dst >> 16),
      static_cast<std::uint8_t>(dst >> 8),  static_cast<std::uint8_t>(dst),
      static_cast<std::uint8_t>(sport >> 8), static_cast<std::uint8_t>(sport),
      static_cast<std::uint8_t>(kSmpServerPort >> 8),
      static_cast<std::uint8_t>(kSmpServerPort)};
  c.shard = SimNic::RssForTuple(tuple, cfg_.workers);
  ++shard_conns_[static_cast<std::size_t>(c.shard)];
  c.tcp->set_on_ready([this, i](TcpConnection*) { OnClientReady(i); });
}

void SmpHarness::OnClientReady(std::size_t i) {
  LoadConn& c = conns_[i];
  if (c.tcp == nullptr) {
    return;
  }
  if (c.tcp->dead()) {
    if (!c.dead) {
      c.dead = true;
      ++dead_conns_;
      CancelTimer(c.arrival);
      c.pending.clear();
      c.backlog.clear();
      if (c.established) {
        c.established = false;
        --established_;
      }
      c.tcp = nullptr;
    }
    return;
  }
  if (!c.established && c.tcp->established()) {
    c.established = true;
    ++established_;
    if (point_active_ && c.rate_rps > 0) {
      const TimeNs gap = std::max<TimeNs>(
          1, static_cast<TimeNs>(rng_.NextExponential(1e9 / c.rate_rps)));
      ArmArrival(i, sim_.now() + gap);
    }
  }
  if (c.tcp->readable()) {
    DrainClient(i);
  }
  FlushClientBacklog(i);
}

void SmpHarness::DrainClient(std::size_t i) {
  LoadConn& c = conns_[i];
  while (true) {
    Buffer got = c.tcp->Recv(1 << 20);
    if (got.empty()) {
      break;
    }
    c.decoder.Feed(std::move(got));
  }
  while (true) {
    auto decoded = c.decoder.Next();
    if (!decoded.ok() || !decoded->has_value()) {
      break;
    }
    if (c.pending.empty()) {
      continue;  // response raced a pending-clear; drop it
    }
    const TimeNs intended = c.pending.front().intended;
    c.pending.pop_front();
    ++completed_total_;
    if (measuring_) {
      ++completed_window_;
      sim_.metrics().RecordNamed(hist_,
                                 static_cast<std::uint64_t>(sim_.now() - intended));
    }
  }
}

void SmpHarness::FlushClientBacklog(std::size_t i) {
  LoadConn& c = conns_[i];
  if (c.tcp == nullptr || c.tcp->dead()) {
    return;
  }
  while (!c.backlog.empty()) {
    if (!c.tcp->Send(c.backlog.front()).ok()) {
      break;
    }
    c.backlog.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Request generation
// ---------------------------------------------------------------------------

void SmpHarness::IssueRequest(std::size_t i, TimeNs intended) {
  LoadConn& c = conns_[i];
  if (c.tcp == nullptr || !c.established || c.tcp->dead()) {
    return;
  }
  ++issued_total_;
  if (measuring_) {
    ++issued_window_;
  }
  WorkloadModel::Request req = workload_.Sample(rng_);
  c.pending.push_back(Pending{intended, req.response_bytes});
  // One framed element per request; the frame parts ride the stream in order, so
  // any part the send buffer rejects parks the rest in the backlog behind it.
  std::vector<Buffer> parts = EncodeFrame(SgArray(std::move(req.payload)));
  std::size_t sent = 0;
  if (c.backlog.empty()) {
    while (sent < parts.size() && c.tcp->Send(parts[sent]).ok()) {
      ++sent;
    }
  }
  for (; sent < parts.size(); ++sent) {
    c.backlog.push_back(std::move(parts[sent]));
  }
}

void SmpHarness::ArmArrival(std::size_t i, TimeNs due) {
  // Absolute-time self-rescheduling: the next arrival is drawn from the previous
  // SCHEDULED arrival, never the (possibly late) fire time — open-loop discipline.
  conns_[i].arrival = sim_.ScheduleAt(due, [this, i, due] {
    LoadConn& c = conns_[i];
    c.arrival = kInvalidTimer;
    IssueRequest(i, due);
    if (point_active_ && c.rate_rps > 0) {
      const TimeNs gap = std::max<TimeNs>(
          1, static_cast<TimeNs>(rng_.NextExponential(1e9 / c.rate_rps)));
      ArmArrival(i, due + gap);
    }
  });
}

void SmpHarness::AssignRates(double offered_rps) {
  // Shard-skew weighting: weight 1/(shard+1)^skew per connection, normalized so
  // the aggregate stays `offered_rps`.
  double total_weight = 0;
  for (const LoadConn& c : conns_) {
    total_weight += std::pow(1.0 / static_cast<double>(c.shard + 1), cfg_.shard_skew);
  }
  DEMI_CHECK(total_weight > 0);
  for (LoadConn& c : conns_) {
    const double w = std::pow(1.0 / static_cast<double>(c.shard + 1), cfg_.shard_skew);
    c.rate_rps = offered_rps * w / total_weight;
  }
}

void SmpHarness::CancelTimer(TimerId& id) {
  if (id != kInvalidTimer) {
    sim_.Cancel(id);
    id = kInvalidTimer;
  }
}

// ---------------------------------------------------------------------------
// Drive
// ---------------------------------------------------------------------------

bool SmpHarness::Ramp(TimeNs deadline) {
  const TimeNs t_end = sim_.now() + deadline;
  std::size_t created = 0;
  while (created < cfg_.connections) {
    const std::size_t batch = std::min(cfg_.ramp_batch, cfg_.connections - created);
    for (std::size_t k = 0; k < batch; ++k) {
      OpenConnection(created + k);
    }
    created += batch;
    if (!sim_.RunUntil([&] { return established_ + dead_conns_ >= created; },
                       t_end)) {
      return false;
    }
  }
  // Client-side established; every worker shard must have accepted its flows too.
  return sim_.RunUntil(
      [&] { return pool_->total_accepted() + dead_conns_ >= established_; }, t_end);
}

SweepPoint SmpHarness::RunPoint(double offered_rps, TimeNs warmup, TimeNs measure,
                                const std::string& label) {
  StopLoad();
  AssignRates(offered_rps);
  point_active_ = true;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    LoadConn& c = conns_[i];
    if (c.tcp != nullptr && c.established && c.rate_rps > 0) {
      const TimeNs gap = std::max<TimeNs>(
          1, static_cast<TimeNs>(rng_.NextExponential(1e9 / c.rate_rps)));
      ArmArrival(i, sim_.now() + gap);
    }
  }
  sim_.RunFor(warmup);

  char name[96];
  std::snprintf(name, sizeof(name), "smp/%s/%.0frps/latency_ns", label.c_str(),
                offered_rps);
  hist_ = sim_.metrics().NamedHistogram(name);
  const Histogram baseline = *hist_;
  measuring_ = true;
  issued_window_ = 0;
  completed_window_ = 0;
  const TimeNs t0 = sim_.now();
  sim_.RunFor(measure);
  measuring_ = false;
  const TimeNs elapsed = sim_.now() - t0;

  const Histogram window = hist_->DiffSince(baseline);
  SweepPoint pt;
  pt.offered_rps = offered_rps;
  pt.issued = issued_window_;
  pt.completed = completed_window_;
  pt.achieved_rps =
      elapsed > 0 ? 1e9 * static_cast<double>(completed_window_) / elapsed : 0.0;
  pt.latency = SummarizeHistogram(window);
  pt.histogram_name = name;
  return pt;
}

void SmpHarness::StopLoad() {
  point_active_ = false;
  measuring_ = false;
  for (LoadConn& c : conns_) {
    CancelTimer(c.arrival);
  }
}

}  // namespace demi
