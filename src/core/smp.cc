#include "src/core/smp.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/sim/counters.h"

namespace demi {

namespace {

// Wire protocol of src/load/workload.h: the first 4 payload bytes carry the
// response length, little-endian, clamped so a corrupt header cannot ask for
// unbounded data. The header may straddle sga segments after reassembly.
std::uint32_t DecodeResponseBytes(const SgArray& sga) {
  std::uint8_t hdr[4] = {};
  std::size_t got = 0;
  for (const Buffer& seg : sga) {
    const auto bytes = seg.span();
    for (std::size_t i = 0; i < bytes.size() && got < 4; ++i) {
      hdr[got++] = std::to_integer<std::uint8_t>(bytes[i]);
    }
    if (got == 4) {
      break;
    }
  }
  const std::uint32_t v = static_cast<std::uint32_t>(hdr[0]) |
                          static_cast<std::uint32_t>(hdr[1]) << 8 |
                          static_cast<std::uint32_t>(hdr[2]) << 16 |
                          static_cast<std::uint32_t>(hdr[3]) << 24;
  return std::min(v, SmpWorker::kMaxResponseBytes);
}

}  // namespace

SmpWorker::SmpWorker(WorkerPool* pool, Simulation* sim, SimNic* nic, int index,
                     const SmpConfig& cfg)
    : pool_(pool),
      cfg_(cfg),
      index_(index),
      cpu_(sim, "worker" + std::to_string(index), /*charges_clock=*/true,
           /*core=*/index + 1) {
  // Everything this worker registers (its own poller, the libOS, the NetStack)
  // homes on core index+1; construction itself runs in the core-0 context.
  HomeCoreScope scope(*sim, index_ + 1);
  CatnipConfig ccfg;
  ccfg.ip = cfg_.ip;
  ccfg.tcp = cfg_.tcp;
  ccfg.seed = cfg_.seed ^ (0x517e0000ull + static_cast<std::uint64_t>(index));
  ccfg.nic_queue = index_;
  ccfg.rss_steering = true;  // N listeners on one port: the hash is the demux
  ccfg.rx_batch = cfg_.rx_batch;
  libos_ = std::make_unique<CatnipLibOS>(&cpu_, nic, /*control_kernel=*/nullptr,
                                         std::move(ccfg));
  // Sharded workers hold one mostly-idle connection per client: poll the dirty
  // set, not the whole shard.
  libos_->EnableSparsePolling();
  // Re-arm the next pop the moment a pop DELIVERS, not when the app gets around
  // to handling it. With handling-time re-arm, ring production is coupled 1:1 to
  // consumption and an overloaded shard's backlog hides in transport receive
  // buffers where ready_size() — the steal-victim load signal — cannot see it.
  // Delivery-time re-arm drains that backlog into the ready ring, which is the
  // completion queue ZygOS-style thieves actually steal from. Failed pops do not
  // re-arm: the terminal completion rides the ring and its consumer closes the
  // queue, so a dead device or peer never leaves an armed pop behind.
  libos_->set_ready_observer([this](QToken, QDesc qd, OpType op, bool ok) {
    if (op == OpType::kPop && ok) {
      (void)libos_->Pop(qd);
    }
  });
  response_blob_ = Buffer::Allocate(kMaxResponseBytes);
  std::memset(response_blob_.mutable_data(), 0, response_blob_.size());
  sim->AddPollerOn(index_ + 1, this);

  auto qd = libos_->Socket();
  DEMI_CHECK(qd.ok());
  listen_qd_ = *qd;
  DEMI_CHECK(libos_->Bind(listen_qd_, cfg_.port).ok());
  DEMI_CHECK(libos_->Listen(listen_qd_).ok());
  ArmAccept();
}

SmpWorker::~SmpWorker() { cpu_.sim().RemovePoller(this); }

void SmpWorker::ArmAccept() {
  auto token = libos_->AcceptAsync(listen_qd_);
  if (!token.ok()) {
    accept_token_ = kInvalidQToken;
    return;
  }
  accept_token_ = *token;
  (void)libos_->WatchToken(accept_token_, this);
}

void SmpWorker::OnTokenComplete(QToken token, QDesc qd) {
  (void)qd;
  watched_done_.push_back(token);
}

bool SmpWorker::HandleWatched(QToken token) {
  auto r = libos_->TakeResultInternal(token);
  if (!r.ok()) {
    return false;  // claimed elsewhere or still pending (should not happen)
  }
  if (r->op == OpType::kAccept) {
    if (token == accept_token_) {
      accept_token_ = kInvalidQToken;
    }
    if (r->status.ok()) {
      ++accepted_;
      // Arm the connection's first pop; every later one is re-armed at delivery
      // time by the ready observer. Completions (requests) land in the ready
      // ring where home worker and thieves alike can claim them.
      auto pop = libos_->Pop(r->new_qd);
      if (!pop.ok()) {
        (void)libos_->Close(r->new_qd);
      }
      ArmAccept();
    } else if (r->status.code() != ErrorCode::kDeviceFailed) {
      ArmAccept();  // transient accept failure; a dead device ends accepting
    }
    return true;
  }
  // Push acknowledgments need no action. A failed push means the connection died;
  // the outstanding pop surfaces the terminal error and closes the queue, so the
  // qd is not torn down here while that pop is still registered.
  return true;
}

void SmpWorker::HandleCompletion(ReadyCompletion& rc, SmpWorker* owner) {
  // Exactly-one-wakeup: the consumer that claimed the completion accounts it.
  cpu_.Count(Counter::kWakeups);
  if (rc.op != OpType::kPop) {
    return;  // only pops route through the ring in this pool
  }
  LibOS& owner_libos = *owner->libos_;
  if (!rc.result.status.ok()) {
    // EOF / reset / device death: retire the connection on its home shard.
    (void)owner_libos.Close(rc.qd);
    return;
  }
  const std::uint32_t resp_bytes = DecodeResponseBytes(rc.result.sga);
  cpu_.Work(cfg_.request_cpu_ns);  // app service time, on the executing core
  ++served_;
  if (owner != this) {
    ++stolen_executed_;
  }
  // Egress goes home: the connection and its NIC queue belong to the owner shard.
  // The next pop is already armed (re-armed at delivery time by the ready
  // observer), so handling a request is push-only — thieves included.
  auto push = owner_libos.Push(rc.qd, owner->ResponseSga(resp_bytes));
  if (push.ok()) {
    (void)owner_libos.WatchToken(*push, owner);
  }
}

SgArray SmpWorker::ResponseSga(std::uint32_t bytes) {
  return SgArray(response_blob_.Slice(0, bytes));
}

bool SmpWorker::TrySteal() {
  if (victims_.empty()) {
    for (int i = 1; i < pool_->size(); ++i) {
      victims_.push_back(&pool_->worker((index_ + i) % pool_->size()));
    }
    if (victims_.empty()) {
      return false;
    }
  }
  const CostModel& cost = cpu_.cost();
  for (std::size_t k = 0; k < victims_.size(); ++k) {
    SmpWorker& victim = *victims_[(victim_cursor_ + k) % victims_.size()];
    // Reading a remote ready ring is a cross-core cache probe, paid even when it
    // comes back empty — spinning thieves are not free.
    cpu_.Work(cost.steal_probe_ns);
    cpu_.Count(Counter::kStealAttempts);
    if (victim.libos_->ready_size() < cfg_.steal_threshold) {
      cpu_.Count(Counter::kStealAborts);
      continue;
    }
    // One cross-core kick per batch: the victim's next poll sees its rings and
    // dirty lists mutated under it and must resynchronize.
    cpu_.Work(cost.ipi_wakeup_ns);
    std::size_t moved = 0;
    ReadyCompletion rc;
    while (moved < cfg_.steal_batch && victim.libos_->PopReady(&rc)) {
      // The completion record and its op slot migrate to this core's cache.
      cpu_.Work(cost.cacheline_transfer_ns);
      cpu_.Count(Counter::kCompletionsStolen);
      HandleCompletion(rc, &victim);
      ++moved;
    }
    victim_cursor_ = (victim_cursor_ + k + 1) % victims_.size();
    if (moved > 0) {
      return true;
    }
    cpu_.Count(Counter::kStealAborts);  // the ring held only stale hints
  }
  return false;
}

bool SmpWorker::Poll() {
  bool progress = false;
  if (accept_token_ != kInvalidQToken && libos_->stack().device_failed()) {
    // A dead bypass NIC can never deliver another connection; retire the armed
    // accept so no qtoken outlives the device (the no-hung-qtoken invariant).
    (void)libos_->CancelOp(accept_token_);
    accept_token_ = kInvalidQToken;
    progress = true;
  }
  if (!watched_done_.empty()) {
    watched_scratch_.swap(watched_done_);
    for (const QToken token : watched_scratch_) {
      progress |= HandleWatched(token);
    }
    watched_scratch_.clear();
  }
  std::size_t handled = 0;
  ReadyCompletion rc;
  while (handled < cfg_.consume_batch && libos_->PopReady(&rc)) {
    HandleCompletion(rc, this);
    ++handled;
    progress = true;
  }
  if (cfg_.steal && handled == 0 && pool_->size() > 1) {
    progress |= TrySteal();
  }
  return progress;
}

WorkerPool::WorkerPool(Simulation* sim, SimNic* nic, SmpConfig cfg)
    : cfg_(std::move(cfg)) {
  DEMI_CHECK(cfg_.workers >= 1);
  DEMI_CHECK(nic->config().num_queues >= cfg_.workers &&
             "one NIC queue pair per sharded worker");
  sim->ConfigureCores(cfg_.workers + 1);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.push_back(std::make_unique<SmpWorker>(this, sim, nic, w, cfg_));
  }
}

std::uint64_t WorkerPool::total_served() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) {
    n += w->served_;
  }
  return n;
}

std::uint64_t WorkerPool::total_stolen() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) {
    n += w->stolen_executed_;
  }
  return n;
}

std::uint64_t WorkerPool::total_accepted() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) {
    n += w->accepted_;
  }
  return n;
}

std::size_t WorkerPool::total_pending_ops() const {
  std::size_t n = 0;
  for (const auto& w : workers_) {
    n += w->libos_->pending_ops();
  }
  return n;
}

}  // namespace demi
