#include "src/core/libos.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/core/queue_ops.h"

namespace demi {

LibOS::LibOS(HostCpu* host, MemoryConfig mem_config)
    : host_(host), memory_(host, mem_config) {
  host_->sim().AddPoller(this);
}

LibOS::~LibOS() { host_->sim().RemovePoller(this); }

void LibOS::ChargeCall() {
  host_->Work(host_->cost().libos_call_ns);
  host_->Count(Counter::kLibosCalls);
}

QDesc LibOS::InstallQueue(std::unique_ptr<IoQueue> queue) {
  const QDesc qd = next_qd_++;
  qtable_[qd] = std::move(queue);
  return qd;
}

IoQueue* LibOS::GetQueue(QDesc qd) const {
  auto it = qtable_.find(qd);
  return it == qtable_.end() ? nullptr : it->second.get();
}

QToken LibOS::NewToken(QDesc qd, OpType type) {
  const std::size_t index = ops_.Acquire();
  OpSlot& slot = ops_[index];
  slot.qd = qd;
  slot.type = type;
  slot.state = OpState::kPending;
  slot.start_ns = host_->now();
  ++pending_count_;
  return static_cast<QToken>(ops_.generation(index)) << 32 | index;
}

void LibOS::ReleaseFailedToken(QToken token) {
  OpSlot* slot = FindSlot(token);
  if (slot == nullptr) {
    return;
  }
  if (slot->state == OpState::kPending) {
    --pending_count_;
  }
  ReleaseSlot(token);
}

void LibOS::PushReady(QToken token) {
  if (ready_ring_.Push(token)) {
    sim().metrics().RecordStat(SimStat::kReadyRingDepth, ready_ring_.size());
    return;
  }
  // Ring full. Most entries are usually stale (their results were already claimed
  // straight off the slot table by Wait/TakeResult), so compact in place; grow only
  // when the live completions genuinely outnumber the capacity.
  std::vector<QToken> live;
  live.reserve(ready_ring_.size() + 1);
  while (auto t = ready_ring_.Pop()) {
    const OpSlot* slot = FindSlot(*t);
    if (slot != nullptr && slot->state == OpState::kCompleted) {
      live.push_back(*t);
    }
  }
  live.push_back(token);
  if (live.size() >= ready_ring_.capacity()) {
    ready_ring_ = RingBuffer<QToken>(ready_ring_.capacity() * 2);
  }
  for (const QToken t : live) {
    const bool pushed = ready_ring_.Push(t);
    DEMI_CHECK(pushed);
  }
  sim().metrics().RecordStat(SimStat::kReadyRingDepth, ready_ring_.size());
}

void LibOS::CompleteOp(QToken token, QResult result) {
  OpSlot* slot = FindSlot(token);
  if (slot == nullptr) {
    return;  // stale token (released earlier); drop the result
  }
  if (slot->state == OpState::kAbandoned) {
    ReleaseSlot(token);  // cancelled earlier; the caller no longer wants this result
    return;
  }
  if (result.qd == kInvalidQDesc) {
    result.qd = slot->qd;
  }
  if (slot->state == OpState::kCompleted) {
    slot->result = std::move(result);  // double completion: last one wins (as before)
    return;
  }
  --pending_count_;
  slot->state = OpState::kCompleted;
  slot->done_seq = ++done_seq_counter_;
  slot->result = std::move(result);
  MetricsRegistry& metrics = sim().metrics();
  if (metrics.enabled()) {
    if (op_hists_ == nullptr) {
      op_hists_ = metrics.OpLatencyHandle(name());
    }
    metrics.RecordOpLatency(op_hists_, static_cast<OpKind>(slot->type),
                            host_->now() - slot->start_ns);
  }
  if (slot->watcher != nullptr) {
    CompletionWatcher* watcher = slot->watcher;
    slot->watcher = nullptr;
    watcher->OnTokenComplete(token, slot->qd);
  } else {
    // The observer may start new operations, which can grow the slot table and
    // invalidate `slot` — copy what it needs first and touch nothing after.
    const QDesc done_qd = slot->qd;
    const OpType done_type = slot->type;
    const bool done_ok = slot->result.status.ok();
    PushReady(token);
    if (ready_observer_) {
      ready_observer_(token, done_qd, done_type, done_ok);
    }
  }
}

// --- control path: network ---

Result<QDesc> LibOS::Socket() {
  ChargeCall();
  auto queue = NewSocketQueue();
  RETURN_IF_ERROR(queue.status());
  return InstallQueue(std::move(*queue));
}

Status LibOS::Bind(QDesc qd, std::uint16_t port) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("bind");
  }
  return q->Bind(port);
}

Status LibOS::Listen(QDesc qd) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("listen");
  }
  return q->Listen();
}

Result<QDesc> LibOS::Accept(QDesc qd) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("accept");
  }
  auto accepted = q->TryAccept();
  RETURN_IF_ERROR(accepted.status());
  return InstallQueue(std::move(*accepted));
}

Result<QToken> LibOS::AcceptAsync(QDesc qd) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("accept");
  }
  const QToken token = NewToken(qd, OpType::kAccept);
  FindSlot(token)->control = true;
  control_tokens_.push_back(token);
  return token;
}

Status LibOS::Connect(QDesc qd, Endpoint remote) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("connect");
  }
  return q->StartConnect(remote);
}

Result<QToken> LibOS::ConnectAsync(QDesc qd, Endpoint remote) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("connect");
  }
  RETURN_IF_ERROR(q->StartConnect(remote));
  const QToken token = NewToken(qd, OpType::kConnect);
  FindSlot(token)->control = true;
  control_tokens_.push_back(token);
  return token;
}

Status LibOS::Close(QDesc qd) {
  ChargeCall();
  auto it = qtable_.find(qd);
  if (it == qtable_.end()) {
    return BadDescriptor("close");
  }
  const Status status = it->second->Close();
  if (it->second->dirty_listed) {
    std::erase(dirty_queues_, it->second.get());
  }
  qtable_.erase(it);
  // Cancel splices touching this queue.
  std::erase_if(splices_, [qd](const Splice& s) { return s.in == qd || s.out == qd; });
  return status;
}

// --- control path: files ---

Result<QDesc> LibOS::Open(const std::string& path) {
  ChargeCall();
  auto queue = NewFileQueue(path, /*create=*/false);
  RETURN_IF_ERROR(queue.status());
  return InstallQueue(std::move(*queue));
}

Result<QDesc> LibOS::Creat(const std::string& path) {
  ChargeCall();
  auto queue = NewFileQueue(path, /*create=*/true);
  RETURN_IF_ERROR(queue.status());
  return InstallQueue(std::move(*queue));
}

// --- control path: queue calls ---

Result<QDesc> LibOS::QueueCreate() {
  ChargeCall();
  return InstallQueue(std::make_unique<MemoryQueue>(host_));
}

Result<QDesc> LibOS::Merge(QDesc qd1, QDesc qd2) {
  ChargeCall();
  if (GetQueue(qd1) == nullptr || GetQueue(qd2) == nullptr) {
    return BadDescriptor("merge");
  }
  return InstallQueue(std::make_unique<MergeQueue>(this, qd1, qd2));
}

Result<QDesc> LibOS::Filter(QDesc qd, ElementPredicate pred) {
  ChargeCall();
  IoQueue* inner = GetQueue(qd);
  if (inner == nullptr) {
    return BadDescriptor("filter");
  }
  // §4.3: libOSes always implement filters directly on supported devices but default
  // to the CPU if necessary.
  bool offloaded = false;
  if (inner->SupportsFilterOffload()) {
    offloaded = inner->InstallOffloadFilter(pred).ok();
  }
  return InstallQueue(std::make_unique<FilterQueue>(this, qd, std::move(pred), offloaded));
}

Result<QDesc> LibOS::Sort(QDesc qd, ElementComparator cmp) {
  ChargeCall();
  if (GetQueue(qd) == nullptr) {
    return BadDescriptor("sort");
  }
  return InstallQueue(std::make_unique<SortQueue>(this, qd, std::move(cmp)));
}

Result<QDesc> LibOS::MapQueue(QDesc qd, ElementTransform transform) {
  ChargeCall();
  if (GetQueue(qd) == nullptr) {
    return BadDescriptor("map");
  }
  return InstallQueue(std::make_unique<MapQueueImpl>(this, qd, std::move(transform)));
}

Status LibOS::QConnect(QDesc qdin, QDesc qdout) {
  ChargeCall();
  if (GetQueue(qdin) == nullptr || GetQueue(qdout) == nullptr) {
    return BadDescriptor("qconnect");
  }
  splices_.push_back(Splice{qdin, qdout});
  return OkStatus();
}

// --- data path ---

Result<QToken> LibOS::Push(QDesc qd, const SgArray& sga) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("push");
  }
  const QToken token = NewToken(qd, OpType::kPush);
  const Status status = q->StartPush(token, sga);
  if (!status.ok()) {
    ReleaseFailedToken(token);
    return status;
  }
  return token;
}

Result<QToken> LibOS::Pop(QDesc qd) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("pop");
  }
  const QToken token = NewToken(qd, OpType::kPop);
  const Status status = q->StartPop(token);
  if (!status.ok()) {
    ReleaseFailedToken(token);
    return status;
  }
  return token;
}

bool LibOS::OpDone(QToken token) const {
  const OpSlot* slot = FindSlot(token);
  return slot != nullptr && slot->state == OpState::kCompleted;
}

Result<QResult> LibOS::TakeResult(QToken token) {
  auto r = TakeResultInternal(token);
  if (r.ok()) {
    // §4.4 benefit (1): wait returns the data itself; count the single wakeup.
    host_->Count(Counter::kWakeups);
  }
  return r;
}

bool LibOS::PopReady(ReadyCompletion* out) {
  while (auto t = ready_ring_.Pop()) {
    OpSlot* slot = FindSlot(*t);
    if (slot == nullptr || slot->state != OpState::kCompleted) {
      continue;  // stale hint: already claimed off the slot table
    }
    out->token = *t;
    out->qd = slot->qd;
    out->op = slot->type;
    out->result = std::move(slot->result);
    ReleaseSlot(*t);
    return true;
  }
  return false;
}

Result<QResult> LibOS::TakeResultInternal(QToken token) {
  OpSlot* slot = FindSlot(token);
  if (slot == nullptr || slot->state == OpState::kAbandoned) {
    return BadDescriptor("unknown qtoken");
  }
  if (slot->state == OpState::kPending) {
    return WouldBlock();
  }
  QResult out = std::move(slot->result);
  ReleaseSlot(token);
  return out;
}

Result<QResult> LibOS::Wait(QToken token, TimeNs timeout) {
  ChargeCall();
  const TimeNs deadline = timeout < 0 ? INT64_MAX : sim().now() + timeout;
  while (true) {
    auto r = TakeResult(token);
    if (r.ok() || r.code() != ErrorCode::kWouldBlock) {
      return r;
    }
    if (sim().now() > deadline) {
      return TimedOut("wait");
    }
    if (!sim().StepOnce()) {
      return TimedOut("simulation idle; operation can never complete");
    }
  }
}

Result<std::pair<std::size_t, QResult>> LibOS::WaitAny(std::span<const QToken> tokens,
                                                       TimeNs timeout) {
  ChargeCall();
  const TimeNs deadline = timeout < 0 ? INT64_MAX : sim().now() + timeout;
  // One initial scan: if anything already completed, take the *earliest* completion
  // (done_seq order = FIFO fairness across tokens that finished before this call).
  std::size_t best = tokens.size();
  std::uint64_t best_seq = UINT64_MAX;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const OpSlot* slot = FindSlot(tokens[i]);
    if (slot != nullptr && slot->state == OpState::kCompleted && slot->done_seq < best_seq) {
      best = i;
      best_seq = slot->done_seq;
    }
  }
  if (best < tokens.size()) {
    auto r = TakeResult(tokens[best]);
    RETURN_IF_ERROR(r.status());
    return std::make_pair(best, std::move(*r));
  }
  // Ring-driven wait: map token -> position once, then consume completions in the
  // order the ready ring delivers them — O(1) per simulation step instead of O(k).
  std::unordered_map<QToken, std::size_t> want;
  want.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    want.emplace(tokens[i], i);
  }
  while (true) {
    if (sim().now() > deadline) {
      return TimedOut("wait_any");
    }
    if (!sim().StepOnce()) {
      return TimedOut("simulation idle; no operation can complete");
    }
    while (auto t = ready_ring_.Pop()) {
      const OpSlot* slot = FindSlot(*t);
      if (slot == nullptr || slot->state != OpState::kCompleted) {
        continue;  // stale hint: already claimed off the slot table
      }
      auto it = want.find(*t);
      if (it == want.end()) {
        continue;  // someone else's completion; its slot still holds the result
      }
      auto r = TakeResult(*t);
      RETURN_IF_ERROR(r.status());
      return std::make_pair(it->second, std::move(*r));
    }
  }
}

Result<std::vector<QResult>> LibOS::WaitAll(std::span<const QToken> tokens,
                                            TimeNs timeout) {
  ChargeCall();
  // Validate every token before consuming anything: a bad token mid-list fails the
  // whole call up front, leaving the other tokens' results claimable instead of
  // consuming (and then discarding) a partial sweep.
  for (const QToken t : tokens) {
    const OpSlot* slot = FindSlot(t);
    if (slot == nullptr || slot->state == OpState::kAbandoned) {
      return BadDescriptor("unknown qtoken");
    }
  }
  std::vector<QResult> out(tokens.size());
  std::vector<bool> done(tokens.size(), false);
  std::size_t remaining = tokens.size();
  std::unordered_map<QToken, std::size_t> want;
  want.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (done[i]) {
      continue;
    }
    if (OpDone(tokens[i])) {
      auto r = TakeResult(tokens[i]);
      RETURN_IF_ERROR(r.status());
      out[i] = std::move(*r);
      done[i] = true;
      --remaining;
    } else {
      want.emplace(tokens[i], i);
    }
  }
  const TimeNs deadline = timeout < 0 ? INT64_MAX : sim().now() + timeout;
  while (remaining > 0) {
    if (sim().now() > deadline) {
      return TimedOut("wait_all");
    }
    if (!sim().StepOnce()) {
      return TimedOut("simulation idle");
    }
    while (auto t = ready_ring_.Pop()) {
      const OpSlot* slot = FindSlot(*t);
      if (slot == nullptr || slot->state != OpState::kCompleted) {
        continue;  // stale hint
      }
      auto it = want.find(*t);
      if (it == want.end() || done[it->second]) {
        continue;
      }
      auto r = TakeResult(*t);
      RETURN_IF_ERROR(r.status());
      out[it->second] = std::move(*r);
      done[it->second] = true;
      --remaining;
      if (remaining == 0) {
        break;
      }
    }
  }
  return out;
}

Result<QResult> LibOS::BlockingPush(QDesc qd, const SgArray& sga, TimeNs timeout) {
  auto token = Push(qd, sga);
  RETURN_IF_ERROR(token.status());
  return WaitBounded(*token, timeout);
}

Result<QResult> LibOS::BlockingPop(QDesc qd, TimeNs timeout) {
  auto token = Pop(qd);
  RETURN_IF_ERROR(token.status());
  return WaitBounded(*token, timeout);
}

Result<QResult> LibOS::WaitBounded(QToken token, TimeNs timeout) {
  auto r = Wait(token, timeout);
  if (r.code() != ErrorCode::kTimedOut) {
    return r;
  }
  // The deadline fired mid-operation (possibly mid-failover). The op may have
  // completed on the very step that hit the deadline; give it one last look, then
  // cancel so the qtoken is never left hanging.
  auto last = TakeResult(token);
  if (last.ok()) {
    return last;
  }
  (void)CancelOp(token);
  return r;
}

Status LibOS::CancelOp(QToken token) {
  OpSlot* slot = FindSlot(token);
  if (slot == nullptr || slot->state == OpState::kAbandoned) {
    return NotFound("unknown qtoken");
  }
  if (slot->state == OpState::kCompleted) {
    ReleaseSlot(token);  // result arrived but was never claimed; drop it
    return OkStatus();
  }
  --pending_count_;
  if (slot->control) {
    // PollControlOps skips dead tokens and lazily compacts control_tokens_.
    ReleaseSlot(token);
    return OkStatus();
  }
  IoQueue* q = GetQueue(slot->qd);
  if (q == nullptr || !q->Cancel(token).ok()) {
    // The queue cannot un-register the op; swallow its completion instead.
    slot->state = OpState::kAbandoned;
    slot->watcher = nullptr;
  } else {
    ReleaseSlot(token);
  }
  return OkStatus();
}

Status LibOS::WatchToken(QToken token, CompletionWatcher* watcher) {
  OpSlot* slot = FindSlot(token);
  if (slot == nullptr || slot->state == OpState::kAbandoned) {
    return NotFound("unknown qtoken");
  }
  if (slot->state == OpState::kCompleted) {
    // Already done: deliver now; the result stays parked until TakeResult.
    watcher->OnTokenComplete(token, slot->qd);
    return OkStatus();
  }
  slot->watcher = watcher;
  return OkStatus();
}

void LibOS::UnwatchToken(QToken token) {
  OpSlot* slot = FindSlot(token);
  if (slot != nullptr && slot->state == OpState::kPending) {
    slot->watcher = nullptr;
  }
}

SgArray LibOS::SgaAlloc(std::size_t bytes) {
  ChargeCall();
  return memory_.AllocateSga(bytes);
}

// --- polling ---

bool LibOS::PollControlOps() {
  bool progress = false;
  for (std::size_t i = 0; i < control_tokens_.size();) {
    const QToken token = control_tokens_[i];
    const OpSlot* slot = FindSlot(token);
    if (slot == nullptr || slot->state != OpState::kPending) {
      // Cancelled or otherwise retired; compact lazily.
      control_tokens_[i] = control_tokens_.back();
      control_tokens_.pop_back();
      continue;
    }
    const QDesc qd = slot->qd;
    const OpType type = slot->type;
    IoQueue* q = GetQueue(qd);
    QResult res;
    res.op = type;
    res.qd = qd;
    bool finished = false;
    if (q == nullptr) {
      res.status = Cancelled("queue closed");
      finished = true;
    } else if (type == OpType::kAccept) {
      auto accepted = q->TryAccept();
      if (accepted.ok()) {
        res.new_qd = InstallQueue(std::move(*accepted));
        finished = true;
      } else if (accepted.code() != ErrorCode::kWouldBlock) {
        res.status = accepted.status();
        finished = true;
      }
    } else if (type == OpType::kConnect) {
      const Status status = q->ConnectStatus();
      if (status.code() != ErrorCode::kWouldBlock) {
        res.status = status;
        finished = true;
      }
    }
    if (finished) {
      CompleteOp(token, std::move(res));
      control_tokens_[i] = control_tokens_.back();
      control_tokens_.pop_back();
      progress = true;
    } else {
      ++i;
    }
  }
  return progress;
}

bool LibOS::PollSplices() {
  bool progress = false;
  for (Splice& s : splices_) {
    // Wait out an in-flight push before popping more (per-splice ordering).
    if (s.push_token != kInvalidQToken) {
      if (!OpDone(s.push_token)) {
        continue;
      }
      (void)TakeResultInternal(s.push_token);
      s.push_token = kInvalidQToken;
      progress = true;
    }
    if (s.pop_token == kInvalidQToken) {
      auto token = Pop(s.in);
      if (token.ok()) {
        s.pop_token = *token;
      }
      continue;
    }
    if (OpDone(s.pop_token)) {
      auto r = TakeResultInternal(s.pop_token);
      s.pop_token = kInvalidQToken;
      progress = true;
      if (r.ok() && r->status.ok()) {
        auto push = Push(s.out, r->sga);
        if (push.ok()) {
          s.push_token = *push;
        }
      }
    }
  }
  return progress;
}

void LibOS::MarkDirty(IoQueue* queue) {
  if (!sparse_polling_ || queue == nullptr || queue->dirty_listed) {
    return;
  }
  queue->dirty_listed = true;
  dirty_queues_.push_back(queue);
}

void LibOS::MarkAllDirty() {
  if (!sparse_polling_) {
    return;
  }
  for (auto& [qd, q] : qtable_) {
    MarkDirty(q.get());
  }
}

bool LibOS::Poll() {
  bool progress = false;
  if (sparse_polling_) {
    // Visit only dirty queues; a queue leaves the set when a visit yields nothing
    // AND it reports quiescence, so stalled work (full TX window, pending pops) keeps
    // its queue in the set. Progress may MarkDirty other queues mid-loop — the index
    // loop picks appended entries up this same poll.
    for (std::size_t i = 0; i < dirty_queues_.size();) {
      IoQueue* q = dirty_queues_[i];
      const bool did = q->Progress(*this);
      progress |= did;
      if (!did && q->Quiescent()) {
        q->dirty_listed = false;
        dirty_queues_[i] = dirty_queues_.back();
        dirty_queues_.pop_back();
      } else {
        ++i;
      }
    }
  } else {
    // Iterate a snapshot: Progress may install queues (not expected, but combinators
    // issue internal ops through the libOS which can mutate tables). The scratch
    // vector is a member so steady-state polling does not allocate.
    poll_scratch_.clear();
    poll_scratch_.reserve(qtable_.size());
    for (auto& [qd, q] : qtable_) {
      poll_scratch_.push_back(q.get());
    }
    for (IoQueue* q : poll_scratch_) {
      progress |= q->Progress(*this);
    }
  }
  progress |= PollDevice();
  progress |= PollControlOps();
  progress |= PollSplices();
  return progress;
}

}  // namespace demi
