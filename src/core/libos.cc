#include "src/core/libos.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/core/queue_ops.h"

namespace demi {

LibOS::LibOS(HostCpu* host, MemoryConfig mem_config)
    : host_(host), memory_(host, mem_config) {
  host_->sim().AddPoller(this);
}

LibOS::~LibOS() { host_->sim().RemovePoller(this); }

void LibOS::ChargeCall() {
  host_->Work(host_->cost().libos_call_ns);
  host_->Count(Counter::kLibosCalls);
}

QDesc LibOS::InstallQueue(std::unique_ptr<IoQueue> queue) {
  const QDesc qd = next_qd_++;
  qtable_[qd] = std::move(queue);
  return qd;
}

IoQueue* LibOS::GetQueue(QDesc qd) const {
  auto it = qtable_.find(qd);
  return it == qtable_.end() ? nullptr : it->second.get();
}

QToken LibOS::NewToken(QDesc qd, OpType type) {
  const QToken token = next_token_++;
  token_qd_[token] = qd;
  (void)type;
  return token;
}

void LibOS::CompleteOp(QToken token, QResult result) {
  if (abandoned_.erase(token) > 0) {
    return;  // cancelled earlier; the caller no longer wants this result
  }
  auto it = token_qd_.find(token);
  if (it != token_qd_.end()) {
    if (result.qd == kInvalidQDesc) {
      result.qd = it->second;
    }
    token_qd_.erase(it);
  }
  completed_[token] = std::move(result);
}

// --- control path: network ---

Result<QDesc> LibOS::Socket() {
  ChargeCall();
  auto queue = NewSocketQueue();
  RETURN_IF_ERROR(queue.status());
  return InstallQueue(std::move(*queue));
}

Status LibOS::Bind(QDesc qd, std::uint16_t port) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("bind");
  }
  return q->Bind(port);
}

Status LibOS::Listen(QDesc qd) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("listen");
  }
  return q->Listen();
}

Result<QDesc> LibOS::Accept(QDesc qd) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("accept");
  }
  auto accepted = q->TryAccept();
  RETURN_IF_ERROR(accepted.status());
  return InstallQueue(std::move(*accepted));
}

Result<QToken> LibOS::AcceptAsync(QDesc qd) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("accept");
  }
  const QToken token = NewToken(qd, OpType::kAccept);
  control_ops_[token] = ControlOp{OpType::kAccept, qd};
  return token;
}

Status LibOS::Connect(QDesc qd, Endpoint remote) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("connect");
  }
  return q->StartConnect(remote);
}

Result<QToken> LibOS::ConnectAsync(QDesc qd, Endpoint remote) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("connect");
  }
  RETURN_IF_ERROR(q->StartConnect(remote));
  const QToken token = NewToken(qd, OpType::kConnect);
  control_ops_[token] = ControlOp{OpType::kConnect, qd};
  return token;
}

Status LibOS::Close(QDesc qd) {
  ChargeCall();
  auto it = qtable_.find(qd);
  if (it == qtable_.end()) {
    return BadDescriptor("close");
  }
  const Status status = it->second->Close();
  qtable_.erase(it);
  // Cancel splices touching this queue.
  std::erase_if(splices_, [qd](const Splice& s) { return s.in == qd || s.out == qd; });
  return status;
}

// --- control path: files ---

Result<QDesc> LibOS::Open(const std::string& path) {
  ChargeCall();
  auto queue = NewFileQueue(path, /*create=*/false);
  RETURN_IF_ERROR(queue.status());
  return InstallQueue(std::move(*queue));
}

Result<QDesc> LibOS::Creat(const std::string& path) {
  ChargeCall();
  auto queue = NewFileQueue(path, /*create=*/true);
  RETURN_IF_ERROR(queue.status());
  return InstallQueue(std::move(*queue));
}

// --- control path: queue calls ---

Result<QDesc> LibOS::QueueCreate() {
  ChargeCall();
  return InstallQueue(std::make_unique<MemoryQueue>(host_));
}

Result<QDesc> LibOS::Merge(QDesc qd1, QDesc qd2) {
  ChargeCall();
  if (GetQueue(qd1) == nullptr || GetQueue(qd2) == nullptr) {
    return BadDescriptor("merge");
  }
  return InstallQueue(std::make_unique<MergeQueue>(this, qd1, qd2));
}

Result<QDesc> LibOS::Filter(QDesc qd, ElementPredicate pred) {
  ChargeCall();
  IoQueue* inner = GetQueue(qd);
  if (inner == nullptr) {
    return BadDescriptor("filter");
  }
  // §4.3: libOSes always implement filters directly on supported devices but default
  // to the CPU if necessary.
  bool offloaded = false;
  if (inner->SupportsFilterOffload()) {
    offloaded = inner->InstallOffloadFilter(pred).ok();
  }
  return InstallQueue(std::make_unique<FilterQueue>(this, qd, std::move(pred), offloaded));
}

Result<QDesc> LibOS::Sort(QDesc qd, ElementComparator cmp) {
  ChargeCall();
  if (GetQueue(qd) == nullptr) {
    return BadDescriptor("sort");
  }
  return InstallQueue(std::make_unique<SortQueue>(this, qd, std::move(cmp)));
}

Result<QDesc> LibOS::MapQueue(QDesc qd, ElementTransform transform) {
  ChargeCall();
  if (GetQueue(qd) == nullptr) {
    return BadDescriptor("map");
  }
  return InstallQueue(std::make_unique<MapQueueImpl>(this, qd, std::move(transform)));
}

Status LibOS::QConnect(QDesc qdin, QDesc qdout) {
  ChargeCall();
  if (GetQueue(qdin) == nullptr || GetQueue(qdout) == nullptr) {
    return BadDescriptor("qconnect");
  }
  splices_.push_back(Splice{qdin, qdout});
  return OkStatus();
}

// --- data path ---

Result<QToken> LibOS::Push(QDesc qd, const SgArray& sga) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("push");
  }
  const QToken token = NewToken(qd, OpType::kPush);
  const Status status = q->StartPush(token, sga);
  if (!status.ok()) {
    token_qd_.erase(token);
    return status;
  }
  return token;
}

Result<QToken> LibOS::Pop(QDesc qd) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("pop");
  }
  const QToken token = NewToken(qd, OpType::kPop);
  const Status status = q->StartPop(token);
  if (!status.ok()) {
    token_qd_.erase(token);
    return status;
  }
  return token;
}

bool LibOS::OpDone(QToken token) const { return completed_.contains(token); }

Result<QResult> LibOS::TakeResult(QToken token) {
  auto r = TakeResultInternal(token);
  if (r.ok()) {
    // §4.4 benefit (1): wait returns the data itself; count the single wakeup.
    host_->Count(Counter::kWakeups);
  }
  return r;
}

Result<QResult> LibOS::TakeResultInternal(QToken token) {
  auto it = completed_.find(token);
  if (it == completed_.end()) {
    if (!token_qd_.contains(token) && !control_ops_.contains(token)) {
      return BadDescriptor("unknown qtoken");
    }
    return WouldBlock();
  }
  QResult out = std::move(it->second);
  completed_.erase(it);
  return out;
}

Result<QResult> LibOS::Wait(QToken token, TimeNs timeout) {
  ChargeCall();
  const TimeNs deadline = timeout < 0 ? INT64_MAX : sim().now() + timeout;
  while (true) {
    auto r = TakeResult(token);
    if (r.ok() || r.code() != ErrorCode::kWouldBlock) {
      return r;
    }
    if (sim().now() > deadline) {
      return TimedOut("wait");
    }
    if (!sim().StepOnce()) {
      return TimedOut("simulation idle; operation can never complete");
    }
  }
}

Result<std::pair<std::size_t, QResult>> LibOS::WaitAny(std::span<const QToken> tokens,
                                                       TimeNs timeout) {
  ChargeCall();
  const TimeNs deadline = timeout < 0 ? INT64_MAX : sim().now() + timeout;
  while (true) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (OpDone(tokens[i])) {
        auto r = TakeResult(tokens[i]);
        RETURN_IF_ERROR(r.status());
        return std::make_pair(i, std::move(*r));
      }
    }
    if (sim().now() > deadline) {
      return TimedOut("wait_any");
    }
    if (!sim().StepOnce()) {
      return TimedOut("simulation idle; no operation can complete");
    }
  }
}

Result<std::vector<QResult>> LibOS::WaitAll(std::span<const QToken> tokens,
                                            TimeNs timeout) {
  ChargeCall();
  std::vector<QResult> out(tokens.size());
  std::vector<bool> done(tokens.size(), false);
  const TimeNs deadline = timeout < 0 ? INT64_MAX : sim().now() + timeout;
  std::size_t remaining = tokens.size();
  while (remaining > 0) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (!done[i] && OpDone(tokens[i])) {
        auto r = TakeResult(tokens[i]);
        RETURN_IF_ERROR(r.status());
        out[i] = std::move(*r);
        done[i] = true;
        --remaining;
      }
    }
    if (remaining == 0) {
      break;
    }
    if (sim().now() > deadline) {
      return TimedOut("wait_all");
    }
    if (!sim().StepOnce()) {
      return TimedOut("simulation idle");
    }
  }
  return out;
}

Result<QResult> LibOS::BlockingPush(QDesc qd, const SgArray& sga, TimeNs timeout) {
  auto token = Push(qd, sga);
  RETURN_IF_ERROR(token.status());
  return WaitBounded(*token, timeout);
}

Result<QResult> LibOS::BlockingPop(QDesc qd, TimeNs timeout) {
  auto token = Pop(qd);
  RETURN_IF_ERROR(token.status());
  return WaitBounded(*token, timeout);
}

Result<QResult> LibOS::WaitBounded(QToken token, TimeNs timeout) {
  auto r = Wait(token, timeout);
  if (r.code() != ErrorCode::kTimedOut) {
    return r;
  }
  // The deadline fired mid-operation (possibly mid-failover). The op may have
  // completed on the very step that hit the deadline; give it one last look, then
  // cancel so the qtoken is never left hanging.
  auto last = TakeResult(token);
  if (last.ok()) {
    return last;
  }
  (void)CancelOp(token);
  return r;
}

Status LibOS::CancelOp(QToken token) {
  if (completed_.erase(token) > 0) {
    return OkStatus();  // result arrived but was never claimed; drop it
  }
  if (auto it = token_qd_.find(token); it != token_qd_.end()) {
    IoQueue* q = GetQueue(it->second);
    token_qd_.erase(it);
    if (q == nullptr || !q->Cancel(token).ok()) {
      // The queue cannot un-register the op; swallow its completion instead.
      abandoned_.insert(token);
    }
    return OkStatus();
  }
  if (control_ops_.erase(token) > 0) {
    return OkStatus();
  }
  return NotFound("unknown qtoken");
}

SgArray LibOS::SgaAlloc(std::size_t bytes) {
  ChargeCall();
  return memory_.AllocateSga(bytes);
}

// --- polling ---

bool LibOS::PollControlOps() {
  bool progress = false;
  for (auto it = control_ops_.begin(); it != control_ops_.end();) {
    const QToken token = it->first;
    const ControlOp& op = it->second;
    IoQueue* q = GetQueue(op.qd);
    if (q == nullptr) {
      QResult res;
      res.op = op.type;
      res.qd = op.qd;
      res.status = Cancelled("queue closed");
      CompleteOp(token, std::move(res));
      it = control_ops_.erase(it);
      progress = true;
      continue;
    }
    if (op.type == OpType::kAccept) {
      auto accepted = q->TryAccept();
      if (accepted.ok()) {
        QResult res;
        res.op = OpType::kAccept;
        res.qd = op.qd;
        res.new_qd = InstallQueue(std::move(*accepted));
        CompleteOp(token, std::move(res));
        it = control_ops_.erase(it);
        progress = true;
        continue;
      }
      if (accepted.code() != ErrorCode::kWouldBlock) {
        QResult res;
        res.op = OpType::kAccept;
        res.qd = op.qd;
        res.status = accepted.status();
        CompleteOp(token, std::move(res));
        it = control_ops_.erase(it);
        progress = true;
        continue;
      }
    } else if (op.type == OpType::kConnect) {
      const Status status = q->ConnectStatus();
      if (status.code() != ErrorCode::kWouldBlock) {
        QResult res;
        res.op = OpType::kConnect;
        res.qd = op.qd;
        res.status = status;
        CompleteOp(token, std::move(res));
        it = control_ops_.erase(it);
        progress = true;
        continue;
      }
    }
    ++it;
  }
  return progress;
}

bool LibOS::PollSplices() {
  bool progress = false;
  for (Splice& s : splices_) {
    // Wait out an in-flight push before popping more (per-splice ordering).
    if (s.push_token != kInvalidQToken) {
      if (!OpDone(s.push_token)) {
        continue;
      }
      (void)TakeResultInternal(s.push_token);
      s.push_token = kInvalidQToken;
      progress = true;
    }
    if (s.pop_token == kInvalidQToken) {
      auto token = Pop(s.in);
      if (token.ok()) {
        s.pop_token = *token;
      }
      continue;
    }
    if (OpDone(s.pop_token)) {
      auto r = TakeResultInternal(s.pop_token);
      s.pop_token = kInvalidQToken;
      progress = true;
      if (r.ok() && r->status.ok()) {
        auto push = Push(s.out, r->sga);
        if (push.ok()) {
          s.push_token = *push;
        }
      }
    }
  }
  return progress;
}

bool LibOS::Poll() {
  bool progress = false;
  // Iterate a snapshot: Progress may install queues (not expected, but combinators
  // issue internal ops through the libOS which can mutate tables).
  std::vector<IoQueue*> queues;
  queues.reserve(qtable_.size());
  for (auto& [qd, q] : qtable_) {
    queues.push_back(q.get());
  }
  for (IoQueue* q : queues) {
    progress |= q->Progress(*this);
  }
  progress |= PollDevice();
  progress |= PollControlOps();
  progress |= PollSplices();
  return progress;
}

}  // namespace demi
