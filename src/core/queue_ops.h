// Combinator queues of §4.2/§4.3: queue(), merge, filter, sort, and map.
//
// Applications combine these to express I/O processing pipelines; the libOS runs each
// stage on the CPU unless the underlying device can take it (filter offload is plumbed
// through IoQueue::SupportsFilterOffload/InstallOffloadFilter; see the Catnip UDP
// queue and bench_c6_offload).
//
// Combinators reference their inner queues by descriptor and drive them through the
// owning LibOS with *internal* tokens, so user-visible wakeup accounting stays exact.

#ifndef SRC_CORE_QUEUE_OPS_H_
#define SRC_CORE_QUEUE_OPS_H_

#include <deque>
#include <vector>

#include "src/core/libos.h"
#include "src/core/queue.h"

namespace demi {

// queue(): an in-memory FIFO of atomic units. Pushes complete immediately; pops
// complete when an element is available.
class MemoryQueue final : public IoQueue {
 public:
  explicit MemoryQueue(HostCpu* host) : host_(host) {}

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;
  Status Close() override;

  std::size_t depth() const { return elements_.size(); }

 private:
  HostCpu* host_;
  bool closed_ = false;
  std::deque<SgArray> elements_;
  std::deque<QToken> pending_pops_;
  std::deque<std::pair<QToken, QResult>> ready_;  // completions to flush
};

// Base for combinators that wrap inner queues via the owning libOS.
class CombinatorQueue : public IoQueue {
 public:
  CombinatorQueue(LibOS* libos, QDesc inner) : libos_(libos), inner_(inner) {}
  Status Close() override;

 protected:
  // Ensures one internal pop is outstanding on `qd`; returns the completed result if
  // one arrived (consuming the token).
  struct InnerPop {
    QToken token = kInvalidQToken;
  };
  std::optional<QResult> PumpInnerPop(QDesc qd, InnerPop& state);

  LibOS* libos_;
  QDesc inner_;
  bool closed_ = false;
};

// merge(q1, q2): pops surface elements from either inner queue (arrival order);
// pushes go to both.
class MergeQueue final : public CombinatorQueue {
 public:
  MergeQueue(LibOS* libos, QDesc inner1, QDesc inner2)
      : CombinatorQueue(libos, inner1), inner2_(inner2) {}

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;

 private:
  QDesc inner2_;
  InnerPop pop1_, pop2_;
  std::deque<SgArray> buffered_;
  std::deque<QToken> pending_pops_;
  std::deque<std::pair<QToken, QResult>> ready_;
  // Outstanding double-pushes: user token -> the two inner push tokens.
  struct DualPush {
    QToken user;
    QToken a, b;
  };
  std::vector<DualPush> pushes_;
};

// filter(q, pred): pops deliver only elements passing `pred`; pushes forward only
// passing elements. When `offloaded`, the device already dropped failing elements on
// the pop path and the CPU pays nothing (§4.3).
class FilterQueue final : public CombinatorQueue {
 public:
  FilterQueue(LibOS* libos, QDesc inner, ElementPredicate pred, bool offloaded)
      : CombinatorQueue(libos, inner), pred_(std::move(pred)), offloaded_(offloaded) {}

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;
  bool offloaded() const { return offloaded_; }
  std::uint64_t dropped_on_cpu() const { return dropped_on_cpu_; }

 private:
  ElementPredicate pred_;
  bool offloaded_;
  InnerPop pop_;
  std::deque<QToken> pending_pops_;
  std::deque<std::pair<QToken, QResult>> ready_;
  struct ForwardPush {
    QToken user;
    QToken inner_token;
  };
  std::vector<ForwardPush> pushes_;
  std::uint64_t dropped_on_cpu_ = 0;
};

// sort(q, cmp): maintains a priority buffer; pops return the highest-priority element
// among everything pushed into it or drained from the inner queue (§4.2: useful for
// application-specific priorities).
class SortQueue final : public CombinatorQueue {
 public:
  SortQueue(LibOS* libos, QDesc inner, ElementComparator cmp)
      : CombinatorQueue(libos, inner), cmp_(std::move(cmp)) {}

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;
  std::size_t depth() const { return buffered_.size(); }

 private:
  void InsertSorted(SgArray sga);

  ElementComparator cmp_;
  InnerPop pop_;
  std::vector<SgArray> buffered_;  // kept sorted, highest priority at the back
  std::deque<QToken> pending_pops_;
  std::deque<std::pair<QToken, QResult>> ready_;
};

// map(q, fn): applies `fn` to every element on both directions.
class MapQueueImpl final : public CombinatorQueue {
 public:
  MapQueueImpl(LibOS* libos, QDesc inner, ElementTransform transform)
      : CombinatorQueue(libos, inner), transform_(std::move(transform)) {}

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;

 private:
  ElementTransform transform_;
  InnerPop pop_;
  std::deque<QToken> pending_pops_;
  std::deque<std::pair<QToken, QResult>> ready_;
  struct ForwardPush {
    QToken user;
    QToken inner_token;
  };
  std::vector<ForwardPush> pushes_;
};

}  // namespace demi

#endif  // SRC_CORE_QUEUE_OPS_H_
