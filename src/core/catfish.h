// Catfish: the SPDK-style storage library OS.
//
// File queues over a raw NVMe-class device with a custom, accelerator-friendly log
// layout — the "accelerator-specific storage layout" future work of §5.3:
//   - push(file_qd, sga) appends one record ([len][crc32c][payload]) to the file's
//     log and completes when the device write completes (durability == completion);
//   - pop(file_qd) replays records in append order, fetching blocks from the device
//     when they are not memory-resident (e.g. after close/reopen);
//   - the atomic-unit guarantee holds on storage exactly as on the network: an sga
//     pushed as one element pops as one element, CRC-verified.
//
// The catalog (path -> extent) is an in-memory superblock owned by the libOS; record
// data itself lives in the simulated device and survives queue close/reopen. Each
// libOS serves a single application (§5.3: no UNIX file system needed), so there are
// no permissions, directories, or sharing.

#ifndef SRC_CORE_CATFISH_H_
#define SRC_CORE_CATFISH_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/libos.h"
#include "src/core/recovery.h"
#include "src/hw/block_device.h"

namespace demi {

struct CatfishConfig {
  std::uint64_t extent_blocks = 4096;  // 16 MiB per file at 4 KiB blocks
  // When enabled, transient device errors (timeouts, media errors) are retried with
  // the policy's backoff/deadline before surfacing kRetryExhausted to the caller.
  RecoveryConfig recovery;
};

class CatfishLibOS final : public LibOS {
 public:
  CatfishLibOS(HostCpu* host, BlockDevice* bdev, CatfishConfig config = CatfishConfig{});

  std::string name() const override { return "catfish"; }
  BlockDevice& bdev() { return *bdev_; }

  struct FileMeta {
    std::uint64_t base_lba = 0;
    std::uint64_t extent_blocks = 0;
    std::uint64_t used_bytes = 0;  // bytes of log written so far
    std::uint64_t records = 0;
  };

  // Completion routing: the device CQ is shared; each command's continuation runs
  // when its completion arrives (guarded against the owning queue being gone).
  // Push-down chains deliver their payload and step count through the completion.
  using CompletionFn = std::function<void(const BlockCompletion&)>;
  std::uint64_t SubmitWrite(std::uint64_t lba, Buffer data, CompletionFn done);
  std::uint64_t SubmitRead(std::uint64_t lba, Buffer dest, CompletionFn done);
  // Submits a device-side push-down chain rooted at absolute `lba`. When recovery is
  // enabled, a transient mid-chain fault retries the WHOLE chain from the root — a
  // device-internal step is never retried in isolation, so retry semantics match the
  // read/write path exactly.
  std::uint64_t SubmitPushdown(std::uint64_t lba, PushdownProgramId program, Buffer arg,
                               CompletionFn done);
  std::size_t inflight_commands() const { return callbacks_.size(); }

  // --- push-down install/invoke API (§4.3 offload surface, DESIGN.md §14) ---

  // Extent geometry for `path` (base LBA, blocks); kNotFound when absent. Lets
  // workloads that lay out raw blocks inside a file's extent (e.g. the block index)
  // compute absolute device LBAs for device-side child pointers.
  Result<FileMeta> StatFile(const std::string& path) const;

  // Installs `prog` on the block device. kPushdownUnsupported when the device has no
  // program engine.
  Result<PushdownProgramId> InstallPushdownProgram(const PushdownProgram& prog);
  // Starts a push-down lookup on file queue `qd`, rooted at file-relative block
  // `root_block`; the returned qtoken completes (pop-like) with the program's final
  // value. Redeem with Wait/TakeResult like any other operation.
  Result<QToken> PushdownRead(QDesc qd, PushdownProgramId program,
                              std::uint64_t root_block, const SgArray& arg);

 protected:
  Result<std::unique_ptr<IoQueue>> NewSocketQueue() override {
    return Status(ErrorCode::kUnsupported, "catfish has no network device");
  }
  Result<std::unique_ptr<IoQueue>> NewFileQueue(const std::string& path,
                                                bool create) override;
  bool PollDevice() override;

 private:
  friend class CatfishFileQueue;

  enum class IoKind : std::uint8_t { kRead, kWrite, kPushdown };

  // One device command as the retry layer sees it: enough to resubmit from scratch.
  // For kPushdown, `buf` carries the program argument and the retry resubmits the
  // whole chain from the root LBA.
  struct IoCmd {
    IoKind kind = IoKind::kRead;
    std::uint64_t lba = 0;
    Buffer buf;
    PushdownProgramId program = kInvalidPushdownProgram;
  };

  // Common submit path: wraps `done` with the transient-error retry layer (when
  // recovery is enabled) before handing the command to the device.
  std::uint64_t SubmitIo(IoCmd cmd, CompletionFn done, int attempt, TimeNs started_at);
  // Hands the command to the device under a fresh command id; defers on a full SQ.
  Status SubmitToDevice(std::uint64_t cmd_id, const IoCmd& cmd);

  BlockDevice* bdev_;
  CatfishConfig config_;
  Rng retry_rng_;
  std::shared_ptr<bool> alive_;  // guards scheduled resubmissions
  std::unordered_map<std::string, FileMeta> catalog_;
  std::uint64_t next_free_lba_ = 1;  // LBA 0 reserved
  std::uint64_t next_cmd_ = 1;
  std::unordered_map<std::uint64_t, CompletionFn> callbacks_;
  // Commands the device rejected (SQ full) awaiting resubmission.
  struct Deferred {
    IoCmd cmd;
    CompletionFn done;
  };
  std::deque<Deferred> deferred_;
};

class CatfishFileQueue final : public IoQueue {
 public:
  static constexpr std::size_t kRecordHeader = 8;  // u32 len + u32 crc32c

  CatfishFileQueue(CatfishLibOS* libos, CatfishLibOS::FileMeta* meta);
  ~CatfishFileQueue() override;

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;
  // Fails every outstanding push/pop/push-down with kCancelled before closing — the
  // PR 1 invariant: no qtoken is ever left pending.
  Status Close() override;

  // --- push-down offload hooks (DESIGN.md §14) ---
  bool SupportsPushdownOffload() const override;
  Result<PushdownProgramId> InstallPushdownProgram(const PushdownProgram& prog) override;
  Status StartPushdown(QToken token, PushdownProgramId program, std::uint64_t root_block,
                       const SgArray& arg) override;

 private:
  static constexpr std::size_t kBlock = 4096;

  struct PendingPush {
    QToken token;
    std::size_t writes_outstanding = 0;
    Status status;
    bool submitted = false;
  };

  std::vector<std::byte>& CachedBlock(std::uint64_t index);
  bool BlockResident(std::uint64_t index) const;
  void FetchBlock(std::uint64_t index);
  // Copies `len` log bytes at `offset` into `out`; false if any block is cold
  // (fetches are started as a side effect).
  bool ReadLogBytes(std::uint64_t offset, std::size_t len, std::byte* out);
  void WriteBlockOut(std::uint64_t index, PendingPush* push);

  CatfishLibOS* libos_;
  CatfishLibOS::FileMeta* meta_;
  std::shared_ptr<bool> alive_;  // guards device-completion continuations
  bool closed_ = false;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> block_cache_;
  std::unordered_map<std::uint64_t, bool> fetch_in_flight_;
  std::deque<std::unique_ptr<PendingPush>> pending_pushes_;
  std::deque<QToken> pending_pops_;
  // Push-down chains in flight on the device; their device completions park results
  // in `ready_pushdowns_` for Progress to deliver in completion order.
  std::vector<QToken> pending_pushdowns_;
  std::deque<std::pair<QToken, QResult>> ready_pushdowns_;
  std::uint64_t read_offset_ = 0;  // replay cursor
  // Sticky error from a failed block fetch (media error, device death). Progress
  // flushes pending pops with it — without this, ReadLogBytes would refetch the bad
  // block forever and the pop would never complete (§4.4).
  Status read_error_;
};

}  // namespace demi

#endif  // SRC_CORE_CATFISH_H_
