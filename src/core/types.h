// Core Demikernel types: queue descriptors, queue tokens, and operation results.
//
// Figure 3 of the paper: system calls that used to return file descriptors return
// queue descriptors (qd); non-blocking data-path operations return qtokens that are
// redeemed through wait/wait_any/wait_all. Because every qtoken names exactly one
// operation on one queue, completions wake exactly one waiter and carry the data with
// them (§4.4) — the two fixes over POSIX epoll.

#ifndef SRC_CORE_TYPES_H_
#define SRC_CORE_TYPES_H_

#include <cstdint>
#include <functional>

#include "src/common/status.h"
#include "src/memory/sgarray.h"
#include "src/sim/time.h"

namespace demi {

// Queue descriptor: the Demikernel analogue of a file descriptor.
using QDesc = int;
constexpr QDesc kInvalidQDesc = -1;

// Queue token: names one pending queue operation.
using QToken = std::uint64_t;
constexpr QToken kInvalidQToken = 0;

enum class OpType : std::uint8_t {
  kPush,
  kPop,
  kAccept,
  kConnect,
};

// What wait() hands back: the operation, its status, and — directly, with no second
// system call — the popped data or the accepted connection's queue descriptor.
struct QResult {
  OpType op = OpType::kPush;
  QDesc qd = kInvalidQDesc;
  Status status;
  SgArray sga;                  // kPop: the atomic unit that arrived
  QDesc new_qd = kInvalidQDesc; // kAccept: the new connection's queue
};

// A user function applied to queue elements by filter/sort/map queues. The host-cost
// estimate drives the cost model and the libOS's offload decision (§4.3: filters run
// on the device when the accelerator supports it, on the CPU otherwise).
struct ElementPredicate {
  std::function<bool(const SgArray&)> fn;
  TimeNs host_cost_ns = 100;
};

struct ElementTransform {
  std::function<SgArray(const SgArray&)> fn;
  TimeNs host_cost_ns = 100;
};

struct ElementComparator {
  // Returns true when `a` has higher priority than `b` (pops first).
  std::function<bool(const SgArray&, const SgArray&)> fn;
  TimeNs host_cost_ns = 50;
};

}  // namespace demi

#endif  // SRC_CORE_TYPES_H_
