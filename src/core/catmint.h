// Catmint: the RDMA library OS.
//
// The RDMA NIC already provides a reliable transport (Table 1, middle column), but —
// as §2 stresses — not buffer management or flow control. Catmint supplies exactly
// those:
//   - its memory manager is attached to the NIC, so EVERY application buffer is
//     transparently registered (§4.5) and applications never call ibv_reg_mr;
//   - each connection pre-posts a pool of receive buffers and re-posts one on every
//     pop, so the receiver-not-ready failures of raw verbs cannot happen under the
//     configured element-size/queue-depth contract;
//   - RDMA messages already have boundaries, so a queue element maps 1:1 onto a SEND —
//     the queue abstraction needs no framing at all here, the cleanest evidence that
//     I/O queues are "general enough to apply to a wide range of accelerators" (§4.2).
//
// Applications that push buffers not allocated from the libOS (e.g. literals) are
// transparently bounced through a registered staging buffer — at copy cost, which the
// C4 bench makes visible. Allocate from sgaalloc to stay zero-copy.

#ifndef SRC_CORE_CATMINT_H_
#define SRC_CORE_CATMINT_H_

#include <deque>
#include <memory>
#include <string>

#include "src/core/libos.h"
#include "src/hw/rdma.h"

namespace demi {

struct CatmintConfig {
  std::string local_addr = "rdma-host";  // rendezvous namespace for bind/listen
  std::size_t recv_buffers = 64;         // per-connection pre-posted receives
  std::size_t max_element_bytes = 16384; // receive buffer size == max element size
};

class CatmintLibOS final : public LibOS {
 public:
  CatmintLibOS(HostCpu* host, RdmaNic* nic, CatmintConfig config = CatmintConfig{});

  std::string name() const override { return "catmint"; }
  RdmaNic& nic() { return *nic_; }
  const CatmintConfig& config() const { return config_; }

 protected:
  Result<std::unique_ptr<IoQueue>> NewSocketQueue() override;

 private:
  RdmaNic* nic_;
  CatmintConfig config_;
};

class CatmintQueue final : public IoQueue {
 public:
  CatmintQueue(CatmintLibOS* libos, std::shared_ptr<RdmaQp> qp);

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;

  Status Bind(std::uint16_t port) override;
  Status Listen() override;
  Result<std::unique_ptr<IoQueue>> TryAccept() override;
  Status StartConnect(Endpoint remote) override;
  Status ConnectStatus() override;
  Status Close() override;

 private:
  std::string RendezvousAddr(std::uint16_t port) const;
  void ProvisionRecvBuffers();
  Status PostOneRecv();

  CatmintLibOS* libos_;
  std::shared_ptr<RdmaQp> qp_;  // null until connect/accept
  std::uint16_t bound_port_ = 0;
  std::string listen_addr_;
  bool listening_ = false;
  bool provisioned_ = false;
  bool closed_ = false;
  std::uint64_t next_recv_wr_ = 1;
  std::deque<std::pair<QToken, SgArray>> queued_pushes_;  // waiting for send-queue room
  std::deque<QToken> pending_pops_;
  std::deque<SgArray> received_;  // completed messages not yet claimed by a pop
  std::deque<std::pair<QToken, QResult>> ready_;
};

}  // namespace demi

#endif  // SRC_CORE_CATMINT_H_
