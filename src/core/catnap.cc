#include "src/core/catnap.h"

#include "src/common/logging.h"

namespace demi {

CatnapLibOS::CatnapLibOS(HostCpu* host, SimKernel* kernel) : LibOS(host), kernel_(kernel) {}

Result<std::unique_ptr<IoQueue>> CatnapLibOS::NewSocketQueue() {
  auto fd = kernel_->Socket();
  RETURN_IF_ERROR(fd.status());
  return std::unique_ptr<IoQueue>(new CatnapSocketQueue(kernel_, host_, *fd));
}

Status CatnapSocketQueue::Bind(std::uint16_t port) { return kernel_->Bind(fd_, port); }

Status CatnapSocketQueue::Listen() {
  RETURN_IF_ERROR(kernel_->Listen(fd_));
  listening_ = true;
  return OkStatus();
}

Result<std::unique_ptr<IoQueue>> CatnapSocketQueue::TryAccept() {
  if (accepted_fds_.empty()) {
    if (!kernel_->AcceptReady(fd_)) {
      return Status(ErrorCode::kWouldBlock);  // stay parked; no crossing burned
    }
    // One crossing drains the whole backlog; later TryAccept calls are handed fds
    // from the batch for free instead of paying a crossing per pending connection.
    auto fds = kernel_->AcceptBatch(fd_, 64);
    RETURN_IF_ERROR(fds.status());
    accepted_fds_.insert(accepted_fds_.end(), fds->begin(), fds->end());
  }
  const int new_fd = accepted_fds_.front();
  accepted_fds_.pop_front();
  return std::unique_ptr<IoQueue>(new CatnapSocketQueue(kernel_, host_, new_fd));
}

Status CatnapSocketQueue::StartConnect(Endpoint remote) {
  return kernel_->Connect(fd_, remote);
}

Status CatnapSocketQueue::ConnectStatus() {
  if (kernel_->ConnectSucceeded(fd_)) {
    return OkStatus();
  }
  if (kernel_->ConnectInProgress(fd_)) {
    return WouldBlock();
  }
  return ConnectionRefused("connect failed");
}

Status CatnapSocketQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed queue");
  }
  PendingPush push;
  push.token = token;
  // writev-style: one syscall for the whole framed element (header + segments). The
  // serialization into one iovec-equivalent buffer is application-side assembly.
  push.parts.push_back(ConcatCopy(EncodeFrame(sga)));
  pending_pushes_.push_back(std::move(push));
  return OkStatus();
}

Status CatnapSocketQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed queue");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool CatnapSocketQueue::Progress(CompletionSink& sink) {
  if (closed_ || listening_) {
    return false;
  }
  bool progress = false;

  // Drain pushes through write(2): every byte crosses the kernel boundary with a copy.
  while (!pending_pushes_.empty()) {
    PendingPush& push = pending_pushes_.front();
    bool stalled = false;
    while (!push.parts.empty()) {
      auto written = kernel_->WriteSock(fd_, push.parts.front());
      if (written.ok()) {
        push.parts.pop_front();
        progress = true;
        continue;
      }
      if (written.code() == ErrorCode::kResourceExhausted ||
          written.code() == ErrorCode::kWouldBlock) {
        stalled = true;  // socket buffer full; retry next poll
        break;
      }
      // Hard error: fail this push.
      QResult res;
      res.op = OpType::kPush;
      res.status = written.status();
      sink.CompleteOp(push.token, std::move(res));
      pending_pushes_.pop_front();
      progress = true;
      stalled = true;
      break;
    }
    if (stalled) {
      break;
    }
    QResult res;
    res.op = OpType::kPush;
    sink.CompleteOp(push.token, std::move(res));
    pending_pushes_.pop_front();
    progress = true;
  }

  // Drain the kernel socket through read(2) and reassemble atomic units. Reads are
  // gated on readiness (the libOS watches the fd as epoll would) so idle polls do not
  // burn syscalls on EAGAIN.
  TcpConnection* conn = kernel_->SockConnection(fd_);
  const bool socket_ready = conn != nullptr && (conn->readable() || conn->reset());
  if (!pending_pops_.empty() && !peer_eof_ && stream_error_.ok() && socket_ready) {
    while (true) {
      auto data = kernel_->ReadSock(fd_, 65536);
      if (data.ok()) {
        decoder_.Feed(std::move(*data));
        progress = true;
        continue;
      }
      if (data.code() == ErrorCode::kEndOfFile) {
        peer_eof_ = true;
      } else if (data.code() != ErrorCode::kWouldBlock) {
        stream_error_ = data.status();
      }
      break;
    }
  }
  while (!pending_pops_.empty()) {
    auto decoded = decoder_.Next();
    if (!decoded.ok()) {
      stream_error_ = decoded.status();
    }
    if (decoded.ok() && decoded->has_value()) {
      QResult res;
      res.op = OpType::kPop;
      res.sga = std::move(**decoded);
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
      continue;
    }
    if (peer_eof_ || !stream_error_.ok()) {
      QResult res;
      res.op = OpType::kPop;
      res.status = !stream_error_.ok() ? stream_error_ : EndOfFile();
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
      continue;
    }
    break;  // need more bytes
  }
  return progress;
}

Status CatnapSocketQueue::Cancel(QToken token) {
  for (auto it = pending_pushes_.begin(); it != pending_pushes_.end(); ++it) {
    if (it->token == token) {
      pending_pushes_.erase(it);
      return OkStatus();
    }
  }
  for (auto it = pending_pops_.begin(); it != pending_pops_.end(); ++it) {
    if (*it == token) {
      pending_pops_.erase(it);
      return OkStatus();
    }
  }
  return NotFound("token not pending on this queue");
}

Status CatnapSocketQueue::Close() {
  if (closed_) {
    return OkStatus();
  }
  closed_ = true;
  // Batched-accepted fds nobody claimed yet must not leak kernel sockets.
  for (const int fd : accepted_fds_) {
    kernel_->CloseFd(fd);
  }
  accepted_fds_.clear();
  return kernel_->CloseFd(fd_);
}

}  // namespace demi
