// Catnap: the portability library OS — Demikernel queues over legacy kernel sockets.
//
// Catnap exists so applications written against the Demikernel interface run on hosts
// with NO kernel-bypass hardware at all (the paper's portability goal: "unmodified as
// devices continue to evolve"). Every push/pop still pays the traditional tax —
// syscalls, kernel stack, copies — so Catnap matches the POSIX baseline in cost while
// keeping the application identical to the Catnip/Catmint versions. Experiment E1
// shows exactly this: Catnap ≈ baseline, Catnip/Catmint ≫ both.
//
// Queue elements travel over the kernel TCP byte stream with the same length-prefix
// framing Catnip uses (§5.2), so Catnap and Catnip applications interoperate.

#ifndef SRC_CORE_CATNAP_H_
#define SRC_CORE_CATNAP_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/core/libos.h"
#include "src/kernel/kernel.h"
#include "src/net/framing.h"

namespace demi {

class CatnapLibOS final : public LibOS {
 public:
  CatnapLibOS(HostCpu* host, SimKernel* kernel);

  std::string name() const override { return "catnap"; }
  SimKernel& kernel() { return *kernel_; }

 protected:
  Result<std::unique_ptr<IoQueue>> NewSocketQueue() override;

 private:
  SimKernel* kernel_;
};

class CatnapSocketQueue final : public IoQueue {
 public:
  CatnapSocketQueue(SimKernel* kernel, HostCpu* host, int fd)
      : kernel_(kernel), host_(host), fd_(fd) {}

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;

  Status Bind(std::uint16_t port) override;
  Status Listen() override;
  Result<std::unique_ptr<IoQueue>> TryAccept() override;
  Status StartConnect(Endpoint remote) override;
  Status ConnectStatus() override;
  Status Cancel(QToken token) override;
  Status Close() override;

 private:
  struct PendingPush {
    QToken token;
    std::deque<Buffer> parts;  // unwritten wire parts
  };

  SimKernel* kernel_;
  HostCpu* host_;
  int fd_;
  bool listening_ = false;
  bool closed_ = false;
  // Listener-side: fds drained by the last AcceptBatch crossing, handed out one per
  // TryAccept call so the idle-poll path pays one crossing per backlog, not per conn.
  std::deque<int> accepted_fds_;
  FrameDecoder decoder_;
  bool peer_eof_ = false;
  Status stream_error_;
  std::deque<PendingPush> pending_pushes_;
  std::deque<QToken> pending_pops_;
};

}  // namespace demi

#endif  // SRC_CORE_CATNAP_H_
