// TestHarness: assembles simulated datacenter hosts for examples, tests, and benches.
//
// A Host is one simulated machine: a CPU (HostCpu), optional devices (SimNic, RdmaNic,
// BlockDevice), an optional legacy kernel, and any number of library OSes. The harness
// owns the Simulation, the fabric, and destruction ordering.

#ifndef SRC_CORE_HARNESS_H_
#define SRC_CORE_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/catfish.h"
#include "src/core/catmint.h"
#include "src/core/catnap.h"
#include "src/core/catnip.h"
#include "src/hw/block_device.h"
#include "src/hw/fabric.h"
#include "src/hw/nic.h"
#include "src/hw/rdma.h"
#include "src/kernel/kernel.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulation.h"

namespace demi {

struct HostOptions {
  bool with_nic = true;
  bool with_rdma = false;
  bool with_block_device = false;
  bool with_kernel = true;       // legacy kernel (needed for Catnap and control path)
  // Gives the legacy kernel its own (plain, reliable) NIC instead of sharing the
  // bypass NIC, so the kernel path survives bypass-device death. The kernel stack
  // then lives at Host::kernel_ip. Used by recovery-mode failover tests.
  bool with_kernel_nic = false;
  bool charges_clock = true;     // false for load-generator hosts
  int nic_queues = 2;            // queue 0 for the kernel, 1+ leased to libOSes
  bool nic_offload = false;      // SmartNIC capability
  TcpConfig tcp;
};

class TestHarness {
 public:
  explicit TestHarness(CostModel cost = CostModel{}, FabricConfig fabric = FabricConfig{});
  ~TestHarness();
  TestHarness(const TestHarness&) = delete;
  TestHarness& operator=(const TestHarness&) = delete;

  struct Host {
    std::string name;
    Ipv4Address ip;
    Ipv4Address kernel_ip;  // kernel stack's address (== ip unless with_kernel_nic)
    std::unique_ptr<HostCpu> cpu;
    std::unique_ptr<SimNic> nic;
    std::unique_ptr<SimNic> knic;  // dedicated kernel NIC (with_kernel_nic)
    std::unique_ptr<RdmaNic> rdma;
    std::unique_ptr<BlockDevice> bdev;
    std::unique_ptr<SimKernel> kernel;
    std::vector<std::unique_ptr<LibOS>> liboses;
    HostOptions options;
  };

  Simulation& sim() { return sim_; }
  Fabric& fabric() { return fabric_; }
  RdmaCm& rdma_cm() { return rdma_cm_; }
  // Every device the harness builds is registered here; look up a host's device ids
  // via Host::nic->fault_device() etc. to script faults against it.
  FaultInjector& faults() { return faults_; }

  Host& AddHost(const std::string& name, const std::string& ip,
                HostOptions options = HostOptions{});

  // LibOS factories (the harness keeps ownership inside the host).
  CatnapLibOS& Catnap(Host& host);
  CatnipLibOS& Catnip(Host& host);
  // Recovery-enabled Catnip: TCP queues become failover-capable sessions.
  CatnipLibOS& Catnip(Host& host, RecoveryConfig recovery);
  // Full-config Catnip (adaptive path policy, tenant binding, ...); config.ip is
  // filled from the host when left zero.
  CatnipLibOS& Catnip(Host& host, CatnipConfig config);
  CatmintLibOS& Catmint(Host& host);
  CatfishLibOS& Catfish(Host& host, CatfishConfig config = CatfishConfig{});

  // Convenience: steps the simulation until `pred` or `deadline`.
  bool RunUntil(const std::function<bool()>& pred, TimeNs deadline = 60 * kSecond) {
    return sim_.RunUntil(pred, deadline);
  }

 private:
  Simulation sim_;
  FaultInjector faults_;  // before fabric_: the fabric consults it on every frame
  Fabric fabric_;
  RdmaCm rdma_cm_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::uint32_t next_host_id_ = 1;
};

}  // namespace demi

#endif  // SRC_CORE_HARNESS_H_
