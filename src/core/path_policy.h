// Load-adaptive path placement: the policy engine behind continuous fast/legacy
// arbitration (DESIGN.md §15).
//
// PR 2's failover machinery proved the *switch* (FailoverTransport live-migrates a
// session between the bypass NIC and the kernel path with exactly-once replay). This
// layer decides *when* to pull it as a load decision rather than a failure response:
// every flow carries an exponentially-decayed op-rate tracker (FlowHeat); a per-libOS
// PathPolicy compares that rate against hysteresis bands and demotes cold flows to the
// kernel path (releasing their bypass queue slots / registrations back to the tenant
// pool) while promoting hot flows to the bypass path under a promotion budget, so
// churny flows cannot thrash the migration machinery.
//
// Everything here is pure virtual-time arithmetic — no host clocks, no randomness —
// so adaptive runs stay bit-deterministic (same seed, same timeline, same decisions).

#ifndef SRC_CORE_PATH_POLICY_H_
#define SRC_CORE_PATH_POLICY_H_

#include <cmath>
#include <cstdint>

#include "src/sim/time.h"

namespace demi {

// Exponentially-decayed per-flow op counter. Each recorded op adds 1 to a heat value
// that halves every `halflife_ns` of virtual time; the instantaneous op rate falls out
// of the same decay (a flow doing one op every T ns converges to heat ≈
// halflife/(T·ln2), i.e. rate = heat·ln2/halflife).
class FlowHeat {
 public:
  // The halflife folded into every Record (the owning session sets it once from
  // PathPolicyConfig::heat_halflife_ns).
  void set_halflife(TimeNs halflife_ns) { halflife_ns_ = halflife_ns; }

  void Record(TimeNs now) {
    Decay(now);
    heat_ += 1.0;
    last_op_ = now;
  }

  // Decayed ops/second at `now`. Pure double arithmetic on virtual time: same inputs,
  // same bits, every run.
  double OpsPerSec(TimeNs now, TimeNs halflife_ns) const {
    if (heat_ == 0.0 || halflife_ns <= 0) {
      return 0.0;
    }
    const double decayed =
        heat_ * std::exp2(-static_cast<double>(now - last_decay_) /
                          static_cast<double>(halflife_ns));
    constexpr double kLn2 = 0.6931471805599453;
    return decayed * kLn2 / static_cast<double>(halflife_ns) * 1e9;
  }

  TimeNs last_op() const { return last_op_; }
  void Reset() {
    heat_ = 0.0;
    last_decay_ = 0;
    last_op_ = 0;
  }

 private:
  void Decay(TimeNs now) {
    if (heat_ != 0.0 && now > last_decay_ && halflife_ns_ > 0) {
      heat_ *= std::exp2(-static_cast<double>(now - last_decay_) /
                         static_cast<double>(halflife_ns_));
    }
    last_decay_ = now;
  }

  double heat_ = 0.0;
  TimeNs last_decay_ = 0;
  TimeNs last_op_ = 0;
  TimeNs halflife_ns_ = 1 * kMillisecond;
};

struct PathPolicyConfig {
  bool enabled = false;  // off: PR 2 behavior (switch on failure only) is untouched

  // Hysteresis band on the decayed op rate. A flow must exceed the promote threshold
  // to earn the bypass path and fall below the (lower) demote threshold to lose it;
  // the gap between them is what absorbs load noise at the band edge.
  double promote_ops_per_sec = 50000.0;
  double demote_ops_per_sec = 5000.0;

  TimeNs heat_halflife_ns = 1 * kMillisecond;  // EWMA horizon of the rate tracker

  // A flow must sit on its current path at least this long before the policy may
  // move it again (second thrash guard, independent of the rate band).
  TimeNs min_dwell_ns = 2 * kMillisecond;

  // Promotion budget: at most `promotion_budget` promotions per `budget_window_ns`
  // across the whole libOS. Churny flows that keep crossing the band burn the budget
  // and stay on the kernel path instead of thrashing the migration machinery.
  std::uint32_t promotion_budget = 4;
  TimeNs budget_window_ns = 10 * kMillisecond;

  // A flow with no ops for this long is demoted regardless of its decayed rate (it
  // is holding bypass resources while transferring nothing).
  TimeNs idle_demote_ns = 5 * kMillisecond;
};

// Per-libOS arbiter. Sessions ask Evaluate() on their poll path; a kPromote verdict
// must additionally win TryTakePromotion() before the switch starts, so the budget is
// shared across every flow of the libOS.
class PathPolicy {
 public:
  explicit PathPolicy(PathPolicyConfig config) : config_(config) {}

  enum class Decision : std::uint8_t { kStay = 0, kPromote, kDemote };

  const PathPolicyConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  // Pure function of (heat, path, clock): no side effects, so tests can probe the
  // band edge without consuming budget.
  Decision Evaluate(const FlowHeat& heat, bool on_fast_path, TimeNs now,
                    TimeNs path_since) const {
    if (!config_.enabled) {
      return Decision::kStay;
    }
    if (now - path_since < config_.min_dwell_ns) {
      return Decision::kStay;  // dwell guard: too soon to move again
    }
    const double rate = heat.OpsPerSec(now, config_.heat_halflife_ns);
    if (on_fast_path) {
      const bool idle = now - heat.last_op() >= config_.idle_demote_ns;
      if (idle || rate < config_.demote_ops_per_sec) {
        return Decision::kDemote;
      }
      return Decision::kStay;
    }
    if (rate > config_.promote_ops_per_sec) {
      return Decision::kPromote;
    }
    return Decision::kStay;
  }

  // Consumes one unit of the windowed promotion budget. The window resets
  // deterministically on the virtual clock (fixed epochs from t=0, not sliding).
  bool TryTakePromotion(TimeNs now) {
    if (config_.budget_window_ns > 0) {
      const TimeNs epoch = now / config_.budget_window_ns;
      if (epoch != window_epoch_) {
        window_epoch_ = epoch;
        window_used_ = 0;
      }
    }
    if (window_used_ >= config_.promotion_budget) {
      ++denied_;
      return false;
    }
    ++window_used_;
    ++granted_;
    return true;
  }

  std::uint64_t promotions_granted() const { return granted_; }
  std::uint64_t promotions_denied() const { return denied_; }

 private:
  PathPolicyConfig config_;
  TimeNs window_epoch_ = -1;
  std::uint32_t window_used_ = 0;
  std::uint64_t granted_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace demi

#endif  // SRC_CORE_PATH_POLICY_H_
