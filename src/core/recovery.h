// Recovery: transparent device failover and deadline-aware retry for libOS queues.
//
// The paper's thesis is that the legacy kernel stays *beside* the kernel-bypass data
// path as the reliable slow path. PR 1 made device death visible as typed completions;
// this subsystem makes it survivable. Recovery-enabled Catnip socket queues keep a
// bounded in-flight log of pushed elements and a per-element sequence number on the
// wire. When the bypass device dies (or a flapped link kills the TCP connection), the
// connecting side re-establishes the session — first over the fast path with
// exponential backoff, then, once a circuit breaker trips, over the legacy kernel
// stack (the LibrettOS-style live session migration of PAPERS.md) — replays the
// unacknowledged suffix of the log, and resumes pending qtokens. Receivers dedup by
// sequence number, so a replayed element is delivered exactly once.
//
// Everything here rides the simulation's virtual clock and a seeded Rng, so recovery
// schedules are bit-deterministic, like the fault schedules they respond to.

#ifndef SRC_CORE_RECOVERY_H_
#define SRC_CORE_RECOVERY_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/common/buffer.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/kernel/kernel.h"
#include "src/memory/sgarray.h"
#include "src/net/packet.h"
#include "src/net/tcp.h"
#include "src/sim/time.h"

namespace demi {

// --- retry policy ---------------------------------------------------------------

// Deadline-aware exponential backoff. Attempt 0 fires immediately (the first retry
// after a failure costs nothing extra); attempt n >= 1 waits
// initial * multiplier^(n-1), jittered by +/- `jitter` and capped at `max_backoff`.
// All delays ride the simulated clock; jitter comes from the caller's seeded Rng so
// a given seed always produces the same retry schedule.
struct RetryPolicy {
  int max_attempts = 8;                            // per-target attempts before exhaustion
  TimeNs initial_backoff_ns = 50 * kMicrosecond;
  TimeNs max_backoff_ns = 5 * kMillisecond;
  double multiplier = 2.0;
  double jitter = 0.2;                             // fraction of the backoff, +/-
  TimeNs attempt_timeout_ns = 2 * kMillisecond;    // per connect/handshake attempt
  TimeNs deadline_ns = 500 * kMillisecond;         // absolute budget for one outage

  TimeNs BackoffBeforeAttempt(int attempt, Rng& rng) const;
};

// Opt-in recovery configuration, attached at queue creation through the libOS config.
struct RecoveryConfig {
  bool enabled = false;
  RetryPolicy retry;
  std::size_t replay_log_limit = 64;   // max unacknowledged elements held for replay
  int breaker_threshold = 2;           // consecutive fast-path exhaustions before failover
  TimeNs repromote_after_ns = 10 * kMillisecond;  // continuous healthy time before
                                                  // re-promoting to the fast path
  // Legacy-path target: the peer's kernel-stack listener (usually on the peer's
  // dedicated kernel NIC). When unset, the legacy path dials the primary remote,
  // which suffices when only the local device died.
  Endpoint fallback_remote;
  bool has_fallback_remote = false;
  // Dead-peer detection: an active session that owes the application a pop and has
  // received nothing for this long sends a PING control frame. The probe's bytes
  // must be acknowledged at the transport level, so a silently dead peer (its NIC
  // died with nothing of ours in flight — TCP alone would wait forever) turns into
  // retransmission exhaustion, which the outage machinery already handles. 0 turns
  // probing off.
  TimeNs keepalive_idle_ns = 5 * kMillisecond;
  std::uint64_t seed = 29;             // session ids + backoff jitter
};

// --- circuit breaker ------------------------------------------------------------

// Trips after `threshold` consecutive retry exhaustions; a tripped breaker sends the
// session to the legacy path instead of burning more fast-path attempts.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int threshold) : threshold_(threshold) {}

  // Records one exhausted retry sequence; returns true exactly when this record
  // trips the breaker (callers count Counter::kBreakerTrips on true).
  bool RecordExhaustion();
  void RecordSuccess();  // any success closes the breaker
  bool tripped() const { return tripped_; }
  int consecutive_exhaustions() const { return consecutive_; }

 private:
  int threshold_;
  int consecutive_ = 0;
  bool tripped_ = false;
};

// --- health monitor -------------------------------------------------------------

enum class DeviceHealth : std::uint8_t {
  kHealthy,   // link up, device alive
  kDegraded,  // link down / transient trouble; may recover
  kDead,      // permanent device failure
};

// Watchdog over one device's pull-side fault state. Observed every poll; tracks how
// long the device has been *continuously* healthy, which gates fast-path
// re-promotion after a flap.
class HealthMonitor {
 public:
  void Observe(bool link_up, bool failed, TimeNs now);
  DeviceHealth health() const { return health_; }
  // Continuous healthy time as of `now`; 0 unless currently healthy.
  TimeNs HealthyFor(TimeNs now) const;
  // Ok / Degraded / DeviceFailed, for surfacing health as a Status.
  Status AsStatus() const;

 private:
  DeviceHealth health_ = DeviceHealth::kHealthy;
  TimeNs healthy_since_ = 0;
  bool observed_ = false;
};

// --- replay log -----------------------------------------------------------------

// Bounded log of pushed elements not yet acknowledged by the peer's transport. An
// element enters when its push is accepted (and its qtoken completes — the recovery
// layer has taken responsibility for delivery) and leaves once the bytes that carried
// it were acknowledged at the transport level. On failover the remaining suffix is
// replayed on the new transport; receivers drop duplicates by sequence number, so
// replaying acknowledged-but-unevicted entries is safe.
class ReplayLog {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    SgArray element;
    std::uint64_t end_offset = 0;  // transport stream offset after the entry's last byte
    bool written = false;          // fully handed to the *current* transport
  };

  explicit ReplayLog(std::size_t limit) : limit_(limit) {}

  bool full() const { return entries_.size() >= limit_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  void Append(std::uint64_t seq, SgArray element);
  // Drops entries the peer confirmed by sequence number (reattach handshake).
  void EvictThroughSeq(std::uint64_t seq);
  // Drops written entries whose bytes the transport has acknowledged.
  void EvictAcked(std::uint64_t acked_offset);
  // New transport: every entry must be re-sent; offsets are stale.
  void MarkAllUnwritten();
  // First entry not yet handed to the current transport, or nullptr.
  Entry* NextUnwritten();

  std::deque<Entry>& entries() { return entries_; }

 private:
  std::size_t limit_;
  std::deque<Entry> entries_;
};

// --- session control frames -----------------------------------------------------

// Recovery sessions prefix every framed element with a u64 sequence number. Control
// frames use the reserved sequence ~0 and carry the session handshake:
//   HELLO      connecting side -> listener: {session_id, last_rx_seq}
//   HELLO_ACK  listener -> connecting side: {session_id, last_rx_seq}
//   PING       either side -> peer: liveness probe; ignored on receipt (the
//              transport-level ACK of its bytes is the liveness signal)
// A listener routes a HELLO for a known session to the live queue (reattach) and
// creates a fresh queue otherwise. Both sides replay their log suffix after attach.
constexpr std::uint64_t kRecoveryControlSeq = ~0ull;
constexpr std::uint32_t kRecoveryMagic = 0x52435652;  // "RCVR"
constexpr std::size_t kRecoverySeqHeader = 8;         // u64 seq before each element

struct HelloFrame {
  bool is_ack = false;
  bool is_ping = false;  // keepalive probe, not a handshake
  std::uint64_t session_id = 0;
  std::uint64_t last_rx_seq = 0;
};

// Body of a HELLO/HELLO_ACK frame (the 4-byte length prefix is added by EncodeFrame).
Buffer EncodeHello(const HelloFrame& hello);
// Parses a decoded frame body; nullopt if it is not a control frame.
std::optional<HelloFrame> ParseHello(const SgArray& body);

// Reads the leading u64 sequence header of a decoded frame (false if too short).
bool ReadSeqHeader(const SgArray& body, std::uint64_t* seq);
// Returns `body` minus its first `n` bytes as zero-copy slices.
SgArray StripBytes(const SgArray& body, std::size_t n);

// --- failover transport ---------------------------------------------------------

// One byte-stream endpoint that is either a fast-path user-level TCP connection
// (Catnip's NetStack) or a legacy kernel socket fd. The recovery state machine swaps
// the backing transport across failover/re-promotion; the queue above it only sees
// Send/Recv/established/dead.
class FailoverTransport {
 public:
  enum class Kind : std::uint8_t { kNone, kFast, kLegacy };

  FailoverTransport() = default;
  // Moves transfer the endpoint without closing it (listener embryos hand their
  // transport to the adopting session queue). Sources are left detached.
  FailoverTransport(FailoverTransport&& other) noexcept;
  FailoverTransport& operator=(FailoverTransport&& other) noexcept;
  FailoverTransport(const FailoverTransport&) = delete;
  FailoverTransport& operator=(const FailoverTransport&) = delete;

  void AttachFast(TcpConnection* conn);
  // Starts a legacy connect through `kernel` (non-blocking, like connect(2)).
  Status ConnectLegacy(SimKernel* kernel, Endpoint remote);
  // Adopts an already-accepted kernel socket.
  void AttachLegacyAccepted(SimKernel* kernel, int fd);
  // Gracefully closes and detaches the current transport (safe to call repeatedly).
  void Reset();
  // Hard-kills the transport (RST on the wire) and detaches. The recovery machinery
  // uses this so the peer sees an outage — never a clean close it would mistake for
  // end-of-stream.
  void Abort();
  // Detaches and returns the fast-path connection without closing it (embryo ->
  // plain-queue handoff). Null unless kind() == kFast.
  TcpConnection* ReleaseFast();

  Kind kind() const { return kind_; }
  bool attached() const { return kind_ != Kind::kNone; }
  bool established() const;
  bool dead() const;
  // Peer sent FIN and all its data was consumed (clean close, not an outage).
  bool recv_eof() const;

  // kResourceExhausted means "stalled, retry after draining"; other errors are fatal
  // to this transport.
  Status Send(Buffer part);
  // Returns up to `max` received bytes (empty when none). Also used to salvage
  // buffered bytes off a dead transport before switching — TCP keeps in-order
  // (i.e. acknowledged) data readable after a reset, so nothing the peer's log
  // already evicted can be lost.
  Buffer Recv(std::size_t max);
  // Bytes handed to Send but not yet acknowledged by the peer.
  std::size_t unacked_bytes() const;

 private:
  TcpConnection* Conn() const;
  // Forgets the endpoint without closing it (the moved-from state).
  void Detach();

  Kind kind_ = Kind::kNone;
  TcpConnection* conn_ = nullptr;  // fast path
  SimKernel* kernel_ = nullptr;    // legacy path
  int fd_ = -1;
};

}  // namespace demi

#endif  // SRC_CORE_RECOVERY_H_
