#include "src/core/catnip.h"

#include "src/common/logging.h"

namespace demi {

CatnipLibOS::CatnipLibOS(HostCpu* host, SimNic* nic, SimKernel* control_kernel,
                         CatnipConfig config)
    : LibOS(host), nic_(nic) {
  // Control path (Figure 2): ask the kernel for a dedicated NIC queue, once.
  if (control_kernel != nullptr) {
    auto lease = control_kernel->AllocateNicQueue();
    DEMI_CHECK(lease.ok() && "no NIC queue available for the libOS");
    nic_queue_ = *lease;
    // Map the libOS arenas for device DMA (IOMMU setup) — also control path.
    (void)control_kernel->MapForDevice(2 * 1024 * 1024);
  }
  NetStackConfig net_cfg;
  net_cfg.ip = config.ip;
  net_cfg.nic_queue = nic_queue_;
  net_cfg.tcp = config.tcp;
  net_cfg.seed = config.seed;
  // Costs default to the user-level stack entries of the cost model.
  stack_ = std::make_unique<NetStack>(host, nic, net_cfg);
}

Result<std::unique_ptr<IoQueue>> CatnipLibOS::NewSocketQueue() {
  return std::unique_ptr<IoQueue>(new CatnipTcpQueue(this, nullptr));
}

Result<QDesc> CatnipLibOS::SocketUdp() {
  ChargeCall();
  return InstallQueue(std::make_unique<CatnipUdpQueue>(this));
}

// --- CatnipTcpQueue ---

Status CatnipTcpQueue::Bind(std::uint16_t port) {
  bound_port_ = port;
  return OkStatus();
}

Status CatnipTcpQueue::Listen() {
  if (bound_port_ == 0) {
    return InvalidArgument("listen requires bind");
  }
  auto listener = libos_->stack().TcpListen(bound_port_);
  RETURN_IF_ERROR(listener.status());
  listener_ = *listener;
  return OkStatus();
}

Result<std::unique_ptr<IoQueue>> CatnipTcpQueue::TryAccept() {
  if (listener_ == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "not listening");
  }
  TcpConnection* conn = listener_->Accept();
  if (conn == nullptr) {
    return Status(ErrorCode::kWouldBlock);
  }
  return std::unique_ptr<IoQueue>(new CatnipTcpQueue(libos_, conn));
}

Status CatnipTcpQueue::StartConnect(Endpoint remote) {
  if (conn_ != nullptr) {
    return Status(ErrorCode::kAlreadyConnected, "connect");
  }
  auto conn = libos_->stack().TcpConnect(remote);
  RETURN_IF_ERROR(conn.status());
  conn_ = *conn;
  return OkStatus();
}

Status CatnipTcpQueue::ConnectStatus() {
  if (conn_ == nullptr) {
    return NotConnected("connect not started");
  }
  if (libos_->stack().device_failed()) {
    return DeviceFailed("nic is dead");
  }
  if (conn_->established()) {
    return OkStatus();
  }
  if (conn_->dead()) {
    return ConnectionRefused("connect failed");
  }
  return WouldBlock();
}

Status CatnipTcpQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed queue");
  }
  if (conn_ == nullptr) {
    return NotConnected("push before connect");
  }
  PendingPush push;
  push.token = token;
  // Zero copy: the wire parts reference the application's sga segments. The TCP stack
  // holds those references until acknowledged — free-protection does the rest (§4.5).
  for (Buffer& part : EncodeFrame(sga)) {
    push.parts.push_back(std::move(part));
  }
  pending_pushes_.push_back(std::move(push));
  return OkStatus();
}

Status CatnipTcpQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed queue");
  }
  if (conn_ == nullptr) {
    return NotConnected("pop before connect");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool CatnipTcpQueue::Progress(CompletionSink& sink) {
  if (closed_ || conn_ == nullptr) {
    return false;
  }
  bool progress = false;

  // A dead device or dead connection can never transmit again: fail pending pushes
  // with a typed error instead of parking their tokens forever (§4.4).
  const bool device_failed = libos_->stack().device_failed();
  if ((device_failed || conn_->dead()) && !pending_pushes_.empty()) {
    const Status err = device_failed ? DeviceFailed("nic is dead")
                                     : ConnectionReset("connection reset");
    while (!pending_pushes_.empty()) {
      QResult res;
      res.op = OpType::kPush;
      res.status = err;
      sink.CompleteOp(pending_pushes_.front().token, std::move(res));
      pending_pushes_.pop_front();
      progress = true;
    }
  }

  while (!pending_pushes_.empty() && conn_->established()) {
    PendingPush& push = pending_pushes_.front();
    bool stalled = false;
    while (!push.parts.empty()) {
      const Status status = conn_->Send(push.parts.front());
      if (status.ok()) {
        push.parts.pop_front();
        progress = true;
        continue;
      }
      if (status.code() == ErrorCode::kResourceExhausted) {
        stalled = true;
        break;
      }
      QResult res;
      res.op = OpType::kPush;
      res.status = status;
      sink.CompleteOp(push.token, std::move(res));
      pending_pushes_.pop_front();
      progress = true;
      stalled = true;
      break;
    }
    if (stalled) {
      break;
    }
    QResult res;
    res.op = OpType::kPush;
    sink.CompleteOp(push.token, std::move(res));
    pending_pushes_.pop_front();
    progress = true;
  }

  // Zero-copy receive: stream slices feed the frame decoder directly.
  if (!pending_pops_.empty()) {
    while (true) {
      Buffer chunk = conn_->Recv(65536);
      if (chunk.empty()) {
        break;
      }
      decoder_.Feed(std::move(chunk));
      progress = true;
    }
  }
  while (!pending_pops_.empty()) {
    auto decoded = decoder_.Next();
    if (!decoded.ok()) {
      stream_error_ = decoded.status();
    }
    if (decoded.ok() && decoded->has_value()) {
      QResult res;
      res.op = OpType::kPop;
      res.sga = std::move(**decoded);
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
      continue;
    }
    Status terminal;
    if (device_failed) {
      terminal = DeviceFailed("nic is dead");
    } else if (!stream_error_.ok()) {
      terminal = stream_error_;
    } else if (conn_->reset()) {
      terminal = ConnectionReset("peer reset");
    } else if (conn_->recv_eof()) {
      terminal = EndOfFile();
    } else {
      break;  // need more bytes
    }
    QResult res;
    res.op = OpType::kPop;
    res.status = terminal;
    sink.CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
    progress = true;
  }
  return progress;
}

Status CatnipTcpQueue::Close() {
  if (closed_) {
    return OkStatus();
  }
  closed_ = true;
  if (conn_ != nullptr) {
    conn_->Close();
  }
  return OkStatus();
}

// --- CatnipUdpQueue ---

CatnipUdpQueue::~CatnipUdpQueue() {
  if (bound_) {
    libos_->stack().UdpUnbind(bound_port_);
  }
}

Status CatnipUdpQueue::Bind(std::uint16_t port) {
  if (bound_) {
    return Status(ErrorCode::kAlreadyExists, "already bound");
  }
  RETURN_IF_ERROR(libos_->stack().UdpBind(port, [this](Endpoint from, Buffer payload) {
    inbound_.emplace_back(from, std::move(payload));
  }));
  bound_port_ = port;
  bound_ = true;
  return OkStatus();
}

Status CatnipUdpQueue::StartConnect(Endpoint remote) {
  remote_ = remote;
  has_remote_ = true;
  if (!bound_) {
    // Auto-bind an ephemeral-ish port derived from the queue address.
    for (std::uint16_t port = 20000; port < 21000; ++port) {
      if (Bind(port).ok()) {
        break;
      }
    }
  }
  return OkStatus();
}

Status CatnipUdpQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed queue");
  }
  if (!has_remote_) {
    return NotConnected("udp push requires connect(remote)");
  }
  // One element = one datagram; the device keeps the unit intact on the wire, which
  // is the "preserve the application data unit on the device" goal of §4.2.
  const Status status = libos_->stack().UdpSend(bound_port_, remote_, sga.Flatten());
  QResult res;
  res.op = OpType::kPush;
  res.status = status;
  ready_.emplace_back(token, std::move(res));
  return OkStatus();
}

Status CatnipUdpQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed queue");
  }
  if (!bound_) {
    return NotConnected("udp pop requires bind");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool CatnipUdpQueue::Progress(CompletionSink& sink) {
  bool progress = false;
  while (!ready_.empty()) {
    sink.CompleteOp(ready_.front().first, std::move(ready_.front().second));
    ready_.pop_front();
    progress = true;
  }
  // Datagrams can never arrive through a dead NIC: fail pending pops (§4.4).
  if (libos_->stack().device_failed()) {
    while (!pending_pops_.empty()) {
      QResult res;
      res.op = OpType::kPop;
      res.status = DeviceFailed("nic is dead");
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
    }
  }
  while (!pending_pops_.empty() && !inbound_.empty()) {
    auto [from, payload] = std::move(inbound_.front());
    inbound_.pop_front();
    QResult res;
    res.op = OpType::kPop;
    res.sga = SgArray(std::move(payload));  // zero-copy slice of the received frame
    sink.CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
    progress = true;
  }
  return progress;
}

bool CatnipUdpQueue::SupportsFilterOffload() const {
  return libos_->nic().config().supports_offload && bound_;
}

Status CatnipUdpQueue::InstallOffloadFilter(const ElementPredicate& pred) {
  if (!SupportsFilterOffload()) {
    return Unsupported("device cannot run filters");
  }
  // Compile the element predicate into an on-NIC packet program: it must only act on
  // UDP datagrams addressed to this queue's port and pass everything else untouched.
  NicProgram prog;
  prog.kind = NicProgram::Kind::kFilter;
  prog.host_cost_ns = pred.host_cost_ns;
  const std::uint16_t port = bound_port_;
  auto fn = pred.fn;
  prog.filter = [port, fn](const Buffer& frame) {
    const auto span = frame.span();
    if (span.size() < kEthHeaderSize + kIpv4HeaderSize + kUdpHeaderSize) {
      return true;
    }
    const EthHeader eth = ParseEthHeader(span);
    if (eth.ethertype != kEtherTypeIpv4) {
      return true;
    }
    auto ip = ParseIpv4Header(span.subspan(kEthHeaderSize));
    if (!ip || ip->protocol != kIpProtoUdp) {
      return true;
    }
    auto udp = ParseUdpHeader(span.subspan(kEthHeaderSize + kIpv4HeaderSize));
    if (!udp || udp->dst_port != port) {
      return true;
    }
    SgArray element(frame.Slice(kEthHeaderSize + kIpv4HeaderSize + kUdpHeaderSize,
                                udp->length - kUdpHeaderSize));
    return fn(element);
  };
  return libos_->nic().InstallRxProgram(libos_->nic_queue(), std::move(prog));
}

Status CatnipUdpQueue::Close() {
  if (closed_) {
    return OkStatus();
  }
  closed_ = true;
  if (bound_) {
    libos_->stack().UdpUnbind(bound_port_);
    bound_ = false;
  }
  return OkStatus();
}

}  // namespace demi
