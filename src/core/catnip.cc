#include "src/core/catnip.h"

#include <algorithm>
#include <cstring>

#include "src/common/byte_order.h"
#include "src/common/logging.h"
#include "src/sim/counters.h"

namespace demi {

CatnipLibOS::CatnipLibOS(HostCpu* host, SimNic* nic, SimKernel* control_kernel,
                         CatnipConfig config)
    : LibOS(host),
      nic_(nic),
      kernel_(control_kernel),
      config_(std::move(config)),
      path_policy_(config_.adaptive),
      session_rng_(config_.recovery.seed ^ 0x5e5510d15ull) {
  // Kernel-less hosts take the configured queue directly (shard index for RSS-sharded
  // workers); a control kernel's lease below overrides it.
  nic_queue_ = config_.nic_queue;
  // Control path (Figure 2): ask the kernel for a dedicated NIC queue, once.
  if (control_kernel != nullptr) {
    if (config_.tenant.has_value()) {
      // Multi-tenant mode: mint a tenant, lease a queue bound to it, and grant
      // every memory-manager arena (current and future) into the tenant's device
      // capability set — transparent registration (§4.5) under isolation.
      auto minted = control_kernel->CreateTenant(*config_.tenant);
      DEMI_CHECK(minted.ok() && "kernel refused to mint a tenant");
      tenant_ = *minted;
      auto lease = control_kernel->AllocateNicQueue(tenant_);
      DEMI_CHECK(lease.ok() && "no NIC queue available for the libOS");
      nic_queue_ = *lease;
      memory_.AttachDevice(
          [kernel = control_kernel, tenant = tenant_](std::shared_ptr<BufferStorage> arena) {
            (void)kernel->GrantTenantMemory(tenant, arena);
          });
    } else {
      auto lease = control_kernel->AllocateNicQueue();
      DEMI_CHECK(lease.ok() && "no NIC queue available for the libOS");
      nic_queue_ = *lease;
      // Map the libOS arenas for device DMA (IOMMU setup) — also control path.
      (void)control_kernel->MapForDevice(2 * 1024 * 1024);
    }
  }
  NetStackConfig net_cfg;
  net_cfg.ip = config_.ip;
  net_cfg.nic_queue = nic_queue_;
  net_cfg.tcp = config_.tcp;
  net_cfg.seed = config_.seed;
  net_cfg.rss_steering = config_.rss_steering;
  net_cfg.rx_batch = config_.rx_batch;
  // Zero-copy TX: protocol headers come from the libOS memory manager's
  // pre-registered header pool instead of the heap.
  net_cfg.memory = &memory_;
  // Costs default to the user-level stack entries of the cost model.
  stack_ = std::make_unique<NetStack>(host, nic, net_cfg);
}

Result<std::unique_ptr<IoQueue>> CatnipLibOS::NewSocketQueue() {
  return std::unique_ptr<IoQueue>(new CatnipTcpQueue(this, nullptr));
}

bool CatnipLibOS::PollDevice() {
  if (sparse_polling() && !device_failure_marked_ && stack_->device_failed()) {
    device_failure_marked_ = true;
    MarkAllDirty();
  }
  return false;
}

Result<QDesc> CatnipLibOS::SocketUdp() {
  ChargeCall();
  return InstallQueue(std::make_unique<CatnipUdpQueue>(this));
}

// --- CatnipTcpQueue ---

CatnipTcpQueue::CatnipTcpQueue(CatnipLibOS* libos, TcpConnection* conn)
    : libos_(libos), conn_(conn) {
  // Accepted plain connections (conn != null) never speak the recovery protocol:
  // recovery sessions are built through the listener's embryo path instead, so a
  // recovery-enabled server still interoperates with plain-mode peers.
  recovery_ = libos->recovery().enabled && conn == nullptr;
  if (recovery_) {
    const RecoveryConfig& cfg = libos->recovery();
    log_ = ReplayLog(cfg.replay_log_limit);
    breaker_ = CircuitBreaker(cfg.breaker_threshold);
    rng_ = Rng(cfg.seed ^ libos->NewSessionId());
    alive_ = std::make_shared<bool>(true);
    heat_.set_halflife(libos->path_policy().config().heat_halflife_ns);
  }
  AttachReadyHook();  // accepted connections arrive with conn_ already live
}

CatnipTcpQueue::~CatnipTcpQueue() {
  if (ready_hook_attached_ && conn_ != nullptr) {
    conn_->set_on_ready(nullptr);  // the connection outlives us (stack-owned)
  }
  ReleaseFastResources();
  if (recovery_ && session_id_ != 0 && libos_->FindSession(session_id_) == this) {
    libos_->UnregisterSession(session_id_);
  }
}

void CatnipTcpQueue::AttachReadyHook() {
  if (conn_ == nullptr || !libos_->sparse_polling()) {
    return;
  }
  conn_->set_on_ready([this](TcpConnection*) { libos_->MarkDirty(this); });
  ready_hook_attached_ = true;
  libos_->MarkDirty(this);
}

bool CatnipTcpQueue::Quiescent() const {
  if (recovery_) {
    return false;  // session timers/handshakes need visits; recovery uses dense polling
  }
  if (!pending_pushes_.empty() || !preloaded_.empty()) {
    return false;
  }
  if (conn_ == nullptr) {
    return true;  // listener or unconnected socket: accepts go via PollControlOps
  }
  // A pending pop may sleep when nothing is deliverable: the on-ready hook re-marks
  // the queue the moment bytes, EOF, a reset, or connection death arrive. The decode
  // loop exhausts buffered complete frames before ever reporting no-progress, so
  // partial decoder bytes can sleep too (their continuation is a future readable edge).
  return !conn_->readable() && !conn_->dead();
}

Status CatnipTcpQueue::Bind(std::uint16_t port) {
  bound_port_ = port;
  return OkStatus();
}

Status CatnipTcpQueue::Listen() {
  if (bound_port_ == 0) {
    return InvalidArgument("listen requires bind");
  }
  auto listener = libos_->stack().TcpListen(bound_port_);
  RETURN_IF_ERROR(listener.status());
  listener_ = *listener;
  if (recovery_ && libos_->kernel() != nullptr) {
    // Legacy-path twin: the same port on the kernel stack, so sessions can reattach
    // even when the bypass NIC is gone.
    SimKernel* kernel = libos_->kernel();
    auto fd = kernel->Socket();
    if (fd.ok() && kernel->Bind(*fd, bound_port_).ok() && kernel->Listen(*fd).ok()) {
      kernel_listen_fd_ = *fd;
    } else if (fd.ok()) {
      (void)kernel->CloseFd(*fd);
    }
  }
  return OkStatus();
}

Result<std::unique_ptr<IoQueue>> CatnipTcpQueue::TryAccept() {
  if (!recovery_) {
    if (listener_ == nullptr) {
      return Status(ErrorCode::kInvalidArgument, "not listening");
    }
    TcpConnection* conn = listener_->Accept();
    if (conn == nullptr) {
      return Status(ErrorCode::kWouldBlock);
    }
    return std::unique_ptr<IoQueue>(new CatnipTcpQueue(libos_, conn));
  }
  if (listener_ == nullptr && kernel_listen_fd_ < 0) {
    return Status(ErrorCode::kInvalidArgument, "not listening");
  }
  (void)ProgressListener(*libos_);
  if (accept_ready_.empty()) {
    return Status(ErrorCode::kWouldBlock);
  }
  std::unique_ptr<IoQueue> q = std::move(accept_ready_.front());
  accept_ready_.pop_front();
  return q;
}

Status CatnipTcpQueue::StartConnect(Endpoint remote) {
  if (!recovery_) {
    if (conn_ != nullptr) {
      return Status(ErrorCode::kAlreadyConnected, "connect");
    }
    auto conn = libos_->stack().TcpConnect(remote);
    RETURN_IF_ERROR(conn.status());
    conn_ = *conn;
    AttachReadyHook();
    return OkStatus();
  }
  if (session_id_ != 0) {
    return Status(ErrorCode::kAlreadyConnected, "connect");
  }
  is_client_ = true;
  session_id_ = libos_->NewSessionId();
  primary_remote_ = remote;
  outage_start_ = now();
  attempt_ = 0;
  target_ = Target::kFast;
  in_outage_ = false;
  // The initial dial goes through the same retry machinery as a mid-session outage,
  // so a connect racing a fault is retried instead of surfacing kDeviceFailed.
  BeginAttempt();
  return OkStatus();
}

Status CatnipTcpQueue::ConnectStatus() {
  if (!recovery_) {
    if (conn_ == nullptr) {
      return NotConnected("connect not started");
    }
    if (libos_->stack().device_failed()) {
      return DeviceFailed("nic is dead");
    }
    if (conn_->established()) {
      return OkStatus();
    }
    if (conn_->dead()) {
      return ConnectionRefused("connect failed");
    }
    return WouldBlock();
  }
  if (session_id_ == 0 || !is_client_) {
    return NotConnected("connect not started");
  }
  switch (phase_) {
    case Phase::kActive:
      return OkStatus();
    case Phase::kFailed:
      return stream_error_.ok() ? ConnectionRefused("connect failed") : stream_error_;
    default:
      return WouldBlock();
  }
}

Status CatnipTcpQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed queue");
  }
  libos_->MarkDirty(this);
  if (!recovery_) {
    if (conn_ == nullptr) {
      return NotConnected("push before connect");
    }
    PendingPush push;
    push.token = token;
    // Zero copy: the wire parts reference the application's sga segments. The TCP
    // stack holds those references until acknowledged — free-protection does the rest
    // (§4.5).
    for (Buffer& part : EncodeFrame(sga, &libos_->memory())) {
      push.parts.push_back(std::move(part));
    }
    pending_pushes_.push_back(std::move(push));
    return OkStatus();
  }
  if (session_id_ == 0) {
    return NotConnected("push before connect");
  }
  if (phase_ == Phase::kFailed) {
    QResult res;
    res.op = OpType::kPush;
    res.status = stream_error_.ok() ? ConnectionReset("session failed") : stream_error_;
    libos_->CompleteOp(token, std::move(res));
    return OkStatus();
  }
  // The push completes once the element enters the replay log (the session has taken
  // responsibility for delivery); a full log exerts backpressure by parking the token.
  if (libos_->path_policy().enabled()) {
    heat_.Record(now());
  }
  staged_pushes_.emplace_back(token, sga);
  return OkStatus();
}

Status CatnipTcpQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed queue");
  }
  libos_->MarkDirty(this);
  if (!recovery_) {
    if (conn_ == nullptr) {
      return NotConnected("pop before connect");
    }
    pending_pops_.push_back(token);
    return OkStatus();
  }
  if (session_id_ == 0) {
    return NotConnected("pop before connect");
  }
  if (phase_ == Phase::kFailed && ready_elements_.empty()) {
    QResult res;
    res.op = OpType::kPop;
    res.status = stream_error_.ok() ? ConnectionReset("session failed") : stream_error_;
    libos_->CompleteOp(token, std::move(res));
    return OkStatus();
  }
  if (libos_->path_policy().enabled()) {
    heat_.Record(now());
  }
  pending_pops_.push_back(token);
  if (phase_ == Phase::kFailed) {
    (void)ServePops();
  }
  return OkStatus();
}

Status CatnipTcpQueue::Cancel(QToken token) {
  for (auto it = staged_pushes_.begin(); it != staged_pushes_.end(); ++it) {
    if (it->first == token) {
      staged_pushes_.erase(it);
      return OkStatus();
    }
  }
  for (auto it = pending_pushes_.begin(); it != pending_pushes_.end(); ++it) {
    if (it->token == token) {
      pending_pushes_.erase(it);
      return OkStatus();
    }
  }
  for (auto it = pending_pops_.begin(); it != pending_pops_.end(); ++it) {
    if (*it == token) {
      pending_pops_.erase(it);
      return OkStatus();
    }
  }
  return NotFound("token not pending on this queue");
}

bool CatnipTcpQueue::Progress(CompletionSink& sink) {
  if (!recovery_) {
    return ProgressPlain(sink);
  }
  if (closed_) {
    return false;
  }
  if (listener_ != nullptr || kernel_listen_fd_ >= 0) {
    return ProgressListener(sink);
  }
  return ProgressRecovery(sink);
}

// The pre-recovery data path, unchanged — plus serving elements inherited from an
// embryo handoff (preloaded_).
bool CatnipTcpQueue::ProgressPlain(CompletionSink& sink) {
  if (closed_ || conn_ == nullptr) {
    return false;
  }
  bool progress = false;

  // A dead device or dead connection can never transmit again: fail pending pushes
  // with a typed error instead of parking their tokens forever (§4.4).
  const bool device_failed = libos_->stack().device_failed();
  if ((device_failed || conn_->dead()) && !pending_pushes_.empty()) {
    const Status err = device_failed ? DeviceFailed("nic is dead")
                                     : ConnectionReset("connection reset");
    while (!pending_pushes_.empty()) {
      QResult res;
      res.op = OpType::kPush;
      res.status = err;
      sink.CompleteOp(pending_pushes_.front().token, std::move(res));
      pending_pushes_.pop_front();
      progress = true;
    }
  }

  while (!pending_pushes_.empty() && conn_->established()) {
    PendingPush& push = pending_pushes_.front();
    bool stalled = false;
    while (!push.parts.empty()) {
      const Status status = conn_->Send(push.parts.front());
      if (status.ok()) {
        push.parts.pop_front();
        progress = true;
        continue;
      }
      if (status.code() == ErrorCode::kResourceExhausted) {
        stalled = true;
        break;
      }
      QResult res;
      res.op = OpType::kPush;
      res.status = status;
      sink.CompleteOp(push.token, std::move(res));
      pending_pushes_.pop_front();
      progress = true;
      stalled = true;
      break;
    }
    if (stalled) {
      break;
    }
    QResult res;
    res.op = OpType::kPush;
    sink.CompleteOp(push.token, std::move(res));
    pending_pushes_.pop_front();
    progress = true;
  }

  while (!pending_pops_.empty() && !preloaded_.empty()) {
    QResult res;
    res.op = OpType::kPop;
    res.sga = std::move(preloaded_.front());
    preloaded_.pop_front();
    sink.CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
    progress = true;
  }

  // Zero-copy receive: stream slices feed the frame decoder directly.
  if (!pending_pops_.empty()) {
    while (true) {
      Buffer chunk = conn_->Recv(65536);
      if (chunk.empty()) {
        break;
      }
      decoder_.Feed(std::move(chunk));
      progress = true;
    }
  }
  while (!pending_pops_.empty()) {
    auto decoded = decoder_.Next();
    if (!decoded.ok()) {
      stream_error_ = decoded.status();
    }
    if (decoded.ok() && decoded->has_value()) {
      QResult res;
      res.op = OpType::kPop;
      res.sga = std::move(**decoded);
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
      continue;
    }
    Status terminal;
    if (device_failed) {
      terminal = DeviceFailed("nic is dead");
    } else if (!stream_error_.ok()) {
      terminal = stream_error_;
    } else if (conn_->reset()) {
      terminal = ConnectionReset("peer reset");
    } else if (conn_->recv_eof()) {
      terminal = EndOfFile();
    } else {
      break;  // need more bytes
    }
    QResult res;
    res.op = OpType::kPop;
    res.status = terminal;
    sink.CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
    progress = true;
  }
  return progress;
}

// --- recovery: listener ---

bool CatnipTcpQueue::ProgressListener(CompletionSink& sink) {
  (void)sink;
  bool progress = false;
  if (listener_ != nullptr) {
    while (TcpConnection* c = listener_->Accept()) {
      Embryo embryo;
      embryo.transport.AttachFast(c);
      embryos_.push_back(std::move(embryo));
      progress = true;
    }
  }
  SimKernel* kernel = libos_->kernel();
  if (kernel_listen_fd_ >= 0 && kernel != nullptr) {
    // Batched accept: under churn the legacy backlog fills between polls; one
    // crossing drains it instead of one crossing per pending connection.
    while (kernel->AcceptReady(kernel_listen_fd_)) {
      auto fds = kernel->AcceptBatch(kernel_listen_fd_, 64);
      if (!fds.ok()) {
        break;
      }
      for (const int fd : *fds) {
        Embryo embryo;
        embryo.transport.AttachLegacyAccepted(kernel, fd);
        embryos_.push_back(std::move(embryo));
      }
      progress = true;
    }
  }
  for (auto it = embryos_.begin(); it != embryos_.end();) {
    if (PumpEmbryo(*it)) {
      it = embryos_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  return progress;
}

// Returns true when the embryo resolved (adopted, promoted, or dropped).
bool CatnipTcpQueue::PumpEmbryo(Embryo& embryo) {
  while (true) {
    Buffer chunk = embryo.transport.Recv(65536);
    if (chunk.empty()) {
      break;
    }
    embryo.decoder.Feed(std::move(chunk));
  }
  auto decoded = embryo.decoder.Next();
  if (!decoded.ok()) {
    embryo.transport.Abort();  // garbage framing before identifying itself
    return true;
  }
  if (!decoded->has_value()) {
    if (embryo.transport.dead()) {
      embryo.transport.Abort();
      return true;
    }
    return false;  // first frame not complete yet
  }
  SgArray first = std::move(**decoded);
  if (auto hello = ParseHello(first); hello.has_value() && !hello->is_ack) {
    CatnipTcpQueue* existing = libos_->FindSession(hello->session_id);
    if (existing != nullptr) {
      // Reattach: route the new transport to the live session, silently.
      existing->AdoptTransport(std::move(embryo.transport), std::move(embryo.decoder),
                               hello->last_rx_seq);
    } else {
      auto queue = std::unique_ptr<CatnipTcpQueue>(new CatnipTcpQueue(libos_, nullptr));
      queue->is_client_ = false;
      queue->session_id_ = hello->session_id;
      libos_->RegisterSession(queue->session_id_, queue.get());
      queue->AdoptTransport(std::move(embryo.transport), std::move(embryo.decoder),
                            hello->last_rx_seq);
      accept_ready_.push_back(std::move(queue));
    }
    return true;
  }
  if (embryo.transport.kind() == FailoverTransport::Kind::kFast) {
    // A plain-mode peer: the embryo becomes an ordinary queue, keeping the decoder
    // state and the already-decoded first element.
    TcpConnection* conn = embryo.transport.ReleaseFast();
    auto queue = std::unique_ptr<CatnipTcpQueue>(new CatnipTcpQueue(libos_, conn));
    queue->decoder_ = std::move(embryo.decoder);
    queue->preloaded_.push_back(std::move(first));
    accept_ready_.push_back(std::move(queue));
    return true;
  }
  embryo.transport.Abort();  // legacy-path peer that doesn't speak recovery
  return true;
}

void CatnipTcpQueue::AdoptTransport(FailoverTransport transport, FrameDecoder decoder,
                                    std::uint64_t peer_last_rx) {
  ++attempt_epoch_;  // cancels any park-deadline or attempt timer
  transport_ = std::move(transport);
  decoder_ = std::move(decoder);
  log_.EvictThroughSeq(peer_last_rx);
  log_.MarkAllUnwritten();
  wire_parts_.clear();
  control_parts_.clear();
  bytes_sent_ = 0;
  clean_eof_ = false;
  attempt_ = 0;
  in_outage_ = false;
  breaker_.RecordSuccess();
  QueueControlFrame(HelloFrame{/*is_ack=*/true, /*is_ping=*/false, session_id_,
                               last_rx_seq_});
  phase_ = Phase::kActive;
  last_rx_activity_ = now();
  ArmKeepalive();
}

// --- recovery: connecting-side state machine ---

void CatnipTcpQueue::BeginAttempt() {
  if (now() > OutageDeadline()) {
    GiveUp(RetryExhausted("recovery deadline exceeded"));
    return;
  }
  if (in_outage_ || attempt_ > 0) {
    libos_->host().Count(Counter::kRetriesAttempted);
    libos_->sim().metrics().Trace(TraceKind::kRetryAttempt, now(), session_id_,
                                  attempt_);
  }
  bool dialing = false;
  if (target_ == Target::kFast) {
    if (!libos_->stack().device_failed()) {
      auto conn = libos_->stack().TcpConnect(primary_remote_);
      if (conn.ok()) {
        transport_.AttachFast(*conn);
        dialing = true;
      }
    }
  } else if (libos_->kernel() != nullptr) {
    const RecoveryConfig& cfg = libos_->recovery();
    const Endpoint remote =
        cfg.has_fallback_remote ? cfg.fallback_remote : primary_remote_;
    dialing = transport_.ConnectLegacy(libos_->kernel(), remote).ok();
  }
  if (!dialing) {
    OnAttemptFailed();
    return;
  }
  phase_ = Phase::kConnecting;
  ArmAttemptTimer();
}

void CatnipTcpQueue::OnAttemptEstablished() {
  // Fresh byte stream: everything unacknowledged must be re-sent behind a HELLO.
  decoder_ = FrameDecoder();
  control_parts_.clear();
  wire_parts_.clear();
  bytes_sent_ = 0;
  log_.MarkAllUnwritten();
  QueueControlFrame(HelloFrame{/*is_ack=*/false, /*is_ping=*/false, session_id_,
                               last_rx_seq_});
  phase_ = Phase::kHandshake;
  // The attempt timer armed by BeginAttempt stays live: it covers the handshake too.
}

void CatnipTcpQueue::OnAttemptFailed() {
  ++attempt_epoch_;
  transport_.Abort();
  phase_ = Phase::kIdle;
  const RetryPolicy& policy = libos_->recovery().retry;
  ++attempt_;
  if (attempt_ >= policy.max_attempts) {
    if (target_ == Target::kFast) {
      if (breaker_.RecordExhaustion()) {
        libos_->host().Count(Counter::kBreakerTrips);
        libos_->sim().metrics().Trace(TraceKind::kBreakerTrip, now(), session_id_);
      }
      // Fast path exhausted this outage: fail over to the legacy kernel path.
      target_ = Target::kLegacy;
      attempt_ = 0;
    } else {
      GiveUp(RetryExhausted("fast and legacy paths exhausted"));
      return;
    }
  }
  const TimeNs delay = policy.BackoffBeforeAttempt(attempt_, rng_);
  if (now() + delay > OutageDeadline()) {
    GiveUp(RetryExhausted("recovery deadline exceeded"));
    return;
  }
  ScheduleGuarded(delay, [this] {
    if (phase_ == Phase::kIdle) {
      BeginAttempt();
    }
  });
}

void CatnipTcpQueue::OnHandshakeComplete() {
  ++attempt_epoch_;  // disarms the attempt timer
  phase_ = Phase::kActive;
  attempt_ = 0;
  in_outage_ = false;
  last_rx_activity_ = now();
  path_since_ = now();
  const bool voluntary = policy_switch_;
  policy_switch_ = false;
  ArmKeepalive();
  breaker_.RecordSuccess();
  if (transport_.kind() == FailoverTransport::Kind::kLegacy) {
    // Off the fast path — whether by policy or by failure, the flow's bypass
    // resources go back to the tenant pool immediately.
    ReleaseFastResources();
    if (!failed_over_) {
      failed_over_ = true;
      if (voluntary) {
        // A policy demotion is not an outage: it counts as a demotion, never as a
        // failover, so chaos/recovery accounting stays meaningful.
        libos_->host().Count(Counter::kDemotions);
        libos_->sim().metrics().Trace(TraceKind::kPathDemotion, now(), session_id_);
      } else {
        libos_->host().Count(Counter::kFailovers);
        libos_->sim().metrics().Trace(TraceKind::kFailover, now(), session_id_);
      }
    }
  } else {
    // On the fast path the flow must hold its tenant resources. A policy promotion
    // claimed them before dialing; failure-driven dials (initial connect, outage
    // recovery, auto-re-promotion) claim them here — and a flow that cannot get a
    // slot is demoted by policy instead of squatting on the device.
    if (libos_->path_policy().enabled() && is_client_ && !holds_fast_resources_ &&
        !AcquireFastResources()) {
      policy_switch_ = true;
      SalvageDrain();
      Redial(Target::kLegacy, /*count_as_outage=*/false);
      return;
    }
    if (failed_over_) {
      failed_over_ = false;
      if (voluntary) {
        libos_->host().Count(Counter::kPromotions);
        libos_->sim().metrics().Trace(TraceKind::kPathPromotion, now(), session_id_);
      } else {
        libos_->host().Count(Counter::kFastPathRepromotions);
        libos_->sim().metrics().Trace(TraceKind::kRepromotion, now(), session_id_);
      }
    }
  }
}

void CatnipTcpQueue::StartOutage() {
  // A tripped breaker skips the fast-path attempts this outage would burn.
  Redial(breaker_.tripped() ? Target::kLegacy : Target::kFast, /*count_as_outage=*/true);
}

void CatnipTcpQueue::Redial(Target target, bool count_as_outage) {
  ++attempt_epoch_;
  transport_.Abort();
  outage_start_ = now();
  attempt_ = 0;
  target_ = target;
  in_outage_ = count_as_outage;
  phase_ = Phase::kIdle;
  BeginAttempt();
}

void CatnipTcpQueue::Park() {
  ++attempt_epoch_;
  transport_.Abort();
  phase_ = Phase::kParked;
  outage_start_ = now();
  // A parked session holds its state for the peer to reattach, but not forever.
  ScheduleGuarded(libos_->recovery().retry.deadline_ns, [this] {
    if (phase_ == Phase::kParked) {
      GiveUp(RetryExhausted("peer did not reattach before the deadline"));
    }
  });
}

void CatnipTcpQueue::GiveUp(Status cause) {
  ++attempt_epoch_;
  transport_.Abort();
  ReleaseFastResources();  // a dead session must not hold bypass capacity
  stream_error_ = cause;
  phase_ = Phase::kFailed;
  if (cause.code() == ErrorCode::kRetryExhausted) {
    libos_->host().Count(Counter::kRetryGiveups);
    libos_->sim().metrics().Trace(TraceKind::kRetryGiveup, now(), session_id_);
  }
  if (session_id_ != 0 && libos_->FindSession(session_id_) == this) {
    libos_->UnregisterSession(session_id_);
  }
  // Serve what was salvaged, then fail everything still pending — no hung qtokens.
  (void)ServePops();
  while (!pending_pops_.empty()) {
    QResult res;
    res.op = OpType::kPop;
    res.status = cause;
    libos_->CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
  }
  const Status push_err =
      cause.code() == ErrorCode::kEndOfFile ? ConnectionReset("peer closed") : cause;
  while (!staged_pushes_.empty()) {
    QResult res;
    res.op = OpType::kPush;
    res.status = push_err;
    libos_->CompleteOp(staged_pushes_.front().first, std::move(res));
    staged_pushes_.pop_front();
  }
}

// --- recovery: session data path ---

bool CatnipTcpQueue::ProgressRecovery(CompletionSink& sink) {
  (void)sink;  // recovery completions go through libos_ (timers have no sink)
  if (session_id_ == 0) {
    return false;  // socket created but neither connected nor adopted
  }
  bool progress = false;
  health_.Observe(libos_->nic().link_up(),
                  libos_->nic().failed() || libos_->stack().device_failed(), now());
  switch (phase_) {
    case Phase::kIdle:   // a backoff timer owns the next step
    case Phase::kFailed:
      break;
    case Phase::kConnecting:
      if (transport_.established()) {
        OnAttemptEstablished();
        progress = true;
      } else if (TransportDied()) {
        OnAttemptFailed();
        progress = true;
      }
      break;
    case Phase::kHandshake:
      if (TransportDied()) {
        OnAttemptFailed();
        progress = true;
        break;
      }
      progress |= PumpWriter();
      progress |= PumpReader(/*force=*/true);
      break;
    case Phase::kActive: {
      if (transport_.recv_eof()) {
        clean_eof_ = true;
      }
      if (TransportDied()) {
        progress = true;
        SalvageDrain();
        if (clean_eof_) {
          GiveUp(EndOfFile());
        } else if (is_client_) {
          StartOutage();
        } else {
          Park();
        }
        break;
      }
      progress |= StageToLog();
      progress |= PumpWriter();
      log_.EvictAcked(bytes_sent_ - transport_.unacked_bytes());
      progress |= PumpReader(/*force=*/false);
      progress |= ServePops();
      if (libos_->path_policy().enabled()) {
        // Load-adaptive placement: heat + hysteresis decide the path continuously;
        // the unconditional health-based re-promotion below stays out of the way.
        progress |= EvaluatePathPolicy();
        break;
      }
      // Fast-path re-promotion: once a flapped device has been continuously healthy
      // long enough, voluntarily migrate back (salvaging buffered bytes first).
      // Both clocks must serve the dwell: the local device has been continuously
      // healthy AND the session has sat on the legacy path that long. HealthyFor
      // alone is vacuous when the *peer's* device died (ours never flapped, so it
      // has been "healthy" since t=0) — without the path dwell the session would
      // redial the dead remote the instant every failover lands, thrashing forever.
      if (phase_ == Phase::kActive && is_client_ &&
          transport_.kind() == FailoverTransport::Kind::kLegacy &&
          !libos_->stack().device_failed() &&
          health_.health() == DeviceHealth::kHealthy &&
          health_.HealthyFor(now()) >= libos_->recovery().repromote_after_ns &&
          now() - path_since_ >= libos_->recovery().repromote_after_ns) {
        SalvageDrain();
        Redial(Target::kFast, /*count_as_outage=*/false);
        progress = true;
      }
      break;
    }
    case Phase::kParked:
      progress |= StageToLog();
      progress |= ServePops();
      break;
  }
  return progress;
}

// --- adaptive path placement (DESIGN.md §15) ---

bool CatnipTcpQueue::EvaluatePathPolicy() {
  PathPolicy& policy = libos_->path_policy();
  if (!is_client_ || phase_ != Phase::kActive) {
    return false;  // only the connecting side drives switches (servers follow)
  }
  const bool on_fast = transport_.kind() == FailoverTransport::Kind::kFast;
  const PathPolicy::Decision decision =
      policy.Evaluate(heat_, on_fast, now(), path_since_);
  if (decision == PathPolicy::Decision::kDemote && on_fast &&
      libos_->kernel() != nullptr) {
    // Cold/idle flow: hand the byte stream to the kernel path and return the bypass
    // resources. Same live-migration machinery as failover — exactly-once replay.
    SalvageDrain();
    ReleaseFastResources();
    policy_switch_ = true;
    Redial(Target::kLegacy, /*count_as_outage=*/false);
    return true;
  }
  if (decision == PathPolicy::Decision::kPromote && !on_fast &&
      !libos_->stack().device_failed() &&
      health_.health() == DeviceHealth::kHealthy) {
    // Budget first (churn guard), then capacity: a flow that cannot claim a slot
    // stays on the kernel path — no dial, nothing to unwind.
    if (!policy.TryTakePromotion(now()) || !AcquireFastResources()) {
      return false;
    }
    SalvageDrain();
    policy_switch_ = true;
    Redial(Target::kFast, /*count_as_outage=*/false);
    return true;
  }
  return false;
}

bool CatnipTcpQueue::AcquireFastResources() {
  if (holds_fast_resources_) {
    return true;
  }
  const TenantId tenant = libos_->tenant();
  if (tenant == kNoTenant || libos_->kernel() == nullptr) {
    holds_fast_resources_ = true;  // untenanted device: nothing to meter
    return true;
  }
  TenantRegistry* registry = libos_->kernel()->tenant_registry();
  if (!registry->TryAcquireFlowSlot(tenant)) {
    return false;
  }
  if (!registry->TryAcquireRegistration(tenant)) {
    registry->ReleaseFlowSlot(tenant);
    return false;
  }
  holds_fast_resources_ = true;
  return true;
}

void CatnipTcpQueue::ReleaseFastResources() {
  if (!holds_fast_resources_) {
    return;
  }
  holds_fast_resources_ = false;
  const TenantId tenant = libos_->tenant();
  if (tenant == kNoTenant || libos_->kernel() == nullptr) {
    return;
  }
  TenantRegistry* registry = libos_->kernel()->tenant_registry();
  registry->ReleaseFlowSlot(tenant);
  registry->ReleaseRegistration(tenant);
}

bool CatnipTcpQueue::StageToLog() {
  bool progress = false;
  while (!staged_pushes_.empty() && !log_.full()) {
    auto& [token, sga] = staged_pushes_.front();
    log_.Append(next_seq_++, std::move(sga));
    QResult res;
    res.op = OpType::kPush;
    libos_->CompleteOp(token, std::move(res));
    staged_pushes_.pop_front();
    progress = true;
  }
  return progress;
}

bool CatnipTcpQueue::PumpWriter() {
  if (!transport_.established()) {
    return false;
  }
  bool progress = false;
  while (!control_parts_.empty()) {
    const std::size_t n = control_parts_.front().size();
    const Status status = transport_.Send(control_parts_.front());
    if (!status.ok()) {
      return progress;  // stalled or dying; the phase machine notices death
    }
    bytes_sent_ += n;
    control_parts_.pop_front();
    progress = true;
  }
  while (true) {
    if (wire_parts_.empty()) {
      ReplayLog::Entry* next = log_.NextUnwritten();
      if (next == nullptr) {
        break;
      }
      wire_seq_ = next->seq;
      // From the memory manager, not the heap: on a tenant-bound queue the wire
      // parts must come from arenas in the tenant's DMA capability set.
      Buffer seq_hdr = libos_->memory().AllocateHeader(kRecoverySeqHeader);
      ByteWriter writer(seq_hdr.mutable_span());
      writer.U64(next->seq);
      SgArray wire(std::move(seq_hdr));
      for (const Buffer& seg : next->element.segments()) {
        wire.Append(seg);
      }
      for (Buffer& part : EncodeFrame(wire, &libos_->memory())) {
        wire_parts_.push_back(std::move(part));
      }
    }
    bool stalled = false;
    while (!wire_parts_.empty()) {
      const std::size_t n = wire_parts_.front().size();
      const Status status = transport_.Send(wire_parts_.front());
      if (!status.ok()) {
        stalled = true;
        break;
      }
      bytes_sent_ += n;
      wire_parts_.pop_front();
      progress = true;
    }
    if (stalled) {
      break;
    }
    // The entry whose parts just drained is fully on the wire at offset bytes_sent_.
    for (ReplayLog::Entry& entry : log_.entries()) {
      if (entry.seq == wire_seq_) {
        entry.written = true;
        entry.end_offset = bytes_sent_;
        break;
      }
    }
  }
  return progress;
}

bool CatnipTcpQueue::PumpReader(bool force) {
  if (!force && pending_pops_.empty()) {
    return false;  // rely on transport flow control to bound buffering
  }
  bool progress = false;
  while (true) {
    Buffer chunk = transport_.Recv(65536);
    if (chunk.empty()) {
      break;
    }
    last_rx_activity_ = now();
    decoder_.Feed(std::move(chunk));
    progress = true;
  }
  while (true) {
    auto decoded = decoder_.Next();
    if (!decoded.ok()) {
      GiveUp(decoded.status());  // corrupt framing is unrecoverable in-session
      return true;
    }
    if (!decoded->has_value()) {
      break;
    }
    ProcessFrame(**decoded);
    progress = true;
  }
  return progress;
}

void CatnipTcpQueue::ProcessFrame(const SgArray& body) {
  if (auto hello = ParseHello(body); hello.has_value()) {
    if (hello->is_ack && phase_ == Phase::kHandshake) {
      log_.EvictThroughSeq(hello->last_rx_seq);
      OnHandshakeComplete();
    }
    return;
  }
  std::uint64_t seq = 0;
  if (!ReadSeqHeader(body, &seq) || seq == kRecoveryControlSeq) {
    return;  // runt or unrecognized control frame
  }
  if (seq <= last_rx_seq_) {
    return;  // duplicate from a replay: already delivered
  }
  last_rx_seq_ = seq;
  ready_elements_.push_back(StripBytes(body, kRecoverySeqHeader));
}

bool CatnipTcpQueue::ServePops() {
  bool progress = false;
  while (!pending_pops_.empty() && !ready_elements_.empty()) {
    QResult res;
    res.op = OpType::kPop;
    res.sga = std::move(ready_elements_.front());
    ready_elements_.pop_front();
    libos_->CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
    progress = true;
  }
  if (phase_ == Phase::kActive && ready_elements_.empty() &&
      (clean_eof_ || transport_.recv_eof())) {
    while (!pending_pops_.empty()) {
      QResult res;
      res.op = OpType::kPop;
      res.status = EndOfFile();
      libos_->CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
    }
  }
  return progress;
}

void CatnipTcpQueue::SalvageDrain() {
  // TCP keeps in-order — hence transport-acknowledged — data readable even after a
  // reset, and the peer's replay log only evicts acknowledged bytes. Draining here
  // therefore recovers exactly the elements the peer will not replay.
  while (true) {
    Buffer chunk = transport_.Recv(65536);
    if (chunk.empty()) {
      break;
    }
    decoder_.Feed(std::move(chunk));
  }
  while (true) {
    auto decoded = decoder_.Next();
    if (!decoded.ok() || !decoded->has_value()) {
      break;
    }
    ProcessFrame(**decoded);
  }
}

void CatnipTcpQueue::QueueControlFrame(const HelloFrame& hello) {
  // Re-home the encoded hello into a memory-manager buffer: control frames ride the
  // same tenant-checked DMA path as data, so heap storage would be dropped by the
  // device capability check.
  const Buffer raw = EncodeHello(hello);
  Buffer body_buf = libos_->memory().AllocateHeader(raw.size());
  std::memcpy(body_buf.mutable_span().data(), raw.span().data(), raw.size());
  SgArray body(std::move(body_buf));
  for (Buffer& part : EncodeFrame(body, &libos_->memory())) {
    control_parts_.push_back(std::move(part));
  }
}

void CatnipTcpQueue::ArmKeepalive() {
  const TimeNs idle = libos_->recovery().keepalive_idle_ns;
  if (idle == 0 || keepalive_armed_) {
    return;
  }
  keepalive_armed_ = true;
  // Deliberately NOT ScheduleGuarded: attempt epochs advance on every reconnect,
  // but the keepalive guards the whole session. Only destruction or close kill it.
  std::weak_ptr<bool> alive = alive_;
  libos_->sim().Schedule(idle, [this, alive] {
    if (alive.expired() || closed_) {
      return;
    }
    keepalive_armed_ = false;
    KeepaliveTick();
  });
}

void CatnipTcpQueue::KeepaliveTick() {
  if (phase_ != Phase::kActive) {
    return;  // re-armed when the session next (re)activates
  }
  if (!pending_pops_.empty() && transport_.established() &&
      now() - last_rx_activity_ >= libos_->recovery().keepalive_idle_ns) {
    HelloFrame ping;
    ping.is_ping = true;
    ping.session_id = session_id_;
    ping.last_rx_seq = last_rx_seq_;
    QueueControlFrame(ping);
    PumpWriter();
  }
  ArmKeepalive();
}

void CatnipTcpQueue::ArmAttemptTimer() {
  ScheduleGuarded(libos_->recovery().retry.attempt_timeout_ns, [this] {
    if (phase_ == Phase::kConnecting || phase_ == Phase::kHandshake) {
      OnAttemptFailed();
    }
  });
}

void CatnipTcpQueue::ScheduleGuarded(TimeNs delay, std::function<void()> fn) {
  std::weak_ptr<bool> alive = alive_;
  const std::uint64_t epoch = attempt_epoch_;
  libos_->sim().Schedule(delay, [this, alive, epoch, fn = std::move(fn)] {
    if (alive.expired() || closed_ || epoch != attempt_epoch_) {
      return;  // the queue is gone, or the state machine moved past this timer
    }
    fn();
  });
}

bool CatnipTcpQueue::TransportDied() const {
  if (transport_.kind() == FailoverTransport::Kind::kFast &&
      libos_->stack().device_failed()) {
    return true;
  }
  return transport_.dead();
}

TimeNs CatnipTcpQueue::now() const { return libos_->sim().now(); }

TimeNs CatnipTcpQueue::OutageDeadline() const {
  return outage_start_ + libos_->recovery().retry.deadline_ns;
}

Status CatnipTcpQueue::Close() {
  if (closed_) {
    return OkStatus();
  }
  closed_ = true;
  if (!recovery_) {
    if (conn_ != nullptr) {
      conn_->Close();
    }
    return OkStatus();
  }
  ++attempt_epoch_;
  if (kernel_listen_fd_ >= 0 && libos_->kernel() != nullptr) {
    (void)libos_->kernel()->CloseFd(kernel_listen_fd_);
    kernel_listen_fd_ = -1;
  }
  for (Embryo& embryo : embryos_) {
    embryo.transport.Abort();
  }
  embryos_.clear();
  accept_ready_.clear();
  while (!pending_pops_.empty()) {
    QResult res;
    res.op = OpType::kPop;
    res.status = Cancelled("queue closed");
    libos_->CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
  }
  while (!staged_pushes_.empty()) {
    QResult res;
    res.op = OpType::kPush;
    res.status = Cancelled("queue closed");
    libos_->CompleteOp(staged_pushes_.front().first, std::move(res));
    staged_pushes_.pop_front();
  }
  if (session_id_ != 0 && libos_->FindSession(session_id_) == this) {
    libos_->UnregisterSession(session_id_);
  }
  transport_.Reset();  // graceful close on whichever path is live
  ReleaseFastResources();
  if (phase_ != Phase::kFailed) {
    phase_ = Phase::kFailed;
    stream_error_ = Cancelled("queue closed");
  }
  return OkStatus();
}

// --- CatnipUdpQueue ---

CatnipUdpQueue::~CatnipUdpQueue() {
  if (bound_) {
    libos_->stack().UdpUnbind(bound_port_);
  }
}

Status CatnipUdpQueue::Bind(std::uint16_t port) {
  if (bound_) {
    return Status(ErrorCode::kAlreadyExists, "already bound");
  }
  RETURN_IF_ERROR(libos_->stack().UdpBind(port, [this](Endpoint from, Buffer payload) {
    inbound_.emplace_back(from, std::move(payload));
  }));
  bound_port_ = port;
  bound_ = true;
  return OkStatus();
}

Status CatnipUdpQueue::StartConnect(Endpoint remote) {
  remote_ = remote;
  has_remote_ = true;
  if (!bound_) {
    // Auto-bind an ephemeral-ish port derived from the queue address.
    for (std::uint16_t port = 20000; port < 21000; ++port) {
      if (Bind(port).ok()) {
        break;
      }
    }
  }
  return OkStatus();
}

Status CatnipUdpQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed queue");
  }
  if (!has_remote_) {
    return NotConnected("udp push requires connect(remote)");
  }
  // One element = one datagram; the device keeps the unit intact on the wire, which
  // is the "preserve the application data unit on the device" goal of §4.2. The
  // segments ride to the NIC as referenced slices — no flatten, no copy.
  const Status status = libos_->stack().UdpSend(
      bound_port_, remote_, std::span<const Buffer>(sga.segments()));
  QResult res;
  res.op = OpType::kPush;
  res.status = status;
  ready_.emplace_back(token, std::move(res));
  return OkStatus();
}

Status CatnipUdpQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed queue");
  }
  if (!bound_) {
    return NotConnected("udp pop requires bind");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool CatnipUdpQueue::Progress(CompletionSink& sink) {
  bool progress = false;
  while (!ready_.empty()) {
    sink.CompleteOp(ready_.front().first, std::move(ready_.front().second));
    ready_.pop_front();
    progress = true;
  }
  // Datagrams can never arrive through a dead NIC: fail pending pops (§4.4).
  if (libos_->stack().device_failed()) {
    while (!pending_pops_.empty()) {
      QResult res;
      res.op = OpType::kPop;
      res.status = DeviceFailed("nic is dead");
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
    }
  }
  while (!pending_pops_.empty() && !inbound_.empty()) {
    auto [from, payload] = std::move(inbound_.front());
    inbound_.pop_front();
    QResult res;
    res.op = OpType::kPop;
    res.sga = SgArray(std::move(payload));  // zero-copy slice of the received frame
    sink.CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
    progress = true;
  }
  return progress;
}

bool CatnipUdpQueue::SupportsFilterOffload() const {
  return libos_->nic().config().supports_offload && bound_;
}

Status CatnipUdpQueue::InstallOffloadFilter(const ElementPredicate& pred) {
  if (!SupportsFilterOffload()) {
    return Unsupported("device cannot run filters");
  }
  // Compile the element predicate into an on-NIC packet program: it must only act on
  // UDP datagrams addressed to this queue's port and pass everything else untouched.
  NicProgram prog;
  prog.kind = NicProgram::Kind::kFilter;
  prog.host_cost_ns = pred.host_cost_ns;
  const std::uint16_t port = bound_port_;
  auto fn = pred.fn;
  prog.filter = [port, fn](const Buffer& frame) {
    const auto span = frame.span();
    if (span.size() < kEthHeaderSize + kIpv4HeaderSize + kUdpHeaderSize) {
      return true;
    }
    const EthHeader eth = ParseEthHeader(span);
    if (eth.ethertype != kEtherTypeIpv4) {
      return true;
    }
    auto ip = ParseIpv4Header(span.subspan(kEthHeaderSize));
    if (!ip || ip->protocol != kIpProtoUdp) {
      return true;
    }
    auto udp = ParseUdpHeader(span.subspan(kEthHeaderSize + kIpv4HeaderSize));
    if (!udp || udp->dst_port != port) {
      return true;
    }
    SgArray element(frame.Slice(kEthHeaderSize + kIpv4HeaderSize + kUdpHeaderSize,
                                udp->length - kUdpHeaderSize));
    return fn(element);
  };
  return libos_->nic().InstallRxProgram(libos_->nic_queue(), std::move(prog));
}

Status CatnipUdpQueue::Close() {
  if (closed_) {
    return OkStatus();
  }
  closed_ = true;
  if (bound_) {
    libos_->stack().UdpUnbind(bound_port_);
    bound_ = false;
  }
  return OkStatus();
}

}  // namespace demi
