#include "src/core/catmint.h"

#include "src/common/logging.h"

namespace demi {

namespace {
// Receive work-request ids live in a separate namespace from push qtokens.
constexpr std::uint64_t kRecvWrBit = 1ULL << 63;
}  // namespace

CatmintLibOS::CatmintLibOS(HostCpu* host, RdmaNic* nic, CatmintConfig config)
    : LibOS(host), nic_(nic), config_(std::move(config)) {
  // §4.5 transparent registration: every arena the memory manager creates — past and
  // future — is registered with the RDMA NIC, so application buffers are usable for
  // I/O without any explicit ibv_reg_mr calls.
  memory_.AttachDevice([nic](std::shared_ptr<BufferStorage> arena) {
    const auto r = nic->RegisterMemory(std::move(arena));
    if (!r.ok()) {
      // Registration exhaustion is a runtime condition (§2), not a programmer error:
      // buffers from this arena stay usable for CPU work but cannot be posted for I/O.
      LOG_WARN << "catmint: arena registration failed: " << r.status();
    }
  });
}

Result<std::unique_ptr<IoQueue>> CatmintLibOS::NewSocketQueue() {
  return std::unique_ptr<IoQueue>(new CatmintQueue(this, nullptr));
}

CatmintQueue::CatmintQueue(CatmintLibOS* libos, std::shared_ptr<RdmaQp> qp)
    : libos_(libos), qp_(std::move(qp)) {
  if (qp_ != nullptr && qp_->connected()) {
    ProvisionRecvBuffers();
  }
}

std::string CatmintQueue::RendezvousAddr(std::uint16_t port) const {
  return libos_->config().local_addr + ":" + std::to_string(port);
}

Status CatmintQueue::Bind(std::uint16_t port) {
  bound_port_ = port;
  return OkStatus();
}

Status CatmintQueue::Listen() {
  if (bound_port_ == 0) {
    return InvalidArgument("listen requires bind");
  }
  listen_addr_ = RendezvousAddr(bound_port_);
  RETURN_IF_ERROR(libos_->nic().Listen(listen_addr_));
  listening_ = true;
  return OkStatus();
}

Result<std::unique_ptr<IoQueue>> CatmintQueue::TryAccept() {
  if (!listening_) {
    return Status(ErrorCode::kInvalidArgument, "not listening");
  }
  auto qp = libos_->nic().Accept(listen_addr_);
  if (qp == nullptr) {
    return Status(ErrorCode::kWouldBlock);
  }
  return std::unique_ptr<IoQueue>(new CatmintQueue(libos_, std::move(qp)));
}

Status CatmintQueue::StartConnect(Endpoint remote) {
  if (qp_ != nullptr) {
    return Status(ErrorCode::kAlreadyConnected, "connect");
  }
  qp_ = libos_->nic().Connect(remote.ip.ToString() + ":" + std::to_string(remote.port));
  return OkStatus();
}

Status CatmintQueue::ConnectStatus() {
  if (qp_ == nullptr) {
    return NotConnected("connect not started");
  }
  if (qp_->connected()) {
    if (!provisioned_) {
      ProvisionRecvBuffers();
    }
    return OkStatus();
  }
  if (qp_->failed()) {
    return ConnectionRefused("rdma cm: nobody listening");
  }
  return WouldBlock();
}

Status CatmintQueue::PostOneRecv() {
  // Receive buffers come from the manager, so they are registered by construction.
  Buffer buf = libos_->memory().Allocate(libos_->config().max_element_bytes);
  return qp_->PostRecv(kRecvWrBit | next_recv_wr_++, std::move(buf));
}

void CatmintQueue::ProvisionRecvBuffers() {
  // This is the buffer provisioning §2 says raw-verbs applications must hand-roll:
  // enough right-sized receives that a conforming sender never hits RNR.
  DEMI_CHECK(qp_ != nullptr);
  for (std::size_t i = 0; i < libos_->config().recv_buffers; ++i) {
    if (!PostOneRecv().ok()) {
      break;
    }
  }
  provisioned_ = true;
}

Status CatmintQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed queue");
  }
  if (qp_ == nullptr) {
    return NotConnected("push before connect");
  }
  if (sga.total_bytes() > libos_->config().max_element_bytes) {
    return InvalidArgument("element exceeds the connection's max element size");
  }
  queued_pushes_.emplace_back(token, sga);
  return OkStatus();
}

Status CatmintQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed queue");
  }
  if (qp_ == nullptr) {
    return NotConnected("pop before connect");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool CatmintQueue::Progress(CompletionSink& sink) {
  if (closed_ || qp_ == nullptr) {
    return false;
  }
  bool progress = false;
  if (qp_->connected() && !provisioned_) {
    ProvisionRecvBuffers();
    progress = true;
  }

  // Submit queued pushes while the send queue has room.
  while (!queued_pushes_.empty() && qp_->connected()) {
    auto& [token, sga] = queued_pushes_.front();
    std::vector<Buffer> segments;
    segments.reserve(sga.segment_count());
    bool unregisterable = false;
    for (const Buffer& seg : sga) {
      if (libos_->nic().IsRegistered(seg)) {
        segments.push_back(seg);  // zero copy: the NIC gathers from app memory
      } else {
        // Transparent bounce for foreign memory: copy into a registered buffer.
        libos_->host().CopyBytes(seg.size());
        Buffer staged = libos_->memory().Allocate(seg.size());
        if (!libos_->nic().IsRegistered(staged)) {
          // The manager grew an arena the NIC refused to register (registration
          // exhaustion): no amount of bouncing can make this segment sendable.
          unregisterable = true;
          break;
        }
        std::memcpy(staged.mutable_data(), seg.data(), seg.size());
        segments.push_back(std::move(staged));
      }
    }
    if (unregisterable) {
      QResult res;
      res.op = OpType::kPush;
      res.status = ResourceExhausted("memory registration exhausted");
      sink.CompleteOp(token, std::move(res));
      queued_pushes_.pop_front();
      progress = true;
      continue;
    }
    const Status status = qp_->PostSend(token, std::move(segments));
    if (status.code() == ErrorCode::kResourceExhausted) {
      break;  // send queue full; retry next poll
    }
    queued_pushes_.pop_front();
    progress = true;
    if (!status.ok()) {
      QResult res;
      res.op = OpType::kPush;
      res.status = status;
      sink.CompleteOp(token, std::move(res));
    }
    // Success: completion arrives via the CQ below.
  }

  // Reap completions.
  for (const WorkCompletion& wc : qp_->PollCq(32)) {
    progress = true;
    if (wc.op == WorkCompletion::Op::kSend) {
      QResult res;
      res.op = OpType::kPush;
      res.status = wc.status;
      sink.CompleteOp(wc.wr_id, std::move(res));
    } else if (wc.op == WorkCompletion::Op::kRecv) {
      if (wc.status.ok()) {
        received_.emplace_back(SgArray(wc.payload));
        (void)PostOneRecv();  // keep the provisioned pool constant
      }
      // A failed recv leaves the QP in error; pops below surface the reset.
    }
  }

  while (!pending_pops_.empty() && !received_.empty()) {
    QResult res;
    res.op = OpType::kPop;
    res.sga = std::move(received_.front());
    received_.pop_front();
    sink.CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
    progress = true;
  }
  if (qp_->failed()) {
    // The QP can never make progress again: fail everything still queued with the
    // typed cause the hardware recorded (kQpError / kDeviceFailed on injected faults,
    // kConnectionReset otherwise) so no token is left pending (§4.4).
    while (!queued_pushes_.empty()) {
      QResult res;
      res.op = OpType::kPush;
      res.status = qp_->error_status();
      sink.CompleteOp(queued_pushes_.front().first, std::move(res));
      queued_pushes_.pop_front();
      progress = true;
    }
    while (!pending_pops_.empty()) {
      QResult res;
      res.op = OpType::kPop;
      res.status = qp_->error_status();
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
    }
  }
  return progress;
}

Status CatmintQueue::Close() {
  closed_ = true;
  return OkStatus();
}

}  // namespace demi
