// IoQueue: the abstract Demikernel I/O queue (§4.2).
//
// Every queue — network socket, storage log, in-memory pipe, or a combinator over
// other queues — carries *atomic units*: scatter-gather arrays pushed as one element
// and popped as one element. Concrete queues are provided by the library OSes
// (Catnap/Catnip/Catmint/Catfish) and by the combinators in queue_ops.h.
//
// Progress model: operations are registered (StartPush/StartPop) and completed later
// from Progress(), which each libOS's poll loop drives. Completion goes through the
// CompletionSink (the owning LibOS), which wakes exactly the waiter holding that
// qtoken.

#ifndef SRC_CORE_QUEUE_H_
#define SRC_CORE_QUEUE_H_

#include <memory>

#include "src/common/result.h"
#include "src/core/types.h"
#include "src/hw/pushdown.h"
#include "src/net/packet.h"

namespace demi {

// Where queues deliver finished operations.
class CompletionSink {
 public:
  virtual ~CompletionSink() = default;
  virtual void CompleteOp(QToken token, QResult result) = 0;
};

class IoQueue {
 public:
  virtual ~IoQueue() = default;

  // --- data path ---

  // Registers a push of `sga`; the queue completes `token` when it has taken
  // responsibility for the element (transmitted/queued/durable, per queue type).
  virtual Status StartPush(QToken token, const SgArray& sga) = 0;
  // Registers a pop; the queue completes `token` with the next atomic unit.
  virtual Status StartPop(QToken token) = 0;
  // Advances queue machinery; completes pending operations via `sink`.
  // Returns true if any work was done.
  virtual bool Progress(CompletionSink& sink) = 0;

  // --- control path (optional per queue type) ---

  virtual Status Bind(std::uint16_t port) { return Unsupported("bind"); }
  virtual Status Listen() { return Unsupported("listen"); }
  // Non-blocking accept: a new connection's queue, kWouldBlock, or a hard error.
  virtual Result<std::unique_ptr<IoQueue>> TryAccept() {
    return Status(ErrorCode::kUnsupported, "accept");
  }
  virtual Status StartConnect(Endpoint remote) { return Unsupported("connect"); }
  // Connect progress: OK once established, kWouldBlock while in flight, error if dead.
  virtual Status ConnectStatus() { return Unsupported("connect"); }

  // Abandons one registered-but-incomplete operation: the queue forgets the token and
  // will never complete it. kNotFound if the token is unknown or already completed;
  // queues that cannot un-register work return kUnsupported and the libOS instead
  // drops the completion when it eventually arrives.
  virtual Status Cancel(QToken token) { return Unsupported("cancel"); }

  // Graceful close; pending operations complete with kCancelled.
  virtual Status Close() = 0;

  // --- offload hooks (§4.3) ---

  // True when this queue can push an element filter down to its device.
  virtual bool SupportsFilterOffload() const { return false; }
  virtual Status InstallOffloadFilter(const ElementPredicate& pred) {
    return Unsupported("offload");
  }

  // True when this queue can push traversal programs down to its storage device
  // (BPF-for-storage-style dependent-read chasing, DESIGN.md §14).
  virtual bool SupportsPushdownOffload() const { return false; }
  // Installs a device-side traversal program for later StartPushdown calls.
  virtual Result<PushdownProgramId> InstallPushdownProgram(const PushdownProgram& prog) {
    return PushdownUnsupported("pushdown");
  }
  // Registers a device-side chained read rooted at queue-relative block `root_block`;
  // the queue completes `token` (pop-like) with the program's final value as the
  // element. The whole chain is one host completion; a mid-chain device fault or an
  // exhausted depth budget surfaces as the token's typed status.
  virtual Status StartPushdown(QToken token, PushdownProgramId program,
                               std::uint64_t root_block, const SgArray& arg) {
    return PushdownUnsupported("pushdown");
  }

  // --- sparse-polling hooks (LibOS::EnableSparsePolling, DESIGN.md §13) ---

  // True when the queue holds no registered-but-incomplete work and no undelivered
  // inbound data, so a sparse poller may drop it from the dirty set until the queue
  // marks itself dirty again. The conservative default keeps a queue type that never
  // marks itself permanently in the dirty set (dense behavior).
  virtual bool Quiescent() const { return false; }

  // Intrusive dirty-set membership flag; owned by the LibOS (see LibOS::MarkDirty).
  bool dirty_listed = false;
};

}  // namespace demi

#endif  // SRC_CORE_QUEUE_H_
