#include "src/core/event_loop.h"

namespace demi {

DemiEventLoop::DemiEventLoop(LibOS* libos) : libos_(libos) {
  libos_->sim().AddPoller(this);
}

DemiEventLoop::~DemiEventLoop() {
  for (auto& [qd, watch] : watches_) {
    if (watch.token != kInvalidQToken) {
      libos_->UnwatchToken(watch.token);
    }
  }
  libos_->sim().RemovePoller(this);
}

void DemiEventLoop::OnTokenComplete(QToken token, QDesc qd) {
  (void)token;
  ready_.push_back(qd);
}

void DemiEventLoop::Arm(QDesc qd, Watch& watch) {
  if (watch.is_accept) {
    auto token = libos_->AcceptAsync(qd);
    watch.token = token.ok() ? *token : kInvalidQToken;
  } else {
    auto token = libos_->Pop(qd);
    watch.token = token.ok() ? *token : kInvalidQToken;
  }
  if (watch.token != kInvalidQToken) {
    // Already-completed tokens fire into ready_ now and dispatch next Poll round.
    (void)libos_->WatchToken(watch.token, this);
  }
}

Status DemiEventLoop::WatchAccept(QDesc listen_qd, AcceptHandler handler) {
  if (watches_.contains(listen_qd)) {
    return AlreadyExists("queue already watched");
  }
  Watch watch;
  watch.is_accept = true;
  watch.on_accept = std::move(handler);
  Arm(listen_qd, watch);
  if (watch.token == kInvalidQToken) {
    return InvalidArgument("queue does not accept");
  }
  watches_[listen_qd] = std::move(watch);
  return OkStatus();
}

Status DemiEventLoop::WatchPop(QDesc qd, PopHandler handler) {
  if (watches_.contains(qd)) {
    return AlreadyExists("queue already watched");
  }
  Watch watch;
  watch.on_pop = std::move(handler);
  Arm(qd, watch);
  if (watch.token == kInvalidQToken) {
    return InvalidArgument("queue cannot pop");
  }
  watches_[qd] = std::move(watch);
  return OkStatus();
}

void DemiEventLoop::Unwatch(QDesc qd) {
  auto it = watches_.find(qd);
  if (it == watches_.end()) {
    return;
  }
  if (it->second.token != kInvalidQToken) {
    libos_->UnwatchToken(it->second.token);
  }
  watches_.erase(it);
}

void DemiEventLoop::CallLater(TimeNs delay, std::function<void()> fn) {
  libos_->sim().Schedule(delay, std::move(fn));
}

bool DemiEventLoop::Poll() {
  if (ready_.empty()) {
    return false;
  }
  bool progress = false;
  // Swap into scratch: handlers may watch/unwatch (growing ready_) from callbacks.
  scratch_.clear();
  std::swap(ready_, scratch_);
  libos_->sim().metrics().RecordStat(SimStat::kEventLoopBatch, scratch_.size());
  for (const QDesc qd : scratch_) {
    auto it = watches_.find(qd);
    if (it == watches_.end()) {
      continue;  // unwatched by an earlier callback this round
    }
    Watch& watch = it->second;
    if (watch.token == kInvalidQToken || !libos_->OpDone(watch.token)) {
      continue;  // stale notification (token already consumed and re-armed)
    }
    auto result = libos_->TakeResult(watch.token);
    watch.token = kInvalidQToken;
    progress = true;
    ++dispatched_;
    if (watch.is_accept) {
      if (result.ok() && result->status.ok()) {
        AcceptHandler handler = watch.on_accept;  // copy: handler may unwatch
        Arm(qd, watch);
        handler(result->new_qd);
      } else {
        Watch dead = std::move(watch);
        watches_.erase(it);
        (void)dead;  // accept failed terminally; drop the watch
      }
      continue;
    }
    if (result.ok() && result->status.ok()) {
      PopHandler handler = watch.on_pop;
      Arm(qd, watch);
      handler(qd, std::move(result->sga));
    } else {
      PopHandler handler = std::move(watch.on_pop);
      const Status status = result.ok() ? result->status : result.status();
      watches_.erase(it);
      handler(qd, status);  // terminal delivery (EOF/reset), watch removed
    }
  }
  return progress;
}

}  // namespace demi
