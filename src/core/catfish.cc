#include "src/core/catfish.h"

#include <cstring>

#include "src/common/byte_order.h"
#include "src/common/checksum.h"
#include "src/common/logging.h"

namespace demi {

CatfishLibOS::CatfishLibOS(HostCpu* host, BlockDevice* bdev, CatfishConfig config)
    : LibOS(host),
      bdev_(bdev),
      config_(std::move(config)),
      retry_rng_(config_.recovery.seed ^ 0xca7f15ull),
      alive_(std::make_shared<bool>(true)) {}

namespace {
// Faults worth retrying: the command may succeed on resubmission. Device death is
// permanent and surfaces immediately.
bool TransientDeviceError(const Status& status) {
  return status.code() == ErrorCode::kTimedOut || status.code() == ErrorCode::kMediaError;
}
}  // namespace

namespace {
// Synthesizes the device-CQ shape for errors produced on the host side (synchronous
// submit failures, retry exhaustion), so every CompletionFn sees one shape.
BlockCompletion SyntheticCompletion(Status status) {
  BlockCompletion c;
  c.status = std::move(status);
  return c;
}
}  // namespace

Status CatfishLibOS::SubmitToDevice(std::uint64_t cmd_id, const IoCmd& cmd) {
  switch (cmd.kind) {
    case IoKind::kWrite:
      return bdev_->SubmitWrite(cmd_id, cmd.lba, cmd.buf);
    case IoKind::kRead:
      return bdev_->SubmitRead(cmd_id, cmd.lba, 1, cmd.buf);
    case IoKind::kPushdown:
      return bdev_->SubmitPushdown(cmd_id, cmd.lba, cmd.program, cmd.buf);
  }
  return Internal("unknown io kind");
}

std::uint64_t CatfishLibOS::SubmitIo(IoCmd cmd, CompletionFn done, int attempt,
                                     TimeNs started_at) {
  CompletionFn wrapped = std::move(done);
  if (config_.recovery.enabled) {
    std::weak_ptr<bool> alive = alive_;
    CompletionFn inner = std::move(wrapped);
    // Retries resubmit the whole command — for a push-down chain that means the whole
    // chain from the root, never a device-internal step.
    wrapped = [this, alive, cmd, inner, attempt,
               started_at](const BlockCompletion& completion) {
      const Status& status = completion.status;
      if (status.ok() || !TransientDeviceError(status)) {
        inner(completion);
        return;
      }
      const RetryPolicy& policy = config_.recovery.retry;
      const TimeNs deadline = started_at + policy.deadline_ns;
      const int next = attempt + 1;
      if (next >= policy.max_attempts || host_->sim().now() > deadline) {
        host_->Count(Counter::kRetryGiveups);
        host_->sim().metrics().Trace(TraceKind::kRetryGiveup, host_->now(), cmd.lba);
        inner(SyntheticCompletion(RetryExhausted(
            std::string("device retries exhausted: ") + std::string(status.message()))));
        return;
      }
      host_->Count(Counter::kRetriesAttempted);
      host_->sim().metrics().Trace(TraceKind::kRetryAttempt, host_->now(), cmd.lba,
                                   static_cast<std::uint64_t>(next));
      // Clamp the jittered backoff to the remaining deadline budget: a resubmission
      // must never be scheduled past the deadline it is spending.
      const TimeNs remaining = deadline - host_->sim().now();
      const TimeNs delay =
          std::min(policy.BackoffBeforeAttempt(next, retry_rng_), remaining);
      host_->sim().Schedule(delay, [this, alive, cmd, inner, next, started_at,
                                    deadline] {
        if (alive.expired()) {
          return;  // the libOS is gone; drop the resubmission
        }
        // Re-check at fire time: clock skew between scheduling and firing (e.g. other
        // work advancing the simulated clock) must not stretch the budget.
        if (host_->sim().now() > deadline) {
          host_->Count(Counter::kRetryGiveups);
          host_->sim().metrics().Trace(TraceKind::kRetryGiveup, host_->now(), cmd.lba);
          inner(SyntheticCompletion(
              RetryExhausted("device retry deadline passed before resubmission")));
          return;
        }
        (void)SubmitIo(cmd, inner, next, started_at);
      });
    };
  }
  const std::uint64_t cmd_id = next_cmd_++;
  const Status status = SubmitToDevice(cmd_id, cmd);
  if (status.code() == ErrorCode::kResourceExhausted) {
    deferred_.push_back(Deferred{std::move(cmd), std::move(wrapped)});
    return cmd_id;
  }
  if (!status.ok()) {
    wrapped(SyntheticCompletion(status));
    return cmd_id;
  }
  callbacks_[cmd_id] = std::move(wrapped);
  return cmd_id;
}

Result<std::unique_ptr<IoQueue>> CatfishLibOS::NewFileQueue(const std::string& path,
                                                            bool create) {
  auto it = catalog_.find(path);
  if (it == catalog_.end()) {
    if (!create) {
      return NotFound(path);
    }
    FileMeta meta;
    meta.base_lba = next_free_lba_;
    meta.extent_blocks = config_.extent_blocks;
    next_free_lba_ += config_.extent_blocks;
    if (meta.base_lba + meta.extent_blocks > bdev_->num_blocks()) {
      return ResourceExhausted("device full");
    }
    it = catalog_.emplace(path, meta).first;
  }
  return std::unique_ptr<IoQueue>(new CatfishFileQueue(this, &it->second));
}

std::uint64_t CatfishLibOS::SubmitWrite(std::uint64_t lba, Buffer data, CompletionFn done) {
  IoCmd cmd;
  cmd.kind = IoKind::kWrite;
  cmd.lba = lba;
  cmd.buf = std::move(data);
  return SubmitIo(std::move(cmd), std::move(done), /*attempt=*/0, host_->sim().now());
}

std::uint64_t CatfishLibOS::SubmitRead(std::uint64_t lba, Buffer dest, CompletionFn done) {
  IoCmd cmd;
  cmd.kind = IoKind::kRead;
  cmd.lba = lba;
  cmd.buf = std::move(dest);
  return SubmitIo(std::move(cmd), std::move(done), /*attempt=*/0, host_->sim().now());
}

std::uint64_t CatfishLibOS::SubmitPushdown(std::uint64_t lba, PushdownProgramId program,
                                           Buffer arg, CompletionFn done) {
  IoCmd cmd;
  cmd.kind = IoKind::kPushdown;
  cmd.lba = lba;
  cmd.buf = std::move(arg);
  cmd.program = program;
  return SubmitIo(std::move(cmd), std::move(done), /*attempt=*/0, host_->sim().now());
}

Result<CatfishLibOS::FileMeta> CatfishLibOS::StatFile(const std::string& path) const {
  auto it = catalog_.find(path);
  if (it == catalog_.end()) {
    return NotFound(path);
  }
  return it->second;
}

Result<PushdownProgramId> CatfishLibOS::InstallPushdownProgram(const PushdownProgram& prog) {
  return bdev_->InstallProgram(prog);
}

Result<QToken> CatfishLibOS::PushdownRead(QDesc qd, PushdownProgramId program,
                                          std::uint64_t root_block, const SgArray& arg) {
  ChargeCall();
  IoQueue* q = GetQueue(qd);
  if (q == nullptr) {
    return BadDescriptor("pushdown");
  }
  const QToken token = NewToken(qd, OpType::kPop);
  const Status status = q->StartPushdown(token, program, root_block, arg);
  if (!status.ok()) {
    ReleaseFailedToken(token);
    return status;
  }
  return token;
}

bool CatfishLibOS::PollDevice() {
  bool progress = false;
  for (const BlockCompletion& c : bdev_->PollCompletions(64)) {
    auto it = callbacks_.find(c.id);
    if (it != callbacks_.end()) {
      CompletionFn fn = std::move(it->second);
      callbacks_.erase(it);
      fn(c);
      progress = true;
    }
  }
  // Resubmit commands deferred on a full submission queue.
  while (!deferred_.empty()) {
    Deferred d = std::move(deferred_.front());
    deferred_.pop_front();
    const std::uint64_t cmd_id = next_cmd_++;
    const Status status = SubmitToDevice(cmd_id, d.cmd);
    if (status.code() == ErrorCode::kResourceExhausted) {
      deferred_.push_front(std::move(d));
      break;
    }
    progress = true;
    if (!status.ok()) {
      d.done(SyntheticCompletion(status));
    } else {
      callbacks_[cmd_id] = std::move(d.done);
    }
  }
  return progress;
}

// --- CatfishFileQueue ---

CatfishFileQueue::CatfishFileQueue(CatfishLibOS* libos, CatfishLibOS::FileMeta* meta)
    : libos_(libos), meta_(meta), alive_(std::make_shared<bool>(true)) {}

CatfishFileQueue::~CatfishFileQueue() { *alive_ = false; }

std::vector<std::byte>& CatfishFileQueue::CachedBlock(std::uint64_t index) {
  auto [it, inserted] = block_cache_.try_emplace(index);
  if (inserted) {
    it->second.assign(kBlock, std::byte{0});
  }
  return it->second;
}

bool CatfishFileQueue::BlockResident(std::uint64_t index) const {
  return block_cache_.contains(index);
}

void CatfishFileQueue::FetchBlock(std::uint64_t index) {
  if (fetch_in_flight_.contains(index)) {
    return;
  }
  fetch_in_flight_[index] = true;
  Buffer dest = Buffer::Allocate(kBlock);
  std::weak_ptr<bool> alive = alive_;
  libos_->SubmitRead(meta_->base_lba + index, dest,
                     [this, alive, index, dest](const BlockCompletion& c) {
                       auto locked = alive.lock();
                       if (!locked || !*locked) {
                         return;  // queue closed before the read landed
                       }
                       fetch_in_flight_.erase(index);
                       if (c.status.ok()) {
                         auto& block = CachedBlock(index);
                         std::memcpy(block.data(), dest.data(), kBlock);
                       } else {
                         read_error_ = c.status;
                       }
                     });
}

bool CatfishFileQueue::ReadLogBytes(std::uint64_t offset, std::size_t len, std::byte* out) {
  if (len == 0) {
    // Zero-length reads touch no blocks; without this the (offset + len - 1)/kBlock
    // bound below underflows at offset 0 and sweeps the whole extent.
    return true;
  }
  // First pass: ensure residency (kick fetches for every cold block).
  bool all_resident = true;
  for (std::uint64_t index = offset / kBlock; index <= (offset + len - 1) / kBlock;
       ++index) {
    if (!BlockResident(index)) {
      FetchBlock(index);
      all_resident = false;
    }
  }
  if (!all_resident) {
    return false;
  }
  std::size_t at = 0;
  while (at < len) {
    const std::uint64_t pos = offset + at;
    const std::uint64_t index = pos / kBlock;
    const std::size_t in_block = pos % kBlock;
    const std::size_t take = std::min(kBlock - in_block, len - at);
    std::memcpy(out + at, block_cache_[index].data() + in_block, take);
    at += take;
  }
  return true;
}

void CatfishFileQueue::WriteBlockOut(std::uint64_t index, PendingPush* push) {
  Buffer data = Buffer::CopyOf(std::span<const std::byte>(CachedBlock(index)));
  ++push->writes_outstanding;
  std::weak_ptr<bool> alive = alive_;
  libos_->SubmitWrite(meta_->base_lba + index, std::move(data),
                      [alive, push](const BlockCompletion& c) {
                        auto locked = alive.lock();
                        if (!locked || !*locked) {
                          return;
                        }
                        if (!c.status.ok() && push->status.ok()) {
                          push->status = c.status;
                        }
                        --push->writes_outstanding;
                      });
}

Status CatfishFileQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed file queue");
  }
  const std::size_t record_len = kRecordHeader + sga.total_bytes();
  if (meta_->used_bytes + record_len > meta_->extent_blocks * kBlock) {
    return ResourceExhausted("file extent full");
  }

  // Serialize the record into the cached tail blocks. The common single-segment push
  // flattens for free (shared storage; only read below); multi-segment records pay —
  // and account — one gather copy.
  if (sga.segment_count() > 1) {
    libos_->host().CopyBytes(sga.total_bytes());
  }
  Buffer payload = sga.Flatten();
  std::byte header[kRecordHeader];
  ByteWriter w(header);
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(Crc32c(payload.span()));

  const std::uint64_t start = meta_->used_bytes;
  auto write_bytes = [this](std::uint64_t offset, std::span<const std::byte> bytes) {
    std::size_t at = 0;
    while (at < bytes.size()) {
      const std::uint64_t pos = offset + at;
      const std::uint64_t index = pos / kBlock;
      const std::size_t in_block = pos % kBlock;
      const std::size_t take = std::min(kBlock - in_block, bytes.size() - at);
      std::memcpy(CachedBlock(index).data() + in_block, bytes.data() + at, take);
      at += take;
    }
  };
  write_bytes(start, header);
  write_bytes(start + kRecordHeader, payload.span());
  meta_->used_bytes += record_len;
  ++meta_->records;

  // Persist every touched block (the tail block is rewritten in place — the classic
  // small-append pattern of a log on a block device).
  auto push = std::make_unique<PendingPush>();
  push->token = token;
  const std::uint64_t first_block = start / kBlock;
  const std::uint64_t last_block = (start + record_len - 1) / kBlock;
  for (std::uint64_t index = first_block; index <= last_block; ++index) {
    WriteBlockOut(index, push.get());
  }
  push->submitted = true;
  pending_pushes_.push_back(std::move(push));
  return OkStatus();
}

Status CatfishFileQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed file queue");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool CatfishFileQueue::SupportsPushdownOffload() const {
  return libos_->bdev().caps().program_offload;
}

Result<PushdownProgramId> CatfishFileQueue::InstallPushdownProgram(
    const PushdownProgram& prog) {
  if (closed_) {
    return BadDescriptor("install on closed file queue");
  }
  return libos_->InstallPushdownProgram(prog);
}

Status CatfishFileQueue::StartPushdown(QToken token, PushdownProgramId program,
                                       std::uint64_t root_block, const SgArray& arg) {
  if (closed_) {
    return BadDescriptor("pushdown on closed file queue");
  }
  if (root_block >= meta_->extent_blocks) {
    return InvalidArgument("pushdown root outside file extent");
  }
  pending_pushdowns_.push_back(token);
  std::weak_ptr<bool> alive = alive_;
  libos_->SubmitPushdown(
      meta_->base_lba + root_block, program, arg.Flatten(),
      [this, alive, token](const BlockCompletion& c) {
        auto locked = alive.lock();
        if (!locked || !*locked) {
          return;  // queue closed; Close() already failed the token
        }
        std::erase(pending_pushdowns_, token);
        QResult res;
        res.op = OpType::kPop;
        res.status = c.status;
        if (c.status.ok()) {
          res.sga = SgArray(Buffer::CopyOf(c.payload.span()));
        }
        ready_pushdowns_.emplace_back(token, std::move(res));
      });
  return OkStatus();
}

bool CatfishFileQueue::Progress(CompletionSink& sink) {
  bool progress = false;

  // Deliver finished push-down chains (one host completion per chain).
  while (!ready_pushdowns_.empty()) {
    auto [token, res] = std::move(ready_pushdowns_.front());
    ready_pushdowns_.pop_front();
    sink.CompleteOp(token, std::move(res));
    progress = true;
  }

  // Complete durable pushes in order.
  while (!pending_pushes_.empty()) {
    PendingPush& push = *pending_pushes_.front();
    if (!push.submitted || push.writes_outstanding > 0) {
      break;
    }
    QResult res;
    res.op = OpType::kPush;
    res.status = push.status;
    sink.CompleteOp(push.token, std::move(res));
    pending_pushes_.pop_front();
    progress = true;
  }

  // A failed fetch means the current record can never be read: fail the waiting pops
  // with the device's status, then clear so later pops may retry (a transient media
  // error on one LBA does not poison the queue forever).
  if (!read_error_.ok() && !pending_pops_.empty()) {
    const Status err = read_error_;
    read_error_ = OkStatus();
    while (!pending_pops_.empty()) {
      QResult res;
      res.op = OpType::kPop;
      res.status = err;
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
    }
  }

  // Replay records for pops.
  while (!pending_pops_.empty()) {
    if (read_offset_ >= meta_->used_bytes) {
      // End of log snapshot: nothing (more) to replay.
      QResult res;
      res.op = OpType::kPop;
      res.status = EndOfFile();
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
      continue;
    }
    std::byte header[kRecordHeader];
    if (!ReadLogBytes(read_offset_, kRecordHeader, header)) {
      break;  // cold blocks; fetches in flight
    }
    ByteReader r(header);
    const std::uint32_t len = r.U32();
    const std::uint32_t crc = r.U32();
    if (read_offset_ + kRecordHeader + len > meta_->used_bytes) {
      QResult res;
      res.op = OpType::kPop;
      res.status = ProtocolError("truncated record");
      sink.CompleteOp(pending_pops_.front(), std::move(res));
      pending_pops_.pop_front();
      progress = true;
      continue;
    }
    Buffer payload = Buffer::Allocate(len);
    if (!ReadLogBytes(read_offset_ + kRecordHeader, len, payload.mutable_data())) {
      break;
    }
    QResult res;
    res.op = OpType::kPop;
    if (Crc32c(payload.span()) != crc) {
      res.status = ProtocolError("record checksum mismatch");
    } else {
      res.sga = SgArray(std::move(payload));
    }
    read_offset_ += kRecordHeader + len;
    sink.CompleteOp(pending_pops_.front(), std::move(res));
    pending_pops_.pop_front();
    progress = true;
  }
  return progress;
}

Status CatfishFileQueue::Close() {
  if (closed_) {
    return OkStatus();
  }
  closed_ = true;
  // Kill in-flight device continuations first: the libOS destroys this queue right
  // after Close() returns, so a completion landing later must find *alive_ false.
  *alive_ = false;

  // Deliver push-down results that already finished on the device, then fail every
  // still-outstanding token with kCancelled — no qtoken is ever left pending.
  while (!ready_pushdowns_.empty()) {
    auto [token, res] = std::move(ready_pushdowns_.front());
    ready_pushdowns_.pop_front();
    libos_->CompleteOp(token, std::move(res));
  }
  auto cancel = [this](QToken token, OpType op) {
    QResult res;
    res.op = op;
    res.status = Cancelled("file queue closed");
    libos_->CompleteOp(token, std::move(res));
  };
  for (const auto& push : pending_pushes_) {
    cancel(push->token, OpType::kPush);
  }
  pending_pushes_.clear();
  for (QToken token : pending_pops_) {
    cancel(token, OpType::kPop);
  }
  pending_pops_.clear();
  for (QToken token : pending_pushdowns_) {
    cancel(token, OpType::kPop);
  }
  pending_pushdowns_.clear();
  return OkStatus();
}

}  // namespace demi
