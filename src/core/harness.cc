#include "src/core/harness.h"

#include "src/common/logging.h"

namespace demi {

TestHarness::TestHarness(CostModel cost, FabricConfig fabric_cfg)
    : sim_(cost), faults_(&sim_, fabric_cfg.seed), fabric_(&sim_, fabric_cfg),
      rdma_cm_(&sim_) {
  fabric_.set_fault_injector(&faults_);
}

TestHarness::~TestHarness() {
  // Hosts tear down before the fabric/simulation (vector destroys in order; we clear
  // explicitly for clarity: liboses -> kernel -> devices -> cpu inside each Host).
  hosts_.clear();
}

TestHarness::Host& TestHarness::AddHost(const std::string& name, const std::string& ip,
                                        HostOptions options) {
  auto host = std::make_unique<Host>();
  host->name = name;
  host->ip = Ipv4Address::Parse(ip);
  host->options = options;
  host->cpu = std::make_unique<HostCpu>(&sim_, name, options.charges_clock);

  if (options.with_nic) {
    NicConfig nic_cfg;
    nic_cfg.num_queues = options.nic_queues;
    nic_cfg.supports_offload = options.nic_offload;
    host->nic = std::make_unique<SimNic>(host->cpu.get(), &fabric_,
                                         MacAddress::ForHost(next_host_id_), nic_cfg);
    host->nic->AttachFaultInjector(&faults_);
  }
  ++next_host_id_;

  if (options.with_rdma) {
    host->rdma = std::make_unique<RdmaNic>(host->cpu.get(), &rdma_cm_);
    host->rdma->AttachFaultInjector(&faults_);
  }
  if (options.with_block_device) {
    host->bdev = std::make_unique<BlockDevice>(host->cpu.get());
    host->bdev->AttachFaultInjector(&faults_);
  }
  host->kernel_ip = host->ip;
  if (options.with_kernel_nic && options.with_kernel) {
    // Dedicated kernel NIC: a plain device on its own MAC and a derived IP, so the
    // legacy kernel path keeps working when the bypass NIC dies.
    NicConfig knic_cfg;
    knic_cfg.num_queues = 1;
    host->knic = std::make_unique<SimNic>(host->cpu.get(), &fabric_,
                                          MacAddress::ForHost(1000 + next_host_id_ - 1),
                                          knic_cfg);
    host->knic->AttachFaultInjector(&faults_);
    host->kernel_ip = Ipv4Address{host->ip.addr + (100u << 16)};
  }
  if (options.with_kernel) {
    SimKernelConfig kcfg;
    kcfg.ip = host->kernel_ip;
    kcfg.tcp = options.tcp;
    SimNic* kernel_nic = host->knic != nullptr ? host->knic.get() : host->nic.get();
    host->kernel = std::make_unique<SimKernel>(host->cpu.get(), kernel_nic,
                                               host->bdev.get(), kcfg);
    if (host->knic != nullptr && host->nic != nullptr) {
      // The kernel's stack runs on the dedicated NIC; bypass-queue leases for
      // libOSes still come from the (separate) bypass device.
      host->kernel->SetBypassNic(host->nic.get());
    }
  }
  hosts_.push_back(std::move(host));
  return *hosts_.back();
}

CatnapLibOS& TestHarness::Catnap(Host& host) {
  DEMI_CHECK(host.kernel != nullptr);
  auto libos = std::make_unique<CatnapLibOS>(host.cpu.get(), host.kernel.get());
  auto* out = libos.get();
  host.liboses.push_back(std::move(libos));
  return *out;
}

CatnipLibOS& TestHarness::Catnip(Host& host) {
  DEMI_CHECK(host.nic != nullptr);
  CatnipConfig cfg;
  cfg.ip = host.ip;
  cfg.tcp = host.options.tcp;
  auto libos =
      std::make_unique<CatnipLibOS>(host.cpu.get(), host.nic.get(), host.kernel.get(), cfg);
  auto* out = libos.get();
  host.liboses.push_back(std::move(libos));
  return *out;
}

CatnipLibOS& TestHarness::Catnip(Host& host, RecoveryConfig recovery) {
  DEMI_CHECK(host.nic != nullptr);
  CatnipConfig cfg;
  cfg.ip = host.ip;
  cfg.tcp = host.options.tcp;
  cfg.recovery = std::move(recovery);
  cfg.recovery.enabled = true;
  auto libos =
      std::make_unique<CatnipLibOS>(host.cpu.get(), host.nic.get(), host.kernel.get(), cfg);
  auto* out = libos.get();
  host.liboses.push_back(std::move(libos));
  return *out;
}

CatnipLibOS& TestHarness::Catnip(Host& host, CatnipConfig config) {
  DEMI_CHECK(host.nic != nullptr);
  if (config.ip.addr == 0) {
    config.ip = host.ip;
  }
  auto libos = std::make_unique<CatnipLibOS>(host.cpu.get(), host.nic.get(),
                                             host.kernel.get(), std::move(config));
  auto* out = libos.get();
  host.liboses.push_back(std::move(libos));
  return *out;
}

CatmintLibOS& TestHarness::Catmint(Host& host) {
  DEMI_CHECK(host.rdma != nullptr);
  CatmintConfig cfg;
  cfg.local_addr = host.ip.ToString();
  auto libos = std::make_unique<CatmintLibOS>(host.cpu.get(), host.rdma.get(), cfg);
  auto* out = libos.get();
  host.liboses.push_back(std::move(libos));
  return *out;
}

CatfishLibOS& TestHarness::Catfish(Host& host, CatfishConfig config) {
  DEMI_CHECK(host.bdev != nullptr);
  auto libos =
      std::make_unique<CatfishLibOS>(host.cpu.get(), host.bdev.get(), std::move(config));
  auto* out = libos.get();
  host.liboses.push_back(std::move(libos));
  return *out;
}

}  // namespace demi
