// Catnip: the DPDK-style library OS.
//
// The device gives nothing but kernel bypass (Table 1, left column), so Catnip brings
// the entire networking stack (src/net) into the application's address space and runs
// it at user-level cost with zero copies:
//   - control path: the legacy kernel leases a NIC queue to the libOS (Figure 2) —
//     paid once at startup;
//   - data path: poll-mode rings, user-level TCP, length-prefix framing to preserve
//     queue-element boundaries over the byte stream (§5.2);
//   - memory: buffers come from the §4.5 memory manager; frames are sliced, never
//     copied, on receive; scatter-gather referenced, never copied, on transmit.
//
// Catnip also offers UDP queues where one datagram = one queue element. Those are the
// offload showcase: on a SmartNIC-capable device, a filter() over a UDP queue is
// installed as an on-NIC program and filtered packets never cost host CPU (§4.3).

#ifndef SRC_CORE_CATNIP_H_
#define SRC_CORE_CATNIP_H_

#include <deque>
#include <memory>
#include <string>

#include "src/core/libos.h"
#include "src/hw/nic.h"
#include "src/kernel/kernel.h"
#include "src/net/framing.h"
#include "src/net/stack.h"

namespace demi {

struct CatnipConfig {
  Ipv4Address ip;
  TcpConfig tcp;
  std::uint64_t seed = 11;
};

class CatnipLibOS final : public LibOS {
 public:
  // `control_kernel` may be null (no kernel on the host); then the libOS takes NIC
  // queue 0 directly. With a kernel, the queue is leased through the control path.
  CatnipLibOS(HostCpu* host, SimNic* nic, SimKernel* control_kernel, CatnipConfig config);
  // Queue destructors (UDP unbind) reach into the stack; drop them while it lives.
  ~CatnipLibOS() override { DestroyQueues(); }

  std::string name() const override { return "catnip"; }
  NetStack& stack() { return *stack_; }
  SimNic& nic() { return *nic_; }
  int nic_queue() const { return nic_queue_; }

  Result<QDesc> SocketUdp() override;

 protected:
  Result<std::unique_ptr<IoQueue>> NewSocketQueue() override;

 private:
  SimNic* nic_;
  int nic_queue_ = 0;
  std::unique_ptr<NetStack> stack_;
};

// TCP socket queue: framed atomic units over the user-level byte stream.
class CatnipTcpQueue final : public IoQueue {
 public:
  CatnipTcpQueue(CatnipLibOS* libos, TcpConnection* conn)
      : libos_(libos), conn_(conn) {}

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;

  Status Bind(std::uint16_t port) override;
  Status Listen() override;
  Result<std::unique_ptr<IoQueue>> TryAccept() override;
  Status StartConnect(Endpoint remote) override;
  Status ConnectStatus() override;
  Status Close() override;

  TcpConnection* connection() { return conn_; }

 private:
  struct PendingPush {
    QToken token;
    std::deque<Buffer> parts;
  };

  CatnipLibOS* libos_;
  TcpConnection* conn_ = nullptr;  // null until connect/accept
  TcpListener* listener_ = nullptr;
  std::uint16_t bound_port_ = 0;
  bool closed_ = false;
  FrameDecoder decoder_;
  Status stream_error_;
  std::deque<PendingPush> pending_pushes_;
  std::deque<QToken> pending_pops_;
};

// UDP datagram queue: one datagram = one element; filter-offload capable.
class CatnipUdpQueue final : public IoQueue {
 public:
  explicit CatnipUdpQueue(CatnipLibOS* libos) : libos_(libos) {}
  ~CatnipUdpQueue() override;

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;

  Status Bind(std::uint16_t port) override;
  Status StartConnect(Endpoint remote) override;  // sets the default destination
  Status ConnectStatus() override { return OkStatus(); }
  Status Close() override;

  bool SupportsFilterOffload() const override;
  Status InstallOffloadFilter(const ElementPredicate& pred) override;

 private:
  CatnipLibOS* libos_;
  std::uint16_t bound_port_ = 0;
  bool bound_ = false;
  bool closed_ = false;
  Endpoint remote_;
  bool has_remote_ = false;
  std::deque<std::pair<Endpoint, Buffer>> inbound_;
  std::deque<QToken> pending_pops_;
  std::deque<std::pair<QToken, QResult>> ready_;
};

}  // namespace demi

#endif  // SRC_CORE_CATNIP_H_
