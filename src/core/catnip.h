// Catnip: the DPDK-style library OS.
//
// The device gives nothing but kernel bypass (Table 1, left column), so Catnip brings
// the entire networking stack (src/net) into the application's address space and runs
// it at user-level cost with zero copies:
//   - control path: the legacy kernel leases a NIC queue to the libOS (Figure 2) —
//     paid once at startup;
//   - data path: poll-mode rings, user-level TCP, length-prefix framing to preserve
//     queue-element boundaries over the byte stream (§5.2);
//   - memory: buffers come from the §4.5 memory manager; frames are sliced, never
//     copied, on receive; scatter-gather referenced, never copied, on transmit.
//
// Catnip also offers UDP queues where one datagram = one queue element. Those are the
// offload showcase: on a SmartNIC-capable device, a filter() over a UDP queue is
// installed as an on-NIC program and filtered packets never cost host CPU (§4.3).
//
// Recovery mode (opt-in via CatnipConfig::recovery): TCP queues become *sessions*
// that survive the death of the transport underneath them. Pushed elements carry a
// sequence number and are retained in a bounded replay log until transport-level
// acknowledgment; when the bypass NIC dies or a flapped link kills the connection,
// the connecting side re-dials — fast path first with backoff, then the legacy
// kernel stack once a circuit breaker trips — replays the unacknowledged suffix,
// and resumes pending qtokens. Listeners accept on both paths and route a reattach
// HELLO to the live session. See src/core/recovery.h and DESIGN.md "Recovery model".

#ifndef SRC_CORE_CATNIP_H_
#define SRC_CORE_CATNIP_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/core/libos.h"
#include "src/core/path_policy.h"
#include "src/core/recovery.h"
#include "src/hw/nic.h"
#include "src/kernel/kernel.h"
#include "src/net/framing.h"
#include "src/net/stack.h"

namespace demi {

class CatnipTcpQueue;

struct CatnipConfig {
  Ipv4Address ip;
  TcpConfig tcp;
  std::uint64_t seed = 11;
  // Kernel-less hosts only: which NIC queue pair this libOS drives (with a control
  // kernel the queue comes from the lease instead). RSS-sharded workers (DESIGN.md
  // §13) each pass their shard index here.
  int nic_queue = 0;
  // Rely on the NIC's RSS hash instead of ntuple steering rules to direct flows to
  // nic_queue. Required when N sharded stacks serve the SAME port on one NIC; see
  // NetStackConfig::rss_steering.
  bool rss_steering = false;
  // RX frames ingested per stack poll (NetStackConfig::rx_batch). Overloaded
  // servers need ingest to outpace app-side consumption, or queueing stays in
  // the NIC ring where completion-queue load signals cannot see it.
  std::size_t rx_batch = 32;
  RecoveryConfig recovery;  // disabled by default; the plain path is untouched
  // Load-adaptive path placement (DESIGN.md §15); requires recovery mode (the
  // switch rides FailoverTransport's live migration). Disabled by default: path
  // changes then happen only on failure, exactly as PR 2 shipped.
  PathPolicyConfig adaptive;
  // When set (and a control kernel exists), the libOS runs as this tenant on a
  // shared bypass device: the kernel mints a TenantId, leases a tenant-bound queue,
  // and grants every memory-manager arena into the tenant's capability set. Absent,
  // the libOS gets the trusted single-owner path, byte-identical to before.
  std::optional<TenantQosConfig> tenant;
};

class CatnipLibOS final : public LibOS {
 public:
  // `control_kernel` may be null (no kernel on the host); then the libOS takes NIC
  // queue 0 directly. With a kernel, the queue is leased through the control path.
  // Recovery mode requires a kernel (the legacy path runs through it).
  CatnipLibOS(HostCpu* host, SimNic* nic, SimKernel* control_kernel, CatnipConfig config);
  // Queue destructors (UDP unbind) reach into the stack; drop them while it lives.
  ~CatnipLibOS() override { DestroyQueues(); }

  std::string name() const override { return "catnip"; }
  NetStack& stack() { return *stack_; }
  SimNic& nic() { return *nic_; }
  int nic_queue() const { return nic_queue_; }
  SimKernel* kernel() { return kernel_; }
  TenantId tenant() const { return tenant_; }  // kNoTenant unless config.tenant set
  const RecoveryConfig& recovery() const { return config_.recovery; }
  // Shared across every session of this libOS, so the promotion budget is global.
  PathPolicy& path_policy() { return path_policy_; }

  Result<QDesc> SocketUdp() override;

  // --- session registry (recovery listeners route reattach HELLOs here) ---
  std::uint64_t NewSessionId() { return session_rng_.NextU64() | 1; }  // never 0
  void RegisterSession(std::uint64_t sid, CatnipTcpQueue* queue) { sessions_[sid] = queue; }
  void UnregisterSession(std::uint64_t sid) { sessions_.erase(sid); }
  CatnipTcpQueue* FindSession(std::uint64_t sid) {
    auto it = sessions_.find(sid);
    return it == sessions_.end() ? nullptr : it->second;
  }

 protected:
  Result<std::unique_ptr<IoQueue>> NewSocketQueue() override;
  // Sparse polling only: latches the stack's device-failure edge and marks every
  // queue dirty once, so connections killed wholesale by a NIC death are visited
  // even though no per-queue submission re-marked them.
  bool PollDevice() override;

 private:
  SimNic* nic_;
  SimKernel* kernel_ = nullptr;
  CatnipConfig config_;
  int nic_queue_ = 0;
  TenantId tenant_ = kNoTenant;
  PathPolicy path_policy_{PathPolicyConfig{}};
  std::unique_ptr<NetStack> stack_;
  Rng session_rng_;
  std::unordered_map<std::uint64_t, CatnipTcpQueue*> sessions_;
  bool device_failure_marked_ = false;
};

// TCP socket queue: framed atomic units over the user-level byte stream. In recovery
// mode the queue is a session whose byte stream can migrate between the bypass path
// and the legacy-kernel path (see file header).
class CatnipTcpQueue final : public IoQueue {
 public:
  CatnipTcpQueue(CatnipLibOS* libos, TcpConnection* conn);
  ~CatnipTcpQueue() override;

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;

  Status Bind(std::uint16_t port) override;
  Status Listen() override;
  Result<std::unique_ptr<IoQueue>> TryAccept() override;
  Status StartConnect(Endpoint remote) override;
  Status ConnectStatus() override;
  Status Cancel(QToken token) override;
  Status Close() override;
  // Sparse polling: a plain queue is quiescent when it has no pending work and its
  // connection has no undelivered readiness — the connection's on-ready hook
  // (AttachReadyHook) re-marks the queue when bytes, death, or window edges arrive.
  bool Quiescent() const override;

  TcpConnection* connection() { return conn_; }

  // --- recovery-mode introspection (tests/stats) ---
  bool recovery_enabled() const { return recovery_; }
  std::uint64_t session_id() const { return session_id_; }
  FailoverTransport::Kind transport_kind() const { return transport_.kind(); }
  const HealthMonitor& health() const { return health_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  std::size_t replay_log_size() const { return log_.size(); }
  const FlowHeat& heat() const { return heat_; }
  bool holds_fast_resources() const { return holds_fast_resources_; }

 private:
  friend class CatnipLibOS;

  struct PendingPush {
    QToken token;
    std::deque<Buffer> parts;
  };

  // A just-accepted connection whose first frame decides its fate: a HELLO makes it
  // a recovery session (new, or a reattach to a live one); any other frame means a
  // plain-mode peer and the embryo becomes an ordinary queue.
  struct Embryo {
    FailoverTransport transport;
    FrameDecoder decoder;
  };

  enum class Phase : std::uint8_t {
    kIdle,        // between reconnect attempts (a timer owns the next step)
    kConnecting,  // transport dialing
    kHandshake,   // transport up; HELLO sent, replay started, waiting for the ACK
    kActive,      // session attached and flowing
    kParked,      // server side: transport died, waiting for the peer to reattach
    kFailed,      // recovery gave up; stream_error_ is terminal
  };
  enum class Target : std::uint8_t { kFast, kLegacy };

  // --- plain path (byte-identical to the pre-recovery code) ---
  bool ProgressPlain(CompletionSink& sink);
  // Under sparse polling, wires conn_'s on-ready callback to MarkDirty and marks the
  // queue once; no-op under dense polling or without a connection.
  void AttachReadyHook();

  // --- recovery path ---
  bool ProgressRecovery(CompletionSink& sink);
  bool ProgressListener(CompletionSink& sink);
  bool PumpEmbryo(Embryo& embryo);
  void BeginAttempt();
  void OnAttemptEstablished();
  void OnAttemptFailed();
  void OnHandshakeComplete();
  void StartOutage();  // client: transport died mid-session; start re-dialing
  // Drops the current transport and dials `target` afresh. `count_as_outage`
  // distinguishes forced reconnects (counted as retries) from voluntary
  // re-promotion dials.
  void Redial(Target target, bool count_as_outage);
  void Park();         // server: transport died; wait for the peer to reattach
  // --- adaptive path placement (client side; DESIGN.md §15) ---
  // Runs the heat/policy check at the tail of an active poll; returns true when a
  // voluntary switch started.
  bool EvaluatePathPolicy();
  // Claims a bypass flow slot + memory registration from the tenant pool before a
  // flow may live on the fast path; false leaves nothing held.
  bool AcquireFastResources();
  // Returns the claimed slot/registration so the QoS layer sees the freed capacity.
  void ReleaseFastResources();
  void AdoptTransport(FailoverTransport transport, FrameDecoder decoder,
                      std::uint64_t peer_last_rx);
  void GiveUp(Status cause);
  void SalvageDrain();  // drain acknowledged bytes off a dead transport
  bool StageToLog();    // staged pushes -> replay log (completes their tokens)
  bool PumpWriter();    // control frames + next unwritten log entry -> transport
  bool PumpReader(bool force);
  void ProcessFrame(const SgArray& body);
  bool ServePops();
  void QueueControlFrame(const HelloFrame& hello);
  // Keepalive: probe an idle peer we owe a pop from, so a silently dead one turns
  // into transport death. The timer outlives attempt epochs (it guards the whole
  // session, not one attempt), re-arming itself while the session is active.
  void ArmKeepalive();
  void KeepaliveTick();
  void ArmAttemptTimer();
  void ScheduleGuarded(TimeNs delay, std::function<void()> fn);
  bool TransportDied() const;
  TimeNs now() const;
  TimeNs OutageDeadline() const;

  CatnipLibOS* libos_;
  TcpConnection* conn_ = nullptr;  // null until connect/accept (plain path)
  TcpListener* listener_ = nullptr;
  std::uint16_t bound_port_ = 0;
  bool closed_ = false;
  bool ready_hook_attached_ = false;  // conn_'s on_ready points at this queue
  FrameDecoder decoder_;
  Status stream_error_;
  std::deque<PendingPush> pending_pushes_;
  std::deque<QToken> pending_pops_;
  // Elements decoded before this queue existed (embryo handoff of a plain peer).
  std::deque<SgArray> preloaded_;

  // --- recovery session state (untouched when recovery_ is false) ---
  bool recovery_ = false;
  bool is_client_ = false;
  std::uint64_t session_id_ = 0;
  Endpoint primary_remote_{};
  Phase phase_ = Phase::kIdle;
  Target target_ = Target::kFast;
  FailoverTransport transport_;
  ReplayLog log_{0};
  std::uint64_t next_seq_ = 1;      // sequence for the next staged element
  std::uint64_t last_rx_seq_ = 0;   // highest element sequence delivered
  std::uint64_t bytes_sent_ = 0;    // stream offset on the current transport
  std::uint64_t wire_seq_ = 0;      // log entry the wire parts belong to
  std::deque<Buffer> control_parts_;
  std::deque<Buffer> wire_parts_;
  std::deque<std::pair<QToken, SgArray>> staged_pushes_;
  std::deque<SgArray> ready_elements_;
  int attempt_ = 0;
  bool in_outage_ = false;  // reconnecting after an established session died
  TimeNs outage_start_ = 0;
  CircuitBreaker breaker_{1};
  HealthMonitor health_;
  bool failed_over_ = false;   // currently running on the legacy path
  bool clean_eof_ = false;     // peer FIN consumed: stream end, not an outage
  // --- adaptive path placement (untouched unless the libOS policy is enabled) ---
  FlowHeat heat_;                      // decayed op-rate tracker for this flow
  TimeNs path_since_ = 0;              // when the flow landed on its current path
  bool policy_switch_ = false;         // the in-flight redial is a policy decision
  bool holds_fast_resources_ = false;  // tenant flow slot + registration held
  TimeNs last_rx_activity_ = 0;   // when bytes last arrived on the transport
  bool keepalive_armed_ = false;  // at most one keepalive timer in flight
  Rng rng_{0};
  // Guards timer callbacks against queue destruction (weak) and stale attempts
  // (epoch: bumped whenever the state machine moves past what a timer armed).
  std::shared_ptr<bool> alive_;
  std::uint64_t attempt_epoch_ = 0;

  // --- recovery listener state ---
  int kernel_listen_fd_ = -1;
  std::deque<Embryo> embryos_;
  std::deque<std::unique_ptr<CatnipTcpQueue>> accept_ready_;
};

// UDP datagram queue: one datagram = one element; filter-offload capable.
class CatnipUdpQueue final : public IoQueue {
 public:
  explicit CatnipUdpQueue(CatnipLibOS* libos) : libos_(libos) {}
  ~CatnipUdpQueue() override;

  Status StartPush(QToken token, const SgArray& sga) override;
  Status StartPop(QToken token) override;
  bool Progress(CompletionSink& sink) override;

  Status Bind(std::uint16_t port) override;
  Status StartConnect(Endpoint remote) override;  // sets the default destination
  Status ConnectStatus() override { return OkStatus(); }
  Status Close() override;

  bool SupportsFilterOffload() const override;
  Status InstallOffloadFilter(const ElementPredicate& pred) override;

 private:
  CatnipLibOS* libos_;
  std::uint16_t bound_port_ = 0;
  bool bound_ = false;
  bool closed_ = false;
  Endpoint remote_;
  bool has_remote_ = false;
  std::deque<std::pair<Endpoint, Buffer>> inbound_;
  std::deque<QToken> pending_pops_;
  std::deque<std::pair<QToken, QResult>> ready_;
};

}  // namespace demi

#endif  // SRC_CORE_CATNIP_H_
