// LibOS: the Demikernel system-call interface (Figure 3) and the machinery shared by
// every library OS.
//
// One LibOS instance serves one application on one host, owning:
//   - the queue-descriptor table (sockets, files, in-memory queues, combinators),
//   - the qtoken namespace and pending-operation table,
//   - the wait/wait_any/wait_all machinery (§4.4),
//   - the §4.5 memory manager (transparent registration + free-protection), exposed
//     through sgaalloc.
//
// Concrete library OSes (Catnap, Catnip, Catmint, Catfish) only provide queue
// factories for their device type; everything else — combinators, waiting, memory —
// is shared, which is precisely the "build libOSes in a modular fashion and share as
// much code as possible" aspiration of §5.1.
//
// Threading/driving model: the LibOS registers as a simulation Poller. The Wait*
// family *drives the simulation* and therefore may only be called from top-level
// driver code (examples, benches). Code running inside the simulation (actors) uses
// the non-stepping OpDone/TakeResult pair instead.

#ifndef SRC_CORE_LIBOS_H_
#define SRC_CORE_LIBOS_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/pool.h"
#include "src/common/ring_buffer.h"
#include "src/core/queue.h"
#include "src/core/types.h"
#include "src/memory/memory_manager.h"
#include "src/sim/simulation.h"

namespace demi {

constexpr TimeNs kWaitForever = -1;

// Direct completion delivery for event-driven consumers (DemiEventLoop): instead of
// scanning tokens for OpDone, a watcher registered on a pending token is called the
// moment the operation completes. Exactly one consumer sees each completion — a
// watched token's completion bypasses the shared ready ring.
class CompletionWatcher {
 public:
  virtual ~CompletionWatcher() = default;
  virtual void OnTokenComplete(QToken token, QDesc qd) = 0;
};

// A completion claimed off the ready ring (LibOS::PopReady): the finished
// operation's identity plus its moved-out result. Claiming releases the qtoken, so
// a later TakeResult on it fails with kBadDescriptor — that is the stale-token
// contract that makes completion stealing safe (at most one consumer ever sees a
// completion, DESIGN.md §13).
struct ReadyCompletion {
  QToken token = kInvalidQToken;
  QDesc qd = kInvalidQDesc;
  OpType op = OpType::kPush;
  QResult result;
};

class LibOS : public Poller, public CompletionSink {
 public:
  LibOS(HostCpu* host, MemoryConfig mem_config = MemoryConfig{});
  ~LibOS() override;
  LibOS(const LibOS&) = delete;
  LibOS& operator=(const LibOS&) = delete;

  virtual std::string name() const = 0;

  // --- control path: network (Figure 3, top-left) ---

  Result<QDesc> Socket();
  // Datagram socket: each datagram is one queue element (no framing needed). Only
  // libOSes whose substrate has datagram semantics implement this.
  virtual Result<QDesc> SocketUdp() {
    return Status(ErrorCode::kUnsupported, name() + ": no datagram support");
  }
  Status Bind(QDesc qd, std::uint16_t port);
  Status Listen(QDesc qd);
  // Non-blocking accept, Figure 3 form: new connection qd or kWouldBlock.
  Result<QDesc> Accept(QDesc qd);
  // Token form: completes with QResult::new_qd once a connection arrives.
  Result<QToken> AcceptAsync(QDesc qd);
  // Starts a connect; redeem completion with ConnectAsync or poll ConnectDone.
  Status Connect(QDesc qd, Endpoint remote);
  Result<QToken> ConnectAsync(QDesc qd, Endpoint remote);
  Status Close(QDesc qd);

  // --- control path: files (Figure 3, bottom-left) ---

  Result<QDesc> Open(const std::string& path);
  Result<QDesc> Creat(const std::string& path);

  // --- control path: queue calls (Figure 3, right) ---

  Result<QDesc> QueueCreate();  // queue()
  Result<QDesc> Merge(QDesc qd1, QDesc qd2);
  Result<QDesc> Filter(QDesc qd, ElementPredicate pred);
  Result<QDesc> Sort(QDesc qd, ElementComparator cmp);
  Result<QDesc> MapQueue(QDesc qd, ElementTransform transform);
  // Splices qdin's pops into pushes on qdout, continuously, inside the libOS.
  Status QConnect(QDesc qdin, QDesc qdout);

  // --- data path (Figure 3, bottom) ---

  Result<QToken> Push(QDesc qd, const SgArray& sga);
  Result<QToken> Pop(QDesc qd);

  // Non-stepping completion check (safe inside simulation actors).
  bool OpDone(QToken token) const;
  // Removes and returns a completed result; kWouldBlock if still pending.
  Result<QResult> TakeResult(QToken token);
  // Same, but does not count an application wakeup — used by combinator queues and
  // qconnect splices driving *internal* operations, so C3-style wakeup accounting
  // reflects only application waits.
  Result<QResult> TakeResultInternal(QToken token);

  // Blocking forms: drive the simulation until completion or timeout.
  Result<QResult> Wait(QToken token, TimeNs timeout = kWaitForever);
  // Completes when ANY token finishes; returns (index, result). Exactly one waiter
  // consumes each completion — no thundering herd (§4.4).
  Result<std::pair<std::size_t, QResult>> WaitAny(std::span<const QToken> tokens,
                                                  TimeNs timeout = kWaitForever);
  Result<std::vector<QResult>> WaitAll(std::span<const QToken> tokens,
                                       TimeNs timeout = kWaitForever);
  // Bounded-time even across a failover in progress: on timeout the operation is
  // cancelled (never a hung qtoken) and kTimedOut is returned.
  Result<QResult> BlockingPush(QDesc qd, const SgArray& sga, TimeNs timeout = kWaitForever);
  Result<QResult> BlockingPop(QDesc qd, TimeNs timeout = kWaitForever);
  // Abandons a pending operation: its result (if it ever arrives) is dropped and the
  // token is forgotten. kNotFound for unknown tokens.
  Status CancelOp(QToken token);

  // Registers `watcher` for direct delivery when `token` completes; fires immediately
  // if the token already completed. kNotFound for unknown tokens. The watcher must
  // outlive the token or call UnwatchToken first.
  Status WatchToken(QToken token, CompletionWatcher* watcher);
  void UnwatchToken(QToken token);

  // --- memory (§4.5) ---

  SgArray SgaAlloc(std::size_t bytes);
  MemoryManager& memory() { return memory_; }
  HostCpu& host() { return *host_; }
  Simulation& sim() { return host_->sim(); }

  // --- plumbing ---

  // --- completion stealing (ZygOS-style, DESIGN.md §13) ---

  // Claims the next live completion off the ready ring in completion (FIFO) order,
  // releasing its token; false when the ring holds no live completions. Stale ring
  // hints (tokens already claimed elsewhere) are skipped and discarded. Does NOT
  // count an application wakeup — callers (worker loops, cross-core thieves)
  // account on the consuming side so exactly-one-wakeup holds per completion.
  bool PopReady(ReadyCompletion* out);
  // Ready-ring occupancy, stale hints included. This is the steal-victim load
  // signal: cheap to read cross-core, and safe to over-estimate because thieves
  // re-validate every entry against the slot table on pop.
  std::size_t ready_size() const { return ready_ring_.size(); }

  // Fires whenever an unwatched completion lands in the ready ring, with the
  // op's identity and whether it succeeded. SMP workers use this to re-arm the
  // next pop at DELIVERY time rather than at handling time: under overload the
  // backlog then accumulates in the ready ring — where ready_size() and thieves
  // can see it — instead of invisibly in transport receive buffers. The
  // observer may start new operations (the completed slot is not touched after
  // the call); it must not claim the delivered token.
  using ReadyObserver = std::function<void(QToken, QDesc, OpType, bool ok)>;
  void set_ready_observer(ReadyObserver obs) { ready_observer_ = std::move(obs); }

  // --- sparse (dirty-set) polling, DESIGN.md §13 ---

  // Opt-in for sharded workers holding many mostly-idle connections: Poll() visits
  // only queues in the dirty set instead of sweeping the whole qtable, making the
  // poll loop O(active) rather than O(open). Queues enter the set on submission and
  // on device readiness edges (MarkDirty), and leave it only when a visit makes no
  // progress AND the queue reports Quiescent(). Only valid when every queue type in
  // use marks itself (Catnip TCP queues do); combinator queues and recovery
  // sessions require the dense sweep.
  void EnableSparsePolling() { sparse_polling_ = true; }
  bool sparse_polling() const { return sparse_polling_; }
  void MarkDirty(IoQueue* queue);
  // Safety net for device-wide edges a per-queue hook cannot see (e.g. NIC death
  // failing every connection at once): puts every open queue in the dirty set.
  void MarkAllDirty();

  bool Poll() override;
  void CompleteOp(QToken token, QResult result) override;
  std::size_t open_queues() const { return qtable_.size(); }
  // Operations started but not yet completed (the no-hung-qtoken invariant checks
  // this is 0 after a WaitAll sweep).
  std::size_t pending_ops() const { return pending_count_; }

 protected:
  // Queue factories each libOS provides for its device type.
  virtual Result<std::unique_ptr<IoQueue>> NewSocketQueue() = 0;
  virtual Result<std::unique_ptr<IoQueue>> NewFileQueue(const std::string& path,
                                                        bool create) {
    return Status(ErrorCode::kUnsupported, name() + " has no storage device");
  }
  // Per-libOS extra polling (e.g. draining device CQs shared across queues).
  virtual bool PollDevice() { return false; }

  // Charges the Demikernel "syscall" cost: a function call plus table lookups — the
  // libOS shares the address space, so this is tens of ns, not hundreds (§3.1).
  void ChargeCall();

  QDesc InstallQueue(std::unique_ptr<IoQueue> queue);
  IoQueue* GetQueue(QDesc qd) const;
  QToken NewToken(QDesc qd, OpType type);
  // Drops a token that never started (StartPush/StartPop/StartPushdown failed
  // synchronously).
  void ReleaseFailedToken(QToken token);

  // Destroys all open queues. A derived libOS whose queues reference derived-owned
  // state in their destructors (e.g. catnip's UDP unbind touching the net stack) must
  // call this from its own destructor, before that state is torn down — the base
  // destructor would run the queue destructors only after derived members are gone.
  void DestroyQueues() {
    qtable_.clear();
    dirty_queues_.clear();
  }

  HostCpu* host_;
  MemoryManager memory_;

 private:
  enum class OpState : std::uint8_t {
    kPending,
    kCompleted,  // result parked in the slot, waiting to be claimed
    kAbandoned,  // cancelled; the eventual completion is swallowed
  };

  // One pending/completed operation. Qtokens pack (generation << 32 | slot index), so
  // every lookup on the wait path is one array access + one generation compare — no
  // hashing, no per-op map nodes.
  struct OpSlot {
    QDesc qd = kInvalidQDesc;
    OpType type = OpType::kPush;
    OpState state = OpState::kPending;
    bool control = false;  // accept/connect polled by PollControlOps
    TimeNs start_ns = 0;   // sim time at submission, for completion-latency tracing
    std::uint64_t done_seq = 0;  // completion order, for wait_any FIFO fairness
    QResult result;
    CompletionWatcher* watcher = nullptr;
  };

  struct Splice {
    QDesc in;
    QDesc out;
    QToken pop_token = kInvalidQToken;   // outstanding internal pop
    QToken push_token = kInvalidQToken;  // outstanding internal push
  };

  static std::size_t TokenIndex(QToken token) {
    return static_cast<std::size_t>(token & 0xFFFFFFFFu);
  }
  static std::uint32_t TokenGeneration(QToken token) {
    return static_cast<std::uint32_t>(token >> 32);
  }

  // Slot for `token`, or nullptr if the token is stale/unknown.
  OpSlot* FindSlot(QToken token) {
    const std::size_t index = TokenIndex(token);
    if (!ops_.Alive(index, TokenGeneration(token))) {
      return nullptr;
    }
    return &ops_[index];
  }
  const OpSlot* FindSlot(QToken token) const {
    const std::size_t index = TokenIndex(token);
    if (!ops_.Alive(index, TokenGeneration(token))) {
      return nullptr;
    }
    return &ops_[index];
  }
  void ReleaseSlot(QToken token) { ops_.Release(TokenIndex(token)); }
  void PushReady(QToken token);

  bool PollControlOps();
  bool PollSplices();
  // Wait with a deadline that cancels the op on timeout (never a hung qtoken).
  Result<QResult> WaitBounded(QToken token, TimeNs timeout);

  std::unordered_map<QDesc, std::unique_ptr<IoQueue>> qtable_;
  QDesc next_qd_ = 1;
  // Cached metrics handle for this libOS's per-op latency histograms. Lazily bound
  // (name() is virtual, so it cannot be resolved in the base constructor).
  std::array<Histogram, kNumOpKinds>* op_hists_ = nullptr;
  SlotPool<OpSlot> ops_;           // every issued token, pending or parked-completed
  std::size_t pending_count_ = 0;  // ops started and not yet completed/cancelled
  std::uint64_t done_seq_counter_ = 0;
  // Completion ready ring: CompleteOp pushes finished tokens here; Wait/WaitAny/
  // WaitAll consume in completion (FIFO) order instead of rescanning their token sets
  // every simulation step. Entries are hints — the slot table is the source of truth,
  // so stale entries (already claimed via TakeResult) are skipped on pop.
  RingBuffer<QToken> ready_ring_{256};
  ReadyObserver ready_observer_;
  std::vector<QToken> control_tokens_;  // pending accepts/connects, lazily compacted
  std::vector<Splice> splices_;
  std::vector<IoQueue*> poll_scratch_;  // reused per Poll(); avoids per-poll allocation
  bool sparse_polling_ = false;
  std::vector<IoQueue*> dirty_queues_;  // sparse-poll visit set; membership via dirty_listed
};

}  // namespace demi

#endif  // SRC_CORE_LIBOS_H_
