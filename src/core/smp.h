// Multi-core scale-out: RSS-sharded libOS workers with ZygOS-style completion
// stealing (DESIGN.md §13).
//
// WorkerPool builds N shared-nothing workers on one host. Worker w is pinned to
// simulation core w+1 (core 0 stays the driver/client context), owns NIC queue pair
// w, and runs its own kernel-less Catnip libOS — its own NetStack, flow table,
// connection shard, header arena, and op-slot pool. Every worker listens on the
// same port; the NIC's RSS hash (not ntuple steering) decides which shard a flow
// lands on, so no two workers ever touch the same connection state.
//
// The load-balancing hole in pure RSS sharding is skew: a hot shard's tail latency
// collapses while its neighbours idle. The fix is ZygOS-style work stealing at the
// *completion* layer: a worker that finds its own ready ring empty probes its peers
// and executes ready completions (popped requests) for them, paying explicit
// cross-core costs from the cost model — steal_probe_ns per probe,
// cacheline_transfer_ns per migrated completion, ipi_wakeup_ns per steal batch.
// Claiming a completion releases its qtoken (LibOS::PopReady), so exactly one
// consumer ever handles it and a stale token is rejected with kBadDescriptor.
// Responses are pushed back through the *owner's* libOS: the connection, its
// buffers, and its NIC queue stay home, preserving per-flow ordering exactly as
// ZygOS returns stolen work to its home flow group for egress.

#ifndef SRC_CORE_SMP_H_
#define SRC_CORE_SMP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/catnip.h"
#include "src/core/libos.h"
#include "src/hw/nic.h"
#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace demi {

struct SmpConfig {
  // One shard per worker: worker w runs on sim core w+1 and drives NIC queue w.
  // The NIC must be configured with at least this many queues.
  int workers = 1;
  std::uint16_t port = 7;  // every worker listens here; RSS spreads the flows
  Ipv4Address ip;
  TcpConfig tcp;
  std::uint64_t seed = 31;
  // Application service time charged on whichever core executes the request (the
  // thief's core for stolen completions — that is the point of stealing).
  TimeNs request_cpu_ns = 500;
  // Completion stealing (ZygOS). Off = pure RSS sharding, the skew baseline.
  bool steal = true;
  std::size_t steal_threshold = 4;  // victim ready-ring depth that justifies a steal
  std::size_t steal_batch = 8;      // max completions moved per successful steal
  // Max completions a worker consumes from its own ring per poll — bounded so a
  // flooded worker's backlog stays visible to thieves between its bubbles instead
  // of draining whole in one.
  std::size_t consume_batch = 16;
  // RX frames the worker's stack ingests per poll. Must comfortably exceed
  // consume_batch in wire frames (a request is typically 2 frames: header part
  // + payload part) or ingest and consumption lock in balance and an overloaded
  // shard's queue hides in the NIC ring where thieves cannot see it.
  std::size_t rx_batch = 128;
};

class WorkerPool;

// One sharded worker: Catnip libOS + request loop on a dedicated core.
class SmpWorker final : public Poller, public CompletionWatcher {
 public:
  // Mirrors WorkloadModel::kMaxResponseBytes — the shared wire protocol's clamp on
  // the 4-byte little-endian response-length header.
  static constexpr std::uint32_t kMaxResponseBytes = 4096;

  SmpWorker(WorkerPool* pool, Simulation* sim, SimNic* nic, int index,
            const SmpConfig& cfg);
  ~SmpWorker() override;
  SmpWorker(const SmpWorker&) = delete;
  SmpWorker& operator=(const SmpWorker&) = delete;

  // Worker loop, polled on core index()+1: dispatch deferred watched completions
  // (accepts, push acks), consume up to consume_batch own ready completions, then
  // steal from peers if idle.
  bool Poll() override;
  // Watched-token delivery (fires inside the libOS poll); deferred to our own Poll
  // so completion handling never re-enters libOS machinery mid-poll.
  void OnTokenComplete(QToken token, QDesc qd) override;

  int index() const { return index_; }
  CatnipLibOS& libos() { return *libos_; }
  HostCpu& cpu() { return cpu_; }
  std::uint64_t requests_served() const { return served_; }
  // Completions this worker claimed from a peer's ring (thief-side count).
  std::uint64_t completions_stolen() const { return stolen_executed_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  friend class WorkerPool;

  void ArmAccept();
  bool HandleWatched(QToken token);
  // Executes one claimed completion on THIS core for `owner`'s shard (owner ==
  // this for home work, a peer for stolen work).
  void HandleCompletion(ReadyCompletion& rc, SmpWorker* owner);
  bool TrySteal();
  SgArray ResponseSga(std::uint32_t bytes);

  WorkerPool* pool_;
  const SmpConfig& cfg_;  // owned by the pool, which outlives every worker
  int index_;
  HostCpu cpu_;
  std::unique_ptr<CatnipLibOS> libos_;
  QDesc listen_qd_ = kInvalidQDesc;
  QToken accept_token_ = kInvalidQToken;
  Buffer response_blob_;  // shared storage for every response payload (zero alloc)
  std::vector<QToken> watched_done_;  // deferred watched completions
  std::vector<QToken> watched_scratch_;
  std::vector<SmpWorker*> victims_;  // steal order, built lazily on first probe
  std::size_t victim_cursor_ = 0;    // round-robin start within victims_
  std::uint64_t served_ = 0;
  std::uint64_t stolen_executed_ = 0;
  std::uint64_t accepted_ = 0;
};

class WorkerPool {
 public:
  // Configures the simulation for workers+1 cores and builds every worker. The NIC
  // is the (already multi-queue) bypass device all shards share.
  WorkerPool(Simulation* sim, SimNic* nic, SmpConfig cfg);

  int size() const { return static_cast<int>(workers_.size()); }
  SmpWorker& worker(int i) { return *workers_[i]; }
  const SmpConfig& config() const { return cfg_; }

  std::uint64_t total_served() const;
  std::uint64_t total_stolen() const;
  std::uint64_t total_accepted() const;
  // Sum of pending qtokens across every worker libOS — 0 after a full drain is the
  // no-hung-qtoken invariant under stealing and NIC death alike.
  std::size_t total_pending_ops() const;

 private:
  SmpConfig cfg_;
  std::vector<std::unique_ptr<SmpWorker>> workers_;
};

}  // namespace demi

#endif  // SRC_CORE_SMP_H_
