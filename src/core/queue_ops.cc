#include "src/core/queue_ops.h"

#include <algorithm>

namespace demi {

namespace {

QResult MakePopResult(SgArray sga) {
  QResult r;
  r.op = OpType::kPop;
  r.sga = std::move(sga);
  return r;
}

QResult MakePushResult(Status status = OkStatus()) {
  QResult r;
  r.op = OpType::kPush;
  r.status = std::move(status);
  return r;
}

QResult MakeCancelled(OpType op) {
  QResult r;
  r.op = op;
  r.status = Cancelled("queue closed");
  return r;
}

}  // namespace

// --- MemoryQueue ---

Status MemoryQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed queue");
  }
  elements_.push_back(sga);
  ready_.emplace_back(token, MakePushResult());
  return OkStatus();
}

Status MemoryQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed queue");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool MemoryQueue::Progress(CompletionSink& sink) {
  bool progress = false;
  while (!ready_.empty()) {
    auto [token, result] = std::move(ready_.front());
    ready_.pop_front();
    sink.CompleteOp(token, std::move(result));
    progress = true;
  }
  while (!pending_pops_.empty() && !elements_.empty()) {
    const QToken token = pending_pops_.front();
    pending_pops_.pop_front();
    SgArray sga = std::move(elements_.front());
    elements_.pop_front();
    sink.CompleteOp(token, MakePopResult(std::move(sga)));
    progress = true;
  }
  if (closed_) {
    while (!pending_pops_.empty()) {
      sink.CompleteOp(pending_pops_.front(), MakeCancelled(OpType::kPop));
      pending_pops_.pop_front();
      progress = true;
    }
  }
  return progress;
}

Status MemoryQueue::Close() {
  closed_ = true;
  return OkStatus();
}

// --- CombinatorQueue ---

Status CombinatorQueue::Close() {
  closed_ = true;
  return OkStatus();
}

std::optional<QResult> CombinatorQueue::PumpInnerPop(QDesc qd, InnerPop& state) {
  if (state.token == kInvalidQToken) {
    auto token = libos_->Pop(qd);
    if (token.ok()) {
      state.token = *token;
    }
    return std::nullopt;
  }
  if (!libos_->OpDone(state.token)) {
    return std::nullopt;
  }
  auto r = libos_->TakeResultInternal(state.token);
  state.token = kInvalidQToken;
  if (!r.ok()) {
    return std::nullopt;
  }
  return std::move(*r);
}

// --- MergeQueue ---

Status MergeQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed merge queue");
  }
  auto a = libos_->Push(inner_, sga);
  RETURN_IF_ERROR(a.status());
  auto b = libos_->Push(inner2_, sga);
  RETURN_IF_ERROR(b.status());
  pushes_.push_back(DualPush{token, *a, *b});
  return OkStatus();
}

Status MergeQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed merge queue");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool MergeQueue::Progress(CompletionSink& sink) {
  bool progress = false;
  // Keep pops outstanding on both inner queues only while users are waiting (or data
  // is buffered below the user's demand) so we do not starve direct inner users.
  if (!pending_pops_.empty()) {
    if (auto r = PumpInnerPop(inner_, pop1_); r && r->status.ok()) {
      buffered_.push_back(std::move(r->sga));
      progress = true;
    }
    if (auto r = PumpInnerPop(inner2_, pop2_); r && r->status.ok()) {
      buffered_.push_back(std::move(r->sga));
      progress = true;
    }
  }
  while (!pending_pops_.empty() && !buffered_.empty()) {
    sink.CompleteOp(pending_pops_.front(), MakePopResult(std::move(buffered_.front())));
    pending_pops_.pop_front();
    buffered_.pop_front();
    progress = true;
  }
  for (auto it = pushes_.begin(); it != pushes_.end();) {
    if (libos_->OpDone(it->a) && libos_->OpDone(it->b)) {
      auto ra = libos_->TakeResultInternal(it->a);
      auto rb = libos_->TakeResultInternal(it->b);
      Status status = OkStatus();
      if (ra.ok() && !ra->status.ok()) {
        status = ra->status;
      } else if (rb.ok() && !rb->status.ok()) {
        status = rb->status;
      }
      sink.CompleteOp(it->user, MakePushResult(std::move(status)));
      it = pushes_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  return progress;
}

// --- FilterQueue ---

Status FilterQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed filter queue");
  }
  if (!offloaded_) {
    libos_->host().Work(pred_.host_cost_ns);
  }
  if (!pred_.fn(sga)) {
    // Element filtered out: the push "succeeds" but nothing reaches the inner queue.
    ready_.emplace_back(token, MakePushResult());
    return OkStatus();
  }
  auto inner_token = libos_->Push(inner_, sga);
  RETURN_IF_ERROR(inner_token.status());
  pushes_.push_back(ForwardPush{token, *inner_token});
  return OkStatus();
}

Status FilterQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed filter queue");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool FilterQueue::Progress(CompletionSink& sink) {
  bool progress = false;
  while (!ready_.empty()) {
    sink.CompleteOp(ready_.front().first, std::move(ready_.front().second));
    ready_.pop_front();
    progress = true;
  }
  if (!pending_pops_.empty()) {
    if (auto r = PumpInnerPop(inner_, pop_); r && r->status.ok()) {
      progress = true;
      bool pass = true;
      if (!offloaded_) {
        // CPU fallback: the host pays to inspect (and possibly discard) the element —
        // exactly the work a device filter would have saved (§4.3, experiment C6).
        libos_->host().Work(pred_.host_cost_ns);
        pass = pred_.fn(r->sga);
      }
      if (pass) {
        sink.CompleteOp(pending_pops_.front(), MakePopResult(std::move(r->sga)));
        pending_pops_.pop_front();
      } else {
        ++dropped_on_cpu_;
      }
    }
  }
  for (auto it = pushes_.begin(); it != pushes_.end();) {
    if (libos_->OpDone(it->inner_token)) {
      auto r = libos_->TakeResultInternal(it->inner_token);
      sink.CompleteOp(it->user, MakePushResult(r.ok() ? r->status : r.status()));
      it = pushes_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  return progress;
}

// --- SortQueue ---

void SortQueue::InsertSorted(SgArray sga) {
  // Binary insertion; comparisons charge the user-function cost.
  auto higher_priority = [this](const SgArray& a, const SgArray& b) {
    libos_->host().Work(cmp_.host_cost_ns);
    return cmp_.fn(a, b);
  };
  // buffered_ is sorted ascending by priority (highest at the back): an element
  // orders before the inserted value iff the value outranks it.
  auto it = std::lower_bound(
      buffered_.begin(), buffered_.end(), sga,
      [&](const SgArray& elem, const SgArray& v) { return higher_priority(v, elem); });
  buffered_.insert(it, std::move(sga));
}

Status SortQueue::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed sort queue");
  }
  InsertSorted(sga);
  ready_.emplace_back(token, MakePushResult());
  return OkStatus();
}

Status SortQueue::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed sort queue");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool SortQueue::Progress(CompletionSink& sink) {
  bool progress = false;
  while (!ready_.empty()) {
    sink.CompleteOp(ready_.front().first, std::move(ready_.front().second));
    ready_.pop_front();
    progress = true;
  }
  // Drain the inner queue into the priority buffer whenever demand exists.
  if (!pending_pops_.empty()) {
    if (auto r = PumpInnerPop(inner_, pop_); r && r->status.ok()) {
      InsertSorted(std::move(r->sga));
      progress = true;
    }
  }
  while (!pending_pops_.empty() && !buffered_.empty()) {
    SgArray top = std::move(buffered_.back());
    buffered_.pop_back();
    sink.CompleteOp(pending_pops_.front(), MakePopResult(std::move(top)));
    pending_pops_.pop_front();
    progress = true;
  }
  return progress;
}

// --- MapQueueImpl ---

Status MapQueueImpl::StartPush(QToken token, const SgArray& sga) {
  if (closed_) {
    return BadDescriptor("push on closed map queue");
  }
  libos_->host().Work(transform_.host_cost_ns);
  auto inner_token = libos_->Push(inner_, transform_.fn(sga));
  RETURN_IF_ERROR(inner_token.status());
  pushes_.push_back(ForwardPush{token, *inner_token});
  return OkStatus();
}

Status MapQueueImpl::StartPop(QToken token) {
  if (closed_) {
    return BadDescriptor("pop on closed map queue");
  }
  pending_pops_.push_back(token);
  return OkStatus();
}

bool MapQueueImpl::Progress(CompletionSink& sink) {
  bool progress = false;
  if (!pending_pops_.empty()) {
    if (auto r = PumpInnerPop(inner_, pop_); r && r->status.ok()) {
      libos_->host().Work(transform_.host_cost_ns);
      sink.CompleteOp(pending_pops_.front(), MakePopResult(transform_.fn(r->sga)));
      pending_pops_.pop_front();
      progress = true;
    }
  }
  for (auto it = pushes_.begin(); it != pushes_.end();) {
    if (libos_->OpDone(it->inner_token)) {
      auto r = libos_->TakeResultInternal(it->inner_token);
      sink.CompleteOp(it->user, MakePushResult(r.ok() ? r->status : r.status()));
      it = pushes_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  return progress;
}

}  // namespace demi
