// DemiEventLoop: a libevent-style callback dispatcher over Demikernel queues.
//
// §4.4: "In the future, we plan to implement a libevent-based Demikernel OS, which
// would enable applications, like memcached, to achieve the benefits of kernel-bypass
// transparently." This is that adapter: applications register per-queue callbacks and
// the loop keeps one pop (or accept) outstanding per watched queue, dispatching each
// completion to exactly one callback — the event-driven programming model preserved,
// the epoll pathologies gone.
//
// Delivery is push-based: the loop registers itself as a CompletionWatcher on each
// outstanding token, so a poll round with nothing ready is a single empty-vector
// check — O(1) regardless of how many queues are watched — instead of an O(watches)
// OpDone scan.

#ifndef SRC_CORE_EVENT_LOOP_H_
#define SRC_CORE_EVENT_LOOP_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "src/core/libos.h"

namespace demi {

class DemiEventLoop final : public Poller, public CompletionWatcher {
 public:
  // Called once per arrived element; the loop re-arms the pop automatically. A non-OK
  // result (EOF, reset) is delivered once and the watch is removed.
  using PopHandler = std::function<void(QDesc qd, Result<SgArray> element)>;
  // Called once per accepted connection (new_qd is installed in the libOS).
  using AcceptHandler = std::function<void(QDesc new_qd)>;

  explicit DemiEventLoop(LibOS* libos);
  ~DemiEventLoop() override;
  DemiEventLoop(const DemiEventLoop&) = delete;
  DemiEventLoop& operator=(const DemiEventLoop&) = delete;

  Status WatchAccept(QDesc listen_qd, AcceptHandler handler);
  Status WatchPop(QDesc qd, PopHandler handler);
  void Unwatch(QDesc qd);

  // One-shot deferred call after `delay` of simulated time (libevent's evtimer).
  void CallLater(TimeNs delay, std::function<void()> fn);

  std::uint64_t dispatched() const { return dispatched_; }
  bool Poll() override;
  void OnTokenComplete(QToken token, QDesc qd) override;

 private:
  struct Watch {
    bool is_accept = false;
    QToken token = kInvalidQToken;
    PopHandler on_pop;
    AcceptHandler on_accept;
  };

  void Arm(QDesc qd, Watch& watch);

  LibOS* libos_;
  std::unordered_map<QDesc, Watch> watches_;
  std::uint64_t dispatched_ = 0;
  std::vector<QDesc> ready_;    // queues whose watched token completed
  std::vector<QDesc> scratch_;  // swapped with ready_ per Poll; no per-poll allocation
};

}  // namespace demi

#endif  // SRC_CORE_EVENT_LOOP_H_
