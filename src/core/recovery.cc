#include "src/core/recovery.h"

#include <algorithm>

#include "src/common/byte_order.h"
#include "src/common/logging.h"

namespace demi {

// --- RetryPolicy ----------------------------------------------------------------

TimeNs RetryPolicy::BackoffBeforeAttempt(int attempt, Rng& rng) const {
  if (attempt <= 0) {
    return 0;
  }
  double backoff = static_cast<double>(initial_backoff_ns);
  for (int i = 1; i < attempt; ++i) {
    backoff *= multiplier;
    if (backoff >= static_cast<double>(max_backoff_ns)) {
      break;
    }
  }
  backoff = std::min(backoff, static_cast<double>(max_backoff_ns));
  // Jitter in [-jitter, +jitter] as a fraction of the backoff; drawn from the caller's
  // seeded Rng so the schedule is reproducible.
  const double factor = 1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
  const double jittered = std::max(0.0, backoff * factor);
  return static_cast<TimeNs>(jittered);
}

// --- CircuitBreaker -------------------------------------------------------------

bool CircuitBreaker::RecordExhaustion() {
  ++consecutive_;
  if (!tripped_ && consecutive_ >= threshold_) {
    tripped_ = true;
    return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_ = 0;
  tripped_ = false;
}

// --- HealthMonitor --------------------------------------------------------------

void HealthMonitor::Observe(bool link_up, bool failed, TimeNs now) {
  if (failed || health_ == DeviceHealth::kDead) {
    health_ = DeviceHealth::kDead;  // device death is permanent
    observed_ = true;
    return;
  }
  if (!link_up) {
    health_ = DeviceHealth::kDegraded;
    observed_ = true;
    return;
  }
  if (health_ != DeviceHealth::kHealthy || !observed_) {
    healthy_since_ = now;
  }
  health_ = DeviceHealth::kHealthy;
  observed_ = true;
}

TimeNs HealthMonitor::HealthyFor(TimeNs now) const {
  if (health_ != DeviceHealth::kHealthy || !observed_) {
    return 0;
  }
  return now - healthy_since_;
}

Status HealthMonitor::AsStatus() const {
  switch (health_) {
    case DeviceHealth::kHealthy:
      return OkStatus();
    case DeviceHealth::kDegraded:
      return Degraded("device link is down");
    case DeviceHealth::kDead:
      return DeviceFailed("device is dead");
  }
  return Internal("unknown device health");
}

// --- ReplayLog ------------------------------------------------------------------

void ReplayLog::Append(std::uint64_t seq, SgArray element) {
  DEMI_CHECK(entries_.size() < limit_);
  DEMI_CHECK(entries_.empty() || seq > entries_.back().seq);
  Entry e;
  e.seq = seq;
  e.element = std::move(element);
  entries_.push_back(std::move(e));
}

void ReplayLog::EvictThroughSeq(std::uint64_t seq) {
  while (!entries_.empty() && entries_.front().seq <= seq) {
    entries_.pop_front();
  }
}

void ReplayLog::EvictAcked(std::uint64_t acked_offset) {
  while (!entries_.empty() && entries_.front().written &&
         entries_.front().end_offset <= acked_offset) {
    entries_.pop_front();
  }
}

void ReplayLog::MarkAllUnwritten() {
  for (Entry& e : entries_) {
    e.written = false;
    e.end_offset = 0;
  }
}

ReplayLog::Entry* ReplayLog::NextUnwritten() {
  for (Entry& e : entries_) {
    if (!e.written) {
      return &e;
    }
  }
  return nullptr;
}

// --- control frames -------------------------------------------------------------

namespace {
constexpr std::size_t kHelloBytes = 8 + 4 + 4 + 8 + 8;  // seq, magic, type, sid, last_rx
}  // namespace

Buffer EncodeHello(const HelloFrame& hello) {
  Buffer out = Buffer::Allocate(kHelloBytes);
  ByteWriter w(out.mutable_span());
  w.U64(kRecoveryControlSeq);
  w.U32(kRecoveryMagic);
  w.U32(hello.is_ping ? 2u : (hello.is_ack ? 1u : 0u));
  w.U64(hello.session_id);
  w.U64(hello.last_rx_seq);
  return out;
}

std::optional<HelloFrame> ParseHello(const SgArray& body) {
  if (body.total_bytes() != kHelloBytes) {
    return std::nullopt;
  }
  const Buffer flat = body.Flatten();
  ByteReader r(flat.span());
  if (r.U64() != kRecoveryControlSeq || r.U32() != kRecoveryMagic) {
    return std::nullopt;
  }
  HelloFrame hello;
  const std::uint32_t type = r.U32();
  hello.is_ack = type == 1;
  hello.is_ping = type == 2;
  hello.session_id = r.U64();
  hello.last_rx_seq = r.U64();
  return hello;
}

bool ReadSeqHeader(const SgArray& body, std::uint64_t* seq) {
  if (body.total_bytes() < kRecoverySeqHeader) {
    return false;
  }
  std::byte raw[kRecoverySeqHeader];
  std::size_t have = 0;
  for (const Buffer& seg : body.segments()) {
    const std::size_t take = std::min(seg.size(), kRecoverySeqHeader - have);
    std::memcpy(raw + have, seg.data(), take);
    have += take;
    if (have == kRecoverySeqHeader) {
      break;
    }
  }
  ByteReader r(std::span<const std::byte>(raw, kRecoverySeqHeader));
  *seq = r.U64();
  return true;
}

SgArray StripBytes(const SgArray& body, std::size_t n) {
  SgArray out;
  std::size_t to_skip = n;
  for (const Buffer& seg : body.segments()) {
    if (to_skip >= seg.size()) {
      to_skip -= seg.size();
      continue;
    }
    out.Append(to_skip == 0 ? seg : seg.Slice(to_skip));
    to_skip = 0;
  }
  return out;
}

// --- FailoverTransport ----------------------------------------------------------

FailoverTransport::FailoverTransport(FailoverTransport&& other) noexcept
    : kind_(other.kind_), conn_(other.conn_), kernel_(other.kernel_), fd_(other.fd_) {
  other.Detach();
}

FailoverTransport& FailoverTransport::operator=(FailoverTransport&& other) noexcept {
  if (this != &other) {
    Reset();  // close whatever this held
    kind_ = other.kind_;
    conn_ = other.conn_;
    kernel_ = other.kernel_;
    fd_ = other.fd_;
    other.Detach();
  }
  return *this;
}

void FailoverTransport::Detach() {
  kind_ = Kind::kNone;
  conn_ = nullptr;
  kernel_ = nullptr;
  fd_ = -1;
}

void FailoverTransport::AttachFast(TcpConnection* conn) {
  Reset();
  kind_ = Kind::kFast;
  conn_ = conn;
}

Status FailoverTransport::ConnectLegacy(SimKernel* kernel, Endpoint remote) {
  Reset();
  auto fd = kernel->Socket();
  RETURN_IF_ERROR(fd.status());
  Status st = kernel->Connect(*fd, remote);
  if (!st.ok()) {
    (void)kernel->CloseFd(*fd);
    return st;
  }
  kind_ = Kind::kLegacy;
  kernel_ = kernel;
  fd_ = *fd;
  return OkStatus();
}

void FailoverTransport::AttachLegacyAccepted(SimKernel* kernel, int fd) {
  Reset();
  kind_ = Kind::kLegacy;
  kernel_ = kernel;
  fd_ = fd;
}

void FailoverTransport::Reset() {
  switch (kind_) {
    case Kind::kNone:
      break;
    case Kind::kFast:
      if (conn_ != nullptr && !conn_->dead()) {
        conn_->Close();
      }
      break;
    case Kind::kLegacy:
      if (kernel_ != nullptr && fd_ >= 0) {
        (void)kernel_->CloseFd(fd_);
      }
      break;
  }
  Detach();
}

void FailoverTransport::Abort() {
  TcpConnection* c = Conn();
  if (c != nullptr && !c->dead()) {
    c->Abort();
  }
  if (kind_ == Kind::kLegacy && kernel_ != nullptr && fd_ >= 0) {
    (void)kernel_->CloseFd(fd_);
  }
  Detach();
}

TcpConnection* FailoverTransport::ReleaseFast() {
  TcpConnection* c = kind_ == Kind::kFast ? conn_ : nullptr;
  Detach();
  return c;
}

TcpConnection* FailoverTransport::Conn() const {
  switch (kind_) {
    case Kind::kNone:
      return nullptr;
    case Kind::kFast:
      return conn_;
    case Kind::kLegacy:
      return kernel_->SockConnection(fd_);
  }
  return nullptr;
}

bool FailoverTransport::established() const {
  TcpConnection* c = Conn();
  return c != nullptr && c->established();
}

bool FailoverTransport::dead() const {
  if (kind_ == Kind::kNone) {
    return true;
  }
  TcpConnection* c = Conn();
  return c == nullptr || c->dead();
}

bool FailoverTransport::recv_eof() const {
  TcpConnection* c = Conn();
  return c != nullptr && c->recv_eof();
}

Status FailoverTransport::Send(Buffer part) {
  switch (kind_) {
    case Kind::kNone:
      return NotConnected("no transport attached");
    case Kind::kFast:
      return conn_->Send(std::move(part));
    case Kind::kLegacy: {
      auto written = kernel_->WriteSock(fd_, std::move(part));
      return written.status();  // WriteSock is all-or-nothing
    }
  }
  return Internal("bad transport kind");
}

Buffer FailoverTransport::Recv(std::size_t max) {
  switch (kind_) {
    case Kind::kNone:
      return Buffer();
    case Kind::kFast:
      return conn_ != nullptr ? conn_->Recv(max) : Buffer();
    case Kind::kLegacy: {
      TcpConnection* c = kernel_->SockConnection(fd_);
      if (c == nullptr) {
        return Buffer();
      }
      if (c->reset()) {
        // ReadSock refuses reset sockets outright, but TCP keeps already-acknowledged
        // in-order data readable; drain it straight off the connection so nothing the
        // peer's replay log evicted is lost.
        return c->Recv(max);
      }
      if (!c->readable()) {
        // Nothing buffered: do NOT pay a kernel crossing to learn that. Recovery
        // sessions are densely polled, so an unconditional ReadSock here would turn
        // every demoted/failed-over flow into a syscall-per-poll CPU burn on the
        // host (§3.1) — the readiness probe is a shared-memory check, like epoll's.
        return Buffer();
      }
      auto data = kernel_->ReadSock(fd_, max);
      return data.ok() ? *data : Buffer();
    }
  }
  return Buffer();
}

std::size_t FailoverTransport::unacked_bytes() const {
  TcpConnection* c = Conn();
  return c != nullptr ? c->unacked_bytes() : 0;
}

}  // namespace demi
