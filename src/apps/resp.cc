#include "src/apps/resp.h"

#include <charconv>

namespace demi {

namespace {

constexpr std::string_view kCrlf = "\r\n";

// Parses "<digits>\r\n" at `pos`; advances pos past the CRLF. Returns nullopt when the
// buffer ends before the CRLF (incomplete), error via the bool flag when malformed.
struct LineInt {
  bool malformed = false;
  bool incomplete = false;
  std::int64_t value = 0;
};

LineInt ParseIntLine(std::string_view data, std::size_t& pos) {
  LineInt out;
  const std::size_t eol = data.find(kCrlf, pos);
  if (eol == std::string_view::npos) {
    out.incomplete = true;
    return out;
  }
  const std::string_view digits = data.substr(pos, eol - pos);
  if (digits.empty()) {
    out.malformed = true;
    return out;
  }
  auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), out.value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    out.malformed = true;
    return out;
  }
  pos = eol + 2;
  return out;
}

// Attempts to parse one command at data[pos...]; on success advances pos.
// Returns: 1 = parsed, 0 = incomplete, -1 = malformed.
int TryParseCommand(std::string_view data, std::size_t& pos, RespCommand& out) {
  std::size_t p = pos;
  if (p >= data.size()) {
    return 0;
  }
  if (data[p] != '*') {
    return -1;
  }
  ++p;
  LineInt count = ParseIntLine(data, p);
  if (count.incomplete) {
    return 0;
  }
  if (count.malformed || count.value < 0 || count.value > 1024 * 1024) {
    return -1;
  }
  RespCommand args;
  args.reserve(static_cast<std::size_t>(count.value));
  for (std::int64_t i = 0; i < count.value; ++i) {
    if (p >= data.size()) {
      return 0;
    }
    if (data[p] != '$') {
      return -1;
    }
    ++p;
    LineInt len = ParseIntLine(data, p);
    if (len.incomplete) {
      return 0;
    }
    if (len.malformed || len.value < 0 || len.value > 512 * 1024 * 1024) {
      return -1;
    }
    if (p + static_cast<std::size_t>(len.value) + 2 > data.size()) {
      return 0;
    }
    args.emplace_back(data.substr(p, static_cast<std::size_t>(len.value)));
    p += static_cast<std::size_t>(len.value);
    if (data.substr(p, 2) != kCrlf) {
      return -1;
    }
    p += 2;
  }
  pos = p;
  out = std::move(args);
  return 1;
}

}  // namespace

std::string EncodeRespCommand(const RespCommand& args) {
  std::string out = "*" + std::to_string(args.size()) + "\r\n";
  for (const std::string& arg : args) {
    out += "$" + std::to_string(arg.size()) + "\r\n";
    out += arg;
    out += "\r\n";
  }
  return out;
}

Result<RespCommand> ParseRespCommand(std::string_view data) {
  std::size_t pos = 0;
  RespCommand out;
  const int rc = TryParseCommand(data, pos, out);
  if (rc != 1) {
    return ProtocolError(rc == 0 ? "truncated request" : "malformed request");
  }
  if (pos != data.size()) {
    return ProtocolError("trailing bytes after request");
  }
  return out;
}

Result<std::vector<Buffer>> ParseRespCommandBuffers(const Buffer& data) {
  const std::string_view view = data.AsStringView();
  // Reuse the string-view scanner for structure, then slice the argument ranges.
  if (view.empty() || view[0] != '*') {
    return ProtocolError("malformed request");
  }
  std::size_t p = 1;
  LineInt count = ParseIntLine(view, p);
  if (count.incomplete || count.malformed || count.value < 0 ||
      count.value > 1024 * 1024) {
    return ProtocolError("malformed request header");
  }
  std::vector<Buffer> args;
  args.reserve(static_cast<std::size_t>(count.value));
  for (std::int64_t i = 0; i < count.value; ++i) {
    if (p >= view.size() || view[p] != '$') {
      return ProtocolError("malformed bulk header");
    }
    ++p;
    LineInt len = ParseIntLine(view, p);
    if (len.incomplete || len.malformed || len.value < 0) {
      return ProtocolError("malformed bulk length");
    }
    if (p + static_cast<std::size_t>(len.value) + 2 > view.size()) {
      return ProtocolError("truncated request");
    }
    args.push_back(data.Slice(p, static_cast<std::size_t>(len.value)));  // zero copy
    p += static_cast<std::size_t>(len.value);
    if (view.substr(p, 2) != kCrlf) {
      return ProtocolError("missing CRLF");
    }
    p += 2;
  }
  if (p != view.size()) {
    return ProtocolError("trailing bytes after request");
  }
  return args;
}

std::string EncodeRespValue(const RespValue& value) {
  switch (value.kind) {
    case RespValue::Kind::kSimple:
      return "+" + value.text + "\r\n";
    case RespValue::Kind::kError:
      return "-" + value.text + "\r\n";
    case RespValue::Kind::kInteger:
      return ":" + std::to_string(value.integer) + "\r\n";
    case RespValue::Kind::kBulk:
      return "$" + std::to_string(value.text.size()) + "\r\n" + value.text + "\r\n";
    case RespValue::Kind::kNil:
      return "$-1\r\n";
  }
  return "";
}

Result<std::optional<RespCommand>> RespRequestParser::Next() {
  if (buffer_.empty()) {
    return std::optional<RespCommand>(std::nullopt);
  }
  std::size_t pos = 0;
  RespCommand out;
  const int rc = TryParseCommand(buffer_, pos, out);
  if (rc == -1) {
    return ProtocolError("malformed request stream");
  }
  if (rc == 0) {
    // The §3.2 pathology: we scanned the buffer and found no complete request — this
    // work bought nothing and will be repeated when more bytes arrive.
    ++incomplete_scans_;
    return std::optional<RespCommand>(std::nullopt);
  }
  buffer_.erase(0, pos);
  return std::optional<RespCommand>(std::move(out));
}

Result<std::optional<RespValue>> RespResponseParser::Next() {
  if (buffer_.empty()) {
    return std::optional<RespValue>(std::nullopt);
  }
  std::size_t pos = 0;
  const char tag = buffer_[0];
  RespValue value;
  switch (tag) {
    case '+':
    case '-': {
      const std::size_t eol = buffer_.find("\r\n", 1);
      if (eol == std::string::npos) {
        return std::optional<RespValue>(std::nullopt);
      }
      value.kind = tag == '+' ? RespValue::Kind::kSimple : RespValue::Kind::kError;
      value.text = buffer_.substr(1, eol - 1);
      pos = eol + 2;
      break;
    }
    case ':': {
      std::size_t p = 1;
      LineInt v = ParseIntLine(buffer_, p);
      if (v.incomplete) {
        return std::optional<RespValue>(std::nullopt);
      }
      if (v.malformed) {
        return ProtocolError("bad integer reply");
      }
      value = RespValue::Integer(v.value);
      pos = p;
      break;
    }
    case '$': {
      std::size_t p = 1;
      LineInt len = ParseIntLine(buffer_, p);
      if (len.incomplete) {
        return std::optional<RespValue>(std::nullopt);
      }
      if (len.malformed || len.value < -1) {
        return ProtocolError("bad bulk length");
      }
      if (len.value == -1) {
        value = RespValue::Nil();
        pos = p;
        break;
      }
      if (p + static_cast<std::size_t>(len.value) + 2 > buffer_.size()) {
        return std::optional<RespValue>(std::nullopt);
      }
      value = RespValue::Bulk(buffer_.substr(p, static_cast<std::size_t>(len.value)));
      pos = p + static_cast<std::size_t>(len.value) + 2;
      break;
    }
    default:
      return ProtocolError("unknown reply tag");
  }
  buffer_.erase(0, pos);
  return std::optional<RespValue>(std::move(value));
}

}  // namespace demi
