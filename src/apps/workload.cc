#include "src/apps/workload.h"

#include <cstdio>

namespace demi {

KvWorkload::KvWorkload(KvWorkloadConfig config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.num_keys, config.zipf_theta) {}

std::string KvWorkload::KeyName(std::uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%012llu", static_cast<unsigned long long>(index));
  std::string key(buf);
  if (key.size() < config_.key_bytes) {
    key.append(config_.key_bytes - key.size(), 'k');
  }
  key.resize(config_.key_bytes);
  return key;
}

std::string KvWorkload::MakeValue(std::uint64_t salt) const {
  std::string value(config_.value_bytes, 'v');
  // Stamp the salt so distinct writes are distinguishable in validation.
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(salt));
  for (int i = 0; i < n && static_cast<std::size_t>(i) < value.size(); ++i) {
    value[i] = buf[i];
  }
  return value;
}

RespCommand KvWorkload::LoadCommand(std::uint64_t key_index) const {
  return {"SET", KeyName(key_index), MakeValue(key_index)};
}

RespCommand KvWorkload::Next() {
  const std::uint64_t key = zipf_.Next(rng_);
  if (rng_.NextBool(config_.get_ratio)) {
    ++gets_;
    return {"GET", KeyName(key)};
  }
  ++sets_;
  return {"SET", KeyName(key), MakeValue(rng_.NextU64() % 1000000)};
}

}  // namespace demi
