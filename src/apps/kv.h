// A Redis-like key-value engine — the paper's motivating application (§3.2: "Redis
// spends about 2µs on each read request").
//
// The engine is transport-agnostic and zero-copy-native: values are refcounted
// Buffers, a SET takes a reference to the request's value bytes, and a GET reply
// carries a reference to the stored value. Whether any byte is actually copied is the
// transport's business: the Demikernel servers push the value Buffer as an sga segment
// (no copy, §4.5 free-protection makes this safe), while the POSIX server must
// linearize the reply into a stream buffer and then pay the kernel copy — which is
// exactly the 50%-overhead contrast of experiment C1.
//
// No in-place updates exist (SET installs a new Buffer and drops the old reference),
// matching §4.5's observation about Redis that makes free-protection sufficient.

#ifndef SRC_APPS_KV_H_
#define SRC_APPS_KV_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/apps/resp.h"
#include "src/sim/simulation.h"

namespace demi {

// A command as buffer references (zero-copy form): args[0] is the opcode.
using RespArgs = std::vector<Buffer>;

// A reply that can reference stored data without copying it.
struct KvReply {
  RespValue::Kind kind = RespValue::Kind::kNil;
  std::string text;         // kSimple/kError text
  std::int64_t integer = 0; // kInteger
  Buffer bulk;              // kBulk: a REFERENCE to the stored value

  // Linearized form for byte-stream transports (copies the bulk payload).
  RespValue ToValue() const;
};

class KvEngine {
 public:
  explicit KvEngine(HostCpu* host) : host_(host) {}

  // Zero-copy execution over buffer arguments.
  KvReply Execute(std::span<const Buffer> args);

  // Convenience for tests and string-based callers.
  RespValue Execute(const RespCommand& cmd);

  std::size_t size() const { return store_.size(); }
  std::uint64_t requests_served() const { return requests_; }

 private:
  HostCpu* host_;
  std::unordered_map<std::string, Buffer> store_;
  std::uint64_t requests_ = 0;
};

}  // namespace demi

#endif  // SRC_APPS_KV_H_
