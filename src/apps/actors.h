// Server and client actors for the experiments: echo and KV, each in three
// architectural styles —
//   Demi*:  Demikernel queues (any libOS: Catnap/Catnip/Catmint),
//   Posix*: legacy-kernel sockets + epoll (the Figure 1 left-side baseline),
//   Mtcp*:  user-level stack that keeps the POSIX API (the §6 comparator).
//
// Actors are simulation Pollers: they run "inside" the simulated hosts and never call
// blocking waits; benches drive them with Simulation::RunUntil. Clients are closed
// loops recording per-request latency in simulated time; they usually live on
// non-clock-charging hosts so only server+network time is measured.

#ifndef SRC_APPS_ACTORS_H_
#define SRC_APPS_ACTORS_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/kv.h"
#include "src/apps/resp.h"
#include "src/apps/workload.h"
#include "src/baseline/mtcp.h"
#include "src/common/histogram.h"
#include "src/core/libos.h"
#include "src/kernel/kernel.h"

namespace demi {

// --- Demikernel actors ---

class DemiEchoServer final : public Poller {
 public:
  DemiEchoServer(LibOS* libos, std::uint16_t port);
  ~DemiEchoServer() override;
  bool Poll() override;
  std::uint64_t echoed() const { return echoed_; }

 private:
  struct Conn {
    QDesc qd;
    QToken pop = kInvalidQToken;
    QToken push = kInvalidQToken;
    bool dead = false;
  };
  LibOS* libos_;
  QDesc listen_qd_ = kInvalidQDesc;
  QToken accept_token_ = kInvalidQToken;
  std::vector<Conn> conns_;
  std::uint64_t echoed_ = 0;
};

class DemiEchoClient final : public Poller {
 public:
  DemiEchoClient(LibOS* libos, Endpoint server, std::size_t msg_bytes,
                 std::uint64_t target_requests);
  ~DemiEchoClient() override;
  bool Poll() override;

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return failed_; }
  std::uint64_t completed() const { return completed_; }
  Histogram& latency() { return latency_; }

 private:
  enum class State { kConnecting, kSend, kWaitPush, kWaitPop, kDone };
  LibOS* libos_;
  Endpoint server_;
  std::size_t msg_bytes_;
  std::uint64_t target_;
  QDesc qd_ = kInvalidQDesc;
  QToken token_ = kInvalidQToken;
  State state_ = State::kConnecting;
  bool failed_ = false;
  TimeNs sent_at_ = 0;
  std::uint64_t completed_ = 0;
  Histogram latency_;
};

class DemiKvServer final : public Poller {
 public:
  DemiKvServer(LibOS* libos, std::uint16_t port);
  ~DemiKvServer() override;
  bool Poll() override;

  KvEngine& engine() { return engine_; }
  std::uint64_t requests() const { return requests_; }

 private:
  struct Conn {
    QDesc qd;
    QToken pop = kInvalidQToken;
    QToken push = kInvalidQToken;
    bool dead = false;
  };
  SgArray ReplySga(const KvReply& reply);

  LibOS* libos_;
  KvEngine engine_;
  QDesc listen_qd_ = kInvalidQDesc;
  QToken accept_token_ = kInvalidQToken;
  std::vector<Conn> conns_;
  std::uint64_t requests_ = 0;
};

class DemiKvClient final : public Poller {
 public:
  DemiKvClient(LibOS* libos, Endpoint server, KvWorkload* workload,
               std::uint64_t target_requests);
  ~DemiKvClient() override;
  bool Poll() override;

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return failed_; }
  std::uint64_t completed() const { return completed_; }
  Histogram& latency() { return latency_; }

 private:
  enum class State { kConnecting, kSend, kWaitPush, kWaitPop, kDone };
  SgArray EncodeRequest(const RespCommand& cmd);

  LibOS* libos_;
  Endpoint server_;
  KvWorkload* workload_;
  std::uint64_t target_;
  QDesc qd_ = kInvalidQDesc;
  QToken token_ = kInvalidQToken;
  State state_ = State::kConnecting;
  bool failed_ = false;
  TimeNs sent_at_ = 0;
  std::uint64_t completed_ = 0;
  Histogram latency_;
};

// --- POSIX (legacy kernel) actors ---

class PosixEchoServer final : public Poller {
 public:
  PosixEchoServer(SimKernel* kernel, std::uint16_t port, std::size_t msg_bytes);
  ~PosixEchoServer() override;
  bool Poll() override;
  std::uint64_t echoed() const { return echoed_; }

 private:
  struct Conn {
    int fd;
    std::string inbox;
    std::string outbox;
    bool dead = false;
  };
  SimKernel* kernel_;
  std::size_t msg_bytes_;
  int listen_fd_ = -1;
  int epfd_ = -1;
  std::vector<Conn> conns_;
  std::uint64_t echoed_ = 0;
};

class PosixEchoClient final : public Poller {
 public:
  PosixEchoClient(SimKernel* kernel, Endpoint server, std::size_t msg_bytes,
                  std::uint64_t target_requests);
  bool Poll() override;
  ~PosixEchoClient() override;

  bool done() const { return state_ == State::kDone; }
  std::uint64_t completed() const { return completed_; }
  Histogram& latency() { return latency_; }

 private:
  enum class State { kConnecting, kSend, kReceive, kDone };
  SimKernel* kernel_;
  Endpoint server_;
  std::size_t msg_bytes_;
  std::uint64_t target_;
  int fd_ = -1;
  State state_ = State::kConnecting;
  TimeNs sent_at_ = 0;
  std::size_t received_ = 0;
  std::uint64_t completed_ = 0;
  Histogram latency_;
};

struct PosixKvServerStats {
  std::uint64_t requests = 0;
  std::uint64_t incomplete_scans = 0;  // §3.2: wasted partial-request inspections
};

class PosixKvServer final : public Poller {
 public:
  PosixKvServer(SimKernel* kernel, std::uint16_t port);
  ~PosixKvServer() override;
  bool Poll() override;

  KvEngine& engine() { return engine_; }
  const PosixKvServerStats& stats() const { return stats_; }

 private:
  struct Conn {
    int fd;
    RespRequestParser parser;
    std::string outbox;
    bool dead = false;
  };
  SimKernel* kernel_;
  KvEngine engine_;
  int listen_fd_ = -1;
  int epfd_ = -1;
  std::vector<Conn> conns_;
  PosixKvServerStats stats_;
};

class PosixKvClient final : public Poller {
 public:
  // `fragments` > 1 splits each request into that many writes separated by
  // `fragment_gap_ns` — the trickling-sender scenario of experiment C2.
  PosixKvClient(SimKernel* kernel, Endpoint server, KvWorkload* workload,
                std::uint64_t target_requests, int fragments = 1,
                TimeNs fragment_gap_ns = 0);
  ~PosixKvClient() override;
  bool Poll() override;

  bool done() const { return state_ == State::kDone; }
  std::uint64_t completed() const { return completed_; }
  Histogram& latency() { return latency_; }

 private:
  enum class State { kConnecting, kSend, kReceive, kDone };
  SimKernel* kernel_;
  Endpoint server_;
  KvWorkload* workload_;
  std::uint64_t target_;
  int fragments_;
  TimeNs fragment_gap_ns_;
  int fd_ = -1;
  State state_ = State::kConnecting;
  std::string wire_;            // encoded request being sent
  std::size_t wire_sent_ = 0;
  TimeNs next_write_at_ = 0;
  TimeNs sent_at_ = 0;
  RespResponseParser responses_;
  std::uint64_t completed_ = 0;
  Histogram latency_;
};

// --- mTCP-style actors ---

class MtcpEchoServer final : public Poller {
 public:
  MtcpEchoServer(MtcpStack* stack, std::uint16_t port, std::size_t msg_bytes);
  ~MtcpEchoServer() override;
  bool Poll() override;
  std::uint64_t echoed() const { return echoed_; }

 private:
  struct Conn {
    int fd;
    std::string inbox;
    bool dead = false;
  };
  MtcpStack* stack_;
  std::size_t msg_bytes_;
  int listen_fd_ = -1;
  std::vector<Conn> conns_;
  std::uint64_t echoed_ = 0;
};

}  // namespace demi

#endif  // SRC_APPS_ACTORS_H_
