#include "src/apps/block_index.h"

#include <memory>
#include <vector>

#include "src/common/byte_order.h"

namespace demi {
namespace {

// One descent step, shared bit-for-bit by the device program and the host baseline:
// parse the node, binary-search `key`, and either stop with the value (leaf hit) or
// name the child to read next (inner node).
struct StepOutcome {
  bool done = false;
  std::uint64_t value_or_child = 0;  // value when done, absolute child LBA otherwise
};

std::uint64_t EntryKey(std::span<const std::byte> block, std::size_t i) {
  ByteReader r(block.subspan(BlockIndex::kNodeHeader + i * BlockIndex::kEntryBytes, 8));
  return r.U64();
}

std::uint64_t EntryVal(std::span<const std::byte> block, std::size_t i) {
  ByteReader r(
      block.subspan(BlockIndex::kNodeHeader + i * BlockIndex::kEntryBytes + 8, 8));
  return r.U64();
}

Result<StepOutcome> IndexStep(std::span<const std::byte> block, std::uint64_t key) {
  if (block.size() < BlockIndex::kNodeHeader) {
    return ProtocolError("short index node");
  }
  ByteReader header(block);
  if (header.U32() != BlockIndex::kMagic) {
    return ProtocolError("bad index node magic");
  }
  const bool is_leaf = header.U8() != 0;
  header.Skip(1);
  const std::uint16_t nkeys = header.U16();
  if (nkeys == 0 ||
      BlockIndex::kNodeHeader + nkeys * BlockIndex::kEntryBytes > block.size()) {
    return ProtocolError("bad index node entry count");
  }
  // Count of keys <= `key` (entries are ascending within a node).
  std::size_t lo = 0;
  std::size_t hi = nkeys;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (EntryKey(block, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (is_leaf) {
    if (lo == 0 || EntryKey(block, lo - 1) != key) {
      return NotFound("key not in index");
    }
    StepOutcome out;
    out.done = true;
    out.value_or_child = EntryVal(block, lo - 1);
    return out;
  }
  if (lo == 0) {
    return NotFound("key below index range");  // every subtree key exceeds `key`
  }
  StepOutcome out;
  out.value_or_child = EntryVal(block, lo - 1);
  return out;
}

}  // namespace

Result<BlockIndex> BlockIndex::Build(
    CatfishLibOS& libos, const std::string& path,
    std::span<const std::pair<std::uint64_t, std::uint64_t>> entries,
    std::size_t fanout) {
  if (entries.empty()) {
    return InvalidArgument("index needs at least one entry");
  }
  if (fanout < 2 || fanout > MaxFanout()) {
    return InvalidArgument("index fanout out of range");
  }
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].first <= entries[i - 1].first) {
      return InvalidArgument("index entries must have strictly ascending keys");
    }
  }

  Result<QDesc> qd = libos.Creat(path);
  if (!qd.ok()) {
    return qd.status();
  }
  Result<CatfishLibOS::FileMeta> meta = libos.StatFile(path);
  if (!meta.ok()) {
    return meta.status();
  }
  const std::uint64_t base_lba = meta->base_lba;

  // Writes are fire-and-tracked: completions decrement `outstanding` and keep the
  // first error. The build drives the simulation until all node writes are durable.
  struct BuildState {
    std::size_t outstanding = 0;
    Status status;
  };
  auto state = std::make_shared<BuildState>();
  std::uint64_t next_block = 0;

  struct ChildRef {
    std::uint64_t first_key = 0;
    std::uint64_t abs_lba = 0;
  };
  auto emit_node = [&](bool is_leaf,
                       std::span<const ChildRef> refs) -> Result<ChildRef> {
    if (next_block >= meta->extent_blocks) {
      return ResourceExhausted("index does not fit the file extent");
    }
    std::vector<std::byte> raw(kBlock, std::byte{0});
    ByteWriter w(raw);
    w.U32(kMagic);
    w.U8(is_leaf ? 1 : 0);
    w.Skip(1);
    w.U16(static_cast<std::uint16_t>(refs.size()));
    for (const ChildRef& ref : refs) {
      w.U64(ref.first_key);
      w.U64(ref.abs_lba);
    }
    const std::uint64_t rel = next_block++;
    ++state->outstanding;
    libos.SubmitWrite(base_lba + rel, Buffer::CopyOf(std::span<const std::byte>(raw)),
                      [state](const BlockCompletion& c) {
                        if (!c.status.ok() && state->status.ok()) {
                          state->status = c.status;
                        }
                        --state->outstanding;
                      });
    ChildRef self;
    self.first_key = refs.front().first_key;
    self.abs_lba = base_lba + rel;
    return self;
  };

  // Level 0: leaves hold the (key, value) pairs themselves.
  std::vector<ChildRef> level;
  {
    std::vector<ChildRef> chunk;
    for (const auto& [key, value] : entries) {
      ChildRef e;
      e.first_key = key;
      e.abs_lba = value;  // leaf entries carry the value in the pointer slot
      chunk.push_back(e);
      if (chunk.size() == fanout) {
        Result<ChildRef> node = emit_node(/*is_leaf=*/true, chunk);
        if (!node.ok()) {
          return node.status();
        }
        level.push_back(*node);
        chunk.clear();
      }
    }
    if (!chunk.empty()) {
      Result<ChildRef> node = emit_node(/*is_leaf=*/true, chunk);
      if (!node.ok()) {
        return node.status();
      }
      level.push_back(*node);
    }
  }

  // Inner levels until a single root remains.
  std::uint32_t depth = 1;
  while (level.size() > 1) {
    std::vector<ChildRef> parents;
    for (std::size_t at = 0; at < level.size(); at += fanout) {
      const std::size_t take = std::min(fanout, level.size() - at);
      Result<ChildRef> node = emit_node(
          /*is_leaf=*/false, std::span<const ChildRef>(level).subspan(at, take));
      if (!node.ok()) {
        return node.status();
      }
      parents.push_back(*node);
    }
    level = std::move(parents);
    ++depth;
  }

  if (!libos.sim().RunUntil([&] { return state->outstanding == 0; }, 60 * kSecond)) {
    return TimedOut("index node writes did not complete");
  }
  if (!state->status.ok()) {
    return state->status;
  }
  const std::uint64_t root_block = level.front().abs_lba - base_lba;
  return BlockIndex(&libos, *qd, base_lba, root_block, depth, next_block);
}

PushdownProgram BlockIndex::LookupProgram() {
  PushdownProgram prog;
  // Parse + binary search per node, as the host-side descent pays per level.
  prog.host_step_cost_ns = 400;
  prog.fn = [](const PushdownContext& ctx) -> Result<PushdownAction> {
    if (ctx.arg.size() != 8) {
      return InvalidArgument("index lookup arg must be an 8-byte key");
    }
    ByteReader key_reader(ctx.arg);
    const std::uint64_t key = key_reader.U64();
    Result<StepOutcome> step = IndexStep(ctx.block, key);
    if (!step.ok()) {
      return step.status();
    }
    if (step->done) {
      Buffer value = Buffer::Allocate(8);
      ByteWriter w(value.mutable_span());
      w.U64(step->value_or_child);
      return PushdownAction::Finish(std::move(value));
    }
    return PushdownAction::Resubmit(step->value_or_child);
  };
  return prog;
}

Result<QToken> BlockIndex::LookupAsync(PushdownProgramId program,
                                       std::uint64_t key) const {
  Buffer arg = Buffer::Allocate(8);
  ByteWriter w(arg.mutable_span());
  w.U64(key);
  return libos_->PushdownRead(qd_, program, root_block_, SgArray(std::move(arg)));
}

Result<BlockIndex::Lookup> BlockIndex::LookupFromHost(std::uint64_t key) const {
  struct ReadState {
    bool done = false;
    Status status;
  };
  std::uint64_t lba = base_lba_ + root_block_;
  Lookup out;
  // depth_ levels; +1 tolerates a stale depth rather than descending forever.
  for (std::uint32_t level = 0; level < depth_ + 1; ++level) {
    auto state = std::make_shared<ReadState>();
    Buffer dest = Buffer::Allocate(kBlock);
    libos_->SubmitRead(lba, dest, [state](const BlockCompletion& c) {
      state->status = c.status;
      state->done = true;
    });
    if (!libos_->sim().RunUntil([&] { return state->done; }, 60 * kSecond)) {
      return TimedOut("index node read did not complete");
    }
    if (!state->status.ok()) {
      return state->status;
    }
    ++out.steps;
    Result<StepOutcome> step = IndexStep(dest.span(), key);
    if (!step.ok()) {
      return step.status();
    }
    if (step->done) {
      out.value = step->value_or_child;
      return out;
    }
    lba = step->value_or_child;
  }
  return Internal("index descent exceeded the declared depth");
}

std::uint64_t BlockIndex::DecodeValue(const SgArray& sga) {
  Buffer flat = sga.Flatten();
  if (flat.size() != 8) {
    return 0;
  }
  ByteReader r(flat.span());
  return r.U64();
}

}  // namespace demi
