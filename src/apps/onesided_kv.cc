#include "src/apps/onesided_kv.h"

#include <cstring>

#include "src/common/byte_order.h"
#include "src/common/checksum.h"
#include "src/common/logging.h"

namespace demi {

namespace {

// Slot layout: [u32 magic][u32 key_len][u32 value_len][u32 crc(value)][key][value].
constexpr std::size_t kHeaderBytes = 16;
static_assert(kHeaderBytes + OneSidedSlotLayout::kKeyMax + OneSidedSlotLayout::kValueMax <=
              OneSidedSlotLayout::kSlotBytes);

}  // namespace

std::uint64_t OneSidedKvServer::HashKey(const std::string& key) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return h;
}

OneSidedKvServer::OneSidedKvServer(HostCpu* host, RdmaNic* nic, const std::string& addr,
                                   std::size_t slots)
    : host_(host), nic_(nic), addr_(addr), slots_(slots) {
  table_ = Buffer::Allocate(slots_ * OneSidedSlotLayout::kSlotBytes);
  std::memset(table_.mutable_data(), 0, table_.size());
  auto rkey = nic_->RegisterMemory(table_.shared_storage());
  DEMI_CHECK(rkey.ok());
  rkey_ = *rkey;
  DEMI_CHECK(nic_->Listen(addr_).ok());
}

std::size_t OneSidedKvServer::SlotIndex(const std::string& key) const {
  return static_cast<std::size_t>(HashKey(key) % slots_);
}

std::byte* OneSidedKvServer::SlotAt(std::size_t index) {
  return table_.mutable_data() + index * OneSidedSlotLayout::kSlotBytes;
}

Status OneSidedKvServer::Put(const std::string& key, const std::string& value) {
  if (key.size() > OneSidedSlotLayout::kKeyMax) {
    return InvalidArgument("key exceeds the fixed slot layout");
  }
  if (value.size() > OneSidedSlotLayout::kValueMax) {
    return InvalidArgument("value exceeds the fixed slot layout");
  }
  std::byte* slot = SlotAt(SlotIndex(key));
  ByteReader r(std::span<const std::byte>(slot, kHeaderBytes));
  const std::uint32_t magic = r.U32();
  const std::uint32_t existing_key_len = r.U32();
  if (magic == OneSidedSlotLayout::kValidMagic) {
    const std::string_view existing(reinterpret_cast<const char*>(slot + kHeaderBytes),
                                    existing_key_len);
    if (existing != key) {
      // The fixed-layout price: no chaining, no resize — a collision is an error the
      // operator must size the table around.
      return ResourceExhausted("slot collision in fixed-layout table");
    }
  }
  host_->Work(host_->cost().kv_request_cpu_ns);  // server-side update work

  // Invalidate -> write -> validate, so a concurrent one-sided reader sees either the
  // old entry, an invalid slot, or the new entry with a matching CRC.
  ByteWriter inv(std::span<std::byte>(slot, 4));
  inv.U32(0);
  ByteWriter w(std::span<std::byte>(slot + 4, kHeaderBytes - 4));
  w.U32(static_cast<std::uint32_t>(key.size()));
  w.U32(static_cast<std::uint32_t>(value.size()));
  w.U32(Crc32c(std::as_bytes(std::span<const char>(value.data(), value.size()))));
  std::memcpy(slot + kHeaderBytes, key.data(), key.size());
  std::memcpy(slot + kHeaderBytes + OneSidedSlotLayout::kKeyMax, value.data(),
              value.size());
  ByteWriter val(std::span<std::byte>(slot, 4));
  val.U32(OneSidedSlotLayout::kValidMagic);
  return OkStatus();
}

Status OneSidedKvServer::Remove(const std::string& key) {
  std::byte* slot = SlotAt(SlotIndex(key));
  ByteWriter w(std::span<std::byte>(slot, 4));
  w.U32(0);
  return OkStatus();
}

std::shared_ptr<RdmaQp> OneSidedKvServer::Accept() { return nic_->Accept(addr_); }

OneSidedKvClient::OneSidedKvClient(HostCpu* host, RdmaNic* nic,
                                   std::shared_ptr<RdmaQp> qp, RKey rkey,
                                   std::size_t slots)
    : host_(host), qp_(std::move(qp)), rkey_(rkey), slots_(slots) {
  scratch_ = Buffer::Allocate(OneSidedSlotLayout::kSlotBytes);
  DEMI_CHECK(nic->RegisterMemory(scratch_.shared_storage()).ok());
}

Result<std::string> OneSidedKvClient::Get(Simulation& sim, const std::string& key,
                                          TimeNs timeout) {
  const std::size_t index =
      static_cast<std::size_t>(OneSidedKvServer::HashKey(key) % slots_);
  const std::uint64_t wr = next_wr_++;
  ++reads_;
  RETURN_IF_ERROR(qp_->PostRead(wr, scratch_, rkey_,
                                index * OneSidedSlotLayout::kSlotBytes));
  Status read_status = TimedOut("rdma read");
  const bool done = sim.RunUntil(
      [&] {
        for (const WorkCompletion& wc : qp_->PollCq(8)) {
          if (wc.wr_id == wr) {
            read_status = wc.status;
            return true;
          }
        }
        return false;
      },
      sim.now() + timeout);
  if (!done || !read_status.ok()) {
    return read_status.ok() ? TimedOut("rdma read") : read_status;
  }

  // Client-side validation: the "OS functionality" these designs push into clients.
  host_->Work(host_->cost().libos_call_ns);
  ByteReader r(scratch_.span().subspan(0, kHeaderBytes));
  const std::uint32_t magic = r.U32();
  const std::uint32_t key_len = r.U32();
  const std::uint32_t value_len = r.U32();
  const std::uint32_t crc = r.U32();
  if (magic != OneSidedSlotLayout::kValidMagic) {
    return NotFound(key);
  }
  if (key_len != key.size() ||
      std::memcmp(scratch_.data() + kHeaderBytes, key.data(), key.size()) != 0) {
    return NotFound(key);  // different key hashed here
  }
  const auto value_span =
      scratch_.span().subspan(kHeaderBytes + OneSidedSlotLayout::kKeyMax, value_len);
  if (Crc32c(value_span) != crc) {
    return Status(ErrorCode::kProtocolError, "torn read: checksum mismatch");
  }
  return std::string(reinterpret_cast<const char*>(value_span.data()), value_len);
}

}  // namespace demi
