#include "src/apps/actors.h"

#include <cstring>

#include "src/common/logging.h"

namespace demi {

namespace {

// Fills a freshly allocated sga with a recognizable pattern.
SgArray MakeMessage(LibOS& libos, std::size_t bytes) {
  SgArray sga = libos.SgaAlloc(bytes);
  std::memset(sga.segment(0).mutable_data(), 'e', bytes);
  return sga;
}

}  // namespace

// --- DemiEchoServer ---

DemiEchoServer::DemiEchoServer(LibOS* libos, std::uint16_t port) : libos_(libos) {
  listen_qd_ = *libos_->Socket();
  DEMI_CHECK(libos_->Bind(listen_qd_, port).ok());
  DEMI_CHECK(libos_->Listen(listen_qd_).ok());
  accept_token_ = *libos_->AcceptAsync(listen_qd_);
  libos_->sim().AddPoller(this);
}

DemiEchoServer::~DemiEchoServer() { libos_->sim().RemovePoller(this); }

bool DemiEchoServer::Poll() {
  bool progress = false;

  if (accept_token_ != kInvalidQToken && libos_->OpDone(accept_token_)) {
    auto r = libos_->TakeResult(accept_token_);
    accept_token_ = kInvalidQToken;
    progress = true;
    if (r.ok() && r->status.ok()) {
      Conn conn{r->new_qd};
      if (auto pop = libos_->Pop(conn.qd); pop.ok()) {
        conn.pop = *pop;
      }
      conns_.push_back(conn);
    }
    if (auto t = libos_->AcceptAsync(listen_qd_); t.ok()) {
      accept_token_ = *t;
    }
  }

  for (Conn& conn : conns_) {
    if (conn.dead) {
      continue;
    }
    if (conn.push != kInvalidQToken && libos_->OpDone(conn.push)) {
      (void)libos_->TakeResult(conn.push);
      conn.push = kInvalidQToken;
      progress = true;
    }
    // Process the next request only when the previous reply has been handed off.
    if (conn.pop != kInvalidQToken && conn.push == kInvalidQToken &&
        libos_->OpDone(conn.pop)) {
      auto r = libos_->TakeResult(conn.pop);
      conn.pop = kInvalidQToken;
      progress = true;
      if (!r.ok() || !r->status.ok()) {
        (void)libos_->Close(conn.qd);
        conn.dead = true;
        continue;
      }
      // Echo: push back the very same sga — zero copies, by construction.
      if (auto push = libos_->Push(conn.qd, r->sga); push.ok()) {
        conn.push = *push;
        ++echoed_;
      }
      if (auto pop = libos_->Pop(conn.qd); pop.ok()) {
        conn.pop = *pop;
      }
    }
  }
  return progress;
}

// --- DemiEchoClient ---

DemiEchoClient::DemiEchoClient(LibOS* libos, Endpoint server, std::size_t msg_bytes,
                               std::uint64_t target_requests)
    : libos_(libos), server_(server), msg_bytes_(msg_bytes), target_(target_requests) {
  qd_ = *libos_->Socket();
  auto token = libos_->ConnectAsync(qd_, server_);
  DEMI_CHECK(token.ok());
  token_ = *token;
  libos_->sim().AddPoller(this);
}

DemiEchoClient::~DemiEchoClient() { libos_->sim().RemovePoller(this); }

bool DemiEchoClient::Poll() {
  switch (state_) {
    case State::kConnecting: {
      if (!libos_->OpDone(token_)) {
        return false;
      }
      auto r = libos_->TakeResult(token_);
      token_ = kInvalidQToken;
      if (!r.ok() || !r->status.ok()) {
        failed_ = true;
        state_ = State::kDone;
        return true;
      }
      state_ = State::kSend;
      return true;
    }
    case State::kSend: {
      sent_at_ = libos_->sim().now();
      auto push = libos_->Push(qd_, MakeMessage(*libos_, msg_bytes_));
      if (!push.ok()) {
        failed_ = true;
        state_ = State::kDone;
        return true;
      }
      token_ = *push;
      state_ = State::kWaitPush;
      return true;
    }
    case State::kWaitPush: {
      if (!libos_->OpDone(token_)) {
        return false;
      }
      (void)libos_->TakeResult(token_);
      auto pop = libos_->Pop(qd_);
      if (!pop.ok()) {
        failed_ = true;
        state_ = State::kDone;
        return true;
      }
      token_ = *pop;
      state_ = State::kWaitPop;
      return true;
    }
    case State::kWaitPop: {
      if (!libos_->OpDone(token_)) {
        return false;
      }
      auto r = libos_->TakeResult(token_);
      token_ = kInvalidQToken;
      if (!r.ok() || !r->status.ok() || r->sga.total_bytes() != msg_bytes_) {
        failed_ = true;
        state_ = State::kDone;
        return true;
      }
      latency_.Record(static_cast<std::uint64_t>(libos_->sim().now() - sent_at_));
      if (++completed_ >= target_) {
        (void)libos_->Close(qd_);
        state_ = State::kDone;
      } else {
        state_ = State::kSend;
      }
      return true;
    }
    case State::kDone:
      return false;
  }
  return false;
}

// --- DemiKvServer ---

DemiKvServer::DemiKvServer(LibOS* libos, std::uint16_t port)
    : libos_(libos), engine_(&libos->host()) {
  listen_qd_ = *libos_->Socket();
  DEMI_CHECK(libos_->Bind(listen_qd_, port).ok());
  DEMI_CHECK(libos_->Listen(listen_qd_).ok());
  accept_token_ = *libos_->AcceptAsync(listen_qd_);
  libos_->sim().AddPoller(this);
}

DemiKvServer::~DemiKvServer() { libos_->sim().RemovePoller(this); }

SgArray DemiKvServer::ReplySga(const KvReply& reply) {
  if (reply.kind == RespValue::Kind::kBulk) {
    // The reply's value segment REFERENCES the stored value (§4.5 zero copy + free
    // protection); only the tiny RESP envelope is fresh memory.
    SgArray sga;
    sga.Append(Buffer::CopyOf("$" + std::to_string(reply.bulk.size()) + "\r\n"));
    sga.Append(reply.bulk);
    sga.Append(Buffer::CopyOf("\r\n"));
    return sga;
  }
  return SgArray(Buffer::CopyOf(EncodeRespValue(reply.ToValue())));
}

bool DemiKvServer::Poll() {
  bool progress = false;

  if (accept_token_ != kInvalidQToken && libos_->OpDone(accept_token_)) {
    auto r = libos_->TakeResult(accept_token_);
    accept_token_ = kInvalidQToken;
    progress = true;
    if (r.ok() && r->status.ok()) {
      Conn conn{r->new_qd};
      if (auto pop = libos_->Pop(conn.qd); pop.ok()) {
        conn.pop = *pop;
      }
      conns_.push_back(conn);
    }
    if (auto t = libos_->AcceptAsync(listen_qd_); t.ok()) {
      accept_token_ = *t;
    }
  }

  for (Conn& conn : conns_) {
    if (conn.dead) {
      continue;
    }
    if (conn.push != kInvalidQToken && libos_->OpDone(conn.push)) {
      (void)libos_->TakeResult(conn.push);
      conn.push = kInvalidQToken;
      progress = true;
    }
    if (conn.pop != kInvalidQToken && conn.push == kInvalidQToken &&
        libos_->OpDone(conn.pop)) {
      auto r = libos_->TakeResult(conn.pop);
      conn.pop = kInvalidQToken;
      progress = true;
      if (!r.ok() || !r->status.ok()) {
        (void)libos_->Close(conn.qd);
        conn.dead = true;
        continue;
      }
      // §3.2's payoff: the element IS a complete request — parse it once, zero copy.
      const Buffer request = r->sga.segment_count() == 1 ? r->sga.segment(0)
                                                         : r->sga.Flatten();
      auto args = ParseRespCommandBuffers(request);
      KvReply reply;
      if (args.ok()) {
        reply = engine_.Execute(*args);
      } else {
        reply.kind = RespValue::Kind::kError;
        reply.text = "ERR protocol error";
      }
      ++requests_;
      if (auto push = libos_->Push(conn.qd, ReplySga(reply)); push.ok()) {
        conn.push = *push;
      }
      if (auto pop = libos_->Pop(conn.qd); pop.ok()) {
        conn.pop = *pop;
      }
    }
  }
  return progress;
}

// --- DemiKvClient ---

DemiKvClient::DemiKvClient(LibOS* libos, Endpoint server, KvWorkload* workload,
                           std::uint64_t target_requests)
    : libos_(libos), server_(server), workload_(workload), target_(target_requests) {
  qd_ = *libos_->Socket();
  auto token = libos_->ConnectAsync(qd_, server_);
  DEMI_CHECK(token.ok());
  token_ = *token;
  libos_->sim().AddPoller(this);
}

DemiKvClient::~DemiKvClient() { libos_->sim().RemovePoller(this); }

SgArray DemiKvClient::EncodeRequest(const RespCommand& cmd) {
  const std::string wire = EncodeRespCommand(cmd);
  SgArray sga = libos_->SgaAlloc(wire.size());
  std::memcpy(sga.segment(0).mutable_data(), wire.data(), wire.size());
  return sga;
}

bool DemiKvClient::Poll() {
  switch (state_) {
    case State::kConnecting: {
      if (!libos_->OpDone(token_)) {
        return false;
      }
      auto r = libos_->TakeResult(token_);
      token_ = kInvalidQToken;
      if (!r.ok() || !r->status.ok()) {
        failed_ = true;
        state_ = State::kDone;
        return true;
      }
      state_ = State::kSend;
      return true;
    }
    case State::kSend: {
      sent_at_ = libos_->sim().now();
      auto push = libos_->Push(qd_, EncodeRequest(workload_->Next()));
      if (!push.ok()) {
        failed_ = true;
        state_ = State::kDone;
        return true;
      }
      token_ = *push;
      state_ = State::kWaitPush;
      return true;
    }
    case State::kWaitPush: {
      if (!libos_->OpDone(token_)) {
        return false;
      }
      (void)libos_->TakeResult(token_);
      auto pop = libos_->Pop(qd_);
      if (!pop.ok()) {
        failed_ = true;
        state_ = State::kDone;
        return true;
      }
      token_ = *pop;
      state_ = State::kWaitPop;
      return true;
    }
    case State::kWaitPop: {
      if (!libos_->OpDone(token_)) {
        return false;
      }
      auto r = libos_->TakeResult(token_);
      token_ = kInvalidQToken;
      if (!r.ok() || !r->status.ok()) {
        failed_ = true;
        state_ = State::kDone;
        return true;
      }
      latency_.Record(static_cast<std::uint64_t>(libos_->sim().now() - sent_at_));
      if (++completed_ >= target_) {
        (void)libos_->Close(qd_);
        state_ = State::kDone;
      } else {
        state_ = State::kSend;
      }
      return true;
    }
    case State::kDone:
      return false;
  }
  return false;
}

// --- PosixEchoServer ---

PosixEchoServer::PosixEchoServer(SimKernel* kernel, std::uint16_t port,
                                 std::size_t msg_bytes)
    : kernel_(kernel), msg_bytes_(msg_bytes) {
  listen_fd_ = *kernel_->Socket();
  DEMI_CHECK(kernel_->Bind(listen_fd_, port).ok());
  DEMI_CHECK(kernel_->Listen(listen_fd_).ok());
  epfd_ = *kernel_->EpollCreate();
  DEMI_CHECK(kernel_->EpollAdd(epfd_, listen_fd_, kEpollIn).ok());
  kernel_->host().sim().AddPoller(this);
}

PosixEchoServer::~PosixEchoServer() { kernel_->host().sim().RemovePoller(this); }

bool PosixEchoServer::Poll() {
  bool want_outbox_flush = false;
  for (const Conn& conn : conns_) {
    if (!conn.dead && !conn.outbox.empty()) {
      want_outbox_flush = true;
      break;
    }
  }
  if (!kernel_->EpollAnyReady(epfd_) && !want_outbox_flush) {
    return false;  // asleep in epoll_wait
  }
  auto events = kernel_->EpollWait(epfd_, 64);
  if (!events.ok()) {
    return false;
  }
  bool progress = !events->empty() || want_outbox_flush;

  for (const EpollEvent& ev : *events) {
    if (ev.fd == listen_fd_) {
      while (true) {
        auto fd = kernel_->Accept(listen_fd_);
        if (!fd.ok()) {
          break;
        }
        (void)kernel_->EpollAdd(epfd_, *fd, kEpollIn);
        conns_.push_back(Conn{*fd, "", "", false});
      }
      continue;
    }
    for (Conn& conn : conns_) {
      if (conn.fd != ev.fd || conn.dead) {
        continue;
      }
      while (true) {
        auto data = kernel_->ReadSock(conn.fd, 65536);
        if (!data.ok()) {
          if (data.code() != ErrorCode::kWouldBlock) {
            (void)kernel_->EpollDel(epfd_, conn.fd);
            (void)kernel_->CloseFd(conn.fd);
            conn.dead = true;
          }
          break;
        }
        conn.inbox.append(data->AsStringView());
      }
      break;
    }
  }

  // Echo complete messages; stage partial writes in the outbox.
  for (Conn& conn : conns_) {
    if (conn.dead) {
      continue;
    }
    while (conn.inbox.size() >= msg_bytes_) {
      conn.outbox.append(conn.inbox, 0, msg_bytes_);
      conn.inbox.erase(0, msg_bytes_);
      ++echoed_;
    }
    while (!conn.outbox.empty()) {
      auto written = kernel_->WriteSock(conn.fd, Buffer::CopyOf(conn.outbox));
      if (!written.ok()) {
        break;
      }
      conn.outbox.erase(0, *written);
    }
  }
  return progress;
}

// --- PosixEchoClient ---

PosixEchoClient::PosixEchoClient(SimKernel* kernel, Endpoint server,
                                 std::size_t msg_bytes, std::uint64_t target_requests)
    : kernel_(kernel), server_(server), msg_bytes_(msg_bytes), target_(target_requests) {
  fd_ = *kernel_->Socket();
  DEMI_CHECK(kernel_->Connect(fd_, server_).ok());
  kernel_->host().sim().AddPoller(this);
}

PosixEchoClient::~PosixEchoClient() { kernel_->host().sim().RemovePoller(this); }

bool PosixEchoClient::Poll() {
  switch (state_) {
    case State::kConnecting:
      if (kernel_->ConnectSucceeded(fd_)) {
        state_ = State::kSend;
        return true;
      }
      if (!kernel_->ConnectInProgress(fd_)) {
        state_ = State::kDone;  // refused
        return true;
      }
      return false;
    case State::kSend: {
      sent_at_ = kernel_->host().now();
      auto written = kernel_->WriteSock(fd_, Buffer::CopyOf(std::string(msg_bytes_, 'p')));
      if (!written.ok()) {
        return false;  // retry next poll
      }
      received_ = 0;
      state_ = State::kReceive;
      return true;
    }
    case State::kReceive: {
      bool progress = false;
      while (received_ < msg_bytes_) {
        auto data = kernel_->ReadSock(fd_, msg_bytes_ - received_);
        if (!data.ok()) {
          if (data.code() != ErrorCode::kWouldBlock) {
            state_ = State::kDone;
            return true;
          }
          return progress;
        }
        received_ += data->size();
        progress = true;
      }
      latency_.Record(static_cast<std::uint64_t>(kernel_->host().now() - sent_at_));
      if (++completed_ >= target_) {
        (void)kernel_->CloseFd(fd_);
        state_ = State::kDone;
      } else {
        state_ = State::kSend;
      }
      return true;
    }
    case State::kDone:
      return false;
  }
  return false;
}

// --- PosixKvServer ---

PosixKvServer::PosixKvServer(SimKernel* kernel, std::uint16_t port)
    : kernel_(kernel), engine_(&kernel->host()) {
  listen_fd_ = *kernel_->Socket();
  DEMI_CHECK(kernel_->Bind(listen_fd_, port).ok());
  DEMI_CHECK(kernel_->Listen(listen_fd_).ok());
  epfd_ = *kernel_->EpollCreate();
  DEMI_CHECK(kernel_->EpollAdd(epfd_, listen_fd_, kEpollIn).ok());
  kernel_->host().sim().AddPoller(this);
}

PosixKvServer::~PosixKvServer() { kernel_->host().sim().RemovePoller(this); }

bool PosixKvServer::Poll() {
  bool want_outbox_flush = false;
  for (const Conn& conn : conns_) {
    if (!conn.dead && !conn.outbox.empty()) {
      want_outbox_flush = true;
      break;
    }
  }
  if (!kernel_->EpollAnyReady(epfd_) && !want_outbox_flush) {
    return false;
  }
  auto events = kernel_->EpollWait(epfd_, 64);
  if (!events.ok()) {
    return false;
  }
  bool progress = !events->empty() || want_outbox_flush;

  for (const EpollEvent& ev : *events) {
    if (ev.fd == listen_fd_) {
      while (true) {
        auto fd = kernel_->Accept(listen_fd_);
        if (!fd.ok()) {
          break;
        }
        (void)kernel_->EpollAdd(epfd_, *fd, kEpollIn);
        conns_.push_back(Conn{*fd, {}, "", false});
      }
      continue;
    }
    for (Conn& conn : conns_) {
      if (conn.fd != ev.fd || conn.dead) {
        continue;
      }
      while (true) {
        auto data = kernel_->ReadSock(conn.fd, 65536);
        if (!data.ok()) {
          if (data.code() != ErrorCode::kWouldBlock) {
            (void)kernel_->EpollDel(epfd_, conn.fd);
            (void)kernel_->CloseFd(conn.fd);
            conn.dead = true;
          }
          break;
        }
        conn.parser.Feed(data->AsStringView());
      }

      // Drain complete requests; incomplete tails are the §3.2 wasted scans.
      const std::uint64_t scans_before = conn.parser.incomplete_scans();
      while (true) {
        auto next = conn.parser.Next();
        if (!next.ok()) {
          (void)kernel_->EpollDel(epfd_, conn.fd);
          (void)kernel_->CloseFd(conn.fd);
          conn.dead = true;
          break;
        }
        if (!next->has_value()) {
          break;
        }
        const RespValue reply = engine_.Execute(**next);
        conn.outbox += EncodeRespValue(reply);
        ++stats_.requests;
      }
      const std::uint64_t new_scans = conn.parser.incomplete_scans() - scans_before;
      if (new_scans > 0) {
        // The server woke up, crossed the kernel, and scanned — for nothing.
        stats_.incomplete_scans += new_scans;
        kernel_->host().Count(Counter::kStreamScans, new_scans);
        kernel_->host().Work(static_cast<TimeNs>(new_scans) *
                             kernel_->host().cost().partial_scan_ns);
      }
      break;
    }
  }

  for (Conn& conn : conns_) {
    if (conn.dead) {
      continue;
    }
    while (!conn.outbox.empty()) {
      auto written = kernel_->WriteSock(conn.fd, Buffer::CopyOf(conn.outbox));
      if (!written.ok()) {
        break;
      }
      conn.outbox.erase(0, *written);
    }
  }
  return progress;
}

// --- PosixKvClient ---

PosixKvClient::PosixKvClient(SimKernel* kernel, Endpoint server, KvWorkload* workload,
                             std::uint64_t target_requests, int fragments,
                             TimeNs fragment_gap_ns)
    : kernel_(kernel),
      server_(server),
      workload_(workload),
      target_(target_requests),
      fragments_(std::max(fragments, 1)),
      fragment_gap_ns_(fragment_gap_ns) {
  fd_ = *kernel_->Socket();
  DEMI_CHECK(kernel_->Connect(fd_, server_).ok());
  kernel_->host().sim().AddPoller(this);
}

PosixKvClient::~PosixKvClient() { kernel_->host().sim().RemovePoller(this); }

bool PosixKvClient::Poll() {
  switch (state_) {
    case State::kConnecting:
      if (kernel_->ConnectSucceeded(fd_)) {
        state_ = State::kSend;
        return true;
      }
      if (!kernel_->ConnectInProgress(fd_)) {
        state_ = State::kDone;
        return true;
      }
      return false;
    case State::kSend: {
      if (wire_.empty()) {
        wire_ = EncodeRespCommand(workload_->Next());
        wire_sent_ = 0;
        sent_at_ = kernel_->host().now();
        next_write_at_ = sent_at_;
      }
      if (kernel_->host().now() < next_write_at_) {
        return false;
      }
      const std::size_t chunk_size =
          (wire_.size() + static_cast<std::size_t>(fragments_) - 1) /
          static_cast<std::size_t>(fragments_);
      const std::size_t take = std::min(chunk_size, wire_.size() - wire_sent_);
      auto written =
          kernel_->WriteSock(fd_, Buffer::CopyOf(std::string_view(wire_).substr(wire_sent_, take)));
      if (!written.ok()) {
        return false;
      }
      wire_sent_ += *written;
      if (wire_sent_ >= wire_.size()) {
        wire_.clear();
        state_ = State::kReceive;
      } else if (fragment_gap_ns_ > 0) {
        next_write_at_ = kernel_->host().now() + fragment_gap_ns_;
        kernel_->host().sim().Schedule(fragment_gap_ns_, [] {});  // wake at the boundary
      }
      return true;
    }
    case State::kReceive: {
      bool progress = false;
      while (true) {
        auto data = kernel_->ReadSock(fd_, 65536);
        if (!data.ok()) {
          if (data.code() != ErrorCode::kWouldBlock) {
            state_ = State::kDone;
            return true;
          }
          break;
        }
        responses_.Feed(data->AsStringView());
        progress = true;
      }
      auto reply = responses_.Next();
      if (!reply.ok()) {
        state_ = State::kDone;
        return true;
      }
      if (!reply->has_value()) {
        return progress;
      }
      latency_.Record(static_cast<std::uint64_t>(kernel_->host().now() - sent_at_));
      if (++completed_ >= target_) {
        (void)kernel_->CloseFd(fd_);
        state_ = State::kDone;
      } else {
        state_ = State::kSend;
      }
      return true;
    }
    case State::kDone:
      return false;
  }
  return false;
}

// --- MtcpEchoServer ---

MtcpEchoServer::MtcpEchoServer(MtcpStack* stack, std::uint16_t port, std::size_t msg_bytes)
    : stack_(stack), msg_bytes_(msg_bytes) {
  listen_fd_ = *stack_->Socket();
  DEMI_CHECK(stack_->Bind(listen_fd_, port).ok());
  DEMI_CHECK(stack_->Listen(listen_fd_).ok());
  // MtcpStack registers its own poller; this actor registers with the same sim via
  // the stack's host.
  stack_->host().sim().AddPoller(this);
}

MtcpEchoServer::~MtcpEchoServer() { stack_->host().sim().RemovePoller(this); }

bool MtcpEchoServer::Poll() {
  bool progress = false;
  while (true) {
    auto fd = stack_->Accept(listen_fd_);
    if (!fd.ok()) {
      break;
    }
    conns_.push_back(Conn{*fd, "", false});
    progress = true;
  }
  for (Conn& conn : conns_) {
    if (conn.dead) {
      continue;
    }
    while (stack_->Readable(conn.fd)) {
      auto data = stack_->Read(conn.fd, 65536);
      if (!data.ok()) {
        if (data.code() != ErrorCode::kWouldBlock) {
          (void)stack_->CloseFd(conn.fd);
          conn.dead = true;
        }
        break;
      }
      conn.inbox.append(data->AsStringView());
      progress = true;
    }
    while (conn.inbox.size() >= msg_bytes_) {
      auto written =
          stack_->Write(conn.fd, Buffer::CopyOf(std::string_view(conn.inbox).substr(0, msg_bytes_)));
      if (!written.ok()) {
        break;
      }
      conn.inbox.erase(0, msg_bytes_);
      ++echoed_;
      progress = true;
    }
  }
  return progress;
}

}  // namespace demi
