// BlockIndex: a persistent multi-level KV index over raw blocks in a Catfish file
// extent — the BPF-for-storage push-down workload (DESIGN.md §14).
//
// The index is a static B-tree built bottom-up over sorted (key, value) pairs. Each
// node is one 4 KiB device block:
//
//   [u32 magic 'BIDX'][u8 is_leaf][u8 pad][u16 nkeys] then nkeys entries of
//   [u64 key][u64 value_or_child_lba]
//
// Child pointers are ABSOLUTE device LBAs, so the device-side lookup program can
// compute the next read target from node contents alone — no base-address plumbing
// into the device. A lookup descends root → leaf:
//
//   - host path (LookupFromHost): one blocking single-block read per level — depth d
//     costs d host completions and d wakeups;
//   - push-down path (LookupAsync + LookupProgram): the device chases the chain and
//     posts ONE completion carrying the value — the O(d) → 1 win the bench measures.
//
// Both paths run the same node-parsing logic, so device and host agree bit-for-bit.

#ifndef SRC_APPS_BLOCK_INDEX_H_
#define SRC_APPS_BLOCK_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "src/core/catfish.h"

namespace demi {

class BlockIndex {
 public:
  static constexpr std::uint32_t kMagic = 0x42494458;  // "BIDX"
  static constexpr std::size_t kBlock = 4096;
  static constexpr std::size_t kNodeHeader = 8;   // magic + is_leaf + pad + nkeys
  static constexpr std::size_t kEntryBytes = 16;  // key + value_or_child_lba

  // Widest node that fits one block (255 entries at 4 KiB).
  static constexpr std::size_t MaxFanout() { return (kBlock - kNodeHeader) / kEntryBytes; }

  struct Lookup {
    std::uint64_t value = 0;
    std::uint32_t steps = 0;  // blocks touched root → leaf
  };

  // Creates file `path` on `libos` and builds the index over `entries` (strictly
  // ascending keys) with at most `fanout` entries per node. Small fanouts force depth,
  // which is what makes push-down interesting. Node writes go through the libOS write
  // path (durable on return).
  static Result<BlockIndex> Build(CatfishLibOS& libos, const std::string& path,
                                  std::span<const std::pair<std::uint64_t, std::uint64_t>> entries,
                                  std::size_t fanout);

  // The device-side lookup program: parses the fetched node, binary-searches the key,
  // and either resubmits the child read or finishes with the 8-byte value. Install
  // once per device, reuse across lookups.
  static PushdownProgram LookupProgram();

  // Starts a push-down lookup through the file queue's offload hook; the returned
  // qtoken completes with the big-endian 8-byte value (kNotFound if absent).
  Result<QToken> LookupAsync(PushdownProgramId program, std::uint64_t key) const;

  // Host-side baseline: the same descent with one blocking device read per level.
  Result<Lookup> LookupFromHost(std::uint64_t key) const;

  // Decodes the 8-byte value a completed push-down lookup carries.
  static std::uint64_t DecodeValue(const SgArray& sga);

  QDesc qd() const { return qd_; }
  std::uint32_t depth() const { return depth_; }
  std::uint64_t node_blocks() const { return node_blocks_; }
  std::uint64_t root_block() const { return root_block_; }  // file-relative

 private:
  BlockIndex(CatfishLibOS* libos, QDesc qd, std::uint64_t base_lba,
             std::uint64_t root_block, std::uint32_t depth, std::uint64_t node_blocks)
      : libos_(libos),
        qd_(qd),
        base_lba_(base_lba),
        root_block_(root_block),
        depth_(depth),
        node_blocks_(node_blocks) {}

  CatfishLibOS* libos_;
  QDesc qd_;
  std::uint64_t base_lba_;    // absolute LBA of file-relative block 0
  std::uint64_t root_block_;  // file-relative root node
  std::uint32_t depth_;
  std::uint64_t node_blocks_;
};

}  // namespace demi

#endif  // SRC_APPS_BLOCK_INDEX_H_
