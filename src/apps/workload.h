// Workload generation for the KV experiments: YCSB-style key popularity (Zipf),
// configurable value sizes and read ratios, deterministic per seed.

#ifndef SRC_APPS_WORKLOAD_H_
#define SRC_APPS_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/apps/resp.h"
#include "src/common/random.h"

namespace demi {

struct KvWorkloadConfig {
  std::uint64_t num_keys = 10000;
  double zipf_theta = 0.99;   // YCSB default skew; 0 = uniform
  double get_ratio = 0.9;     // fraction of GETs (rest are SETs)
  std::size_t key_bytes = 16;
  std::size_t value_bytes = 64;
  std::uint64_t seed = 1234;
};

class KvWorkload {
 public:
  explicit KvWorkload(KvWorkloadConfig config);

  // The next operation in the sequence.
  RespCommand Next();

  // Commands that preload every key (for warmup before measurement).
  RespCommand LoadCommand(std::uint64_t key_index) const;

  const KvWorkloadConfig& config() const { return config_; }
  std::uint64_t gets_issued() const { return gets_; }
  std::uint64_t sets_issued() const { return sets_; }

 private:
  std::string KeyName(std::uint64_t index) const;
  std::string MakeValue(std::uint64_t salt) const;

  KvWorkloadConfig config_;
  Rng rng_;
  ZipfGenerator zipf_;
  std::uint64_t gets_ = 0;
  std::uint64_t sets_ = 0;
};

}  // namespace demi

#endif  // SRC_APPS_WORKLOAD_H_
