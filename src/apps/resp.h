// A RESP-style protocol (the Redis serialization protocol), as used by the paper's
// motivating application (§3.2).
//
// Requests are arrays of bulk strings; responses are simple strings, errors, integers,
// bulk strings, or nil. Two consumption modes mirror the paper's §3.2 contrast:
//   - RespRequestParser: incremental, for POSIX byte streams — it must cope with
//     partial requests, and every failed attempt on an incomplete buffer is the wasted
//     work the paper attributes to the pipe abstraction (counted as kStreamScans);
//   - ParseRequest(whole buffer): one-shot, for Demikernel atomic queue elements —
//     by construction it only ever sees complete requests.

#ifndef SRC_APPS_RESP_H_
#define SRC_APPS_RESP_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"

namespace demi {

using RespCommand = std::vector<std::string>;

// Encodes a command as a RESP array of bulk strings.
std::string EncodeRespCommand(const RespCommand& args);

// One-shot parse of a COMPLETE request (Demikernel mode). Fails on trailing garbage
// or truncation — an atomic queue element must be exactly one request.
Result<RespCommand> ParseRespCommand(std::string_view data);

// Zero-copy variant: each argument is a slice of `data` (no byte is copied). This is
// what the Demikernel servers use on popped queue elements.
Result<std::vector<Buffer>> ParseRespCommandBuffers(const Buffer& data);

// RESP responses.
struct RespValue {
  enum class Kind { kSimple, kError, kInteger, kBulk, kNil };
  Kind kind = Kind::kNil;
  std::string text;        // kSimple/kError/kBulk payload
  std::int64_t integer = 0;

  static RespValue Simple(std::string s) { return {Kind::kSimple, std::move(s), 0}; }
  static RespValue Error(std::string s) { return {Kind::kError, std::move(s), 0}; }
  static RespValue Integer(std::int64_t v) { return {Kind::kInteger, "", v}; }
  static RespValue Bulk(std::string s) { return {Kind::kBulk, std::move(s), 0}; }
  static RespValue Nil() { return {}; }

  friend bool operator==(const RespValue&, const RespValue&) = default;
};

std::string EncodeRespValue(const RespValue& value);

// Incremental request parser for byte streams (POSIX mode).
class RespRequestParser {
 public:
  // Appends stream bytes.
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  // Attempts to parse the next complete request. Returns:
  //   - a command when one is complete,
  //   - nullopt when the buffered data is incomplete (the §3.2 wasted scan),
  //   - kProtocolError on malformed input.
  Result<std::optional<RespCommand>> Next();

  std::size_t buffered_bytes() const { return buffer_.size(); }
  // How many Next() calls found only an incomplete request.
  std::uint64_t incomplete_scans() const { return incomplete_scans_; }

 private:
  std::string buffer_;
  std::uint64_t incomplete_scans_ = 0;
};

// Incremental response parser for byte streams (POSIX client mode).
class RespResponseParser {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }
  Result<std::optional<RespValue>> Next();

 private:
  std::string buffer_;
};

}  // namespace demi

#endif  // SRC_APPS_RESP_H_
