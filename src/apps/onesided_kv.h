// A one-sided RDMA key-value store (Pilaf/FaRM-style, §6 of the paper).
//
// The paper contrasts the Demikernel's portable two-sided design with the "many
// distributed RDMA storage systems completely re-designed to use the RDMA NIC
// interface" [11,16,29,30,44,60]. This module implements the archetype of those
// systems so the trade-off is measurable (bench_a2_onesided):
//
//   - the server exposes a registered region laid out as a fixed-slot hash table;
//   - clients GET by computing the slot and issuing an RDMA READ — the server's CPU
//     never runs (its cost signature: zero);
//   - entries carry a CRC so a client can detect slots caught mid-update;
//   - writes go through the server (read-mostly design, as in Pilaf).
//
// This is exactly the hardware-coupled specialization the Demikernel trades away for
// portability: the client must know the server's memory layout, rkey, and slot
// geometry — change any of them and every client breaks.

#ifndef SRC_APPS_ONESIDED_KV_H_
#define SRC_APPS_ONESIDED_KV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/hw/rdma.h"

namespace demi {

// Fixed slot geometry (part of the client<->server hardware contract).
struct OneSidedSlotLayout {
  static constexpr std::size_t kKeyMax = 64;
  static constexpr std::size_t kValueMax = 160;
  static constexpr std::size_t kSlotBytes = 256;  // header + key + value, padded
  static constexpr std::uint32_t kValidMagic = 0x51A7F00D;
};

class OneSidedKvServer {
 public:
  // Exposes `slots` table slots in registered memory and listens at `addr` for client
  // QPs (used only for connection setup and SET RPCs; GETs never reach us).
  OneSidedKvServer(HostCpu* host, RdmaNic* nic, const std::string& addr,
                   std::size_t slots);

  // Server-local store (preload or applied SETs). Fails on slot collision or
  // oversized key/value: the fixed layout is the price of one-sided access.
  Status Put(const std::string& key, const std::string& value);
  Status Remove(const std::string& key);

  // Accepts one pending client connection (control path).
  std::shared_ptr<RdmaQp> Accept();

  RKey rkey() const { return rkey_; }
  std::size_t slots() const { return slots_; }
  std::size_t SlotIndex(const std::string& key) const;
  static std::uint64_t HashKey(const std::string& key);

 private:
  std::byte* SlotAt(std::size_t index);

  HostCpu* host_;
  RdmaNic* nic_;
  std::string addr_;
  std::size_t slots_;
  Buffer table_;
  RKey rkey_ = 0;
};

class OneSidedKvClient {
 public:
  // `qp` must be connected to the server; `rkey`/`slots` come from the control path.
  OneSidedKvClient(HostCpu* host, RdmaNic* nic, std::shared_ptr<RdmaQp> qp, RKey rkey,
                   std::size_t slots);

  // Blocking GET: one RDMA READ of the key's slot, then local validation (magic, key
  // match, CRC). Drives the simulation; call from top-level code only.
  Result<std::string> Get(Simulation& sim, const std::string& key,
                          TimeNs timeout = 10 * kSecond);

  std::uint64_t reads_issued() const { return reads_; }

 private:
  HostCpu* host_;
  std::shared_ptr<RdmaQp> qp_;
  RKey rkey_;
  std::size_t slots_;
  Buffer scratch_;  // registered landing buffer for slot reads
  std::uint64_t next_wr_ = 1;
  std::uint64_t reads_ = 0;
};

}  // namespace demi

#endif  // SRC_APPS_ONESIDED_KV_H_
