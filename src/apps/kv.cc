#include "src/apps/kv.h"

#include <algorithm>
#include <charconv>

namespace demi {

namespace {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool ParseInt(std::string_view s, std::int64_t& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

KvReply Simple(std::string s) {
  return KvReply{RespValue::Kind::kSimple, std::move(s), 0, {}};
}
KvReply Error(std::string s) {
  return KvReply{RespValue::Kind::kError, std::move(s), 0, {}};
}
KvReply Integer(std::int64_t v) { return KvReply{RespValue::Kind::kInteger, "", v, {}}; }
KvReply BulkRef(Buffer b) {
  return KvReply{RespValue::Kind::kBulk, "", 0, std::move(b)};
}
KvReply Nil() { return KvReply{}; }

}  // namespace

RespValue KvReply::ToValue() const {
  switch (kind) {
    case RespValue::Kind::kSimple:
      return RespValue::Simple(text);
    case RespValue::Kind::kError:
      return RespValue::Error(text);
    case RespValue::Kind::kInteger:
      return RespValue::Integer(integer);
    case RespValue::Kind::kBulk:
      return RespValue::Bulk(bulk.ToString());
    case RespValue::Kind::kNil:
      return RespValue::Nil();
  }
  return RespValue::Nil();
}

KvReply KvEngine::Execute(std::span<const Buffer> args) {
  // §3.2: the application spends ~2 µs of CPU per request (hash, alloc, bookkeeping).
  host_->Work(host_->cost().kv_request_cpu_ns);
  host_->Count(Counter::kKvRequests);
  ++requests_;

  if (args.empty()) {
    return Error("ERR empty command");
  }
  const std::string op = ToUpper(args[0].AsStringView());
  auto key_of = [&](std::size_t i) { return args[i].ToString(); };

  if (op == "PING") {
    return Simple("PONG");
  }
  if (op == "ECHO") {
    if (args.size() != 2) {
      return Error("ERR wrong number of arguments for 'echo'");
    }
    return BulkRef(args[1]);
  }
  if (op == "GET") {
    if (args.size() != 2) {
      return Error("ERR wrong number of arguments for 'get'");
    }
    auto it = store_.find(key_of(1));
    if (it == store_.end()) {
      return Nil();
    }
    return BulkRef(it->second);  // reference, not a copy (§4.5)
  }
  if (op == "SET") {
    if (args.size() != 3) {
      return Error("ERR wrong number of arguments for 'set'");
    }
    // New value buffer replaces the old reference — never an in-place update.
    store_[key_of(1)] = args[2];
    return Simple("OK");
  }
  if (op == "DEL") {
    if (args.size() < 2) {
      return Error("ERR wrong number of arguments for 'del'");
    }
    std::int64_t removed = 0;
    for (std::size_t i = 1; i < args.size(); ++i) {
      removed += static_cast<std::int64_t>(store_.erase(key_of(i)));
    }
    return Integer(removed);
  }
  if (op == "EXISTS") {
    if (args.size() != 2) {
      return Error("ERR wrong number of arguments for 'exists'");
    }
    return Integer(store_.contains(key_of(1)) ? 1 : 0);
  }
  if (op == "INCR" || op == "DECR") {
    if (args.size() != 2) {
      return Error("ERR wrong number of arguments");
    }
    std::int64_t value = 0;
    auto it = store_.find(key_of(1));
    if (it != store_.end() && !ParseInt(it->second.AsStringView(), value)) {
      return Error("ERR value is not an integer or out of range");
    }
    value += op == "INCR" ? 1 : -1;
    store_[key_of(1)] = Buffer::CopyOf(std::to_string(value));
    return Integer(value);
  }
  if (op == "APPEND") {
    if (args.size() != 3) {
      return Error("ERR wrong number of arguments for 'append'");
    }
    const std::string key = key_of(1);
    auto it = store_.find(key);
    if (it == store_.end()) {
      store_[key] = args[2];
      return Integer(static_cast<std::int64_t>(args[2].size()));
    }
    const Buffer parts[] = {it->second, args[2]};
    it->second = ConcatCopy(parts);  // append allocates a fresh value buffer
    return Integer(static_cast<std::int64_t>(it->second.size()));
  }
  if (op == "STRLEN") {
    if (args.size() != 2) {
      return Error("ERR wrong number of arguments for 'strlen'");
    }
    auto it = store_.find(key_of(1));
    return Integer(it == store_.end() ? 0 : static_cast<std::int64_t>(it->second.size()));
  }
  if (op == "DBSIZE") {
    return Integer(static_cast<std::int64_t>(store_.size()));
  }
  if (op == "FLUSHALL") {
    store_.clear();
    return Simple("OK");
  }
  if (op == "MSET") {
    if (args.size() < 3 || args.size() % 2 != 1) {
      return Error("ERR wrong number of arguments for 'mset'");
    }
    for (std::size_t i = 1; i + 1 < args.size(); i += 2) {
      store_[key_of(i)] = args[i + 1];
    }
    return Simple("OK");
  }
  return Error("ERR unknown command '" + args[0].ToString() + "'");
}

RespValue KvEngine::Execute(const RespCommand& cmd) {
  RespArgs args;
  args.reserve(cmd.size());
  for (const std::string& arg : cmd) {
    args.push_back(Buffer::CopyOf(arg));
  }
  return Execute(std::span<const Buffer>(args)).ToValue();
}

}  // namespace demi
