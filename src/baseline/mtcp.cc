#include "src/baseline/mtcp.h"

#include "src/common/logging.h"

namespace demi {

MtcpStack::MtcpStack(HostCpu* host, SimNic* nic, MtcpConfig config)
    : host_(host), config_(config) {
  NetStackConfig net_cfg;
  net_cfg.ip = config.ip;
  net_cfg.nic_queue = 0;
  net_cfg.tcp = config.tcp;
  net_cfg.seed = config.seed;
  // mTCP's protocol processing runs at user-level cost (that part it shares with
  // Catnip); the POSIX API is where it loses.
  net_ = std::make_unique<NetStack>(host, nic, net_cfg);
  host_->sim().AddPoller(this);
}

MtcpStack::~MtcpStack() { host_->sim().RemovePoller(this); }

TimeNs MtcpStack::BatchDelay() const {
  return config_.batch_delay_ns >= 0 ? config_.batch_delay_ns
                                     : host_->cost().mtcp_batch_delay_ns;
}

int MtcpStack::AllocFd() {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (fds_[i].kind == FdEntry::Kind::kFree) {
      return static_cast<int>(i);
    }
  }
  fds_.emplace_back();
  return static_cast<int>(fds_.size() - 1);
}

MtcpStack::FdEntry* MtcpStack::Entry(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
      fds_[fd].kind == FdEntry::Kind::kFree) {
    return nullptr;
  }
  return &fds_[fd];
}

const MtcpStack::FdEntry* MtcpStack::Entry(int fd) const {
  return const_cast<MtcpStack*>(this)->Entry(fd);
}

Result<int> MtcpStack::Socket() {
  host_->Work(host_->cost().libos_call_ns);
  const int fd = AllocFd();
  fds_[fd] = FdEntry{};
  fds_[fd].kind = FdEntry::Kind::kSocket;
  return fd;
}

Status MtcpStack::Bind(int fd, std::uint16_t port) {
  FdEntry* e = Entry(fd);
  if (e == nullptr) {
    return BadDescriptor("bind");
  }
  e->bound_port = port;
  return OkStatus();
}

Status MtcpStack::Listen(int fd) {
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->bound_port == 0) {
    return BadDescriptor("listen");
  }
  auto listener = net_->TcpListen(e->bound_port);
  RETURN_IF_ERROR(listener.status());
  e->kind = FdEntry::Kind::kListener;
  e->listener = *listener;
  return OkStatus();
}

Result<int> MtcpStack::Accept(int fd) {
  host_->Work(host_->cost().libos_call_ns);
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->kind != FdEntry::Kind::kListener) {
    return BadDescriptor("accept");
  }
  TcpConnection* conn = e->listener->Accept();
  if (conn == nullptr) {
    return WouldBlock();
  }
  const int new_fd = AllocFd();
  fds_[new_fd] = FdEntry{};
  fds_[new_fd].kind = FdEntry::Kind::kSocket;
  fds_[new_fd].conn = conn;
  return new_fd;
}

Status MtcpStack::Connect(int fd, Endpoint remote) {
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->conn != nullptr) {
    return BadDescriptor("connect");
  }
  auto conn = net_->TcpConnect(remote);
  RETURN_IF_ERROR(conn.status());
  e->conn = *conn;
  return OkStatus();
}

bool MtcpStack::ConnectSucceeded(int fd) const {
  const FdEntry* e = Entry(fd);
  return e != nullptr && e->conn != nullptr && e->conn->established();
}

bool MtcpStack::ConnectFailed(int fd) const {
  const FdEntry* e = Entry(fd);
  return e != nullptr && e->conn != nullptr && e->conn->dead();
}

Result<Buffer> MtcpStack::Read(int fd, std::size_t max) {
  host_->Work(host_->cost().libos_call_ns);
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->conn == nullptr) {
    return BadDescriptor("read");
  }
  if (e->staged.empty() || e->staged.front().first > host_->now()) {
    if (e->conn->reset()) {
      return ConnectionReset("peer reset");
    }
    if (e->staged.empty() && e->conn->recv_eof()) {
      return EndOfFile();
    }
    return WouldBlock();  // nothing matured past the batch boundary yet
  }
  auto [ready_at, data] = std::move(e->staged.front());
  e->staged.pop_front();
  if (data.size() > max) {
    e->staged.emplace_front(ready_at, data.Slice(max));
    data = data.Slice(0, max);
  }
  e->staged_bytes -= data.size();
  host_->CopyBytes(data.size());  // POSIX copy into the app's buffer
  return Buffer::CopyOf(data.span());
}

Result<std::size_t> MtcpStack::Write(int fd, Buffer data) {
  host_->Work(host_->cost().libos_call_ns);
  FdEntry* e = Entry(fd);
  if (e == nullptr || e->conn == nullptr) {
    return BadDescriptor("write");
  }
  if (e->conn->reset()) {
    return ConnectionReset("peer reset");
  }
  if (data.size() > e->conn->send_buffer_space()) {
    return WouldBlock();
  }
  host_->CopyBytes(data.size());  // POSIX copy out of the app's buffer
  Buffer staged = Buffer::CopyOf(data.span());
  TcpConnection* conn = e->conn;
  // The stack context transmits this batch after the exchange delay.
  host_->sim().Schedule(BatchDelay(), [conn, staged = std::move(staged)]() mutable {
    (void)conn->Send(std::move(staged));
  });
  return data.size();
}

bool MtcpStack::Readable(int fd) const {
  const FdEntry* e = Entry(fd);
  if (e == nullptr || e->conn == nullptr) {
    return false;
  }
  return (!e->staged.empty() && e->staged.front().first <= host_->now()) ||
         e->conn->recv_eof() || e->conn->reset();
}

Status MtcpStack::CloseFd(int fd) {
  FdEntry* e = Entry(fd);
  if (e == nullptr) {
    return BadDescriptor("close");
  }
  if (e->conn != nullptr) {
    e->conn->Close();
  }
  *e = FdEntry{};
  return OkStatus();
}

bool MtcpStack::Poll() {
  bool progress = false;
  const TimeNs visible_at = host_->now() + BatchDelay();
  for (FdEntry& e : fds_) {
    if (e.kind != FdEntry::Kind::kSocket || e.conn == nullptr) {
      continue;
    }
    while (true) {
      Buffer chunk = e.conn->Recv(65536);
      if (chunk.empty()) {
        break;
      }
      e.staged_bytes += chunk.size();
      e.staged.emplace_back(visible_at, std::move(chunk));
      progress = true;
    }
  }
  if (progress) {
    // Maturity is time-driven: park an event at the batch boundary so the simulation
    // clock reaches it even if nothing else is scheduled.
    host_->sim().Schedule(BatchDelay(), [] {});
  }
  return progress;
}

}  // namespace demi
