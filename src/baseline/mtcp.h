// MtcpStack: an mTCP/F-stack-style user-level TCP that PRESERVES the POSIX API.
//
// This is the §3.2/§6 comparator: it removes syscalls (the stack lives in the
// process), but keeps the legacy abstraction, so it still pays
//   - a copy on every read and write (POSIX buffer semantics), and
//   - a batching delay between the application and stack contexts: mTCP runs the TCP
//     stack on a separate logical thread and exchanges requests/events in batches,
//     which is how it achieves throughput — and why the paper found its LATENCY to be
//     higher than the Linux kernel's ("We explored mTCP but found it to be too
//     expensive; its latency was higher than the Linux kernel's", §6).
//
// Cost signature per op: libos_call (no crossing) + copy + mtcp_batch_delay_ns of
// added latency each way. Experiment C5 sweeps this against the kernel and Catnip.

#ifndef SRC_BASELINE_MTCP_H_
#define SRC_BASELINE_MTCP_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "src/common/result.h"
#include "src/net/stack.h"

namespace demi {

struct MtcpConfig {
  Ipv4Address ip;
  TcpConfig tcp;
  std::uint64_t seed = 21;
  TimeNs batch_delay_ns = -1;  // negative: use cost model's mtcp_batch_delay_ns
};

class MtcpStack final : public Poller {
 public:
  MtcpStack(HostCpu* host, SimNic* nic, MtcpConfig config);
  ~MtcpStack() override;
  MtcpStack(const MtcpStack&) = delete;
  MtcpStack& operator=(const MtcpStack&) = delete;

  Result<int> Socket();
  Status Bind(int fd, std::uint16_t port);
  Status Listen(int fd);
  Result<int> Accept(int fd);  // kWouldBlock when empty
  Status Connect(int fd, Endpoint remote);
  bool ConnectSucceeded(int fd) const;
  bool ConnectFailed(int fd) const;

  // POSIX read: copies matured (batch-delayed) bytes into a fresh buffer.
  Result<Buffer> Read(int fd, std::size_t max);
  // POSIX write: copies and hands to the stack thread; transmitted after the batch
  // delay. Returns bytes accepted.
  Result<std::size_t> Write(int fd, Buffer data);
  Status CloseFd(int fd);

  bool Readable(int fd) const;
  HostCpu& host() { return *host_; }

  // Moves arrived stream data into per-fd staging with maturity timestamps.
  bool Poll() override;

 private:
  struct FdEntry {
    enum class Kind { kFree, kSocket, kListener } kind = Kind::kFree;
    TcpConnection* conn = nullptr;
    TcpListener* listener = nullptr;
    std::uint16_t bound_port = 0;
    std::deque<std::pair<TimeNs, Buffer>> staged;  // (visible_at, data)
    std::size_t staged_bytes = 0;
  };

  TimeNs BatchDelay() const;
  FdEntry* Entry(int fd);
  const FdEntry* Entry(int fd) const;
  int AllocFd();

  HostCpu* host_;
  std::unique_ptr<NetStack> net_;
  MtcpConfig config_;
  std::vector<FdEntry> fds_;
};

}  // namespace demi

#endif  // SRC_BASELINE_MTCP_H_
