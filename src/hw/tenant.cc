#include "src/hw/tenant.h"

#include <cstdio>

#include "src/common/logging.h"

namespace demi {

TenantId TenantRegistry::Create(TenantQosConfig config) {
  DEMI_CHECK(config.weight >= 1);
  Slot_ slot;
  slot.doorbells = TokenBucket(config.doorbells_per_sec, config.doorbell_burst);
  slot.descriptors = TokenBucket(config.descriptors_per_sec, config.descriptor_burst);
  slot.config = std::move(config);
  tenants_.push_back(std::move(slot));
  return static_cast<TenantId>(tenants_.size());
}

void TenantRegistry::GrantRegion(TenantId t, const BufferStorage* root) {
  if (root == nullptr) {
    return;
  }
  Slot_& slot = Slot(t);
  if (slot.owned.insert(root).second) {
    ++slot.stats.regions_granted;
  }
}

void TenantRegistry::RevokeRegion(TenantId t, const BufferStorage* root) {
  Slot(t).owned.erase(root);
}

void TenantRegistry::GrantRxRegion(TenantId t, const BufferStorage* root) {
  if (root == nullptr) {
    return;
  }
  Slot_& slot = Slot(t);
  if (slot.rx_granted.size() >= kRxGrantGenerationCap) {
    slot.rx_granted_prev = std::move(slot.rx_granted);
    slot.rx_granted.clear();
  }
  slot.rx_granted.insert(root);
}

bool TenantRegistry::MayAccess(TenantId t, const BufferStorage* root) const {
  if (root == nullptr) {
    return false;
  }
  const Slot_& slot = Slot(t);
  return slot.owned.contains(root) || slot.rx_granted.contains(root) ||
         slot.rx_granted_prev.contains(root);
}

bool TenantRegistry::ValidateFrame(TenantId t, const FrameChain& chain) const {
  for (const Buffer& part : chain.parts()) {
    if (part.storage() == nullptr || !MayAccess(t, part.storage()->registration_root())) {
      return false;
    }
  }
  return chain.part_count() > 0;
}

bool TenantRegistry::TakeDoorbell(TenantId t) {
  Slot_& slot = Slot(t);
  if (slot.doorbells.TryTake(sim_->now())) {
    return true;
  }
  ++slot.stats.doorbells_throttled;
  return false;
}

std::size_t TenantRegistry::TakeDescriptors(TenantId t, std::size_t want) {
  Slot_& slot = Slot(t);
  const std::size_t got = slot.descriptors.TakeUpTo(sim_->now(), want);
  slot.stats.descriptors_throttled += want - got;
  return got;
}

bool TenantRegistry::TryAcquireRegistration(TenantId t) {
  Slot_& slot = Slot(t);
  if (isolation_enabled_ && slot.config.max_registrations != 0 &&
      slot.stats.live_registrations >= slot.config.max_registrations) {
    ++slot.stats.registrations_denied;
    return false;
  }
  ++slot.stats.live_registrations;
  return true;
}

void TenantRegistry::ReleaseRegistration(TenantId t) {
  Slot_& slot = Slot(t);
  DEMI_CHECK(slot.stats.live_registrations > 0);
  --slot.stats.live_registrations;
}

bool TenantRegistry::TryAcquireQp(TenantId t) {
  Slot_& slot = Slot(t);
  if (isolation_enabled_ && slot.config.max_qps != 0 &&
      slot.stats.live_qps >= slot.config.max_qps) {
    ++slot.stats.qps_denied;
    return false;
  }
  ++slot.stats.live_qps;
  return true;
}

void TenantRegistry::ReleaseQp(TenantId t) {
  Slot_& slot = Slot(t);
  DEMI_CHECK(slot.stats.live_qps > 0);
  --slot.stats.live_qps;
}

bool TenantRegistry::TryAcquireFlowSlot(TenantId t) {
  Slot_& slot = Slot(t);
  if (isolation_enabled_ && slot.config.max_flow_slots != 0 &&
      slot.stats.live_flow_slots >= slot.config.max_flow_slots) {
    ++slot.stats.flow_slots_denied;
    return false;
  }
  ++slot.stats.live_flow_slots;
  return true;
}

void TenantRegistry::ReleaseFlowSlot(TenantId t) {
  Slot_& slot = Slot(t);
  DEMI_CHECK(slot.stats.live_flow_slots > 0);
  --slot.stats.live_flow_slots;
  ++slot.stats.flow_slots_released;
}

Histogram* TenantRegistry::tx_delay_histogram(TenantId t) {
  Slot_& slot = Slot(t);
  if (slot.tx_delay_hist == nullptr) {
    slot.tx_delay_hist =
        sim_->metrics().NamedHistogram("tenant/" + slot.config.name + "/tx_queue_delay_ns");
  }
  return slot.tx_delay_hist;
}

void TenantRegistry::PublishStats(MetricsRegistry& metrics) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Slot_& slot = tenants_[i];
    const auto publish = [&](const char* stat, std::uint64_t value) {
      if (value == 0) {
        return;
      }
      metrics.RecordNamed(
          metrics.NamedHistogram("tenant/" + slot.config.name + "/" + stat), value);
    };
    publish("capability_violations", slot.stats.capability_violations);
    publish("doorbells_throttled", slot.stats.doorbells_throttled);
    publish("descriptors_throttled", slot.stats.descriptors_throttled);
    publish("registrations_denied", slot.stats.registrations_denied);
    publish("qps_denied", slot.stats.qps_denied);
    publish("tx_frames", slot.stats.tx_frames);
    publish("tx_bytes", slot.stats.tx_bytes);
    publish("rx_frames", slot.stats.rx_frames);
    publish("rx_bytes", slot.stats.rx_bytes);
    publish("live_flow_slots", slot.stats.live_flow_slots);
    publish("flow_slots_denied", slot.stats.flow_slots_denied);
    publish("flow_slots_released", slot.stats.flow_slots_released);
  }
}

std::uint64_t TenantRegistry::total_capability_violations() const {
  std::uint64_t n = 0;
  for (const Slot_& slot : tenants_) {
    n += slot.stats.capability_violations;
  }
  return n;
}

std::uint64_t TenantRegistry::total_doorbells_throttled() const {
  std::uint64_t n = 0;
  for (const Slot_& slot : tenants_) {
    n += slot.stats.doorbells_throttled;
  }
  return n;
}

}  // namespace demi
