// RdmaNic: an RDMA NIC in the paper's "+OS features" category (Table 1).
//
// The device implements a reliable transport (verbs-style SEND/RECV plus one-sided
// READ/WRITE) but — exactly as the paper describes (§2) — it does NOT implement buffer
// management or flow control: applications (or a libOS, §4) must register memory before
// using it for I/O and receivers must post enough buffers of the right size, or
// communication fails with receiver-not-ready errors.
//
// Transport runs over a lossless path (RoCE deployments use PFC-lossless fabrics), so
// the interesting failure modes are the ones the paper calls out: missing registrations,
// missing receive buffers, and undersized receive buffers.

#ifndef SRC_HW_RDMA_H_
#define SRC_HW_RDMA_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/hw/device.h"
#include "src/hw/tenant.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulation.h"

namespace demi {

class RdmaNic;
class RdmaQp;

// Remote-access key for a registered memory region.
using RKey = std::uint32_t;

struct RdmaConfig {
  std::size_t max_send_wr = 128;   // outstanding send-queue work requests
  std::size_t max_recv_wr = 256;   // postable receive buffers
  std::size_t cq_depth = 512;
  int rnr_retry_limit = 6;         // receiver-not-ready retries before failing
  TimeNs rnr_retry_delay_ns = 20 * kMicrosecond;
};

struct WorkCompletion {
  enum class Op { kSend, kRecv, kRead, kWrite };
  std::uint64_t wr_id = 0;
  Op op = Op::kSend;
  Status status;
  std::size_t byte_len = 0;
  Buffer payload;  // kRecv: the filled receive buffer (sliced to byte_len)
};

// A reliable-connected queue pair.
class RdmaQp {
 public:
  bool connected() const { return state_ == State::kEstablished; }
  bool failed() const { return state_ == State::kError; }

  // Why this QP is in the error state. Defaults to the generic kConnectionReset cause;
  // injected faults record a typed cause (kQpError / kDeviceFailed) instead so the
  // libOS can surface it through wait().
  const Status& error_status() const { return error_status_; }

  // Posts a receive buffer. The buffer's backing storage must be registered.
  Status PostRecv(std::uint64_t wr_id, Buffer buffer);

  // Sends the concatenation of `segments` as one message (the device gathers).
  // Every segment's backing storage must be registered.
  Status PostSend(std::uint64_t wr_id, std::vector<Buffer> segments);

  // One-sided read of [offset, offset+dest.size()) from the peer region `rkey` into
  // `dest`. The peer CPU is not involved.
  Status PostRead(std::uint64_t wr_id, Buffer dest, RKey rkey, std::size_t offset);

  // One-sided write of `src` into the peer region `rkey` at `offset`.
  Status PostWrite(std::uint64_t wr_id, Buffer src, RKey rkey, std::size_t offset);

  // Drains up to `max` completions.
  std::vector<WorkCompletion> PollCq(std::size_t max = 16);

  std::size_t posted_recvs() const { return recv_queue_.size(); }
  RdmaNic& nic() { return *nic_; }
  TenantId tenant() const { return tenant_; }

 private:
  friend class RdmaNic;
  enum class State { kConnecting, kEstablished, kError };

  struct SendWr {
    std::uint64_t wr_id;
    Buffer message;
    int rnr_retries_left;
  };

  explicit RdmaQp(RdmaNic* nic) : nic_(nic) {}

  void CompleteLocal(WorkCompletion wc);
  void DeliverMessage(std::shared_ptr<RdmaQp> self, SendWr wr,
                      std::shared_ptr<RdmaQp> sender);
  // Completes an in-flight send exactly once (no-op if Fail() already flushed it).
  void CompleteSend(std::uint64_t wr_id, Status status, std::size_t byte_len);
  // Forces the QP to the error state with a typed cause: flushes every posted recv WQE
  // and every in-flight send to the CQ with `cause` and drops the recv buffers, so no
  // waiter hangs and no buffer stays device-held (§4.4/§4.5).
  void Fail(Status cause);

  RdmaNic* nic_;
  State state_ = State::kConnecting;
  TenantId tenant_ = kNoTenant;  // set by Connect(addr, tenant); quota released on Fail
  Status error_status_ = Status(ErrorCode::kConnectionReset, "qp in error state");
  std::weak_ptr<RdmaQp> peer_;
  std::deque<std::pair<std::uint64_t, Buffer>> recv_queue_;
  std::deque<WorkCompletion> cq_;
  std::unordered_set<std::uint64_t> inflight_sends_;
  std::size_t outstanding_sends_ = 0;
};

// Connection rendezvous between RDMA NICs (the rdmacm analogue). One per Simulation.
class RdmaCm {
 public:
  explicit RdmaCm(Simulation* sim) : sim_(sim) {}

  Simulation& sim() { return *sim_; }

 private:
  friend class RdmaNic;
  struct ListenerState {
    RdmaNic* nic;
    std::deque<std::shared_ptr<RdmaQp>> accept_queue;  // server-side QPs, connecting
  };
  Simulation* sim_;
  std::unordered_map<std::string, ListenerState> listeners_;
};

class RdmaNic {
 public:
  RdmaNic(HostCpu* host, RdmaCm* cm, RdmaConfig config = RdmaConfig{});

  DeviceCaps caps() const;
  HostCpu& host() { return *host_; }
  const RdmaConfig& config() const { return config_; }

  // --- Memory registration (the constraint Demikernel hides from applications) ---

  // Registers a storage region; charges the (expensive) registration cost and pins the
  // region. Returns the rkey remote peers can use for one-sided access.
  Result<RKey> RegisterMemory(std::shared_ptr<BufferStorage> storage);
  // Tenant-scoped form: charges the registration against the tenant's quota and adds
  // the region to its capability set, so tenant QPs may reference it in descriptors.
  Result<RKey> RegisterMemory(TenantId tenant, std::shared_ptr<BufferStorage> storage);
  // Refuses (kWouldBlock) while device DMA descriptors still reference the region:
  // posted recv buffers and in-flight one-sided reads/writes pin their roots, closing
  // the deregister-while-DMA-pending use-after-free window.
  Status DeregisterMemory(RKey rkey);
  bool IsRegistered(const Buffer& buffer) const;
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::size_t inflight_dma_regions() const { return inflight_dma_.size(); }

  // --- Connection management ---

  // Starts listening at `addr` (an opaque rendezvous name, e.g. "10.0.0.2:7000").
  Status Listen(const std::string& addr);
  // Accepts one pending connection, if any. The returned QP is immediately usable.
  std::shared_ptr<RdmaQp> Accept(const std::string& addr);
  // Initiates a connection; the QP becomes connected() after the CM handshake
  // (~1 RTT of simulated time) or failed() if nobody listens there.
  std::shared_ptr<RdmaQp> Connect(const std::string& addr);
  // Tenant-scoped form: the QP counts against the tenant's QP quota (released when
  // the QP fails) and its posts pass the tenant's doorbell bucket and capability
  // checks. Returns nullptr when the quota denies the QP — churn defense.
  std::shared_ptr<RdmaQp> Connect(const std::string& addr, TenantId tenant);

  // --- Multi-tenant sharing (same registry the SimNic uses) ---
  void AttachTenantRegistry(TenantRegistry* registry) { tenants_ = registry; }
  TenantRegistry* tenant_registry() { return tenants_; }

  // --- Fault injection ---

  // Registers this NIC with the injector. A kQpError or kDeviceFailed fault forces
  // every QP on the NIC into the error state with a typed cause; kRegExhausted makes
  // RegisterMemory fail until the run ends.
  FaultDeviceId AttachFaultInjector(FaultInjector* faults);
  // Transitions every QP to the error state, flushing posted WQEs with `cause`.
  void FailAllQps(Status cause);
  FaultDeviceId fault_device() const { return fault_dev_; }

 private:
  friend class RdmaQp;

  void OnFault(const FaultEvent& event);
  // In-flight DMA pinning: a region root with a nonzero pin count cannot be
  // deregistered (DeregisterMemory returns kWouldBlock).
  void PinDma(const BufferStorage* root);
  void UnpinDma(const BufferStorage* root);

  HostCpu* host_;
  RdmaCm* cm_;
  RdmaConfig config_;
  FaultInjector* faults_ = nullptr;
  FaultDeviceId fault_dev_ = kInvalidFaultDevice;
  TenantRegistry* tenants_ = nullptr;
  RKey next_rkey_ = 1;
  std::unordered_map<RKey, std::shared_ptr<BufferStorage>> regions_;
  std::unordered_set<const BufferStorage*> registered_;
  std::unordered_map<RKey, TenantId> region_tenant_;  // tenant-scoped registrations
  std::unordered_map<const BufferStorage*, std::uint32_t> inflight_dma_;
  std::uint64_t pinned_bytes_ = 0;
  std::vector<std::shared_ptr<RdmaQp>> qps_;
};

}  // namespace demi

#endif  // SRC_HW_RDMA_H_
