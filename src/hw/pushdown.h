// Device-side push-down programs (DESIGN.md §14).
//
// Following "BPF for storage: an exokernel-inspired approach" (PAPERS.md), an
// application installs a small traversal/predicate program on the block device. The
// device runs the program at its completion queue: after fetching a block, the program
// inspects it and either finishes the chain (returning a final value to the host) or
// names the next LBA to read, which the device resubmits *internally* — no host
// completion, no doorbell, no PCIe round trip. A depth-d dependent-read chain (B-tree
// descent, LSM level probe) thus costs one host completion instead of d.
//
// Programs here are std::function + a declared per-step host-equivalent cost, the same
// convention as the §4.3 ElementPredicate filter offload: the simulation charges
// cost * device_compute_factor of on-device compute per step, so the trade-off the
// paper describes (wimpier device cores vs saved crossings) is priced, not free.

#ifndef SRC_HW_PUSHDOWN_H_
#define SRC_HW_PUSHDOWN_H_

#include <cstdint>
#include <functional>
#include <span>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/sim/time.h"

namespace demi {

// Identifies one installed program on one device. Stable for the device's life.
using PushdownProgramId = std::uint32_t;
constexpr PushdownProgramId kInvalidPushdownProgram = ~0u;

// What one program step sees: the block the device just fetched, the caller's
// argument bytes (opaque to the device), the absolute LBA of that block, and the
// step number (0 = the root block of the chain).
struct PushdownContext {
  std::span<const std::byte> block;
  std::span<const std::byte> arg;
  std::uint64_t lba = 0;
  std::uint32_t step = 0;
};

// What one program step decides: finish the chain with `result` as the single host
// completion's payload, or resubmit a dependent read of `next_lba` device-side.
struct PushdownAction {
  bool done = false;
  std::uint64_t next_lba = 0;  // valid when !done
  Buffer result;               // valid when done

  static PushdownAction Finish(Buffer result) {
    PushdownAction a;
    a.done = true;
    a.result = std::move(result);
    return a;
  }
  static PushdownAction Resubmit(std::uint64_t next_lba) {
    PushdownAction a;
    a.next_lba = next_lba;
    return a;
  }
};

// A device-side program: the step function plus its declared host-equivalent cost per
// step. A non-ok Result aborts the chain and surfaces as the host completion's status
// (e.g. kNotFound for a missing key, kProtocolError for a malformed node).
struct PushdownProgram {
  std::function<Result<PushdownAction>(const PushdownContext&)> fn;
  TimeNs host_step_cost_ns = 400;
};

}  // namespace demi

#endif  // SRC_HW_PUSHDOWN_H_
