#include "src/hw/nic.h"

#include "src/common/logging.h"

namespace demi {

SimNic::SimNic(HostCpu* host, Fabric* fabric, MacAddress mac, NicConfig config)
    : host_(host), fabric_(fabric), mac_(mac), config_(config) {
  DEMI_CHECK(config_.num_queues >= 1);
  for (int i = 0; i < config_.num_queues; ++i) {
    queues_.emplace_back(config_.ring_size);
  }
  queue_tenant_.assign(static_cast<std::size_t>(config_.num_queues), kNoTenant);
  port_ = fabric_->AttachPort(mac_, [this](Buffer frame) { DeliverFromWire(std::move(frame)); });
}

SimNic::~SimNic() { fabric_->DetachPort(port_); }

DeviceCaps SimNic::caps() const {
  return DeviceCaps{
      .device = config_.supports_offload ? "SimNic (SmartNIC-style)" : "SimNic (DPDK-style)",
      .category = config_.supports_offload ? "+other features" : "kernel-bypass only",
      .kernel_bypass = true,
      .multiplexing = true,
      .addr_translation = true,
      .transport_offload = false,
      .needs_explicit_mem_reg = false,
      .program_offload = config_.supports_offload,
      .tenant_isolation = tenants_ != nullptr,
  };
}

void SimNic::BindQueueTenant(int queue, TenantId tenant) {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  DEMI_CHECK(tenants_ != nullptr);
  DEMI_CHECK(tenant == kNoTenant || tenants_->Has(tenant));
  queue_tenant_[queue] = tenant;
}

TenantId SimNic::queue_tenant(int queue) const {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  return queue_tenant_[queue];
}

const SimNic::QueueStats& SimNic::queue_stats(int queue) const {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  return queues_[queue].stats;
}

Status SimNic::Transmit(int queue, Buffer frame) {
  DEMI_CHECK(frame.size() >= kEthHeaderSize);
  return Transmit(queue, FrameChain(std::move(frame)));
}

Status SimNic::Transmit(int queue, FrameChain chain) {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  DEMI_CHECK(chain.size() >= kEthHeaderSize);
  if (failed_) {
    return DeviceFailed("nic is dead");
  }
  // Single-frame posts surface capability violations as a typed status instead of
  // silently consuming the frame: the caller learns exactly why the device refused.
  const TenantId tenant = queue_tenant_[queue];
  if (tenants_ != nullptr && tenant != kNoTenant && tenants_->isolation_enabled() &&
      !tenants_->ValidateFrame(tenant, chain)) {
    ++tenants_->mutable_stats(tenant).capability_violations;
    host_->Count(Counter::kCapabilityViolations);
    return CapabilityViolation("frame references memory outside the tenant's capability set");
  }
  FrameChain burst[] = {std::move(chain)};
  if (TransmitBurst(queue, burst) == 0) {
    host_->Count(Counter::kPacketsDropped);
    return ResourceExhausted("tx ring full or tenant throttled");
  }
  return OkStatus();
}

std::size_t SimNic::TransmitBurst(int queue, std::span<FrameChain> frames) {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  if (failed_ || frames.empty()) {
    return 0;
  }
  if (const TenantId tenant = queue_tenant_[queue]; tenants_ != nullptr && tenant != kNoTenant) {
    return TransmitBurstTenant(queue, tenant, frames);
  }
  Queue& q = queues_[queue];
  const std::size_t space = config_.ring_size - q.tx_in_flight;
  const std::size_t n = std::min(space, frames.size());
  if (n == 0) {
    return 0;
  }

  // Driver side: all n descriptors are written back to back, then ONE posted MMIO
  // write rings the doorbell for the whole burst — tx_burst's amortization of the
  // fixed per-I/O PCIe cost.
  host_->Work(host_->cost().pcie_doorbell_ns);
  host_->Count(Counter::kDoorbells);
  host_->Count(Counter::kTxBursts);
  host_->Count(Counter::kFramesPerDoorbell, n);
  ++q.stats.doorbells;
  host_->sim().metrics().RecordStat(SimStat::kTxBurstFrames, n);

  // Device side: each chain is captured by value, so every part's refcount pins its
  // slot until wire time — the application can "free" payload buffers immediately and
  // free-protection (§4.5) keeps them alive. Gathers run on the NIC's DMA engine, so
  // they charge no host CPU and no kBytesCopied. Descriptor i's fetch pipelines
  // behind descriptor 0's full PCIe round trip; link state is still sampled per frame
  // at its own wire time, so a link-down (or device death) mid-burst loses exactly
  // the frames that had not yet hit the wire.
  const TimeNs base_delay = host_->cost().pcie_dma_ns + host_->cost().nic_process_ns;
  for (std::size_t i = 0; i < n; ++i) {
    DEMI_CHECK(frames[i].size() >= kEthHeaderSize);
    ++q.tx_in_flight;
    const TimeNs device_delay =
        base_delay + static_cast<TimeNs>(i) * host_->cost().pcie_dma_batch_descriptor_ns;
    host_->sim().Schedule(device_delay, [this, queue, chain = std::move(frames[i])]() mutable {
      Queue& dq = queues_[queue];
      --dq.tx_in_flight;
      if (failed_ || !link_up()) {
        host_->Count(Counter::kPacketsDropped);
        return;
      }
      host_->Count(Counter::kDmaOps);
      host_->Count(Counter::kPacketsTx);
      ++dq.stats.dma_ops;
      ++dq.stats.tx_frames;
      fabric_->Transmit(port_, chain.Gather());
    });
  }
  return n;
}

// Tenant-bound queues share serialized TX/RX DMA engines instead of the private
// per-queue pipeline above: the device is one piece of silicon, and how it arbitrates
// between nontrusting tenants is exactly what isolation on/off changes. With
// enforcement on, every doorbell and descriptor passes the tenant's token buckets,
// every frame part is checked against the tenant's capability set, and service order
// is deficit-weighted round robin. With enforcement off the same engine is an
// unchecked FIFO — a flooding tenant heads-of-line-blocks everyone (the chaos suite's
// vulnerable baseline).
std::size_t SimNic::TransmitBurstTenant(int queue, TenantId tenant, std::span<FrameChain> frames) {
  Queue& q = queues_[queue];
  const bool enforce = tenants_->isolation_enabled();

  // The MMIO doorbell write is charged whether or not the device honors it; a
  // throttled doorbell costs the tenant its own CPU time and nothing else.
  host_->Work(host_->cost().pcie_doorbell_ns);
  if (enforce && !tenants_->TakeDoorbell(tenant)) {
    host_->Count(Counter::kDoorbellsThrottled);
    return 0;
  }
  host_->Count(Counter::kDoorbells);
  host_->Count(Counter::kTxBursts);
  ++q.stats.doorbells;

  const std::size_t space = config_.ring_size - q.tx_in_flight;
  std::size_t n = std::min(space, frames.size());
  if (enforce && n > 0) {
    const std::size_t granted = tenants_->TakeDescriptors(tenant, n);
    if (granted < n) {
      host_->Count(Counter::kDescriptorsThrottled, n - granted);
    }
    n = granted;
  }
  if (n == 0) {
    return 0;
  }
  host_->Count(Counter::kFramesPerDoorbell, n);
  host_->sim().metrics().RecordStat(SimStat::kTxBurstFrames, n);

  std::size_t accepted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    DEMI_CHECK(frames[i].size() >= kEthHeaderSize);
    FrameChain chain = std::move(frames[i]);
    ++accepted;  // consumed either way: a refused descriptor still burns a burst slot
    if (enforce && !tenants_->ValidateFrame(tenant, chain)) {
      // The device read a descriptor pointing outside the tenant's capability set;
      // it refuses the DMA and drops the frame. The victim tenant's memory is never
      // touched.
      ++tenants_->mutable_stats(tenant).capability_violations;
      host_->Count(Counter::kCapabilityViolations);
      host_->Count(Counter::kPacketsDropped);
      continue;
    }
    ++q.tx_in_flight;
    EngineItem item;
    item.queue = queue;
    item.tenant = tenant;
    item.enqueued_at = host_->sim().now();
    item.bytes = chain.size();
    item.chain = std::move(chain);
    EnqueueEngine(tx_engine_, std::move(item), /*is_tx=*/true);
  }
  return accepted;
}

void SimNic::EnqueueEngine(Engine& engine, EngineItem item, bool is_tx) {
  if (tenants_->isolation_enabled()) {
    Engine::TenantQueue& tq = engine.per_tenant[item.tenant];
    if (!tq.active) {
      tq.active = true;
      tq.deficit = 0;
      engine.rr.push_back(item.tenant);
    }
    tq.items.push_back(std::move(item));
  } else {
    engine.fifo.push_back(std::move(item));
  }
  ++engine.depth;
  if (!engine.busy) {
    // First descriptor after idle pays the full fetch round trip; while the engine
    // stays busy, successors pipeline at the batch-descriptor rate (ServeTxEngine /
    // ServeRxEngine reschedule themselves).
    engine.busy = true;
    const TimeNs first = host_->cost().pcie_dma_ns + host_->cost().nic_process_ns;
    if (is_tx) {
      host_->sim().Schedule(first, [this] { ServeTxEngine(); });
    } else {
      host_->sim().Schedule(first, [this] { ServeRxEngine(); });
    }
  }
}

bool SimNic::PopEngine(Engine& engine, EngineItem& out) {
  if (engine.depth == 0) {
    return false;
  }
  --engine.depth;
  // Items enqueued while isolation was off sit in the FIFO; drain them first so a
  // mid-run policy flip never strands descriptors.
  if (!engine.fifo.empty()) {
    out = std::move(engine.fifo.front());
    engine.fifo.pop_front();
    return true;
  }
  // DWRR, one descriptor per call with persistent deficits: the tenant at the head
  // of the round-robin list is served while its deficit covers the head frame; when
  // it cannot, the tenant rotates to the back and banks one weight-scaled quantum
  // for its next visit. Every full rotation therefore hands each backlogged tenant
  // bytes proportional to its weight.
  while (true) {
    DEMI_CHECK(!engine.rr.empty());
    const TenantId t = engine.rr.front();
    Engine::TenantQueue& tq = engine.per_tenant[t];
    DEMI_CHECK(!tq.items.empty());
    const std::uint64_t bytes = tq.items.front().bytes;
    if (tq.deficit >= bytes) {
      tq.deficit -= bytes;
      out = std::move(tq.items.front());
      tq.items.pop_front();
      if (tq.items.empty()) {
        // Classic DWRR zeroes an emptied queue so idle tenants cannot bank credit.
        tq.active = false;
        tq.deficit = 0;
        engine.rr.pop_front();
      }
      return true;
    }
    engine.rr.pop_front();
    engine.rr.push_back(t);
    tq.deficit += tenants_->quantum_bytes(t);
  }
}

void SimNic::ServeTxEngine() {
  EngineItem item;
  if (!PopEngine(tx_engine_, item)) {
    tx_engine_.busy = false;
    return;
  }
  --queues_[item.queue].tx_in_flight;
  if (failed_ || !link_up()) {
    host_->Count(Counter::kPacketsDropped);
  } else {
    host_->Count(Counter::kDmaOps);
    host_->Count(Counter::kPacketsTx);
    ++queues_[item.queue].stats.dma_ops;
    ++queues_[item.queue].stats.tx_frames;
    TenantStats& stats = tenants_->mutable_stats(item.tenant);
    ++stats.tx_frames;
    stats.tx_bytes += item.bytes;
    host_->sim().metrics().RecordNamed(tenants_->tx_delay_histogram(item.tenant),
                                       host_->sim().now() - item.enqueued_at);
    fabric_->Transmit(port_, item.chain.Gather());
  }
  if (tx_engine_.depth > 0) {
    host_->sim().Schedule(host_->cost().pcie_dma_batch_descriptor_ns, [this] { ServeTxEngine(); });
  } else {
    tx_engine_.busy = false;
  }
}

void SimNic::ServeRxEngine() {
  EngineItem item;
  if (!PopEngine(rx_engine_, item)) {
    rx_engine_.busy = false;
    return;
  }
  FinishRxDeposit(item.queue, item.tenant, item.chain.Gather());
  if (rx_engine_.depth > 0) {
    host_->sim().Schedule(host_->cost().pcie_dma_batch_descriptor_ns, [this] { ServeRxEngine(); });
  } else {
    rx_engine_.busy = false;
  }
}

bool SimNic::link_up() const {
  if (failed_) {
    return false;
  }
  return faults_ == nullptr || faults_->link_up(fault_dev_);
}

FaultDeviceId SimNic::AttachFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  fault_dev_ = faults->Register("nic/" + host_->name(),
                                [this](const FaultEvent& event) { OnFault(event); });
  return fault_dev_;
}

void SimNic::OnFault(const FaultEvent& event) {
  if (event.kind != FaultKind::kDeviceFailed || failed_) {
    return;  // link state lives in the injector; we only latch permanent death
  }
  failed_ = true;
  // Free-protection (§4.5): the dead device no longer holds RX buffers — drain every
  // ring so their refcounts drop and the memory manager can reclaim the slots.
  for (Queue& q : queues_) {
    while (q.rx.Pop()) {
      host_->Count(Counter::kPacketsDropped);
    }
  }
}

std::optional<Buffer> SimNic::PollRx(int queue) {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  return queues_[queue].rx.Pop();
}

std::size_t SimNic::PollRxBurst(int queue, std::vector<Buffer>& out, std::size_t max) {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  Queue& q = queues_[queue];
  std::size_t n = 0;
  while (n < max) {
    auto frame = q.rx.Pop();
    if (!frame) {
      break;
    }
    out.push_back(std::move(*frame));
    ++n;
  }
  if (n > 0) {
    host_->sim().metrics().RecordStat(SimStat::kRxBurstFrames, n);
  }
  return n;
}

std::size_t SimNic::RxPending(int queue) const {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  return queues_[queue].rx.size();
}

std::size_t SimNic::TxSpace(int queue) const {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  return config_.ring_size - queues_[queue].tx_in_flight;
}

Status SimNic::InstallRxProgram(int queue, NicProgram program) {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  if (!config_.supports_offload) {
    return Unsupported("device cannot run offloaded programs");
  }
  // Control path: reprogramming the device is slow but happens once (§4.3).
  host_->Work(host_->cost().offload_setup_ns);
  queues_[queue].rx_programs.push_back(std::move(program));
  return OkStatus();
}

void SimNic::ClearRxPrograms(int queue) {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  queues_[queue].rx_programs.clear();
}

int SimNic::RssQueue(const Buffer& frame) const {
  if (config_.num_queues == 1) {
    return 0;
  }
  // Toeplitz-in-spirit: hash the L3/L4 region of an IPv4 frame (addresses + ports).
  const auto bytes = frame.span();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const std::size_t begin = kEthHeaderSize + 12;  // src/dst IP then ports
  const std::size_t end = std::min(frame.size(), kEthHeaderSize + 24);
  for (std::size_t i = begin; i < end && i < bytes.size(); ++i) {
    h = (h ^ std::to_integer<std::uint8_t>(bytes[i])) * 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(config_.num_queues));
}

int SimNic::RssForTuple(const std::array<std::uint8_t, 12>& tuple, int num_queues) {
  if (num_queues <= 1) {
    return 0;
  }
  std::uint64_t h = 1469598103934665603ULL;  // same FNV-1a as RssQueue()
  for (const std::uint8_t b : tuple) {
    h = (h ^ b) * 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(num_queues));
}

void SimNic::AddSteeringRule(std::uint8_t ip_proto, std::uint16_t dst_port, int queue) {
  DEMI_CHECK(queue >= 0 && queue < config_.num_queues);
  steering_[static_cast<std::uint32_t>(ip_proto) << 16 | dst_port] = queue;
}

void SimNic::RemoveSteeringRule(std::uint8_t ip_proto, std::uint16_t dst_port) {
  steering_.erase(static_cast<std::uint32_t>(ip_proto) << 16 | dst_port);
}

void SimNic::DeliverFromWire(Buffer frame) {
  if (failed_ || !link_up()) {
    host_->Count(Counter::kPacketsDropped);
    return;
  }
  const EthHeader eth = ParseEthHeader(frame.span());
  if (!(eth.dst == mac_) && !eth.dst.IsBroadcast()) {
    return;  // not for us (flooded by the switch)
  }

  // ARP is replicated to every queue: each stack keeps its own resolution state.
  if (eth.ethertype == kEtherTypeArp && config_.num_queues > 1) {
    for (int q = 0; q < config_.num_queues; ++q) {
      DepositToQueue(q, frame);
    }
    return;
  }

  // Flow steering first (exact proto/port match), then RSS.
  int queue = -1;
  if (!steering_.empty() && eth.ethertype == kEtherTypeIpv4 &&
      frame.size() >= kEthHeaderSize + 20 + 4) {
    const auto bytes = frame.span();
    const std::uint8_t proto = std::to_integer<std::uint8_t>(bytes[kEthHeaderSize + 9]);
    const std::size_t ihl =
        (std::to_integer<std::uint8_t>(bytes[kEthHeaderSize]) & 0x0F) * 4;
    const std::size_t l4 = kEthHeaderSize + ihl;
    if (frame.size() >= l4 + 4) {
      const std::uint16_t dst_port =
          static_cast<std::uint16_t>(std::to_integer<std::uint8_t>(bytes[l4 + 2]) << 8 |
                                     std::to_integer<std::uint8_t>(bytes[l4 + 3]));
      if (auto it = steering_.find(static_cast<std::uint32_t>(proto) << 16 | dst_port);
          it != steering_.end()) {
        queue = it->second;
      }
    }
  }
  if (queue < 0) {
    queue = RssQueue(frame);
  }
  DepositToQueue(queue, std::move(frame));
}

void SimNic::DepositToQueue(int queue, Buffer frame) {
  Queue& q = queues_[queue];

  // On-device programs run before host DMA: a dropped frame costs the host nothing.
  TimeNs program_delay = 0;
  for (const NicProgram& prog : q.rx_programs) {
    const TimeNs device_ns = static_cast<TimeNs>(static_cast<double>(prog.host_cost_ns) *
                                                 host_->cost().device_compute_factor);
    program_delay += device_ns;
    host_->Count(Counter::kDeviceComputeNs, static_cast<std::uint64_t>(device_ns));
    if (prog.kind == NicProgram::Kind::kFilter) {
      if (!prog.filter(frame)) {
        return;  // filtered on-device; never reaches the host
      }
    } else {
      frame = prog.map(frame);
    }
  }

  // Tenant-bound queues share the serialized RX DMA engine (see TransmitBurstTenant):
  // host DMA of received frames contends across tenants exactly like TX descriptors,
  // and the engine's service delay replaces the private-path DMA delay below.
  if (const TenantId tenant = queue_tenant_[queue]; tenants_ != nullptr && tenant != kNoTenant) {
    EngineItem item;
    item.queue = queue;
    item.tenant = tenant;
    item.enqueued_at = host_->sim().now();
    item.bytes = frame.size();
    item.chain = FrameChain(std::move(frame));
    EnqueueEngine(rx_engine_, std::move(item), /*is_tx=*/false);
    return;
  }

  const TimeNs delay = program_delay + host_->cost().nic_process_ns + host_->cost().pcie_dma_ns;
  host_->sim().Schedule(delay, [this, queue, frame = std::move(frame)]() mutable {
    FinishRxDeposit(queue, kNoTenant, std::move(frame));
  });
}

void SimNic::FinishRxDeposit(int queue, TenantId tenant, Buffer frame) {
  if (failed_) {
    host_->Count(Counter::kPacketsDropped);
    return;  // died between wire arrival and host DMA
  }
  Queue& dq = queues_[queue];
  const bool was_empty = dq.rx.empty();
  host_->Count(Counter::kDmaOps);
  ++dq.stats.dma_ops;
  const std::size_t bytes = frame.size();
  if (tenants_ != nullptr && tenant != kNoTenant && frame.storage() != nullptr) {
    // The device just DMA'd these bytes into the tenant's RX ring: the tenant may
    // legally reference this memory in later TX descriptors (echo servers forward
    // the very storage the frame arrived in).
    tenants_->GrantRxRegion(tenant, frame.storage()->registration_root());
  }
  if (!dq.rx.Push(std::move(frame))) {
    ++rx_ring_drops_;
    host_->Count(Counter::kPacketsDropped);
    return;
  }
  host_->Count(Counter::kPacketsRx);
  ++dq.stats.rx_frames;
  if (tenants_ != nullptr && tenant != kNoTenant) {
    TenantStats& stats = tenants_->mutable_stats(tenant);
    ++stats.rx_frames;
    stats.rx_bytes += bytes;
  }
  if (rx_notify_ && was_empty) {
    rx_notify_(queue);
  }
}

}  // namespace demi
