// Tenant isolation for shared kernel-bypass devices (DESIGN.md "Tenant isolation
// model").
//
// The paper's architecture gives each application its own libOS, but production NICs
// are shared by nontrusting tenants. This module is the policy state the OS installs
// on the device at control-path time so the device can enforce protection and
// resource policy by itself on the data path — the kernel never sees a descriptor:
//
//   * TenantId: minted by SimKernel (CreateTenant) on the control path; device queues
//     are bound to a tenant when leased. Queues left unbound (kNoTenant) keep the
//     trusted single-owner fast path, bit-for-bit.
//   * Capability sets: a tenant may only reference memory it registered through its
//     MemoryManager (or that the kernel granted explicitly). The device validates
//     every posted descriptor against this set; violations complete with the typed
//     kCapabilityViolation status and never touch another tenant's memory. Frames the
//     device itself DMA'd into a tenant's RX ring are granted to that tenant, so
//     echoing received data stays legal (the bytes landed in tenant memory).
//   * Token buckets: per-tenant doorbell and descriptor rate limits, refilled from
//     virtual time — deterministic under a fixed seed and schedule.
//   * DWRR weights: the shared TX/RX DMA engines schedule tenant queues by
//     deficit-weighted round robin, so a flooding tenant degrades only itself.
//   * Quotas: registration and QP caps defend against hoarding and churn attacks on
//     device table space.
//
// The registry's master switch (`set_isolation_enabled`) turns enforcement — checks,
// buckets, DWRR — on or off in one place; off reproduces the unprotected
// first-come-first-served device the chaos suite uses as its vulnerable baseline.

#ifndef SRC_HW_TENANT_H_
#define SRC_HW_TENANT_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/buffer.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"

namespace demi {

// Identifies one tenant sharing a kernel-bypass device. 0 is reserved: queues bound
// to kNoTenant bypass every tenant check (the single-owner fast path).
using TenantId = std::uint32_t;
constexpr TenantId kNoTenant = 0;

// Per-tenant QoS policy, fixed at CreateTenant time.
struct TenantQosConfig {
  std::string name = "tenant";
  std::uint32_t weight = 1;  // DWRR share of the shared TX/RX DMA engines
  // Token buckets; rate 0 means unlimited.
  double doorbells_per_sec = 0.0;
  double doorbell_burst = 16.0;
  double descriptors_per_sec = 0.0;
  double descriptor_burst = 64.0;
  // Device-table quotas; 0 means unlimited.
  std::size_t max_registrations = 0;  // defense against registration hoarding
  std::size_t max_qps = 0;            // defense against QP churn
  std::size_t max_flow_slots = 0;     // bypass-path flows (NIC queue slots) at once;
                                      // the adaptive path policy acquires one per
                                      // promoted flow and releases it on demotion
};

struct TenantStats {
  std::uint64_t capability_violations = 0;
  std::uint64_t doorbells_throttled = 0;
  std::uint64_t descriptors_throttled = 0;
  std::uint64_t registrations_denied = 0;
  std::uint64_t qps_denied = 0;
  std::uint64_t tx_frames = 0;  // frames that reached the wire
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_frames = 0;  // frames DMA'd into the tenant's RX ring
  std::uint64_t rx_bytes = 0;
  std::uint64_t regions_granted = 0;
  std::size_t live_registrations = 0;
  std::size_t live_qps = 0;
  // Adaptive path placement (DESIGN.md §15): bypass flow slots held right now, denials
  // when the quota was full, and cumulative releases (demotions returning capacity).
  std::size_t live_flow_slots = 0;
  std::uint64_t flow_slots_denied = 0;
  std::uint64_t flow_slots_released = 0;
};

// Deterministic token bucket refilled lazily from elapsed virtual time.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst)
      : rate_per_ns_(rate_per_sec / 1e9), burst_(burst), tokens_(burst) {}

  bool unlimited() const { return rate_per_ns_ <= 0.0; }

  // Takes `n` tokens if available at virtual time `now`; false leaves the bucket
  // untouched (the caller throttles).
  bool TryTake(TimeNs now, double n = 1.0) {
    if (unlimited()) {
      return true;
    }
    Refill(now);
    if (tokens_ + 1e-9 < n) {
      return false;
    }
    tokens_ -= n;
    return true;
  }

  // Takes as many of `want` whole tokens as the bucket holds at `now`.
  std::size_t TakeUpTo(TimeNs now, std::size_t want) {
    if (unlimited()) {
      return want;
    }
    Refill(now);
    const std::size_t got =
        std::min(want, static_cast<std::size_t>(tokens_ + 1e-9));
    tokens_ -= static_cast<double>(got);
    return got;
  }

  double tokens_at(TimeNs now) {
    Refill(now);
    return tokens_;
  }

 private:
  void Refill(TimeNs now) {
    if (now > last_) {
      tokens_ = std::min(burst_, tokens_ + static_cast<double>(now - last_) * rate_per_ns_);
      last_ = now;
    }
  }

  double rate_per_ns_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  TimeNs last_ = 0;
};

// Shared per-device tenant state: policy, capability sets, buckets, quotas, stats.
// One registry is attached to the device(s) it governs; SimKernel owns the registry
// for its bypass NIC and mints ids through it.
class TenantRegistry {
 public:
  explicit TenantRegistry(Simulation* sim) : sim_(sim) {}

  TenantId Create(TenantQosConfig config);
  bool Has(TenantId t) const { return t >= 1 && t <= tenants_.size(); }
  std::size_t tenant_count() const { return tenants_.size(); }

  // Master enforcement switch: capability checks, token buckets, and DWRR. Off
  // reproduces an unprotected shared device (FIFO service, no validation).
  void set_isolation_enabled(bool on) { isolation_enabled_ = on; }
  bool isolation_enabled() const { return isolation_enabled_; }

  const TenantQosConfig& config(TenantId t) const { return Slot(t).config; }
  const TenantStats& stats(TenantId t) const { return Slot(t).stats; }
  TenantStats& mutable_stats(TenantId t) { return Slot(t).stats; }

  // --- capability set ---
  void GrantRegion(TenantId t, const BufferStorage* root);
  void RevokeRegion(TenantId t, const BufferStorage* root);
  // Records that the device DMA'd a frame backed by `root` into the tenant's RX
  // memory; the tenant may reference it in later descriptors (echo servers).
  void GrantRxRegion(TenantId t, const BufferStorage* root);
  bool MayAccess(TenantId t, const BufferStorage* root) const;
  // Every part of the frame must be reachable through the tenant's capabilities.
  bool ValidateFrame(TenantId t, const FrameChain& chain) const;

  // --- rate limiting (counts throttle stats internally) ---
  bool TakeDoorbell(TenantId t);
  std::size_t TakeDescriptors(TenantId t, std::size_t want);

  // --- quotas ---
  bool TryAcquireRegistration(TenantId t);
  void ReleaseRegistration(TenantId t);
  bool TryAcquireQp(TenantId t);
  void ReleaseQp(TenantId t);
  // Bypass flow slots: one per flow the path policy keeps on the fast path. Demotion
  // releases the slot so the QoS layer sees the freed capacity immediately.
  bool TryAcquireFlowSlot(TenantId t);
  void ReleaseFlowSlot(TenantId t);

  // DWRR byte quantum for one scheduler visit: base quantum scaled by weight.
  std::uint64_t quantum_bytes(TenantId t) const {
    return kBaseQuantumBytes * Slot(t).config.weight;
  }

  // Publishes every non-zero per-tenant stat into the metrics registry as a named
  // histogram sample ("tenant/<name>/<stat>"), so tenant accounting rides the
  // existing JSON snapshot path. Call before MetricsRegistry::Snapshot.
  void PublishStats(MetricsRegistry& metrics) const;

  // Stable per-tenant latency histogram ("tenant/<name>/tx_queue_delay_ns"): time a
  // frame spent queued in the shared TX engine before service.
  Histogram* tx_delay_histogram(TenantId t);

  // Cross-tenant totals (conservation invariants in the chaos suite).
  std::uint64_t total_capability_violations() const;
  std::uint64_t total_doorbells_throttled() const;

 private:
  // A frame payload's wire life is short; RX grants are kept in two generations and
  // rotated so the set stays bounded no matter how long a run floods frames.
  static constexpr std::size_t kRxGrantGenerationCap = 1 << 20;
  static constexpr std::uint64_t kBaseQuantumBytes = 2048;  // >= one full frame

  struct Slot_ {
    TenantQosConfig config;
    TenantStats stats;
    TokenBucket doorbells;
    TokenBucket descriptors;
    std::unordered_set<const BufferStorage*> owned;
    std::unordered_set<const BufferStorage*> rx_granted;
    std::unordered_set<const BufferStorage*> rx_granted_prev;
    Histogram* tx_delay_hist = nullptr;
  };

  Slot_& Slot(TenantId t) { return tenants_.at(t - 1); }
  const Slot_& Slot(TenantId t) const { return tenants_.at(t - 1); }

  Simulation* sim_;
  bool isolation_enabled_ = true;
  std::vector<Slot_> tenants_;
};

}  // namespace demi

#endif  // SRC_HW_TENANT_H_
