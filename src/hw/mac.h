// Ethernet MAC addresses and frame header layout shared by the devices and the stack.

#ifndef SRC_HW_MAC_H_
#define SRC_HW_MAC_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "src/common/byte_order.h"

namespace demi {

struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  static MacAddress Broadcast() {
    return MacAddress{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }

  // Deterministic locally administered address derived from a small host id.
  static MacAddress ForHost(std::uint32_t host_id) {
    return MacAddress{{0x02, 0x00, static_cast<std::uint8_t>(host_id >> 24),
                       static_cast<std::uint8_t>(host_id >> 16),
                       static_cast<std::uint8_t>(host_id >> 8),
                       static_cast<std::uint8_t>(host_id)}};
  }

  bool IsBroadcast() const { return *this == Broadcast(); }

  std::string ToString() const {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1],
                  bytes[2], bytes[3], bytes[4], bytes[5]);
    return buf;
  }

  friend bool operator==(const MacAddress& a, const MacAddress& b) = default;
};

struct MacHash {
  std::size_t operator()(const MacAddress& m) const {
    std::uint64_t v = 0;
    for (std::uint8_t b : m.bytes) {
      v = v << 8 | b;
    }
    return std::hash<std::uint64_t>()(v);
  }
};

// Ethernet II header: dst(6) src(6) ethertype(2).
constexpr std::size_t kEthHeaderSize = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kEtherTypeArp = 0x0806;

struct EthHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = 0;
};

// Parses the Ethernet header from raw frame bytes. The frame must be >= 14 bytes.
inline EthHeader ParseEthHeader(std::span<const std::byte> frame) {
  ByteReader r(frame);
  EthHeader h;
  for (auto& b : h.dst.bytes) {
    b = r.U8();
  }
  for (auto& b : h.src.bytes) {
    b = r.U8();
  }
  h.ethertype = r.U16();
  return h;
}

// Writes the 14-byte Ethernet header at the front of `out`.
inline void WriteEthHeader(std::span<std::byte> out, const EthHeader& h) {
  ByteWriter w(out);
  for (std::uint8_t b : h.dst.bytes) {
    w.U8(b);
  }
  for (std::uint8_t b : h.src.bytes) {
    w.U8(b);
  }
  w.U16(h.ethertype);
}

}  // namespace demi

#endif  // SRC_HW_MAC_H_
