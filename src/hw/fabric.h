// The simulated network fabric: a learning switch connecting NIC ports, with
// configurable latency, bandwidth, loss, duplication, and reordering.
//
// This stands in for the paper's datacenter network (intra-rack by default: one switch
// hop, ~1 µs wire latency, 40 Gbps links). Fault injection here is what exercises the
// TCP retransmission/reordering machinery in src/net.

#ifndef SRC_HW_FABRIC_H_
#define SRC_HW_FABRIC_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/random.h"
#include "src/hw/mac.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulation.h"

namespace demi {

using PortId = std::uint32_t;

struct FabricConfig {
  double loss_rate = 0.0;      // probability a frame is silently dropped
  double dup_rate = 0.0;       // probability a frame is delivered twice
  double reorder_rate = 0.0;   // probability a frame is delayed by reorder_jitter
  TimeNs reorder_jitter_ns = 20000;
  std::uint64_t seed = 42;     // fault-injection RNG seed
};

class Fabric {
 public:
  // A port's receive hook: invoked at frame-arrival time on the virtual clock.
  using DeliverFn = std::function<void(Buffer frame)>;

  Fabric(Simulation* sim, FabricConfig config = FabricConfig{});

  // Attaches a port (one NIC) with the given MAC. Frames destined to `mac` (or
  // broadcast) are handed to `deliver`.
  PortId AttachPort(MacAddress mac, DeliverFn deliver);
  void DetachPort(PortId port);

  // Transmits a raw Ethernet frame out of `src_port`. Called at the moment the frame
  // leaves the NIC; the fabric adds serialization + wire latency and fault injection.
  void Transmit(PortId src_port, Buffer frame);

  Simulation& sim() { return *sim_; }
  FabricConfig& config() { return config_; }

  // Optional: consult the injector's partition map on every frame. Partitioned port
  // pairs drop all traffic in both directions until the partition heals.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  struct Port {
    MacAddress mac;
    DeliverFn deliver;
    bool attached = false;
  };

  void DeliverAfter(TimeNs delay, PortId dst, Buffer frame);

  Simulation* sim_;
  FabricConfig config_;
  FaultInjector* faults_ = nullptr;
  Rng rng_;
  std::vector<Port> ports_;
  std::unordered_map<MacAddress, PortId, MacHash> mac_table_;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace demi

#endif  // SRC_HW_FABRIC_H_
