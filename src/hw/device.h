// Device capability descriptors — the machine-readable form of the paper's Table 1.
//
// Each simulated device reports which OS features it implements itself; whatever is
// missing is exactly what the matching library OS must provide (§2, §3.3). The
// bench_t1_taxonomy binary prints this table and cross-checks it against the devices'
// actual behaviour.

#ifndef SRC_HW_DEVICE_H_
#define SRC_HW_DEVICE_H_

#include <string>

namespace demi {

struct DeviceCaps {
  std::string device;            // e.g. "SimNic (DPDK-style)"
  std::string category;          // Table 1 column
  bool kernel_bypass = false;    // data path reaches the device without the kernel
  bool multiplexing = false;     // device can be shared safely between processes
  bool addr_translation = false; // on-device IOMMU / address translation
  bool transport_offload = false;   // device implements a reliable transport
  bool needs_explicit_mem_reg = false;  // app/libOS must register memory first
  bool program_offload = false;  // device can run application functions (filter/map)
  bool tenant_isolation = false; // device enforces per-tenant capabilities + QoS
};

}  // namespace demi

#endif  // SRC_HW_DEVICE_H_
