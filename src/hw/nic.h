// SimNic: a DPDK-style kernel-bypass NIC.
//
// The driver-visible interface is descriptor rings: Transmit() posts a raw Ethernet
// frame to a TX ring and rings a doorbell; received frames appear in per-queue RX rings
// drained by PollRx(). RSS spreads flows across RX queues. There is no interrupt on the
// fast path (poll-mode); an optional rx-notify hook exists for the legacy-kernel driver,
// which charges interrupt costs in its handler.
//
// When configured with `supports_offload`, the NIC models a SmartNIC (Table 1, right
// column): filter/map programs installed on the device run per-packet at
// `device_compute_factor` times the host cost, consuming zero host CPU — this is the
// substrate for the paper's offloadable queue filter/map calls (§4.3).

#ifndef SRC_HW_NIC_H_
#define SRC_HW_NIC_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <optional>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/common/ring_buffer.h"
#include "src/hw/device.h"
#include "src/hw/fabric.h"
#include "src/hw/mac.h"
#include "src/hw/tenant.h"
#include "src/sim/simulation.h"

namespace demi {

struct NicConfig {
  int num_queues = 1;
  std::size_t ring_size = 256;    // per-queue RX/TX descriptor ring slots
  bool supports_offload = false;  // SmartNIC: can run filter/map programs on-device
  bool checksum_offload = true;   // stack may skip software checksum work
};

// A packet program the NIC can run on the device (or that a libOS runs on the CPU).
struct NicProgram {
  enum class Kind { kFilter, kMap };
  Kind kind = Kind::kFilter;
  // kFilter: return false to drop the frame before host DMA.
  std::function<bool(const Buffer& frame)> filter;
  // kMap: transform the frame before host DMA.
  std::function<Buffer(const Buffer& frame)> map;
  // What this program would cost per packet on the host CPU; on-device execution takes
  // host_cost_ns * cost().device_compute_factor of device time instead.
  TimeNs host_cost_ns = 0;
};

class SimNic {
 public:
  SimNic(HostCpu* host, Fabric* fabric, MacAddress mac, NicConfig config = NicConfig{});
  ~SimNic();
  SimNic(const SimNic&) = delete;
  SimNic& operator=(const SimNic&) = delete;

  const MacAddress& mac() const { return mac_; }
  const NicConfig& config() const { return config_; }
  DeviceCaps caps() const;

  // --- Driver interface (runs on the host CPU; charges host costs) ---

  // Posts a frame for transmission on `queue`. Returns kWouldBlock when the TX ring is
  // full (callers must back off, as a real PMD must).
  Status Transmit(int queue, Buffer frame);

  // Scatter-gather form: the frame is a chain of Buffer parts (header buffers + payload
  // slices). The device holds a reference on every part until wire time, then gathers
  // them with its own DMA engine — no host CPU copy is charged, which is the zero-copy
  // TX contract (§4.5 free-protection plus NIC scatter-gather).
  Status Transmit(int queue, FrameChain chain);

  // Burst transmit (DPDK tx_burst semantics): posts as many of `frames` as the TX ring
  // accepts under a SINGLE doorbell, consuming the accepted chains, and returns the
  // accepted count. The first descriptor pays the full DMA round trip; each subsequent
  // one pipelines behind it at pcie_dma_batch_descriptor_ns — this is the amortization
  // that makes per-I/O software cost, not the device, the bottleneck (§3.2). Frames
  // beyond ring space are left in `frames` untouched (callers back off, as with a real
  // PMD). Returns 0 without ringing the doorbell when the NIC is dead or `frames` is
  // empty.
  std::size_t TransmitBurst(int queue, std::span<FrameChain> frames);

  // Drains one received frame from `queue`'s RX ring, if any. Free of charge: the
  // caller (kernel driver or libOS) charges its own per-packet processing cost.
  std::optional<Buffer> PollRx(int queue);

  // Burst receive (rx_burst semantics): appends up to `max` frames from `queue`'s RX
  // ring to `out` and returns how many were drained. Like PollRx, free of charge.
  std::size_t PollRxBurst(int queue, std::vector<Buffer>& out, std::size_t max);

  std::size_t RxPending(int queue) const;
  std::size_t TxSpace(int queue) const;

  // Installs a per-packet program on the RX path of `queue`. Requires
  // config().supports_offload; charges the control-path setup cost.
  Status InstallRxProgram(int queue, NicProgram program);
  void ClearRxPrograms(int queue);

  // Flow steering (ntuple / Flow Director): IPv4 frames whose L4 protocol and
  // destination port match a rule bypass RSS and land on the rule's queue. This is
  // how a kernel stack (queue 0) and a kernel-bypass libOS stack (leased queue)
  // coexist on one port without stealing each other's flows. ARP frames are
  // replicated to every queue, since every stack needs resolution traffic.
  void AddSteeringRule(std::uint8_t ip_proto, std::uint16_t dst_port, int queue);
  void RemoveSteeringRule(std::uint8_t ip_proto, std::uint16_t dst_port);

  // Optional: invoked (at most once per empty->non-empty transition) when a frame is
  // deposited into an RX ring. The legacy kernel uses this as its interrupt line;
  // poll-mode drivers leave it unset.
  void SetRxNotify(std::function<void(int queue)> notify) { rx_notify_ = std::move(notify); }

  // Registers this NIC with the fault injector. Link state is consulted at wire time
  // (frames in flight when the link drops are lost); a kDeviceFailed fault latches the
  // NIC dead, fails all future Transmit calls, and clears the RX rings so device-held
  // buffers are released back to free-protection accounting (§4.5).
  FaultDeviceId AttachFaultInjector(FaultInjector* faults);

  bool failed() const { return failed_; }
  bool link_up() const;
  PortId port() const { return port_; }
  FaultDeviceId fault_device() const { return fault_dev_; }

  std::uint64_t rx_ring_drops() const { return rx_ring_drops_; }

  // Per-queue doorbell/DMA accounting (DESIGN.md §13): with RSS-sharded workers each
  // owning a queue pair, these show whether load — and device work — actually spread
  // across the shards.
  struct QueueStats {
    std::uint64_t doorbells = 0;  // MMIO doorbell writes on this queue
    std::uint64_t dma_ops = 0;    // completed descriptor DMAs (TX wire + RX deposit)
    std::uint64_t tx_frames = 0;  // frames that reached the wire from this queue
    std::uint64_t rx_frames = 0;  // frames deposited into this queue's RX ring
  };
  const QueueStats& queue_stats(int queue) const;

  // Predicts the RSS queue for a flow without building a frame: `tuple` is the 12
  // wire-order bytes the hardware hashes (src IP, dst IP, src port, dst port — all
  // big-endian, the IPv4 frame region [eth+12, eth+24)). Load generators use this to
  // know which queue — hence which RSS-sharded worker — a flow will land on. Must
  // stay in lockstep with the private RssQueue().
  static int RssForTuple(const std::array<std::uint8_t, 12>& tuple, int num_queues);

  // --- Multi-tenant sharing (DESIGN.md "Tenant isolation model") ---
  //
  // With a registry attached, queues bound to a tenant route their descriptors
  // through shared, serialized TX/RX DMA engines: every posted frame is validated
  // against the tenant's capability set (violations are consumed, dropped, and
  // counted — single-frame Transmit returns the typed kCapabilityViolation status),
  // doorbells and descriptors pass per-tenant token buckets, and the engines
  // schedule tenants by deficit-weighted round robin. When the registry's isolation
  // switch is off, the engines degrade to unchecked FIFO — the vulnerable shared
  // device the chaos suite contrasts against. Queues left unbound (and NICs with no
  // registry) keep the original single-owner direct path, bit-for-bit.
  void AttachTenantRegistry(TenantRegistry* registry) { tenants_ = registry; }
  TenantRegistry* tenant_registry() { return tenants_; }
  void BindQueueTenant(int queue, TenantId tenant);
  TenantId queue_tenant(int queue) const;
  std::size_t tx_engine_depth() const { return tx_engine_.depth; }
  std::size_t rx_engine_depth() const { return rx_engine_.depth; }

 private:
  // One descriptor queued in a shared tenant DMA engine.
  struct EngineItem {
    FrameChain chain;
    int queue = 0;
    TenantId tenant = kNoTenant;
    TimeNs enqueued_at = 0;
    std::size_t bytes = 0;
  };
  // A serialized DMA engine shared by all tenant-bound queues of one direction.
  struct Engine {
    bool busy = false;
    std::deque<EngineItem> fifo;  // isolation off
    struct TenantQueue {
      std::deque<EngineItem> items;
      std::uint64_t deficit = 0;
      bool active = false;
    };
    std::unordered_map<TenantId, TenantQueue> per_tenant;
    std::deque<TenantId> rr;  // active tenants, round-robin order
    std::size_t depth = 0;
  };

  void DeliverFromWire(Buffer frame);
  void DepositToQueue(int queue, Buffer frame);
  int RssQueue(const Buffer& frame) const;
  void OnFault(const FaultEvent& event);

  std::size_t TransmitBurstTenant(int queue, TenantId tenant, std::span<FrameChain> frames);
  void EnqueueEngine(Engine& engine, EngineItem item, bool is_tx);
  bool PopEngine(Engine& engine, EngineItem& out);
  void ServeTxEngine();
  void ServeRxEngine();
  void FinishRxDeposit(int queue, TenantId tenant, Buffer frame);

  HostCpu* host_;
  Fabric* fabric_;
  MacAddress mac_;
  NicConfig config_;
  PortId port_;
  FaultInjector* faults_ = nullptr;
  FaultDeviceId fault_dev_ = kInvalidFaultDevice;
  bool failed_ = false;

  struct Queue {
    explicit Queue(std::size_t ring) : rx(ring), tx_in_flight(0) {}
    RingBuffer<Buffer> rx;
    std::size_t tx_in_flight;
    std::vector<NicProgram> rx_programs;
    QueueStats stats;
  };
  std::vector<Queue> queues_;
  std::function<void(int queue)> rx_notify_;
  std::unordered_map<std::uint32_t, int> steering_;  // (proto<<16 | port) -> queue
  std::uint64_t rx_ring_drops_ = 0;

  TenantRegistry* tenants_ = nullptr;
  std::vector<TenantId> queue_tenant_;  // per-queue binding; kNoTenant = unbound
  Engine tx_engine_;
  Engine rx_engine_;
};

}  // namespace demi

#endif  // SRC_HW_NIC_H_
