#include "src/hw/rdma.h"

#include <algorithm>

#include "src/common/logging.h"

namespace demi {

// --- RdmaQp ---

void RdmaQp::CompleteLocal(WorkCompletion wc) {
  if (cq_.size() >= nic_->config_.cq_depth) {
    // CQ overrun is a fatal QP error on real hardware.
    state_ = State::kError;
    return;
  }
  cq_.push_back(std::move(wc));
}

void RdmaQp::CompleteSend(std::uint64_t wr_id, Status status, std::size_t byte_len) {
  if (inflight_sends_.erase(wr_id) == 0) {
    return;  // Fail() already flushed this WR with the fault's cause
  }
  --outstanding_sends_;
  CompleteLocal({wr_id, WorkCompletion::Op::kSend, std::move(status), byte_len, {}});
}

void RdmaQp::Fail(Status cause) {
  if (state_ == State::kError) {
    return;
  }
  state_ = State::kError;
  error_status_ = cause;
  if (tenant_ != kNoTenant && nic_->tenants_ != nullptr) {
    nic_->tenants_->ReleaseQp(tenant_);  // a dead QP frees its device-table slot
  }
  while (!recv_queue_.empty()) {
    auto [recv_id, recv_buf] = std::move(recv_queue_.front());
    recv_queue_.pop_front();
    nic_->UnpinDma(recv_buf.storage() != nullptr ? recv_buf.storage()->registration_root()
                                                 : nullptr);
    CompleteLocal({recv_id, WorkCompletion::Op::kRecv, cause, 0, {}});
  }
  for (const std::uint64_t wr_id : inflight_sends_) {
    CompleteLocal({wr_id, WorkCompletion::Op::kSend, cause, 0, {}});
  }
  inflight_sends_.clear();
  outstanding_sends_ = 0;
}

Status RdmaQp::PostRecv(std::uint64_t wr_id, Buffer buffer) {
  if (state_ == State::kError) {
    return error_status_;
  }
  if (!nic_->IsRegistered(buffer)) {
    return Status(ErrorCode::kPermissionDenied, "recv buffer not in a registered region");
  }
  if (recv_queue_.size() >= nic_->config_.max_recv_wr) {
    return ResourceExhausted("recv queue full");
  }
  // The device holds a DMA descriptor on this buffer until a message lands in it (or
  // the QP fails); its region cannot be deregistered while posted.
  nic_->PinDma(buffer.storage()->registration_root());
  recv_queue_.emplace_back(wr_id, std::move(buffer));
  return OkStatus();
}

Status RdmaQp::PostSend(std::uint64_t wr_id, std::vector<Buffer> segments) {
  if (state_ != State::kEstablished) {
    return state_ == State::kError ? error_status_ : NotConnected("qp not yet connected");
  }
  if (outstanding_sends_ >= nic_->config_.max_send_wr) {
    return ResourceExhausted("send queue full");
  }
  for (const Buffer& seg : segments) {
    if (!nic_->IsRegistered(seg)) {
      return Status(ErrorCode::kPermissionDenied, "send segment not in a registered region");
    }
  }
  auto peer = peer_.lock();
  if (!peer) {
    return ConnectionReset("peer gone");
  }
  HostCpu& host = *nic_->host_;
  if (TenantRegistry* tenants = nic_->tenants_;
      tenants != nullptr && tenant_ != kNoTenant && tenants->isolation_enabled()) {
    // Tenant QPs face the same device-side enforcement as SimNic queues: segments
    // must fall inside the tenant's capability set and the doorbell passes its bucket.
    for (const Buffer& seg : segments) {
      if (seg.storage() == nullptr ||
          !tenants->MayAccess(tenant_, seg.storage()->registration_root())) {
        ++tenants->mutable_stats(tenant_).capability_violations;
        host.Count(Counter::kCapabilityViolations);
        return CapabilityViolation("send segment outside the tenant's capability set");
      }
    }
    if (!tenants->TakeDoorbell(tenant_)) {
      host.Work(host.cost().pcie_doorbell_ns);  // MMIO write spent either way
      host.Count(Counter::kDoorbellsThrottled);
      return ResourceExhausted("tenant doorbell rate exceeded");
    }
  }
  ++outstanding_sends_;
  inflight_sends_.insert(wr_id);

  host.Work(host.cost().pcie_doorbell_ns);
  host.Count(Counter::kDoorbells);

  // Device side: gather the segments (DMA per segment), run the NIC transport, ship it.
  Buffer message = ConcatCopy(segments);
  host.Count(Counter::kDmaOps, segments.size());

  auto self = std::static_pointer_cast<RdmaQp>(peer->peer_.lock());
  DEMI_CHECK(self != nullptr);

  const CostModel& cost = host.cost();
  const TimeNs delay = cost.pcie_dma_ns + cost.rdma_transport_ns + cost.wire_latency_ns +
                       cost.WireSerializationNs(message.size());
  SendWr wr{wr_id, std::move(message), nic_->config_.rnr_retry_limit};
  host.sim().Schedule(delay, [peer, wr = std::move(wr), self]() mutable {
    peer->DeliverMessage(peer, std::move(wr), self);
  });
  host.Count(Counter::kPacketsTx);
  return OkStatus();
}

void RdmaQp::DeliverMessage(std::shared_ptr<RdmaQp> self, SendWr wr,
                            std::shared_ptr<RdmaQp> sender) {
  HostCpu& host = *nic_->host_;
  const CostModel& cost = host.cost();

  if (state_ == State::kError) {
    // Surface the typed cause (kQpError on injected faults) instead of a generic reset.
    const Status cause = error_status_.code() == ErrorCode::kConnectionReset
                             ? ConnectionReset("remote qp error")
                             : error_status_;
    host.sim().Schedule(cost.wire_latency_ns, [sender, id = wr.wr_id, cause] {
      sender->CompleteSend(id, cause, 0);
    });
    return;
  }

  if (recv_queue_.empty()) {
    // Receiver not ready: the hardware retries, then fails the send — the exact
    // "allocating too few buffers causes communication to fail" behaviour of §2.
    if (wr.rnr_retries_left > 0) {
      --wr.rnr_retries_left;
      host.Count(Counter::kRetransmissions);
      host.sim().Schedule(nic_->config_.rnr_retry_delay_ns,
                          [self, wr = std::move(wr), sender]() mutable {
                            self->DeliverMessage(self, std::move(wr), sender);
                          });
      return;
    }
    state_ = State::kError;
    host.sim().Schedule(cost.wire_latency_ns, [sender, id = wr.wr_id] {
      sender->CompleteSend(id, Status(ErrorCode::kResourceExhausted, "receiver not ready"), 0);
      sender->state_ = State::kError;
    });
    return;
  }

  auto [recv_id, recv_buf] = std::move(recv_queue_.front());
  recv_queue_.pop_front();
  nic_->UnpinDma(recv_buf.storage() != nullptr ? recv_buf.storage()->registration_root()
                                               : nullptr);

  if (recv_buf.size() < wr.message.size()) {
    // Local length error: posted buffer too small for the incoming message (§2).
    CompleteLocal({recv_id, WorkCompletion::Op::kRecv,
                   Status(ErrorCode::kInvalidArgument, "recv buffer too small"), 0, {}});
    state_ = State::kError;
    host.sim().Schedule(cost.wire_latency_ns, [sender, id = wr.wr_id] {
      sender->CompleteSend(id, Status(ErrorCode::kInvalidArgument, "remote length error"), 0);
    });
    return;
  }

  // Device deposits the payload directly into the posted buffer (no host CPU).
  std::memcpy(recv_buf.mutable_data(), wr.message.data(), wr.message.size());
  host.Count(Counter::kDmaOps);
  host.Count(Counter::kPacketsRx);
  CompleteLocal({recv_id, WorkCompletion::Op::kRecv, OkStatus(), wr.message.size(),
                 recv_buf.Slice(0, wr.message.size())});

  // Hardware ack back to the sender.
  host.sim().Schedule(cost.wire_latency_ns, [sender, id = wr.wr_id, n = wr.message.size()] {
    sender->CompleteSend(id, OkStatus(), n);
  });
}

Status RdmaQp::PostRead(std::uint64_t wr_id, Buffer dest, RKey rkey, std::size_t offset) {
  if (state_ != State::kEstablished) {
    return NotConnected("qp not connected");
  }
  if (!nic_->IsRegistered(dest)) {
    return Status(ErrorCode::kPermissionDenied, "read destination not registered");
  }
  auto peer = peer_.lock();
  if (!peer) {
    return ConnectionReset("peer gone");
  }
  HostCpu& host = *nic_->host_;
  const CostModel& cost = host.cost();
  host.Work(cost.pcie_doorbell_ns);
  host.Count(Counter::kDoorbells);

  auto self = std::static_pointer_cast<RdmaQp>(peer->peer_.lock());
  // The device will DMA into `dest` when the response returns; pin its region until
  // the read completes so it cannot be deregistered out from under the descriptor.
  const BufferStorage* dest_root = dest.storage()->registration_root();
  nic_->PinDma(dest_root);
  const TimeNs there = cost.pcie_dma_ns + cost.rdma_transport_ns + cost.wire_latency_ns;
  host.sim().Schedule(there, [peer, self, wr_id, dest, rkey, offset, dest_root]() mutable {
    HostCpu& phost = *peer->nic_->host_;
    const CostModel& pcost = phost.cost();
    auto it = peer->nic_->regions_.find(rkey);
    Status status;
    if (it == peer->nic_->regions_.end()) {
      status = Status(ErrorCode::kPermissionDenied, "bad rkey");
    } else if (offset + dest.size() > it->second->capacity()) {
      status = Status(ErrorCode::kInvalidArgument, "remote access out of bounds");
    } else {
      // The remote NIC DMAs straight from registered memory: zero remote CPU cost —
      // the property every one-sided RDMA KV store in §1 is built on.
      std::memcpy(dest.mutable_data(), it->second->data() + offset, dest.size());
      phost.Count(Counter::kDmaOps);
    }
    const TimeNs back = pcost.wire_latency_ns +
                        (status.ok() ? pcost.WireSerializationNs(dest.size()) : 0) +
                        pcost.rdma_transport_ns;
    phost.sim().Schedule(back, [self, wr_id, status, n = dest.size(), dest_root] {
      self->nic_->UnpinDma(dest_root);
      self->CompleteLocal({wr_id, WorkCompletion::Op::kRead, status, status.ok() ? n : 0, {}});
    });
  });
  return OkStatus();
}

Status RdmaQp::PostWrite(std::uint64_t wr_id, Buffer src, RKey rkey, std::size_t offset) {
  if (state_ != State::kEstablished) {
    return NotConnected("qp not connected");
  }
  if (!nic_->IsRegistered(src)) {
    return Status(ErrorCode::kPermissionDenied, "write source not registered");
  }
  auto peer = peer_.lock();
  if (!peer) {
    return ConnectionReset("peer gone");
  }
  HostCpu& host = *nic_->host_;
  const CostModel& cost = host.cost();
  host.Work(cost.pcie_doorbell_ns);
  host.Count(Counter::kDoorbells);

  auto self = std::static_pointer_cast<RdmaQp>(peer->peer_.lock());
  // `src` is read by the device until the message is on the remote side; pin it.
  const BufferStorage* src_root = src.storage()->registration_root();
  nic_->PinDma(src_root);
  const TimeNs there = cost.pcie_dma_ns + cost.rdma_transport_ns + cost.wire_latency_ns +
                       cost.WireSerializationNs(src.size());
  host.sim().Schedule(there, [peer, self, wr_id, src, rkey, offset, src_root]() mutable {
    HostCpu& phost = *peer->nic_->host_;
    const CostModel& pcost = phost.cost();
    auto it = peer->nic_->regions_.find(rkey);
    Status status;
    if (it == peer->nic_->regions_.end()) {
      status = Status(ErrorCode::kPermissionDenied, "bad rkey");
    } else if (offset + src.size() > it->second->capacity()) {
      status = Status(ErrorCode::kInvalidArgument, "remote access out of bounds");
    } else {
      // Remote NIC deposits into registered memory; remote CPU never runs.
      std::memcpy(it->second->data() + offset, src.data(), src.size());
      phost.Count(Counter::kDmaOps);
    }
    self->nic_->UnpinDma(src_root);  // local device is done reading the source
    phost.sim().Schedule(pcost.wire_latency_ns + pcost.rdma_transport_ns,
                         [self, wr_id, status, n = src.size()] {
                           self->CompleteLocal({wr_id, WorkCompletion::Op::kWrite, status,
                                                status.ok() ? n : 0, {}});
                         });
  });
  return OkStatus();
}

// --- RdmaNic ---

RdmaNic::RdmaNic(HostCpu* host, RdmaCm* cm, RdmaConfig config)
    : host_(host), cm_(cm), config_(config) {}

DeviceCaps RdmaNic::caps() const {
  return DeviceCaps{
      .device = "RdmaNic (verbs)",
      .category = "+OS features",
      .kernel_bypass = true,
      .multiplexing = true,
      .addr_translation = true,
      .transport_offload = true,
      .needs_explicit_mem_reg = true,
      .program_offload = false,
      .tenant_isolation = tenants_ != nullptr,
  };
}

void RdmaNic::PinDma(const BufferStorage* root) {
  if (root != nullptr) {
    ++inflight_dma_[root];
  }
}

void RdmaNic::UnpinDma(const BufferStorage* root) {
  if (root == nullptr) {
    return;
  }
  auto it = inflight_dma_.find(root);
  DEMI_CHECK(it != inflight_dma_.end() && it->second > 0);
  if (--it->second == 0) {
    inflight_dma_.erase(it);
  }
}

FaultDeviceId RdmaNic::AttachFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  fault_dev_ = faults->Register("rdma/" + host_->name(),
                                [this](const FaultEvent& event) { OnFault(event); });
  return fault_dev_;
}

void RdmaNic::OnFault(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kQpError:
      FailAllQps(QpError("qp forced to error state"));
      break;
    case FaultKind::kDeviceFailed:
      FailAllQps(DeviceFailed("rdma nic is dead"));
      break;
    default:
      break;  // kRegExhausted is latched in the injector; RegisterMemory consults it
  }
}

void RdmaNic::FailAllQps(Status cause) {
  for (const auto& qp : qps_) {
    qp->Fail(cause);
  }
}

Result<RKey> RdmaNic::RegisterMemory(std::shared_ptr<BufferStorage> storage) {
  if (storage == nullptr || storage->capacity() == 0) {
    return InvalidArgument("empty region");
  }
  if (faults_ != nullptr && faults_->device_failed(fault_dev_)) {
    return DeviceFailed("rdma nic is dead");
  }
  if (faults_ != nullptr && faults_->reg_exhausted(fault_dev_)) {
    return ResourceExhausted("memory registration exhausted");
  }
  if (registered_.contains(storage.get())) {
    return AlreadyExists("region already registered");
  }
  host_->Work(host_->cost().MemRegNs(storage->capacity()));
  host_->Count(Counter::kMemRegistrations);
  host_->Count(Counter::kBytesPinned, storage->capacity());
  pinned_bytes_ += storage->capacity();
  const RKey rkey = next_rkey_++;
  registered_.insert(storage.get());
  regions_[rkey] = std::move(storage);
  return rkey;
}

Result<RKey> RdmaNic::RegisterMemory(TenantId tenant, std::shared_ptr<BufferStorage> storage) {
  DEMI_CHECK(tenants_ != nullptr && tenant != kNoTenant);
  const BufferStorage* root = storage != nullptr ? storage->registration_root() : nullptr;
  if (!tenants_->TryAcquireRegistration(tenant)) {
    return ResourceExhausted("tenant registration quota exhausted");
  }
  auto rkey = RegisterMemory(std::move(storage));
  if (!rkey.ok()) {
    tenants_->ReleaseRegistration(tenant);
    return rkey;
  }
  tenants_->GrantRegion(tenant, root);
  region_tenant_[*rkey] = tenant;
  return rkey;
}

Status RdmaNic::DeregisterMemory(RKey rkey) {
  auto it = regions_.find(rkey);
  if (it == regions_.end()) {
    return NotFound("unknown rkey");
  }
  // Refusing here (instead of erasing) closes a use-after-free window: posted recv
  // buffers and in-flight one-sided transfers hold device descriptors into the
  // region, and real hardware would DMA through a stale translation after free.
  const BufferStorage* root = it->second->registration_root();
  if (auto dma = inflight_dma_.find(root); dma != inflight_dma_.end() && dma->second > 0) {
    return Status(ErrorCode::kWouldBlock, "region has in-flight DMA descriptors");
  }
  if (auto owner = region_tenant_.find(rkey); owner != region_tenant_.end()) {
    if (tenants_ != nullptr) {
      tenants_->RevokeRegion(owner->second, root);
      tenants_->ReleaseRegistration(owner->second);
    }
    region_tenant_.erase(owner);
  }
  pinned_bytes_ -= it->second->capacity();
  registered_.erase(it->second.get());
  regions_.erase(it);
  return OkStatus();
}

bool RdmaNic::IsRegistered(const Buffer& buffer) const {
  return buffer.storage() != nullptr &&
         registered_.contains(buffer.storage()->registration_root());
}

Status RdmaNic::Listen(const std::string& addr) {
  if (cm_->listeners_.contains(addr)) {
    return Status(ErrorCode::kAddressInUse, addr);
  }
  // Control path: CM setup goes through the legacy kernel.
  host_->Work(3 * host_->cost().syscall_ns);
  cm_->listeners_[addr] = RdmaCm::ListenerState{this, {}};
  return OkStatus();
}

std::shared_ptr<RdmaQp> RdmaNic::Accept(const std::string& addr) {
  auto it = cm_->listeners_.find(addr);
  if (it == cm_->listeners_.end() || it->second.accept_queue.empty()) {
    return nullptr;
  }
  auto qp = std::move(it->second.accept_queue.front());
  it->second.accept_queue.pop_front();
  host_->Work(2 * host_->cost().syscall_ns);
  return qp;
}

std::shared_ptr<RdmaQp> RdmaNic::Connect(const std::string& addr) {
  auto qp = std::shared_ptr<RdmaQp>(new RdmaQp(this));
  qps_.push_back(qp);
  host_->Work(3 * host_->cost().syscall_ns);

  auto it = cm_->listeners_.find(addr);
  const TimeNs rtt = 2 * host_->cost().wire_latency_ns;
  if (it == cm_->listeners_.end()) {
    // Fail() (not a bare state flip) so tenant QP quota is released for refused
    // connections too — otherwise churn against a dead address would leak slots.
    host_->sim().Schedule(rtt, [qp] { qp->Fail(ConnectionReset("no listener at address")); });
    return qp;
  }

  RdmaNic* server_nic = it->second.nic;
  auto server_qp = std::shared_ptr<RdmaQp>(new RdmaQp(server_nic));
  server_nic->qps_.push_back(server_qp);
  qp->peer_ = server_qp;
  server_qp->peer_ = qp;

  host_->sim().Schedule(host_->cost().wire_latency_ns, [server_qp, addr, cm = cm_] {
    server_qp->state_ = RdmaQp::State::kEstablished;
    auto lit = cm->listeners_.find(addr);
    if (lit != cm->listeners_.end()) {
      lit->second.accept_queue.push_back(server_qp);
    }
  });
  host_->sim().Schedule(rtt, [qp] {
    if (qp->state_ == RdmaQp::State::kConnecting) {
      qp->state_ = RdmaQp::State::kEstablished;
    }
  });
  return qp;
}

std::shared_ptr<RdmaQp> RdmaNic::Connect(const std::string& addr, TenantId tenant) {
  DEMI_CHECK(tenants_ != nullptr && tenant != kNoTenant);
  if (!tenants_->TryAcquireQp(tenant)) {
    host_->Work(host_->cost().syscall_ns);  // denied at the CM before any device state
    return nullptr;
  }
  auto qp = Connect(addr);
  qp->tenant_ = tenant;
  return qp;
}

std::vector<WorkCompletion> RdmaQp::PollCq(std::size_t max) {
  std::vector<WorkCompletion> out;
  while (!cq_.empty() && out.size() < max) {
    out.push_back(std::move(cq_.front()));
    cq_.pop_front();
  }
  return out;
}

}  // namespace demi
