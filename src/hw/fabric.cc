#include "src/hw/fabric.h"

#include "src/common/logging.h"

namespace demi {

Fabric::Fabric(Simulation* sim, FabricConfig config)
    : sim_(sim), config_(config), rng_(config.seed) {}

PortId Fabric::AttachPort(MacAddress mac, DeliverFn deliver) {
  const PortId id = static_cast<PortId>(ports_.size());
  ports_.push_back(Port{mac, std::move(deliver), true});
  mac_table_[mac] = id;
  return id;
}

void Fabric::DetachPort(PortId port) {
  DEMI_CHECK(port < ports_.size());
  mac_table_.erase(ports_[port].mac);
  ports_[port].attached = false;
  ports_[port].deliver = nullptr;
}

void Fabric::DeliverAfter(TimeNs delay, PortId dst, Buffer frame) {
  sim_->Schedule(delay, [this, dst, frame = std::move(frame)]() mutable {
    if (dst < ports_.size() && ports_[dst].attached) {
      ++frames_delivered_;
      ports_[dst].deliver(std::move(frame));
    }
  });
}

void Fabric::Transmit(PortId src_port, Buffer frame) {
  DEMI_CHECK(src_port < ports_.size());
  DEMI_CHECK(frame.size() >= kEthHeaderSize);
  const EthHeader eth = ParseEthHeader(frame.span());

  // Learning switch: remember where this source MAC lives.
  mac_table_[eth.src] = src_port;

  // Fault injection.
  if (config_.loss_rate > 0.0 && rng_.NextBool(config_.loss_rate)) {
    ++frames_dropped_;
    sim_->counters().Add(Counter::kPacketsDropped);
    return;
  }

  TimeNs delay = sim_->cost().WireSerializationNs(frame.size()) + sim_->cost().wire_latency_ns;
  if (config_.reorder_rate > 0.0 && rng_.NextBool(config_.reorder_rate)) {
    delay += config_.reorder_jitter_ns;
  }

  const bool duplicate = config_.dup_rate > 0.0 && rng_.NextBool(config_.dup_rate);

  auto send_to = [&](PortId dst) {
    if (faults_ != nullptr && faults_->Partitioned(src_port, dst)) {
      ++frames_dropped_;
      sim_->counters().Add(Counter::kPacketsDropped);
      return;
    }
    DeliverAfter(delay, dst, frame);
    if (duplicate) {
      DeliverAfter(delay + 1, dst, frame);
    }
  };

  if (!eth.dst.IsBroadcast()) {
    if (auto it = mac_table_.find(eth.dst); it != mac_table_.end()) {
      send_to(it->second);
      return;
    }
  }
  // Broadcast or unknown destination: flood every other port.
  for (PortId p = 0; p < ports_.size(); ++p) {
    if (p != src_port && ports_[p].attached) {
      send_to(p);
    }
  }
}

}  // namespace demi
