// BlockDevice: an SPDK-style NVMe device.
//
// The driver interface is a submission queue + completion queue pair, polled (never
// interrupt-driven on the fast path). Reads and writes DMA directly between device and
// caller-provided buffers — zero copies on the host. Data lives in an in-memory sparse
// block store; service times follow the NVMe entries of the cost model.
//
// The legacy kernel's VFS (src/kernel) drives the same device through its own layer
// (page cache + copies + syscalls), which is exactly the contrast experiment E3 measures.

#ifndef SRC_HW_BLOCK_DEVICE_H_
#define SRC_HW_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/common/ring_buffer.h"
#include "src/hw/device.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulation.h"

namespace demi {

struct BlockDeviceConfig {
  std::uint64_t num_blocks = 1 << 20;  // 4 GiB at 4 KiB blocks
  std::uint32_t block_size = 4096;
  std::size_t queue_depth = 64;  // outstanding commands
};

struct BlockCompletion {
  std::uint64_t id = 0;
  Status status;
};

class BlockDevice {
 public:
  BlockDevice(HostCpu* host, BlockDeviceConfig config = BlockDeviceConfig{});

  DeviceCaps caps() const;
  const BlockDeviceConfig& config() const { return config_; }
  std::uint32_t block_size() const { return config_.block_size; }
  std::uint64_t num_blocks() const { return config_.num_blocks; }

  // Submits a read of `count` blocks starting at `lba` into `dest` (size must be
  // count*block_size). Completion arrives in the CQ. Returns kResourceExhausted when
  // the queue is at depth (caller backs off).
  Status SubmitRead(std::uint64_t id, std::uint64_t lba, std::uint32_t count, Buffer dest);

  // Submits a write of `src` (whole blocks) at `lba`.
  Status SubmitWrite(std::uint64_t id, std::uint64_t lba, Buffer src);

  // Submits a flush barrier: completes after every previously submitted write.
  Status SubmitFlush(std::uint64_t id);

  // Drains up to `max` completions.
  std::vector<BlockCompletion> PollCompletions(std::size_t max = 16);

  std::size_t inflight() const { return inflight_; }

  // Registers this device with the injector. Per-op faults (kMediaError, kOpTimeout)
  // are consulted on every submission; a kDeviceFailed fault latches the controller
  // dead and all future submissions return kDeviceFailed.
  FaultDeviceId AttachFaultInjector(FaultInjector* faults);
  bool failed() const { return failed_; }
  FaultDeviceId fault_device() const { return fault_dev_; }

  // Test/debug access to the backing store.
  bool BlockExists(std::uint64_t lba) const { return blocks_.contains(lba); }

 private:
  void Complete(std::uint64_t id, Status status, TimeNs service_ns);
  std::vector<std::byte>& BlockAt(std::uint64_t lba);
  // Consults the injector for a per-op fault; returns the Status the op should complete
  // with (and the extra delay for timeouts), or kOk when the op proceeds normally.
  Status ConsultOpFault(TimeNs* extra_delay);

  HostCpu* host_;
  BlockDeviceConfig config_;
  FaultInjector* faults_ = nullptr;
  FaultDeviceId fault_dev_ = kInvalidFaultDevice;
  bool failed_ = false;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> blocks_;
  RingBuffer<BlockCompletion> cq_;
  std::size_t inflight_ = 0;
  TimeNs last_write_done_ = 0;  // flush barrier tracking
};

}  // namespace demi

#endif  // SRC_HW_BLOCK_DEVICE_H_
