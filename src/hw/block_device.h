// BlockDevice: an SPDK-style NVMe device.
//
// The driver interface is a submission queue + completion queue pair, polled (never
// interrupt-driven on the fast path). Reads and writes DMA directly between device and
// caller-provided buffers — zero copies on the host. Data lives in an in-memory sparse
// block store; service times follow the NVMe entries of the cost model.
//
// The legacy kernel's VFS (src/kernel) drives the same device through its own layer
// (page cache + copies + syscalls), which is exactly the contrast experiment E3 measures.

#ifndef SRC_HW_BLOCK_DEVICE_H_
#define SRC_HW_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/result.h"
#include "src/common/ring_buffer.h"
#include "src/hw/device.h"
#include "src/hw/pushdown.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulation.h"

namespace demi {

struct BlockDeviceConfig {
  std::uint64_t num_blocks = 1 << 20;  // 4 GiB at 4 KiB blocks
  std::uint32_t block_size = 4096;
  std::size_t queue_depth = 64;  // outstanding commands
  // --- push-down program engine (DESIGN.md §14) ---
  bool pushdown_enabled = true;          // device ships an on-device program engine
  std::uint32_t pushdown_max_depth = 16; // device-side reads per chain (root included)
  TimeNs pushdown_step_budget_ns = 200 * kMicrosecond;  // total on-device program
                                                        // execution time per chain
  std::size_t pushdown_max_programs = 32;
};

struct BlockCompletion {
  std::uint64_t id = 0;
  Status status;
  // Push-down chains only: the program's final value and how many device-side reads
  // the chain consumed (1 = the root fetch alone; host completions are always 1).
  Buffer payload;
  std::uint32_t pushdown_steps = 0;
};

class BlockDevice {
 public:
  BlockDevice(HostCpu* host, BlockDeviceConfig config = BlockDeviceConfig{});

  DeviceCaps caps() const;
  const BlockDeviceConfig& config() const { return config_; }
  std::uint32_t block_size() const { return config_.block_size; }
  std::uint64_t num_blocks() const { return config_.num_blocks; }

  // Submits a read of `count` blocks starting at `lba` into `dest` (size must be
  // count*block_size). Completion arrives in the CQ. Returns kResourceExhausted when
  // the queue is at depth (caller backs off).
  Status SubmitRead(std::uint64_t id, std::uint64_t lba, std::uint32_t count, Buffer dest);

  // Submits a write of `src` (whole blocks) at `lba`.
  Status SubmitWrite(std::uint64_t id, std::uint64_t lba, Buffer src);

  // Submits a flush barrier: completes after every previously submitted write.
  Status SubmitFlush(std::uint64_t id);

  // --- push-down program engine (DESIGN.md §14) ---

  // Installs a device-side program; charges the offload setup cost.
  // kPushdownUnsupported when the engine is disabled, kResourceExhausted when the
  // program table is full.
  Result<PushdownProgramId> InstallProgram(PushdownProgram program);

  // Submits a push-down chain rooted at `root_lba`: the device fetches the block,
  // runs `program` on it, and either completes to the host (one CQ entry carrying the
  // program's final value) or resubmits the dependent read *device-side*. The chain is
  // bounded by pushdown_max_depth and pushdown_step_budget_ns; exceeding either
  // surfaces kPushdownDepthExceeded in the completion. An injected per-op fault
  // (kMediaError/kOpTimeout) on any step — the injector is consulted once per
  // device-side read, exactly as for host-submitted reads — aborts the chain and
  // surfaces through the same single completion.
  Status SubmitPushdown(std::uint64_t id, std::uint64_t root_lba,
                        PushdownProgramId program, Buffer arg);

  // Drains up to `max` completions.
  std::vector<BlockCompletion> PollCompletions(std::size_t max = 16);

  std::size_t inflight() const { return inflight_; }

  // Registers this device with the injector. Per-op faults (kMediaError, kOpTimeout)
  // are consulted on every submission; a kDeviceFailed fault latches the controller
  // dead and all future submissions return kDeviceFailed.
  FaultDeviceId AttachFaultInjector(FaultInjector* faults);
  bool failed() const { return failed_; }
  FaultDeviceId fault_device() const { return fault_dev_; }

  // Test/debug access to the backing store.
  bool BlockExists(std::uint64_t lba) const { return blocks_.contains(lba); }

 private:
  // One in-flight push-down chain. Heap-allocated and owned by the step events.
  struct PushdownChain {
    std::uint64_t id = 0;
    PushdownProgramId program = kInvalidPushdownProgram;
    Buffer arg;
    std::uint64_t lba = 0;        // block the next step fetches
    std::uint32_t steps = 0;      // device-side reads consumed so far
    TimeNs exec_spent_ns = 0;     // on-device program time consumed so far
  };

  void Complete(std::uint64_t id, Status status, TimeNs service_ns);
  void CompletePushdown(std::uint64_t id, Status status, Buffer payload,
                        std::uint32_t steps, TimeNs service_ns);
  // Runs one device-side step of `chain` (fetch chain->lba, execute the program,
  // finish or resubmit). Called from a scheduled event at the step's start time.
  void PushdownStep(std::shared_ptr<PushdownChain> chain);
  std::vector<std::byte>& BlockAt(std::uint64_t lba);
  // Consults the injector for a per-op fault; returns the Status the op should complete
  // with (and the extra delay for timeouts), or kOk when the op proceeds normally.
  Status ConsultOpFault(TimeNs* extra_delay);

  HostCpu* host_;
  BlockDeviceConfig config_;
  FaultInjector* faults_ = nullptr;
  FaultDeviceId fault_dev_ = kInvalidFaultDevice;
  bool failed_ = false;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> blocks_;
  std::vector<PushdownProgram> programs_;
  std::vector<std::byte> zero_block_;  // device-local scratch for unwritten LBAs
  RingBuffer<BlockCompletion> cq_;
  std::size_t inflight_ = 0;
  TimeNs last_write_done_ = 0;  // flush barrier tracking
};

}  // namespace demi

#endif  // SRC_HW_BLOCK_DEVICE_H_
