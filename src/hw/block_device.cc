#include "src/hw/block_device.h"

#include <algorithm>
#include <cstring>
#include <span>
#include <string>

#include "src/common/logging.h"

namespace demi {

BlockDevice::BlockDevice(HostCpu* host, BlockDeviceConfig config)
    : host_(host), config_(config), cq_(config.queue_depth * 2) {}

DeviceCaps BlockDevice::caps() const {
  return DeviceCaps{
      .device = "BlockDevice (SPDK/NVMe-style)",
      .category = "kernel-bypass only",
      .kernel_bypass = true,
      .multiplexing = false,  // namespaces are single-owner here, like SPDK claiming
      .addr_translation = true,
      .transport_offload = false,
      .needs_explicit_mem_reg = false,
      .program_offload = config_.pushdown_enabled,
  };
}

std::vector<std::byte>& BlockDevice::BlockAt(std::uint64_t lba) {
  auto [it, inserted] = blocks_.try_emplace(lba);
  if (inserted) {
    it->second.assign(config_.block_size, std::byte{0});
  }
  return it->second;
}

FaultDeviceId BlockDevice::AttachFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  fault_dev_ = faults->Register("blk/" + host_->name(), [this](const FaultEvent& event) {
    if (event.kind == FaultKind::kDeviceFailed) {
      failed_ = true;
    }
  });
  return fault_dev_;
}

Status BlockDevice::ConsultOpFault(TimeNs* extra_delay) {
  *extra_delay = 0;
  if (faults_ == nullptr) {
    return OkStatus();
  }
  const auto fault = faults_->NextOpFault(fault_dev_);
  if (!fault) {
    return OkStatus();
  }
  if (*fault == FaultKind::kOpTimeout) {
    // The command hangs in the controller and is eventually aborted; the completion
    // shows up late with a timeout status.
    *extra_delay = 5 * kMillisecond;
    return TimedOut("nvme command timeout");
  }
  return MediaError("uncorrectable media error");
}

void BlockDevice::Complete(std::uint64_t id, Status status, TimeNs service_ns) {
  ++inflight_;
  host_->sim().Schedule(service_ns, [this, id, status = std::move(status)] {
    --inflight_;
    host_->Count(Counter::kNvmeOps);
    BlockCompletion c;
    c.id = id;
    c.status = status;
    if (!cq_.Push(std::move(c))) {
      // CQ overrun: devices treat this as a controller-level failure; we panic because
      // the CQ is sized so a correct driver can never overrun it.
      PanicImpl(__FILE__, __LINE__, "NVMe completion queue overrun");
    }
  });
}

Status BlockDevice::SubmitRead(std::uint64_t id, std::uint64_t lba, std::uint32_t count,
                               Buffer dest) {
  if (failed_) {
    return DeviceFailed("block device is dead");
  }
  if (inflight_ >= config_.queue_depth) {
    return ResourceExhausted("submission queue full");
  }
  if (lba + count > config_.num_blocks) {
    return InvalidArgument("read beyond device");
  }
  if (dest.size() != static_cast<std::size_t>(count) * config_.block_size) {
    return InvalidArgument("destination size != count * block_size");
  }
  host_->Work(host_->cost().pcie_doorbell_ns);
  host_->Count(Counter::kDoorbells);

  TimeNs fault_delay = 0;
  if (Status fault = ConsultOpFault(&fault_delay); !fault.ok()) {
    // Faulted read: no data is transferred; the CQ entry carries the error.
    Complete(id, std::move(fault),
             host_->cost().NvmeNs(/*is_write=*/false, dest.size()) + fault_delay);
    return OkStatus();
  }

  // Device DMAs straight into `dest` (no host CPU involvement). The data is deposited
  // immediately in simulation memory; the completion carries the timing.
  for (std::uint32_t i = 0; i < count; ++i) {
    auto it = blocks_.find(lba + i);
    std::byte* out = dest.mutable_data() + static_cast<std::size_t>(i) * config_.block_size;
    if (it != blocks_.end()) {
      std::memcpy(out, it->second.data(), config_.block_size);
    } else {
      std::memset(out, 0, config_.block_size);
    }
  }
  host_->Count(Counter::kDmaOps, count);
  Complete(id, OkStatus(), host_->cost().NvmeNs(/*is_write=*/false, dest.size()));
  return OkStatus();
}

Status BlockDevice::SubmitWrite(std::uint64_t id, std::uint64_t lba, Buffer src) {
  if (failed_) {
    return DeviceFailed("block device is dead");
  }
  if (inflight_ >= config_.queue_depth) {
    return ResourceExhausted("submission queue full");
  }
  if (src.empty() || src.size() % config_.block_size != 0) {
    return InvalidArgument("write must be whole blocks");
  }
  const std::uint64_t count = src.size() / config_.block_size;
  if (lba + count > config_.num_blocks) {
    return InvalidArgument("write beyond device");
  }
  host_->Work(host_->cost().pcie_doorbell_ns);
  host_->Count(Counter::kDoorbells);

  TimeNs fault_delay = 0;
  if (Status fault = ConsultOpFault(&fault_delay); !fault.ok()) {
    // Faulted write: the media is untouched.
    Complete(id, std::move(fault),
             host_->cost().NvmeNs(/*is_write=*/true, src.size()) + fault_delay);
    return OkStatus();
  }

  for (std::uint64_t i = 0; i < count; ++i) {
    std::memcpy(BlockAt(lba + i).data(),
                src.data() + static_cast<std::size_t>(i) * config_.block_size,
                config_.block_size);
  }
  host_->Count(Counter::kDmaOps, count);
  const TimeNs service = host_->cost().NvmeNs(/*is_write=*/true, src.size());
  last_write_done_ = std::max(last_write_done_, host_->now() + service);
  Complete(id, OkStatus(), service);
  return OkStatus();
}

Status BlockDevice::SubmitFlush(std::uint64_t id) {
  if (failed_) {
    return DeviceFailed("block device is dead");
  }
  if (inflight_ >= config_.queue_depth) {
    return ResourceExhausted("submission queue full");
  }
  host_->Work(host_->cost().pcie_doorbell_ns);
  host_->Count(Counter::kDoorbells);
  const TimeNs barrier = std::max<TimeNs>(last_write_done_ - host_->now(), 0);

  // Flush is an op like any other: a seeded per-op fault aimed at it must land on it,
  // not silently slide to the next read/write (chaos-schedule determinism).
  TimeNs fault_delay = 0;
  if (Status fault = ConsultOpFault(&fault_delay); !fault.ok()) {
    Complete(id, std::move(fault),
             barrier + host_->cost().nvme_write_ns / 4 + fault_delay);
    return OkStatus();
  }
  Complete(id, OkStatus(), barrier + host_->cost().nvme_write_ns / 4);
  return OkStatus();
}

std::vector<BlockCompletion> BlockDevice::PollCompletions(std::size_t max) {
  std::vector<BlockCompletion> out;
  while (out.size() < max) {
    auto c = cq_.Pop();
    if (!c) {
      break;
    }
    out.push_back(std::move(*c));
  }
  if (!out.empty()) {
    host_->Count(Counter::kBlockHostCompletions, out.size());
  }
  return out;
}

// --- push-down program engine (DESIGN.md §14) ---

Result<PushdownProgramId> BlockDevice::InstallProgram(PushdownProgram program) {
  if (!config_.pushdown_enabled) {
    return PushdownUnsupported("device has no program engine");
  }
  if (program.fn == nullptr) {
    return InvalidArgument("pushdown program has no step function");
  }
  if (programs_.size() >= config_.pushdown_max_programs) {
    return ResourceExhausted("pushdown program table full");
  }
  // Installing a program is a control-path operation, like installing a NIC filter.
  host_->Work(host_->cost().offload_setup_ns);
  programs_.push_back(std::move(program));
  return static_cast<PushdownProgramId>(programs_.size() - 1);
}

Status BlockDevice::SubmitPushdown(std::uint64_t id, std::uint64_t root_lba,
                                   PushdownProgramId program, Buffer arg) {
  if (failed_) {
    return DeviceFailed("block device is dead");
  }
  if (!config_.pushdown_enabled) {
    return PushdownUnsupported("device has no program engine");
  }
  if (program >= programs_.size()) {
    return InvalidArgument("unknown pushdown program");
  }
  if (inflight_ >= config_.queue_depth) {
    return ResourceExhausted("submission queue full");
  }
  if (root_lba >= config_.num_blocks) {
    return InvalidArgument("pushdown root beyond device");
  }
  // One doorbell for the whole chain — that is the point.
  host_->Work(host_->cost().pcie_doorbell_ns);
  host_->Count(Counter::kDoorbells);
  host_->Count(Counter::kPushdownChains);

  auto chain = std::make_shared<PushdownChain>();
  chain->id = id;
  chain->program = program;
  chain->arg = std::move(arg);
  chain->lba = root_lba;
  ++inflight_;
  // The root fetch starts immediately; its service time is charged inside the step.
  host_->sim().Schedule(0, [this, chain] { PushdownStep(chain); });
  return OkStatus();
}

void BlockDevice::CompletePushdown(std::uint64_t id, Status status, Buffer payload,
                                   std::uint32_t steps, TimeNs service_ns) {
  host_->sim().Schedule(service_ns, [this, id, status = std::move(status),
                                     payload = std::move(payload), steps] {
    --inflight_;
    BlockCompletion c;
    c.id = id;
    c.status = status;
    c.payload = payload;
    c.pushdown_steps = steps;
    if (!cq_.Push(std::move(c))) {
      PanicImpl(__FILE__, __LINE__, "NVMe completion queue overrun");
    }
  });
}

void BlockDevice::PushdownStep(std::shared_ptr<PushdownChain> chain) {
  const CostModel& cost = host_->cost();
  const TimeNs read_ns = cost.NvmeNs(/*is_write=*/false, config_.block_size);

  // A controller death mid-chain kills the chain like any inflight command.
  if (failed_) {
    CompletePushdown(chain->id, DeviceFailed("block device died mid-chain"), Buffer{},
                     chain->steps, 0);
    return;
  }
  if (chain->lba >= config_.num_blocks) {
    CompletePushdown(chain->id, InvalidArgument("pushdown chain read beyond device"),
                     Buffer{}, chain->steps, 0);
    return;
  }

  // This step's media read happens now (even a faulted one consumed the flash access);
  // each device-side read is a real NVMe op, it just never crosses PCIe.
  ++chain->steps;
  host_->Count(Counter::kPushdownSteps);
  host_->Count(Counter::kNvmeOps);

  // Each device-side read consults the injector exactly as a host-submitted read
  // would: a mid-chain media error or timeout aborts the chain and surfaces through
  // the one host completion.
  TimeNs fault_delay = 0;
  if (Status fault = ConsultOpFault(&fault_delay); !fault.ok()) {
    CompletePushdown(chain->id, std::move(fault), Buffer{}, chain->steps,
                     read_ns + fault_delay);
    return;
  }

  // Fetch the block into device-local scratch (no host DMA, no host copy charge).
  const auto it = blocks_.find(chain->lba);
  if (zero_block_.size() < config_.block_size) {
    zero_block_.assign(config_.block_size, std::byte{0});
  }
  std::span<const std::byte> block =
      it != blocks_.end()
          ? std::span<const std::byte>(it->second)
          : std::span<const std::byte>(zero_block_.data(), config_.block_size);

  // Execute the program on the device's (wimpier) cores.
  const PushdownProgram& prog = programs_[chain->program];
  const TimeNs exec_ns = static_cast<TimeNs>(
      static_cast<double>(prog.host_step_cost_ns) * cost.device_compute_factor);
  chain->exec_spent_ns += exec_ns;
  host_->Count(Counter::kDeviceComputeNs, static_cast<std::uint64_t>(exec_ns));

  PushdownContext ctx;
  ctx.block = block;
  ctx.arg = chain->arg.span();
  ctx.lba = chain->lba;
  ctx.step = chain->steps - 1;
  Result<PushdownAction> action = prog.fn(ctx);
  if (!action.ok()) {
    CompletePushdown(chain->id, action.status(), Buffer{}, chain->steps,
                     read_ns + exec_ns);
    return;
  }
  if (action->done) {
    // Final value DMAs to the host with the completion.
    host_->Count(Counter::kDmaOps);
    CompletePushdown(chain->id, OkStatus(), std::move(action->result), chain->steps,
                     read_ns + exec_ns);
    return;
  }
  if (chain->steps >= config_.pushdown_max_depth) {
    CompletePushdown(
        chain->id,
        PushdownDepthExceeded("chain exceeded " +
                              std::to_string(config_.pushdown_max_depth) + " reads"),
        Buffer{}, chain->steps, read_ns + exec_ns);
    return;
  }
  if (chain->exec_spent_ns > config_.pushdown_step_budget_ns) {
    CompletePushdown(chain->id,
                     PushdownDepthExceeded("chain exceeded its on-device step budget"),
                     Buffer{}, chain->steps, read_ns + exec_ns);
    return;
  }
  // Resubmit the dependent read device-side: no doorbell, no host completion.
  chain->lba = action->next_lba;
  host_->sim().Schedule(read_ns + exec_ns + cost.nvme_pushdown_resubmit_ns,
                        [this, chain] { PushdownStep(chain); });
}

}  // namespace demi
