#include "src/hw/block_device.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace demi {

BlockDevice::BlockDevice(HostCpu* host, BlockDeviceConfig config)
    : host_(host), config_(config), cq_(config.queue_depth * 2) {}

DeviceCaps BlockDevice::caps() const {
  return DeviceCaps{
      .device = "BlockDevice (SPDK/NVMe-style)",
      .category = "kernel-bypass only",
      .kernel_bypass = true,
      .multiplexing = false,  // namespaces are single-owner here, like SPDK claiming
      .addr_translation = true,
      .transport_offload = false,
      .needs_explicit_mem_reg = false,
      .program_offload = false,
  };
}

std::vector<std::byte>& BlockDevice::BlockAt(std::uint64_t lba) {
  auto [it, inserted] = blocks_.try_emplace(lba);
  if (inserted) {
    it->second.assign(config_.block_size, std::byte{0});
  }
  return it->second;
}

FaultDeviceId BlockDevice::AttachFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  fault_dev_ = faults->Register("blk/" + host_->name(), [this](const FaultEvent& event) {
    if (event.kind == FaultKind::kDeviceFailed) {
      failed_ = true;
    }
  });
  return fault_dev_;
}

Status BlockDevice::ConsultOpFault(TimeNs* extra_delay) {
  *extra_delay = 0;
  if (faults_ == nullptr) {
    return OkStatus();
  }
  const auto fault = faults_->NextOpFault(fault_dev_);
  if (!fault) {
    return OkStatus();
  }
  if (*fault == FaultKind::kOpTimeout) {
    // The command hangs in the controller and is eventually aborted; the completion
    // shows up late with a timeout status.
    *extra_delay = 5 * kMillisecond;
    return TimedOut("nvme command timeout");
  }
  return MediaError("uncorrectable media error");
}

void BlockDevice::Complete(std::uint64_t id, Status status, TimeNs service_ns) {
  ++inflight_;
  host_->sim().Schedule(service_ns, [this, id, status = std::move(status)] {
    --inflight_;
    host_->Count(Counter::kNvmeOps);
    if (!cq_.Push(BlockCompletion{id, status})) {
      // CQ overrun: devices treat this as a controller-level failure; we panic because
      // the CQ is sized so a correct driver can never overrun it.
      PanicImpl(__FILE__, __LINE__, "NVMe completion queue overrun");
    }
  });
}

Status BlockDevice::SubmitRead(std::uint64_t id, std::uint64_t lba, std::uint32_t count,
                               Buffer dest) {
  if (failed_) {
    return DeviceFailed("block device is dead");
  }
  if (inflight_ >= config_.queue_depth) {
    return ResourceExhausted("submission queue full");
  }
  if (lba + count > config_.num_blocks) {
    return InvalidArgument("read beyond device");
  }
  if (dest.size() != static_cast<std::size_t>(count) * config_.block_size) {
    return InvalidArgument("destination size != count * block_size");
  }
  host_->Work(host_->cost().pcie_doorbell_ns);
  host_->Count(Counter::kDoorbells);

  TimeNs fault_delay = 0;
  if (Status fault = ConsultOpFault(&fault_delay); !fault.ok()) {
    // Faulted read: no data is transferred; the CQ entry carries the error.
    Complete(id, std::move(fault),
             host_->cost().NvmeNs(/*is_write=*/false, dest.size()) + fault_delay);
    return OkStatus();
  }

  // Device DMAs straight into `dest` (no host CPU involvement). The data is deposited
  // immediately in simulation memory; the completion carries the timing.
  for (std::uint32_t i = 0; i < count; ++i) {
    auto it = blocks_.find(lba + i);
    std::byte* out = dest.mutable_data() + static_cast<std::size_t>(i) * config_.block_size;
    if (it != blocks_.end()) {
      std::memcpy(out, it->second.data(), config_.block_size);
    } else {
      std::memset(out, 0, config_.block_size);
    }
  }
  host_->Count(Counter::kDmaOps, count);
  Complete(id, OkStatus(), host_->cost().NvmeNs(/*is_write=*/false, dest.size()));
  return OkStatus();
}

Status BlockDevice::SubmitWrite(std::uint64_t id, std::uint64_t lba, Buffer src) {
  if (failed_) {
    return DeviceFailed("block device is dead");
  }
  if (inflight_ >= config_.queue_depth) {
    return ResourceExhausted("submission queue full");
  }
  if (src.empty() || src.size() % config_.block_size != 0) {
    return InvalidArgument("write must be whole blocks");
  }
  const std::uint64_t count = src.size() / config_.block_size;
  if (lba + count > config_.num_blocks) {
    return InvalidArgument("write beyond device");
  }
  host_->Work(host_->cost().pcie_doorbell_ns);
  host_->Count(Counter::kDoorbells);

  TimeNs fault_delay = 0;
  if (Status fault = ConsultOpFault(&fault_delay); !fault.ok()) {
    // Faulted write: the media is untouched.
    Complete(id, std::move(fault),
             host_->cost().NvmeNs(/*is_write=*/true, src.size()) + fault_delay);
    return OkStatus();
  }

  for (std::uint64_t i = 0; i < count; ++i) {
    std::memcpy(BlockAt(lba + i).data(),
                src.data() + static_cast<std::size_t>(i) * config_.block_size,
                config_.block_size);
  }
  host_->Count(Counter::kDmaOps, count);
  const TimeNs service = host_->cost().NvmeNs(/*is_write=*/true, src.size());
  last_write_done_ = std::max(last_write_done_, host_->now() + service);
  Complete(id, OkStatus(), service);
  return OkStatus();
}

Status BlockDevice::SubmitFlush(std::uint64_t id) {
  if (failed_) {
    return DeviceFailed("block device is dead");
  }
  if (inflight_ >= config_.queue_depth) {
    return ResourceExhausted("submission queue full");
  }
  host_->Work(host_->cost().pcie_doorbell_ns);
  host_->Count(Counter::kDoorbells);
  const TimeNs barrier = std::max<TimeNs>(last_write_done_ - host_->now(), 0);
  Complete(id, OkStatus(), barrier + host_->cost().nvme_write_ns / 4);
  return OkStatus();
}

std::vector<BlockCompletion> BlockDevice::PollCompletions(std::size_t max) {
  std::vector<BlockCompletion> out;
  while (out.size() < max) {
    auto c = cq_.Pop();
    if (!c) {
      break;
    }
    out.push_back(std::move(*c));
  }
  return out;
}

}  // namespace demi
