// Minimal leveled logging. Disabled below the compile/run-time threshold with
// near-zero cost; used mainly by tests and examples (the data path never logs).

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string_view>

namespace demi {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Process-wide log threshold (default kWarn so tests/benches stay quiet).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

// Accumulates one log line and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define DEMI_LOG(level)                          \
  if (::demi::LogLevel::level < ::demi::GetLogLevel()) { \
  } else                                         \
    ::demi::log_internal::LogLine(::demi::LogLevel::level, __FILE__, __LINE__)

#define LOG_TRACE DEMI_LOG(kTrace)
#define LOG_DEBUG DEMI_LOG(kDebug)
#define LOG_INFO DEMI_LOG(kInfo)
#define LOG_WARN DEMI_LOG(kWarn)
#define LOG_ERROR DEMI_LOG(kError)

// Always-on invariant check; aborts with a message. Used for programmer errors only
// (never for recoverable I/O conditions, which return Status).
[[noreturn]] void PanicImpl(std::string_view file, int line, std::string_view msg);

#define DEMI_CHECK(cond)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      ::demi::PanicImpl(__FILE__, __LINE__, "check failed: " #cond); \
    }                                                             \
  } while (false)

}  // namespace demi

#endif  // SRC_COMMON_LOGGING_H_
