#include "src/common/status.h"

#include <ostream>

namespace demi {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kBadDescriptor:
      return "bad_descriptor";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kWouldBlock:
      return "would_block";
    case ErrorCode::kConnectionRefused:
      return "connection_refused";
    case ErrorCode::kConnectionReset:
      return "connection_reset";
    case ErrorCode::kNotConnected:
      return "not_connected";
    case ErrorCode::kAlreadyConnected:
      return "already_connected";
    case ErrorCode::kAddressInUse:
      return "address_in_use";
    case ErrorCode::kTimedOut:
      return "timed_out";
    case ErrorCode::kPermissionDenied:
      return "permission_denied";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kEndOfFile:
      return "end_of_file";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kProtocolError:
      return "protocol_error";
    case ErrorCode::kDeviceFailed:
      return "device_failed";
    case ErrorCode::kQpError:
      return "qp_error";
    case ErrorCode::kMediaError:
      return "media_error";
    case ErrorCode::kRetryExhausted:
      return "retry_exhausted";
    case ErrorCode::kDegraded:
      return "degraded";
    case ErrorCode::kCapabilityViolation:
      return "capability_violation";
    case ErrorCode::kPushdownUnsupported:
      return "pushdown_unsupported";
    case ErrorCode::kPushdownDepthExceeded:
      return "pushdown_depth_exceeded";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace demi
