#include "src/common/checksum.h"

#include <array>
#include <bit>
#include <cstring>

namespace demi {

std::uint32_t ChecksumPartial(std::span<const std::byte> data, std::uint32_t acc) {
  const std::byte* p = data.data();
  const std::size_t n = data.size();
  std::size_t i = 0;
  // Wide inner loop: four big-endian 16-bit words per 8-byte load. The running sum
  // only needs to stay congruent mod 0xFFFF (callers fold at the end), so it is
  // folded back to 16 bits before merging into `acc`.
  std::uint64_t sum = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    if constexpr (std::endian::native == std::endian::little) {
      w = __builtin_bswap64(w);
    }
    sum += (w >> 48) + ((w >> 32) & 0xFFFF) + ((w >> 16) & 0xFFFF) + (w & 0xFFFF);
  }
  sum = (sum & 0xFFFFFFFF) + (sum >> 32);
  sum = (sum & 0xFFFF) + (sum >> 16);
  sum = (sum & 0xFFFF) + (sum >> 16);
  acc += static_cast<std::uint32_t>(sum);
  for (; i + 1 < n; i += 2) {
    acc += static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i])) << 8 |
           std::to_integer<std::uint8_t>(p[i + 1]);
  }
  if (i < n) {
    acc += static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i])) << 8;
  }
  return acc;
}

std::uint16_t FoldChecksum(std::uint32_t acc) {
  while (acc >> 16) {
    acc = (acc & 0xFFFF) + (acc >> 16);
  }
  return static_cast<std::uint16_t>(~acc);
}

std::uint16_t InternetChecksum(std::span<const std::byte> data, std::uint32_t initial) {
  return FoldChecksum(ChecksumPartial(data, initial));
}

namespace {

std::array<std::uint32_t, 256> MakeCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli polynomial
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(std::span<const std::byte> data, std::uint32_t initial) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrc32cTable();
  std::uint32_t crc = ~initial;
  for (std::byte b : data) {
    crc = kTable[(crc ^ std::to_integer<std::uint8_t>(b)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace demi
