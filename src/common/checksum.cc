#include "src/common/checksum.h"

#include <array>

namespace demi {

std::uint32_t ChecksumPartial(std::span<const std::byte> data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(data[i])) << 8 |
           std::to_integer<std::uint8_t>(data[i + 1]);
  }
  if (i < data.size()) {
    acc += static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(data[i])) << 8;
  }
  return acc;
}

std::uint16_t FoldChecksum(std::uint32_t acc) {
  while (acc >> 16) {
    acc = (acc & 0xFFFF) + (acc >> 16);
  }
  return static_cast<std::uint16_t>(~acc);
}

std::uint16_t InternetChecksum(std::span<const std::byte> data, std::uint32_t initial) {
  return FoldChecksum(ChecksumPartial(data, initial));
}

namespace {

std::array<std::uint32_t, 256> MakeCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli polynomial
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(std::span<const std::byte> data, std::uint32_t initial) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrc32cTable();
  std::uint32_t crc = ~initial;
  for (std::byte b : data) {
    crc = kTable[(crc ^ std::to_integer<std::uint8_t>(b)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace demi
