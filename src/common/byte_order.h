// Network byte-order serialization helpers used by the protocol stack and framing code.

#ifndef SRC_COMMON_BYTE_ORDER_H_
#define SRC_COMMON_BYTE_ORDER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "src/common/logging.h"

namespace demi {

// Writes fixed-width big-endian integers into a byte span, advancing a cursor.
class ByteWriter {
 public:
  explicit ByteWriter(std::span<std::byte> out) : out_(out) {}

  void U8(std::uint8_t v) {
    DEMI_CHECK(pos_ + 1 <= out_.size());
    out_[pos_++] = std::byte{v};
  }
  void U16(std::uint16_t v) {
    U8(static_cast<std::uint8_t>(v >> 8));
    U8(static_cast<std::uint8_t>(v));
  }
  void U32(std::uint32_t v) {
    U16(static_cast<std::uint16_t>(v >> 16));
    U16(static_cast<std::uint16_t>(v));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v >> 32));
    U32(static_cast<std::uint32_t>(v));
  }
  void Bytes(std::span<const std::byte> bytes) {
    DEMI_CHECK(pos_ + bytes.size() <= out_.size());
    if (!bytes.empty()) {
      std::memcpy(out_.data() + pos_, bytes.data(), bytes.size());
      pos_ += bytes.size();
    }
  }
  void Skip(std::size_t n) {
    DEMI_CHECK(pos_ + n <= out_.size());
    std::memset(out_.data() + pos_, 0, n);
    pos_ += n;
  }

  std::size_t position() const { return pos_; }

 private:
  std::span<std::byte> out_;
  std::size_t pos_ = 0;
};

// Reads fixed-width big-endian integers from a byte span, advancing a cursor.
// Out-of-bounds reads are programmer errors (callers validate lengths first).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> in) : in_(in) {}

  std::uint8_t U8() {
    DEMI_CHECK(pos_ + 1 <= in_.size());
    return std::to_integer<std::uint8_t>(in_[pos_++]);
  }
  std::uint16_t U16() {
    const std::uint16_t hi = U8();
    return static_cast<std::uint16_t>(hi << 8 | U8());
  }
  std::uint32_t U32() {
    const std::uint32_t hi = U16();
    return hi << 16 | U16();
  }
  std::uint64_t U64() {
    const std::uint64_t hi = U32();
    return hi << 32 | U32();
  }
  std::span<const std::byte> Bytes(std::size_t n) {
    DEMI_CHECK(pos_ + n <= in_.size());
    auto out = in_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void Skip(std::size_t n) {
    DEMI_CHECK(pos_ + n <= in_.size());
    pos_ += n;
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

}  // namespace demi

#endif  // SRC_COMMON_BYTE_ORDER_H_
