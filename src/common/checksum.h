// Checksums used by the network stack (RFC 1071 Internet checksum) and the storage log
// (CRC32C, as used by ext4/NVMe metadata).

#ifndef SRC_COMMON_CHECKSUM_H_
#define SRC_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace demi {

// One's-complement Internet checksum (RFC 1071) over the given bytes.
// `initial` allows chaining across pseudo-header + payload.
std::uint16_t InternetChecksum(std::span<const std::byte> data, std::uint32_t initial = 0);

// Partial sum for chaining; fold with FoldChecksum at the end.
std::uint32_t ChecksumPartial(std::span<const std::byte> data, std::uint32_t acc);
std::uint16_t FoldChecksum(std::uint32_t acc);

// CRC32C (Castagnoli), table-driven.
std::uint32_t Crc32c(std::span<const std::byte> data, std::uint32_t initial = 0);

}  // namespace demi

#endif  // SRC_COMMON_CHECKSUM_H_
