// Checksums used by the network stack (RFC 1071 Internet checksum) and the storage log
// (CRC32C, as used by ext4/NVMe metadata).

#ifndef SRC_COMMON_CHECKSUM_H_
#define SRC_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace demi {

// One's-complement Internet checksum (RFC 1071) over the given bytes.
// `initial` allows chaining across pseudo-header + payload.
std::uint16_t InternetChecksum(std::span<const std::byte> data, std::uint32_t initial = 0);

// Partial sum for chaining; fold with FoldChecksum at the end.
std::uint32_t ChecksumPartial(std::span<const std::byte> data, std::uint32_t acc);
std::uint16_t FoldChecksum(std::uint32_t acc);

// Streaming Internet-checksum accumulator for scatter-gather data. ChecksumPartial
// pads an odd trailing byte as if it ended the datagram, which is wrong mid-stream;
// this class carries the dangling byte across part boundaries so odd-length middle
// parts sum correctly.
class ChecksumAccumulator {
 public:
  explicit ChecksumAccumulator(std::uint32_t initial = 0) : acc_(initial) {}

  void Add(std::span<const std::byte> data) {
    std::uint32_t acc = acc_;
    std::size_t i = 0;
    if (have_odd_ && !data.empty()) {
      acc += static_cast<std::uint32_t>(odd_) << 8 | std::to_integer<std::uint8_t>(data[0]);
      have_odd_ = false;
      i = 1;
    }
    // Even-length middle region goes through the wide ChecksumPartial loop; only a
    // dangling odd byte is carried over to the next part.
    const std::size_t even = (data.size() - i) & ~std::size_t{1};
    acc = ChecksumPartial(data.subspan(i, even), acc);
    i += even;
    if (i < data.size()) {
      odd_ = std::to_integer<std::uint8_t>(data[i]);
      have_odd_ = true;
    }
    acc_ = acc;
  }

  // Folds to the final 16-bit checksum, zero-padding a dangling odd byte (datagram end).
  std::uint16_t Fold() const {
    std::uint32_t acc = acc_;
    if (have_odd_) {
      acc += static_cast<std::uint32_t>(odd_) << 8;
    }
    return FoldChecksum(acc);
  }

 private:
  std::uint32_t acc_;
  std::uint8_t odd_ = 0;
  bool have_odd_ = false;
};

// CRC32C (Castagnoli), table-driven.
std::uint32_t Crc32c(std::span<const std::byte> data, std::uint32_t initial = 0);

}  // namespace demi

#endif  // SRC_COMMON_CHECKSUM_H_
