#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace demi {

namespace {
LogLevel g_level = LogLevel::kWarn;

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  const std::size_t pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace log_internal {

LogLine::LogLine(LogLevel level, std::string_view file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogLine::~LogLine() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace log_internal

void PanicImpl(std::string_view file, int line, std::string_view msg) {
  std::fprintf(stderr, "[PANIC %.*s:%d] %.*s\n", static_cast<int>(Basename(file).size()),
               Basename(file).data(), line, static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace demi
