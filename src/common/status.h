// Error handling primitives used throughout the Demikernel reproduction.
//
// We follow the "no exceptions on the I/O path" convention of datacenter systems code:
// fallible operations return Status (or Result<T> for value-producing operations), and the
// caller decides how to react. ErrorCode values intentionally mirror the POSIX errno values
// a real Demikernel would surface through its C ABI.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>

namespace demi {

// Canonical error space for the whole project.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     // EINVAL: caller passed something nonsensical.
  kBadDescriptor,       // EBADF: unknown or closed queue/file descriptor.
  kNotFound,            // ENOENT: named entity does not exist.
  kAlreadyExists,       // EEXIST: named entity already exists.
  kResourceExhausted,   // ENOMEM/ENOSPC: out of buffers, ring slots, or blocks.
  kWouldBlock,          // EAGAIN: operation cannot complete right now.
  kConnectionRefused,   // ECONNREFUSED: no listener at the remote endpoint.
  kConnectionReset,     // ECONNRESET: peer aborted the connection.
  kNotConnected,        // ENOTCONN: operation requires an established connection.
  kAlreadyConnected,    // EISCONN.
  kAddressInUse,        // EADDRINUSE.
  kTimedOut,            // ETIMEDOUT.
  kPermissionDenied,    // EACCES.
  kUnsupported,         // ENOTSUP: valid request, not offered by this device/libOS.
  kEndOfFile,           // Terminal: stream or queue is cleanly finished.
  kCancelled,           // Operation cancelled (e.g. queue closed while op pending).
  kProtocolError,       // Malformed peer data (bad frame, bad checksum, bad RESP).
  kDeviceFailed,        // EIO: the device backing this queue died; ops cannot complete.
  kQpError,             // RDMA queue pair transitioned to the error state.
  kMediaError,          // Block-device media error: data at this LBA is unreadable.
  kRetryExhausted,      // Recovery gave up: retries/failover exceeded the policy deadline.
  kDegraded,            // Device is in a degraded (but possibly recoverable) state.
  kCapabilityViolation, // Descriptor references memory outside the tenant's capability set.
  kPushdownUnsupported, // Device/queue has no program engine for push-down offload.
  kPushdownDepthExceeded, // Device-side resubmission chain exceeded its depth/step budget.
  kInternal,            // Invariant violation; always a bug.
};

// Returns the canonical lower-case token for an error code, e.g. "invalid_argument".
std::string_view ErrorCodeName(ErrorCode code);

// A Status is an ErrorCode plus an optional human-readable detail message.
// Statuses are cheap to copy in the OK case (empty string).
class Status {
 public:
  Status() = default;
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, mirroring absl::*Error.
inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status BadDescriptor(std::string msg) {
  return Status(ErrorCode::kBadDescriptor, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(ErrorCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status WouldBlock() { return Status(ErrorCode::kWouldBlock); }
inline Status ConnectionRefused(std::string msg) {
  return Status(ErrorCode::kConnectionRefused, std::move(msg));
}
inline Status ConnectionReset(std::string msg) {
  return Status(ErrorCode::kConnectionReset, std::move(msg));
}
inline Status NotConnected(std::string msg) {
  return Status(ErrorCode::kNotConnected, std::move(msg));
}
inline Status TimedOut(std::string msg) { return Status(ErrorCode::kTimedOut, std::move(msg)); }
inline Status Unsupported(std::string msg) {
  return Status(ErrorCode::kUnsupported, std::move(msg));
}
inline Status EndOfFile() { return Status(ErrorCode::kEndOfFile); }
inline Status Cancelled(std::string msg) { return Status(ErrorCode::kCancelled, std::move(msg)); }
inline Status ProtocolError(std::string msg) {
  return Status(ErrorCode::kProtocolError, std::move(msg));
}
inline Status DeviceFailed(std::string msg) {
  return Status(ErrorCode::kDeviceFailed, std::move(msg));
}
inline Status QpError(std::string msg) { return Status(ErrorCode::kQpError, std::move(msg)); }
inline Status MediaError(std::string msg) {
  return Status(ErrorCode::kMediaError, std::move(msg));
}
inline Status RetryExhausted(std::string msg) {
  return Status(ErrorCode::kRetryExhausted, std::move(msg));
}
inline Status Degraded(std::string msg) { return Status(ErrorCode::kDegraded, std::move(msg)); }
inline Status CapabilityViolation(std::string msg) {
  return Status(ErrorCode::kCapabilityViolation, std::move(msg));
}
inline Status PushdownUnsupported(std::string msg) {
  return Status(ErrorCode::kPushdownUnsupported, std::move(msg));
}
inline Status PushdownDepthExceeded(std::string msg) {
  return Status(ErrorCode::kPushdownDepthExceeded, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(ErrorCode::kInternal, std::move(msg)); }

}  // namespace demi

#endif  // SRC_COMMON_STATUS_H_
