// Fixed-size object pool (slab-style free list).
//
// The memory manager and descriptor tables use this shape: O(1) allocate/release, stable
// addresses, and reuse of hot objects — the same reasons jemalloc-style allocators keep
// size-class free lists (§4.5 of the paper discusses why the libOS owns the allocator).

#ifndef SRC_COMMON_POOL_H_
#define SRC_COMMON_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/logging.h"

namespace demi {

// Pool of default-constructed T. Objects are identified by stable pointers; Release
// returns an object to the free list for reuse (contents are NOT reset).
template <typename T>
class ObjectPool {
 public:
  // `chunk_size`: how many objects each backing allocation holds.
  explicit ObjectPool(std::size_t chunk_size = 64) : chunk_size_(chunk_size) {
    DEMI_CHECK(chunk_size_ > 0);
  }

  T* Acquire() {
    if (free_.empty()) {
      Grow();
    }
    T* obj = free_.back();
    free_.pop_back();
    ++live_;
    return obj;
  }

  void Release(T* obj) {
    DEMI_CHECK(obj != nullptr);
    DEMI_CHECK(live_ > 0);
    --live_;
    free_.push_back(obj);
  }

  std::size_t live() const { return live_; }
  std::size_t allocated() const { return chunks_.size() * chunk_size_; }

 private:
  void Grow() {
    auto chunk = std::make_unique<T[]>(chunk_size_);
    for (std::size_t i = 0; i < chunk_size_; ++i) {
      free_.push_back(&chunk[i]);
    }
    chunks_.push_back(std::move(chunk));
  }

  std::size_t chunk_size_;
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
  std::size_t live_ = 0;
};

// Dense slot table with generation tags: O(1) acquire/release by index, no hashing.
// Each slot carries a generation counter bumped on release, so a handle that packs
// (generation, index) can be validated with one array access plus one compare. This is
// the backing store for the libOS qtoken table — the constant-time replacement for
// per-operation hash-map lookups on the wait path.
//
// Note: slots live in a std::vector, so references into the table are invalidated by
// Acquire() (growth may reallocate). Re-index after any call that can add a slot.
template <typename T>
class SlotPool {
 public:
  // Acquires a free slot and returns its index. The slot's value is default-reset and
  // its current generation is readable via generation(index). Generations start at 1,
  // so a (generation << k | index) handle is never 0.
  std::size_t Acquire() {
    if (free_.empty()) {
      slots_.emplace_back();
      free_.push_back(slots_.size() - 1);
    }
    const std::size_t index = free_.back();
    free_.pop_back();
    slots_[index].live = true;
    ++live_;
    return index;
  }

  // Returns the slot to the free list and bumps its generation, invalidating every
  // outstanding handle that names the old generation.
  void Release(std::size_t index) {
    DEMI_CHECK(index < slots_.size());
    Entry& e = slots_[index];
    DEMI_CHECK(e.live);
    e.live = false;
    ++e.generation;
    e.value = T{};
    --live_;
    free_.push_back(index);
  }

  // True iff `index` names a live slot whose current generation matches.
  bool Alive(std::size_t index, std::uint32_t generation) const {
    return index < slots_.size() && slots_[index].live &&
           slots_[index].generation == generation;
  }

  std::uint32_t generation(std::size_t index) const {
    DEMI_CHECK(index < slots_.size());
    return slots_[index].generation;
  }

  T& operator[](std::size_t index) {
    DEMI_CHECK(index < slots_.size() && slots_[index].live);
    return slots_[index].value;
  }
  const T& operator[](std::size_t index) const {
    DEMI_CHECK(index < slots_.size() && slots_[index].live);
    return slots_[index].value;
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Entry {
    std::uint32_t generation = 1;
    bool live = false;
    T value{};
  };

  std::vector<Entry> slots_;
  std::vector<std::size_t> free_;
  std::size_t live_ = 0;
};

}  // namespace demi

#endif  // SRC_COMMON_POOL_H_
