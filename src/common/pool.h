// Fixed-size object pool (slab-style free list).
//
// The memory manager and descriptor tables use this shape: O(1) allocate/release, stable
// addresses, and reuse of hot objects — the same reasons jemalloc-style allocators keep
// size-class free lists (§4.5 of the paper discusses why the libOS owns the allocator).

#ifndef SRC_COMMON_POOL_H_
#define SRC_COMMON_POOL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/logging.h"

namespace demi {

// Pool of default-constructed T. Objects are identified by stable pointers; Release
// returns an object to the free list for reuse (contents are NOT reset).
template <typename T>
class ObjectPool {
 public:
  // `chunk_size`: how many objects each backing allocation holds.
  explicit ObjectPool(std::size_t chunk_size = 64) : chunk_size_(chunk_size) {
    DEMI_CHECK(chunk_size_ > 0);
  }

  T* Acquire() {
    if (free_.empty()) {
      Grow();
    }
    T* obj = free_.back();
    free_.pop_back();
    ++live_;
    return obj;
  }

  void Release(T* obj) {
    DEMI_CHECK(obj != nullptr);
    DEMI_CHECK(live_ > 0);
    --live_;
    free_.push_back(obj);
  }

  std::size_t live() const { return live_; }
  std::size_t allocated() const { return chunks_.size() * chunk_size_; }

 private:
  void Grow() {
    auto chunk = std::make_unique<T[]>(chunk_size_);
    for (std::size_t i = 0; i < chunk_size_; ++i) {
      free_.push_back(&chunk[i]);
    }
    chunks_.push_back(std::move(chunk));
  }

  std::size_t chunk_size_;
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
  std::size_t live_ = 0;
};

}  // namespace demi

#endif  // SRC_COMMON_POOL_H_
