// Log-bucketed latency histogram for experiment reporting (p50/p99/p99.9, mean, max).
//
// Uses HdrHistogram-style sub-bucketing: values are grouped by magnitude with a fixed
// relative precision (~1.5%), so recording is O(1) and memory is bounded regardless of
// the latency range — the standard tool for tail-latency reporting in systems papers.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace demi {

class Histogram {
 public:
  Histogram();

  void Record(std::uint64_t value);
  void RecordN(std::uint64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Value at quantile q in [0, 1]; approximate to the bucket's relative precision.
  std::uint64_t Quantile(double q) const;

  std::uint64_t P50() const { return Quantile(0.50); }
  std::uint64_t P90() const { return Quantile(0.90); }
  std::uint64_t P99() const { return Quantile(0.99); }
  std::uint64_t P999() const { return Quantile(0.999); }

  void Merge(const Histogram& other);
  // Bucket-exact window difference: *this minus `earlier`, where `earlier` is a
  // previous copy of this histogram (recording is append-only, so every bucket of
  // `earlier` is <= the same bucket here). count and sum subtract exactly; min/max
  // are reconstructed from the differing buckets to the bucket's relative precision.
  Histogram DiffSince(const Histogram& earlier) const;
  void Reset();

  // "n=... mean=... p50=... p99=... p99.9=... max=..." with values in the given unit.
  std::string Summary(const std::string& unit) const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per power of two.

  static std::size_t BucketFor(std::uint64_t value);
  static std::uint64_t BucketUpperBound(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace demi

#endif  // SRC_COMMON_HISTOGRAM_H_
