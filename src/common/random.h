// Deterministic random sources for workload generation and failure injection.
//
// Everything in the reproduction that is "random" draws from an explicitly seeded Rng so
// experiments are replayable bit-for-bit. Includes the Zipf sampler the KV workloads use
// (datacenter key popularity is famously Zipfian) and exponential inter-arrivals for
// open-loop clients.

#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace demi {

// xoshiro256** — tiny, fast, high-quality; good enough for workloads (not crypto).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

 private:
  std::uint64_t s_[4];
};

// Zipf(theta) sampler over [0, n) using the Gray et al. computation (as in YCSB).
// theta=0 degenerates to uniform; theta≈0.99 is the YCSB default "hot keys" skew.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t Next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace demi

#endif  // SRC_COMMON_RANDOM_H_
