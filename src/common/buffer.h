// Reference-counted byte buffers with zero-copy slicing.
//
// Buffer is the unit of data ownership on every I/O path in this project. A Buffer is a
// view [offset, offset+size) into a shared backing Storage. Slicing (e.g. stripping a
// packet header) never copies; the last view to die releases the storage.
//
// The shared refcount is also the mechanism behind the paper's *free-protection* (§4.5):
// while a simulated device DMA holds a Buffer, the application may drop its own reference,
// but the backing store is not recycled until the device completes. The memory manager
// (src/memory) plugs in a custom Storage whose destructor returns memory to a registered
// region.

#ifndef SRC_COMMON_BUFFER_H_
#define SRC_COMMON_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>

namespace demi {

// Abstract backing storage for Buffers. Default implementation owns a heap array;
// the memory manager provides pool-backed subclasses.
class BufferStorage {
 public:
  BufferStorage(std::byte* data, std::size_t capacity) : data_(data), capacity_(capacity) {}
  virtual ~BufferStorage() = default;
  BufferStorage(const BufferStorage&) = delete;
  BufferStorage& operator=(const BufferStorage&) = delete;

  std::byte* data() const { return data_; }
  std::size_t capacity() const { return capacity_; }

  // The storage object whose registration with a device covers this storage. Pool
  // allocations carved out of a large registered arena return the arena here, so a
  // device can validate any sub-buffer against one region registration (§4.5:
  // "register memory regions ... then allocate application memory from those regions").
  virtual const BufferStorage* registration_root() const { return this; }

 protected:
  std::byte* data_;
  std::size_t capacity_;
};

// A shared, sliceable view of bytes. Copying a Buffer is cheap (one refcount bump).
class Buffer {
 public:
  // An empty buffer (size 0, no storage).
  Buffer() = default;

  // Allocates `size` uninitialized bytes on the heap.
  static Buffer Allocate(std::size_t size);

  // Allocates and fills from the given bytes.
  static Buffer CopyOf(std::span<const std::byte> bytes);
  static Buffer CopyOf(std::string_view text);

  // Wraps externally managed storage (used by the memory manager's pools).
  static Buffer FromStorage(std::shared_ptr<BufferStorage> storage, std::size_t offset,
                            std::size_t size);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const std::byte* data() const { return storage_ ? storage_->data() + offset_ : nullptr; }
  std::byte* mutable_data() { return storage_ ? storage_->data() + offset_ : nullptr; }

  std::span<const std::byte> span() const { return {data(), size_}; }
  std::span<std::byte> mutable_span() { return {mutable_data(), size_}; }

  std::string_view AsStringView() const {
    return {reinterpret_cast<const char*>(data()), size_};
  }
  std::string ToString() const { return std::string(AsStringView()); }

  // Returns a sub-view; no copy. Clamps to the buffer bounds.
  Buffer Slice(std::size_t offset, std::size_t length) const;
  Buffer Slice(std::size_t offset) const { return Slice(offset, size_ - offset); }

  // Number of Buffer views (and device holds) sharing the backing storage.
  // Used by free-protection tests and pinned-memory accounting.
  long use_count() const { return storage_.use_count(); }

  // Identity of the backing storage, for aliasing checks in tests.
  const BufferStorage* storage() const { return storage_.get(); }
  std::shared_ptr<BufferStorage> shared_storage() const { return storage_; }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.AsStringView() == b.AsStringView();
  }

 private:
  Buffer(std::shared_ptr<BufferStorage> storage, std::size_t offset, std::size_t size)
      : storage_(std::move(storage)), offset_(offset), size_(size) {}

  std::shared_ptr<BufferStorage> storage_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

// Concatenates buffers into one freshly allocated buffer (copies; used only off the
// zero-copy fast path, e.g. by the POSIX baseline and by tests).
Buffer ConcatCopy(std::span<const Buffer> parts);

}  // namespace demi

#endif  // SRC_COMMON_BUFFER_H_
