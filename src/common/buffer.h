// Reference-counted byte buffers with zero-copy slicing.
//
// Buffer is the unit of data ownership on every I/O path in this project. A Buffer is a
// view [offset, offset+size) into a shared backing Storage. Slicing (e.g. stripping a
// packet header) never copies; the last view to die releases the storage.
//
// The shared refcount is also the mechanism behind the paper's *free-protection* (§4.5):
// while a simulated device DMA holds a Buffer, the application may drop its own reference,
// but the backing store is not recycled until the device completes. The memory manager
// (src/memory) plugs in a custom Storage whose destructor returns memory to a registered
// region.

#ifndef SRC_COMMON_BUFFER_H_
#define SRC_COMMON_BUFFER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace demi {

// Abstract backing storage for Buffers. Default implementation owns a heap array;
// the memory manager provides pool-backed subclasses.
class BufferStorage {
 public:
  BufferStorage(std::byte* data, std::size_t capacity) : data_(data), capacity_(capacity) {}
  virtual ~BufferStorage() = default;
  BufferStorage(const BufferStorage&) = delete;
  BufferStorage& operator=(const BufferStorage&) = delete;

  std::byte* data() const { return data_; }
  std::size_t capacity() const { return capacity_; }

  // The storage object whose registration with a device covers this storage. Pool
  // allocations carved out of a large registered arena return the arena here, so a
  // device can validate any sub-buffer against one region registration (§4.5:
  // "register memory regions ... then allocate application memory from those regions").
  virtual const BufferStorage* registration_root() const { return this; }

 protected:
  std::byte* data_;
  std::size_t capacity_;
};

// A shared, sliceable view of bytes. Copying a Buffer is cheap (one refcount bump).
class Buffer {
 public:
  // An empty buffer (size 0, no storage).
  Buffer() = default;

  // Allocates `size` uninitialized bytes on the heap.
  static Buffer Allocate(std::size_t size);

  // Allocates and fills from the given bytes.
  static Buffer CopyOf(std::span<const std::byte> bytes);
  static Buffer CopyOf(std::string_view text);

  // Wraps externally managed storage (used by the memory manager's pools).
  static Buffer FromStorage(std::shared_ptr<BufferStorage> storage, std::size_t offset,
                            std::size_t size);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const std::byte* data() const { return storage_ ? storage_->data() + offset_ : nullptr; }
  std::byte* mutable_data() { return storage_ ? storage_->data() + offset_ : nullptr; }

  std::span<const std::byte> span() const { return {data(), size_}; }
  std::span<std::byte> mutable_span() { return {mutable_data(), size_}; }

  std::string_view AsStringView() const {
    return {reinterpret_cast<const char*>(data()), size_};
  }
  std::string ToString() const { return std::string(AsStringView()); }

  // Returns a sub-view; no copy. Clamps to the buffer bounds.
  Buffer Slice(std::size_t offset, std::size_t length) const;
  Buffer Slice(std::size_t offset) const { return Slice(offset, size_ - offset); }

  // Number of Buffer views (and device holds) sharing the backing storage.
  // Used by free-protection tests and pinned-memory accounting.
  long use_count() const { return storage_.use_count(); }

  // Identity of the backing storage, for aliasing checks in tests.
  const BufferStorage* storage() const { return storage_.get(); }
  std::shared_ptr<BufferStorage> shared_storage() const { return storage_; }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.AsStringView() == b.AsStringView();
  }

 private:
  Buffer(std::shared_ptr<BufferStorage> storage, std::size_t offset, std::size_t size)
      : storage_(std::move(storage)), offset_(offset), size_(size) {}

  std::shared_ptr<BufferStorage> storage_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

// Concatenates buffers into one freshly allocated buffer (copies; used only off the
// zero-copy fast path, e.g. by the POSIX baseline and by tests).
Buffer ConcatCopy(std::span<const Buffer> parts);

// A scatter-gather chain of Buffers forming one wire frame: protocol headers up front,
// application payload Buffers behind them, each part a refcounted view. The chain is
// how a frame travels from the stack to the simulated NIC without flattening: while the
// device holds the chain, every part's backing storage stays alive (free-protection,
// §4.5), and the app's payload bytes are never copied on the host.
class FrameChain {
 public:
  // Typical chains are [eth+ip hdr, tcp hdr, payload slice(s)] — four inline slots
  // cover the whole TX fast path, so building a chain costs zero heap allocations.
  static constexpr std::size_t kInlineParts = 4;

  FrameChain() = default;
  explicit FrameChain(Buffer single) { Append(std::move(single)); }

  void Append(Buffer part) {
    total_bytes_ += part.size();
    if (!overflow_.empty()) {
      overflow_.push_back(std::move(part));
    } else if (count_ < kInlineParts) {
      inline_[count_++] = std::move(part);
    } else {
      // Spill: from here on all parts live in the vector.
      overflow_.reserve(kInlineParts * 2);
      for (Buffer& b : inline_) {
        overflow_.push_back(std::move(b));
      }
      overflow_.push_back(std::move(part));
    }
  }

  // Total bytes across all parts (the wire size of the frame).
  std::size_t size() const { return total_bytes_; }
  bool empty() const { return total_bytes_ == 0; }
  std::size_t part_count() const {
    return overflow_.empty() ? count_ : overflow_.size();
  }
  std::span<const Buffer> parts_span() const {
    return overflow_.empty() ? std::span<const Buffer>(inline_.data(), count_)
                             : std::span<const Buffer>(overflow_);
  }
  std::span<const Buffer> parts() const { return parts_span(); }

  // First part — by convention the (mutable) link-layer header, which the ARP
  // resolver may patch in place while a frame is parked.
  Buffer& front() { return overflow_.empty() ? inline_.front() : overflow_.front(); }
  const Buffer& front() const {
    return overflow_.empty() ? inline_.front() : overflow_.front();
  }

  // Flattens into one contiguous Buffer. A single-part chain returns its part
  // unchanged (no copy); multi-part chains copy once. On the TX path this runs at
  // the *device* (modeling NIC scatter-gather DMA), never on the host CPU.
  Buffer Gather() const;

 private:
  std::array<Buffer, kInlineParts> inline_;
  std::size_t count_ = 0;
  std::vector<Buffer> overflow_;
  std::size_t total_bytes_ = 0;
};

}  // namespace demi

#endif  // SRC_COMMON_BUFFER_H_
