#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "src/common/logging.h"

namespace demi {

namespace {
constexpr std::size_t kSubBuckets = 64;  // 2^kSubBucketBits
constexpr std::size_t kNumBuckets = kSubBuckets + 58 * kSubBuckets;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::BucketFor(std::uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<std::size_t>(value);
  }
  const int shift = std::bit_width(value) - 7;
  const std::size_t sub = static_cast<std::size_t>(value >> shift) - kSubBuckets;
  return kSubBuckets + static_cast<std::size_t>(shift) * kSubBuckets + sub;
}

std::uint64_t Histogram::BucketUpperBound(std::size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  const std::size_t shift = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  return ((kSubBuckets + sub + 1) << shift) - 1;
}

void Histogram::Record(std::uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(std::uint64_t value, std::uint64_t count) {
  if (count == 0) {
    return;
  }
  buckets_[BucketFor(value)] += count;
  count_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  DEMI_CHECK(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram Histogram::DiffSince(const Histogram& earlier) const {
  DEMI_CHECK(buckets_.size() == earlier.buckets_.size());
  DEMI_CHECK(count_ >= earlier.count_);
  Histogram out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    DEMI_CHECK(buckets_[i] >= earlier.buckets_[i]);
    const std::uint64_t n = buckets_[i] - earlier.buckets_[i];
    out.buckets_[i] = n;
    if (n == 0) {
      continue;
    }
    out.count_ += n;
    // Bucket lower bound: 0 for the first linear bucket, else previous upper + 1.
    const std::uint64_t lo = i == 0 ? 0 : BucketUpperBound(i - 1) + 1;
    out.min_ = std::min(out.min_, lo);
    out.max_ = std::max(out.max_, BucketUpperBound(i));
  }
  out.sum_ = sum_ - earlier.sum_;
  // The lifetime extrema bound the window extrema from both sides; use them to
  // tighten the bucket-derived estimates.
  if (out.count_ > 0) {
    out.max_ = std::min(out.max_, max_);
    out.min_ = std::max(out.min_, min());
  }
  return out;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::string Histogram::Summary(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f%s p50=%llu%s p99=%llu%s p99.9=%llu%s max=%llu%s",
                static_cast<unsigned long long>(count_), mean(), unit.c_str(),
                static_cast<unsigned long long>(P50()), unit.c_str(),
                static_cast<unsigned long long>(P99()), unit.c_str(),
                static_cast<unsigned long long>(P999()), unit.c_str(),
                static_cast<unsigned long long>(max()), unit.c_str());
  return buf;
}

}  // namespace demi
