// Result<T>: a Status or a value, in the style of absl::StatusOr / std::expected.

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace demi {

// Holds either an OK status and a T, or a non-OK status and no value.
//
// Usage:
//   Result<Connection*> r = stack.Connect(remote);
//   if (!r.ok()) return r.status();
//   Connection* conn = r.value();
template <typename T>
class Result {
 public:
  // Implicit construction from a value (success) or a status (failure) keeps call
  // sites terse: `return conn;` or `return InvalidArgument("...")`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }
  Result(ErrorCode code) : status_(code) {  // NOLINT(google-explicit-constructor)
    assert(code != ErrorCode::kOk);
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

  // Value accessors; callers must check ok() first.
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors to the caller: `RETURN_IF_ERROR(DoThing());`
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::demi::Status status_macro_tmp__ = (expr); \
    if (!status_macro_tmp__.ok()) {             \
      return status_macro_tmp__;                \
    }                                           \
  } while (false)

// Unwraps a Result into `lhs`, propagating errors: `ASSIGN_OR_RETURN(auto v, Compute());`
#define ASSIGN_OR_RETURN(lhs, expr)        \
  auto RESULT_MACRO_CONCAT__(result_tmp__, __LINE__) = (expr); \
  if (!RESULT_MACRO_CONCAT__(result_tmp__, __LINE__).ok()) {   \
    return RESULT_MACRO_CONCAT__(result_tmp__, __LINE__).status(); \
  }                                        \
  lhs = std::move(RESULT_MACRO_CONCAT__(result_tmp__, __LINE__)).value()

#define RESULT_MACRO_CONCAT_INNER__(a, b) a##b
#define RESULT_MACRO_CONCAT__(a, b) RESULT_MACRO_CONCAT_INNER__(a, b)

}  // namespace demi

#endif  // SRC_COMMON_RESULT_H_
