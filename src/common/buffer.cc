#include "src/common/buffer.h"

#include <algorithm>

#include "src/common/logging.h"

namespace demi {

namespace {

// Heap-backed storage: header and payload in one allocation would be nicer, but clarity
// wins here; this is not the pooled fast path.
class HeapStorage final : public BufferStorage {
 public:
  explicit HeapStorage(std::size_t capacity)
      : BufferStorage(new std::byte[capacity], capacity) {}
  ~HeapStorage() override { delete[] data_; }
};

}  // namespace

Buffer Buffer::Allocate(std::size_t size) {
  if (size == 0) {
    return Buffer();
  }
  return Buffer(std::make_shared<HeapStorage>(size), 0, size);
}

Buffer Buffer::CopyOf(std::span<const std::byte> bytes) {
  Buffer buf = Allocate(bytes.size());
  if (!bytes.empty()) {
    std::memcpy(buf.mutable_data(), bytes.data(), bytes.size());
  }
  return buf;
}

Buffer Buffer::CopyOf(std::string_view text) {
  return CopyOf(std::as_bytes(std::span<const char>(text.data(), text.size())));
}

Buffer Buffer::FromStorage(std::shared_ptr<BufferStorage> storage, std::size_t offset,
                           std::size_t size) {
  DEMI_CHECK(storage != nullptr);
  DEMI_CHECK(offset + size <= storage->capacity());
  return Buffer(std::move(storage), offset, size);
}

Buffer Buffer::Slice(std::size_t offset, std::size_t length) const {
  if (offset >= size_) {
    return Buffer();
  }
  const std::size_t len = std::min(length, size_ - offset);
  return Buffer(storage_, offset_ + offset, len);
}

Buffer ConcatCopy(std::span<const Buffer> parts) {
  std::size_t total = 0;
  for (const Buffer& p : parts) {
    total += p.size();
  }
  Buffer out = Buffer::Allocate(total);
  std::size_t at = 0;
  for (const Buffer& p : parts) {
    if (!p.empty()) {
      std::memcpy(out.mutable_data() + at, p.data(), p.size());
      at += p.size();
    }
  }
  return out;
}

Buffer FrameChain::Gather() const {
  if (part_count() == 1) {
    return front();
  }
  return ConcatCopy(parts_span());
}

}  // namespace demi
