// Fixed-capacity FIFO ring, the shape of every hardware descriptor ring in src/hw.
//
// Single-threaded by design (the whole simulation is polled on one core, like a DPDK
// poll-mode driver thread); we keep the power-of-two masking idiom of real descriptor
// rings so the bench microcosts are representative.

#ifndef SRC_COMMON_RING_BUFFER_H_
#define SRC_COMMON_RING_BUFFER_H_

#include <bit>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace demi {

// FIFO ring of T with capacity rounded up to a power of two.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  std::size_t capacity() const { return mask_ + 1; }
  std::size_t size() const { return head_ - tail_; }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity(); }

  // Enqueues; returns false when the ring is full (the hardware analogue is a TX
  // descriptor-ring overflow, which callers must handle, not assume away).
  [[nodiscard]] bool Push(T value) {
    if (full()) {
      return false;
    }
    slots_[head_ & mask_] = std::move(value);
    ++head_;
    return true;
  }

  // Dequeues the oldest element, or nullopt when empty.
  std::optional<T> Pop() {
    if (empty()) {
      return std::nullopt;
    }
    T out = std::move(slots_[tail_ & mask_]);
    ++tail_;
    return out;
  }

  // Peeks at the oldest element without consuming it.
  const T* Front() const { return empty() ? nullptr : &slots_[tail_ & mask_]; }
  T* Front() { return empty() ? nullptr : &slots_[tail_ & mask_]; }

  void Clear() {
    head_ = 0;
    tail_ = 0;
    for (T& slot : slots_) {
      slot = T{};
    }
  }

 private:
  std::size_t mask_;
  std::vector<T> slots_;
  std::size_t head_ = 0;  // next write position
  std::size_t tail_ = 0;  // next read position
};

}  // namespace demi

#endif  // SRC_COMMON_RING_BUFFER_H_
