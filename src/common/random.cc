#include "src/common/random.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace demi {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  DEMI_CHECK(bound > 0);
  // Rejection-free multiply-shift; bias is negligible for bound << 2^64.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

bool Rng::NextBool(double p) { return NextDouble() < std::clamp(p, 0.0, 1.0); }

double Rng::NextExponential(double mean) {
  DEMI_CHECK(mean > 0.0);
  double u = NextDouble();
  if (u >= 1.0) {
    u = 0.9999999999999999;
  }
  return -mean * std::log1p(-u);
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  DEMI_CHECK(n > 0);
  DEMI_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(std::min<std::uint64_t>(n, 2), theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfGenerator::Next(Rng& rng) {
  if (theta_ == 0.0) {
    return rng.NextBelow(n_);
  }
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

}  // namespace demi
