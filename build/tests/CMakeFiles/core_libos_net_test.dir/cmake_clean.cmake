file(REMOVE_RECURSE
  "CMakeFiles/core_libos_net_test.dir/core_libos_net_test.cc.o"
  "CMakeFiles/core_libos_net_test.dir/core_libos_net_test.cc.o.d"
  "core_libos_net_test"
  "core_libos_net_test.pdb"
  "core_libos_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_libos_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
