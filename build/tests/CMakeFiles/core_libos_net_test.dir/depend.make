# Empty dependencies file for core_libos_net_test.
# This may be replaced when dependencies are built.
