file(REMOVE_RECURSE
  "CMakeFiles/api_edge_test.dir/api_edge_test.cc.o"
  "CMakeFiles/api_edge_test.dir/api_edge_test.cc.o.d"
  "api_edge_test"
  "api_edge_test.pdb"
  "api_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
