# Empty compiler generated dependencies file for core_catfish_test.
# This may be replaced when dependencies are built.
