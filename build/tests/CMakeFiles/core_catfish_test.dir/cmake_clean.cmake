file(REMOVE_RECURSE
  "CMakeFiles/core_catfish_test.dir/core_catfish_test.cc.o"
  "CMakeFiles/core_catfish_test.dir/core_catfish_test.cc.o.d"
  "core_catfish_test"
  "core_catfish_test.pdb"
  "core_catfish_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_catfish_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
