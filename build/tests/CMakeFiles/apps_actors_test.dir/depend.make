# Empty dependencies file for apps_actors_test.
# This may be replaced when dependencies are built.
