file(REMOVE_RECURSE
  "CMakeFiles/apps_actors_test.dir/apps_actors_test.cc.o"
  "CMakeFiles/apps_actors_test.dir/apps_actors_test.cc.o.d"
  "apps_actors_test"
  "apps_actors_test.pdb"
  "apps_actors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_actors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
