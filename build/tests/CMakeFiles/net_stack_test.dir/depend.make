# Empty dependencies file for net_stack_test.
# This may be replaced when dependencies are built.
