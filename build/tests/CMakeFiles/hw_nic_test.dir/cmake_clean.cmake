file(REMOVE_RECURSE
  "CMakeFiles/hw_nic_test.dir/hw_nic_test.cc.o"
  "CMakeFiles/hw_nic_test.dir/hw_nic_test.cc.o.d"
  "hw_nic_test"
  "hw_nic_test.pdb"
  "hw_nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
