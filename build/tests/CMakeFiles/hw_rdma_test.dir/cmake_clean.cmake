file(REMOVE_RECURSE
  "CMakeFiles/hw_rdma_test.dir/hw_rdma_test.cc.o"
  "CMakeFiles/hw_rdma_test.dir/hw_rdma_test.cc.o.d"
  "hw_rdma_test"
  "hw_rdma_test.pdb"
  "hw_rdma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_rdma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
