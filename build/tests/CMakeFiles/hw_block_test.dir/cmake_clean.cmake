file(REMOVE_RECURSE
  "CMakeFiles/hw_block_test.dir/hw_block_test.cc.o"
  "CMakeFiles/hw_block_test.dir/hw_block_test.cc.o.d"
  "hw_block_test"
  "hw_block_test.pdb"
  "hw_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
