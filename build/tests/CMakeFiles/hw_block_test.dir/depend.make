# Empty dependencies file for hw_block_test.
# This may be replaced when dependencies are built.
