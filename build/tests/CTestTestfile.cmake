# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_nic_test[1]_include.cmake")
include("/root/repo/build/tests/hw_rdma_test[1]_include.cmake")
include("/root/repo/build/tests/hw_block_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/net_packet_test[1]_include.cmake")
include("/root/repo/build/tests/net_framing_test[1]_include.cmake")
include("/root/repo/build/tests/net_tcp_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/core_queue_ops_test[1]_include.cmake")
include("/root/repo/build/tests/core_libos_net_test[1]_include.cmake")
include("/root/repo/build/tests/core_catfish_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/apps_actors_test[1]_include.cmake")
include("/root/repo/build/tests/core_event_loop_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/net_stack_test[1]_include.cmake")
include("/root/repo/build/tests/api_edge_test[1]_include.cmake")
