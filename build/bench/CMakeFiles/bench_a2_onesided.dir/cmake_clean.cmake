file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_onesided.dir/bench_a2_onesided.cc.o"
  "CMakeFiles/bench_a2_onesided.dir/bench_a2_onesided.cc.o.d"
  "bench_a2_onesided"
  "bench_a2_onesided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_onesided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
