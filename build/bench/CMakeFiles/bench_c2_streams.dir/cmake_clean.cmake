file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_streams.dir/bench_c2_streams.cc.o"
  "CMakeFiles/bench_c2_streams.dir/bench_c2_streams.cc.o.d"
  "bench_c2_streams"
  "bench_c2_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
