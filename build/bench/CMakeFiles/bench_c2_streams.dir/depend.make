# Empty dependencies file for bench_c2_streams.
# This may be replaced when dependencies are built.
