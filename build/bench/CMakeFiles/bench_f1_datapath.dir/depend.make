# Empty dependencies file for bench_f1_datapath.
# This may be replaced when dependencies are built.
