file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_datapath.dir/bench_f1_datapath.cc.o"
  "CMakeFiles/bench_f1_datapath.dir/bench_f1_datapath.cc.o.d"
  "bench_f1_datapath"
  "bench_f1_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
