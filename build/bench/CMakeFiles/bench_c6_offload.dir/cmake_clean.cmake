file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_offload.dir/bench_c6_offload.cc.o"
  "CMakeFiles/bench_c6_offload.dir/bench_c6_offload.cc.o.d"
  "bench_c6_offload"
  "bench_c6_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
