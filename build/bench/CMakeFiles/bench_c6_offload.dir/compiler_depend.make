# Empty compiler generated dependencies file for bench_c6_offload.
# This may be replaced when dependencies are built.
