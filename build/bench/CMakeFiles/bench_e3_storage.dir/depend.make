# Empty dependencies file for bench_e3_storage.
# This may be replaced when dependencies are built.
