file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_storage.dir/bench_e3_storage.cc.o"
  "CMakeFiles/bench_e3_storage.dir/bench_e3_storage.cc.o.d"
  "bench_e3_storage"
  "bench_e3_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
