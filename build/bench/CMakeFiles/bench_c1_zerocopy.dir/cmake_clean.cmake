file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_zerocopy.dir/bench_c1_zerocopy.cc.o"
  "CMakeFiles/bench_c1_zerocopy.dir/bench_c1_zerocopy.cc.o.d"
  "bench_c1_zerocopy"
  "bench_c1_zerocopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_zerocopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
