file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_stacks.dir/bench_c5_stacks.cc.o"
  "CMakeFiles/bench_c5_stacks.dir/bench_c5_stacks.cc.o.d"
  "bench_c5_stacks"
  "bench_c5_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
