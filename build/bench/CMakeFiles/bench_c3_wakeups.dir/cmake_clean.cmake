file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_wakeups.dir/bench_c3_wakeups.cc.o"
  "CMakeFiles/bench_c3_wakeups.dir/bench_c3_wakeups.cc.o.d"
  "bench_c3_wakeups"
  "bench_c3_wakeups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_wakeups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
