# Empty dependencies file for bench_c3_wakeups.
# This may be replaced when dependencies are built.
