file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_syscalls.dir/bench_f3_syscalls.cc.o"
  "CMakeFiles/bench_f3_syscalls.dir/bench_f3_syscalls.cc.o.d"
  "bench_f3_syscalls"
  "bench_f3_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
