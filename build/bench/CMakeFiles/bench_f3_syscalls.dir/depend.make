# Empty dependencies file for bench_f3_syscalls.
# This may be replaced when dependencies are built.
