# Empty compiler generated dependencies file for bench_t1_taxonomy.
# This may be replaced when dependencies are built.
