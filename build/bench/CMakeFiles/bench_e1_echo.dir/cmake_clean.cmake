file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_echo.dir/bench_e1_echo.cc.o"
  "CMakeFiles/bench_e1_echo.dir/bench_e1_echo.cc.o.d"
  "bench_e1_echo"
  "bench_e1_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
