# Empty compiler generated dependencies file for bench_e1_echo.
# This may be replaced when dependencies are built.
