file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_controlpath.dir/bench_f2_controlpath.cc.o"
  "CMakeFiles/bench_f2_controlpath.dir/bench_f2_controlpath.cc.o.d"
  "bench_f2_controlpath"
  "bench_f2_controlpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_controlpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
