# Empty dependencies file for bench_f2_controlpath.
# This may be replaced when dependencies are built.
