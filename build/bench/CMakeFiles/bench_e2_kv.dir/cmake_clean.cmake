file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_kv.dir/bench_e2_kv.cc.o"
  "CMakeFiles/bench_e2_kv.dir/bench_e2_kv.cc.o.d"
  "bench_e2_kv"
  "bench_e2_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
