# Empty compiler generated dependencies file for bench_e2_kv.
# This may be replaced when dependencies are built.
