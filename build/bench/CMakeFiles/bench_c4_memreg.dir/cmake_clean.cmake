file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_memreg.dir/bench_c4_memreg.cc.o"
  "CMakeFiles/bench_c4_memreg.dir/bench_c4_memreg.cc.o.d"
  "bench_c4_memreg"
  "bench_c4_memreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_memreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
