# Empty dependencies file for bench_c4_memreg.
# This may be replaced when dependencies are built.
