# Empty dependencies file for file_log.
# This may be replaced when dependencies are built.
