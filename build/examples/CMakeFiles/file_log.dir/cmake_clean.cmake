file(REMOVE_RECURSE
  "CMakeFiles/file_log.dir/file_log.cpp.o"
  "CMakeFiles/file_log.dir/file_log.cpp.o.d"
  "file_log"
  "file_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
