
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/kv_server.cpp" "examples/CMakeFiles/kv_server.dir/kv_server.cpp.o" "gcc" "examples/CMakeFiles/kv_server.dir/kv_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/demikernel.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/demi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/demi_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/demi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/demi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/demi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/demi_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/demi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
