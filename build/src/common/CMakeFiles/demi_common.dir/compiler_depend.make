# Empty compiler generated dependencies file for demi_common.
# This may be replaced when dependencies are built.
