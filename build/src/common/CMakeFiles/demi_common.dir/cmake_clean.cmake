file(REMOVE_RECURSE
  "CMakeFiles/demi_common.dir/buffer.cc.o"
  "CMakeFiles/demi_common.dir/buffer.cc.o.d"
  "CMakeFiles/demi_common.dir/checksum.cc.o"
  "CMakeFiles/demi_common.dir/checksum.cc.o.d"
  "CMakeFiles/demi_common.dir/histogram.cc.o"
  "CMakeFiles/demi_common.dir/histogram.cc.o.d"
  "CMakeFiles/demi_common.dir/logging.cc.o"
  "CMakeFiles/demi_common.dir/logging.cc.o.d"
  "CMakeFiles/demi_common.dir/random.cc.o"
  "CMakeFiles/demi_common.dir/random.cc.o.d"
  "CMakeFiles/demi_common.dir/status.cc.o"
  "CMakeFiles/demi_common.dir/status.cc.o.d"
  "libdemi_common.a"
  "libdemi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
