file(REMOVE_RECURSE
  "libdemi_common.a"
)
