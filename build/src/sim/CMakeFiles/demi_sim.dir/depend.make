# Empty dependencies file for demi_sim.
# This may be replaced when dependencies are built.
