file(REMOVE_RECURSE
  "libdemi_sim.a"
)
