file(REMOVE_RECURSE
  "CMakeFiles/demi_sim.dir/cost_model.cc.o"
  "CMakeFiles/demi_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/demi_sim.dir/counters.cc.o"
  "CMakeFiles/demi_sim.dir/counters.cc.o.d"
  "CMakeFiles/demi_sim.dir/simulation.cc.o"
  "CMakeFiles/demi_sim.dir/simulation.cc.o.d"
  "libdemi_sim.a"
  "libdemi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
