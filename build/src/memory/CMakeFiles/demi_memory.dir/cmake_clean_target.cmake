file(REMOVE_RECURSE
  "libdemi_memory.a"
)
