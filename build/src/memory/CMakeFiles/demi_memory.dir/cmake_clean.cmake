file(REMOVE_RECURSE
  "CMakeFiles/demi_memory.dir/memory_manager.cc.o"
  "CMakeFiles/demi_memory.dir/memory_manager.cc.o.d"
  "libdemi_memory.a"
  "libdemi_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demi_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
