
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/memory_manager.cc" "src/memory/CMakeFiles/demi_memory.dir/memory_manager.cc.o" "gcc" "src/memory/CMakeFiles/demi_memory.dir/memory_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/demi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
