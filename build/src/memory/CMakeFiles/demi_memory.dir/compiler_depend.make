# Empty compiler generated dependencies file for demi_memory.
# This may be replaced when dependencies are built.
