file(REMOVE_RECURSE
  "CMakeFiles/demi_apps.dir/actors.cc.o"
  "CMakeFiles/demi_apps.dir/actors.cc.o.d"
  "CMakeFiles/demi_apps.dir/kv.cc.o"
  "CMakeFiles/demi_apps.dir/kv.cc.o.d"
  "CMakeFiles/demi_apps.dir/onesided_kv.cc.o"
  "CMakeFiles/demi_apps.dir/onesided_kv.cc.o.d"
  "CMakeFiles/demi_apps.dir/resp.cc.o"
  "CMakeFiles/demi_apps.dir/resp.cc.o.d"
  "CMakeFiles/demi_apps.dir/workload.cc.o"
  "CMakeFiles/demi_apps.dir/workload.cc.o.d"
  "libdemi_apps.a"
  "libdemi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
