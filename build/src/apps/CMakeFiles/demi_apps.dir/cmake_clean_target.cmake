file(REMOVE_RECURSE
  "libdemi_apps.a"
)
