# Empty compiler generated dependencies file for demi_apps.
# This may be replaced when dependencies are built.
