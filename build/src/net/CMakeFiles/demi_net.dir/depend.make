# Empty dependencies file for demi_net.
# This may be replaced when dependencies are built.
