file(REMOVE_RECURSE
  "libdemi_net.a"
)
