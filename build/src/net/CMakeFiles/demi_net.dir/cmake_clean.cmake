file(REMOVE_RECURSE
  "CMakeFiles/demi_net.dir/framing.cc.o"
  "CMakeFiles/demi_net.dir/framing.cc.o.d"
  "CMakeFiles/demi_net.dir/packet.cc.o"
  "CMakeFiles/demi_net.dir/packet.cc.o.d"
  "CMakeFiles/demi_net.dir/stack.cc.o"
  "CMakeFiles/demi_net.dir/stack.cc.o.d"
  "CMakeFiles/demi_net.dir/tcp.cc.o"
  "CMakeFiles/demi_net.dir/tcp.cc.o.d"
  "libdemi_net.a"
  "libdemi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
