file(REMOVE_RECURSE
  "libdemi_hw.a"
)
