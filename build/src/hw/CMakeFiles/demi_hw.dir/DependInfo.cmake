
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/block_device.cc" "src/hw/CMakeFiles/demi_hw.dir/block_device.cc.o" "gcc" "src/hw/CMakeFiles/demi_hw.dir/block_device.cc.o.d"
  "/root/repo/src/hw/fabric.cc" "src/hw/CMakeFiles/demi_hw.dir/fabric.cc.o" "gcc" "src/hw/CMakeFiles/demi_hw.dir/fabric.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/hw/CMakeFiles/demi_hw.dir/nic.cc.o" "gcc" "src/hw/CMakeFiles/demi_hw.dir/nic.cc.o.d"
  "/root/repo/src/hw/rdma.cc" "src/hw/CMakeFiles/demi_hw.dir/rdma.cc.o" "gcc" "src/hw/CMakeFiles/demi_hw.dir/rdma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/demi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
