# Empty compiler generated dependencies file for demi_hw.
# This may be replaced when dependencies are built.
