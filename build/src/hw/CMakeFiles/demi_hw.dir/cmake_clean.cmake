file(REMOVE_RECURSE
  "CMakeFiles/demi_hw.dir/block_device.cc.o"
  "CMakeFiles/demi_hw.dir/block_device.cc.o.d"
  "CMakeFiles/demi_hw.dir/fabric.cc.o"
  "CMakeFiles/demi_hw.dir/fabric.cc.o.d"
  "CMakeFiles/demi_hw.dir/nic.cc.o"
  "CMakeFiles/demi_hw.dir/nic.cc.o.d"
  "CMakeFiles/demi_hw.dir/rdma.cc.o"
  "CMakeFiles/demi_hw.dir/rdma.cc.o.d"
  "libdemi_hw.a"
  "libdemi_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demi_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
