file(REMOVE_RECURSE
  "CMakeFiles/demi_kernel.dir/kernel.cc.o"
  "CMakeFiles/demi_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/demi_kernel.dir/vfs.cc.o"
  "CMakeFiles/demi_kernel.dir/vfs.cc.o.d"
  "libdemi_kernel.a"
  "libdemi_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demi_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
