file(REMOVE_RECURSE
  "libdemi_kernel.a"
)
