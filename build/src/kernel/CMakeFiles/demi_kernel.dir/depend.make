# Empty dependencies file for demi_kernel.
# This may be replaced when dependencies are built.
