file(REMOVE_RECURSE
  "CMakeFiles/demikernel.dir/catfish.cc.o"
  "CMakeFiles/demikernel.dir/catfish.cc.o.d"
  "CMakeFiles/demikernel.dir/catmint.cc.o"
  "CMakeFiles/demikernel.dir/catmint.cc.o.d"
  "CMakeFiles/demikernel.dir/catnap.cc.o"
  "CMakeFiles/demikernel.dir/catnap.cc.o.d"
  "CMakeFiles/demikernel.dir/catnip.cc.o"
  "CMakeFiles/demikernel.dir/catnip.cc.o.d"
  "CMakeFiles/demikernel.dir/event_loop.cc.o"
  "CMakeFiles/demikernel.dir/event_loop.cc.o.d"
  "CMakeFiles/demikernel.dir/harness.cc.o"
  "CMakeFiles/demikernel.dir/harness.cc.o.d"
  "CMakeFiles/demikernel.dir/libos.cc.o"
  "CMakeFiles/demikernel.dir/libos.cc.o.d"
  "CMakeFiles/demikernel.dir/queue_ops.cc.o"
  "CMakeFiles/demikernel.dir/queue_ops.cc.o.d"
  "libdemikernel.a"
  "libdemikernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demikernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
