file(REMOVE_RECURSE
  "libdemikernel.a"
)
