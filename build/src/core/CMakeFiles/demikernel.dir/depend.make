# Empty dependencies file for demikernel.
# This may be replaced when dependencies are built.
