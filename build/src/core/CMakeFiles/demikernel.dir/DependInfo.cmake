
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/catfish.cc" "src/core/CMakeFiles/demikernel.dir/catfish.cc.o" "gcc" "src/core/CMakeFiles/demikernel.dir/catfish.cc.o.d"
  "/root/repo/src/core/catmint.cc" "src/core/CMakeFiles/demikernel.dir/catmint.cc.o" "gcc" "src/core/CMakeFiles/demikernel.dir/catmint.cc.o.d"
  "/root/repo/src/core/catnap.cc" "src/core/CMakeFiles/demikernel.dir/catnap.cc.o" "gcc" "src/core/CMakeFiles/demikernel.dir/catnap.cc.o.d"
  "/root/repo/src/core/catnip.cc" "src/core/CMakeFiles/demikernel.dir/catnip.cc.o" "gcc" "src/core/CMakeFiles/demikernel.dir/catnip.cc.o.d"
  "/root/repo/src/core/event_loop.cc" "src/core/CMakeFiles/demikernel.dir/event_loop.cc.o" "gcc" "src/core/CMakeFiles/demikernel.dir/event_loop.cc.o.d"
  "/root/repo/src/core/harness.cc" "src/core/CMakeFiles/demikernel.dir/harness.cc.o" "gcc" "src/core/CMakeFiles/demikernel.dir/harness.cc.o.d"
  "/root/repo/src/core/libos.cc" "src/core/CMakeFiles/demikernel.dir/libos.cc.o" "gcc" "src/core/CMakeFiles/demikernel.dir/libos.cc.o.d"
  "/root/repo/src/core/queue_ops.cc" "src/core/CMakeFiles/demikernel.dir/queue_ops.cc.o" "gcc" "src/core/CMakeFiles/demikernel.dir/queue_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/demi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/demi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/demi_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/demi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/demi_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
