# Empty dependencies file for demi_baseline.
# This may be replaced when dependencies are built.
