file(REMOVE_RECURSE
  "CMakeFiles/demi_baseline.dir/mtcp.cc.o"
  "CMakeFiles/demi_baseline.dir/mtcp.cc.o.d"
  "libdemi_baseline.a"
  "libdemi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
