file(REMOVE_RECURSE
  "libdemi_baseline.a"
)
