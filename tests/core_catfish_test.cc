// Tests for the Catfish storage libOS: durable push, in-order replay, close/reopen
// persistence, CRC validation, extent exhaustion, and the push-durability contract.

#include <gtest/gtest.h>

#include <string>

#include "src/core/harness.h"

namespace demi {
namespace {

SgArray Sga(const std::string& s) { return SgArray::FromString(s); }

struct CatfishRig {
  CatfishRig() : h() {
    HostOptions opts;
    opts.with_nic = false;
    opts.with_kernel = false;
    opts.with_block_device = true;
    host = &h.AddHost("storage", "10.0.0.1", opts);
    libos = &h.Catfish(*host);
  }
  TestHarness h;
  TestHarness::Host* host;
  CatfishLibOS* libos;
};

TEST(CatfishTest, PushThenPopRoundTrip) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/a");
  ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("record one"))->status.ok());
  ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("record two"))->status.ok());
  EXPECT_EQ(rig.libos->BlockingPop(qd)->sga.ToString(), "record one");
  EXPECT_EQ(rig.libos->BlockingPop(qd)->sga.ToString(), "record two");
}

TEST(CatfishTest, PopAtEndOfLogReturnsEof) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/empty");
  auto r = rig.libos->BlockingPop(qd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kEndOfFile);
}

TEST(CatfishTest, OpenMissingFileFails) {
  CatfishRig rig;
  EXPECT_EQ(rig.libos->Open("/does/not/exist").code(), ErrorCode::kNotFound);
}

TEST(CatfishTest, DataSurvivesCloseAndReopen) {
  CatfishRig rig;
  {
    const QDesc qd = *rig.libos->Creat("/log/persist");
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("entry " + std::to_string(i)))->status.ok());
    }
    ASSERT_TRUE(rig.libos->Close(qd).ok());
  }
  // Reopen: the new queue has a cold cache; records must replay from the device.
  const QDesc qd = *rig.libos->Open("/log/persist");
  for (int i = 0; i < 10; ++i) {
    auto r = rig.libos->BlockingPop(qd);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->status.ok()) << r->status;
    EXPECT_EQ(r->sga.ToString(), "entry " + std::to_string(i));
  }
  EXPECT_EQ(rig.libos->BlockingPop(qd)->status.code(), ErrorCode::kEndOfFile);
}

TEST(CatfishTest, PushIsDurableWhenCompleted) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/durable");
  const std::uint64_t nvme_before = rig.host->cpu->counters().Get(Counter::kNvmeOps);
  ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("must hit the device"))->status.ok());
  // Completion implies at least one device write happened (durability contract).
  EXPECT_GT(rig.host->cpu->counters().Get(Counter::kNvmeOps), nvme_before);
}

TEST(CatfishTest, SingleSegmentPushCopiesNoBytes) {
  // kBytesCopied regression guard for the write path: a one-segment push flattens
  // by reference, so the whole journey to the device is copy-free.
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/zerocopy");
  const std::uint64_t before = rig.host->cpu->counters().Get(Counter::kBytesCopied);
  ASSERT_TRUE(
      rig.libos->BlockingPush(qd, Sga("one segment, zero copies"))->status.ok());
  EXPECT_EQ(rig.host->cpu->counters().Get(Counter::kBytesCopied), before);
}

TEST(CatfishTest, MultiSegmentPushChargesExactlyOneFlattenCopy) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/scattered");
  SgArray sga;
  sga.Append(Buffer::CopyOf(std::string(300, 'a')));
  sga.Append(Buffer::CopyOf(std::string(212, 'b')));
  const std::uint64_t before = rig.host->cpu->counters().Get(Counter::kBytesCopied);
  ASSERT_TRUE(rig.libos->BlockingPush(qd, sga)->status.ok());
  // Gathering the segments is the only copy on the path.
  EXPECT_EQ(rig.host->cpu->counters().Get(Counter::kBytesCopied), before + 512);
  EXPECT_EQ(rig.libos->BlockingPop(qd)->sga.ToString(),
            std::string(300, 'a') + std::string(212, 'b'));
}

TEST(CatfishTest, LargeRecordsSpanBlocks) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/big");
  std::string big(3 * 4096 + 77, 'B');
  big[0] = 'S';
  big.back() = 'E';
  ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga(big))->status.ok());
  ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("after big"))->status.ok());
  EXPECT_EQ(rig.libos->BlockingPop(qd)->sga.ToString(), big);
  EXPECT_EQ(rig.libos->BlockingPop(qd)->sga.ToString(), "after big");
}

TEST(CatfishTest, ManySmallRecordsReplayInOrderAfterReopen) {
  CatfishRig rig;
  {
    const QDesc qd = *rig.libos->Creat("/log/many");
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("r" + std::to_string(i)))->status.ok());
    }
    ASSERT_TRUE(rig.libos->Close(qd).ok());
  }
  const QDesc qd = *rig.libos->Open("/log/many");
  for (int i = 0; i < 200; ++i) {
    auto r = rig.libos->BlockingPop(qd);
    ASSERT_TRUE(r.ok() && r->status.ok());
    ASSERT_EQ(r->sga.ToString(), "r" + std::to_string(i));
  }
}

TEST(CatfishTest, TwoFilesAreIndependent) {
  CatfishRig rig;
  const QDesc a = *rig.libos->Creat("/log/a");
  const QDesc b = *rig.libos->Creat("/log/b");
  ASSERT_TRUE(rig.libos->BlockingPush(a, Sga("for a"))->status.ok());
  ASSERT_TRUE(rig.libos->BlockingPush(b, Sga("for b"))->status.ok());
  EXPECT_EQ(rig.libos->BlockingPop(b)->sga.ToString(), "for b");
  EXPECT_EQ(rig.libos->BlockingPop(a)->sga.ToString(), "for a");
}

TEST(CatfishTest, ExtentExhaustionSurfacesError) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/full");
  // Extent is 16 MiB; pushes of 1 MiB (the max slot) fill it quickly.
  std::string megabyte(1 << 20, 'f');
  Status status = OkStatus();
  int pushed = 0;
  while (status.ok() && pushed < 64) {
    auto token = rig.libos->Push(qd, Sga(megabyte));
    if (!token.ok()) {
      status = token.status();
      break;
    }
    auto r = rig.libos->Wait(*token, 60 * kSecond);
    ASSERT_TRUE(r.ok());
    status = r->status;
    ++pushed;
  }
  EXPECT_EQ(status.code(), ErrorCode::kResourceExhausted);
  EXPECT_GE(pushed, 14);  // most of the 16 MiB extent was usable
}

TEST(CatfishTest, StorageLatencyFollowsDeviceModel) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/latency");
  const TimeNs start = rig.h.sim().now();
  ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("timed"))->status.ok());
  const TimeNs elapsed = rig.h.sim().now() - start;
  // One 4 KiB device write dominates; no kernel, no copies.
  const TimeNs device = rig.h.sim().cost().NvmeNs(true, 4096);
  EXPECT_GE(elapsed, device);
  EXPECT_LT(elapsed, device + 10 * kMicrosecond);
}

TEST(CatfishTest, NoSyscallsOnTheStoragePath) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/nosys");
  const std::uint64_t syscalls_before = rig.h.sim().counters().Get(Counter::kSyscalls);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("x"))->status.ok());
  }
  EXPECT_EQ(rig.h.sim().counters().Get(Counter::kSyscalls), syscalls_before);
}

// Regression: a zero-length record used to make ReadLogBytes compute the touched
// block range as (offset + 0 - 1) / kBlock, which underflows. Empty atomic units are
// legal elements and must replay as such.
TEST(CatfishTest, ZeroLengthRecordRoundTrips) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/zero");
  ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga(""))->status.ok());
  ASSERT_TRUE(rig.libos->BlockingPush(qd, Sga("after empty"))->status.ok());

  auto empty = rig.libos->BlockingPop(qd);
  ASSERT_TRUE(empty.ok());
  ASSERT_TRUE(empty->status.ok()) << empty->status;
  EXPECT_EQ(empty->sga.total_bytes(), 0u);
  EXPECT_EQ(rig.libos->BlockingPop(qd)->sga.ToString(), "after empty");
}

// Regression: Close() used to drop pending_pushes_/pending_pops_ on the floor,
// leaving their qtokens pending forever. Every outstanding token must complete with
// kCancelled — the no-hung-qtoken invariant.
TEST(CatfishTest, CloseFailsOutstandingTokensWithCancelled) {
  CatfishRig rig;
  const QDesc qd = *rig.libos->Creat("/log/close");
  // Registered but not yet driven: the device write/replay has not run.
  const QToken push = *rig.libos->Push(qd, Sga("in flight"));
  const QToken pop = *rig.libos->Pop(qd);
  ASSERT_TRUE(rig.libos->Close(qd).ok());

  auto push_result = rig.libos->Wait(push, kMillisecond);
  ASSERT_TRUE(push_result.ok());
  EXPECT_EQ(push_result->status.code(), ErrorCode::kCancelled) << push_result->status;
  auto pop_result = rig.libos->Wait(pop, kMillisecond);
  ASSERT_TRUE(pop_result.ok());
  EXPECT_EQ(pop_result->status.code(), ErrorCode::kCancelled) << pop_result->status;
  EXPECT_EQ(rig.libos->pending_ops(), 0u);
}

// Regression: the retry wrapper checked its deadline only when an attempt failed, so
// a jittered backoff could schedule the next attempt far past the deadline and the op
// would linger. The backoff is now clamped to the remaining budget (and re-checked at
// fire time), so exhaustion surfaces at ~deadline, not at ~backoff.
TEST(CatfishTest, RetryBackoffClampedToDeadline) {
  CatfishConfig cfg;
  cfg.recovery.enabled = true;
  cfg.recovery.retry.initial_backoff_ns = 40 * kMillisecond;  // would overshoot alone
  cfg.recovery.retry.max_backoff_ns = 40 * kMillisecond;
  cfg.recovery.retry.jitter = 0;
  cfg.recovery.retry.deadline_ns = 2 * kMillisecond;

  TestHarness h;
  HostOptions opts;
  opts.with_nic = false;
  opts.with_kernel = false;
  opts.with_block_device = true;
  auto& host = h.AddHost("storage", "10.0.0.1", opts);
  auto& libos = h.Catfish(host, cfg);

  const QDesc wqd = *libos.Creat("/log/deadline");
  ASSERT_TRUE(libos.BlockingPush(wqd, Sga("record"))->status.ok());
  ASSERT_TRUE(libos.Close(wqd).ok());

  // Every read attempt inside the deadline fails: the op must give up on budget.
  for (int i = 0; i < 10; ++i) {
    h.faults().ScheduleOpFault(host.bdev->fault_device(), FaultKind::kMediaError,
                               h.sim().now());
  }
  h.sim().RunFor(kMicrosecond);
  const QDesc rqd = *libos.Open("/log/deadline");
  const TimeNs start = h.sim().now();
  auto r = libos.BlockingPop(rqd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kRetryExhausted) << r->status;
  // With the clamp the whole retry dance fits the 2 ms budget (plus one device
  // service time); the unclamped backoff would park the resubmission at 40 ms.
  EXPECT_LE(h.sim().now() - start, 5 * kMillisecond);
  EXPECT_GE(h.sim().counters().Get(Counter::kRetryGiveups), 1u);
}

}  // namespace
}  // namespace demi
