// Hostile-tenant chaos suite: a flooding co-tenant shares the bypass NIC with an
// open-loop echo victim. With isolation ON the device's buckets + DWRR +
// capability checks bound the victim's p99 near its solo baseline; with
// isolation OFF the same flood heads-of-line-blocks the shared DMA engine and
// the victim's tail collapses. Also checks frame conservation across the tenant
// accounting, that the victim never trips a capability check, fault-injector
// driven hostile on/off phases, and bit-exact determinism of a chaos run.

#include <gtest/gtest.h>

#include <memory>

#include "src/load/open_loop_runner.h"
#include "src/sim/fault_injector.h"

namespace demi {
namespace {

constexpr std::size_t kConnections = 10'000;
constexpr double kRate = 100'000.0;  // aggregate offered rps, well under capacity
constexpr TimeNs kWarmup = 20 * kMillisecond;
constexpr TimeNs kMeasure = 100 * kMillisecond;

OpenLoopConfig ChaosConfig(bool isolation_on, std::size_t connections = kConnections) {
  OpenLoopConfig cfg;
  cfg.connections = connections;
  cfg.workload.request_bytes = 64;
  cfg.seed = 42;
  cfg.tenant.enabled = true;
  cfg.tenant.isolation_on = isolation_on;
  // A quarter of the hostile descriptors point outside its capability set, so
  // the capability checker sees real attack traffic (isolation on only).
  cfg.tenant.hostile_load.bogus_fraction = 0.25;
  return cfg;
}

struct ArmResult {
  HistogramStats latency;
  std::uint64_t completed = 0;
  TenantStats victim;
  TenantStats hostile;
  HostileTenant::Stats flood;
};

ArmResult RunArm(bool isolation_on, bool hostile_active,
                 std::size_t connections = kConnections) {
  OpenLoopRunner runner(ChaosConfig(isolation_on, connections));
  EXPECT_TRUE(runner.Ramp());
  // Ramp() tolerates unexpected deaths; the chaos arms must not.
  EXPECT_EQ(runner.established_connections(), connections);
  if (hostile_active) {
    runner.hostile()->Start();
  }
  const SweepPoint pt = runner.RunPoint(kRate, kWarmup, kMeasure);
  runner.hostile()->Stop();
  // Let the shared DMA engine drain its backlog so per-tenant accounting is
  // conserved at snapshot time (nothing in flight).
  runner.StopLoad();
  runner.sim().RunFor(5 * kMillisecond);

  ArmResult out;
  out.latency = pt.latency;
  out.completed = pt.completed;
  const TenantRegistry* reg = runner.tenant_registry();
  out.victim = reg->stats(runner.victim_tenant());
  out.hostile = reg->stats(runner.hostile_tenant());
  out.flood = runner.hostile()->stats();
  return out;
}

TEST(TenantChaosTest, IsolationBoundsVictimTailHostileCollapsesItWithoutIt) {
  const ArmResult solo = RunArm(/*isolation_on=*/true, /*hostile_active=*/false);
  const ArmResult on = RunArm(/*isolation_on=*/true, /*hostile_active=*/true);
  const ArmResult off = RunArm(/*isolation_on=*/false, /*hostile_active=*/true);

  ASSERT_GT(solo.latency.count, 0u);
  ASSERT_GT(on.latency.count, 0u);
  ASSERT_GT(off.latency.count, 0u);

  // The paper's claim, quantified: contained hostile costs the victim at most 2x
  // its solo p99; the unprotected device does demonstrably worse than that.
  EXPECT_LE(on.latency.p99, 2 * solo.latency.p99)
      << "victim p99 " << on.latency.p99 << "ns vs solo " << solo.latency.p99 << "ns";
  EXPECT_GT(off.latency.p99, 2 * solo.latency.p99)
      << "isolation off should collapse the tail (p99 " << off.latency.p99
      << "ns vs solo " << solo.latency.p99 << "ns)";

  // The flood really ran in both hostile arms.
  EXPECT_GT(on.flood.doorbells_attempted, 0u);
  EXPECT_GT(off.flood.frames_accepted, 0u);
  // Isolation on: the device actually pushed back on the flood.
  EXPECT_GT(on.hostile.capability_violations, 0u);
  EXPECT_GT(on.victim.tx_frames, 0u);
}

TEST(TenantChaosTest, VictimNeverTripsCapabilityChecksAndFramesConserve) {
  const ArmResult on = RunArm(/*isolation_on=*/true, /*hostile_active=*/true,
                              /*connections=*/2'000);

  // The victim's capability set covers its entire data path (headers via the
  // bound allocator, response payloads via the explicit grant, echoed request
  // bytes via RX grants): zero violations attributed to it.
  EXPECT_EQ(on.victim.capability_violations, 0u);
  EXPECT_GT(on.victim.tx_frames, 0u);
  EXPECT_GT(on.victim.rx_frames, 0u);

  // Conservation: every descriptor the device consumed from the hostile queue
  // either reached the wire or was refused by the capability checker.
  EXPECT_EQ(on.flood.frames_accepted,
            on.hostile.tx_frames + on.hostile.capability_violations);
  // And the throttled remainder is visible in the tenant's own accounting.
  EXPECT_GT(on.flood.frames_offered, on.flood.frames_accepted);
  EXPECT_GT(on.hostile.doorbells_throttled + on.hostile.descriptors_throttled, 0u);
}

TEST(TenantChaosTest, FaultInjectorDrivesHostileBurstPhases) {
  OpenLoopRunner runner(ChaosConfig(/*isolation_on=*/true, /*connections=*/2'000));
  ASSERT_TRUE(runner.Ramp());

  FaultInjector faults(&runner.sim(), /*seed=*/7);
  const FaultDeviceId dev = runner.hostile()->AttachFaultInjector(&faults, "hostile");
  const TimeNs t0 = runner.sim().now();
  faults.ScheduleHostileBurst(dev, t0 + 5 * kMillisecond, /*for_ns=*/10 * kMillisecond);

  EXPECT_FALSE(runner.hostile()->running());
  runner.sim().RunFor(10 * kMillisecond);  // inside the scheduled burst window
  EXPECT_TRUE(runner.hostile()->running());
  EXPECT_GT(runner.hostile()->stats().doorbells_attempted, 0u);
  runner.sim().RunFor(10 * kMillisecond);  // past the quiet edge
  EXPECT_FALSE(runner.hostile()->running());

  const std::uint64_t settled = runner.hostile()->stats().doorbells_attempted;
  runner.sim().RunFor(5 * kMillisecond);
  EXPECT_EQ(runner.hostile()->stats().doorbells_attempted, settled);
}

TEST(TenantChaosTest, ChaosRunIsBitDeterministic) {
  const ArmResult a = RunArm(/*isolation_on=*/true, /*hostile_active=*/true,
                             /*connections=*/2'000);
  const ArmResult b = RunArm(/*isolation_on=*/true, /*hostile_active=*/true,
                             /*connections=*/2'000);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.latency.p50, b.latency.p50);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.latency.max, b.latency.max);
  EXPECT_EQ(a.victim.tx_frames, b.victim.tx_frames);
  EXPECT_EQ(a.hostile.capability_violations, b.hostile.capability_violations);
  EXPECT_EQ(a.flood.frames_offered, b.flood.frames_offered);
}

}  // namespace
}  // namespace demi
