// Unit tests for the hierarchical timer wheel (src/sim/timer_wheel.h): level
// placement and cascading, cancel-after-reschedule, far-future clamping, zero-delay
// events, and a seeded differential test that drives 100k random schedule/cancel
// operations through a wheel-backed and a heap-backed Simulation side by side and
// requires identical firing order and identical virtual timestamps.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/sim/simulation.h"
#include "src/sim/timer_wheel.h"

namespace demi {
namespace {

SchedEntry E(TimeNs due, std::uint64_t seq) { return SchedEntry{due, seq, seq}; }

TEST(TimerWheelTest, PopsInDueThenSeqOrder) {
  TimerWheel wheel;
  wheel.Push(E(300, 1));
  wheel.Push(E(100, 2));
  wheel.Push(E(100, 3));
  wheel.Push(E(200, 4));
  std::vector<std::uint64_t> order;
  while (!wheel.empty()) {
    order.push_back(wheel.Pop().seq);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 3, 4, 1}));
}

TEST(TimerWheelTest, EntriesLandOnTheExpectedLevel) {
  TimerWheel wheel;
  const TimeNs tick = TimeNs{1} << TimerWheel::kResBits;  // 64 ns
  EXPECT_EQ(wheel.LevelFor(0), -1);                       // already due
  EXPECT_EQ(wheel.LevelFor(tick), 0);
  EXPECT_EQ(wheel.LevelFor(255 * tick), 0);
  EXPECT_EQ(wheel.LevelFor(256 * tick), 1);               // beyond level 0's span
  EXPECT_EQ(wheel.LevelFor(65535 * tick), 1);
  EXPECT_EQ(wheel.LevelFor(65536 * tick), 2);
  EXPECT_EQ(wheel.LevelFor(kSecond), 2);                  // ~15.6M ticks < 256^3
}

TEST(TimerWheelTest, CascadeAcrossLevelsPreservesExactDueTimes) {
  // Entries spread over several levels; popping must yield exact due order even
  // though the high-level slots only bucket them coarsely until cascade.
  TimerWheel wheel;
  std::vector<TimeNs> dues = {50,        1000,     64 * 300,  64 * 70000,
                              kSecond,   3 * kSecond, 64 * 299, 64 * 65536 + 7};
  std::uint64_t seq = 1;
  for (TimeNs d : dues) {
    wheel.Push(E(d, seq++));
  }
  std::vector<TimeNs> sorted = dues;
  std::sort(sorted.begin(), sorted.end());
  for (TimeNs expect : sorted) {
    ASSERT_FALSE(wheel.empty());
    EXPECT_EQ(wheel.Pop().due, expect);
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_GT(wheel.cascades(), 0u);  // the spread above must have exercised cascade
}

TEST(TimerWheelTest, LateInsertBehindHigherLevelSlotStillFiresFirst) {
  // Regression shape for the jump hazard: after the wheel has advanced, a
  // higher-level slot can cover lower ticks than a newly inserted level-0 entry.
  TimerWheel wheel;
  wheel.Push(E(64 * 1000, 1));  // level 1 from tick 0
  wheel.Push(E(64 * 2, 2));     // level 0
  EXPECT_EQ(wheel.Pop().seq, 2u);  // advances wheel near tick 2
  wheel.Push(E(64 * 1100, 3));     // level 1, past the first entry
  EXPECT_EQ(wheel.Pop().seq, 1u);
  EXPECT_EQ(wheel.Pop().seq, 3u);
}

TEST(TimerWheelTest, FarFutureTimerBeyondHorizonStillFiresAtExactTime) {
  Simulation sim;
  // ~146 years of ns: past the wheel's 7-level horizon (2^56 ticks of 64 ns), so
  // this exercises the clamp + re-cascade path.
  const TimeNs far = TimeNs{1} << 62;
  TimeNs fired_at = -1;
  sim.Schedule(far, [&] { fired_at = sim.now(); });
  bool early = false;
  sim.Schedule(100, [&] { early = true; });
  while (sim.StepOnce()) {
  }
  EXPECT_TRUE(early);
  EXPECT_EQ(fired_at, far);
}

TEST(TimerWheelTest, TimersAtAndBeyondTheExactHorizonFireAtExactTimes) {
  // The 7 levels x 8 slot bits + 6 resolution bits cover exactly 2^62 ns. Pin
  // the edge: the last due inside the horizon, the first beyond it, and one far
  // past it must all fire at their exact virtual times in due order.
  const TimeNs tick = TimeNs{1} << TimerWheel::kResBits;
  const TimeNs horizon = TimeNs{1}
                         << (TimerWheel::kResBits +
                             TimerWheel::kSlotBits * TimerWheel::kLevels);
  ASSERT_EQ(horizon, TimeNs{1} << 62);

  Simulation sim;
  std::vector<std::pair<TimeNs, TimeNs>> fired;  // (due, actual)
  for (const TimeNs due : {horizon - tick, horizon, horizon + tick,
                           horizon + (TimeNs{1} << 40) + 7}) {
    sim.Schedule(due, [&fired, &sim, due] { fired.emplace_back(due, sim.now()); });
  }
  while (sim.StepOnce()) {
  }
  ASSERT_EQ(fired.size(), 4u);
  TimeNs prev = -1;
  for (const auto& [due, at] : fired) {
    EXPECT_EQ(at, due);
    EXPECT_GT(at, prev);  // due order preserved across the clamp + re-cascade
    prev = at;
  }
}

TEST(TimerWheelTest, CancelAfterCascadeStillSilencesTheTimer) {
  // A level-1 entry cascades into level 0 when the cursor crosses the 256-tick
  // boundary; cancelling it AFTER that migration must still prevent the firing.
  Simulation sim;
  bool far_fired = false;
  bool near_fired = false;
  const TimerId far = sim.Schedule(64 * 500, [&] { far_fired = true; });  // level 1
  sim.Schedule(64 * 260, [&] { near_fired = true; });                     // level 1
  // Run exactly until the near timer fires: the wheel cursor is now at tick 260,
  // past the 256 boundary, so the far entry has cascaded down.
  ASSERT_TRUE(sim.RunUntil([&] { return near_fired; }, 64 * 300));
  ASSERT_FALSE(far_fired);
  sim.Cancel(far);
  sim.RunFor(64 * 1000);
  EXPECT_FALSE(far_fired);
}

TEST(TimerWheelTest, ReArmInsideFiringCallbackKeepsExactPeriod) {
  // A timer that re-schedules itself from inside its own dispatch (the TCP RTO
  // idiom) must tick at the exact period on both scheduler backends.
  for (const SchedulerKind kind :
       {SchedulerKind::kTimerWheel, SchedulerKind::kBinaryHeap}) {
    Simulation sim(CostModel{}, kind);
    std::vector<TimeNs> fires;
    std::function<void()> tick = [&] {
      fires.push_back(sim.now());
      if (fires.size() < 5) {
        sim.Schedule(1000, tick);
      }
    };
    sim.Schedule(1000, tick);
    while (sim.StepOnce()) {
    }
    EXPECT_EQ(fires, (std::vector<TimeNs>{1000, 2000, 3000, 4000, 5000}));
  }
}

TEST(TimerWheelTest, ZeroDelayTimersRunThisStepInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(0, [&] {
    order.push_back(1);
    sim.Schedule(0, [&] { order.push_back(2); });  // zero-delay from inside dispatch
  });
  sim.Schedule(0, [&] { order.push_back(3); });
  sim.RunDue();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), 0);
}

TEST(TimerWheelTest, CancelAfterReschedulePreservesOnlyTheLiveTimer) {
  Simulation sim;
  int fired = 0;
  const TimerId a = sim.Schedule(100, [&] { fired += 1; });
  sim.Cancel(a);
  const TimerId b = sim.Schedule(100, [&] { fired += 10; });  // reuses a's slot
  sim.Cancel(a);  // stale id: must not kill b (generation check)
  while (sim.StepOnce()) {
  }
  EXPECT_EQ(fired, 10);
  sim.Cancel(b);  // already fired: no-op, no crash
}

TEST(TimerWheelTest, CancelledEntriesDoNotPerturbIdleJumps) {
  Simulation sim;
  const TimerId a = sim.Schedule(100, [] {});
  const TimerId b = sim.Schedule(200, [] {});
  TimeNs fired_at = -1;
  sim.Schedule(300, [&] { fired_at = sim.now(); });
  sim.Cancel(a);
  sim.Cancel(b);
  while (sim.StepOnce()) {
  }
  EXPECT_EQ(fired_at, 300);
  EXPECT_EQ(sim.now(), 300);
}

// The acceptance-criteria differential test: identical firing order and identical
// sim timestamps across 100k randomized schedule/cancel operations, wheel vs heap.
TEST(TimerWheelDifferentialTest, MatchesHeapOracleOver100kRandomOps) {
  constexpr int kOps = 100000;
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    // Each simulation records (timestamp, label) per fired event.
    auto run = [&](SchedulerKind kind) {
      Simulation sim(CostModel{}, kind);
      Rng rng(seed);
      std::vector<std::pair<TimeNs, std::uint64_t>> fired;
      std::vector<TimerId> live;
      std::uint64_t label = 0;
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t roll = rng.NextBelow(100);
        if (roll < 55 || live.empty()) {
          // Schedule with a delay profile spanning every wheel level: mostly short
          // RTO-like delays, a tail of far-future ones.
          TimeNs delay;
          switch (rng.NextBelow(5)) {
            case 0: delay = static_cast<TimeNs>(rng.NextBelow(64)); break;       // sub-tick
            case 1: delay = static_cast<TimeNs>(rng.NextBelow(10'000)); break;   // level 0
            case 2: delay = static_cast<TimeNs>(rng.NextBelow(1'000'000)); break;
            case 3: delay = static_cast<TimeNs>(rng.NextBelow(kSecond)); break;
            default: delay = static_cast<TimeNs>(rng.NextBelow(600 * kSecond)); break;
          }
          const std::uint64_t tag = label++;
          live.push_back(sim.Schedule(delay, [&fired, &sim, tag] {
            fired.emplace_back(sim.now(), tag);
          }));
        } else if (roll < 80) {
          // Cancel a random live timer (may already have fired: exercises stale ids).
          const std::size_t pick = rng.NextBelow(live.size());
          sim.Cancel(live[pick]);
          live[pick] = live.back();
          live.pop_back();
        } else {
          // Let the simulation advance a few events to interleave dispatch with
          // scheduling (this is where wheel cascades happen mid-stream).
          sim.RunDue();
          sim.StepOnce();
        }
      }
      while (sim.StepOnce()) {
      }
      fired.emplace_back(sim.now(), ~0ull);  // final clock must match too
      return fired;
    };

    const auto wheel = run(SchedulerKind::kTimerWheel);
    const auto heap = run(SchedulerKind::kBinaryHeap);
    ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
    for (std::size_t i = 0; i < wheel.size(); ++i) {
      ASSERT_EQ(wheel[i].first, heap[i].first) << "timestamp diverged at event " << i
                                               << " (seed " << seed << ")";
      ASSERT_EQ(wheel[i].second, heap[i].second) << "order diverged at event " << i
                                                 << " (seed " << seed << ")";
    }
  }
}

// Determinism of the wheel against itself: two identical runs, bitwise-equal traces.
TEST(TimerWheelDifferentialTest, WheelRunsAreBitDeterministic) {
  auto run = [] {
    Simulation sim(CostModel{}, SchedulerKind::kTimerWheel);
    Rng rng(7);
    std::vector<TimeNs> stamps;
    for (int i = 0; i < 5000; ++i) {
      sim.Schedule(static_cast<TimeNs>(rng.NextBelow(2 * kMillisecond)),
                   [&] { stamps.push_back(sim.now()); });
    }
    while (sim.StepOnce()) {
    }
    return stamps;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace demi
