// TCP correctness tests: handshake, bidirectional transfer, segmentation, flow
// control, teardown, reset — plus the property every transport must uphold on a lossy
// fabric: the application sees exactly the bytes sent, in order, exactly once, for any
// combination of loss, reordering, and duplication the fabric injects.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/common/random.h"
#include "tests/net_test_util.h"

namespace demi {
namespace {

constexpr std::uint16_t kPort = 7000;

// Establishes a->b and returns {client_conn, server_conn}.
std::pair<TcpConnection*, TcpConnection*> Establish(TwoStackRig& rig) {
  auto listener = rig.stack_b.TcpListen(kPort);
  EXPECT_TRUE(listener.ok());
  auto client = rig.stack_a.TcpConnect(Endpoint{rig.stack_b.ip(), kPort});
  EXPECT_TRUE(client.ok());
  TcpConnection* server = nullptr;
  EXPECT_TRUE(rig.sim.RunUntil(
      [&] {
        server = (*listener)->Accept();
        return server != nullptr && (*client)->established();
      },
      10 * kSecond));
  return {*client, server};
}

// Streams `data` from `tx` to `rx`, draining into a string; returns what arrived.
std::string Transfer(TwoStackRig& rig, TcpConnection* tx, TcpConnection* rx,
                     const std::string& data, TimeNs deadline = 120 * kSecond) {
  std::size_t sent = 0;
  std::string received;
  rig.sim.RunUntil(
      [&] {
        while (sent < data.size()) {
          const std::size_t chunk = std::min<std::size_t>(data.size() - sent, 8192);
          if (!tx->Send(Buffer::CopyOf(std::string_view(data).substr(sent, chunk))).ok()) {
            break;  // send buffer full; drain and retry
          }
          sent += chunk;
        }
        while (true) {
          Buffer b = rx->Recv(65536);
          if (b.empty()) {
            break;
          }
          received.append(b.AsStringView());
        }
        return received.size() == data.size();
      },
      deadline);
  return received;
}

TEST(TcpHandshakeTest, ConnectAcceptEstablishes) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  EXPECT_TRUE(client->established());
  EXPECT_TRUE(server->established());
  EXPECT_EQ(client->remote().port, kPort);
  EXPECT_EQ(server->remote().ip, rig.stack_a.ip());
}

TEST(TcpHandshakeTest, ConnectionRefusedWhenNoListener) {
  TwoStackRig rig;
  auto client = rig.stack_a.TcpConnect(Endpoint{rig.stack_b.ip(), 9999});
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return (*client)->dead(); }, 10 * kSecond));
  EXPECT_TRUE((*client)->reset());
}

TEST(TcpHandshakeTest, ConnectTimesOutOnSilentPeer) {
  // Drop every frame: SYN retransmits must eventually give up.
  FabricConfig fabric;
  fabric.loss_rate = 1.0;
  TwoStackRig rig(fabric);
  (void)rig.stack_b.TcpListen(kPort);
  auto client = rig.stack_a.TcpConnect(Endpoint{rig.stack_b.ip(), kPort});
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return (*client)->dead(); }, 600 * kSecond));
  EXPECT_TRUE((*client)->reset());
}

TEST(TcpDataTest, SmallMessageBothDirections) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  EXPECT_EQ(Transfer(rig, client, server, "hello from client"), "hello from client");
  EXPECT_EQ(Transfer(rig, server, client, "hello from server"), "hello from server");
}

TEST(TcpDataTest, LargeTransferSegmentsAndReassembles) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  std::string big(1 << 20, '\0');  // 1 MiB
  Rng rng(5);
  for (auto& ch : big) {
    ch = static_cast<char>('a' + rng.NextBelow(26));
  }
  EXPECT_EQ(Transfer(rig, client, server, big), big);
}

TEST(TcpDataTest, ManySmallMessagesPreserveOrder) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  std::string expected;
  for (int i = 0; i < 500; ++i) {
    expected += "msg" + std::to_string(i) + ";";
  }
  EXPECT_EQ(Transfer(rig, client, server, expected), expected);
}

TEST(TcpDataTest, SendBufferBackpressure) {
  TcpConfig tcp;
  tcp.send_buf_bytes = 16 * 1024;
  TwoStackRig rig(FabricConfig{}, tcp);
  auto [client, server] = Establish(rig);
  // Fill the send buffer without ever polling the receiver.
  Status status = OkStatus();
  std::size_t queued = 0;
  while (status.ok()) {
    status = client->Send(Buffer::CopyOf(std::string(4096, 'x')));
    if (status.ok()) {
      queued += 4096;
    }
  }
  EXPECT_EQ(status.code(), ErrorCode::kResourceExhausted);
  EXPECT_LE(queued, 16u * 1024 + 4096);
}

TEST(TcpDataTest, ZeroWindowStallsAndRecovers) {
  TcpConfig tcp;
  tcp.recv_buf_bytes = 8 * 1024;  // tiny receive window
  TwoStackRig rig(FabricConfig{}, tcp);
  auto [client, server] = Establish(rig);

  const std::string data(64 * 1024, 'w');
  std::size_t sent = 0;
  // Phase 1: pump without reading; the sender must stall at the window, not crash.
  rig.sim.RunUntil(
      [&] {
        while (sent < data.size()) {
          const std::size_t chunk = std::min<std::size_t>(data.size() - sent, 4096);
          if (!client->Send(Buffer::CopyOf(std::string_view(data).substr(sent, chunk))).ok()) {
            break;
          }
          sent += chunk;
        }
        return server->recv_available() >= 8 * 1024 - 1460;
      },
      30 * kSecond);
  EXPECT_LE(server->recv_available(), 8u * 1024 + 1460);

  // Phase 2: drain; everything must arrive intact.
  std::string received;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        while (sent < data.size()) {
          const std::size_t chunk = std::min<std::size_t>(data.size() - sent, 4096);
          if (!client->Send(Buffer::CopyOf(std::string_view(data).substr(sent, chunk))).ok()) {
            break;
          }
          sent += chunk;
        }
        while (true) {
          Buffer b = server->Recv(65536);
          if (b.empty()) {
            break;
          }
          received.append(b.AsStringView());
        }
        return received.size() == data.size();
      },
      300 * kSecond));
  EXPECT_EQ(received, data);
}

TEST(TcpCloseTest, GracefulCloseDeliversEof) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  ASSERT_TRUE(client->Send(Buffer::CopyOf("last words")).ok());
  client->Close();
  std::string received;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        while (true) {
          Buffer b = server->Recv(4096);
          if (b.empty()) {
            break;
          }
          received.append(b.AsStringView());
        }
        return server->recv_eof();
      },
      30 * kSecond));
  EXPECT_EQ(received, "last words");
  // Server closes its side too; both ends must reach CLOSED (via TIME_WAIT).
  server->Close();
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] { return client->closed() && server->closed(); }, 60 * kSecond));
}

TEST(TcpCloseTest, HalfCloseStillReceives) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  client->Close();  // client finishes sending; its receive side stays open
  ASSERT_TRUE(rig.sim.RunUntil([&] { return server->recv_eof(); }, 30 * kSecond));
  ASSERT_TRUE(server->Send(Buffer::CopyOf("reply after half-close")).ok());
  std::string received;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        Buffer b = client->Recv(4096);
        if (!b.empty()) {
          received.append(b.AsStringView());
        }
        return received.size() == 22;
      },
      30 * kSecond));
  EXPECT_EQ(received, "reply after half-close");
}

TEST(TcpCloseTest, AbortDeliversResetToPeer) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  client->Abort();
  ASSERT_TRUE(rig.sim.RunUntil([&] { return server->reset(); }, 30 * kSecond));
  EXPECT_EQ(server->Send(Buffer::CopyOf("x")).code(), ErrorCode::kConnectionReset);
}

TEST(TcpCloseTest, SendAfterCloseRejected) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  client->Close();
  EXPECT_EQ(client->Send(Buffer::CopyOf("late")).code(), ErrorCode::kNotConnected);
}

TEST(TcpListenerTest, BacklogLimitsEmbryos) {
  TcpConfig tcp;
  tcp.listen_backlog = 2;
  TwoStackRig rig(FabricConfig{}, tcp);
  auto listener = rig.stack_b.TcpListen(kPort);
  ASSERT_TRUE(listener.ok());
  // Open several connections without accepting; all eventually establish because
  // embryos leave the SYN queue into the accept queue, but the queue is bounded at
  // any instant. Just verify nothing crashes and at least backlog connects work.
  std::vector<TcpConnection*> clients;
  for (int i = 0; i < 4; ++i) {
    auto c = rig.stack_a.TcpConnect(Endpoint{rig.stack_b.ip(), kPort});
    ASSERT_TRUE(c.ok());
    clients.push_back(*c);
  }
  rig.sim.RunFor(50 * kMillisecond);
  int established = 0;
  for (auto* c : clients) {
    established += c->established();
  }
  EXPECT_GE(established, 2);
}

TEST(TcpListenerTest, PortInUseRejected) {
  TwoStackRig rig;
  ASSERT_TRUE(rig.stack_b.TcpListen(kPort).ok());
  EXPECT_EQ(rig.stack_b.TcpListen(kPort).code(), ErrorCode::kAddressInUse);
}

TEST(TcpTimingTest, UnloadedRttIsMicrosecondScale) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  rig.sim.RunFor(kMillisecond);  // settle
  const TimeNs start = rig.sim.now();
  ASSERT_TRUE(client->Send(Buffer::CopyOf("ping")).ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return server->recv_available() >= 4; }, kSecond));
  (void)server->Recv(64);
  ASSERT_TRUE(server->Send(Buffer::CopyOf("pong")).ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return client->recv_available() >= 4; }, kSecond));
  const TimeNs rtt = rig.sim.now() - start;
  // Kernel-bypass-class RTT: a handful of microseconds, far below a millisecond.
  EXPECT_LT(rtt, 50 * kMicrosecond);
  EXPECT_GT(rtt, 2 * rig.sim.cost().wire_latency_ns);
}

// --- The transport property: exactly-once in-order delivery under fabric faults ---

struct FaultCase {
  double loss;
  double reorder;
  double dup;
  std::uint64_t seed;
};

class TcpFaultTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(TcpFaultTest, ByteStreamExactlyOnceInOrder) {
  const FaultCase fc = GetParam();
  FabricConfig fabric;
  fabric.loss_rate = fc.loss;
  fabric.reorder_rate = fc.reorder;
  fabric.dup_rate = fc.dup;
  fabric.seed = fc.seed;
  TwoStackRig rig(fabric);
  auto [client, server] = Establish(rig);
  ASSERT_TRUE(client->established());

  std::string data(200 * 1024, '\0');
  Rng rng(fc.seed * 7 + 1);
  for (auto& ch : data) {
    ch = static_cast<char>(rng.NextBelow(256));
  }
  const std::string received = Transfer(rig, client, server, data, 600 * kSecond);
  ASSERT_EQ(received.size(), data.size());
  EXPECT_TRUE(received == data);
  // At meaningful loss rates the sender must have exercised the recovery machinery.
  // (At 1% a lucky seed can lose only ACKs, which cumulative acking absorbs.)
  if (fc.loss >= 0.05) {
    EXPECT_GT(client->retransmits(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, TcpFaultTest,
    ::testing::Values(FaultCase{0.01, 0.0, 0.0, 1}, FaultCase{0.05, 0.0, 0.0, 2},
                      FaultCase{0.10, 0.0, 0.0, 3}, FaultCase{0.0, 0.2, 0.0, 4},
                      FaultCase{0.0, 0.0, 0.2, 5}, FaultCase{0.03, 0.1, 0.05, 6},
                      FaultCase{0.05, 0.2, 0.1, 7}, FaultCase{0.01, 0.0, 0.0, 8}));

// Drives one TcpConnection directly with hand-crafted segments — full control over
// sequence numbers and segment boundaries, no fabric or peer stack in between.
class FakeTcpIo : public TcpIo {
 public:
  void SendSegment(Ipv4Address, FrameChain) override { ++segments_sent_; }
  Buffer AllocateHeader(std::size_t size) override { return Buffer::Allocate(size); }
  Simulation& sim() override { return sim_; }
  HostCpu& host() override { return cpu_; }
  const TcpConfig& tcp_config() const override { return cfg_; }
  void OnTcpClosed(TcpConnection*) override {}

  int segments_sent() const { return segments_sent_; }
  TcpConfig& mutable_config() { return cfg_; }

 private:
  Simulation sim_;
  HostCpu cpu_{&sim_, "fake"};
  TcpConfig cfg_;
  int segments_sent_ = 0;
};

// Active-opens `conn` and completes the handshake by hand; rcv_nxt_ lands at 5001
// and snd_una/snd_nxt at 1001.
void EstablishFake(TcpConnection& conn) {
  conn.StartActiveOpen();
  TcpHeader synack;
  synack.seq = 5000;
  synack.ack = 1001;
  synack.flags = kTcpSyn | kTcpAck;
  synack.window = 65535;
  conn.OnSegment(synack, Buffer());
  ASSERT_TRUE(conn.established());
}

// Delivers an in-order-capable data segment to `conn` (flags default to bare ACK).
void DeliverData(TcpConnection& conn, std::uint32_t seq, const std::string& payload,
                 std::uint8_t flags = kTcpAck) {
  TcpHeader h;
  h.seq = seq;
  h.ack = 1001;
  h.flags = flags;
  h.window = 65535;
  conn.OnSegment(h, Buffer::CopyOf(payload));
}

TEST(TcpOooTest, LongerRetransmitReplacesShorterCachedSegment) {
  FakeTcpIo io;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  conn.StartActiveOpen();
  TcpHeader synack;
  synack.seq = 5000;
  synack.ack = 1001;
  synack.flags = kTcpSyn | kTcpAck;
  synack.window = 65535;
  conn.OnSegment(synack, Buffer());
  ASSERT_TRUE(conn.established());  // rcv_nxt_ == 5001

  auto deliver = [&](std::uint32_t seq, const std::string& payload) {
    TcpHeader h;
    h.seq = seq;
    h.ack = 1001;
    h.flags = kTcpAck;
    h.window = 65535;
    conn.OnSegment(h, Buffer::CopyOf(payload));
  };
  auto drain = [&] {
    std::string got;
    while (true) {
      Buffer b = conn.Recv(65536);
      if (b.empty()) {
        break;
      }
      got.append(b.AsStringView());
    }
    return got;
  };

  // A short segment lands out of order (the 10 bytes before it are still missing).
  deliver(5011, "AAAAA");
  // The sender retransmits at the same seq, but coalesced with the following segment:
  // 20 bytes now. The cache must keep the longer copy, or bytes 5016..5030 are lost
  // forever — every later duplicate gets trimmed against rcv_nxt_ and dropped here.
  deliver(5011, std::string(20, 'B'));
  // The hole fills; delivery drains the fill plus the cached retransmission.
  deliver(5001, "0123456789");
  EXPECT_EQ(drain(), "0123456789" + std::string(20, 'B'));

  // Symmetric case: a SHORTER duplicate at a cached seq must not shrink the cache.
  deliver(5041, std::string(8, 'C'));  // rcv_nxt_ is now 5031; 10-byte hole first
  deliver(5041, "DD");
  deliver(5031, std::string(10, 'E'));
  EXPECT_EQ(drain(), std::string(10, 'E') + std::string(8, 'C'));
}

// --- Delayed ACKs (RFC 1122) and the immediate-ACK exceptions (RFC 5681) --------

TEST(TcpDelayedAckTest, AckEverySecondSegment) {
  FakeTcpIo io;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  EstablishFake(conn);
  const int base = io.segments_sent();
  DeliverData(conn, 5001, std::string(100, 'a'));
  EXPECT_EQ(io.segments_sent(), base);  // first in-order segment: ACK deferred
  DeliverData(conn, 5101, std::string(100, 'b'));
  EXPECT_EQ(io.segments_sent(), base + 1);  // second segment crosses the threshold
  EXPECT_EQ(io.host().counters().Get(Counter::kAcksCoalesced), 1u);
  EXPECT_EQ(io.host().counters().Get(Counter::kDelayedAcks), 0u);
}

TEST(TcpDelayedAckTest, TimerFlushesLoneSegmentAck) {
  FakeTcpIo io;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  EstablishFake(conn);
  // The delack timeout must sit well under the minimum RTO, or coalescing would
  // push peers into spurious retransmission (the "must not stall" contract).
  ASSERT_LT(io.tcp_config().delayed_ack_timeout_ns, io.tcp_config().min_rto_ns);
  const int base = io.segments_sent();
  DeliverData(conn, 5001, "lone segment");
  EXPECT_EQ(io.segments_sent(), base);
  io.sim().RunFor(io.tcp_config().delayed_ack_timeout_ns + kMicrosecond);
  EXPECT_EQ(io.segments_sent(), base + 1);  // timer flushed the pure ACK
  EXPECT_EQ(io.host().counters().Get(Counter::kDelayedAcks), 1u);
  // Nothing further pending: the timer is one-shot until new data arrives.
  io.sim().RunFor(kMillisecond);
  EXPECT_EQ(io.segments_sent(), base + 1);
}

TEST(TcpDelayedAckTest, OutOfOrderSegmentAcksImmediately) {
  FakeTcpIo io;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  EstablishFake(conn);
  const int base = io.segments_sent();
  DeliverData(conn, 5101, "beyond a hole");  // 5001..5100 missing
  // The dup ACK goes out at once — it is what fuels the peer's fast retransmit.
  EXPECT_EQ(io.segments_sent(), base + 1);
  // The gap fill also ACKs immediately so the sender learns of the repair.
  DeliverData(conn, 5001, std::string(100, 'f'));
  EXPECT_EQ(io.segments_sent(), base + 2);
  EXPECT_EQ(io.host().counters().Get(Counter::kDelayedAcks), 0u);
}

TEST(TcpDelayedAckTest, FinAcksImmediately) {
  FakeTcpIo io;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  EstablishFake(conn);
  const int base = io.segments_sent();
  DeliverData(conn, 5001, "final data", kTcpAck | kTcpFin);
  // Teardown never waits on the delack timer.
  EXPECT_GE(io.segments_sent(), base + 1);
  EXPECT_EQ(io.host().counters().Get(Counter::kDelayedAcks), 0u);
}

TEST(TcpDelayedAckTest, QueuedReplyPiggybacksAck) {
  FakeTcpIo io;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  EstablishFake(conn);
  DeliverData(conn, 5001, "request");
  const int base = io.segments_sent();  // ACK for the request still pending
  ASSERT_TRUE(conn.Send(Buffer::CopyOf("reply")).ok());
  // Exactly one segment leaves: the reply, carrying the pending ACK for free.
  EXPECT_EQ(io.segments_sent(), base + 1);
  EXPECT_EQ(io.host().counters().Get(Counter::kAcksCoalesced), 1u);
  // ACK the reply so its retransmit timer stands down, then run past the delack
  // window: the timer was cancelled, so no trailing pure ACK may fire.
  TcpHeader h;
  h.seq = 5008;
  h.ack = 1006;  // covers the 5-byte reply
  h.flags = kTcpAck;
  h.window = 65535;
  conn.OnSegment(h, Buffer());
  io.sim().RunFor(kMillisecond);
  EXPECT_EQ(io.segments_sent(), base + 1);
  EXPECT_EQ(io.host().counters().Get(Counter::kDelayedAcks), 0u);
}

TEST(TcpDelayedAckTest, DisabledConfigAcksEverySegment) {
  FakeTcpIo io;
  io.mutable_config().delayed_ack = false;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  EstablishFake(conn);
  const int base = io.segments_sent();
  DeliverData(conn, 5001, "a");
  EXPECT_EQ(io.segments_sent(), base + 1);
  DeliverData(conn, 5002, "b");
  EXPECT_EQ(io.segments_sent(), base + 2);
}

TEST(TcpDelayedAckTest, BulkTransferNeverStallsIntoRto) {
  // End-to-end: with delayed ACKs on (the default), a clean-fabric bulk transfer
  // must complete without a single retransmission — the delack timer fires long
  // before the sender's RTO can.
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  const std::string data(256 * 1024, 'd');
  EXPECT_EQ(Transfer(rig, client, server, data), data);
  EXPECT_EQ(client->retransmits(), 0u);
  // And the policy actually engaged: ACKs were saved, not just delayed.
  EXPECT_GT(rig.sim.counters().Get(Counter::kAcksCoalesced), 0u);
}

// --- Lazy retransmit-timer re-arm ----------------------------------------------

TEST(TcpTimerTest, AcksDoNotReschedulePerSegment) {
  FakeTcpIo io;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  EstablishFake(conn);
  // Fill the pipe: 8 MSS segments in flight (inside the initial cwnd of 10).
  const std::size_t mss = io.tcp_config().mss;
  ASSERT_TRUE(conn.Send(Buffer::CopyOf(std::string(8 * mss, 'x'))).ok());
  const std::uint64_t base = io.sim().schedule_calls();
  // ACK the flight one segment at a time. RFC 6298 says restart the timer on each
  // new ACK; the lazy implementation does that with a base-pointer store, so none
  // of these may touch the event queue.
  for (std::uint32_t i = 1; i <= 7; ++i) {
    TcpHeader h;
    h.seq = 5001;
    h.ack = 1001 + i * static_cast<std::uint32_t>(mss);
    h.flags = kTcpAck;
    h.window = 65535;
    conn.OnSegment(h, Buffer());
  }
  EXPECT_EQ(io.sim().schedule_calls(), base);
  // The final ACK empties the flight; cancelling is also schedule-free.
  TcpHeader last;
  last.seq = 5001;
  last.ack = 1001 + 8 * static_cast<std::uint32_t>(mss);
  last.flags = kTcpAck;
  last.window = 65535;
  conn.OnSegment(last, Buffer());
  EXPECT_EQ(io.sim().schedule_calls(), base);
}

TEST(TcpTimerTest, LazyTimerStillFiresAtTrueDeadline) {
  FakeTcpIo io;
  TcpConnection conn(&io, Endpoint{Ipv4Address{}, 1}, Endpoint{Ipv4Address{}, 2},
                     /*active_open=*/true, /*iss=*/1000);
  EstablishFake(conn);
  // The t=0 handshake RTT sample pins the RTO at the configured floor, and the
  // floor keeps pinning it through the mid-flight sample below.
  const TimeNs rto = io.tcp_config().min_rto_ns;
  const std::size_t mss = io.tcp_config().mss;
  ASSERT_TRUE(conn.Send(Buffer::CopyOf(std::string(2 * mss, 'x'))).ok());
  // StepOnce jumps the idle clock to the next event, so pin each RunFor target with
  // a no-op sentinel — otherwise the sparse fake rig overshoots straight into the
  // retransmit timer.
  auto pin = [&](TimeNs delay) { io.sim().Schedule(delay, [] {}); };
  // ACK the first segment halfway to the deadline: the restart is lazy, so the
  // original timer fires early, notices the pushed-out deadline, and re-sleeps.
  pin(rto / 2);
  io.sim().RunFor(rto / 2);
  TcpHeader h;
  h.seq = 5001;
  h.ack = 1001 + static_cast<std::uint32_t>(mss);
  h.flags = kTcpAck;
  h.window = 65535;
  conn.OnSegment(h, Buffer());
  const std::uint64_t rtx_before = conn.retransmits();
  // Run to just short of the restarted deadline (ack time + rto): no spurious fire,
  // even though the original timer expires in this window.
  pin(rto - 50 * kMicrosecond);
  io.sim().RunFor(rto - 50 * kMicrosecond);
  EXPECT_EQ(conn.retransmits(), rtx_before);
  // Cross the true deadline with the second segment still unacked: now it fires.
  io.sim().RunFor(100 * kMicrosecond);
  EXPECT_GT(conn.retransmits(), rtx_before);
}

TEST(TcpCongestionTest, CwndGrowsFromSlowStart) {
  TwoStackRig rig;
  auto [client, server] = Establish(rig);
  const std::uint32_t initial = client->cwnd();
  (void)Transfer(rig, client, server, std::string(512 * 1024, 'c'));
  EXPECT_GT(client->cwnd(), initial);
}

TEST(TcpCongestionTest, LossShrinksSsthresh) {
  FabricConfig fabric;
  fabric.loss_rate = 0.05;
  fabric.seed = 99;
  TwoStackRig rig(fabric);
  auto [client, server] = Establish(rig);
  (void)Transfer(rig, client, server, std::string(512 * 1024, 'c'), 600 * kSecond);
  EXPECT_LT(client->ssthresh(), 0x7FFFFFFFu);
}

}  // namespace
}  // namespace demi
