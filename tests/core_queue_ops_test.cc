// Tests for the Demikernel queue machinery: qtokens, wait semantics, and the
// queue()/merge/filter/sort/map/qconnect combinators of Figure 3 — all over in-memory
// queues so the semantics are isolated from any device.

#include <gtest/gtest.h>

#include <string>

#include "src/core/libos.h"

namespace demi {
namespace {

// A libOS with no devices: only queue()/combinators work. Lets us test the shared
// machinery in isolation.
class PureLibOS final : public LibOS {
 public:
  explicit PureLibOS(HostCpu* host) : LibOS(host) {}
  std::string name() const override { return "pure"; }

 protected:
  Result<std::unique_ptr<IoQueue>> NewSocketQueue() override {
    return Status(ErrorCode::kUnsupported, "no device");
  }
};

struct PureRig {
  PureRig() : sim(), host(&sim, "h"), libos(&host) {}
  Simulation sim;
  HostCpu host;
  PureLibOS libos;
};

SgArray Sga(const std::string& s) { return SgArray::FromString(s); }

TEST(QTokenTest, PushThenPopRoundTrip) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  auto push = rig.libos.Push(qd, Sga("element"));
  ASSERT_TRUE(push.ok());
  auto pop = rig.libos.Pop(qd);
  ASSERT_TRUE(pop.ok());

  auto pr = rig.libos.Wait(*push);
  ASSERT_TRUE(pr.ok());
  EXPECT_TRUE(pr->status.ok());
  EXPECT_EQ(pr->op, OpType::kPush);
  EXPECT_EQ(pr->qd, qd);

  auto rr = rig.libos.Wait(*pop);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr->op, OpType::kPop);
  EXPECT_EQ(rr->sga.ToString(), "element");
}

TEST(QTokenTest, ElementsPopInFifoOrder) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  for (int i = 0; i < 5; ++i) {
    (void)rig.libos.Push(qd, Sga("e" + std::to_string(i)));
  }
  for (int i = 0; i < 5; ++i) {
    auto r = rig.libos.BlockingPop(qd);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->sga.ToString(), "e" + std::to_string(i));
  }
}

TEST(QTokenTest, AtomicUnitPreserved) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  SgArray multi;
  multi.Append(Buffer::CopyOf("part1-"));
  multi.Append(Buffer::CopyOf("part2"));
  (void)rig.libos.BlockingPush(qd, multi);
  auto r = rig.libos.BlockingPop(qd);
  ASSERT_TRUE(r.ok());
  // The element arrives whole — segments and all.
  EXPECT_EQ(r->sga.ToString(), "part1-part2");
}

TEST(QTokenTest, UnknownTokenRejected) {
  PureRig rig;
  EXPECT_EQ(rig.libos.TakeResult(QToken{9999}).code(), ErrorCode::kBadDescriptor);
}

TEST(QTokenTest, BadDescriptorRejected) {
  PureRig rig;
  EXPECT_EQ(rig.libos.Push(QDesc{42}, Sga("x")).code(), ErrorCode::kBadDescriptor);
  EXPECT_EQ(rig.libos.Pop(QDesc{42}).code(), ErrorCode::kBadDescriptor);
  EXPECT_EQ(rig.libos.Close(QDesc{42}).code(), ErrorCode::kBadDescriptor);
}

TEST(WaitTest, WaitTimesOutOnEmptyQueue) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  auto pop = rig.libos.Pop(qd);
  ASSERT_TRUE(pop.ok());
  auto r = rig.libos.Wait(*pop, 10 * kMicrosecond);
  EXPECT_EQ(r.code(), ErrorCode::kTimedOut);
}

TEST(WaitTest, WaitAnyReturnsFirstCompletion) {
  PureRig rig;
  const QDesc q1 = *rig.libos.QueueCreate();
  const QDesc q2 = *rig.libos.QueueCreate();
  const QToken pop1 = *rig.libos.Pop(q1);
  const QToken pop2 = *rig.libos.Pop(q2);
  // Data arrives on q2 after 5 us of virtual time.
  rig.sim.Schedule(5 * kMicrosecond,
                   [&] { (void)rig.libos.Push(q2, Sga("late arrival")); });
  const QToken tokens[] = {pop1, pop2};
  auto r = rig.libos.WaitAny(tokens, kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->first, 1u);  // q2's pop completed
  EXPECT_EQ(r->second.sga.ToString(), "late arrival");
}

TEST(WaitTest, WaitAnyConsumesExactlyOneCompletion) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  (void)rig.libos.Push(qd, Sga("a"));
  (void)rig.libos.Push(qd, Sga("b"));
  const QToken t1 = *rig.libos.Pop(qd);
  const QToken t2 = *rig.libos.Pop(qd);
  const QToken tokens[] = {t1, t2};
  auto first = rig.libos.WaitAny(tokens, kSecond);
  ASSERT_TRUE(first.ok());
  // The other token's completion is still there for its own waiter (§4.4: each
  // completion wakes exactly one waiter, and no completion is lost).
  const QToken other = first->first == 0 ? t2 : t1;
  auto second = rig.libos.Wait(other, kSecond);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->second.sga.ToString(), second->sga.ToString());
}

TEST(WaitTest, WaitOnCompletedTokenRedeemsWithoutStepping) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  (void)rig.libos.Push(qd, Sga("x"));
  const QToken pop = *rig.libos.Pop(qd);
  while (!rig.libos.OpDone(pop)) {
    ASSERT_TRUE(rig.sim.StepOnce());
  }
  // The result is parked in the token's slot; Wait must hand it over immediately
  // without driving the simulation. Only the syscall charge itself (tens of ns) may
  // advance the clock — no polling rounds, no event dispatch.
  const TimeNs before = rig.sim.now();
  auto r = rig.libos.Wait(pop, kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sga.ToString(), "x");
  EXPECT_LT(rig.sim.now() - before, kMicrosecond);
}

TEST(WaitTest, WaitAnyIsFifoAcrossAlreadyCompletedTokens) {
  PureRig rig;
  const QDesc q1 = *rig.libos.QueueCreate();
  const QDesc q2 = *rig.libos.QueueCreate();
  const QToken pop1 = *rig.libos.Pop(q1);
  const QToken pop2 = *rig.libos.Pop(q2);
  // q2's data arrives first, then q1's — so pop2 completes strictly before pop1.
  (void)rig.libos.Push(q2, Sga("completed first"));
  while (!rig.libos.OpDone(pop2)) {
    ASSERT_TRUE(rig.sim.StepOnce());
  }
  (void)rig.libos.Push(q1, Sga("completed second"));
  while (!rig.libos.OpDone(pop1)) {
    ASSERT_TRUE(rig.sim.StepOnce());
  }
  // Both are redeemable; wait_any must return the EARLIER completion even though the
  // later one is listed first (FIFO fairness: no starvation by list position).
  const QToken tokens[] = {pop1, pop2};
  auto r = rig.libos.WaitAny(tokens, kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->first, 1u);
  EXPECT_EQ(r->second.sga.ToString(), "completed first");
}

TEST(WaitTest, WaitAllBadTokenMidListConsumesNothing) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  const QToken t1 = *rig.libos.Push(qd, Sga("a"));
  const QToken t2 = *rig.libos.Push(qd, Sga("b"));
  const QToken tokens[] = {t1, QToken{0xDEAD0000DEADu}, t2};
  auto r = rig.libos.WaitAll(tokens, kSecond);
  EXPECT_EQ(r.code(), ErrorCode::kBadDescriptor);
  // The failed call must not have consumed the good tokens' results: both still
  // redeem, and nothing is left pending (no leaked slots).
  EXPECT_TRUE(rig.libos.Wait(t1, kSecond).ok());
  EXPECT_TRUE(rig.libos.Wait(t2, kSecond).ok());
  EXPECT_EQ(rig.libos.pending_ops(), 0u);
}

TEST(QTokenTest, RedeemedTokenStaysStaleAfterSlotReuse) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  (void)rig.libos.Push(qd, Sga("x"));
  const QToken pop = *rig.libos.Pop(qd);
  ASSERT_TRUE(rig.libos.Wait(pop, kSecond).ok());
  // New operations may recycle the redeemed token's slot; the generation tag must
  // keep the old handle invalid rather than aliasing the new op.
  const QToken fresh = *rig.libos.Push(qd, Sga("y"));
  EXPECT_NE(fresh, pop);
  EXPECT_EQ(rig.libos.TakeResult(pop).code(), ErrorCode::kBadDescriptor);
}

TEST(WaitTest, WaitAllCollectsEverything) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  std::vector<QToken> tokens;
  for (int i = 0; i < 4; ++i) {
    tokens.push_back(*rig.libos.Push(qd, Sga(std::to_string(i))));
  }
  auto r = rig.libos.WaitAll(tokens, kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
  for (const QResult& res : *r) {
    EXPECT_TRUE(res.status.ok());
  }
}

TEST(WaitTest, WakeupAccountingIsOnePerCompletion) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  const std::uint64_t before = rig.host.counters().Get(Counter::kWakeups);
  for (int i = 0; i < 10; ++i) {
    (void)rig.libos.BlockingPush(qd, Sga("x"));
    (void)rig.libos.BlockingPop(qd);
  }
  const std::uint64_t wakeups = rig.host.counters().Get(Counter::kWakeups) - before;
  EXPECT_EQ(wakeups, 20u);  // exactly one per completed operation, no herd
  EXPECT_EQ(rig.host.counters().Get(Counter::kSpuriousWakeups), 0u);
}

// --- combinators ---

TEST(MergeTest, PopSurfacesElementsFromBothInners) {
  PureRig rig;
  const QDesc a = *rig.libos.QueueCreate();
  const QDesc b = *rig.libos.QueueCreate();
  const QDesc merged = *rig.libos.Merge(a, b);
  (void)rig.libos.Push(a, Sga("from-a"));
  (void)rig.libos.Push(b, Sga("from-b"));
  std::multiset<std::string> got;
  got.insert(rig.libos.BlockingPop(merged)->sga.ToString());
  got.insert(rig.libos.BlockingPop(merged)->sga.ToString());
  EXPECT_TRUE(got.contains("from-a"));
  EXPECT_TRUE(got.contains("from-b"));
}

TEST(MergeTest, PushGoesToBothInners) {
  PureRig rig;
  const QDesc a = *rig.libos.QueueCreate();
  const QDesc b = *rig.libos.QueueCreate();
  const QDesc merged = *rig.libos.Merge(a, b);
  auto r = rig.libos.BlockingPush(merged, Sga("dup"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rig.libos.BlockingPop(a)->sga.ToString(), "dup");
  EXPECT_EQ(rig.libos.BlockingPop(b)->sga.ToString(), "dup");
}

TEST(FilterTest, PopDeliversOnlyPassingElements) {
  PureRig rig;
  const QDesc inner = *rig.libos.QueueCreate();
  ElementPredicate starts_with_k{
      [](const SgArray& sga) { return !sga.empty() && sga.ToString()[0] == 'k'; }, 100};
  const QDesc filtered = *rig.libos.Filter(inner, starts_with_k);
  (void)rig.libos.Push(inner, Sga("drop-me"));
  (void)rig.libos.Push(inner, Sga("keep-me"));
  auto r = rig.libos.BlockingPop(filtered);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sga.ToString(), "keep-me");
}

TEST(FilterTest, FilteredPushNeverReachesInner) {
  PureRig rig;
  const QDesc inner = *rig.libos.QueueCreate();
  ElementPredicate pass_k{
      [](const SgArray& sga) { return !sga.empty() && sga.ToString()[0] == 'k'; }, 100};
  const QDesc filtered = *rig.libos.Filter(inner, pass_k);
  ASSERT_TRUE(rig.libos.BlockingPush(filtered, Sga("x-dropped"))->status.ok());
  ASSERT_TRUE(rig.libos.BlockingPush(filtered, Sga("kept"))->status.ok());
  auto r = rig.libos.BlockingPop(inner);
  EXPECT_EQ(r->sga.ToString(), "kept");
}

TEST(FilterTest, CpuFilterChargesHostCost) {
  PureRig rig;
  const QDesc inner = *rig.libos.QueueCreate();
  ElementPredicate expensive{[](const SgArray&) { return true; }, 5000};
  const QDesc filtered = *rig.libos.Filter(inner, expensive);
  const std::uint64_t before = rig.host.busy_ns();
  (void)rig.libos.BlockingPush(filtered, Sga("x"));
  EXPECT_GE(rig.host.busy_ns() - before, 5000u);
}

TEST(SortTest, PopsReturnPriorityOrder) {
  PureRig rig;
  const QDesc inner = *rig.libos.QueueCreate();
  ElementComparator shorter_first{[](const SgArray& x, const SgArray& y) {
                                    return x.total_bytes() < y.total_bytes();
                                  },
                                  10};
  const QDesc sorted = *rig.libos.Sort(inner, shorter_first);
  (void)rig.libos.BlockingPush(sorted, Sga("medium!"));
  (void)rig.libos.BlockingPush(sorted, Sga("tiny"));
  (void)rig.libos.BlockingPush(sorted, Sga("the longest element"));
  EXPECT_EQ(rig.libos.BlockingPop(sorted)->sga.ToString(), "tiny");
  EXPECT_EQ(rig.libos.BlockingPop(sorted)->sga.ToString(), "medium!");
  EXPECT_EQ(rig.libos.BlockingPop(sorted)->sga.ToString(), "the longest element");
}

TEST(SortTest, DrainsInnerQueueIntoPriorityOrder) {
  PureRig rig;
  const QDesc inner = *rig.libos.QueueCreate();
  ElementComparator lexicographic{[](const SgArray& x, const SgArray& y) {
                                    return x.ToString() < y.ToString();
                                  },
                                  10};
  const QDesc sorted = *rig.libos.Sort(inner, lexicographic);
  (void)rig.libos.Push(inner, Sga("b"));
  (void)rig.libos.Push(inner, Sga("a"));
  // Elements trickle from the inner queue; the first pop drains what is available.
  auto first = rig.libos.BlockingPop(sorted);
  ASSERT_TRUE(first.ok());
  auto second = rig.libos.BlockingPop(sorted);
  ASSERT_TRUE(second.ok());
  std::multiset<std::string> got = {first->sga.ToString(), second->sga.ToString()};
  EXPECT_TRUE(got.contains("a"));
  EXPECT_TRUE(got.contains("b"));
}

TEST(MapTest, TransformsOnPopAndPush) {
  PureRig rig;
  const QDesc inner = *rig.libos.QueueCreate();
  ElementTransform upper{[](const SgArray& sga) {
                           std::string s = sga.ToString();
                           for (char& c : s) {
                             c = static_cast<char>(std::toupper(c));
                           }
                           return SgArray::FromString(s);
                         },
                         200};
  const QDesc mapped = *rig.libos.MapQueue(inner, upper);
  // Push through the map: inner sees transformed data.
  (void)rig.libos.BlockingPush(mapped, Sga("hello"));
  EXPECT_EQ(rig.libos.BlockingPop(inner)->sga.ToString(), "HELLO");
  // Pop through the map: transformed again.
  (void)rig.libos.Push(inner, Sga("world"));
  EXPECT_EQ(rig.libos.BlockingPop(mapped)->sga.ToString(), "WORLD");
}

TEST(QConnectTest, SplicesElementsBetweenQueues) {
  PureRig rig;
  const QDesc in = *rig.libos.QueueCreate();
  const QDesc out = *rig.libos.QueueCreate();
  ASSERT_TRUE(rig.libos.QConnect(in, out).ok());
  for (int i = 0; i < 3; ++i) {
    (void)rig.libos.Push(in, Sga("spliced" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    auto r = rig.libos.BlockingPop(out);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->sga.ToString(), "spliced" + std::to_string(i));
  }
}

TEST(QConnectTest, PipelineFilterThenMap) {
  PureRig rig;
  // source -> filter(starts with 'k') -> map(upper) -> sink, spliced end to end.
  const QDesc source = *rig.libos.QueueCreate();
  const QDesc sink = *rig.libos.QueueCreate();
  ElementPredicate pass_k{
      [](const SgArray& sga) { return !sga.empty() && sga.ToString()[0] == 'k'; }, 50};
  ElementTransform upper{[](const SgArray& sga) {
                           std::string s = sga.ToString();
                           for (char& c : s) {
                             c = static_cast<char>(std::toupper(c));
                           }
                           return SgArray::FromString(s);
                         },
                         50};
  const QDesc filtered = *rig.libos.Filter(source, pass_k);
  const QDesc mapped = *rig.libos.MapQueue(filtered, upper);
  ASSERT_TRUE(rig.libos.QConnect(mapped, sink).ok());

  (void)rig.libos.Push(source, Sga("skip-this"));
  (void)rig.libos.Push(source, Sga("kept-one"));
  auto r = rig.libos.BlockingPop(sink);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sga.ToString(), "KEPT-ONE");
}

TEST(CloseTest, CloseCancelsPendingPops) {
  PureRig rig;
  const QDesc qd = *rig.libos.QueueCreate();
  const QToken pop = *rig.libos.Pop(qd);
  // MemoryQueue completes outstanding pops with kCancelled once closed; pump once
  // before the descriptor disappears from the table.
  IoQueue* raw = nullptr;
  (void)raw;
  ASSERT_TRUE(rig.libos.Close(qd).ok());
  // After Close the queue is gone; the op can never complete.
  auto r = rig.libos.Wait(pop, 10 * kMicrosecond);
  EXPECT_FALSE(r.ok());
}

TEST(MemoryTest, SgaAllocComesFromTheLibosManager) {
  PureRig rig;
  SgArray sga = rig.libos.SgaAlloc(1024);
  EXPECT_EQ(sga.segment_count(), 1u);
  EXPECT_EQ(sga.total_bytes(), 1024u);
  EXPECT_GE(rig.libos.memory().allocs(), 1u);
}

}  // namespace
}  // namespace demi
