// Tests for the application layer: RESP codec (incremental + zero-copy), the KV
// engine, and workload generation.

#include <gtest/gtest.h>

#include <string>

#include "src/apps/kv.h"
#include "src/apps/resp.h"
#include "src/apps/workload.h"

namespace demi {
namespace {

// --- RESP encoding/decoding ---

TEST(RespTest, EncodeCommandWireFormat) {
  EXPECT_EQ(EncodeRespCommand({"GET", "k"}), "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
}

TEST(RespTest, ParseWholeCommandRoundTrip) {
  const RespCommand in = {"SET", "key", "value with spaces"};
  auto out = ParseRespCommand(EncodeRespCommand(in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(RespTest, ParseRejectsTruncation) {
  const std::string wire = EncodeRespCommand({"GET", "key"});
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    EXPECT_FALSE(ParseRespCommand(wire.substr(0, cut)).ok()) << "cut at " << cut;
  }
}

TEST(RespTest, ParseRejectsTrailingGarbage) {
  EXPECT_FALSE(ParseRespCommand(EncodeRespCommand({"PING"}) + "x").ok());
}

TEST(RespTest, BuffersVariantSlicesWithoutCopy) {
  const RespCommand in = {"SET", "key", "value"};
  Buffer wire = Buffer::CopyOf(EncodeRespCommand(in));
  auto args = ParseRespCommandBuffers(wire);
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args->size(), 3u);
  EXPECT_EQ((*args)[0].AsStringView(), "SET");
  EXPECT_EQ((*args)[2].AsStringView(), "value");
  // Zero copy: args alias the wire buffer's storage.
  EXPECT_EQ((*args)[2].storage(), wire.storage());
}

TEST(RespTest, IncrementalParserHandlesSplitRequests) {
  RespRequestParser parser;
  const std::string wire = EncodeRespCommand({"SET", "abc", "def"});
  parser.Feed(wire.substr(0, 7));
  auto r1 = parser.Next();
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->has_value());
  EXPECT_EQ(parser.incomplete_scans(), 1u);  // the wasted scan of §3.2
  parser.Feed(wire.substr(7));
  auto r2 = parser.Next();
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2->has_value());
  EXPECT_EQ(**r2, (RespCommand{"SET", "abc", "def"}));
}

TEST(RespTest, IncrementalParserPipelinedRequests) {
  RespRequestParser parser;
  parser.Feed(EncodeRespCommand({"PING"}) + EncodeRespCommand({"GET", "x"}));
  auto r1 = parser.Next();
  ASSERT_TRUE(r1.ok() && r1->has_value());
  EXPECT_EQ(**r1, (RespCommand{"PING"}));
  auto r2 = parser.Next();
  ASSERT_TRUE(r2.ok() && r2->has_value());
  EXPECT_EQ(**r2, (RespCommand{"GET", "x"}));
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RespTest, IncrementalParserRejectsGarbage) {
  RespRequestParser parser;
  parser.Feed("GARBAGE\r\n");
  EXPECT_FALSE(parser.Next().ok());
}

TEST(RespTest, ValueEncodings) {
  EXPECT_EQ(EncodeRespValue(RespValue::Simple("OK")), "+OK\r\n");
  EXPECT_EQ(EncodeRespValue(RespValue::Error("ERR x")), "-ERR x\r\n");
  EXPECT_EQ(EncodeRespValue(RespValue::Integer(-7)), ":-7\r\n");
  EXPECT_EQ(EncodeRespValue(RespValue::Bulk("hi")), "$2\r\nhi\r\n");
  EXPECT_EQ(EncodeRespValue(RespValue::Nil()), "$-1\r\n");
}

TEST(RespTest, ResponseParserRoundTripsAllKinds) {
  for (const RespValue& v :
       {RespValue::Simple("OK"), RespValue::Error("ERR bad"), RespValue::Integer(42),
        RespValue::Bulk("payload"), RespValue::Nil()}) {
    RespResponseParser parser;
    parser.Feed(EncodeRespValue(v));
    auto r = parser.Next();
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, v);
  }
}

TEST(RespTest, ResponseParserHandlesSplitBulk) {
  RespResponseParser parser;
  const std::string wire = EncodeRespValue(RespValue::Bulk("split-value"));
  parser.Feed(wire.substr(0, 5));
  auto r1 = parser.Next();
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->has_value());
  parser.Feed(wire.substr(5));
  auto r2 = parser.Next();
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2->has_value());
  EXPECT_EQ((*r2)->text, "split-value");
}

// --- KvEngine ---

struct KvRig {
  KvRig() : sim(), host(&sim, "kv"), engine(&host) {}
  Simulation sim;
  HostCpu host;
  KvEngine engine;
};

TEST(KvEngineTest, SetGetRoundTrip) {
  KvRig rig;
  EXPECT_EQ(rig.engine.Execute({"SET", "k", "v"}), RespValue::Simple("OK"));
  EXPECT_EQ(rig.engine.Execute({"GET", "k"}), RespValue::Bulk("v"));
}

TEST(KvEngineTest, GetMissingIsNil) {
  KvRig rig;
  EXPECT_EQ(rig.engine.Execute({"GET", "nope"}), RespValue::Nil());
}

TEST(KvEngineTest, DelRemovesAndCounts) {
  KvRig rig;
  (void)rig.engine.Execute({"SET", "a", "1"});
  (void)rig.engine.Execute({"SET", "b", "2"});
  EXPECT_EQ(rig.engine.Execute({"DEL", "a", "b", "c"}), RespValue::Integer(2));
  EXPECT_EQ(rig.engine.Execute({"EXISTS", "a"}), RespValue::Integer(0));
}

TEST(KvEngineTest, IncrDecrArithmetic) {
  KvRig rig;
  EXPECT_EQ(rig.engine.Execute({"INCR", "n"}), RespValue::Integer(1));
  EXPECT_EQ(rig.engine.Execute({"INCR", "n"}), RespValue::Integer(2));
  EXPECT_EQ(rig.engine.Execute({"DECR", "n"}), RespValue::Integer(1));
  (void)rig.engine.Execute({"SET", "s", "not-a-number"});
  EXPECT_EQ(rig.engine.Execute({"INCR", "s"}).kind, RespValue::Kind::kError);
}

TEST(KvEngineTest, AppendAndStrlen) {
  KvRig rig;
  EXPECT_EQ(rig.engine.Execute({"APPEND", "k", "abc"}), RespValue::Integer(3));
  EXPECT_EQ(rig.engine.Execute({"APPEND", "k", "def"}), RespValue::Integer(6));
  EXPECT_EQ(rig.engine.Execute({"GET", "k"}), RespValue::Bulk("abcdef"));
  EXPECT_EQ(rig.engine.Execute({"STRLEN", "k"}), RespValue::Integer(6));
}

TEST(KvEngineTest, MsetDbsizeFlushall) {
  KvRig rig;
  EXPECT_EQ(rig.engine.Execute({"MSET", "a", "1", "b", "2"}), RespValue::Simple("OK"));
  EXPECT_EQ(rig.engine.Execute({"DBSIZE"}), RespValue::Integer(2));
  EXPECT_EQ(rig.engine.Execute({"FLUSHALL"}), RespValue::Simple("OK"));
  EXPECT_EQ(rig.engine.Execute({"DBSIZE"}), RespValue::Integer(0));
}

TEST(KvEngineTest, PingEchoUnknown) {
  KvRig rig;
  EXPECT_EQ(rig.engine.Execute({"PING"}), RespValue::Simple("PONG"));
  EXPECT_EQ(rig.engine.Execute({"ECHO", "hey"}), RespValue::Bulk("hey"));
  EXPECT_EQ(rig.engine.Execute({"BOGUS"}).kind, RespValue::Kind::kError);
}

TEST(KvEngineTest, ChargesPaperCalibratedCpuPerRequest) {
  KvRig rig;
  const TimeNs before = rig.sim.now();
  (void)rig.engine.Execute({"GET", "k"});
  EXPECT_EQ(rig.sim.now() - before, rig.sim.cost().kv_request_cpu_ns);  // the 2 us of §3.2
}

TEST(KvEngineTest, GetReplyReferencesStoredValueBuffer) {
  KvRig rig;
  Buffer value = Buffer::CopyOf("stored-value");
  RespArgs set_args = {Buffer::CopyOf("SET"), Buffer::CopyOf("k"), value};
  (void)rig.engine.Execute(std::span<const Buffer>(set_args));
  RespArgs get_args = {Buffer::CopyOf("GET"), Buffer::CopyOf("k")};
  KvReply reply = rig.engine.Execute(std::span<const Buffer>(get_args));
  ASSERT_EQ(reply.kind, RespValue::Kind::kBulk);
  // Zero copy: the reply aliases the SET's value buffer (§4.5).
  EXPECT_EQ(reply.bulk.storage(), value.storage());
}

// --- workload ---

TEST(WorkloadTest, DeterministicForSeed) {
  KvWorkloadConfig cfg;
  cfg.seed = 99;
  KvWorkload a(cfg), b(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(WorkloadTest, RespectsSizes) {
  KvWorkloadConfig cfg;
  cfg.key_bytes = 24;
  cfg.value_bytes = 128;
  cfg.get_ratio = 0.0;  // all SETs
  KvWorkload w(cfg);
  const RespCommand cmd = w.Next();
  ASSERT_EQ(cmd.size(), 3u);
  EXPECT_EQ(cmd[0], "SET");
  EXPECT_EQ(cmd[1].size(), 24u);
  EXPECT_EQ(cmd[2].size(), 128u);
}

TEST(WorkloadTest, GetRatioApproximatelyHonored) {
  KvWorkloadConfig cfg;
  cfg.get_ratio = 0.9;
  KvWorkload w(cfg);
  for (int i = 0; i < 10000; ++i) {
    (void)w.Next();
  }
  const double ratio = static_cast<double>(w.gets_issued()) /
                       static_cast<double>(w.gets_issued() + w.sets_issued());
  EXPECT_NEAR(ratio, 0.9, 0.02);
}

TEST(WorkloadTest, LoadCommandsCoverKeys) {
  KvWorkloadConfig cfg;
  cfg.num_keys = 10;
  KvWorkload w(cfg);
  const RespCommand load = w.LoadCommand(7);
  EXPECT_EQ(load[0], "SET");
  EXPECT_NE(load[1].find("key"), std::string::npos);
}

}  // namespace
}  // namespace demi
