// Observability-layer tests (ctest label: metrics): histogram quantile edges and
// window deltas, the bounded recovery trace ring, snapshot/delta/JSON export, per-op
// latency capture for Catnip (network) and Catfish (storage) — and the cost-model
// contract: recording charges ZERO simulated time, so a run with metrics enabled is
// bit-identical (same virtual timeline, same counters) to one with them disabled.

#include <gtest/gtest.h>

#include <string>

#include "src/apps/actors.h"
#include "src/core/harness.h"
#include "src/sim/fault_injector.h"
#include "src/sim/metrics.h"

namespace demi {
namespace {

constexpr std::uint16_t kEchoPort = 7;

// --- Histogram edges ------------------------------------------------------------

TEST(MetricsHistogramTest, EmptyHistogramQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.P99(), 0u);
  EXPECT_EQ(h.P999(), 0u);
}

TEST(MetricsHistogramTest, SingleValueIsEveryQuantile) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.Quantile(0.0), 1000u);
  EXPECT_EQ(h.P50(), 1000u);
  EXPECT_EQ(h.P99(), 1000u);
  EXPECT_EQ(h.P999(), 1000u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(MetricsHistogramTest, LinearToLogBoundaryStaysExact) {
  // Values below 2 * kSubBuckets (128) land in width-1 buckets, so quantiles at the
  // linear/log seam (63, 64, 65) must come back exact, not rounded.
  Histogram h;
  for (const std::uint64_t v : {63u, 64u, 65u, 127u}) {
    h.Record(v);
  }
  EXPECT_EQ(h.Quantile(0.0), 63u);
  EXPECT_EQ(h.P50(), 64u);
  EXPECT_EQ(h.Quantile(1.0), 127u);
}

TEST(MetricsHistogramTest, DiffSinceSubtractsTheWindow) {
  Histogram h;
  h.Record(100);
  h.Record(50);
  const Histogram before = h;
  h.Record(200);
  h.Record(200);
  const Histogram window = h.DiffSince(before);
  EXPECT_EQ(window.count(), 2u);
  EXPECT_EQ(window.mean(), 200.0);
  // Diffing a histogram against itself is empty.
  const Histogram empty = h.DiffSince(h);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.P99(), 0u);
}

// --- TraceRing ------------------------------------------------------------------

TEST(TraceRingTest, DropsOldestPastCapacityAndCountsDrops) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.Append(TraceEvent{i, TraceKind::kRetryAttempt, static_cast<std::uint64_t>(i), 0});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().at, 6);  // oldest retained
  EXPECT_EQ(events.back().at, 9);   // newest
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

// --- MetricsRegistry ------------------------------------------------------------

TEST(MetricsRegistryTest, DisabledRecordingIsANoOp) {
  MetricsRegistry reg;
  auto* handle = reg.OpLatencyHandle("catnip");
  reg.set_enabled(false);
  reg.RecordOpLatency(handle, OpKind::kPush, 100);
  reg.RecordStat(SimStat::kDispatchBatch, 5);
  reg.Trace(TraceKind::kFailover, 10);
  EXPECT_EQ((*handle)[0].count(), 0u);
  EXPECT_EQ(reg.sim_stat(SimStat::kDispatchBatch).count(), 0u);
  EXPECT_EQ(reg.trace().size(), 0u);
  reg.set_enabled(true);
  reg.RecordOpLatency(handle, OpKind::kPush, -5);  // negative latency is dropped
  EXPECT_EQ((*handle)[0].count(), 0u);
}

TEST(MetricsRegistryTest, OpLatencyHandleIsStableAcrossInserts) {
  MetricsRegistry reg;
  auto* catnip = reg.OpLatencyHandle("catnip");
  for (int i = 0; i < 64; ++i) {
    reg.OpLatencyHandle("libos-" + std::to_string(i));
  }
  EXPECT_EQ(reg.OpLatencyHandle("catnip"), catnip);  // map nodes do not move
  reg.RecordOpLatency(catnip, OpKind::kPop, 42);
  const Histogram* pop = reg.op_latency("catnip", OpKind::kPop);
  ASSERT_NE(pop, nullptr);
  EXPECT_EQ(pop->count(), 1u);
  EXPECT_EQ(reg.op_latency("nope", OpKind::kPop), nullptr);
}

TEST(MetricsSnapshotTest, DeltaSubtractsCountersHistogramsAndTrace) {
  MetricsRegistry reg;
  Counters counters;
  auto* handle = reg.OpLatencyHandle("catnip");
  reg.RecordOpLatency(handle, OpKind::kPush, 100);
  reg.RecordStat(SimStat::kDispatchBatch, 1);
  reg.Trace(TraceKind::kRetryAttempt, 50);
  counters.Add(Counter::kWakeups, 3);
  const MetricsSnapshot snap1 = reg.Snapshot(counters, 100);

  reg.RecordOpLatency(handle, OpKind::kPush, 200);
  reg.RecordOpLatency(handle, OpKind::kPop, 70);
  reg.RecordStat(SimStat::kDispatchBatch, 2);
  reg.Trace(TraceKind::kFailover, 150);
  counters.Add(Counter::kWakeups, 2);
  const MetricsSnapshot snap2 = reg.Snapshot(counters, 200);

  const MetricsSnapshot delta = MetricsRegistry::Delta(snap2, snap1);
  EXPECT_EQ(delta.taken_at, 200);
  EXPECT_EQ(delta.counters[static_cast<std::size_t>(Counter::kWakeups)], 2u);
  const auto& by_op = delta.op_latency.at("catnip");
  EXPECT_EQ(by_op[static_cast<std::size_t>(OpKind::kPush)].count(), 1u);
  EXPECT_EQ(by_op[static_cast<std::size_t>(OpKind::kPush)].mean(), 200.0);
  EXPECT_EQ(by_op[static_cast<std::size_t>(OpKind::kPop)].count(), 1u);
  EXPECT_EQ(delta.sim_stats[static_cast<std::size_t>(SimStat::kDispatchBatch)].count(), 1u);
  ASSERT_EQ(delta.trace.size(), 1u);  // only events after snap1.taken_at
  EXPECT_EQ(delta.trace[0].kind, TraceKind::kFailover);
}

TEST(MetricsSnapshotTest, ToJsonCarriesQuantilesAndOmitsEmpty) {
  MetricsRegistry reg;
  Counters counters;
  counters.Add(Counter::kWakeups, 7);
  auto* handle = reg.OpLatencyHandle("catnip");
  reg.OpLatencyHandle("idle-libos");  // never records; must not appear
  reg.RecordOpLatency(handle, OpKind::kPush, 1234);
  reg.Trace(TraceKind::kFailover, 99, /*a=*/5);
  const std::string json = reg.Snapshot(counters, 500).ToJson();
  EXPECT_NE(json.find("\"taken_at_ns\":500"), std::string::npos);
  EXPECT_NE(json.find("\"wakeups\":7"), std::string::npos);
  EXPECT_NE(json.find("\"catnip\":{\"push\":{\"n\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"failover\""), std::string::npos);
  EXPECT_EQ(json.find("idle-libos"), std::string::npos);
  EXPECT_EQ(json.find("\"pop\""), std::string::npos);  // zero-count op omitted
}

// --- end to end: op-latency capture ---------------------------------------------

TEST(MetricsOpLatencyTest, CatnipEchoRecordsPushAndPopLatency) {
  TestHarness env;
  auto& sh = env.AddHost("server", "10.0.0.1", HostOptions{});
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = env.AddHost("client", "10.0.0.2", copts);
  DemiEchoServer server(&env.Catnip(sh), kEchoPort);
  DemiEchoClient client(&env.Catnip(ch), Endpoint{sh.ip, kEchoPort}, 64, 50);
  ASSERT_TRUE(env.RunUntil([&] { return client.done(); }, 60 * kSecond));

  const MetricsRegistry& m = env.sim().metrics();
  const Histogram* push = m.op_latency("catnip", OpKind::kPush);
  const Histogram* pop = m.op_latency("catnip", OpKind::kPop);
  ASSERT_NE(push, nullptr);
  ASSERT_NE(pop, nullptr);
  EXPECT_GE(push->count(), 100u);  // client + server, 50 round trips
  EXPECT_GE(pop->count(), 100u);
  EXPECT_GT(pop->P99(), 0u);  // a pop waits for the wire: latency is never zero
  // The simulator internals were profiled along the way.
  EXPECT_GT(m.sim_stat(SimStat::kReadyRingDepth).count(), 0u);
  EXPECT_GT(m.sim_stat(SimStat::kSchedHeapDepth).count(), 0u);
}

TEST(MetricsOpLatencyTest, CatfishLogRecordsPushAndPopLatency) {
  TestHarness env;
  HostOptions opts;
  opts.with_nic = false;
  opts.with_kernel = false;
  opts.with_block_device = true;
  auto& host = env.AddHost("storage", "10.0.0.1", opts);
  CatfishLibOS& libos = env.Catfish(host);
  const QDesc log = *libos.Creat("/wal/log");
  for (int i = 0; i < 10; ++i) {
    auto r = libos.BlockingPush(log, SgArray::FromString("record-payload"));
    ASSERT_TRUE(r.ok() && r->status.ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto r = libos.BlockingPop(log);
    ASSERT_TRUE(r.ok() && r->status.ok());
  }
  const MetricsRegistry& m = env.sim().metrics();
  const Histogram* push = m.op_latency("catfish", OpKind::kPush);
  const Histogram* pop = m.op_latency("catfish", OpKind::kPop);
  ASSERT_NE(push, nullptr);
  ASSERT_NE(pop, nullptr);
  EXPECT_EQ(push->count(), 10u);
  EXPECT_GT(push->P50(), 0u);  // durable write: device time always elapses
  EXPECT_EQ(pop->count(), 10u);
}

// --- the zero-cost contract -----------------------------------------------------

struct WorkloadOutcome {
  TimeNs elapsed = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t packets_tx = 0;
};

WorkloadOutcome RunObservedEcho(bool metrics_enabled, std::size_t msg_bytes = 64) {
  TestHarness env;
  env.sim().metrics().set_enabled(metrics_enabled);
  auto& sh = env.AddHost("server", "10.0.0.1", HostOptions{});
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = env.AddHost("client", "10.0.0.2", copts);
  DemiEchoServer server(&env.Catnip(sh), kEchoPort);
  DemiEchoClient client(&env.Catnip(ch), Endpoint{sh.ip, kEchoPort}, msg_bytes, 100);
  EXPECT_TRUE(env.RunUntil([&] { return client.done(); }, 60 * kSecond));
  WorkloadOutcome out;
  out.elapsed = env.sim().now();
  out.bytes_copied = env.sim().counters().Get(Counter::kBytesCopied);
  out.wakeups = env.sim().counters().Get(Counter::kWakeups);
  out.doorbells = env.sim().counters().Get(Counter::kDoorbells);
  out.packets_tx = env.sim().counters().Get(Counter::kPacketsTx);
  if (metrics_enabled) {
    EXPECT_GT(env.sim().metrics().sim_stat(SimStat::kReadyRingDepth).count(), 0u);
    // Burst-size distributions record on every doorbell / rx drain.
    EXPECT_GT(env.sim().metrics().sim_stat(SimStat::kTxBurstFrames).count(), 0u);
    EXPECT_GT(env.sim().metrics().sim_stat(SimStat::kRxBurstFrames).count(), 0u);
  } else {
    EXPECT_EQ(env.sim().metrics().sim_stat(SimStat::kTxBurstFrames).count(), 0u);
    EXPECT_EQ(env.sim().metrics().sim_stat(SimStat::kReadyRingDepth).count(), 0u);
    EXPECT_EQ(env.sim().metrics().op_latency("catnip", OpKind::kPop), nullptr);
  }
  return out;
}

TEST(MetricsZeroCostTest, EnabledAndDisabledRunsAreBitIdentical) {
  // Recording never calls HostCpu::Work or advances the clock, so the virtual
  // timeline and every cost counter must match exactly between an instrumented run
  // and a dark one — observability is free in simulated time by construction.
  const WorkloadOutcome on = RunObservedEcho(/*metrics_enabled=*/true);
  const WorkloadOutcome off = RunObservedEcho(/*metrics_enabled=*/false);
  EXPECT_EQ(on.elapsed, off.elapsed);
  EXPECT_EQ(on.bytes_copied, off.bytes_copied);
  EXPECT_EQ(on.wakeups, off.wakeups);
  EXPECT_EQ(on.doorbells, off.doorbells);
  EXPECT_EQ(on.packets_tx, off.packets_tx);
}

TEST(MetricsZeroCostTest, BurstWorkloadRunsAreBitIdentical) {
  // Same contract under the batched data path: 8 KiB messages segment into
  // multi-frame TX bursts and coalesced ACKs, and the burst-size histograms record
  // on every doorbell — none of which may perturb the virtual timeline.
  const WorkloadOutcome on = RunObservedEcho(/*metrics_enabled=*/true, 8192);
  const WorkloadOutcome off = RunObservedEcho(/*metrics_enabled=*/false, 8192);
  EXPECT_EQ(on.elapsed, off.elapsed);
  EXPECT_EQ(on.bytes_copied, off.bytes_copied);
  EXPECT_EQ(on.wakeups, off.wakeups);
  EXPECT_EQ(on.doorbells, off.doorbells);
  EXPECT_EQ(on.packets_tx, off.packets_tx);
}

// --- recovery visibility --------------------------------------------------------

TEST(MetricsTraceTest, FailoverChaosRunLandsInTraceRingMonotonically) {
  FabricConfig fabric;
  fabric.seed = 21;
  TestHarness h(CostModel{}, fabric);
  HostOptions sopts;
  sopts.with_kernel_nic = true;
  auto& server_host = h.AddHost("server", "10.0.0.1", sopts);
  HostOptions copts = sopts;
  copts.charges_clock = false;
  auto& client_host = h.AddHost("client", "10.0.0.2", copts);
  CatnipLibOS& server_libos = h.Catnip(server_host, RecoveryConfig{});
  RecoveryConfig client_cfg;
  client_cfg.fallback_remote = Endpoint{server_host.kernel_ip, kEchoPort};
  client_cfg.has_fallback_remote = true;
  CatnipLibOS& client_libos = h.Catnip(client_host, client_cfg);
  DemiEchoServer server(&server_libos, kEchoPort);
  DemiEchoClient client(&client_libos, Endpoint{server_host.ip, kEchoPort}, 64, 200);
  h.faults().ScheduleDeviceFailure(client_host.nic->fault_device(), 500 * kMicrosecond);

  ASSERT_TRUE(h.RunUntil([&] { return client.done() || client.failed(); }, 60 * kSecond));
  ASSERT_TRUE(client.done());

  const auto events = h.sim().metrics().trace().Events();
  ASSERT_FALSE(events.empty());
  bool saw_fault = false;
  bool saw_failover = false;
  TimeNs prev = 0;
  for (const TraceEvent& ev : events) {
    EXPECT_GE(ev.at, prev);  // sim timestamps are monotonic across the ring
    prev = ev.at;
    saw_fault |= ev.kind == TraceKind::kFaultInjected;
    saw_failover |= ev.kind == TraceKind::kFailover;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_failover);
  // And the run's counters corroborate what the trace says happened.
  EXPECT_GE(h.sim().counters().Get(Counter::kFailovers), 1u);
  const std::string json =
      h.sim().metrics().Snapshot(h.sim().counters(), h.sim().now()).ToJson();
  EXPECT_NE(json.find("\"event\":\"failover\""), std::string::npos);
}

}  // namespace
}  // namespace demi
