// Multi-core scale-out tests (DESIGN.md §13): per-core event contexts and metrics,
// the PopReady stale-token contract behind completion stealing, RSS sharding across
// worker libOSes, steal accounting, NIC-death chaos (no hung qtokens), and bit
// determinism of the whole SMP harness at every core count.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/libos.h"
#include "src/core/smp.h"
#include "src/load/smp_harness.h"
#include "src/sim/counters.h"
#include "src/sim/fault_injector.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"

namespace demi {
namespace {

// ---------------------------------------------------------------------------
// Multi-core simulation semantics
// ---------------------------------------------------------------------------

TEST(MultiCoreSim, EventsDispatchInGlobalDueSeqOrderAcrossCores) {
  Simulation sim;
  sim.ConfigureCores(3);
  std::vector<int> order;
  // Same due time on three cores: global (due, seq) order means insertion order,
  // regardless of which core each event homes on.
  sim.ScheduleAtOn(1, 10, [&] { order.push_back(1); });
  sim.ScheduleAtOn(2, 10, [&] { order.push_back(2); });
  sim.ScheduleAtOn(0, 10, [&] { order.push_back(0); });
  sim.ScheduleAtOn(2, 5, [&] { order.push_back(25); });
  sim.RunFor(100);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 25);  // earlier due wins over earlier seq
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 0);
}

TEST(MultiCoreSim, MergedSnapshotCountsEachRecordingOnceAndCountersOnce) {
  Simulation sim;
  sim.ConfigureCores(3);
  // One recording per core into the same named series, plus global counters.
  for (int core = 0; core < 3; ++core) {
    Histogram* h = sim.metrics(core).NamedHistogram("smp/test_series");
    sim.metrics(core).RecordNamed(h, 100 + static_cast<std::uint64_t>(core));
  }
  sim.counters().Add(Counter::kWakeups, 5);

  MetricsSnapshot snap = sim.MergedSnapshot();
  auto it = snap.named.find("smp/test_series");
  ASSERT_NE(it, snap.named.end());
  // Three per-core histograms merge bucket-wise: exactly 3 samples, not 9.
  EXPECT_EQ(SummarizeHistogram(it->second).count, 3u);
  // Counters are simulation-global: merged once, not once per core.
  EXPECT_EQ(snap.counters[static_cast<std::size_t>(Counter::kWakeups)], 5u);
}

// ---------------------------------------------------------------------------
// PopReady: the claim/release contract stealing depends on
// ---------------------------------------------------------------------------

class PureLibOS final : public LibOS {
 public:
  explicit PureLibOS(HostCpu* host) : LibOS(host) {}
  std::string name() const override { return "pure"; }

 protected:
  Result<std::unique_ptr<IoQueue>> NewSocketQueue() override {
    return Status(ErrorCode::kUnsupported, "no device");
  }
};

TEST(PopReady, ClaimsCompletionOnceAndRejectsStaleToken) {
  Simulation sim;
  HostCpu host(&sim, "h");
  PureLibOS libos(&host);
  const QDesc qd = *libos.QueueCreate();
  auto push = libos.Push(qd, SgArray::FromString("req"));
  ASSERT_TRUE(push.ok());
  auto pop = libos.Pop(qd);
  ASSERT_TRUE(pop.ok());
  while (!libos.OpDone(*pop)) {
    ASSERT_TRUE(sim.StepOnce());
  }

  const std::uint64_t wakeups_before = sim.counters().Get(Counter::kWakeups);
  // Ring order is completion order: the push finished first, then the pop.
  ReadyCompletion rc;
  ASSERT_TRUE(libos.PopReady(&rc));
  EXPECT_EQ(rc.token, *push);
  EXPECT_EQ(rc.op, OpType::kPush);
  ASSERT_TRUE(libos.PopReady(&rc));
  EXPECT_EQ(rc.token, *pop);
  EXPECT_EQ(rc.op, OpType::kPop);
  EXPECT_EQ(rc.qd, qd);
  EXPECT_EQ(rc.result.sga.ToString(), "req");
  // Claiming released both tokens: a late consumer holding the stale token gets
  // kBadDescriptor instead of a second copy of the completion.
  auto stale = libos.TakeResult(*pop);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), ErrorCode::kBadDescriptor);
  // Exactly-one-wakeup: PopReady itself accounts nothing — the consuming worker
  // does — so claiming two completions here changed the counter by zero.
  EXPECT_EQ(sim.counters().Get(Counter::kWakeups), wakeups_before);
  // Drained ring reports empty.
  EXPECT_FALSE(libos.PopReady(&rc));
  EXPECT_EQ(libos.pending_ops(), 0u);
}

// ---------------------------------------------------------------------------
// SMP harness: sharding, stealing, chaos, determinism
// ---------------------------------------------------------------------------

SmpHarnessConfig SmallSmp(int workers, std::uint64_t seed = 7) {
  SmpHarnessConfig cfg;
  cfg.workers = workers;
  cfg.connections = 128;
  cfg.client_stacks = 4;
  cfg.ramp_batch = 64;
  cfg.seed = seed;
  cfg.server_request_cpu_ns = 5000;  // 200k rps per-core capacity
  return cfg;
}

TEST(SmpHarness, RssSpreadsFlowsAcrossAllWorkerShards) {
  SmpHarness h(SmallSmp(4));
  ASSERT_TRUE(h.Ramp());
  EXPECT_EQ(h.established_connections(), 128u);
  EXPECT_EQ(h.pool().total_accepted(), 128u);
  std::size_t total = 0;
  for (int w = 0; w < 4; ++w) {
    // The predicted shard (RssForTuple at connect time) matches where the NIC
    // actually landed each flow: per-worker accepts equal per-shard predictions.
    EXPECT_EQ(h.pool().worker(w).accepted(), h.shard_connections(w)) << "worker " << w;
    EXPECT_GT(h.shard_connections(w), 0u) << "shard " << w << " got no flows";
    total += h.shard_connections(w);
    // Each queue pair saw real traffic with per-queue DMA accounting.
    EXPECT_GT(h.server_nic().queue_stats(w).rx_frames, 0u);
    EXPECT_GT(h.server_nic().queue_stats(w).tx_frames, 0u);
  }
  EXPECT_EQ(total, 128u);
}

TEST(SmpHarness, NoStealingWhenDisabled) {
  SmpHarnessConfig cfg = SmallSmp(4);
  cfg.steal = false;
  cfg.shard_skew = 1.5;  // even under skew: disabled means disabled
  SmpHarness h(cfg);
  ASSERT_TRUE(h.Ramp());
  SweepPoint pt = h.RunPoint(100'000, 5 * kMillisecond, 20 * kMillisecond, "off");
  EXPECT_GT(pt.completed, 0u);
  EXPECT_EQ(h.pool().total_stolen(), 0u);
  EXPECT_EQ(h.sim().counters().Get(Counter::kCompletionsStolen), 0u);
  EXPECT_EQ(h.sim().counters().Get(Counter::kStealAttempts), 0u);
}

TEST(SmpHarness, StealingMovesCompletionsOffTheHotShard) {
  SmpHarnessConfig cfg = SmallSmp(4);
  cfg.steal = true;
  cfg.shard_skew = 1.5;
  SmpHarness h(cfg);
  ASSERT_TRUE(h.Ramp());
  // Shard 0 carries ~60% of the offered load: 500k aggregate puts it well past
  // one core's 200k capacity while its neighbours have headroom — the imbalance
  // stealing exists to absorb.
  SweepPoint pt = h.RunPoint(500'000, 5 * kMillisecond, 20 * kMillisecond, "skew");
  EXPECT_GT(pt.completed, 0u);
  EXPECT_GT(h.sim().counters().Get(Counter::kStealAttempts), 0u);
  EXPECT_GT(h.pool().total_stolen(), 0u);
  EXPECT_EQ(h.sim().counters().Get(Counter::kCompletionsStolen),
            h.pool().total_stolen());
}

TEST(SmpHarness, NicDeathLeavesNoHungQToken) {
  SmpHarnessConfig cfg = SmallSmp(4);
  cfg.shard_skew = 1.0;
  SmpHarness h(cfg);
  ASSERT_TRUE(h.Ramp());
  FaultInjector faults(&h.sim(), /*seed=*/3);
  h.server_nic().AttachFaultInjector(&faults);

  // Load running, thieves active, then the bypass NIC dies mid-flight.
  h.StopLoad();
  std::ignore = h.RunPoint(300'000, 2 * kMillisecond, 5 * kMillisecond, "preface");
  faults.ScheduleDeviceFailure(h.server_nic().fault_device(), h.sim().now() + kMillisecond);
  h.sim().RunFor(10 * kMillisecond);
  h.StopLoad();
  // Let every worker drain its rings, fail its pops, and retire its accept.
  h.sim().RunFor(100 * kMillisecond);
  // The invariant: device death may fail every operation, but it may not strand
  // one — no pending qtoken survives anywhere in the pool.
  EXPECT_EQ(h.pool().total_pending_ops(), 0u);
}

struct SmpDigest {
  TimeNs end_clock;
  std::uint64_t issued;
  std::uint64_t completed;
  std::uint64_t served;
  std::uint64_t stolen;
  std::uint64_t wakeups;
  std::uint64_t steal_attempts;

  bool operator==(const SmpDigest&) const = default;
};

SmpDigest RunDigest(int workers, std::uint64_t seed) {
  SmpHarnessConfig cfg = SmallSmp(workers, seed);
  cfg.connections = 64;
  cfg.client_stacks = 2;
  cfg.shard_skew = 1.0;
  SmpHarness h(cfg);
  EXPECT_TRUE(h.Ramp());
  std::ignore = h.RunPoint(150'000, 2 * kMillisecond, 10 * kMillisecond, "det");
  return SmpDigest{h.sim().now(),
                   h.issued_total(),
                   h.completed_total(),
                   h.pool().total_served(),
                   h.pool().total_stolen(),
                   h.sim().counters().Get(Counter::kWakeups),
                   h.sim().counters().Get(Counter::kStealAttempts)};
}

// Same seed, same config -> bit-identical execution at EVERY core count: the
// fixed core-interleaving makes the multi-core schedule a deterministic function
// of the seed, stealing included.
TEST(SmpDeterminism, SameSeedIsBitIdenticalAtEveryCoreCount) {
  for (int workers : {1, 2, 4}) {
    const SmpDigest a = RunDigest(workers, 11);
    const SmpDigest b = RunDigest(workers, 11);
    EXPECT_EQ(a, b) << "workers=" << workers;
    EXPECT_GT(a.completed, 0u) << "workers=" << workers;
  }
}

TEST(SmpDeterminism, DifferentSeedsDiverge) {
  const SmpDigest a = RunDigest(2, 11);
  const SmpDigest b = RunDigest(2, 12);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace demi
