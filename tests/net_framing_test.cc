// Tests for message framing: the element-boundary guarantee of §4.2 over arbitrary
// stream chunking, including pathological 1-byte feeds and corrupt lengths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/net/framing.h"

namespace demi {
namespace {

SgArray DecodeOne(FrameDecoder& dec) {
  auto r = dec.Next();
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.value().has_value());
  return std::move(*r.value());
}

TEST(FramingTest, EncodeProducesHeaderPlusSegments) {
  SgArray sga;
  sga.Append(Buffer::CopyOf("abc"));
  sga.Append(Buffer::CopyOf("de"));
  auto parts = EncodeFrame(sga);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);
  // Payload parts are the same storage (zero copy).
  EXPECT_EQ(parts[1].storage(), sga.segment(0).storage());
}

TEST(FramingTest, RoundTripSingleMessage) {
  SgArray in = SgArray::FromString("the quick brown fox");
  FrameDecoder dec;
  for (const Buffer& p : EncodeFrame(in)) {
    dec.Feed(p);
  }
  EXPECT_EQ(DecodeOne(dec).ToString(), "the quick brown fox");
  auto r = dec.Next();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());  // stream drained
}

TEST(FramingTest, EmptyMessageRoundTrips) {
  SgArray in;
  FrameDecoder dec;
  for (const Buffer& p : EncodeFrame(in)) {
    dec.Feed(p);
  }
  EXPECT_EQ(DecodeOne(dec).total_bytes(), 0u);
}

TEST(FramingTest, BackToBackMessagesKeepBoundaries) {
  FrameDecoder dec;
  for (const char* msg : {"first", "second message", "3"}) {
    for (const Buffer& p : EncodeFrame(SgArray::FromString(msg))) {
      dec.Feed(p);
    }
  }
  EXPECT_EQ(DecodeOne(dec).ToString(), "first");
  EXPECT_EQ(DecodeOne(dec).ToString(), "second message");
  EXPECT_EQ(DecodeOne(dec).ToString(), "3");
}

TEST(FramingTest, OneByteAtATime) {
  SgArray in = SgArray::FromString("byte by byte");
  Buffer wire = ConcatCopy(EncodeFrame(in));
  FrameDecoder dec;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    dec.Feed(wire.Slice(i, 1));
    auto r = dec.Next();
    ASSERT_TRUE(r.ok());
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(r.value().has_value()) << "premature message at byte " << i;
    } else {
      ASSERT_TRUE(r.value().has_value());
      EXPECT_EQ(r.value()->ToString(), "byte by byte");
    }
  }
}

TEST(FramingTest, PartialHeaderAcrossChunks) {
  SgArray in = SgArray::FromString("split header");
  Buffer wire = ConcatCopy(EncodeFrame(in));
  FrameDecoder dec;
  dec.Feed(wire.Slice(0, 2));  // half the length prefix
  auto r1 = dec.Next();
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().has_value());
  dec.Feed(wire.Slice(2));
  EXPECT_EQ(DecodeOne(dec).ToString(), "split header");
}

TEST(FramingTest, OversizedLengthIsProtocolError) {
  Buffer evil = Buffer::Allocate(4);
  evil.mutable_data()[0] = std::byte{0xFF};
  evil.mutable_data()[1] = std::byte{0xFF};
  evil.mutable_data()[2] = std::byte{0xFF};
  evil.mutable_data()[3] = std::byte{0xFF};
  FrameDecoder dec;
  dec.Feed(evil);
  auto r = dec.Next();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kProtocolError);
}

TEST(FramingTest, OversizedLengthPoisonsTheDecoder) {
  // The corrupt length has already been pulled off the stream when the error
  // surfaces, so there is no frame boundary left to resynchronize on. A caller that
  // keeps calling Next() must keep getting the error — NOT a misparse of whatever
  // bytes follow (which here form a perfectly valid frame, the worst case: a naive
  // decoder would silently deliver it as if nothing happened).
  Buffer evil = Buffer::Allocate(4);
  for (int i = 0; i < 4; ++i) {
    evil.mutable_data()[i] = std::byte{0xFF};
  }
  FrameDecoder dec;
  dec.Feed(evil);
  for (const Buffer& p : EncodeFrame(SgArray::FromString("valid frame"))) {
    dec.Feed(p);
  }
  for (int i = 0; i < 3; ++i) {
    auto r = dec.Next();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kProtocolError);
  }
  EXPECT_TRUE(dec.poisoned());
}

TEST(FramingTest, MultiSegmentSgaPreservesBytes) {
  SgArray in;
  in.Append(Buffer::CopyOf("seg1-"));
  in.Append(Buffer::CopyOf("seg2-"));
  in.Append(Buffer::CopyOf("seg3"));
  FrameDecoder dec;
  for (const Buffer& p : EncodeFrame(in)) {
    dec.Feed(p);
  }
  EXPECT_EQ(DecodeOne(dec).ToString(), "seg1-seg2-seg3");
}

// Property test: random messages through random chunking always reassemble exactly,
// whatever the chunk boundaries.
class FramingFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FramingFuzzTest, RandomChunkingPreservesMessages) {
  Rng rng(GetParam());
  std::vector<std::string> messages;
  std::vector<Buffer> wire_parts;
  for (int i = 0; i < 50; ++i) {
    std::string msg(rng.NextBelow(2000), ' ');
    for (auto& ch : msg) {
      ch = static_cast<char>('a' + rng.NextBelow(26));
    }
    messages.push_back(msg);
    for (const Buffer& p : EncodeFrame(SgArray::FromString(msg))) {
      wire_parts.push_back(p);
    }
  }
  Buffer wire = ConcatCopy(wire_parts);

  FrameDecoder dec;
  std::vector<std::string> decoded;
  std::size_t at = 0;
  while (at < wire.size()) {
    const std::size_t chunk = std::min<std::size_t>(1 + rng.NextBelow(700), wire.size() - at);
    dec.Feed(wire.Slice(at, chunk));
    at += chunk;
    while (true) {
      auto r = dec.Next();
      ASSERT_TRUE(r.ok());
      if (!r.value().has_value()) {
        break;
      }
      decoded.push_back(r.value()->ToString());
    }
  }
  EXPECT_EQ(decoded, messages);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramingFuzzTest, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace demi
