// Tests for the simulated legacy kernel: syscall costs, socket copies, epoll
// semantics (including the thundering herd §4.4 targets), VFS, and fsync durability.

#include <gtest/gtest.h>

#include <string>

#include "src/hw/block_device.h"
#include "src/hw/fabric.h"
#include "src/kernel/kernel.h"

namespace demi {
namespace {

struct KernelRig {
  KernelRig()
      : sim(),
        fabric(&sim),
        cpu_a(&sim, "a"),
        cpu_b(&sim, "b"),
        nic_a(&cpu_a, &fabric, MacAddress::ForHost(1)),
        nic_b(&cpu_b, &fabric, MacAddress::ForHost(2)),
        bdev_a(&cpu_a),
        kernel_a(&cpu_a, &nic_a, &bdev_a, Config("10.0.0.1")),
        kernel_b(&cpu_b, &nic_b, nullptr, Config("10.0.0.2")) {}

  static SimKernelConfig Config(const char* ip) {
    SimKernelConfig cfg;
    cfg.ip = Ipv4Address::Parse(ip);
    return cfg;
  }

  // Connects b -> a:port. Returns {server_fd, client_fd}.
  std::pair<int, int> Connect(std::uint16_t port) {
    const int lfd = *kernel_a.Socket();
    EXPECT_TRUE(kernel_a.Bind(lfd, port).ok());
    EXPECT_TRUE(kernel_a.Listen(lfd).ok());
    const int cfd = *kernel_b.Socket();
    EXPECT_TRUE(kernel_b.Connect(cfd, Endpoint{Ipv4Address::Parse("10.0.0.1"), port}).ok());
    int sfd = -1;
    EXPECT_TRUE(sim.RunUntil(
        [&] {
          auto r = kernel_a.Accept(lfd);
          if (r.ok()) {
            sfd = *r;
            return true;
          }
          return false;
        },
        10 * kSecond));
    EXPECT_TRUE(sim.RunUntil([&] { return kernel_b.ConnectSucceeded(cfd); }, kSecond));
    return {sfd, cfd};
  }

  Simulation sim;
  Fabric fabric;
  HostCpu cpu_a, cpu_b;
  SimNic nic_a, nic_b;
  BlockDevice bdev_a;
  SimKernel kernel_a, kernel_b;
};

TEST(KernelSocketTest, ConnectAcceptReadWrite) {
  KernelRig rig;
  auto [sfd, cfd] = rig.Connect(7777);
  ASSERT_TRUE(rig.kernel_b.WriteSock(cfd, Buffer::CopyOf("hello kernel")).ok());
  Buffer got;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto r = rig.kernel_a.ReadSock(sfd, 4096);
        if (r.ok()) {
          got = *r;
          return true;
        }
        return false;
      },
      10 * kSecond));
  EXPECT_EQ(got.AsStringView(), "hello kernel");
}

TEST(KernelSocketTest, EverySyscallChargesCrossing) {
  KernelRig rig;
  const std::uint64_t before = rig.cpu_a.counters().Get(Counter::kSyscalls);
  (void)*rig.kernel_a.Socket();
  EXPECT_EQ(rig.cpu_a.counters().Get(Counter::kSyscalls), before + 1);
}

TEST(KernelSocketTest, ReadAndWriteCopyBytes) {
  KernelRig rig;
  auto [sfd, cfd] = rig.Connect(7778);
  const std::uint64_t copied_before = rig.sim.counters().Get(Counter::kBytesCopied);
  const std::string data(4096, 'k');
  ASSERT_TRUE(rig.kernel_b.WriteSock(cfd, Buffer::CopyOf(data)).ok());
  std::size_t received = 0;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto r = rig.kernel_a.ReadSock(sfd, 8192);
        if (r.ok()) {
          received += r->size();
        }
        return received >= 4096;
      },
      10 * kSecond));
  // write copies user->kernel on b; reads copy kernel->user on a: >= 8 KB total.
  EXPECT_GE(rig.sim.counters().Get(Counter::kBytesCopied) - copied_before, 8192u);
}

TEST(KernelSocketTest, ReceiveInterruptsFire) {
  KernelRig rig;
  auto [sfd, cfd] = rig.Connect(7779);
  const std::uint64_t irq_before = rig.cpu_a.counters().Get(Counter::kInterrupts);
  ASSERT_TRUE(rig.kernel_b.WriteSock(cfd, Buffer::CopyOf("ping")).ok());
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] { return rig.kernel_a.ReadSock(sfd, 64).ok(); }, 10 * kSecond));
  EXPECT_GT(rig.cpu_a.counters().Get(Counter::kInterrupts), irq_before);
}

TEST(KernelSocketTest, BadFdRejected) {
  KernelRig rig;
  EXPECT_EQ(rig.kernel_a.ReadSock(99, 100).code(), ErrorCode::kBadDescriptor);
  EXPECT_EQ(rig.kernel_a.WriteSock(99, Buffer::CopyOf("x")).code(),
            ErrorCode::kBadDescriptor);
  EXPECT_EQ(rig.kernel_a.Listen(99).code(), ErrorCode::kBadDescriptor);
}

TEST(KernelEpollTest, WaitReportsReadableSocket) {
  KernelRig rig;
  auto [sfd, cfd] = rig.Connect(7780);
  const int epfd = *rig.kernel_a.EpollCreate();
  ASSERT_TRUE(rig.kernel_a.EpollAdd(epfd, sfd, kEpollIn).ok());
  auto empty = rig.kernel_a.EpollWait(epfd, 8);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  ASSERT_TRUE(rig.kernel_b.WriteSock(cfd, Buffer::CopyOf("wake up")).ok());
  std::vector<EpollEvent> events;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto r = rig.kernel_a.EpollWait(epfd, 8);
        if (r.ok() && !r->empty()) {
          events = *r;
          return true;
        }
        return false;
      },
      10 * kSecond));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, sfd);
  EXPECT_TRUE(events[0].events & kEpollIn);
}

TEST(KernelEpollTest, ThunderingHerdWakesAllBlockedWaiters) {
  KernelRig rig;
  auto [sfd, cfd] = rig.Connect(7781);
  const int epfd = *rig.kernel_a.EpollCreate();
  ASSERT_TRUE(rig.kernel_a.EpollAdd(epfd, sfd, kEpollIn).ok());
  // Park 8 logical threads on the same epoll fd.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.kernel_a.EpollBlock(epfd).ok());
  }
  EXPECT_EQ(rig.kernel_a.EpollBlockedCount(epfd), 8);
  const std::uint64_t wakeups_before = rig.cpu_a.counters().Get(Counter::kWakeups);
  const std::uint64_t spurious_before = rig.cpu_a.counters().Get(Counter::kSpuriousWakeups);

  ASSERT_TRUE(rig.kernel_b.WriteSock(cfd, Buffer::CopyOf("one event")).ok());
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] { return rig.kernel_a.EpollBlockedCount(epfd) == 0; }, 10 * kSecond));

  // One event, eight wakeups, seven of them wasted — the §4.4 pathology.
  EXPECT_EQ(rig.cpu_a.counters().Get(Counter::kWakeups) - wakeups_before, 8u);
  EXPECT_EQ(rig.cpu_a.counters().Get(Counter::kSpuriousWakeups) - spurious_before, 7u);
}

TEST(KernelFileTest, WriteReadRoundTrip) {
  KernelRig rig;
  const int fd = *rig.kernel_a.OpenFile("/data/file", /*create=*/true);
  ASSERT_TRUE(rig.kernel_a.WriteFile(fd, Buffer::CopyOf("file contents")).ok());
  const int fd2 = *rig.kernel_a.OpenFile("/data/file", /*create=*/false);
  auto r = rig.kernel_a.ReadFile(fd2, 64);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsStringView(), "file contents");
}

TEST(KernelFileTest, FsyncPersistsToDevice) {
  KernelRig rig;
  const int fd = *rig.kernel_a.OpenFile("/data/synced", /*create=*/true);
  ASSERT_TRUE(rig.kernel_a.WriteFile(fd, Buffer::CopyOf(std::string(8192, 's'))).ok());
  const std::uint64_t nvme_before = rig.cpu_a.counters().Get(Counter::kNvmeOps);
  auto token = rig.kernel_a.FsyncStart(fd);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.kernel_a.FsyncDone(*token); },
                               10 * kSecond));
  // Two data pages + flush hit the device.
  EXPECT_GE(rig.cpu_a.counters().Get(Counter::kNvmeOps) - nvme_before, 3u);
}

TEST(KernelFileTest, ColdReadGoesToDeviceAfterDropCaches) {
  KernelRig rig;
  const int fd = *rig.kernel_a.OpenFile("/data/cold", /*create=*/true);
  ASSERT_TRUE(rig.kernel_a.WriteFile(fd, Buffer::CopyOf(std::string(4096, 'c'))).ok());
  auto token = rig.kernel_a.FsyncStart(fd);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.kernel_a.FsyncDone(*token); },
                               10 * kSecond));
  rig.kernel_a.DropCaches();

  const int fd2 = *rig.kernel_a.OpenFile("/data/cold", /*create=*/false);
  auto first = rig.kernel_a.ReadFile(fd2, 4096);
  EXPECT_EQ(first.code(), ErrorCode::kWouldBlock);  // major fault: device read started
  Buffer data;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto r = rig.kernel_a.ReadFile(fd2, 4096);
        if (r.ok()) {
          data = *r;
          return true;
        }
        return false;
      },
      10 * kSecond));
  EXPECT_EQ(data.size(), 4096u);
  EXPECT_EQ(std::to_integer<char>(data.span()[0]), 'c');
}

TEST(KernelFileTest, MissingFileFailsOpen) {
  KernelRig rig;
  EXPECT_EQ(rig.kernel_a.OpenFile("/nope", /*create=*/false).code(), ErrorCode::kNotFound);
}

TEST(KernelControlPathTest, NicQueueLeaseIsBoundedAndCharged) {
  KernelRig rig;
  // nic_a has 1 queue (queue 0, the kernel's): nothing to lease.
  EXPECT_EQ(rig.kernel_a.AllocateNicQueue().code(), ErrorCode::kResourceExhausted);

  // A multi-queue NIC leases exactly num_queues-1.
  NicConfig cfg;
  cfg.num_queues = 3;
  HostCpu cpu(&rig.sim, "c");
  SimNic nic(&cpu, &rig.fabric, MacAddress::ForHost(9), cfg);
  SimKernelConfig kcfg;
  kcfg.ip = Ipv4Address::Parse("10.0.0.9");
  SimKernel kernel(&cpu, &nic, nullptr, kcfg);
  EXPECT_EQ(*kernel.AllocateNicQueue(), 1);
  EXPECT_EQ(*kernel.AllocateNicQueue(), 2);
  EXPECT_EQ(kernel.AllocateNicQueue().code(), ErrorCode::kResourceExhausted);
}

TEST(KernelVfsTest, PageAccountingAndDirtyTracking) {
  Vfs vfs;
  FsNode* node = vfs.OpenOrCreate("/x");
  const std::string data(10000, 'v');
  const std::size_t touched =
      vfs.WriteAt(node, 0, std::as_bytes(std::span(data.data(), data.size())));
  EXPECT_EQ(touched, 3u);  // 10000 bytes = 3 pages
  EXPECT_EQ(node->size, 10000u);
  EXPECT_EQ(node->dirty_pages.size(), 3u);
  auto items = vfs.CollectDirty(node);
  EXPECT_EQ(items.size(), 3u);
  EXPECT_TRUE(node->dirty_pages.empty());
}

}  // namespace
}  // namespace demi
