// Tests for the storage push-down engine (DESIGN.md §14): device-side resubmission
// chains on the block device, the Catfish install/invoke surface, the BlockIndex
// workload, and fault interaction (mid-chain media errors, whole-chain retry,
// close-with-inflight-chain).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/apps/block_index.h"
#include "src/common/byte_order.h"
#include "src/core/harness.h"
#include "src/hw/block_device.h"

namespace demi {
namespace {

// --- device-level chains (no libOS) ---

struct PushdownRig {
  PushdownRig() : sim(), host(&sim, "storage"), dev(&host) {}
  explicit PushdownRig(BlockDeviceConfig cfg)
      : sim(), host(&sim, "storage"), dev(&host, cfg) {}

  // Runs until `id` completes; returns the full completion.
  BlockCompletion WaitFor(std::uint64_t id) {
    BlockCompletion out;
    out.status = Internal("never completed");
    const bool done = sim.RunUntil(
        [&] {
          for (auto& c : dev.PollCompletions()) {
            if (c.id == id) {
              out = std::move(c);
              return true;
            }
          }
          return false;
        },
        kSecond);
    EXPECT_TRUE(done);
    return out;
  }

  // Writes a chain node: bytes [0,8) = next LBA (0 terminates), [8,16) = value.
  void WriteNode(std::uint64_t lba, std::uint64_t next, std::uint64_t value) {
    Buffer b = Buffer::Allocate(4096);
    ByteWriter w(b.mutable_span());
    w.U64(next);
    w.U64(value);
    static std::uint64_t id = 1000000;
    ASSERT_TRUE(dev.SubmitWrite(++id, lba, std::move(b)).ok());
    EXPECT_TRUE(WaitFor(id).status.ok());
  }

  Simulation sim;
  HostCpu host;
  BlockDevice dev;
};

// Follow-the-pointer program over PushdownRig::WriteNode blocks.
PushdownProgram ChainProgram() {
  PushdownProgram prog;
  prog.fn = [](const PushdownContext& ctx) -> Result<PushdownAction> {
    ByteReader r(ctx.block);
    const std::uint64_t next = r.U64();
    if (next == 0) {
      return PushdownAction::Finish(Buffer::CopyOf(ctx.block.subspan(8, 8)));
    }
    return PushdownAction::Resubmit(next);
  };
  return prog;
}

std::uint64_t ValueOf(const BlockCompletion& c) {
  ByteReader r(c.payload.span());
  return r.U64();
}

TEST(StoragePushdownTest, ChainFollowsPointersWithOneHostCompletion) {
  PushdownRig rig;
  rig.WriteNode(10, 20, 0);
  rig.WriteNode(20, 30, 0);
  rig.WriteNode(30, 0, 777);
  const auto prog = rig.dev.InstallProgram(ChainProgram());
  ASSERT_TRUE(prog.ok()) << prog.status();

  const std::uint64_t completions0 =
      rig.sim.counters().Get(Counter::kBlockHostCompletions);
  const std::uint64_t nvme0 = rig.sim.counters().Get(Counter::kNvmeOps);
  ASSERT_TRUE(rig.dev.SubmitPushdown(1, 10, *prog, Buffer{}).ok());
  const BlockCompletion c = rig.WaitFor(1);
  ASSERT_TRUE(c.status.ok()) << c.status;
  EXPECT_EQ(ValueOf(c), 777u);
  EXPECT_EQ(c.pushdown_steps, 3u);

  // The whole depth-3 chain cost ONE host completion but still three media reads.
  EXPECT_EQ(rig.sim.counters().Get(Counter::kBlockHostCompletions) - completions0, 1u);
  EXPECT_EQ(rig.sim.counters().Get(Counter::kNvmeOps) - nvme0, 3u);
  EXPECT_EQ(rig.sim.counters().Get(Counter::kPushdownChains), 1u);
  EXPECT_EQ(rig.sim.counters().Get(Counter::kPushdownSteps), 3u);
  EXPECT_EQ(rig.dev.inflight(), 0u);
}

TEST(StoragePushdownTest, ChainTimingChargesDeviceComputePerStep) {
  PushdownRig rig;
  rig.WriteNode(10, 20, 0);
  rig.WriteNode(20, 0, 1);
  const auto prog = rig.dev.InstallProgram(ChainProgram());
  ASSERT_TRUE(prog.ok());

  const TimeNs start = rig.sim.now();
  ASSERT_TRUE(rig.dev.SubmitPushdown(1, 10, *prog, Buffer{}).ok());
  ASSERT_TRUE(rig.WaitFor(1).status.ok());
  const TimeNs elapsed = rig.sim.now() - start;

  // Two media reads + two program executions on the wimpier device cores + one
  // internal resubmission; no PCIe round trip between the steps.
  const CostModel& cost = rig.sim.cost();
  const TimeNs read = cost.NvmeNs(/*is_write=*/false, 4096);
  const TimeNs exec = static_cast<TimeNs>(400 * cost.device_compute_factor);
  EXPECT_GE(elapsed, 2 * read + 2 * exec + cost.nvme_pushdown_resubmit_ns);
  EXPECT_GE(rig.sim.counters().Get(Counter::kDeviceComputeNs),
            static_cast<std::uint64_t>(2 * exec));
}

TEST(StoragePushdownTest, DepthBudgetSurfacesTypedError) {
  BlockDeviceConfig cfg;
  cfg.pushdown_max_depth = 4;
  PushdownRig rig(cfg);
  rig.WriteNode(10, 10, 0);  // self-loop: never terminates on its own
  const auto prog = rig.dev.InstallProgram(ChainProgram());
  ASSERT_TRUE(prog.ok());

  ASSERT_TRUE(rig.dev.SubmitPushdown(1, 10, *prog, Buffer{}).ok());
  const BlockCompletion c = rig.WaitFor(1);
  EXPECT_EQ(c.status.code(), ErrorCode::kPushdownDepthExceeded) << c.status;
  EXPECT_EQ(c.pushdown_steps, 4u);
  EXPECT_EQ(rig.dev.inflight(), 0u);
}

TEST(StoragePushdownTest, DisabledEngineSurfacesUnsupported) {
  BlockDeviceConfig cfg;
  cfg.pushdown_enabled = false;
  PushdownRig rig(cfg);
  EXPECT_EQ(rig.dev.InstallProgram(ChainProgram()).code(),
            ErrorCode::kPushdownUnsupported);
  EXPECT_EQ(rig.dev.SubmitPushdown(1, 10, 0, Buffer{}).code(),
            ErrorCode::kPushdownUnsupported);
  EXPECT_FALSE(rig.dev.caps().program_offload);
}

TEST(StoragePushdownTest, MidChainMediaErrorIsOneTypedCompletion) {
  PushdownRig rig;
  rig.WriteNode(10, 20, 0);
  rig.WriteNode(20, 30, 0);
  rig.WriteNode(30, 0, 99);
  const auto prog = rig.dev.InstallProgram(ChainProgram());
  ASSERT_TRUE(prog.ok());

  FaultInjector inj(&rig.sim, /*seed=*/3);
  rig.dev.AttachFaultInjector(&inj);

  // Arm the fault between step 0 and step 1 of the chain: step 0's consult happens at
  // submit time, step 1's roughly one read + exec + resubmit later. The fault then
  // lands on a DEVICE-INTERNAL read — genuinely mid-chain.
  const TimeNs read = rig.sim.cost().NvmeNs(/*is_write=*/false, 4096);
  inj.ScheduleOpFault(rig.dev.fault_device(), FaultKind::kMediaError,
                      rig.sim.now() + read);
  ASSERT_TRUE(rig.dev.SubmitPushdown(1, 10, *prog, Buffer{}).ok());
  const BlockCompletion c = rig.WaitFor(1);
  EXPECT_EQ(c.status.code(), ErrorCode::kMediaError) << c.status;
  EXPECT_EQ(c.pushdown_steps, 2u);  // root fetch + the faulted internal read
  EXPECT_EQ(rig.dev.inflight(), 0u);

  // Exactly one completion: nothing else trickles out of the CQ later.
  rig.sim.RunFor(10 * kMillisecond);
  EXPECT_TRUE(rig.dev.PollCompletions().empty());
}

// --- libOS + BlockIndex workload ---

HostOptions BlockOpts() {
  HostOptions o;
  o.with_nic = false;
  o.with_kernel = false;
  o.with_block_device = true;
  return o;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> MakeEntries(std::size_t n) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = 10 + 2 * i;
    entries.emplace_back(key, key * 7 + 1);
  }
  return entries;
}

TEST(StoragePushdownTest, IndexLookupMatchesHostDescent) {
  TestHarness h;
  auto& host = h.AddHost("storage", "10.0.0.1", BlockOpts());
  auto& libos = h.Catfish(host);

  const auto entries = MakeEntries(64);
  auto index = BlockIndex::Build(libos, "/idx/kv", entries, /*fanout=*/4);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->depth(), 3u);  // 16 leaves -> 4 inner -> 1 root
  const auto prog = libos.InstallPushdownProgram(BlockIndex::LookupProgram());
  ASSERT_TRUE(prog.ok()) << prog.status();
  EXPECT_TRUE(host.bdev->caps().program_offload);

  for (const auto& [key, value] : {entries.front(), entries[31], entries.back()}) {
    auto host_hit = index->LookupFromHost(key);
    ASSERT_TRUE(host_hit.ok()) << host_hit.status();
    EXPECT_EQ(host_hit->value, value);
    EXPECT_EQ(host_hit->steps, index->depth());

    auto token = index->LookupAsync(*prog, key);
    ASSERT_TRUE(token.ok()) << token.status();
    auto r = libos.Wait(*token);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->status.ok()) << r->status;
    EXPECT_EQ(BlockIndex::DecodeValue(r->sga), value);
  }

  // A key that was never inserted misses identically on both paths.
  auto host_miss = index->LookupFromHost(11);
  EXPECT_EQ(host_miss.code(), ErrorCode::kNotFound);
  auto miss_token = index->LookupAsync(*prog, 11);
  ASSERT_TRUE(miss_token.ok());
  auto miss = libos.Wait(*miss_token);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->status.code(), ErrorCode::kNotFound) << miss->status;
  EXPECT_EQ(libos.pending_ops(), 0u);
}

TEST(StoragePushdownTest, PushdownCutsHostCompletionsPerLookupToOne) {
  TestHarness h;
  auto& host = h.AddHost("storage", "10.0.0.1", BlockOpts());
  auto& libos = h.Catfish(host);

  const auto entries = MakeEntries(64);
  auto index = BlockIndex::Build(libos, "/idx/kv", entries, /*fanout=*/4);
  ASSERT_TRUE(index.ok()) << index.status();
  const auto prog = libos.InstallPushdownProgram(BlockIndex::LookupProgram());
  ASSERT_TRUE(prog.ok());

  auto completions = [&] {
    return h.sim().counters().Get(Counter::kBlockHostCompletions);
  };

  const std::uint64_t before_host = completions();
  ASSERT_TRUE(index->LookupFromHost(entries[10].first).ok());
  const std::uint64_t host_path = completions() - before_host;
  EXPECT_EQ(host_path, index->depth());  // one CQ drain per level

  const std::uint64_t before_push = completions();
  auto token = index->LookupAsync(*prog, entries[10].first);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(libos.Wait(*token)->status.ok());
  const std::uint64_t push_path = completions() - before_push;
  EXPECT_EQ(push_path, 1u);  // O(depth) -> 1, the point of the engine
}

TEST(StoragePushdownTest, MidChainFaultRetriesWholeChain) {
  CatfishConfig cfg;
  cfg.recovery.enabled = true;
  TestHarness h;
  auto& host = h.AddHost("storage", "10.0.0.1", BlockOpts());
  auto& libos = h.Catfish(host, cfg);

  const auto entries = MakeEntries(64);
  auto index = BlockIndex::Build(libos, "/idx/kv", entries, /*fanout=*/4);
  ASSERT_TRUE(index.ok()) << index.status();
  const auto prog = libos.InstallPushdownProgram(BlockIndex::LookupProgram());
  ASSERT_TRUE(prog.ok());

  // The armed media error aborts the first chain on a device-internal step; the retry
  // wrapper must resubmit the WHOLE chain from the root, and that second chain wins.
  h.faults().ScheduleOpFault(host.bdev->fault_device(), FaultKind::kMediaError,
                             h.sim().now());
  h.sim().RunFor(kMicrosecond);
  const std::uint64_t retries0 = h.sim().counters().Get(Counter::kRetriesAttempted);
  const std::uint64_t chains0 = h.sim().counters().Get(Counter::kPushdownChains);

  auto token = index->LookupAsync(*prog, entries[20].first);
  ASSERT_TRUE(token.ok()) << token.status();
  auto r = libos.Wait(*token);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->status.ok()) << r->status;
  EXPECT_EQ(BlockIndex::DecodeValue(r->sga), entries[20].second);
  EXPECT_GE(h.sim().counters().Get(Counter::kRetriesAttempted) - retries0, 1u);
  EXPECT_GE(h.sim().counters().Get(Counter::kPushdownChains) - chains0, 2u);
  EXPECT_EQ(libos.pending_ops(), 0u);
}

TEST(StoragePushdownTest, CloseWithInflightChainCancelsToken) {
  TestHarness h;
  auto& host = h.AddHost("storage", "10.0.0.1", BlockOpts());
  auto& libos = h.Catfish(host);

  const auto entries = MakeEntries(64);
  auto index = BlockIndex::Build(libos, "/idx/kv", entries, /*fanout=*/4);
  ASSERT_TRUE(index.ok()) << index.status();
  const auto prog = libos.InstallPushdownProgram(BlockIndex::LookupProgram());
  ASSERT_TRUE(prog.ok());

  // Chain submitted but the simulation has not advanced: the completion is in flight.
  auto token = index->LookupAsync(*prog, entries[5].first);
  ASSERT_TRUE(token.ok()) << token.status();
  ASSERT_TRUE(libos.Close(index->qd()).ok());

  auto r = libos.Wait(*token, kMillisecond);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->status.code(), ErrorCode::kCancelled) << r->status;
  EXPECT_EQ(libos.pending_ops(), 0u);

  // The orphaned device completion must not crash or resurrect the token.
  h.sim().RunFor(10 * kMillisecond);
  EXPECT_EQ(libos.pending_ops(), 0u);
}

TEST(StoragePushdownTest, PushdownRootOutsideExtentIsRejected) {
  TestHarness h;
  auto& host = h.AddHost("storage", "10.0.0.1", BlockOpts());
  auto& libos = h.Catfish(host);

  const auto entries = MakeEntries(8);
  auto index = BlockIndex::Build(libos, "/idx/kv", entries, /*fanout=*/4);
  ASSERT_TRUE(index.ok()) << index.status();
  const auto prog = libos.InstallPushdownProgram(BlockIndex::LookupProgram());
  ASSERT_TRUE(prog.ok());

  Buffer arg = Buffer::Allocate(8);
  auto bad = libos.PushdownRead(index->qd(), *prog, /*root_block=*/1 << 20,
                                SgArray(std::move(arg)));
  EXPECT_EQ(bad.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(libos.pending_ops(), 0u);  // the failed token was released
}

}  // namespace
}  // namespace demi
