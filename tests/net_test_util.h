// Shared two-host rigs for device- and stack-level tests.

#ifndef TESTS_NET_TEST_UTIL_H_
#define TESTS_NET_TEST_UTIL_H_

#include <memory>

#include "src/hw/fabric.h"
#include "src/hw/nic.h"
#include "src/net/stack.h"
#include "src/sim/simulation.h"

namespace demi {

// Two hosts with one NIC each on a shared fabric.
struct TwoHostRig {
  explicit TwoHostRig(FabricConfig fabric_cfg = FabricConfig{},
                      NicConfig nic_cfg = NicConfig{})
      : sim(),
        fabric(&sim, fabric_cfg),
        host_a(&sim, "host_a"),
        host_b(&sim, "host_b"),
        nic_a(&host_a, &fabric, MacAddress::ForHost(1), nic_cfg),
        nic_b(&host_b, &fabric, MacAddress::ForHost(2), nic_cfg) {}

  Simulation sim;
  Fabric fabric;
  HostCpu host_a;
  HostCpu host_b;
  SimNic nic_a;
  SimNic nic_b;
};

// Two hosts with NICs plus full user-level network stacks.
struct TwoStackRig : TwoHostRig {
  explicit TwoStackRig(FabricConfig fabric_cfg = FabricConfig{},
                       TcpConfig tcp_cfg = TcpConfig{})
      : TwoHostRig(fabric_cfg),
        stack_a(&host_a, &nic_a, MakeConfig("10.0.0.1", tcp_cfg, 1)),
        stack_b(&host_b, &nic_b, MakeConfig("10.0.0.2", tcp_cfg, 2)) {}

  static NetStackConfig MakeConfig(const char* ip, const TcpConfig& tcp, std::uint64_t seed) {
    NetStackConfig cfg;
    cfg.ip = Ipv4Address::Parse(ip);
    cfg.tcp = tcp;
    cfg.seed = seed;
    return cfg;
  }

  NetStack stack_a;
  NetStack stack_b;
};

// Builds a minimal, well-formed Ethernet frame carrying `payload` after the header.
inline Buffer MakeTestFrame(MacAddress dst, MacAddress src, std::string_view payload) {
  Buffer frame = Buffer::Allocate(kEthHeaderSize + payload.size());
  WriteEthHeader(frame.mutable_span(), EthHeader{dst, src, 0x88B5 /* experimental */});
  std::memcpy(frame.mutable_data() + kEthHeaderSize, payload.data(), payload.size());
  return frame;
}

}  // namespace demi

#endif  // TESTS_NET_TEST_UTIL_H_
