// Tests for the memory manager: transparent registration, free-protection via
// refcounts, pooling, and SgArray semantics (§4.5 of the paper).

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/rdma.h"
#include "src/memory/memory_manager.h"
#include "src/memory/sgarray.h"

namespace demi {
namespace {

struct MemRig {
  MemRig() : sim(), host(&sim, "h"), mgr(&host) {}
  Simulation sim;
  HostCpu host;
  MemoryManager mgr;
};

TEST(SgArrayTest, EmptyByDefault) {
  SgArray sga;
  EXPECT_TRUE(sga.empty());
  EXPECT_EQ(sga.segment_count(), 0u);
  EXPECT_EQ(sga.total_bytes(), 0u);
}

TEST(SgArrayTest, AppendAccumulates) {
  SgArray sga;
  sga.Append(Buffer::CopyOf("abc"));
  sga.Append(Buffer::CopyOf("defg"));
  EXPECT_EQ(sga.segment_count(), 2u);
  EXPECT_EQ(sga.total_bytes(), 7u);
  EXPECT_EQ(sga.ToString(), "abcdefg");
}

TEST(SgArrayTest, FlattenCopiesIntoOneBuffer) {
  SgArray sga;
  sga.Append(Buffer::CopyOf("xy"));
  sga.Append(Buffer::CopyOf("z"));
  Buffer flat = sga.Flatten();
  EXPECT_EQ(flat.AsStringView(), "xyz");
  EXPECT_NE(flat.storage(), sga.segment(0).storage());
}

TEST(SgArrayTest, FlattenSingleSegmentSharesStorage) {
  // The overwhelmingly common case — one segment — must not copy: Flatten returns a
  // view onto the caller's buffer (read-only by contract).
  SgArray sga(Buffer::CopyOf("solo segment"));
  Buffer flat = sga.Flatten();
  EXPECT_EQ(flat.AsStringView(), "solo segment");
  EXPECT_EQ(flat.storage(), sga.segment(0).storage());
}

TEST(SgArrayTest, CopyIsCheapSharedStorage) {
  SgArray a = SgArray::FromString("shared");
  SgArray b = a;
  EXPECT_EQ(a.segment(0).storage(), b.segment(0).storage());
}

TEST(MemoryManagerTest, AllocateReturnsRequestedSize) {
  MemRig rig;
  Buffer b = rig.mgr.Allocate(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_NE(b.data(), nullptr);
}

TEST(MemoryManagerTest, PoolReusesSlots) {
  MemRig rig;
  const std::byte* first_data;
  {
    Buffer b = rig.mgr.Allocate(1000);
    first_data = b.data();
  }  // released to the pool
  Buffer c = rig.mgr.Allocate(1000);
  EXPECT_EQ(c.data(), first_data);  // LIFO reuse of the hot slot
  EXPECT_GE(rig.mgr.pool_hits(), 1u);
}

TEST(MemoryManagerTest, DistinctLiveAllocationsDoNotAlias) {
  MemRig rig;
  std::vector<Buffer> bufs;
  for (int i = 0; i < 100; ++i) {
    bufs.push_back(rig.mgr.Allocate(512));
    std::memset(bufs.back().mutable_data(), i, 512);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(std::to_integer<int>(bufs[i].span()[0]), i);
  }
  EXPECT_EQ(rig.mgr.live_slots(), 100u);
}

TEST(MemoryManagerTest, FreeProtectionKeepsSlotWhileDeviceHoldsIt) {
  MemRig rig;
  Buffer held_by_device;
  const std::byte* slot;
  {
    Buffer app_buf = rig.mgr.Allocate(256);
    slot = app_buf.data();
    held_by_device = app_buf;  // device DMA reference
  }  // application "frees" its reference here
  // Slot must NOT be reused while the device still holds it.
  Buffer other = rig.mgr.Allocate(256);
  EXPECT_NE(other.data(), slot);
  held_by_device = Buffer();  // device completes
  Buffer reused = rig.mgr.Allocate(256);
  EXPECT_EQ(reused.data(), slot);  // now the slot recycles
}

TEST(MemoryManagerTest, FreeProtectionViaScheduledDeviceEvent) {
  MemRig rig;
  const std::byte* slot;
  {
    Buffer app_buf = rig.mgr.Allocate(64);
    slot = app_buf.data();
    // Model a device completion event holding the buffer for 10 us of simulated time.
    rig.sim.Schedule(10 * kMicrosecond, [keep = app_buf] {});
  }
  Buffer early = rig.mgr.Allocate(64);
  EXPECT_NE(early.data(), slot);  // still held by the in-flight event
  rig.sim.RunFor(20 * kMicrosecond);
  Buffer late = rig.mgr.Allocate(64);
  EXPECT_EQ(late.data(), slot);
}

TEST(MemoryManagerTest, OversizedAllocationWorks) {
  MemRig rig;
  Buffer big = rig.mgr.Allocate(3 * 1024 * 1024);
  EXPECT_EQ(big.size(), 3u * 1024 * 1024);
  std::memset(big.mutable_data(), 0xAB, big.size());
}

TEST(MemoryManagerTest, TransparentRegistrationCoversExistingArenas) {
  MemRig rig;
  Buffer pre = rig.mgr.Allocate(128);  // forces an arena before the device attaches

  RdmaCm cm(&rig.sim);
  RdmaNic nic(&rig.host, &cm);
  rig.mgr.AttachDevice([&nic](std::shared_ptr<BufferStorage> arena) {
    ASSERT_TRUE(nic.RegisterMemory(std::move(arena)).ok());
  });
  EXPECT_TRUE(nic.IsRegistered(pre));  // pre-existing memory became usable
}

TEST(MemoryManagerTest, TransparentRegistrationCoversFutureArenas) {
  MemRig rig;
  RdmaCm cm(&rig.sim);
  RdmaNic nic(&rig.host, &cm);
  rig.mgr.AttachDevice([&nic](std::shared_ptr<BufferStorage> arena) {
    ASSERT_TRUE(nic.RegisterMemory(std::move(arena)).ok());
  });
  // Allocate enough distinct sizes to force several new arenas.
  std::vector<Buffer> bufs;
  for (int i = 0; i < 50; ++i) {
    bufs.push_back(rig.mgr.Allocate(200000));  // 256 KB class -> new arenas quickly
    EXPECT_TRUE(nic.IsRegistered(bufs.back())) << i;
  }
}

TEST(MemoryManagerTest, RegistrationIsPerArenaNotPerBuffer) {
  MemRig rig;
  RdmaCm cm(&rig.sim);
  RdmaNic nic(&rig.host, &cm);
  rig.mgr.AttachDevice([&nic](std::shared_ptr<BufferStorage> arena) {
    ASSERT_TRUE(nic.RegisterMemory(std::move(arena)).ok());
  });
  const std::uint64_t regs_before = rig.host.counters().Get(Counter::kMemRegistrations);
  std::vector<Buffer> bufs;
  for (int i = 0; i < 1000; ++i) {
    bufs.push_back(rig.mgr.Allocate(64));  // all fit one arena
  }
  const std::uint64_t regs_after = rig.host.counters().Get(Counter::kMemRegistrations);
  EXPECT_LE(regs_after - regs_before, 1u);  // amortized: ~1 registration for 1000 buffers
}

TEST(MemoryManagerTest, BuffersSurviveManagerDestruction) {
  Simulation sim;
  HostCpu host(&sim, "h");
  Buffer survivor;
  {
    MemoryManager mgr(&host);
    survivor = mgr.Allocate(32);
    std::memcpy(survivor.mutable_data(), "still alive beyond mgr!", 23);
  }
  EXPECT_EQ(survivor.Slice(0, 11).AsStringView(), "still alive");
}

TEST(MemoryManagerTest, AllocationChargesCpuCost) {
  MemRig rig;
  const TimeNs before = rig.sim.now();
  (void)rig.mgr.Allocate(64);
  EXPECT_GT(rig.sim.now(), before);
}

// Size-class sweep: every size allocates, fills, and recycles correctly.
class SizeClassTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeClassTest, AllocateFillRecycle) {
  MemRig rig;
  const std::size_t size = GetParam();
  const std::byte* slot;
  {
    Buffer b = rig.mgr.Allocate(size);
    ASSERT_EQ(b.size(), size);
    std::memset(b.mutable_data(), 0x5A, size);
    slot = b.data();
  }
  Buffer again = rig.mgr.Allocate(size);
  EXPECT_EQ(again.data(), slot);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeClassTest,
                         ::testing::Values(1, 63, 64, 65, 255, 1024, 4096, 10000, 65536,
                                           262144, 1048576));

}  // namespace
}  // namespace demi
